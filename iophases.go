// Package iophases reproduces "Modeling Parallel Scientific Applications
// through their Input/Output Phases" (Méndez, Rexachs, Luque — IEEE CLUSTER
// 2012): a methodology for evaluating parallel I/O subsystems through an
// application I/O model that is independent of the subsystem.
//
// The workflow mirrors the paper's three stages:
//
//  1. Characterization — run an application once on any configuration with
//     the interposition tracer (TraceMADBench2, TraceBTIO, or Trace for a
//     custom program) and extract its I/O model (Extract): metadata, I/O
//     phases with weights, and closed-form initial-offset functions.
//  2. Analysis — replay only the phases with the IOR replica on a target
//     configuration (EstimateTime) to predict the application's I/O time
//     there (Eq. 1–2), without running the application again.
//  3. Evaluation — compare predictions against measurements
//     (CompareByFamily, RelativeError), compute device-peak utilization
//     (PeakBandwidth, Usage — Eq. 3–5), and pick the configuration with the
//     least I/O time (SelectConfig).
//
// Everything executes on a deterministic discrete-event simulation of the
// paper's four I/O configurations (ConfigA, ConfigB, ConfigC, Finisterrae);
// see DESIGN.md for the substitution inventory.
package iophases

import (
	"iophases/internal/apps/btio"
	"iophases/internal/apps/madbench"
	"iophases/internal/apps/roms"
	"iophases/internal/charz"
	"iophases/internal/cluster"
	"iophases/internal/coexec"
	"iophases/internal/core"
	"iophases/internal/fastpath"
	"iophases/internal/faults"
	"iophases/internal/ior"
	"iophases/internal/simcache"
	"iophases/internal/iozone"
	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/predict"
	"iophases/internal/runner"
	"iophases/internal/schedule"
	"iophases/internal/trace"
	"iophases/internal/units"
)

// Re-exported core types. The aliases keep the public API surface in one
// place while the implementation lives in internal packages.
type (
	// Config describes a cluster I/O configuration (Tables VI–VII).
	Config = cluster.Spec
	// Model is the application I/O abstract model (the paper's
	// contribution).
	Model = core.Model
	// PhaseModel is one I/O phase of a model.
	PhaseModel = core.PhaseModel
	// TraceSet is a PAS2P-style multi-rank trace.
	TraceSet = trace.Set
	// RunResult is the product of a characterization run.
	RunResult = runner.Result
	// RunOptions select tracing, monitoring and drain behaviour.
	RunOptions = runner.Options
	// Estimate is a model-on-configuration I/O time prediction.
	Estimate = predict.Estimate
	// GroupComparison is a characterized-vs-measured phase-group row
	// (Tables XII–XIV).
	GroupComparison = predict.GroupComparison
	// MADBenchParams configure the MADBench2 kernel.
	MADBenchParams = madbench.Params
	// BTIOParams configure the NAS BT-IO kernel.
	BTIOParams = btio.Params
	// BTIOClass is a NAS problem class (A, B, C, D, W).
	BTIOClass = btio.Class
	// ROMSParams configure the ROMS-style ocean-model kernel (history
	// records through the HDF5-like layer, multi-file output).
	ROMSParams = roms.Params
	// IORParams mirror the IOR benchmark's options (Table III).
	IORParams = ior.Params
	// IORResult carries IOR's output metrics (Table V).
	IORResult = ior.Result
	// IOzoneParams mirror the IOzone benchmark's options (Table IV).
	IOzoneParams = iozone.Params
	// Bandwidth is a data rate (MB/s accessor: MBpsValue).
	Bandwidth = units.Bandwidth
	// Duration is virtual time in nanoseconds.
	Duration = units.Duration
	// Program is a per-rank application program bound to an MPI-IO
	// system; use Trace to characterize custom applications.
	Program = runner.ProgramFactory

	// The application-building surface, for writing custom programs:
	// a System hands out Files; a Rank is one MPI process with
	// Barrier/Exchange/Compute; Filetypes define strided views.

	// System is the MPI-IO library instance a program opens files
	// through.
	System = mpiio.System
	// Rank is one simulated MPI process.
	Rank = mpi.Rank
	// File is an open MPI-IO file handle.
	File = mpiio.File
	// Filetype describes a file view tiling (Contig or Vector).
	Filetype = mpiio.Filetype
	// Vector is a strided filetype (MPI_Type_vector-style).
	Vector = mpiio.Vector
	// Contig is the contiguous default filetype.
	Contig = mpiio.Contig
	// Nested is a two-level strided filetype (cell decompositions).
	Nested = mpiio.Nested
)

// File access types for System.Open.
const (
	// SharedFile opens one file for all processes.
	SharedFile = mpiio.Shared
	// UniqueFile opens one file per process (IOR -F).
	UniqueFile = mpiio.Unique
)

// The four I/O configurations of the paper's evaluation.
func ConfigA() Config     { return cluster.ConfigA() }
func ConfigB() Config     { return cluster.ConfigB() }
func ConfigC() Config     { return cluster.ConfigC() }
func Finisterrae() Config { return cluster.Finisterrae() }

// Placement strategies for rank-to-node mapping (RunOptions.Placement).
const (
	PlaceBlock   = cluster.PlaceBlock
	PlaceScatter = cluster.PlaceScatter
)

// Configs lists the four configurations in presentation order.
func Configs() []Config { return cluster.Presets() }

// ConfigByName resolves "configA" | "configB" | "configC" | "finisterrae".
func ConfigByName(name string) (Config, bool) { return cluster.PresetByName(name) }

// DefaultMADBench returns the paper's MADBench2 parameterization
// (8 bins, 32 MiB request size — 8KPIX over 16 processes).
func DefaultMADBench() MADBenchParams { return madbench.Default() }

// DefaultBTIO returns a faithful BT-IO parameterization for a class.
func DefaultBTIO(class BTIOClass) BTIOParams { return btio.Default(class) }

// BTIOClassByName resolves a NAS class name ("A".."D", "W").
func BTIOClassByName(name string) (BTIOClass, bool) { return btio.ClassByName(name) }

// BTIOClasses exposed for convenience.
var (
	ClassA = btio.ClassA
	ClassB = btio.ClassB
	ClassC = btio.ClassC
	ClassD = btio.ClassD
	ClassW = btio.ClassW
)

// Trace runs an arbitrary per-rank program on a configuration and returns
// the run products (with RunOptions.Trace set, the PAS2P trace set).
func Trace(cfg Config, np int, appName string, prog Program, opts RunOptions) RunResult {
	return runner.Run(cfg, np, appName, prog, opts)
}

// TraceMADBench2 characterizes the MADBench2 kernel on a configuration.
func TraceMADBench2(cfg Config, np int, p MADBenchParams, opts RunOptions) RunResult {
	opts.Trace = true
	return runner.Run(cfg, np, "madbench2", func(sys *mpiio.System) func(*mpi.Rank) {
		return madbench.Program(sys, p)
	}, opts)
}

// TraceBTIO characterizes the NAS BT-IO kernel on a configuration; np must
// be a perfect square.
func TraceBTIO(cfg Config, np int, p BTIOParams, opts RunOptions) RunResult {
	if err := btio.ValidateNP(np); err != nil {
		panic(err)
	}
	opts.Trace = true
	return runner.Run(cfg, np, "btio", func(sys *mpiio.System) func(*mpi.Rank) {
		return btio.Program(sys, p)
	}, opts)
}

// DefaultROMS returns the upwelling-test parameterization of the
// ROMS-style kernel.
func DefaultROMS() ROMSParams { return roms.Upwelling() }

// TraceROMS characterizes the ROMS-style ocean model (HDF5 history and
// restart files; the paper's §V future-work application).
func TraceROMS(cfg Config, np int, p ROMSParams, opts RunOptions) RunResult {
	opts.Trace = true
	return runner.Run(cfg, np, "roms-upwelling", func(sys *mpiio.System) func(*mpi.Rank) {
		return roms.Program(sys, p)
	}, opts)
}

// Extract builds the application I/O model from a trace set: LAP mining,
// cross-rank phase identification, offset-function fitting and metadata
// derivation (§III-A1).
func Extract(set *TraceSet) *Model { return core.Build(set) }

// TraceSource streams a trace rank by rank without materializing it —
// the input of the bounded-memory extraction path.
type TraceSource = trace.Source

// ExtractStream is Extract over a streaming trace source: identical model,
// memory bounded by process count and pattern count instead of trace
// length. Use for traces too large to LoadTraces.
func ExtractStream(src TraceSource) (*Model, error) { return core.BuildStream(src) }

// OpenTraceDir opens a saved trace directory (text or binary per-rank
// files) as a streaming source without reading the events.
func OpenTraceDir(dir string) (TraceSource, error) { return trace.OpenDir(dir) }

// TraceFormat selects the on-disk per-rank trace encoding.
type TraceFormat = trace.Format

// Per-rank trace encodings: the Figure 2 text columns, or the compact
// delta-encoded binary format for large traces.
const (
	TraceText   = trace.FormatText
	TraceBinary = trace.FormatBinary
)

// ConvertTraces re-encodes a saved trace directory into dst with the given
// per-rank format, streaming rank by rank.
func ConvertTraces(srcDir, dstDir string, f TraceFormat) error {
	return trace.ConvertDir(srcDir, dstDir, f)
}

// WriteTraceDir drains a streaming source into a saved trace directory in
// the given per-rank format, one bounded chunk at a time.
func WriteTraceDir(src TraceSource, dstDir string, f TraceFormat) error {
	return trace.WriteDir(src, dstDir, f)
}

// SynthSpec parameterizes a generated synthetic trace (streaming
// benchmarks and memory-bound smoke tests).
type SynthSpec = trace.SynthSpec

// SynthTraces returns a source generating a deterministic synthetic trace
// of the spec'd size at O(1) memory.
func SynthTraces(spec SynthSpec) (TraceSource, error) { return trace.Synth(spec) }

// LoadModel reads a model saved with Model.Save.
func LoadModel(path string) (*Model, error) { return core.Load(path) }

// LoadTraces reads a trace set saved with TraceSet.Save (the iotrace
// output directory).
func LoadTraces(dir string) (*TraceSet, error) { return trace.Load(dir) }

// TraceSummary is a Darshan-style aggregate characterization of a trace.
type TraceSummary = trace.Summary

// Summarize aggregates a trace set into per-file operation counts, volume
// and request-size histograms (the complementary "how much of what" view
// to the phase model's "when and where").
func Summarize(set *TraceSet) *TraceSummary { return trace.Summarize(set) }

// EstimateTime predicts the model's I/O time on a target configuration by
// replaying its phases with the IOR replica (Eq. 1–2). The application
// itself never runs on the target — the paper's central point. A model
// needing more ranks than the configuration offers returns an error.
func EstimateTime(m *Model, cfg Config) (*Estimate, error) { return predict.EstimateTime(m, cfg) }

// Job is one application in a concurrent multi-job run.
type Job = runner.Job

// JobResult is one job's outcome from a concurrent run.
type JobResult = runner.JobResult

// RunConcurrent executes several jobs on one cluster simultaneously,
// sharing the interconnect and storage — for measuring I/O interference
// and validating co-schedules.
func RunConcurrent(cfg Config, jobs []Job, traceJobs bool) []JobResult {
	results, _ := runner.RunConcurrent(cfg, jobs, traceJobs)
	return results
}

// SchedulePlan is a scored start offset for a co-scheduled job.
type SchedulePlan = schedule.Plan

// CoexecApp is one application in a simulated co-execution.
type CoexecApp = coexec.App

// CoexecSpec is a complete co-execution scenario: N applications sharing
// one simulated cluster at given start offsets.
type CoexecSpec = coexec.Spec

// CoexecResult carries per-app Time_io attribution and shared-subsystem
// totals from a co-execution.
type CoexecResult = coexec.Result

// RunCoexec simulates N applications' phase schedules contending on ONE
// fabric + filesystem (bandwidth shared at the link/disk queues) and
// reports each app's contended Time_io plus its exact share of the
// subsystem traffic. Results are memoized content-addressed, like every
// other deterministic simulation; treat the returned Result as immutable.
func RunCoexec(spec CoexecSpec) (*CoexecResult, error) { return simcache.RunCoexec(spec) }

// PlanOffsets places N jobs greedily: job 0 at offset 0, each later job
// at the offset in [0, window] minimizing byte-weighted phase overlap
// against everything already placed. For two jobs this equals
// BestStartOffset.
func PlanOffsets(models []*Model, windowSec, stepSec float64) ([]SchedulePlan, error) {
	return schedule.PlanJobs(models, windowSec, stepSec)
}

// BestStartOffset plans job B's start relative to job A from their I/O
// models, minimizing the byte-weighted overlap of their I/O phases (the
// planning use of the phase view that §IV-A sketches). It returns the best
// plan and the naive co-start plan for comparison.
func BestStartOffset(a, b *Model, windowSec, stepSec float64) (best, naive SchedulePlan) {
	return schedule.BestOffset(a, b, windowSec, stepSec)
}

// Rescale derives the model for a different process count (characterize
// at small scale, predict at large scale); exact for kernels whose offset
// functions factor into rs and rs·np units, like BT-IO's Table XI.
func Rescale(m *Model, npNew int) (*Model, error) { return m.Rescale(npNew) }

// EstimateTimeFaithful is EstimateTime with the phase-faithful replay
// benchmark for multi-operation phases — the §V future-work improvement
// that replaces IOR's write/read-pass average for interleaved phases.
func EstimateTimeFaithful(m *Model, cfg Config) (*Estimate, error) {
	return predict.EstimateTimeOpts(m, cfg, predict.EstimateOptions{FaithfulMixed: true})
}

// SelectConfig estimates the model on every candidate configuration and
// returns the index of the one with the least estimated I/O time plus all
// per-configuration estimates.
func SelectConfig(m *Model, cfgs []Config) (best int, choices []predict.Choice, err error) {
	return predict.SelectConfig(m, cfgs)
}

// CompareByFamily groups an estimate's phases (BT-IO: "Phase 1-50",
// "Phase 51") and compares characterized vs measured times, yielding the
// rows of Tables XII–XIV. Models of mismatched shape return an error.
func CompareByFamily(est *Estimate, measured *Model) ([]GroupComparison, error) {
	return predict.CompareByFamily(est, measured)
}

// PeakBandwidth measures BW_PK of a configuration with the IOzone replica
// (Eq. 3–4): per-I/O-node pattern maxima summed over nodes.
func PeakBandwidth(cfg Config, fileSize, requestSize int64) (write, read Bandwidth) {
	return predict.PeakBandwidth(cfg, fileSize, requestSize)
}

// Usage is Eq. 5: measured bandwidth as a percentage of the device peak.
func Usage(measured, peak Bandwidth) float64 { return predict.Usage(measured, peak) }

// RelativeError is Eq. 6–7 in percent.
func RelativeError(characterized, measured float64) float64 {
	return predict.RelativeError(characterized, measured)
}

// Variant is a hypothetical configuration for what-if exploration.
type Variant = predict.Variant

// ExploreResult is one variant's estimated I/O time.
type ExploreResult = predict.ExploreResult

// Explore estimates the model on every variant configuration, best first —
// subsystem design and selection without building any hardware (the SIMCAN
// direction of the paper's future work).
func Explore(m *Model, variants []Variant) ([]ExploreResult, error) {
	return predict.Explore(m, variants)
}

// StandardVariants derives a systematic what-if sweep from a base
// configuration: network generations, striped I/O node counts, and device
// organizations.
func StandardVariants(base Config) []Variant { return predict.StandardVariants(base) }

// FaultSchedule is a named, seeded set of deterministic fault windows
// (slow disks, RAID rebuilds, degraded/flapping links, transient errors).
// Assign one to Config.Faults to run that configuration degraded.
type FaultSchedule = faults.Schedule

// DegradedComparison pairs per-phase estimates on a healthy configuration
// with the same configuration under a fault scenario.
type DegradedComparison = predict.DegradedComparison

// FaultPresets lists the built-in fault-scenario names.
func FaultPresets() []string { return faults.PresetNames() }

// ResolveFaults turns a preset name or a scenario JSON path into a
// validated fault schedule (the -faults CLI argument).
func ResolveFaults(arg string) (*FaultSchedule, error) { return faults.Resolve(arg) }

// CompareDegraded estimates the model on cfg healthy and under the fault
// schedule, pairing per-phase Time_io and SystemUsage — "which
// configuration degrades most gracefully for this application?".
func CompareDegraded(m *Model, cfg Config, sch *FaultSchedule, peakFileSize, peakRS int64) (*DegradedComparison, error) {
	return predict.CompareDegraded(m, cfg, sch, peakFileSize, peakRS)
}

// CharzOptions select the exhaustive-characterization sweep grid.
type CharzOptions = charz.Options

// CharzReport is a configuration's performance map.
type CharzReport = charz.Report

// Characterize sweeps the IOR/IOzone parameter grids of Tables III–IV over
// a configuration (the authors' prior exhaustive methodology, reference
// [11]) — the baseline the phase model replaces.
func Characterize(cfg Config, opts CharzOptions) *CharzReport {
	return charz.Characterize(cfg, opts)
}

// RunIOR executes the IOR replica on the configuration, through the
// simulation cache: repeated identical replays return memoized results, and
// contention-free runs (one rank, one storage target, no faults) are priced
// by the analytic fast path under the package-default FastPathMode. Traced
// runs always execute the full simulation.
func RunIOR(cfg Config, p IORParams) IORResult { return simcache.RunIOR(cfg, p) }

// FastPathMode selects how contention-free simulations are priced: off
// (always run the DES), on (closed-form when provably equivalent), or
// verify (run both, panic on any divergence).
type FastPathMode = fastpath.Mode

// Fast-path modes. ModeDefault resolves to the package default (on).
const (
	FastPathDefault = fastpath.ModeDefault
	FastPathOff     = fastpath.ModeOff
	FastPathOn      = fastpath.ModeOn
	FastPathVerify  = fastpath.ModeVerify
)

// SetFastPath changes the package-default fast-path mode (the -fastpath
// CLI flag).
func SetFastPath(m FastPathMode) { fastpath.SetDefault(m) }

// ParseFastPath parses a -fastpath flag value: "off", "on", or "verify".
func ParseFastPath(s string) (FastPathMode, error) { return fastpath.ParseMode(s) }

// FastPathStats reports how many simulations the analytic fast path served
// (hits) and how many fell back to the full DES after failing admission or
// bailing out mid-walk (bailouts).
func FastPathStats() (hits, bailouts int64) { return fastpath.Stats() }

// SetShards sets the event-queue shard count for subsequently built
// simulations (the -shards CLI flag): each engine's queue is partitioned by
// node affinity with a conservative network-latency lookahead. Results are
// bit-identical at any shard count; n must be >= 1.
func SetShards(n int) { cluster.SetShards(n) }

// Shards reports the configured event-queue shard count.
func Shards() int { return cluster.Shards() }

// MeasuredBandwidth reports a phase's BW_MD from its traced time.
func MeasuredBandwidth(pm *PhaseModel) Bandwidth {
	return units.BandwidthOf(pm.Weight, units.FromSeconds(pm.MeasuredSec))
}
