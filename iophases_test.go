package iophases_test

// Black-box tests of the public API: the facade must be usable by an
// external consumer (this file imports only the root package and stdlib).

import (
	"fmt"
	"path/filepath"
	"testing"

	"iophases"
)

func TestConfigsComplete(t *testing.T) {
	cfgs := iophases.Configs()
	if len(cfgs) != 4 {
		t.Fatalf("configs = %d", len(cfgs))
	}
	for _, name := range []string{"configA", "configB", "configC", "finisterrae"} {
		cfg, ok := iophases.ConfigByName(name)
		if !ok || cfg.Name != name {
			t.Fatalf("config %q missing", name)
		}
	}
}

func TestWorkflowMadbench(t *testing.T) {
	params := iophases.DefaultMADBench()
	params.RS = 4 << 20
	run := iophases.TraceMADBench2(iophases.ConfigA(), 8, params, iophases.RunOptions{})
	if run.Set == nil || run.Elapsed <= 0 {
		t.Fatal("no trace")
	}
	m := iophases.Extract(run.Set)
	if len(m.Phases) != 5 {
		t.Fatalf("phases %d", len(m.Phases))
	}
	est, err := iophases.EstimateTime(m, iophases.ConfigB())
	if err != nil {
		t.Fatal(err)
	}
	if est.TotalCH <= 0 {
		t.Fatal("no estimate")
	}
	groups, err := iophases.CompareByFamily(est, m)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(groups); got != 5 {
		t.Fatalf("groups %d", got)
	}
}

func TestWorkflowModelPersistence(t *testing.T) {
	run := iophases.TraceBTIO(iophases.ConfigA(), 4,
		iophases.DefaultBTIO(iophases.ClassW), iophases.RunOptions{})
	m := iophases.Extract(run.Set)
	path := filepath.Join(t.TempDir(), "m.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := iophases.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.SameShape(m) {
		t.Fatal("persistence changed the model")
	}
}

func TestTraceSetPersistence(t *testing.T) {
	run := iophases.TraceMADBench2(iophases.ConfigB(), 4, iophases.MADBenchParams{
		NBin: 4, RS: 1 << 20, FileName: "/m", BusyWork: 1e6,
	}, iophases.RunOptions{})
	dir := filepath.Join(t.TempDir(), "tr")
	if err := run.Set.Save(dir); err != nil {
		t.Fatal(err)
	}
	m1 := iophases.Extract(run.Set)
	set2, err := iophases.LoadTraces(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !iophases.Extract(set2).SameShape(m1) {
		t.Fatal("trace round trip changed the model")
	}
}

func TestCustomProgramThroughPublicSurface(t *testing.T) {
	prog := func(sys *iophases.System) func(r *iophases.Rank) {
		return func(r *iophases.Rank) {
			f := sys.Open(r, "/custom", iophases.SharedFile)
			f.SetView(r, 0, 8, iophases.Vector{
				Block:  4096,
				Stride: int64(r.Size()) * 4096,
				Phase:  int64(r.ID()) * 4096,
			})
			f.WriteAtAll(r, 0, 64*1024)
			f.Close(r)
		}
	}
	run := iophases.Trace(iophases.ConfigA(), 4, "custom", prog, iophases.RunOptions{Trace: true})
	m := iophases.Extract(run.Set)
	if m.AccessMode != "strided" || !m.Collective {
		t.Fatalf("metadata %+v", m)
	}
	w, _ := m.TotalBytes()
	if w != 4*64*1024 {
		t.Fatalf("volume %d", w)
	}
}

func TestROMSWorkflow(t *testing.T) {
	p := iophases.DefaultROMS()
	p.Steps = 8
	p.RestartEvery = 4 // keep the restart file in the shortened run
	run := iophases.TraceROMS(iophases.ConfigB(), 4, p, iophases.RunOptions{})
	m := iophases.Extract(run.Set)
	if len(m.Files) < 2 {
		t.Fatalf("files %d; ROMS must open several", len(m.Files))
	}
	est, err := iophases.EstimateTime(m, iophases.ConfigA())
	if err != nil {
		t.Fatal(err)
	}
	if est.TotalCH <= 0 {
		t.Fatal("no estimate")
	}
}

func TestExplorePublicSurface(t *testing.T) {
	run := iophases.TraceBTIO(iophases.ConfigA(), 4,
		iophases.DefaultBTIO(iophases.ClassW), iophases.RunOptions{})
	m := iophases.Extract(run.Set)
	results, err := iophases.Explore(m, iophases.StandardVariants(iophases.ConfigA()))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 6 {
		t.Fatalf("results %d", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].Total < results[i-1].Total {
			t.Fatal("not sorted")
		}
	}
}

func TestRelativeErrorAndUsageExposed(t *testing.T) {
	if iophases.RelativeError(110, 100) != 10 {
		t.Fatal("relative error")
	}
	if u := iophases.Usage(50, 200); u != 25 {
		t.Fatalf("usage %v", u)
	}
}

// Example demonstrates the full characterize → model → predict workflow.
func Example() {
	params := iophases.DefaultMADBench()
	params.RS = 1 << 20 // scale down for the example

	run := iophases.TraceMADBench2(iophases.ConfigA(), 8, params, iophases.RunOptions{})
	model := iophases.Extract(run.Set)
	fmt.Printf("phases: %d, access mode: %s\n", len(model.Phases), model.AccessMode)

	best, choices, err := iophases.SelectConfig(model,
		[]iophases.Config{iophases.ConfigA(), iophases.ConfigB()})
	if err != nil {
		fmt.Println("select:", err)
		return
	}
	_ = choices
	fmt.Printf("configurations compared: 2, best exists: %v\n", best >= 0)
	// Output:
	// phases: 5, access mode: sequential
	// configurations compared: 2, best exists: true
}

// ExampleExtract shows phase extraction on BT-IO.
func ExampleExtract() {
	run := iophases.TraceBTIO(iophases.ConfigA(), 4,
		iophases.DefaultBTIO(iophases.ClassW), iophases.RunOptions{})
	model := iophases.Extract(run.Set)
	last := model.Phases[len(model.Phases)-1]
	fmt.Printf("write phases: %d\n", len(model.Phases)-1)
	fmt.Printf("read phase rep: %d\n", last.Rep)
	fmt.Printf("offset fn: %s\n", model.Phases[0].OffsetExpr)
	// Output:
	// write phases: 10
	// read phase rep: 10
	// offset fn: rs*idP + 4*rs*(ph-1)
}

// ExampleRescale derives a 16-process model from a 4-process trace.
func ExampleRescale() {
	run := iophases.TraceBTIO(iophases.ConfigA(), 4,
		iophases.DefaultBTIO(iophases.ClassW), iophases.RunOptions{})
	m4 := iophases.Extract(run.Set)
	m16, err := iophases.Rescale(m4, 16)
	if err != nil {
		fmt.Println("rescale:", err)
		return
	}
	fmt.Printf("np: %d -> %d, phases: %d, volume preserved: %v\n",
		m4.NP, m16.NP, len(m16.Phases), func() bool {
			w4, _ := m4.TotalBytes()
			w16, _ := m16.TotalBytes()
			return w4 == w16
		}())
	// Output:
	// np: 4 -> 16, phases: 11, volume preserved: true
}

// ExampleExplore sweeps hypothetical storage designs for a model.
func ExampleExplore() {
	run := iophases.TraceBTIO(iophases.ConfigA(), 4,
		iophases.DefaultBTIO(iophases.ClassW), iophases.RunOptions{})
	m := iophases.Extract(run.Set)
	results, err := iophases.Explore(m, iophases.StandardVariants(iophases.ConfigA()))
	if err != nil {
		fmt.Println("explore:", err)
		return
	}
	fmt.Printf("variants ranked: %d; best is cheapest: %v\n",
		len(results), results[0].Total <= results[len(results)-1].Total)
	// Output:
	// variants ranked: 8; best is cheapest: true
}
