package coexec

import (
	"reflect"
	"testing"

	"iophases/internal/apps/btio"
	"iophases/internal/apps/madbench"
	"iophases/internal/cluster"
	"iophases/internal/core"
	"iophases/internal/faults"
	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/runner"
	"iophases/internal/schedule"
	"iophases/internal/units"
)

func madbenchModel(t *testing.T, np int, rs int64, file string) *core.Model {
	t.Helper()
	params := madbench.Default()
	params.RS = rs
	params.FileName = file
	res := runner.Run(cluster.ConfigA(), np, "madbench2", func(sys *mpiio.System) func(*mpi.Rank) {
		return madbench.Program(sys, params)
	}, runner.Options{Trace: true})
	return core.Build(res.Set)
}

func btioModel(t *testing.T, np int) *core.Model {
	t.Helper()
	params := btio.Default(btio.ClassW)
	res := runner.Run(cluster.ConfigA(), np, "btio", func(sys *mpiio.System) func(*mpi.Rank) {
		return btio.Program(sys, params)
	}, runner.Options{Trace: true})
	return core.Build(res.Set)
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	m := madbenchModel(t, 4, units.MiB, "/a.dat")
	cases := []struct {
		name string
		spec Spec
	}{
		{"no apps", Spec{Config: cluster.ConfigA()}},
		{"nil model", Spec{Config: cluster.ConfigA(), Apps: []App{{Name: "x"}}}},
		{"negative offset", Spec{Config: cluster.ConfigA(),
			Apps: []App{{Model: m, OffsetSec: -1}}}},
		{"over capacity", Spec{Config: cluster.ConfigA(), Apps: []App{ // 5×4 ranks > 16 cores
			{Name: "a", Model: m}, {Name: "b", Model: m}, {Name: "c", Model: m},
			{Name: "d", Model: m}, {Name: "e", Model: m}}}},
	}
	for _, tc := range cases {
		if err := Validate(tc.spec); err == nil {
			t.Errorf("%s: Validate accepted a bad spec", tc.name)
		}
		if _, err := Run(tc.spec); err == nil {
			t.Errorf("%s: Run accepted a bad spec", tc.name)
		}
	}
	// Missing phase timing (a rescaled model) must be rejected too.
	bad := *m
	bad.Phases = append([]*core.PhaseModel(nil), m.Phases...)
	p0 := *bad.Phases[0]
	p0.MeasuredSec = 0
	bad.Phases[0] = &p0
	if err := Validate(Spec{Config: cluster.ConfigA(), Apps: []App{{Model: &bad}}}); err == nil {
		t.Error("Validate accepted a model without phase timing")
	}
}

// TestAttributionConservation is the conservation law the design rests
// on: with every application carrying an account, the per-app byte totals
// must sum exactly to the shared filesystem's data-path totals — nothing
// double-counted, nothing lost.
func TestAttributionConservation(t *testing.T) {
	a := madbenchModel(t, 4, 2*units.MiB, "/a.dat")
	b := btioModel(t, 4)
	res, err := Run(Spec{Config: cluster.ConfigA(), Apps: []App{
		{Name: "madbench2", Model: a},
		{Name: "btio", Model: b, OffsetSec: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var wr, rd int64
	for _, ar := range res.Apps {
		if ar.TimeIO <= 0 {
			t.Fatalf("app %s: no I/O time", ar.Name)
		}
		if ar.Acct.BytesWritten <= 0 {
			t.Fatalf("app %s: no bytes attributed", ar.Name)
		}
		wr += ar.Acct.BytesWritten
		rd += ar.Acct.BytesRead
	}
	if wr != res.FSWritten || rd != res.FSRead {
		t.Fatalf("attribution leak: apps wrote %d read %d, fs saw %d/%d",
			wr, rd, res.FSWritten, res.FSRead)
	}
	if res.WireBytes <= 0 || res.WireMessages <= 0 {
		t.Fatalf("no wire traffic: %d bytes %d msgs", res.WireBytes, res.WireMessages)
	}
	if res.Makespan <= 0 || res.TotalTimeIO <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

// TestPlannedOffsetBeatsCoStart is the acceptance criterion: on two real
// extracted models (madbench2 + BT-IO class W), the analytic BestOffset
// plan must achieve lower simulated total Time_io than naive co-start.
func TestPlannedOffsetBeatsCoStart(t *testing.T) {
	a := madbenchModel(t, 4, 8*units.MiB, "/a.dat")
	b := btioModel(t, 4)
	best, naive := schedule.BestOffset(a, b, schedule.Makespan(schedule.Timeline(a)), 0.5)
	if best.OffsetSec == 0 || best.Score >= naive.Score {
		t.Fatalf("planner found no better offset: best %+v naive %+v", best, naive)
	}
	run := func(off float64) units.Duration {
		res, err := Run(Spec{Config: cluster.ConfigA(), Apps: []App{
			{Name: "madbench2", Model: a},
			{Name: "btio", Model: b, OffsetSec: off},
		}})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalTimeIO
	}
	coStart := run(0)
	planned := run(best.OffsetSec)
	t.Logf("co-start total Time_io %v; planned +%.1fs total Time_io %v", coStart, best.OffsetSec, planned)
	if planned >= coStart {
		t.Fatalf("planned offset %.1fs did not beat co-start: %v >= %v", best.OffsetSec, planned, coStart)
	}
}

func TestDeterminism(t *testing.T) {
	a := madbenchModel(t, 4, units.MiB, "/a.dat")
	b := madbenchModel(t, 4, 2*units.MiB, "/b.dat")
	spec := Spec{Config: cluster.ConfigA(), Apps: []App{
		{Name: "a", Model: a},
		{Name: "b", Model: b, OffsetSec: 2.5},
	}}
	r1, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("co-execution not deterministic:\n%+v\n%+v", r1, r2)
	}
}

// TestIsolatedBaseline: a single-app co-execution is the contention-free
// baseline, and adding a contender can only increase that app's Time_io.
func TestIsolatedBaseline(t *testing.T) {
	a := madbenchModel(t, 4, 4*units.MiB, "/a.dat")
	solo, err := RunIsolated(cluster.ConfigA(), App{Name: "a", Model: a})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := Run(Spec{Config: cluster.ConfigA(), Apps: []App{
		{Name: "a", Model: a},
		{Name: "b", Model: a, OffsetSec: 0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if pair.Apps[0].TimeIO <= solo.Apps[0].TimeIO {
		t.Fatalf("no interference: contended %v vs isolated %v",
			pair.Apps[0].TimeIO, solo.Apps[0].TimeIO)
	}
}

// TestDegradedCoexecution: a fault schedule on the shared cluster slows
// the co-execution but preserves attribution conservation — degraded
// co-scheduling works with no coexec-specific fault handling.
func TestDegradedCoexecution(t *testing.T) {
	a := madbenchModel(t, 4, 2*units.MiB, "/a.dat")
	healthy, err := Run(Spec{Config: cluster.ConfigA(), Apps: []App{
		{Name: "a", Model: a}, {Name: "b", Model: a, OffsetSec: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	sched, ok := faults.Preset("degraded-mix")
	if !ok {
		t.Fatal("preset degraded-mix missing")
	}
	cfg := cluster.ConfigA()
	cfg.Faults = sched
	degraded, err := Run(Spec{Config: cfg, Apps: []App{
		{Name: "a", Model: a}, {Name: "b", Model: a, OffsetSec: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if degraded.TotalTimeIO <= healthy.TotalTimeIO {
		t.Fatalf("faults did not slow the co-execution: %v vs %v",
			degraded.TotalTimeIO, healthy.TotalTimeIO)
	}
	var wr int64
	for _, ar := range degraded.Apps {
		wr += ar.Acct.BytesWritten
	}
	if wr != degraded.FSWritten {
		t.Fatalf("degraded attribution leak: %d vs %d", wr, degraded.FSWritten)
	}
}
