// Package coexec simulates true multi-application co-execution: N
// applications, each replayed phase-for-phase from its extracted model,
// run inside ONE discrete-event engine sharing one fabric and one
// filesystem/disk stack. Bandwidth sharing needs no new formula — the
// existing link and device queues ARE the model: concurrent phases queue
// behind each other at the NIC and the disk exactly as the isolated
// simulations do, so contention emerges from the same mechanisms Tables
// IX–X rest on. This is the simulated ground truth the analytic planner
// (internal/schedule) is cross-validated against: the paper's §IV-A
// claim — that phase timelines let a scheduler interleave applications'
// I/O into each other's compute gaps — becomes a measurable statement
// about simulated Time_io.
//
// Per-application attribution rides the fsim.Account mechanism: every
// handle an application opens carries its account, so each app's share of
// the shared filesystem's traffic is split exactly — the accounts' byte
// totals sum to FS.Traffic() by construction, and reports verify that
// conservation law.
package coexec

import (
	"fmt"

	"iophases/internal/cluster"
	"iophases/internal/core"
	"iophases/internal/fsim"
	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/obs"
	"iophases/internal/replay"
	"iophases/internal/runner"
	"iophases/internal/units"
)

// App is one application in a co-execution: an extracted model plus the
// start offset the schedule assigns it.
type App struct {
	//iovet:cosmetic label for reports (defaults to Model.App), not part of the fingerprint
	Name      string
	Model     *core.Model
	OffsetSec float64 // start delay relative to the co-execution's t=0
}

// Spec is a complete co-execution scenario: which applications share
// which cluster, at which offsets. It is the unit the simcache
// fingerprints — two specs with equal fingerprints replay identically.
type Spec struct {
	Config cluster.Spec
	Apps   []App
}

// AppResult is one application's outcome and attribution.
type AppResult struct {
	Name      string
	OffsetSec float64
	// TimeIO is the application's Eq. 1 total under contention: per phase
	// the maximum per-rank busy time, summed over phases.
	TimeIO units.Duration
	// PhaseIO is the per-phase breakdown of TimeIO, in model phase order.
	PhaseIO []units.Duration
	// Start and End span the app's activity on the shared wall clock.
	Start, End units.Duration
	// Acct is the app's exact share of the shared filesystem's traffic.
	Acct fsim.Account
}

// Result is the outcome of one co-execution.
type Result struct {
	Apps []AppResult
	// TotalTimeIO sums the apps' contended Time_io — the objective the
	// co-scheduling explorer minimizes.
	TotalTimeIO units.Duration
	// Makespan is when the last application finished.
	Makespan units.Duration
	// Shared-subsystem totals, for reconciling per-app attribution:
	// FSWritten/FSRead must equal the sums of the apps' accounts.
	FSWritten, FSRead int64
	// WireBytes/WireMessages are the fabric's unique wire traffic (every
	// non-local message counted once, at its uplink).
	WireBytes, WireMessages int64
}

// Validate checks a spec without running it: every app needs a model with
// phase timing (co-execution replays phases at their modeled start
// times), a feasible rank count, and a non-negative offset. Returned
// errors name the offending app so CLIs can print them directly.
func Validate(spec Spec) error {
	if len(spec.Apps) == 0 {
		return fmt.Errorf("coexec: no applications")
	}
	total := 0
	for i, a := range spec.Apps {
		m := a.Model
		if m == nil {
			return fmt.Errorf("coexec: app %d has no model", i)
		}
		if len(m.Phases) == 0 {
			return fmt.Errorf("coexec: app %d (%s) has no phases", i, appName(a))
		}
		if a.OffsetSec < 0 {
			return fmt.Errorf("coexec: app %d (%s) has negative offset %g", i, appName(a), a.OffsetSec)
		}
		np := m.Phases[0].NP
		for _, pm := range m.Phases {
			if pm.NP != np {
				return fmt.Errorf("coexec: app %d (%s) mixes rank counts %d and %d", i, appName(a), np, pm.NP)
			}
			if pm.MeasuredSec <= 0 {
				return fmt.Errorf("coexec: app %d (%s) phase %d lacks timing (rescaled models cannot co-execute)",
					i, appName(a), pm.ID)
			}
		}
		total += np
	}
	if max := spec.Config.MaxProcs(); total > max {
		return fmt.Errorf("coexec: %d total ranks exceed %s capacity %d", total, spec.Config.Name, max)
	}
	return nil
}

func appName(a App) string {
	if a.Name != "" {
		return a.Name
	}
	return a.Model.App
}

// appState accumulates one app's per-rank, per-phase measurements while
// its ranks run. Plain slices: the engine executes every proc on one
// goroutine, so no synchronization is needed.
type appState struct {
	acct       fsim.Account
	phaseStart [][]units.Duration // [phase][rank]
	phaseEnd   [][]units.Duration
}

// Run executes the co-execution and reports per-app attribution plus
// shared-subsystem totals. The run is deterministic: same spec, same
// result, bit for bit, at any engine shard count.
func Run(spec Spec) (*Result, error) {
	if err := Validate(spec); err != nil {
		return nil, err
	}
	states := make([]*appState, len(spec.Apps))
	jobs := make([]runner.Job, len(spec.Apps))
	for i, a := range spec.Apps {
		i, a := i, a
		m := a.Model
		np := m.Phases[0].NP
		st := &appState{
			acct:       fsim.Account{Name: appName(a)},
			phaseStart: make([][]units.Duration, len(m.Phases)),
			phaseEnd:   make([][]units.Duration, len(m.Phases)),
		}
		for p := range m.Phases {
			st.phaseStart[p] = make([]units.Duration, np)
			st.phaseEnd[p] = make([]units.Duration, np)
		}
		states[i] = st
		access := mpiio.Shared
		if m.AccessType == "unique" {
			access = mpiio.Unique
		}
		jobs[i] = runner.Job{
			Name:       appName(a),
			NP:         np,
			StartDelay: units.FromSeconds(a.OffsetSec),
			Prog: func(sys *mpiio.System) func(*mpi.Rank) {
				sys.Account = &st.acct
				return func(r *mpi.Rank) {
					appStart := r.Now() // == StartDelay: runner has already queued us
					for p, pm := range m.Phases {
						// Reproduce the app's compute gap: the phase begins at its
						// modeled start time on the app's own clock. Under heavy
						// contention a previous phase may overrun its slot; then the
						// next starts immediately — exactly an application whose
						// compute is fixed but whose I/O stretched.
						if target := appStart + units.FromSeconds(pm.StartSec); target > r.Now() {
							r.Compute(target - r.Now())
						}
						f := sys.Open(r, fmt.Sprintf("/coexec.%d.phase%d", i, pm.ID), access)
						r.Barrier()
						start := r.Now()
						replay.PhaseOps(r, f, pm)
						st.phaseStart[p][r.ID()] = start
						st.phaseEnd[p][r.ID()] = r.Now()
						f.Close(r)
					}
				}
			},
		}
	}

	jobResults, c := runner.RunConcurrent(spec.Config, jobs, false)

	res := &Result{Apps: make([]AppResult, len(spec.Apps))}
	tl := obs.Timeline()
	for i, a := range spec.Apps {
		st := states[i]
		ar := AppResult{
			Name:      appName(a),
			OffsetSec: a.OffsetSec,
			Start:     jobResults[i].Start,
			End:       jobResults[i].End,
			Acct:      st.acct,
			PhaseIO:   make([]units.Duration, len(a.Model.Phases)),
		}
		for p, pm := range a.Model.Phases {
			var max units.Duration
			spanStart, spanEnd := st.phaseStart[p][0], st.phaseEnd[p][0]
			for rank := range st.phaseStart[p] {
				s, e := st.phaseStart[p][rank], st.phaseEnd[p][rank]
				if d := e - s; d > max {
					max = d
				}
				if s < spanStart {
					spanStart = s
				}
				if e > spanEnd {
					spanEnd = e
				}
			}
			ar.PhaseIO[p] = max
			ar.TimeIO += max
			if tl != nil {
				tl.Track("coexec "+ar.Name, "phases").
					Span(fmt.Sprintf("phase %d", pm.ID), int64(spanStart), int64(spanEnd),
						obs.Arg{Key: "weight", Value: pm.Weight},
						obs.Arg{Key: "busy_max_ns", Value: int64(max)})
			}
		}
		res.Apps[i] = ar
		res.TotalTimeIO += ar.TimeIO
		if ar.End > res.Makespan {
			res.Makespan = ar.End
		}
	}
	res.FSWritten, res.FSRead = c.FS.Traffic()
	res.WireBytes, res.WireMessages = c.Fabric.WireStats()
	if h := obs.Hot(); h != nil {
		h.Counter("coexec/runs").Inc()
		h.Counter("coexec/apps").Add(int64(len(spec.Apps)))
		h.Counter("coexec/busy_ns").Add(int64(res.TotalTimeIO))
	}
	return res, nil
}

// RunIsolated replays one app alone on a fresh instance of the same
// configuration — the contention-free baseline. The difference between an
// app's contended TimeIO and its isolated TimeIO is the excess the
// co-scheduling explorer attributes to interference.
func RunIsolated(cfg cluster.Spec, a App) (*Result, error) {
	a.OffsetSec = 0
	return Run(Spec{Config: cfg, Apps: []App{a}})
}
