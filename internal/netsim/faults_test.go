package netsim

import (
	"testing"

	"iophases/internal/des"
	"iophases/internal/faults"
	"iophases/internal/units"
)

func transferUnder(t *testing.T, sch *faults.Schedule, startAt units.Duration) units.Duration {
	t.Helper()
	eng := des.NewEngine()
	if sch != nil {
		faults.Attach(eng, sch, "test")
	}
	var took units.Duration
	eng.Spawn("tx", func(p *des.Proc) {
		l := NewLink(eng, "node0:up", LinkParams{Bandwidth: units.MBps(100)})
		if startAt > 0 {
			p.Sleep(startAt)
		}
		start := p.Now()
		l.Transfer(p, 100*units.MiB)
		took = p.Now() - start
	})
	eng.Run()
	return took
}

func TestLinkDegradedScalesTransfer(t *testing.T) {
	healthy := transferUnder(t, nil, 0)
	slow := transferUnder(t, &faults.Schedule{Name: "d", Effects: []faults.Effect{
		{Kind: faults.LinkDegraded, Factor: 2},
	}}, 0)
	if slow != 2*healthy {
		t.Fatalf("degraded transfer %v, want 2x healthy %v", slow, healthy)
	}
}

func TestLinkFlapDelaysTransferStart(t *testing.T) {
	sch := &faults.Schedule{Name: "f", Effects: []faults.Effect{
		{Kind: faults.LinkFlap, DownMs: 50, UpMs: 950},
	}}
	healthy := transferUnder(t, nil, 0)
	// Starting mid-outage (cycle starts down at t=0): the transfer waits
	// for the remaining 40ms of downtime, then runs at full rate.
	flapped := transferUnder(t, sch, 10*units.Millisecond)
	if want := 40*units.Millisecond + healthy; flapped != want {
		t.Fatalf("flapped transfer %v, want %v", flapped, want)
	}
	// Starting while up: no delay.
	up := transferUnder(t, sch, 100*units.Millisecond)
	if up != healthy {
		t.Fatalf("up-phase transfer %v, want %v", up, healthy)
	}
}

func TestFabricAppliesFactorOnce(t *testing.T) {
	// Uplink and downlink both match the degradation; Send must scale the
	// transfer once, not square the factor.
	run := func(sch *faults.Schedule) units.Duration {
		eng := des.NewEngine()
		if sch != nil {
			faults.Attach(eng, sch, "test")
		}
		f := NewFabric(eng, "net", LinkParams{Bandwidth: units.MBps(100)})
		f.AddEndpoint("a")
		f.AddEndpoint("b")
		var took units.Duration
		eng.Spawn("tx", func(p *des.Proc) {
			start := p.Now()
			f.Send(p, "a", "b", 100*units.MiB)
			took = p.Now() - start
		})
		eng.Run()
		return took
	}
	healthy := run(nil)
	degraded := run(&faults.Schedule{Name: "d", Effects: []faults.Effect{
		{Kind: faults.LinkDegraded, Factor: 2},
	}})
	if degraded != 2*healthy {
		t.Fatalf("fabric send %v, want exactly 2x healthy %v (factor applied once)", degraded, healthy)
	}
}
