// Package netsim models cluster interconnects for the I/O-phase simulator.
//
// The model is intentionally first-order: a Link is a shared serial medium
// with a fixed bandwidth and per-message latency, served FIFO. Concurrent
// senders queue behind each other, so the aggregate throughput through any
// link never exceeds its bandwidth — the mechanism that makes an NFS server
// on Gigabit Ethernet the bottleneck below the RAID's device peak, exactly
// the relationship Tables IX and X of the paper rest on.
package netsim

import (
	"fmt"

	"iophases/internal/des"
	"iophases/internal/faults"
	"iophases/internal/obs"
	"iophases/internal/units"
)

// LinkParams describe a physical link.
type LinkParams struct {
	Bandwidth units.Bandwidth // payload rate after protocol overhead
	Latency   units.Duration  // per-message one-way latency
	MTU       int64           // pipelining granularity; 0 means no chunking
}

// PathCost reports the uncontended cost of one fabric Send between two
// distinct endpoints whose links share these parameters: uplink plus
// downlink latency and one serialization time (cut-through switching —
// the exact duration Fabric.Send charges when neither link is queued).
// This is the service-rate introspection hook the analytic fast path
// (internal/fastpath) prices network legs with.
func (lp LinkParams) PathCost(size int64) units.Duration {
	return 2*lp.Latency + units.TransferTime(size, lp.Bandwidth)
}

// Ethernet1G returns parameters for the 1 Gb/s Ethernet used by
// configurations A, B and C (≈117 MB/s raw, ≈112 MB/s after TCP/IP and
// filesystem protocol overhead).
func Ethernet1G() LinkParams {
	return LinkParams{Bandwidth: units.MBps(112), Latency: 50 * units.Microsecond}
}

// Ethernet10G returns parameters for 10 Gb/s Ethernet (≈1120 MB/s after
// protocol overhead), for what-if configuration exploration.
func Ethernet10G() LinkParams {
	return LinkParams{Bandwidth: units.MBps(1120), Latency: 20 * units.Microsecond}
}

// Infiniband20G returns parameters for Finisterrae's 20 Gb/s InfiniBand
// (4x DDR, ≈1900 MB/s effective after protocol overhead).
func Infiniband20G() LinkParams {
	return LinkParams{Bandwidth: units.MBps(1900), Latency: 4 * units.Microsecond}
}

// Link is a unidirectional shared medium. Use one Link per direction for
// full-duplex media.
type Link struct {
	name   string
	params LinkParams
	res    *des.Resource

	bytes    int64
	messages int64
	busy     units.Duration

	// Run-telemetry handles (nil-safe). Counters are shared by link name
	// across engines, so a sweep's thousand simulations of one spec
	// aggregate into one per-link series.
	cBytes *obs.Counter
	cMsgs  *obs.Counter

	flt *faults.Injector // nil on a healthy cluster
}

// NewLink creates a link on the engine.
func NewLink(eng *des.Engine, name string, params LinkParams) *Link {
	if params.Bandwidth <= 0 {
		panic(fmt.Sprintf("netsim: link %q without bandwidth", name))
	}
	l := &Link{name: name, params: params, res: des.NewResource(eng, "link:"+name, 1),
		flt: faults.For(eng)}
	if h := obs.Hot(); h != nil {
		l.cBytes = h.Counter("netsim/link/" + name + "/bytes")
		l.cMsgs = h.Counter("netsim/link/" + name + "/messages")
	}
	return l
}

// Name reports the link name.
func (l *Link) Name() string { return l.name }

// Transfer moves size bytes across the link, blocking the process for
// queueing plus latency plus serialization time.
func (l *Link) Transfer(p *des.Proc, size int64) {
	if size < 0 {
		panic("netsim: negative transfer")
	}
	l.res.Acquire(p, 1)
	d := l.params.Latency + units.TransferTime(size, l.params.Bandwidth)
	if l.flt != nil {
		// Outage first (a flapping link holds the frame until it is back
		// up), then degradation stretches the transfer itself.
		if w := l.flt.LinkOutage(l.name, p.Now()); w > 0 {
			p.Sleep(w)
		}
		d = units.Duration(float64(d) * l.flt.LinkFactor(l.name, p.Now()))
	}
	p.Sleep(d)
	l.res.Release(1)
	l.bytes += size
	l.messages++
	l.busy += d
	l.cBytes.Add(size)
	l.cMsgs.Inc()
}

// Stats reports cumulative traffic counters.
func (l *Link) Stats() (bytes, messages int64, busy units.Duration) {
	return l.bytes, l.messages, l.busy
}

// Bandwidth reports the configured payload rate.
func (l *Link) Bandwidth() units.Bandwidth { return l.params.Bandwidth }

// Latency reports the configured per-message latency.
func (l *Link) Latency() units.Duration { return l.params.Latency }

// Fabric is a star topology: every endpoint owns an uplink (endpoint →
// switch) and a downlink (switch → endpoint), and the switch core is
// non-blocking. A message from a to b crosses a's uplink then b's downlink,
// so endpoint NICs are the only contention points — a reasonable model of
// both the Gigabit switches of Aohyper and Finisterrae's InfiniBand fat
// tree at the scales the paper uses.
type Fabric struct {
	eng    *des.Engine
	name   string
	params LinkParams
	up     map[string]*Link
	down   map[string]*Link
	order  []string

	// Loopback traffic (src == dst in Send) never crosses a link, so it is
	// counted here instead of in any Link's Stats — summing link counters
	// meters the wire, while these meter the memory-copy path.
	localBytes    int64
	localMessages int64

	cLocalBytes *obs.Counter
	cLocalMsgs  *obs.Counter
}

// NewFabric creates an empty fabric whose endpoint links all share params.
func NewFabric(eng *des.Engine, name string, params LinkParams) *Fabric {
	f := &Fabric{
		eng:    eng,
		name:   name,
		params: params,
		up:     make(map[string]*Link),
		down:   make(map[string]*Link),
	}
	if h := obs.Hot(); h != nil {
		f.cLocalBytes = h.Counter("netsim/fabric/" + name + "/local_bytes")
		f.cLocalMsgs = h.Counter("netsim/fabric/" + name + "/local_messages")
	}
	return f
}

// AddEndpoint registers a named endpoint (a compute node or I/O node).
// Adding the same endpoint twice panics.
func (f *Fabric) AddEndpoint(name string) {
	if _, dup := f.up[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate endpoint %q", name))
	}
	f.up[name] = NewLink(f.eng, f.name+"/"+name+"/up", f.params)
	f.down[name] = NewLink(f.eng, f.name+"/"+name+"/down", f.params)
	f.order = append(f.order, name)
}

// HasEndpoint reports whether name is registered.
func (f *Fabric) HasEndpoint(name string) bool {
	_, ok := f.up[name]
	return ok
}

// Endpoints lists endpoint names in registration order.
func (f *Fabric) Endpoints() []string {
	out := make([]string, len(f.order))
	copy(out, f.order)
	return out
}

// Send moves size bytes from endpoint src to endpoint dst, blocking the
// calling process for the full transfer. Local sends (src == dst) cost a
// fixed memory-copy time and are metered by LocalStats, not by any link —
// they never occupy the wire, so including them in Link.Stats would
// overstate network utilization.
func (f *Fabric) Send(p *des.Proc, src, dst string, size int64) {
	if src == dst {
		if !f.HasEndpoint(src) {
			panic(fmt.Sprintf("netsim: unknown endpoint %q", src))
		}
		// Intra-node copy: memory bandwidth, effectively free relative
		// to any network on this simulator's scale.
		p.Sleep(units.TransferTime(size, units.GBps(4)))
		f.localBytes += size
		f.localMessages++
		f.cLocalBytes.Add(size)
		f.cLocalMsgs.Inc()
		return
	}
	upl, ok := f.up[src]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown src endpoint %q", src))
	}
	dnl, ok := f.down[dst]
	if !ok {
		panic(fmt.Sprintf("netsim: unknown dst endpoint %q", dst))
	}
	// Cut-through switching: the message occupies the uplink and the
	// destination downlink simultaneously and pays one serialization
	// time, as in a real pipelined switch. Acquisition order is always
	// uplink-then-downlink; the (src.up, dst.down) pairs of any two
	// transfers never form a cycle, so this cannot deadlock.
	upl.res.Acquire(p, 1)
	dnl.res.Acquire(p, 1)
	d := upl.params.Latency + dnl.params.Latency +
		units.TransferTime(size, minBW(upl.params.Bandwidth, dnl.params.Bandwidth))
	if flt := upl.flt; flt != nil {
		// The path is one pipelined transfer: wait out the longer of the
		// two endpoints' outages, then stretch by the worse degradation
		// factor — applied once, even when both links match an effect.
		w := flt.LinkOutage(upl.name, p.Now())
		if w2 := flt.LinkOutage(dnl.name, p.Now()); w2 > w {
			w = w2
		}
		if w > 0 {
			p.Sleep(w)
		}
		factor := flt.LinkFactor(upl.name, p.Now())
		if f2 := flt.LinkFactor(dnl.name, p.Now()); f2 > factor {
			factor = f2
		}
		d = units.Duration(float64(d) * factor)
	}
	p.Sleep(d)
	dnl.res.Release(1)
	upl.res.Release(1)
	for _, l := range [2]*Link{upl, dnl} {
		l.bytes += size
		l.messages++
		l.busy += d
		l.cBytes.Add(size)
		l.cMsgs.Inc()
	}
}

func minBW(a, b units.Bandwidth) units.Bandwidth {
	if a < b {
		return a
	}
	return b
}

// LocalStats reports cumulative loopback traffic: Send calls with
// src == dst, which take the memory-copy path and touch no link.
func (f *Fabric) LocalStats() (bytes, messages int64) {
	return f.localBytes, f.localMessages
}

// WireStats sums the uplink counters across every endpoint: each non-local
// message crosses exactly one uplink (and one downlink), so this is the
// unique wire traffic of the whole fabric — the shared-subsystem total
// that co-execution reports reconcile per-application attribution against.
func (f *Fabric) WireStats() (bytes, messages int64) {
	for _, name := range f.order {
		b, m, _ := f.up[name].Stats()
		bytes += b
		messages += m
	}
	return bytes, messages
}

// Uplink returns the uplink of an endpoint (for stats inspection).
func (f *Fabric) Uplink(name string) *Link { return f.up[name] }

// Downlink returns the downlink of an endpoint.
func (f *Fabric) Downlink(name string) *Link { return f.down[name] }
