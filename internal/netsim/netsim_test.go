package netsim

import (
	"fmt"
	"math"
	"testing"

	"iophases/internal/des"
	"iophases/internal/units"
)

func TestLinkSerializationTime(t *testing.T) {
	eng := des.NewEngine()
	l := NewLink(eng, "l", LinkParams{Bandwidth: units.MBps(100), Latency: units.Millisecond})
	var done units.Duration
	eng.Spawn("tx", func(p *des.Proc) {
		l.Transfer(p, 100*units.MiB)
		done = p.Now()
	})
	eng.Run()
	want := units.Second + units.Millisecond
	if done != want {
		t.Fatalf("transfer took %v, want %v", done, want)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	// Two concurrent 1s transfers through one link finish at 1s and 2s:
	// aggregate never exceeds link bandwidth.
	eng := des.NewEngine()
	l := NewLink(eng, "l", LinkParams{Bandwidth: units.MBps(100)})
	var ends []units.Duration
	for i := 0; i < 2; i++ {
		eng.Spawn(fmt.Sprintf("tx%d", i), func(p *des.Proc) {
			l.Transfer(p, 100*units.MiB)
			ends = append(ends, p.Now())
		})
	}
	eng.Run()
	if ends[0] != units.Second || ends[1] != 2*units.Second {
		t.Fatalf("ends = %v, want [1s 2s]", ends)
	}
}

func TestLinkStats(t *testing.T) {
	eng := des.NewEngine()
	l := NewLink(eng, "l", LinkParams{Bandwidth: units.MBps(100)})
	eng.Spawn("tx", func(p *des.Proc) {
		l.Transfer(p, 10*units.MiB)
		l.Transfer(p, 20*units.MiB)
	})
	eng.Run()
	bytes, msgs, _ := l.Stats()
	if bytes != 30*units.MiB || msgs != 2 {
		t.Fatalf("stats = %d bytes %d msgs", bytes, msgs)
	}
}

func TestFabricPointToPointBandwidth(t *testing.T) {
	// A single flow achieves the full link bandwidth (cut-through, not
	// store-and-forward).
	eng := des.NewEngine()
	f := NewFabric(eng, "net", LinkParams{Bandwidth: units.MBps(100)})
	f.AddEndpoint("a")
	f.AddEndpoint("b")
	var done units.Duration
	eng.Spawn("tx", func(p *des.Proc) {
		f.Send(p, "a", "b", 100*units.MiB)
		done = p.Now()
	})
	eng.Run()
	if done != units.Second {
		t.Fatalf("p2p transfer took %v, want 1s", done)
	}
}

func TestFabricServerBottleneck(t *testing.T) {
	// N clients sending to one server aggregate to the server downlink
	// bandwidth: total time ≈ N × (size/bw), the NFS mechanism.
	eng := des.NewEngine()
	f := NewFabric(eng, "net", LinkParams{Bandwidth: units.MBps(100)})
	const n = 4
	f.AddEndpoint("server")
	for i := 0; i < n; i++ {
		f.AddEndpoint(fmt.Sprintf("client%d", i))
	}
	for i := 0; i < n; i++ {
		src := fmt.Sprintf("client%d", i)
		eng.Spawn(src, func(p *des.Proc) {
			f.Send(p, src, "server", 100*units.MiB)
		})
	}
	eng.Run()
	if eng.Now() != units.Duration(n)*units.Second {
		t.Fatalf("aggregate time %v, want %ds", eng.Now(), n)
	}
}

func TestFabricParallelServersScale(t *testing.T) {
	// N clients striped across N servers all complete in one transfer
	// time: the PVFS/Lustre aggregation mechanism.
	eng := des.NewEngine()
	f := NewFabric(eng, "net", LinkParams{Bandwidth: units.MBps(100)})
	const n = 4
	for i := 0; i < n; i++ {
		f.AddEndpoint(fmt.Sprintf("client%d", i))
		f.AddEndpoint(fmt.Sprintf("server%d", i))
	}
	for i := 0; i < n; i++ {
		i := i
		eng.Spawn(fmt.Sprintf("tx%d", i), func(p *des.Proc) {
			f.Send(p, fmt.Sprintf("client%d", i), fmt.Sprintf("server%d", i), 100*units.MiB)
		})
	}
	eng.Run()
	if eng.Now() != units.Second {
		t.Fatalf("striped transfers took %v, want 1s", eng.Now())
	}
}

func TestFabricLocalSendCheap(t *testing.T) {
	eng := des.NewEngine()
	f := NewFabric(eng, "net", Ethernet1G())
	f.AddEndpoint("a")
	var done units.Duration
	eng.Spawn("tx", func(p *des.Proc) {
		f.Send(p, "a", "a", 100*units.MiB)
		done = p.Now()
	})
	eng.Run()
	net := units.TransferTime(100*units.MiB, Ethernet1G().Bandwidth)
	if done >= net {
		t.Fatalf("local copy %v not cheaper than network %v", done, net)
	}
}

// TestFabricLocalSendMetered pins where loopback traffic is counted: a
// src == dst Send must appear in LocalStats and leave every link counter
// untouched, so link stats keep meaning "bytes that crossed the wire".
func TestFabricLocalSendMetered(t *testing.T) {
	eng := des.NewEngine()
	f := NewFabric(eng, "net", Ethernet1G())
	f.AddEndpoint("a")
	f.AddEndpoint("b")
	eng.Spawn("tx", func(p *des.Proc) {
		f.Send(p, "a", "a", 64*units.MiB)
		f.Send(p, "a", "a", 64*units.MiB)
		f.Send(p, "a", "b", 1*units.MiB)
	})
	eng.Run()
	if bytes, msgs := f.LocalStats(); bytes != 128*units.MiB || msgs != 2 {
		t.Fatalf("LocalStats = (%d, %d), want (%d, 2)", bytes, msgs, 128*units.MiB)
	}
	for _, ep := range f.Endpoints() {
		for _, l := range [2]*Link{f.Uplink(ep), f.Downlink(ep)} {
			bytes, msgs, _ := l.Stats()
			wantBytes, wantMsgs := int64(0), int64(0)
			if l == f.Uplink("a") || l == f.Downlink("b") {
				wantBytes, wantMsgs = 1*units.MiB, 1 // the remote send only
			}
			if bytes != wantBytes || msgs != wantMsgs {
				t.Errorf("%s stats = (%d, %d), want (%d, %d)",
					l.Name(), bytes, msgs, wantBytes, wantMsgs)
			}
		}
	}
}

// A loopback Send on an unregistered endpoint is a wiring bug and panics,
// matching the remote path's behavior.
func TestFabricLocalSendUnknownEndpointPanics(t *testing.T) {
	eng := des.NewEngine()
	f := NewFabric(eng, "net", Ethernet1G())
	panicked := false
	eng.Spawn("tx", func(p *des.Proc) {
		defer func() { panicked = recover() != nil }()
		f.Send(p, "ghost", "ghost", 1)
	})
	eng.Run()
	if !panicked {
		t.Fatal("no panic on unknown loopback endpoint")
	}
}

func TestFabricDuplicateEndpointPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate endpoint")
		}
	}()
	f := NewFabric(des.NewEngine(), "net", Ethernet1G())
	f.AddEndpoint("a")
	f.AddEndpoint("a")
}

func TestPresetBandwidths(t *testing.T) {
	if got := Ethernet1G().Bandwidth.MBpsValue(); math.Abs(got-112) > 1 {
		t.Fatalf("1GbE = %v MB/s", got)
	}
	if ib := Infiniband20G().Bandwidth.MBpsValue(); ib < 1500 {
		t.Fatalf("IB 20G = %v MB/s, implausibly low", ib)
	}
	if Infiniband20G().Latency >= Ethernet1G().Latency {
		t.Fatal("InfiniBand latency should be below Ethernet latency")
	}
}

func TestCrossTrafficNoDeadlock(t *testing.T) {
	// a→b and b→a concurrently: the up/down split must not deadlock.
	eng := des.NewEngine()
	f := NewFabric(eng, "net", LinkParams{Bandwidth: units.MBps(100)})
	f.AddEndpoint("a")
	f.AddEndpoint("b")
	for i := 0; i < 8; i++ {
		src, dst := "a", "b"
		if i%2 == 1 {
			src, dst = "b", "a"
		}
		eng.Spawn(fmt.Sprintf("tx%d", i), func(p *des.Proc) {
			f.Send(p, src, dst, 10*units.MiB)
		})
	}
	eng.Run() // panics on deadlock
}
