// Package mpi provides a simulated MPI runtime: a fixed set of ranks
// executing as deterministic coroutines on a cluster fabric, with barriers,
// point-to-point transfers, collective cost models, busy-work — and, most
// importantly for the paper's methodology, a per-rank logical clock (the
// PAS2P "tick") that counts MPI events. Ticks are what let the phase
// analyzer tell "40 writes separated by solver communication" (40 phases)
// apart from "40 back-to-back reads" (one phase with rep 40).
package mpi

import (
	"fmt"
	"math"

	"iophases/internal/des"
	"iophases/internal/netsim"
	"iophases/internal/units"
)

// World is one simulated MPI job.
type World struct {
	eng     *des.Engine
	fab     *netsim.Fabric
	np      int
	nodeOf  []string
	barrier *des.Barrier
	latency units.Duration
	mail    map[[2]int]*des.Mailbox
	ranks   []*Rank
}

// NewWorld creates a job with np = len(nodes) ranks; nodes[r] is the fabric
// endpoint rank r runs on.
func NewWorld(eng *des.Engine, fab *netsim.Fabric, nodes []string) *World {
	if len(nodes) == 0 {
		panic("mpi: empty world")
	}
	for _, n := range nodes {
		if !fab.HasEndpoint(n) {
			panic(fmt.Sprintf("mpi: node %q not in fabric", n))
		}
	}
	w := &World{
		eng:     eng,
		fab:     fab,
		np:      len(nodes),
		nodeOf:  append([]string(nil), nodes...),
		barrier: des.NewBarrier(eng, "mpi-barrier", len(nodes)),
		latency: 50 * units.Microsecond,
		mail:    make(map[[2]int]*des.Mailbox),
	}
	return w
}

// Size reports the number of ranks.
func (w *World) Size() int { return w.np }

// Engine exposes the simulation engine the world runs on.
func (w *World) Engine() *des.Engine { return w.eng }

// Fabric exposes the interconnect.
func (w *World) Fabric() *netsim.Fabric { return w.fab }

// Latency reports the software messaging latency.
func (w *World) Latency() units.Duration { return w.latency }

// SetLatency overrides the software messaging latency used by collective
// cost models (default 50 µs, a TCP/Ethernet MPI stack; InfiniBand stacks
// are a few µs).
func (w *World) SetLatency(d units.Duration) { w.latency = d }

// NodeOf reports the endpoint of a rank.
func (w *World) NodeOf(rank int) string { return w.nodeOf[rank] }

// Run spawns every rank executing program and drives the simulation to
// completion, returning the elapsed virtual time.
func (w *World) Run(program func(r *Rank)) units.Duration {
	start := w.eng.Now()
	w.Launch(program, nil)
	w.eng.Run()
	return w.eng.Now() - start
}

// Launch spawns every rank without driving the engine, so several worlds
// (jobs) can share one cluster and execute concurrently; the caller runs
// the engine once after launching all jobs. onDone, if non-nil, fires when
// the job's last rank finishes.
func (w *World) Launch(program func(r *Rank), onDone func()) {
	w.ranks = make([]*Rank, w.np)
	remaining := w.np
	for i := 0; i < w.np; i++ {
		i := i
		r := &Rank{world: w, id: i}
		w.ranks[i] = r
		// Rank processes live on the shard of their compute node, so an
		// engine partitioned by node affinity keeps each rank's resume
		// events in its node's queue.
		w.eng.SpawnOn(w.eng.ShardOf(w.nodeOf[i]), fmt.Sprintf("rank%d", i), func(p *des.Proc) {
			r.proc = p
			program(r)
			remaining--
			if remaining == 0 && onDone != nil {
				onDone()
			}
		})
	}
}

// mailbox returns the (src→dst) channel, creating it on first use.
func (w *World) mailbox(src, dst int) *des.Mailbox {
	key := [2]int{src, dst}
	mb, ok := w.mail[key]
	if !ok {
		mb = des.NewMailbox(w.eng, fmt.Sprintf("mpi-%d->%d", src, dst), 1)
		w.mail[key] = mb
	}
	return mb
}

// Rank is one MPI process. All methods must be called from the rank's own
// coroutine (the program function passed to Run).
type Rank struct {
	world *World
	id    int
	proc  *des.Proc
	tick  int64
}

// ID reports the MPI rank (idP in the paper's notation).
func (r *Rank) ID() int { return r.id }

// Size reports the communicator size.
func (r *Rank) Size() int { return r.world.np }

// Node reports the rank's fabric endpoint.
func (r *Rank) Node() string { return r.world.nodeOf[r.id] }

// Proc exposes the underlying simulated process (for I/O layers).
func (r *Rank) Proc() *des.Proc { return r.proc }

// World exposes the enclosing job.
func (r *Rank) World() *World { return r.world }

// Tick reports the rank's current logical clock value.
func (r *Rank) Tick() int64 { return r.tick }

// NextTick advances and returns the logical clock; every MPI event
// (communication or I/O) consumes exactly one tick, mirroring PAS2P.
func (r *Rank) NextTick() int64 {
	r.tick++
	return r.tick
}

// Now reports virtual time.
func (r *Rank) Now() units.Duration { return r.proc.Now() }

// Compute burns d of busy-work. It is not an MPI event: no tick.
func (r *Rank) Compute(d units.Duration) { r.proc.Sleep(d) }

// Barrier synchronizes all ranks (one tick).
func (r *Rank) Barrier() {
	r.NextTick()
	// log2(np) software phases of latency before the rendezvous.
	r.proc.Sleep(units.Duration(logPhases(r.world.np)) * r.world.latency)
	r.world.barrier.Wait(r.proc)
}

// Sync blocks until every rank has called it, without consuming a tick.
// Composite operations (collective I/O, collective open/close) use it so
// the whole operation costs exactly one logical event, as the tracer sees
// one MPI-IO call.
func (r *Rank) Sync() {
	r.world.barrier.Wait(r.proc)
}

// Send transfers size bytes to rank dst (one tick), blocking until the
// matching Recv caught up (rendezvous for large messages).
func (r *Rank) Send(dst int, size int64) {
	r.NextTick()
	r.world.fab.Send(r.proc, r.Node(), r.world.nodeOf[dst], size)
	r.world.mailbox(r.id, dst).Put(r.proc, size)
}

// Recv receives the next message from rank src (one tick) and reports its
// size.
func (r *Rank) Recv(src int) int64 {
	r.NextTick()
	v := r.world.mailbox(src, r.id).Get(r.proc)
	return v.(int64)
}

// Exchange models one neighbor halo exchange of size bytes with rank
// (id+1)%np — the dominant communication of stencil solvers like BT. It
// costs one tick and the network transfer time, without rendezvous
// bookkeeping (both directions are charged to the caller's links).
func (r *Rank) Exchange(size int64) {
	r.NextTick()
	dst := (r.id + 1) % r.world.np
	r.world.fab.Send(r.proc, r.Node(), r.world.nodeOf[dst], size)
}

// Bcast models a binomial-tree broadcast of size bytes rooted anywhere
// (one tick): log2(np) stages of latency plus one transfer per stage on the
// caller's path.
func (r *Rank) Bcast(size int64) {
	r.NextTick()
	stages := logPhases(r.world.np)
	r.proc.Sleep(units.Duration(stages) * r.world.latency)
	if size > 0 && stages > 0 {
		dst := (r.id + 1) % r.world.np
		r.world.fab.Send(r.proc, r.Node(), r.world.nodeOf[dst], size)
	}
	r.world.barrier.Wait(r.proc)
}

// Allreduce models a recursive-doubling allreduce of size bytes (one tick).
func (r *Rank) Allreduce(size int64) {
	r.NextTick()
	stages := logPhases(r.world.np)
	r.proc.Sleep(units.Duration(stages) * r.world.latency)
	if size > 0 {
		dst := (r.id + 1) % r.world.np
		for s := 0; s < stages; s++ {
			r.world.fab.Send(r.proc, r.Node(), r.world.nodeOf[dst], size)
		}
	}
	r.world.barrier.Wait(r.proc)
}

// logPhases is ceil(log2(n)), the stage count of tree collectives.
func logPhases(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}
