package mpi

import (
	"fmt"
	"reflect"
	"testing"

	"iophases/internal/des"
	"iophases/internal/netsim"
	"iophases/internal/units"
)

func newTestWorld(np int) (*des.Engine, *World) {
	eng := des.NewEngine()
	fab := netsim.NewFabric(eng, "net", netsim.LinkParams{Bandwidth: units.MBps(100), Latency: 10 * units.Microsecond})
	nodes := make([]string, np)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("n%d", i/2) // two ranks per node
	}
	for i := 0; i < (np+1)/2; i++ {
		fab.AddEndpoint(fmt.Sprintf("n%d", i))
	}
	return eng, NewWorld(eng, fab, nodes)
}

func TestRunExecutesAllRanks(t *testing.T) {
	_, w := newTestWorld(4)
	var ids []int
	w.Run(func(r *Rank) {
		r.Compute(units.Duration(r.ID()) * units.Millisecond)
		ids = append(ids, r.ID())
	})
	if !reflect.DeepEqual(ids, []int{0, 1, 2, 3}) {
		t.Fatalf("completion order %v", ids)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	_, w := newTestWorld(4)
	var releases []units.Duration
	w.Run(func(r *Rank) {
		r.Compute(units.Duration(r.ID()+1) * units.Second)
		r.Barrier()
		releases = append(releases, r.Now())
	})
	for _, at := range releases {
		if at < 4*units.Second {
			t.Fatalf("released at %v before last arrival", at)
		}
	}
}

func TestTicksCountMPIEvents(t *testing.T) {
	_, w := newTestWorld(2)
	var ticks []int64
	w.Run(func(r *Rank) {
		r.Barrier()             // tick 1
		r.Compute(units.Second) // no tick
		r.Barrier()             // tick 2
		r.Exchange(1024)        // tick 3
		r.Barrier()             // tick 4
		ticks = append(ticks, r.Tick())
	})
	for _, tk := range ticks {
		if tk != 4 {
			t.Fatalf("tick = %d, want 4 (compute must not tick)", tk)
		}
	}
}

func TestSendRecvRendezvous(t *testing.T) {
	_, w := newTestWorld(2)
	var got int64
	var recvAt units.Duration
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 10*units.MiB)
		} else {
			r.Compute(units.Second)
			got = r.Recv(0)
			recvAt = r.Now()
		}
	})
	if got != 10*units.MiB {
		t.Fatalf("recv size %d", got)
	}
	if recvAt < units.Second {
		t.Fatalf("recv at %v", recvAt)
	}
}

func TestSyncDoesNotTick(t *testing.T) {
	_, w := newTestWorld(3)
	w.Run(func(r *Rank) {
		r.Sync()
		if r.Tick() != 0 {
			t.Errorf("Sync consumed a tick: %d", r.Tick())
		}
	})
}

func TestCollectivesCostScalesWithLatency(t *testing.T) {
	run := func(lat units.Duration) units.Duration {
		eng, w := newTestWorld(8)
		w.SetLatency(lat)
		w.Run(func(r *Rank) {
			for i := 0; i < 10; i++ {
				r.Barrier()
			}
		})
		return eng.Now()
	}
	slow, fast := run(units.Millisecond), run(10*units.Microsecond)
	if slow <= fast {
		t.Fatalf("barrier cost: slow-lat %v <= fast-lat %v", slow, fast)
	}
}

func TestBcastAndAllreduceComplete(t *testing.T) {
	_, w := newTestWorld(4)
	var ticks []int64
	w.Run(func(r *Rank) {
		r.Bcast(units.MiB)
		r.Allreduce(8)
		ticks = append(ticks, r.Tick())
	})
	for _, tk := range ticks {
		if tk != 2 {
			t.Fatalf("tick = %d after bcast+allreduce", tk)
		}
	}
}

func TestWorldDeterminism(t *testing.T) {
	run := func() units.Duration {
		eng, w := newTestWorld(6)
		w.Run(func(r *Rank) {
			for k := 0; k < 5; k++ {
				r.Compute(units.Duration(1+(r.ID()*3+k)%4) * units.Millisecond)
				r.Exchange(int64(1+k) * units.MiB)
				r.Barrier()
			}
		})
		return eng.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestNodeMapping(t *testing.T) {
	_, w := newTestWorld(4)
	if w.NodeOf(0) != "n0" || w.NodeOf(1) != "n0" || w.NodeOf(2) != "n1" {
		t.Fatalf("node mapping wrong: %s %s %s", w.NodeOf(0), w.NodeOf(1), w.NodeOf(2))
	}
}
