package faults

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"iophases/internal/des"
	"iophases/internal/units"
)

func attach(t *testing.T, sch *Schedule) *Injector {
	t.Helper()
	eng := des.NewEngine()
	Attach(eng, sch, "test")
	inj := For(eng)
	if inj == nil {
		t.Fatal("Attach did not register an injector")
	}
	return inj
}

func TestValidateRejectsBadSchedules(t *testing.T) {
	cases := []struct {
		name string
		sch  *Schedule
		want string
	}{
		{"nil", nil, "nil schedule"},
		{"empty", &Schedule{Name: "e"}, "no effects"},
		{"factor", &Schedule{Effects: []Effect{{Kind: SlowDisk, Factor: 1}}}, "must exceed 1"},
		{"negative-from", &Schedule{Effects: []Effect{{Kind: SlowDisk, Factor: 2, FromSec: -1}}}, "negative"},
		{"member", &Schedule{Effects: []Effect{{Kind: RAIDMemberLost, Member: -1}}}, "negative"},
		{"flap", &Schedule{Effects: []Effect{{Kind: LinkFlap, DownMs: 10}}}, "positive"},
		{"prob", &Schedule{Effects: []Effect{{Kind: TransientError, Prob: 1.5, OpCount: 1}}}, "outside"},
		{"budget", &Schedule{Effects: []Effect{{Kind: TransientError, Prob: 0.5}}}, "opCount"},
		{"kind", &Schedule{Effects: []Effect{{Kind: "meteor-strike"}}}, "unknown kind"},
		{"inverted", &Schedule{Effects: []Effect{{Kind: SlowDisk, Factor: 2, FromSec: 5, ForSec: -3}}}, "end before it starts"},
	}
	for _, tc := range cases {
		err := tc.sch.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestPresetsValidAndSorted(t *testing.T) {
	names := PresetNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("preset names not sorted: %v", names)
	}
	if len(names) < 5 {
		t.Fatalf("presets = %v", names)
	}
	for _, name := range names {
		s, ok := Preset(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
		if s.Name != name {
			t.Errorf("preset %q self-names %q", name, s.Name)
		}
	}
}

func TestResolvePresetFileAndUnknown(t *testing.T) {
	if s, err := Resolve("slow-disk"); err != nil || s.Name != "slow-disk" {
		t.Fatalf("preset resolve: %v, %v", s, err)
	}

	path := filepath.Join(t.TempDir(), "scenario.json")
	body := `{"seed": 7, "effects": [{"kind": "slow-disk", "factor": 2.5, "fromSec": 10, "forSec": 5}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Resolve(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := strings.TrimSuffix(path, ".json"); s.Name != want {
		t.Fatalf("file schedule name %q, want %q (path sans .json)", s.Name, want)
	}
	if s.Seed != 7 || len(s.Effects) != 1 || s.Effects[0].Factor != 2.5 {
		t.Fatalf("loaded schedule %+v", s)
	}

	_, err = Resolve("no-such-scenario")
	if err == nil || !strings.Contains(err.Error(), "slow-disk") {
		t.Fatalf("unknown-arg error should list presets, got: %v", err)
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"effects": [{"kind": "slow-disk", "factor": 0.5}]}`), 0o644)
	if _, err := Resolve(bad); err == nil {
		t.Fatal("invalid scenario file accepted")
	}
}

// TestLoadScenarioErrorPaths pins that every malformed scenario file
// comes back as a diagnostic error — never a panic and never a
// silently-accepted schedule (DESIGN.md §9: bad input must not ship a
// wrong table).
func TestLoadScenarioErrorPaths(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := []struct {
		name string
		body string
		want string
	}{
		{"syntax.json", `{"effects": [`, "unexpected end"},
		{"notjson.json", `slow-disk factor 3`, "invalid character"},
		{"unknown-kind.json", `{"effects": [{"kind": "meteor-strike", "fromSec": 1}]}`, "unknown kind"},
		{"inverted.json", `{"effects": [{"kind": "slow-disk", "factor": 2, "fromSec": 5, "forSec": -3}]}`, "end before it starts"},
	}
	for _, tc := range cases {
		path := write(tc.name, tc.body)
		s, err := Load(path)
		if err == nil {
			t.Errorf("%s: accepted as %+v, want error", tc.name, s)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("nonexistent file accepted")
	}
}

func TestDiskTimeScalesOnlyInsideWindow(t *testing.T) {
	inj := attach(t, &Schedule{Name: "w", Effects: []Effect{
		{Kind: SlowDisk, Match: "ion0", Factor: 3, FromSec: 10, ForSec: 10},
	}})
	base := 100 * units.Millisecond
	cases := []struct {
		name string
		now  units.Duration
		want units.Duration
	}{
		{"ion0/d0", 5 * units.Second, base},      // before the window
		{"ion0/d0", 15 * units.Second, 3 * base}, // inside
		{"ion0/d0", 20 * units.Second, base},     // window end is exclusive
		{"ion1/d0", 15 * units.Second, base},     // name does not match
	}
	for _, tc := range cases {
		if got := inj.DiskTime(tc.name, tc.now, base); got != tc.want {
			t.Errorf("DiskTime(%s, %v) = %v, want %v", tc.name, tc.now, got, tc.want)
		}
	}
}

func TestLinkFactorAndOutage(t *testing.T) {
	inj := attach(t, &Schedule{Name: "n", Effects: []Effect{
		{Kind: LinkDegraded, Factor: 2},
		{Kind: LinkFlap, DownMs: 20, UpMs: 80},
	}})
	if f := inj.LinkFactor("node0:up", 0); f != 2 {
		t.Fatalf("factor %v", f)
	}
	// The flap cycle is phase-locked to the window start (0s): down for
	// [0, 20ms), up for [20ms, 100ms), repeating.
	if w := inj.LinkOutage("node0:up", 5*units.Millisecond); w != 15*units.Millisecond {
		t.Fatalf("outage at 5ms = %v, want 15ms", w)
	}
	if w := inj.LinkOutage("node0:up", 50*units.Millisecond); w != 0 {
		t.Fatalf("outage in up phase = %v", w)
	}
	if w := inj.LinkOutage("node0:up", 100*units.Millisecond); w != 20*units.Millisecond {
		t.Fatalf("outage at next cycle start = %v, want 20ms", w)
	}
}

func TestLostMemberRebuildWindow(t *testing.T) {
	// 100 MiB member at 50 MB/s rebuilds in 2 virtual seconds.
	capB := int64(100 * units.MiB)
	inj := attach(t, &Schedule{Name: "r", Effects: []Effect{
		{Kind: RAIDMemberLost, Member: 5, RebuildMBps: 50, FromSec: 1},
	}})
	if _, lost := inj.LostMember("a", 500*units.Millisecond, 4, capB); lost {
		t.Fatal("lost before the window")
	}
	m, lost := inj.LostMember("a", 2*units.Second, 4, capB)
	if !lost || m != 1 {
		t.Fatalf("mid-rebuild: member %d lost %v, want 1 true (5 %% 4)", m, lost)
	}
	if _, lost := inj.LostMember("a", 4*units.Second, 4, capB); lost {
		t.Fatal("still lost after the rebuild finished")
	}

	// Open-ended loss: no rate, no duration — the member never returns.
	inj = attach(t, &Schedule{Name: "r2", Effects: []Effect{
		{Kind: RAIDMemberLost, Member: 0},
	}})
	if _, lost := inj.LostMember("a", 3600*units.Second, 4, capB); !lost {
		t.Fatal("open-ended loss ended")
	}
}

func TestOpErrorBudgetAndDeterminism(t *testing.T) {
	mk := func() *Injector {
		return attach(t, &Schedule{Name: "t", Seed: 42, Effects: []Effect{
			{Kind: TransientError, Prob: 0.5, OpCount: 10},
		}})
	}
	draw := func(in *Injector, n int) []bool {
		out := make([]bool, n)
		for i := range out {
			out[i] = in.OpError(units.Second) != nil
		}
		return out
	}
	a, b := draw(mk(), 200), draw(mk(), 200)
	injected := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
		if a[i] {
			injected++
		}
	}
	if injected != 10 {
		t.Fatalf("injected %d errors, want exactly the OpCount budget of 10", injected)
	}

	// Certain failure, budget 3: exactly the first three ops fail.
	in := attach(t, &Schedule{Name: "t2", Effects: []Effect{
		{Kind: TransientError, Prob: 1, OpCount: 3},
	}})
	for i := 0; i < 3; i++ {
		if in.OpError(0) == nil {
			t.Fatalf("op %d should fail", i)
		}
	}
	if in.OpError(0) != nil {
		t.Fatal("budget exhausted but still failing")
	}
}

func TestForNilOnHealthyEngine(t *testing.T) {
	if inj := For(des.NewEngine()); inj != nil {
		t.Fatalf("healthy engine has injector %v", inj)
	}
}
