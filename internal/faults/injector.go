package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"iophases/internal/des"
	"iophases/internal/obs"
	"iophases/internal/units"
)

// ErrTransient is the injected failure for transient-error effects. The
// MPI-IO layer retries it with exponential backoff; it never escapes a
// simulation as a panic.
var ErrTransient = errors.New("faults: transient I/O error")

// Injector is a schedule bound to one engine: the object the service
// layers (disksim, netsim, fsim) consult. One injector belongs to exactly
// one engine and is only touched from that engine's goroutine chain, so —
// like every DES structure — it needs no locking and its rand stream is
// consumed in deterministic event order.
type Injector struct {
	sch *Schedule
	rng *rand.Rand
	// budget holds the remaining transient-error injections per effect
	// (indexed like sch.Effects; 0 for other kinds).
	budget []int

	injected *obs.Counter // faults/transient_errors
	retries  *obs.Counter // faults/retries
	backoff  *obs.Counter // faults/backoff_us
}

// Attach binds a validated schedule to the engine and records the fault
// windows as timeline spans under the configuration's name. cluster.Build
// calls it right after NewEngine, before any device exists, so every
// device constructor sees the injector via For. An invalid schedule is a
// programming error here — all loading paths validate — so Attach panics
// rather than limping into a half-configured simulation.
func Attach(eng *des.Engine, sch *Schedule, configName string) {
	if err := sch.Validate(); err != nil {
		panic(err.Error())
	}
	reg := obs.Default()
	inj := &Injector{
		sch:      sch,
		rng:      rand.New(rand.NewSource(sch.Seed)),
		budget:   make([]int, len(sch.Effects)),
		injected: reg.Counter("faults/transient_errors"),
		retries:  reg.Counter("faults/retries"),
		backoff:  reg.Counter("faults/backoff_us"),
	}
	for i, e := range sch.Effects {
		if e.Kind == TransientError {
			inj.budget[i] = e.OpCount
		}
	}
	eng.SetFaultCtx(inj)
	emitWindows(sch, configName)
}

// For reports the engine's injector, nil when the run is healthy. Devices
// call it once at construction and keep the (possibly nil) handle — the
// healthy service path then costs a single nil check.
func For(eng *des.Engine) *Injector {
	if inj, ok := eng.FaultCtx().(*Injector); ok {
		return inj
	}
	return nil
}

// DiskTime scales a disk's service time by every active slow-disk effect
// matching the disk name.
func (in *Injector) DiskTime(name string, now, t units.Duration) units.Duration {
	for _, e := range in.sch.Effects {
		if e.Kind == SlowDisk && e.active(now) && e.matches(name) {
			t = units.Duration(float64(t) * e.Factor)
		}
	}
	return t
}

// LinkFactor reports the combined service-time multiplier of the active
// link-degraded effects matching the link name (1 when none apply).
// Callers comparing a transfer's two endpoints take the max and apply it
// once, so a path whose uplink and downlink both match is not scaled
// twice.
func (in *Injector) LinkFactor(name string, now units.Duration) float64 {
	f := 1.0
	for _, e := range in.sch.Effects {
		if e.Kind == LinkDegraded && e.active(now) && e.matches(name) {
			f *= e.Factor
		}
	}
	return f
}

// LinkOutage reports how long a transfer starting now on the named link
// must wait for the link to come back up (0 when it is up). Flap cycles
// are a pure function of virtual time — down for DownMs then up for UpMs,
// phase-locked to the window start — so outages are deterministic and
// identical across runs.
func (in *Injector) LinkOutage(name string, now units.Duration) units.Duration {
	var wait units.Duration
	for _, e := range in.sch.Effects {
		if e.Kind != LinkFlap || !e.active(now) || !e.matches(name) {
			continue
		}
		down := units.Duration(e.DownMs * float64(units.Millisecond))
		up := units.Duration(e.UpMs * float64(units.Millisecond))
		pos := (now - units.FromSeconds(e.FromSec)) % (down + up)
		if pos < down {
			if w := down - pos; w > wait {
				wait = w
			}
		}
	}
	return wait
}

// LostMember reports which member (normalized into [0, members)) of the
// named array is lost at now, if any. The degraded window runs from the
// effect start until the rebuild finishes: ForSec when set, otherwise
// member-capacity / RebuildMBps (open-ended when neither is set — the
// operator never swapped the drive).
func (in *Injector) LostMember(name string, now units.Duration, members int, memberCapB int64) (int, bool) {
	for _, e := range in.sch.Effects {
		if e.Kind != RAIDMemberLost || !e.matches(name) {
			continue
		}
		from := units.FromSeconds(e.FromSec)
		to := units.Duration(1<<63 - 1)
		switch {
		case e.ForSec > 0:
			to = from + units.FromSeconds(e.ForSec)
		case e.RebuildMBps > 0:
			rebuild := float64(memberCapB) / (e.RebuildMBps * float64(units.MiB)) // seconds
			to = from + units.FromSeconds(rebuild)
		}
		if now >= from && now < to {
			return e.Member % members, true
		}
	}
	return 0, false
}

// OpError decides whether a filesystem chunk operation starting now fails
// with an injected transient error. Each draw consumes the injector's
// seeded rand stream in event order; the per-effect OpCount budget bounds
// total injections, which is what guarantees the retry loops above this
// layer terminate.
func (in *Injector) OpError(now units.Duration) error {
	for i, e := range in.sch.Effects {
		if e.Kind != TransientError || in.budget[i] <= 0 || !e.active(now) {
			continue
		}
		if in.rng.Float64() < e.Prob {
			in.budget[i]--
			in.injected.Inc()
			return ErrTransient
		}
	}
	return nil
}

// NoteRetry records one retry and the virtual time it will spend backing
// off. Called by the MPI-IO retry loop just before it sleeps.
func (in *Injector) NoteRetry(backoff units.Duration) {
	in.retries.Inc()
	in.backoff.Add(int64(backoff / units.Microsecond))
}

// Schedule reports the attached schedule.
func (in *Injector) Schedule() *Schedule { return in.sch }

// spanHorizon caps the rendered end of open-ended fault windows: Perfetto
// needs a finite span, and an hour of virtual time outlasts every
// experiment in the suite.
const spanHorizon = 3600 * units.Second

// emittedWindows dedupes timeline emission per (schedule, config): a sweep
// builds thousands of clusters from one spec, and one span set per
// scenario — not one per engine — is what a human wants to see.
var (
	emittedMu      sync.Mutex
	emittedWindows = map[string]bool{}
)

// emitWindows records each effect window as a span on a "faults" timeline
// track named after the configuration. No-op without a -timeline recorder.
func emitWindows(sch *Schedule, configName string) {
	rec := obs.Timeline()
	if rec == nil {
		return
	}
	key := sch.Name + "\x00" + configName
	emittedMu.Lock()
	if emittedWindows[key] {
		emittedMu.Unlock()
		return
	}
	emittedWindows[key] = true
	emittedMu.Unlock()

	tr := rec.Track("faults", configName)
	for _, e := range sch.Effects {
		from, to := e.window()
		if to > spanHorizon {
			to = spanHorizon
		}
		args := []obs.Arg{{Key: "schedule", Value: sch.Name}}
		switch e.Kind {
		case SlowDisk, LinkDegraded:
			args = append(args, obs.Arg{Key: "factor", Value: e.Factor})
		case RAIDMemberLost:
			args = append(args, obs.Arg{Key: "member", Value: e.Member},
				obs.Arg{Key: "rebuildMBps", Value: e.RebuildMBps})
		case LinkFlap:
			args = append(args, obs.Arg{Key: "downMs", Value: e.DownMs},
				obs.Arg{Key: "upMs", Value: e.UpMs})
		case TransientError:
			args = append(args, obs.Arg{Key: "prob", Value: e.Prob},
				obs.Arg{Key: "opCount", Value: e.OpCount})
		}
		name := string(e.Kind)
		if e.Match != "" {
			name = fmt.Sprintf("%s[%s]", e.Kind, e.Match)
		}
		tr.Span(name, int64(from), int64(to), args...)
	}
}

// ResetEmitted clears the per-process span-emission dedup set (tests).
func ResetEmitted() {
	emittedMu.Lock()
	emittedWindows = map[string]bool{}
	emittedMu.Unlock()
}
