// Package faults is a seeded, deterministic fault-schedule engine for the
// simulated I/O subsystems. A Schedule is a set of virtual-time windows,
// each carrying one effect — a slowed disk, a lost RAID member under
// rebuild, a degraded or flapping link, or transient I/O errors — and the
// service layers (disksim, netsim, fsim) consult an Injector attached to
// their engine on every request. With no schedule attached every consult
// is a single nil check, so healthy runs are byte-identical to a build
// without this package.
//
// Determinism rules (DESIGN.md §9):
//
//   - Effects are pure functions of virtual time wherever possible
//     (windows, factors, flap duty cycles). The only randomness —
//     transient-error draws — comes from a per-engine rand stream seeded
//     from Schedule.Seed, consulted in discrete-event order on the
//     engine's single goroutine chain. Two engines built from the same
//     (spec, schedule) therefore inject identical fault sequences, so a
//     sweep at any -j reproduces the -j 1 results bit for bit.
//
//   - A schedule is part of a configuration's physical identity: it rides
//     on cluster.Spec, so the simcache content-address fingerprint keys
//     healthy and degraded runs separately and a degraded replay can never
//     be served a healthy run's cached result.
package faults

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"iophases/internal/units"
)

// Kind names an effect type.
type Kind string

// Effect kinds.
const (
	// SlowDisk multiplies matching disks' service time by Factor inside
	// the window (a failing spindle, a firmware-throttled drive).
	SlowDisk Kind = "slow-disk"
	// RAIDMemberLost fails member Member of matching RAID5 arrays at
	// From. The array serves degraded — reconstruction reads, skipped
	// writes — until the rebuild finishes (member capacity / RebuildMBps;
	// ForSec, when positive, overrides that duration). RAID0 arrays have
	// no redundancy and ignore the effect.
	RAIDMemberLost Kind = "raid-member-lost"
	// LinkDegraded multiplies matching links' transfer duration by Factor
	// inside the window (autonegotiation fallback, a congested uplink).
	LinkDegraded Kind = "link-degraded"
	// LinkFlap takes matching links down for DownMs then up for UpMs,
	// cycling through the window; transfers arriving during an outage
	// wait for the next up instant.
	LinkFlap Kind = "link-flap"
	// TransientError makes filesystem chunk operations inside the window
	// fail with probability Prob, at most OpCount times in total. Failed
	// operations are retried by the MPI-IO layer with exponential
	// backoff; the finite budget guarantees retries terminate.
	TransientError Kind = "transient-error"
)

// Effect is one fault window. Fields beyond Kind/Match/FromSec/ForSec are
// kind-specific; Validate enforces which apply.
type Effect struct {
	Kind Kind `json:"kind"`
	// Match restricts the effect to components whose name contains the
	// substring (disk, array or link names as built by cluster.Build,
	// e.g. "ion00"). Empty matches every component the kind applies to.
	Match string `json:"match,omitempty"`
	// FromSec is the window start in virtual seconds.
	FromSec float64 `json:"fromSec"`
	// ForSec is the window length in virtual seconds; <= 0 means the
	// effect lasts for the rest of the run.
	ForSec float64 `json:"forSec,omitempty"`

	// Factor scales service time for slow-disk / link-degraded (> 1).
	Factor float64 `json:"factor,omitempty"`
	// Member is the lost member index for raid-member-lost.
	Member int `json:"member,omitempty"`
	// RebuildMBps is the rebuild rate for raid-member-lost; the degraded
	// window ends after member-capacity / rate. <= 0 with ForSec <= 0
	// means the member never comes back.
	RebuildMBps float64 `json:"rebuildMBps,omitempty"`
	// DownMs / UpMs are the link-flap duty cycle.
	DownMs float64 `json:"downMs,omitempty"`
	UpMs   float64 `json:"upMs,omitempty"`
	// Prob is the per-operation transient-error probability in [0, 1].
	Prob float64 `json:"prob,omitempty"`
	// OpCount is the transient-error budget (total injected failures).
	OpCount int `json:"opCount,omitempty"`
}

// window reports the effect's active interval. Open-ended windows extend
// to the end of virtual time.
func (e Effect) window() (from, to units.Duration) {
	from = units.FromSeconds(e.FromSec)
	if e.ForSec > 0 {
		return from, from + units.FromSeconds(e.ForSec)
	}
	return from, units.Duration(1<<63 - 1)
}

// active reports whether now falls inside the effect window.
func (e Effect) active(now units.Duration) bool {
	from, to := e.window()
	return now >= from && now < to
}

// matches reports whether the effect applies to the named component.
func (e Effect) matches(name string) bool {
	return e.Match == "" || strings.Contains(name, e.Match)
}

// validate checks one effect's kind-specific fields.
func (e Effect) validate(i int) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("faults: effect %d (%s): %s", i, e.Kind, fmt.Sprintf(format, args...))
	}
	if e.FromSec < 0 {
		return bad("fromSec %v is negative", e.FromSec)
	}
	if e.ForSec < 0 {
		return bad("forSec %v is negative: the window would end before it starts (omit or use 0 for open-ended)", e.ForSec)
	}
	switch e.Kind {
	case SlowDisk, LinkDegraded:
		if e.Factor <= 1 {
			return bad("factor %v must exceed 1", e.Factor)
		}
	case RAIDMemberLost:
		if e.Member < 0 {
			return bad("member %d is negative", e.Member)
		}
	case LinkFlap:
		if e.DownMs <= 0 || e.UpMs <= 0 {
			return bad("downMs/upMs must both be positive (got %v/%v)", e.DownMs, e.UpMs)
		}
	case TransientError:
		if e.Prob <= 0 || e.Prob > 1 {
			return bad("prob %v outside (0, 1]", e.Prob)
		}
		if e.OpCount <= 0 {
			return bad("opCount %d must be positive: the finite budget is what guarantees retries terminate", e.OpCount)
		}
	default:
		return bad("unknown kind")
	}
	return nil
}

// Schedule is a named, seeded set of fault effects — one degraded-mode
// scenario. The zero Seed is valid (a fixed default stream).
type Schedule struct {
	Name    string   `json:"name"`
	Seed    int64    `json:"seed,omitempty"`
	Effects []Effect `json:"effects"`
}

// Validate checks the schedule. Every loading path (files, presets,
// CompareDegraded) validates before any simulation is built.
func (s *Schedule) Validate() error {
	if s == nil {
		return fmt.Errorf("faults: nil schedule")
	}
	if len(s.Effects) == 0 {
		return fmt.Errorf("faults: schedule %q has no effects", s.Name)
	}
	for i, e := range s.Effects {
		if err := e.validate(i); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a scenario JSON file.
func Load(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("faults: %s: %w", path, err)
	}
	if s.Name == "" {
		s.Name = strings.TrimSuffix(path, ".json")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// presets are the named built-in scenarios.
func presets() map[string]*Schedule {
	return map[string]*Schedule{
		// A spindle serving at a third of its rate for the whole run.
		"slow-disk": {
			Name: "slow-disk",
			Effects: []Effect{
				{Kind: SlowDisk, Factor: 3},
			},
		},
		// One RAID member lost at t=0, rebuilding at 80 MB/s — the
		// state a real array spends hours in after a drive swap.
		"raid-rebuild": {
			Name: "raid-rebuild",
			Effects: []Effect{
				{Kind: RAIDMemberLost, Member: 0, RebuildMBps: 80},
			},
		},
		// A NIC negotiated down plus periodic short outages.
		"flaky-net": {
			Name: "flaky-net",
			Effects: []Effect{
				{Kind: LinkDegraded, Factor: 2},
				{Kind: LinkFlap, DownMs: 20, UpMs: 480},
			},
		},
		// Sporadic failed server requests, retried by the MPI-IO layer.
		"transient-errors": {
			Name: "transient-errors",
			Seed: 1,
			Effects: []Effect{
				{Kind: TransientError, Prob: 0.05, OpCount: 200},
			},
		},
		// Everything at once: the cluster on its worst day.
		"degraded-mix": {
			Name: "degraded-mix",
			Seed: 1,
			Effects: []Effect{
				{Kind: SlowDisk, Factor: 2},
				{Kind: RAIDMemberLost, Member: 0, RebuildMBps: 80},
				{Kind: LinkDegraded, Factor: 1.5},
				{Kind: TransientError, Prob: 0.02, OpCount: 100},
			},
		},
	}
}

// Preset returns a named built-in scenario.
func Preset(name string) (*Schedule, bool) {
	s, ok := presets()[name]
	return s, ok
}

// PresetNames lists the built-in scenario names, sorted.
func PresetNames() []string {
	m := presets()
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Resolve turns a -faults argument into a validated schedule: a preset
// name first, otherwise a scenario JSON path.
func Resolve(arg string) (*Schedule, error) {
	if s, ok := Preset(arg); ok {
		return s, nil
	}
	s, err := Load(arg)
	if err != nil {
		if os.IsNotExist(err) || strings.Contains(err.Error(), "no such file") {
			return nil, fmt.Errorf("faults: %q is neither a preset (%s) nor a readable scenario file",
				arg, strings.Join(PresetNames(), ", "))
		}
		return nil, err
	}
	return s, nil
}
