package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"iophases/internal/apps/madbench"
	"iophases/internal/cluster"
	"iophases/internal/core"
	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/obs"
	"iophases/internal/runner"
	"iophases/internal/simcache"
	"iophases/internal/units"
)

// testModel characterizes a small MADBench2 run once per test binary; the
// corpus model is immutable, so sharing it across tests is safe.
var (
	testModelOnce sync.Once
	testModelVal  *core.Model
)

func testModel(t *testing.T) *core.Model {
	t.Helper()
	testModelOnce.Do(func() {
		params := madbench.Default()
		params.RS = 4 * units.MiB
		res := runner.Run(cluster.ConfigA(), 4, "madbench2", func(sys *mpiio.System) func(*mpi.Rank) {
			return madbench.Program(sys, params)
		}, runner.Options{Trace: true})
		testModelVal = core.Build(res.Set)
	})
	return testModelVal
}

// newTestServer builds a ready server over the shared test model with the
// full preset zoo, logging into the returned buffer.
func newTestServer(t *testing.T) (*Server, *httptest.Server, *bytes.Buffer) {
	t.Helper()
	logBuf := &bytes.Buffer{}
	s, err := New(Options{
		Corpus:    map[string]*core.Model{"madbench2": testModel(t)},
		AccessLog: logBuf,
		FastPath:  "off",
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetReady(true)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, logBuf
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestPredictEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/predict",
		`{"model":"madbench2","configs":["configA"],"phases":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("missing X-Request-Id header")
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	if pr.Best != "configA" || len(pr.Choices) != 1 {
		t.Fatalf("response %+v", pr)
	}
	ch := pr.Choices[0]
	if ch.TimeIOS <= 0 || ch.IORRuns <= 0 || len(ch.Phases) == 0 {
		t.Fatalf("choice %+v", ch)
	}
}

func TestPredictDefaultsToHostableZoo(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/predict", `{"model":"madbench2"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Choices) != len(cluster.Presets()) {
		t.Fatalf("choices %d, want one per hostable preset (%d)",
			len(pr.Choices), len(cluster.Presets()))
	}
	if pr.Best == "" {
		t.Fatal("no best configuration")
	}
}

func TestQueryErrors(t *testing.T) {
	_, ts, _ := newTestServer(t)
	cases := []struct {
		path, body string
		status     int
	}{
		{"/v1/predict", `{"model":"nope"}`, http.StatusNotFound},
		{"/v1/predict", `{"model":"madbench2","configs":["nope"]}`, http.StatusNotFound},
		{"/v1/predict", `{not json`, http.StatusBadRequest},
		{"/v1/predict", `{"model":"madbench2","typo_field":1}`, http.StatusBadRequest},
		{"/v1/predict", `{"model":"madbench2"} trailing`, http.StatusBadRequest},
		{"/v1/explore", `{"model":"madbench2","base":"nope"}`, http.StatusNotFound},
		{"/v1/compare-degraded", `{"model":"madbench2","config":"configA","scenario":"nope"}`, http.StatusNotFound},
		{"/v1/compare-degraded", `{"model":"madbench2","config":"configA","scenario":"slow-disk","peak_rs_mib":9999}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s %s: status %d want %d (%s)", tc.path, tc.body, resp.StatusCode, tc.status, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q", tc.path, body)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/predict status %d", resp.StatusCode)
	}
}

// TestConcurrentPredictByteStability pins the house invariant end to end:
// N concurrent identical queries return byte-identical bodies and cost
// exactly as many underlying simulations as a single query.
func TestConcurrentPredictByteStability(t *testing.T) {
	_, ts, _ := newTestServer(t)
	const body = `{"model":"madbench2","configs":["configA","configB"]}`

	// Reference: one query on a cold cache, counting its simulation misses.
	simcache.Reset()
	_, refBody := postJSON(t, ts.URL+"/v1/predict", body)
	_, m1, _ := simcache.Stats()

	// Burst: a fresh cold cache and a fresh flight map (new server), N
	// goroutines released together.
	simcache.Reset()
	_, ts2, _ := newTestServer(t)
	const n = 32
	start := make(chan struct{})
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, b := postJSON(t, ts2.URL+"/v1/predict", body)
			bodies[i] = b
		}(i)
	}
	close(start)
	wg.Wait()
	_, m2, _ := simcache.Stats()

	for i, b := range bodies {
		if !bytes.Equal(b, refBody) {
			t.Fatalf("response %d diverged:\n%s\nwant:\n%s", i, b, refBody)
		}
	}
	if m2 != m1 {
		t.Fatalf("burst of %d identical queries cost %d simulation misses, single query cost %d", n, m2, m1)
	}
}

// TestSequentialRepeatIsWarmHit checks that repeating a query is logged as
// a cache hit with a byte-identical body.
func TestSequentialRepeatIsWarmHit(t *testing.T) {
	_, ts, logBuf := newTestServer(t)
	const body = `{"model":"madbench2","configs":["configB"]}`
	_, b1 := postJSON(t, ts.URL+"/v1/predict", body)
	_, b2 := postJSON(t, ts.URL+"/v1/predict", body)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("repeat diverged:\n%s\nvs\n%s", b1, b2)
	}
	lines := parseAccessLog(t, logBuf)
	if len(lines) != 2 {
		t.Fatalf("access log lines %d, want 2", len(lines))
	}
	if lines[0].Cache != "miss" || lines[1].Cache != "hit" {
		t.Fatalf("cache attribution %q then %q, want miss then hit", lines[0].Cache, lines[1].Cache)
	}
}

// TestCanonicalizationSharesFingerprint: whitespace, field order and
// explicit-vs-default knobs must not split the fingerprint.
func TestCanonicalizationSharesFingerprint(t *testing.T) {
	_, ts, logBuf := newTestServer(t)
	for _, body := range []string{
		`{"model":"madbench2","configs":["configA"]}`,
		`{ "configs" : ["configA"], "model" : "madbench2", "phases": false }`,
	} {
		postJSON(t, ts.URL+"/v1/predict", body)
	}
	lines := parseAccessLog(t, logBuf)
	if len(lines) != 2 || lines[0].FP == "" || lines[0].FP != lines[1].FP {
		t.Fatalf("fingerprints %+v, want two identical", lines)
	}
	if lines[1].Cache != "hit" {
		t.Fatalf("reordered body logged as %q, want hit", lines[1].Cache)
	}
}

func parseAccessLog(t *testing.T, buf *bytes.Buffer) []AccessEntry {
	t.Helper()
	var out []AccessEntry
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var e AccessEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("access log line %q: %v", line, err)
		}
		out = append(out, e)
	}
	return out
}

func TestAccessLogFields(t *testing.T) {
	_, ts, logBuf := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/v1/predict", `{"model":"madbench2","configs":["configA"]}`)
	lines := parseAccessLog(t, logBuf)
	if len(lines) != 1 {
		t.Fatalf("lines %d", len(lines))
	}
	e := lines[0]
	if e.ID != resp.Header.Get("X-Request-Id") {
		t.Fatalf("log id %q, header %q", e.ID, resp.Header.Get("X-Request-Id"))
	}
	if e.Method != "POST" || e.Path != "/v1/predict" || e.Status != 200 ||
		e.Bytes <= 0 || e.DurUS < 0 || len(e.FP) != 16 || e.Fastpath != "off" ||
		e.TS == "" || e.Cache == "" {
		t.Fatalf("entry %+v", e)
	}
}

func TestExploreEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/explore", `{"model":"madbench2","base":"configA"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er ExploreResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Best == "" || len(er.Results) < 5 {
		t.Fatalf("explore %+v", er)
	}
	for i, row := range er.Results {
		if row.Rank != i+1 || row.TimeIOS <= 0 {
			t.Fatalf("row %d: %+v", i, row)
		}
		if i > 0 && row.TimeIOS < er.Results[i-1].TimeIOS {
			t.Fatalf("results not sorted at %d", i)
		}
	}
}

func TestCompareDegradedEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/compare-degraded",
		`{"model":"madbench2","config":"configA","scenario":"slow-disk"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr CompareDegradedResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Slowdown < 1 || cr.HealthyS <= 0 || cr.DegradedS < cr.HealthyS || len(cr.Phases) == 0 {
		t.Fatalf("comparison %+v", cr)
	}
}

func TestMetaEndpoints(t *testing.T) {
	_, ts, _ := newTestServer(t)
	var mr ModelsResponse
	getJSON(t, ts.URL+"/v1/models", &mr)
	if len(mr.Models) != 1 || mr.Models[0].Name != "madbench2" || mr.Models[0].NPhases == 0 {
		t.Fatalf("models %+v", mr)
	}
	var cr ConfigsResponse
	getJSON(t, ts.URL+"/v1/configs", &cr)
	if len(cr.Configs) != len(cluster.Presets()) {
		t.Fatalf("configs %+v", cr)
	}
	var sr ScenariosResponse
	getJSON(t, ts.URL+"/v1/scenarios", &sr)
	if len(sr.Scenarios) == 0 {
		t.Fatalf("scenarios %+v", sr)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s, ts, _ := newTestServer(t)
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz %d", got)
	}
	s.SetReady(false)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz while warming %d", got)
	}
	s.SetReady(true)
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz when ready %d", got)
	}
}

func TestWarmMarksReadyAndPrefills(t *testing.T) {
	logBuf := &bytes.Buffer{}
	s, err := New(Options{
		Corpus:    map[string]*core.Model{"madbench2": testModel(t)},
		Zoo:       []cluster.Spec{cluster.ConfigA()},
		AccessLog: logBuf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.ready.Load() {
		t.Fatal("ready before warmup")
	}
	if err := s.Warm(); err != nil {
		t.Fatal(err)
	}
	if !s.ready.Load() {
		t.Fatal("not ready after warmup")
	}
	// A post-warm query must be all cache hits: no new misses.
	_, preMiss, _ := simcache.Stats()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/v1/predict", `{"model":"madbench2","configs":["configA"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	_, postMiss, _ := simcache.Stats()
	if postMiss != preMiss {
		t.Fatalf("post-warm query cost %d misses", postMiss-preMiss)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts, _ := newTestServer(t)
	postJSON(t, ts.URL+"/v1/predict", `{"model":"madbench2","configs":["configA"]}`)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		"# TYPE serve_req_predict counter",
		"# TYPE serve_latency_us_predict histogram",
		"serve_latency_us_predict_bucket{le=\"+Inf\"}",
		"# TYPE serve_inflight gauge",
		"# TYPE simcache_hits counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestRequestMetricsAdvance(t *testing.T) {
	reg := obs.Default()
	before := reg.Counter("serve/req_predict").Value()
	_, ts, _ := newTestServer(t)
	postJSON(t, ts.URL+"/v1/predict", `{"model":"madbench2","configs":["configA"]}`)
	if got := reg.Counter("serve/req_predict").Value(); got != before+1 {
		t.Fatalf("serve/req_predict %d -> %d", before, got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty corpus accepted")
	}
	if _, err := New(Options{Corpus: map[string]*core.Model{"": testModel(t)}}); err == nil {
		t.Fatal("empty model name accepted")
	}
	a := cluster.ConfigA()
	if _, err := New(Options{
		Corpus: map[string]*core.Model{"m": testModel(t)},
		Zoo:    []cluster.Spec{a, a},
	}); err == nil {
		t.Fatal("duplicate zoo configuration accepted")
	}
}

// TestPanicBecomes500 checks the recover path: a poisoned computation must
// yield a 500 and a panic counter tick, not a dead server.
func TestPanicBecomes500(t *testing.T) {
	s, _, _ := newTestServer(t)
	before := obs.Default().Counter("serve/panics").Value()
	entry := AccessEntry{}
	res := s.safeCompute(func() flightResult { panic("poisoned query") }, &entry)
	if res.status != http.StatusInternalServerError {
		t.Fatalf("status %d", res.status)
	}
	if got := obs.Default().Counter("serve/panics").Value(); got != before+1 {
		t.Fatalf("panic counter %d -> %d", before, got)
	}
	if !strings.Contains(entry.Err, "poisoned query") {
		t.Fatalf("entry err %q", entry.Err)
	}
	if strings.Contains(string(res.body), "poisoned") {
		t.Fatal("panic value leaked into response body")
	}
	var er ErrorResponse
	if err := json.Unmarshal(res.body, &er); err != nil {
		t.Fatal(err)
	}
}

// TestResponseBodiesCarryNoRequestState: the same query via different
// requests must not embed ids or timestamps — probed by diffing bodies
// (covered above) and by checking the id only appears in the header.
func TestRequestIDOnlyInHeader(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/predict", `{"model":"madbench2","configs":["configA"]}`)
	id := resp.Header.Get("X-Request-Id")
	if id == "" {
		t.Fatal("no request id")
	}
	if bytes.Contains(body, []byte(id)) {
		t.Fatalf("request id %s leaked into body", id)
	}
}
