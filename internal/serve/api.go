// api.go defines the JSON wire types of the iod query API. Responses are
// assembled from structs only (never maps), so encoding/json renders them
// with deterministic field order — one half of the byte-identical-response
// invariant; the other half is the determinism of the simulation itself.
// cmd/iodload imports these types, so client and server cannot drift.
package serve

// PredictRequest asks for the model's estimated Time_io (Eq. 1–2) on a set
// of configurations from the server's zoo.
type PredictRequest struct {
	// Model names a model in the server's corpus (GET /v1/models).
	Model string `json:"model"`
	// Configs names zoo configurations (GET /v1/configs); empty means
	// every zoo configuration with the capacity to host the model.
	Configs []string `json:"configs,omitempty"`
	// Phases additionally returns per-phase estimates.
	Phases bool `json:"phases,omitempty"`
	// Faithful characterizes multi-operation phases with the
	// phase-faithful replayer (the §V improvement) instead of the IOR
	// write/read-pass average.
	Faithful bool `json:"faithful,omitempty"`
}

// PhaseEstimate is one phase's characterized bandwidth and time.
type PhaseEstimate struct {
	Phase    int     `json:"phase"`
	Dir      string  `json:"dir"`
	NP       int     `json:"np"`
	RS       int64   `json:"rs"`
	Weight   int64   `json:"weight"`
	BWMBps   float64 `json:"bw_mbps"`
	TimeS    float64 `json:"time_s"`
	Faithful bool    `json:"faithful,omitempty"`
}

// PredictChoice is one configuration's estimate.
type PredictChoice struct {
	Config  string          `json:"config"`
	TimeIOS float64         `json:"time_io_s"`
	IORRuns int             `json:"ior_runs"`
	Phases  []PhaseEstimate `json:"phases,omitempty"`
}

// PredictResponse ranks the requested configurations by estimated I/O time.
type PredictResponse struct {
	App     string          `json:"app"`
	NP      int             `json:"np"`
	NPhases int             `json:"n_phases"`
	Best    string          `json:"best"`
	Choices []PredictChoice `json:"choices"`
}

// ExploreRequest asks for the StandardVariants what-if sweep derived from a
// base zoo configuration.
type ExploreRequest struct {
	Model string `json:"model"`
	Base  string `json:"base"`
	// Faithful as in PredictRequest.
	Faithful bool `json:"faithful,omitempty"`
}

// ExploreRow is one ranked variant.
type ExploreRow struct {
	Rank       int     `json:"rank"`
	Variant    string  `json:"variant"`
	TimeIOS    float64 `json:"time_io_s"`
	VsBaseline float64 `json:"vs_baseline,omitempty"` // baseline_time / this_time
}

// ExploreResponse ranks the variants, best first.
type ExploreResponse struct {
	App     string       `json:"app"`
	Base    string       `json:"base"`
	Best    string       `json:"best"`
	Results []ExploreRow `json:"results"`
}

// CompareDegradedRequest asks for the healthy-vs-degraded delta of a model
// on a configuration under a built-in fault scenario (GET /v1/scenarios).
// Scenario JSON files are deliberately not accepted over the wire: the
// server never touches its filesystem on behalf of a request.
type CompareDegradedRequest struct {
	Model    string `json:"model"`
	Config   string `json:"config"`
	Scenario string `json:"scenario"`
	// PeakFileMiB/PeakRSMiB parameterize the IOzone peak measurement
	// (Eq. 3–4) behind the usage columns; 0 selects 512 and 8.
	PeakFileMiB int64 `json:"peak_file_mib,omitempty"`
	PeakRSMiB   int64 `json:"peak_rs_mib,omitempty"`
}

// PhaseDelta pairs one phase's healthy and degraded estimates.
type PhaseDelta struct {
	Phase         int     `json:"phase"`
	Dir           string  `json:"dir"`
	HealthyMBps   float64 `json:"healthy_mbps"`
	DegradedMBps  float64 `json:"degraded_mbps"`
	HealthyS      float64 `json:"healthy_s"`
	DegradedS     float64 `json:"degraded_s"`
	HealthyUsage  float64 `json:"healthy_usage_pct"`
	DegradedUsage float64 `json:"degraded_usage_pct"`
}

// CompareDegradedResponse is the delta table.
type CompareDegradedResponse struct {
	App       string       `json:"app"`
	Config    string       `json:"config"`
	Scenario  string       `json:"scenario"`
	HealthyS  float64      `json:"healthy_s"`
	DegradedS float64      `json:"degraded_s"`
	Slowdown  float64      `json:"slowdown"`
	Phases    []PhaseDelta `json:"phases"`
}

// ModelInfo describes one corpus entry (GET /v1/models).
type ModelInfo struct {
	Name    string `json:"name"`
	App     string `json:"app"`
	NP      int    `json:"np"`
	NPhases int    `json:"n_phases"`
	Source  string `json:"source_config"`
}

// ModelsResponse lists the corpus, sorted by name.
type ModelsResponse struct {
	Models []ModelInfo `json:"models"`
}

// ConfigsResponse lists the zoo configuration names in zoo order.
type ConfigsResponse struct {
	Configs []string `json:"configs"`
}

// ScenariosResponse lists the built-in fault scenario names, sorted.
type ScenariosResponse struct {
	Scenarios []string `json:"scenarios"`
}

// ErrorResponse is the body of every non-2xx API response.
type ErrorResponse struct {
	Error string `json:"error"`
}
