package serve

import (
	"context"
	"net/http"
	"sync"

	"iophases/internal/obs"
)

// flightResult is the materialized outcome of one query computation — the
// exact status and body every rider of the flight writes. Bodies are built
// deterministically (struct-ordered JSON over deterministic simulation
// results), which is what makes sharing them sound: a follower's or a
// cache hit's response is byte-identical to what it would have computed
// itself.
type flightResult struct {
	status int
	body   []byte
}

// flight is one in-progress computation of a query fingerprint. done closes
// once res is set; concurrent identical queries wait on it instead of
// re-simulating.
type flight struct {
	done chan struct{}
	res  flightResult
}

// respCacheCap bounds the completed-response cache. Predict bodies are
// roughly a kilobyte, so the bound is a few MiB; when full the cache clears
// wholesale (a rare, cheap restart-from-cold) rather than growing without
// limit in a long-lived server.
const respCacheCap = 4096

// flightGroup collapses identical queries at the HTTP layer, in two tiers:
//
//   - Response cache: a fingerprint that has completed with a 200 is served
//     its stored bytes outright — no admission, no recomputation. Sound
//     because bodies are deterministic; cheap enough that a cache-hit query
//     costs only routing and a map lookup.
//   - Singleflight: concurrent identical queries whose fingerprint is still
//     computing coalesce — one leader computes, followers ride the result.
//     Below this, the simcache singleflight dedups at replay granularity.
//
// Together they pin "N identical queries, one underlying simulation" end to
// end. Non-200 results (saturation, validation-at-compute errors, panics)
// are never cached: errors are recomputed so a transient failure cannot
// stick.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
	resp    map[string]flightResult // completed 200s by fingerprint

	cCoalesced *obs.Counter
	cCacheHits *obs.Counter
}

func newFlightGroup(reg *obs.Registry) *flightGroup {
	return &flightGroup{
		flights:    make(map[string]*flight),
		resp:       make(map[string]flightResult),
		cCoalesced: reg.Counter("serve/coalesced"),
		cCacheHits: reg.Counter("serve/cache_hits"),
	}
}

// do returns the result for the query fingerprint key, computing it via fn
// at most once. cached reports a response-cache hit (the access log's
// "hit"); coalesced reports that this caller rode another request's
// in-flight computation. A follower whose context ends before the leader
// finishes gets ctx.Err().
func (g *flightGroup) do(ctx context.Context, key string, fn func() flightResult) (res flightResult, coalesced, cached bool, err error) {
	g.mu.Lock()
	if res, ok := g.resp[key]; ok {
		g.mu.Unlock()
		g.cCacheHits.Inc()
		return res, false, true, nil
	}
	if f, ok := g.flights[key]; ok {
		g.mu.Unlock()
		g.cCoalesced.Inc()
		select {
		case <-f.done:
			return f.res, true, false, nil
		case <-ctx.Done():
			return flightResult{}, true, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.flights[key] = f
	g.mu.Unlock()

	f.res = fn()
	close(f.done)

	g.mu.Lock()
	delete(g.flights, key)
	if f.res.status == http.StatusOK {
		if len(g.resp) >= respCacheCap {
			g.resp = make(map[string]flightResult)
		}
		g.resp[key] = f.res
	}
	g.mu.Unlock()
	return f.res, false, false, nil
}
