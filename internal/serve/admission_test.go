package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"iophases/internal/obs"
)

func TestLimiterBudget(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewLimiter(1, 1, reg)
	ctx := context.Background()

	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// One waiter fits the queue.
	acquired := make(chan error, 1)
	go func() { acquired <- l.Acquire(ctx) }()
	// Wait until it is actually queued so the next Acquire must overflow.
	for l.queued.Load() != 1 {
		time.Sleep(time.Millisecond)
	}
	// Queue full: immediate rejection, not a wait.
	if err := l.Acquire(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("expected ErrSaturated, got %v", err)
	}
	if got := reg.Counter("serve/rejected").Value(); got != 1 {
		t.Fatalf("rejected counter %d", got)
	}
	l.Release()
	if err := <-acquired; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	l.Release()

	if got := reg.Gauge("serve/inflight_max").Value(); got != 1 {
		t.Fatalf("inflight_max %d", got)
	}
	if got := reg.Gauge("serve/queue_max").Value(); got != 1 {
		t.Fatalf("queue_max %d", got)
	}
	if got := reg.Gauge("serve/inflight").Value(); got != 0 {
		t.Fatalf("inflight after release %d", got)
	}
	if got := l.queued.Load(); got != 0 {
		t.Fatalf("queued after drain %d", got)
	}
	if got := reg.Histogram("serve/queue_wait_us").Count(); got != 1 {
		t.Fatalf("queue wait observations %d", got)
	}
}

func TestLimiterContextCancel(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewLimiter(1, 4, reg)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.Acquire(ctx) }()
	for l.queued.Load() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if got := l.queued.Load(); got != 0 {
		t.Fatalf("queued after cancel %d", got)
	}
	// The slot is still held by the first acquirer; release and re-acquire
	// to prove no slot leaked.
	l.Release()
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	l.Release()
}

func TestLimiterQueueBoundExactUnderRace(t *testing.T) {
	reg := obs.NewRegistry()
	const inflight, queue = 2, 8
	l := NewLimiter(inflight, queue, reg)
	// Saturate the slots.
	for i := 0; i < inflight; i++ {
		if err := l.Acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// Fire far more acquirers than the queue holds; exactly `queue` may
	// wait, the rest must be rejected.
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			errs[i] = l.Acquire(ctx)
			if errs[i] == nil {
				l.Release()
			}
		}(i)
	}
	// Drain the initial slots so waiters can proceed.
	for i := 0; i < inflight; i++ {
		l.Release()
	}
	wg.Wait()
	var admitted, rejected int
	for _, err := range errs {
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, ErrSaturated):
			rejected++
		default:
			t.Fatalf("unexpected error %v", err)
		}
	}
	if admitted+rejected != n || admitted == 0 {
		t.Fatalf("admitted %d rejected %d", admitted, rejected)
	}
	if got := reg.Gauge("serve/queue_max").Value(); got > queue {
		t.Fatalf("queue high watermark %d exceeded bound %d", got, queue)
	}
	if got := l.queued.Load(); got != 0 {
		t.Fatalf("queued after drain %d", got)
	}
	if got := reg.Gauge("serve/inflight").Value(); got != 0 {
		t.Fatalf("inflight after drain %d", got)
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	reg := obs.NewRegistry()
	g := newFlightGroup(reg)
	block := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan struct{})
	var leaderRes flightResult
	go func() {
		defer close(leaderDone)
		res, coalesced, cached, err := g.do(context.Background(), "k", func() flightResult {
			close(started)
			<-block
			return flightResult{status: 200, body: []byte("payload")}
		})
		if err != nil || coalesced || cached {
			t.Errorf("leader: res=%+v coalesced=%v cached=%v err=%v", res, coalesced, cached, err)
		}
		leaderRes = res
	}()
	<-started

	const n = 8
	var wg sync.WaitGroup
	results := make([]flightResult, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, coalesced, cached, err := g.do(context.Background(), "k", func() flightResult {
				t.Error("follower ran the computation")
				return flightResult{}
			})
			if err != nil || !coalesced || cached {
				t.Errorf("follower %d: coalesced=%v cached=%v err=%v", i, coalesced, cached, err)
			}
			results[i] = res
		}(i)
	}
	// All followers must be registered before the leader finishes; wait for
	// the coalesce counter to reach n.
	for reg.Counter("serve/coalesced").Value() != n {
		time.Sleep(time.Millisecond)
	}
	close(block)
	wg.Wait()
	<-leaderDone
	for i, res := range results {
		if res.status != 200 || string(res.body) != "payload" {
			t.Fatalf("follower %d got %+v", i, res)
		}
	}
	if leaderRes.status != 200 {
		t.Fatalf("leader got %+v", leaderRes)
	}

	// A later identical query is a response-cache hit: the stored bytes come
	// back and the computation never runs.
	res, coalesced, cached, err := g.do(context.Background(), "k", func() flightResult {
		t.Error("cache hit ran the computation")
		return flightResult{}
	})
	if err != nil || coalesced || !cached {
		t.Fatalf("cached repeat: coalesced=%v cached=%v err=%v", coalesced, cached, err)
	}
	if string(res.body) != "payload" {
		t.Fatalf("cached repeat res %+v", res)
	}
	if got := reg.Counter("serve/cache_hits").Value(); got != 1 {
		t.Fatalf("cache_hits %d", got)
	}
}

// TestFlightErrorsNotCached: non-200 results must be recomputed, not stuck
// in the response cache.
func TestFlightErrorsNotCached(t *testing.T) {
	g := newFlightGroup(obs.NewRegistry())
	g.do(context.Background(), "k", func() flightResult {
		return flightResult{status: 503, body: []byte("saturated")}
	})
	res, _, cached, err := g.do(context.Background(), "k", func() flightResult {
		return flightResult{status: 200, body: []byte("recovered")}
	})
	if err != nil || cached || string(res.body) != "recovered" {
		t.Fatalf("res=%+v cached=%v err=%v", res, cached, err)
	}
}

func TestFlightFollowerHonorsContext(t *testing.T) {
	g := newFlightGroup(obs.NewRegistry())
	block := make(chan struct{})
	started := make(chan struct{})
	go g.do(context.Background(), "k", func() flightResult {
		close(started)
		<-block
		return flightResult{status: 200}
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, coalesced, _, err := g.do(ctx, "k", func() flightResult { return flightResult{} })
	if !coalesced || !errors.Is(err, context.Canceled) {
		t.Fatalf("coalesced=%v err=%v", coalesced, err)
	}
	close(block)
}

func TestFlightResponseCacheBounded(t *testing.T) {
	g := newFlightGroup(obs.NewRegistry())
	for i := 0; i < respCacheCap+10; i++ {
		key := fmt.Sprintf("k%d", i)
		g.do(context.Background(), key, func() flightResult { return flightResult{status: 200} })
	}
	g.mu.Lock()
	n := len(g.resp)
	g.mu.Unlock()
	if n > respCacheCap {
		t.Fatalf("response cache grew to %d, cap %d", n, respCacheCap)
	}
}
