package serve

import (
	"context"
	"errors"
	"sync/atomic"

	"iophases/internal/obs"
)

// ErrSaturated is returned by Limiter.Acquire when the wait queue is at its
// bound; the handler maps it to 503 with a Retry-After hint rather than
// letting the backlog grow without limit.
var ErrSaturated = errors.New("serve: admission queue full")

// Limiter is the request-admission budget over the simulation capacity: at
// most `inflight` leaders compute concurrently (each fans its replays over
// the internal/sweep pool, so the effective simulation parallelism is
// inflight × sweep.Concurrency()), and at most `queue` more may wait.
// Followers of a coalesced flight never pass through the limiter — they
// consume no simulation budget.
//
// Telemetry lands on the obs default registry: current and high-watermark
// queue depth and inflight gauges, a queue-wait histogram, and a rejected
// counter — the saturation signals a dashboard needs to size the budget.
type Limiter struct {
	slots    chan struct{}
	maxQueue int64
	queued   atomic.Int64 // exact waiter count; the bound check is atomic

	gQueue       *obs.Gauge
	gQueueMax    *obs.Gauge
	gInflight    *obs.Gauge
	gInflightMax *obs.Gauge
	hWaitUS      *obs.Histogram
	cRejected    *obs.Counter
}

// NewLimiter returns a limiter admitting `inflight` concurrent computations
// with up to `queue` waiters. Non-positive arguments select 1 and 0.
func NewLimiter(inflight, queue int, reg *obs.Registry) *Limiter {
	if inflight < 1 {
		inflight = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Limiter{
		slots:        make(chan struct{}, inflight),
		maxQueue:     int64(queue),
		gQueue:       reg.Gauge("serve/queue_depth"),
		gQueueMax:    reg.Gauge("serve/queue_max"),
		gInflight:    reg.Gauge("serve/inflight"),
		gInflightMax: reg.Gauge("serve/inflight_max"),
		hWaitUS:      reg.Histogram("serve/queue_wait_us"),
		cRejected:    reg.Counter("serve/rejected"),
	}
}

// Acquire claims a computation slot, waiting in the bounded queue if the
// budget is busy. It fails fast with ErrSaturated when the queue is full,
// and with ctx.Err() if the caller gives up while waiting.
func (l *Limiter) Acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}: // fast path: free slot, no queueing
		l.noteAcquired()
		return nil
	default:
	}
	q := l.queued.Add(1)
	if q > l.maxQueue {
		l.queued.Add(-1)
		l.cRejected.Inc()
		return ErrSaturated
	}
	l.gQueue.SetMax(q) // gauge mirrors the exact counter; SetMax keeps it monotone within a burst
	l.gQueueMax.SetMax(q)
	t0 := now()
	defer func() {
		l.gQueue.Set(l.queued.Add(-1))
		l.hWaitUS.Observe(since(t0).Microseconds())
	}()
	select {
	case l.slots <- struct{}{}:
		l.noteAcquired()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (l *Limiter) noteAcquired() {
	l.gInflight.Add(1)
	l.gInflightMax.SetMax(l.gInflight.Value())
}

// Release returns a slot claimed by Acquire.
func (l *Limiter) Release() {
	l.gInflight.Add(-1)
	<-l.slots
}
