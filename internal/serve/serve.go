// Package serve is the HTTP layer of the iod prediction service: a
// stdlib-only JSON API over the paper's analysis stage (predict/replay/
// fastpath) built observability-first. Every request is traced (wall-clock
// span on the process timeline recorder), counted (per-endpoint counters
// and latency histograms on the obs default registry, exported on /metrics
// in Prometheus text exposition), and attributed (a structured JSON access
// log carrying request id, query fingerprint, cache warmth, coalescing and
// latency).
//
// Three invariants shape the design (DESIGN.md §13):
//
//   - Identical queries return byte-identical bodies at any concurrency.
//     Responses are structs rendered by encoding/json (deterministic field
//     order) over deterministic simulation results; nothing wall-clock or
//     per-request (ids, timestamps) ever enters a body.
//
//   - One underlying simulation per concurrent identical burst. Identical
//     in-flight queries coalesce at the HTTP layer (flightGroup) on a
//     canonical fingerprint, and distinct replays below that dedup through
//     the simcache singleflight — so N identical concurrent predicts cost
//     one computation, pinned by TestConcurrentPredictByteStability.
//
//   - The simulation budget is explicit. Leaders pass a bounded admission
//     limiter before touching the sweep pool; the queue depth, inflight
//     count, queue-wait histogram and rejection counter are first-class
//     metrics, so saturation is visible before it becomes an outage.
//
// The package is inside iovet's simulation scope: obspure forbids direct
// stdout/stderr writes (the access log is an injected io.Writer), errdrop
// forbids dropping predict/replay errors, and detwall confines the server's
// real wall clock to the allowlisted seam in clock.go.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"iophases/internal/cluster"
	"iophases/internal/core"
	"iophases/internal/faults"
	"iophases/internal/obs"
	"iophases/internal/predict"
	"iophases/internal/prof"
	"iophases/internal/sweep"
	"iophases/internal/units"
)

// maxBodyBytes bounds a query body; the API's requests are a few hundred
// bytes, so 1 MiB is generous and keeps a misdirected upload harmless.
const maxBodyBytes = 1 << 20

// Options configure a Server.
type Options struct {
	// Corpus maps model names to resident I/O models. Required non-empty.
	Corpus map[string]*core.Model
	// Zoo is the configuration set queries may name; nil selects the four
	// paper presets.
	Zoo []cluster.Spec
	// Inflight is the admission budget: concurrent leader computations.
	// 0 selects 2×GOMAXPROCS (each leader fans out over the sweep pool).
	Inflight int
	// Queue bounds waiting leaders; beyond it requests get 503. 0 selects
	// 1024; negative means no waiting.
	Queue int
	// FastPath labels the process-wide analytic fast-path mode in the
	// access log ("off", "on", "verify"); it does not change the mode —
	// cmd/iod sets that globally before building the server.
	FastPath string
	// AccessLog receives one JSON line per request; nil disables.
	AccessLog io.Writer
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

// endpointMetrics are one API endpoint's first-class counters.
type endpointMetrics struct {
	cReq   *obs.Counter
	hLatUS *obs.Histogram
}

// Server is the resident prediction service: corpus and zoo are immutable
// after New, so request handling takes no server-level locks outside the
// flight group's map access.
type Server struct {
	corpus     map[string]*core.Model
	modelNames []string // sorted
	zoo        []cluster.Spec
	zooByName  map[string]cluster.Spec
	zooNames   []string // zoo order
	scenarios  []string // sorted preset names

	limiter  *Limiter
	flights  *flightGroup
	logger   *accessLogger
	fastpath string
	ready    atomic.Bool
	reqSeq   atomic.Int64
	mux      *http.ServeMux

	em       map[string]*endpointMetrics
	cHTTP    *obs.Counter
	cErrors  *obs.Counter
	cPanics  *obs.Counter
	cWarmEst *obs.Counter
}

// New builds a server over a model corpus. The corpus must be non-empty
// with models able to run somewhere in the zoo; readiness starts false
// until Warm (or SetReady) flips it.
func New(opts Options) (*Server, error) {
	if len(opts.Corpus) == 0 {
		return nil, errors.New("serve: empty model corpus")
	}
	zoo := opts.Zoo
	if zoo == nil {
		zoo = cluster.Presets()
	}
	inflight := opts.Inflight
	if inflight == 0 {
		inflight = 2 * runtime.GOMAXPROCS(0)
	}
	queue := opts.Queue
	if queue == 0 {
		queue = 1024
	}
	reg := obs.Default()
	s := &Server{
		corpus:    opts.Corpus,
		zoo:       zoo,
		zooByName: make(map[string]cluster.Spec, len(zoo)),
		scenarios: faults.PresetNames(),
		limiter:   NewLimiter(inflight, queue, reg),
		flights:   newFlightGroup(reg),
		logger:    newAccessLogger(opts.AccessLog),
		fastpath:  opts.FastPath,
		cHTTP:     reg.Counter("serve/http_requests"),
		cErrors:   reg.Counter("serve/http_errors"),
		cPanics:   reg.Counter("serve/panics"),
		cWarmEst:  reg.Counter("serve/warm_estimates"),
	}
	for name, m := range s.corpus {
		if name == "" || m == nil {
			return nil, fmt.Errorf("serve: corpus entry %q is empty", name)
		}
		s.modelNames = append(s.modelNames, name)
	}
	sort.Strings(s.modelNames)
	for _, spec := range zoo {
		if _, dup := s.zooByName[spec.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate zoo configuration %q", spec.Name)
		}
		s.zooByName[spec.Name] = spec
		s.zooNames = append(s.zooNames, spec.Name)
	}
	s.em = map[string]*endpointMetrics{}
	for _, ep := range []string{"predict", "explore", "compare_degraded", "meta", "metrics", "probe"} {
		s.em[ep] = &endpointMetrics{
			cReq:   reg.Counter("serve/req_" + ep),
			hLatUS: reg.Histogram("serve/latency_us_" + ep),
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		s.query(w, r, "predict", s.parsePredict)
	})
	mux.HandleFunc("POST /v1/explore", func(w http.ResponseWriter, r *http.Request) {
		s.query(w, r, "explore", s.parseExplore)
	})
	mux.HandleFunc("POST /v1/compare-degraded", func(w http.ResponseWriter, r *http.Request) {
		s.query(w, r, "compare_degraded", s.parseCompareDegraded)
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		s.static(w, r, "meta", s.modelsResponse())
	})
	mux.HandleFunc("GET /v1/configs", func(w http.ResponseWriter, r *http.Request) {
		s.static(w, r, "meta", ConfigsResponse{Configs: s.zooNames})
	})
	mux.HandleFunc("GET /v1/scenarios", func(w http.ResponseWriter, r *http.Request) {
		s.static(w, r, "meta", ScenariosResponse{Scenarios: s.scenarios})
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		s.probe(w, r, http.StatusOK, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.ready.Load() {
			s.probe(w, r, http.StatusOK, "ready\n")
		} else {
			s.probe(w, r, http.StatusServiceUnavailable, "warming\n")
		}
	})
	if opts.EnablePprof {
		mux.Handle("/debug/pprof/", prof.HTTPHandler())
	}
	s.mux = mux
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ModelNames lists the corpus, sorted.
func (s *Server) ModelNames() []string { return s.modelNames }

// SetReady flips the /readyz state directly (tests; servers that skip
// warmup).
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Warm prefills the replay cache — one estimate per (model, hostable zoo
// configuration), fanned over the sweep pool — then marks the server
// ready. After Warm, every query over corpus models and zoo presets is
// answered from memoized simulations. Estimation errors are joined and
// returned but do not block readiness: a model that fails to warm still
// fails identically (and cheaply) at query time.
func (s *Server) Warm() error {
	type job struct {
		m    *core.Model
		spec cluster.Spec
	}
	var jobs []job
	for _, name := range s.modelNames {
		m := s.corpus[name]
		for _, spec := range s.zoo {
			if m.NP <= spec.MaxProcs() {
				jobs = append(jobs, job{m, spec})
			}
		}
	}
	errs := sweep.Map(jobs, func(_ int, j job) error {
		_, err := predict.EstimateTime(j.m, j.spec)
		if err == nil {
			s.cWarmEst.Inc()
		}
		return err
	})
	s.ready.Store(true)
	return errors.Join(errs...)
}

// apiError carries an HTTP status alongside the message rendered into the
// ErrorResponse body.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errf(status int, format string, args ...any) *apiError {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...)}
}

// strictUnmarshal decodes a request body, rejecting unknown fields (typo'd
// knobs must not silently no-op) and trailing data.
func strictUnmarshal(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

// jsonBody renders an API payload as a response body: compact JSON plus a
// trailing newline. Marshal failure is a programming error in the DTOs —
// it degrades to a 500 body rather than a panic.
func jsonBody(status int, payload any) flightResult {
	raw, err := json.Marshal(payload)
	if err != nil {
		return flightResult{
			status: http.StatusInternalServerError,
			body:   []byte(`{"error":"response encoding failed"}` + "\n"),
		}
	}
	return flightResult{status: status, body: append(raw, '\n')}
}

// parsed is a validated query: its canonical form (re-marshaled parsed
// request, so whitespace and field order never split a flight) and the
// computation to run under the admission budget.
type parsed struct {
	canonical []byte
	compute   func() flightResult
}

// query is the shared plumbing of the three POST endpoints: read, parse,
// fingerprint, coalesce, admit, compute, respond — with the request id,
// fingerprint, cache warmth, coalescing, queue wait and latency all
// recorded on the access log, the metrics registry and (when a timeline
// recorder is active) a wall-clock span.
func (s *Server) query(w http.ResponseWriter, r *http.Request, endpoint string, parse func([]byte) (parsed, *apiError)) {
	start := now()
	tl := obs.Timeline()
	tlStart := tl.WallNow()
	id := s.nextID()
	w.Header().Set("X-Request-Id", id)
	entry := AccessEntry{
		ID:       id,
		Method:   r.Method,
		Path:     r.URL.Path,
		Fastpath: s.fastpath,
	}
	s.cHTTP.Inc()

	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.respond(w, endpoint, &entry, start, tl, tlStart,
			jsonBody(http.StatusBadRequest, ErrorResponse{Error: "reading request body: " + err.Error()}))
		return
	}
	p, aerr := parse(raw)
	if aerr != nil {
		s.respond(w, endpoint, &entry, start, tl, tlStart,
			jsonBody(aerr.status, ErrorResponse{Error: aerr.msg}))
		return
	}
	sum := sha256.Sum256(append([]byte(endpoint+"\x00"), p.canonical...))
	entry.FP = hex.EncodeToString(sum[:8])

	var queueUS int64
	res, coalesced, cached, ferr := s.flights.do(r.Context(), string(sum[:]), func() flightResult {
		qt := now()
		if err := s.limiter.Acquire(r.Context()); err != nil {
			if errors.Is(err, ErrSaturated) {
				return jsonBody(http.StatusServiceUnavailable,
					ErrorResponse{Error: "admission queue full; retry"})
			}
			return jsonBody(http.StatusServiceUnavailable,
				ErrorResponse{Error: "canceled while queued: " + err.Error()})
		}
		queueUS = since(qt).Microseconds()
		defer s.limiter.Release()
		return s.safeCompute(p.compute, &entry)
	})
	entry.QueueUS = queueUS
	entry.Coalesced = coalesced
	if cached {
		entry.Cache = "hit"
	} else {
		entry.Cache = "miss"
	}
	if ferr != nil {
		// Follower whose client went away before the leader finished:
		// nothing to write, but the request is still logged and counted
		// (499 is the de-facto "client closed request" status).
		entry.Status = 499
		entry.Err = ferr.Error()
		s.observe(endpoint, &entry, start, tl, tlStart)
		return
	}
	s.respond(w, endpoint, &entry, start, tl, tlStart, res)
}

// safeCompute runs a query computation, converting a panic into a 500 so
// one poisoned query cannot take the daemon down. The panic value goes to
// the access log and a counter, never into the response body.
func (s *Server) safeCompute(fn func() flightResult, entry *AccessEntry) (res flightResult) {
	defer func() {
		if r := recover(); r != nil {
			s.cPanics.Inc()
			entry.Err = fmt.Sprintf("panic: %v", r)
			res = jsonBody(http.StatusInternalServerError, ErrorResponse{Error: "internal error"})
		}
	}()
	return fn()
}

// respond writes the result and records every observation channel.
func (s *Server) respond(w http.ResponseWriter, endpoint string, entry *AccessEntry, start time.Time, tl *obs.Recorder, tlStart int64, res flightResult) {
	w.Header().Set("Content-Type", "application/json")
	if res.status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(res.status)
	n, _ := w.Write(res.body)
	entry.Status = res.status
	entry.Bytes = n
	if res.status >= 400 && entry.Err == "" {
		entry.Err = strings.TrimSpace(string(res.body))
	}
	s.observe(endpoint, entry, start, tl, tlStart)
}

// observe stamps latency onto the metrics registry, the access log and the
// timeline span for one finished request.
func (s *Server) observe(endpoint string, entry *AccessEntry, start time.Time, tl *obs.Recorder, tlStart int64) {
	dur := since(start)
	entry.TS = stamp(start)
	entry.DurUS = dur.Microseconds()
	em := s.em[endpoint]
	em.cReq.Inc()
	em.hLatUS.Observe(entry.DurUS)
	if entry.Status >= 400 {
		s.cErrors.Inc()
	}
	s.logger.log(*entry)
	if tl != nil {
		tr := tl.Track("serve", entry.ID)
		tr.Span(endpoint, tlStart, tl.WallNow(),
			obs.Arg{Key: "id", Value: entry.ID},
			obs.Arg{Key: "fp", Value: entry.FP},
			obs.Arg{Key: "status", Value: entry.Status},
			obs.Arg{Key: "cache", Value: entry.Cache},
			obs.Arg{Key: "coalesced", Value: entry.Coalesced})
	}
}

// static serves a fixed JSON payload (corpus/zoo/scenario listings) with
// the same logging and metrics as the query path, minus flights and
// admission.
func (s *Server) static(w http.ResponseWriter, r *http.Request, endpoint string, payload any) {
	start := now()
	tl := obs.Timeline()
	tlStart := tl.WallNow()
	id := s.nextID()
	w.Header().Set("X-Request-Id", id)
	entry := AccessEntry{ID: id, Method: r.Method, Path: r.URL.Path}
	s.cHTTP.Inc()
	s.respond(w, endpoint, &entry, start, tl, tlStart, jsonBody(http.StatusOK, payload))
}

// probe serves the health endpoints: tiny text bodies, still counted and
// logged so probe traffic is visible.
func (s *Server) probe(w http.ResponseWriter, r *http.Request, status int, body string) {
	start := now()
	tl := obs.Timeline()
	tlStart := tl.WallNow()
	id := s.nextID()
	w.Header().Set("X-Request-Id", id)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(status)
	n, _ := io.WriteString(w, body)
	entry := AccessEntry{ID: id, Method: r.Method, Path: r.URL.Path, Status: status, Bytes: n}
	s.cHTTP.Inc()
	s.observe("probe", &entry, start, tl, tlStart)
}

// handleMetrics serves the default registry as Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	start := now()
	tl := obs.Timeline()
	tlStart := tl.WallNow()
	id := s.nextID()
	w.Header().Set("X-Request-Id", id)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var buf bytes.Buffer
	if err := obs.Default().WriteProm(&buf); err != nil {
		http.Error(w, "exposition failed", http.StatusInternalServerError)
		return
	}
	n, _ := w.Write(buf.Bytes())
	entry := AccessEntry{ID: id, Method: r.Method, Path: r.URL.Path, Status: http.StatusOK, Bytes: n}
	s.cHTTP.Inc()
	s.observe("metrics", &entry, start, tl, tlStart)
}

func (s *Server) nextID() string {
	return fmt.Sprintf("r%08d", s.reqSeq.Add(1))
}

// modelsResponse lists the corpus sorted by name.
func (s *Server) modelsResponse() ModelsResponse {
	var out ModelsResponse
	for _, name := range s.modelNames {
		m := s.corpus[name]
		out.Models = append(out.Models, ModelInfo{
			Name:    name,
			App:     m.App,
			NP:      m.NP,
			NPhases: len(m.Phases),
			Source:  m.SourceConfig,
		})
	}
	return out
}

// parsePredict validates a PredictRequest and closes over its computation.
func (s *Server) parsePredict(raw []byte) (parsed, *apiError) {
	var req PredictRequest
	if err := strictUnmarshal(raw, &req); err != nil {
		return parsed{}, errf(http.StatusBadRequest, "bad predict request: %v", err)
	}
	m, aerr := s.model(req.Model)
	if aerr != nil {
		return parsed{}, aerr
	}
	var cfgs []cluster.Spec
	if len(req.Configs) == 0 {
		for _, spec := range s.zoo {
			if m.NP <= spec.MaxProcs() {
				cfgs = append(cfgs, spec)
				// Fill the chosen names back in so the canonical form —
				// and therefore the flight fingerprint — is explicit.
				req.Configs = append(req.Configs, spec.Name)
			}
		}
		if len(cfgs) == 0 {
			return parsed{}, errf(http.StatusUnprocessableEntity,
				"no zoo configuration can host %d processes", m.NP)
		}
	} else {
		for _, name := range req.Configs {
			spec, ok := s.zooByName[name]
			if !ok {
				return parsed{}, errf(http.StatusNotFound,
					"unknown configuration %q (known: %s)", name, strings.Join(s.zooNames, ", "))
			}
			if m.NP > spec.MaxProcs() {
				return parsed{}, errf(http.StatusUnprocessableEntity,
					"model needs %d processes; %s holds %d", m.NP, spec.Name, spec.MaxProcs())
			}
			cfgs = append(cfgs, spec)
		}
	}
	canonical, err := json.Marshal(&req)
	if err != nil {
		return parsed{}, errf(http.StatusBadRequest, "canonicalizing request: %v", err)
	}
	opts := predict.EstimateOptions{FaithfulMixed: req.Faithful}
	compute := func() flightResult {
		type estRes struct {
			est *predict.Estimate
			err error
		}
		ests := sweep.Map(cfgs, func(_ int, spec cluster.Spec) estRes {
			est, err := predict.EstimateTimeOpts(m, spec, opts)
			return estRes{est, err}
		})
		resp := PredictResponse{App: m.App, NP: m.NP, NPhases: len(m.Phases)}
		best := -1
		for i, r := range ests {
			if r.err != nil {
				return jsonBody(http.StatusUnprocessableEntity, ErrorResponse{Error: r.err.Error()})
			}
			ch := PredictChoice{
				Config:  cfgs[i].Name,
				TimeIOS: r.est.TotalCH.Seconds(),
				IORRuns: r.est.IORRuns,
			}
			if req.Phases {
				for _, pe := range r.est.Phases {
					ch.Phases = append(ch.Phases, PhaseEstimate{
						Phase:    pe.Phase.ID,
						Dir:      string(pe.Phase.Direction()),
						NP:       pe.Phase.NP,
						RS:       pe.Phase.RequestSize(),
						Weight:   pe.Phase.Weight,
						BWMBps:   pe.BWch.MBpsValue(),
						TimeS:    pe.TimeCH.Seconds(),
						Faithful: pe.Faithful,
					})
				}
			}
			resp.Choices = append(resp.Choices, ch)
			if best < 0 || r.est.TotalCH < ests[best].est.TotalCH {
				best = i
			}
		}
		resp.Best = cfgs[best].Name
		return jsonBody(http.StatusOK, resp)
	}
	return parsed{canonical: canonical, compute: compute}, nil
}

// parseExplore validates an ExploreRequest and closes over its computation.
func (s *Server) parseExplore(raw []byte) (parsed, *apiError) {
	var req ExploreRequest
	if err := strictUnmarshal(raw, &req); err != nil {
		return parsed{}, errf(http.StatusBadRequest, "bad explore request: %v", err)
	}
	m, aerr := s.model(req.Model)
	if aerr != nil {
		return parsed{}, aerr
	}
	base, ok := s.zooByName[req.Base]
	if !ok {
		return parsed{}, errf(http.StatusNotFound,
			"unknown configuration %q (known: %s)", req.Base, strings.Join(s.zooNames, ", "))
	}
	if m.NP > base.MaxProcs() {
		return parsed{}, errf(http.StatusUnprocessableEntity,
			"model needs %d processes; %s holds %d", m.NP, base.Name, base.MaxProcs())
	}
	canonical, err := json.Marshal(&req)
	if err != nil {
		return parsed{}, errf(http.StatusBadRequest, "canonicalizing request: %v", err)
	}
	opts := predict.EstimateOptions{FaithfulMixed: req.Faithful}
	compute := func() flightResult {
		results, err := predict.ExploreOpts(m, predict.StandardVariants(base), opts)
		if err != nil {
			return jsonBody(http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
		}
		var baselineSec float64
		for _, r := range results {
			if r.Variant.Name == "baseline" {
				baselineSec = r.Total.Seconds()
			}
		}
		resp := ExploreResponse{App: m.App, Base: base.Name, Best: results[0].Variant.Name}
		for rank, r := range results {
			row := ExploreRow{Rank: rank + 1, Variant: r.Variant.Name, TimeIOS: r.Total.Seconds()}
			if baselineSec > 0 && r.Total > 0 {
				row.VsBaseline = baselineSec / r.Total.Seconds()
			}
			resp.Results = append(resp.Results, row)
		}
		return jsonBody(http.StatusOK, resp)
	}
	return parsed{canonical: canonical, compute: compute}, nil
}

// parseCompareDegraded validates a CompareDegradedRequest and closes over
// its computation. Scenarios resolve against the built-in presets only —
// the server never reads files on behalf of a request.
func (s *Server) parseCompareDegraded(raw []byte) (parsed, *apiError) {
	var req CompareDegradedRequest
	if err := strictUnmarshal(raw, &req); err != nil {
		return parsed{}, errf(http.StatusBadRequest, "bad compare-degraded request: %v", err)
	}
	m, aerr := s.model(req.Model)
	if aerr != nil {
		return parsed{}, aerr
	}
	spec, ok := s.zooByName[req.Config]
	if !ok {
		return parsed{}, errf(http.StatusNotFound,
			"unknown configuration %q (known: %s)", req.Config, strings.Join(s.zooNames, ", "))
	}
	sch, ok := faults.Preset(req.Scenario)
	if !ok {
		return parsed{}, errf(http.StatusNotFound,
			"unknown scenario %q (known: %s)", req.Scenario, strings.Join(s.scenarios, ", "))
	}
	if req.PeakFileMiB == 0 {
		req.PeakFileMiB = 512
	}
	if req.PeakRSMiB == 0 {
		req.PeakRSMiB = 8
	}
	if req.PeakFileMiB < 1 || req.PeakFileMiB > 16384 || req.PeakRSMiB < 1 ||
		req.PeakRSMiB > 1024 || req.PeakRSMiB > req.PeakFileMiB {
		return parsed{}, errf(http.StatusUnprocessableEntity,
			"peak sizes out of range: file %d MiB (1..16384), rs %d MiB (1..1024, <= file)",
			req.PeakFileMiB, req.PeakRSMiB)
	}
	canonical, err := json.Marshal(&req)
	if err != nil {
		return parsed{}, errf(http.StatusBadRequest, "canonicalizing request: %v", err)
	}
	compute := func() flightResult {
		cmp, err := predict.CompareDegraded(m, spec, sch,
			req.PeakFileMiB*units.MiB, req.PeakRSMiB*units.MiB)
		if err != nil {
			return jsonBody(http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
		}
		resp := CompareDegradedResponse{
			App:       cmp.App,
			Config:    cmp.Config,
			Scenario:  cmp.Scenario,
			HealthyS:  cmp.HealthyTotal.Seconds(),
			DegradedS: cmp.DegradedTotal.Seconds(),
			Slowdown:  cmp.Slowdown(),
		}
		for _, pd := range cmp.Phases {
			resp.Phases = append(resp.Phases, PhaseDelta{
				Phase:         pd.Phase.ID,
				Dir:           string(pd.Phase.Direction()),
				HealthyMBps:   pd.Healthy.BWch.MBpsValue(),
				DegradedMBps:  pd.Degraded.BWch.MBpsValue(),
				HealthyS:      pd.Healthy.TimeCH.Seconds(),
				DegradedS:     pd.Degraded.TimeCH.Seconds(),
				HealthyUsage:  pd.HealthyUsage,
				DegradedUsage: pd.DegradedUsage,
			})
		}
		return jsonBody(http.StatusOK, resp)
	}
	return parsed{canonical: canonical, compute: compute}, nil
}

// model resolves a corpus model by name.
func (s *Server) model(name string) (*core.Model, *apiError) {
	m, ok := s.corpus[name]
	if !ok {
		return nil, errf(http.StatusNotFound,
			"unknown model %q (known: %s)", name, strings.Join(s.modelNames, ", "))
	}
	return m, nil
}
