package serve

import (
	"encoding/json"
	"io"
	"sync"
)

// AccessEntry is one structured access-log record, rendered as a single
// JSON line. Field order is the struct order, so the log format is stable
// and greppable; timestamps are wall-clock (RFC 3339, from the clock seam)
// because the log describes the server, not the simulation — nothing here
// ever reaches a response body.
type AccessEntry struct {
	TS     string `json:"ts"`
	ID     string `json:"id"`
	Method string `json:"method"`
	Path   string `json:"path"`
	Status int    `json:"status"`
	Bytes  int    `json:"bytes"`
	DurUS  int64  `json:"dur_us"`
	// Query attribution (POST /v1/* only).
	FP        string `json:"fp,omitempty"`        // query fingerprint (first 16 hex of SHA-256)
	Cache     string `json:"cache,omitempty"`     // "hit" (served from the response cache) or "miss"
	Coalesced bool   `json:"coalesced,omitempty"` // rode another request's in-flight computation
	Fastpath  string `json:"fastpath,omitempty"`  // the server's analytic fast-path mode
	QueueUS   int64  `json:"queue_us,omitempty"`  // admission wait, microseconds
	Err       string `json:"err,omitempty"`       // error body summary for non-2xx
}

// accessLogger serializes JSON access-log lines onto one writer. A nil
// logger (no -access-log) drops entries at the cost of one nil check.
type accessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func newAccessLogger(w io.Writer) *accessLogger {
	if w == nil {
		return nil
	}
	return &accessLogger{w: w}
}

// log writes one entry as a JSON line. Marshal errors are impossible for
// AccessEntry (plain scalar fields); write errors are swallowed — a dying
// log sink must not fail requests.
func (l *accessLogger) log(e AccessEntry) {
	if l == nil {
		return
	}
	raw, err := json.Marshal(e)
	if err != nil {
		return
	}
	raw = append(raw, '\n')
	l.mu.Lock()
	_, _ = l.w.Write(raw)
	l.mu.Unlock()
}
