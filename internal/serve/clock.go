// clock.go is the package's only sanctioned wall-clock seam. internal/serve
// is in iovet's simulation-package scope (DESIGN.md §13): nothing in the
// query path may read a run-to-run-varying source, because identical queries
// must produce byte-identical response bodies at any concurrency. Latency
// spans, queue-wait histograms and access-log timestamps are the deliberate
// exception — they describe the server, not the simulation, and never reach
// a response body — so every real-time read is funneled through these two
// helpers, and detwall allowlists exactly this file (anywhere else in the
// package, time.Now is a build failure).
package serve

import "time"

// now reads the wall clock. Telemetry and logging only — never let the
// result flow into a response body.
func now() time.Time { return time.Now() }

// since reports wall-clock time elapsed from t.
func since(t time.Time) time.Duration { return time.Since(t) }

// stamp renders an instant for the access log: UTC RFC 3339 with
// microsecond precision.
func stamp(t time.Time) string { return t.UTC().Format("2006-01-02T15:04:05.000000Z") }
