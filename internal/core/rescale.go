package core

import (
	"fmt"
)

// Rescale derives the I/O model for a different process count from a model
// characterized at one — "characterize once at small scale, predict at
// large scale". It exploits the structure the paper's Table XI makes
// explicit: for weak-scaling-by-decomposition kernels (BT-IO, MADBench2),
// a phase's weight is the global data volume and is np-invariant, the
// request size is weight/np, and the fitted offset function's coefficients
// are multiples of rs and rs·np, so both transform exactly.
//
// Rescale returns an error when a phase's shape does not factor that way
// (offsets not expressible in rs/rs·np units, or weights not divisible by
// the new np), rather than guessing.
func (m *Model) Rescale(npNew int) (*Model, error) {
	if npNew <= 0 {
		return nil, fmt.Errorf("core: rescale to np=%d", npNew)
	}
	if npNew == m.NP {
		out := *m
		return &out, nil
	}
	out := &Model{
		App:          m.App,
		SourceConfig: m.SourceConfig,
		NP:           npNew,
		AccessMode:   m.AccessMode,
		AccessType:   m.AccessType,
		PointerSet:   m.PointerSet,
		Collective:   m.Collective,
	}
	for _, f := range m.Files {
		nf := f
		nf.Views = nil // views are np-specific; re-derived information only
		out.Files = append(out.Files, nf)
	}
	for _, pm := range m.Phases {
		np, err := rescalePhase(pm, m.NP, npNew)
		if err != nil {
			return nil, fmt.Errorf("core: phase %d: %v", pm.ID, err)
		}
		out.Phases = append(out.Phases, np)
	}
	return out, nil
}

// rescalePhase transforms one phase from npOld to npNew ranks.
func rescalePhase(pm *PhaseModel, npOld, npNew int) (*PhaseModel, error) {
	if pm.NP != npOld {
		// Sub-communicator phases (gangs) don't have a universal
		// scaling rule.
		return nil, fmt.Errorf("phase spans %d of %d ranks", pm.NP, npOld)
	}
	rsOld := pm.RequestSize()
	unitOld := int64(0)
	for _, op := range pm.Ops {
		unitOld += op.Size
	}
	// Weight (global volume) is invariant; the per-rank share changes.
	if pm.Weight%int64(npNew) != 0 {
		return nil, fmt.Errorf("weight %d not divisible by np=%d", pm.Weight, npNew)
	}
	scaleBy := func(v int64, what string) (int64, error) {
		// v must be k·rsOld so it can become k·rsNew exactly.
		if v%rsOld != 0 {
			return 0, fmt.Errorf("%s %d not a multiple of rs", what, v)
		}
		return v / rsOld, nil
	}
	rsNew := rsOld * int64(npOld) / int64(npNew)
	if rsOld*int64(npOld)%int64(npNew) != 0 {
		return nil, fmt.Errorf("rs·np %d not divisible by np=%d", rsOld*int64(npOld), npNew)
	}
	np := *pm
	np.NP = npNew
	np.Ops = nil
	for _, op := range pm.Ops {
		k, err := scaleBy(op.Size, "size")
		if err != nil {
			return nil, err
		}
		kd, err := scaleBy(op.Disp, "disp")
		if err != nil {
			return nil, err
		}
		ks, err := scaleBy(op.Skew, "skew")
		if err != nil {
			return nil, err
		}
		np.Ops = append(np.Ops, OpModel{
			Op: op.Op, Size: k * rsNew, Disp: kd * rsNew, Skew: ks * rsNew,
		})
	}
	// Offset coefficients: decompose each into a·rs + b·rs·np and map to
	// the new rs and np. A is typically k·rs (per-rank placement); B is
	// typically rs·np (per-round advance); C combines both.
	mapCoef := func(v int64, what string) (int64, error) {
		rsnpOld := rsOld * int64(npOld)
		rsnpNew := rsNew * int64(npNew) // == rsnpOld, by construction
		b := v / rsnpOld
		rem := v - b*rsnpOld
		if rem%rsOld != 0 {
			return 0, fmt.Errorf("offset %s %d not in rs/rs·np units", what, v)
		}
		a := rem / rsOld
		return a*rsNew + b*rsnpNew, nil
	}
	var err error
	if np.OffsetC, err = mapCoef(pm.OffsetC, "C"); err != nil {
		return nil, err
	}
	if np.OffsetA, err = mapCoef(pm.OffsetA, "A"); err != nil {
		return nil, err
	}
	if np.OffsetB, err = mapCoef(pm.OffsetB, "B"); err != nil {
		return nil, err
	}
	if np.OffsetD, err = mapCoef(pm.OffsetD, "D"); err != nil {
		return nil, err
	}
	np.OffsetExpr = np.OffsetFn().Render(rsNew, npNew)
	np.MeasuredSec = 0 // measurements do not transfer across np
	return &np, nil
}
