// Package core defines the application I/O abstract model — the paper's
// primary contribution. A Model captures, independently of any I/O
// subsystem, the three characteristics of §III-A1: metadata (how files are
// opened, viewed and accessed), the spatial global pattern (offset
// functions, displacements, request sizes) and the temporal global pattern
// (phase ordering by logical ticks). A Model extracted on one cluster can
// be replayed with IOR-style benchmarks on any other cluster to estimate
// the application's I/O time there (Eq. 1–2), without running the
// application again.
package core

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"iophases/internal/phase"
	"iophases/internal/trace"
	"iophases/internal/units"
)

// Direction classifies a phase's data movement.
type Direction string

// Phase directions.
const (
	Write Direction = "W"
	Read  Direction = "R"
	Mixed Direction = "W-R"
)

// OpModel is one operation slot of a phase (request size, physical
// per-repetition displacement, and the slot's offset skew from slot 0).
type OpModel struct {
	Op   trace.Op `json:"op"`
	Size int64    `json:"size"`
	Disp int64    `json:"disp"`
	Skew int64    `json:"skew,omitempty"`
}

// PhaseModel is the abstract form of one I/O phase.
type PhaseModel struct {
	ID         int       `json:"id"`
	File       int       `json:"file"`
	Ops        []OpModel `json:"ops"`
	Rep        int       `json:"rep"`
	NP         int       `json:"np"`
	Weight     int64     `json:"weight"` // bytes
	Tick       int64     `json:"tick"`
	Collective bool      `json:"collective"`
	OffsetC    int64     `json:"offsetC"`
	OffsetA    int64     `json:"offsetA"`
	OffsetB    int64     `json:"offsetB"`
	OffsetD    int64     `json:"offsetD"`
	OffsetOK   bool      `json:"offsetExact"`
	OffsetExpr string    `json:"offsetExpr"`
	FamilyID   int       `json:"familyId"`
	FamilyRep  int       `json:"familyRep"`

	// MeasuredSec is the phase's elapsed I/O time on the system the
	// trace was taken on. It is not part of the abstract model (it is
	// subsystem-dependent) but rides along for validation (Tables
	// XIII–XIV compare estimates against it on the target system).
	MeasuredSec float64 `json:"measuredSec,omitempty"`
	// StartSec is the phase's start in the traced run (app-relative),
	// giving the temporal pattern a wall-clock skeleton for planning.
	StartSec float64 `json:"startSec,omitempty"`
}

// Direction reports the phase's data direction.
func (pm *PhaseModel) Direction() Direction {
	var w, r bool
	for _, op := range pm.Ops {
		w = w || op.Op.IsWrite()
		r = r || op.Op.IsRead()
	}
	switch {
	case w && r:
		return Mixed
	case w:
		return Write
	default:
		return Read
	}
}

// RequestSize reports the phase's request size rs (first slot).
func (pm *PhaseModel) RequestSize() int64 { return pm.Ops[0].Size }

// OffsetFn reconstructs the fitted offset function.
func (pm *PhaseModel) OffsetFn() phase.OffsetFn {
	return phase.OffsetFn{C: pm.OffsetC, A: pm.OffsetA, B: pm.OffsetB, D: pm.OffsetD, Exact: pm.OffsetOK}
}

// ReplaySpec is the IOR parameterization of a phase per §III-B: one
// segment, per-process block weight/np, transfer size rs, np processes,
// file-per-process and collective flags from metadata. Mixed phases replay
// as a write pass and a read pass whose bandwidths are averaged — the
// paper's stated treatment (and the source of its phase-3 error).
type ReplaySpec struct {
	PhaseID      int
	NP           int
	BlockPerProc int64 // b = weight/np
	Transfer     int64 // t = rs
	Segments     int   // s = 1
	FilePerProc  bool  // -F
	Collective   bool  // -c
	Direction    Direction
}

// Replay derives the phase's IOR parameters.
func (pm *PhaseModel) Replay(accessType string) ReplaySpec {
	return ReplaySpec{
		PhaseID:      pm.ID,
		NP:           pm.NP,
		BlockPerProc: pm.Weight / int64(pm.NP),
		Transfer:     pm.RequestSize(),
		Segments:     1,
		FilePerProc:  accessType == "unique",
		Collective:   pm.Collective,
		Direction:    pm.Direction(),
	}
}

// Model is the application I/O abstract model.
type Model struct {
	//iovet:cosmetic provenance label, no effect on replayed physics
	App string `json:"app"`
	//iovet:cosmetic provenance label, no effect on replayed physics
	SourceConfig string `json:"sourceConfig"`
	NP           int    `json:"np"`
	// Files carries trace-time file names the replayer never uses: it
	// opens per-app synthetic paths, and fsim placement rotates on
	// creation order, not names.
	//iovet:cosmetic trace-time names unused by replay
	Files  []trace.FileMeta `json:"files"`
	Phases []*PhaseModel    `json:"phases"`
	AccessMode   string           `json:"accessMode"` // sequential | strided | random
	AccessType   string           `json:"accessType"` // shared | unique
	PointerSet   string           `json:"pointerSet"`
	Collective   bool             `json:"collective"`
}

// Build extracts the model from a trace set: phase identification plus
// metadata derivation.
func Build(set *trace.Set) *Model {
	return modelFromResult(phase.Identify(set))
}

// BuildStream extracts the model from a trace source without materializing
// the events: phase.IdentifyStream keeps memory bounded by np and LAP
// count, not trace length, and is pinned byte-identical to the in-memory
// path. Use for traces too large to Load.
func BuildStream(src trace.Source) (*Model, error) {
	res, err := phase.IdentifyStream(src)
	if err != nil {
		return nil, err
	}
	return modelFromResult(res), nil
}

// modelFromResult converts a phase decomposition into the abstract model.
func modelFromResult(res *phase.Result) *Model {
	set := res.Set
	m := &Model{
		App:          set.App,
		SourceConfig: set.Config,
		NP:           set.NP,
		Files:        append([]trace.FileMeta(nil), set.Files...),
	}
	for _, ph := range res.Phases {
		pm := &PhaseModel{
			ID:         ph.ID,
			File:       ph.File,
			Rep:        ph.Rep,
			NP:         ph.NP,
			Weight:     ph.Weight,
			Tick:       ph.Tick,
			Collective: ph.Collective,
			OffsetC:    ph.OffsetFn.C,
			OffsetA:    ph.OffsetFn.A,
			OffsetB:    ph.OffsetFn.B,
			OffsetD:    ph.OffsetFn.D,
			OffsetOK:   ph.OffsetFn.Exact,
			OffsetExpr: ph.OffsetFn.Render(ph.RequestSize(), ph.NP),
			FamilyID:   ph.FamilyID,
			FamilyRep:  ph.FamilyRep,
		}
		for _, op := range ph.Ops {
			pm.Ops = append(pm.Ops, OpModel{Op: op.Op, Size: op.Size, Disp: op.Disp, Skew: op.Skew})
		}
		pm.MeasuredSec = ph.MeasuredTime().Seconds()
		pm.StartSec = ph.StartTime().Seconds()
		m.Phases = append(m.Phases, pm)
	}
	m.deriveMetadata()
	return m
}

// deriveMetadata fills the global access characteristics from file metadata
// and phase geometry.
func (m *Model) deriveMetadata() {
	m.AccessMode = "sequential"
	m.AccessType = "shared"
	m.PointerSet = "explicit"
	for _, f := range m.Files {
		if f.AccessType == "unique" {
			m.AccessType = "unique"
		}
		if f.PointerSet == "individual" {
			m.PointerSet = "individual"
		}
		if f.Collective {
			m.Collective = true
		}
		for _, v := range f.Views {
			if v.Block > 0 && v.Stride > v.Block {
				m.AccessMode = "strided"
			}
		}
	}
	if m.AccessMode == "strided" {
		return
	}
	// No strided view: classify from phase displacements.
	irregular := false
	for _, pm := range m.Phases {
		for _, op := range pm.Ops {
			if pm.Rep > 1 && op.Disp != op.Size {
				if op.Disp > op.Size {
					m.AccessMode = "strided"
				} else {
					irregular = true
				}
			}
		}
	}
	if irregular && m.AccessMode == "sequential" {
		m.AccessMode = "random"
	}
}

// TotalBytes sums phase weights by direction.
func (m *Model) TotalBytes() (written, read int64) {
	for _, pm := range m.Phases {
		for _, op := range pm.Ops {
			vol := op.Size * int64(pm.Rep) * int64(pm.NP)
			if op.Op.IsWrite() {
				written += vol
			} else if op.Op.IsRead() {
				read += vol
			}
		}
	}
	return
}

// Families groups phases by family id, preserving order (unsplit phases
// are singleton groups).
func (m *Model) Families() [][]*PhaseModel {
	var out [][]*PhaseModel
	index := make(map[int]int)
	for _, pm := range m.Phases {
		if pm.FamilyID == 0 {
			out = append(out, []*PhaseModel{pm})
			continue
		}
		if i, ok := index[pm.FamilyID]; ok {
			out[i] = append(out[i], pm)
		} else {
			index[pm.FamilyID] = len(out)
			out = append(out, []*PhaseModel{pm})
		}
	}
	return out
}

// SameShape reports whether two models describe the same application I/O
// behaviour — the paper's subsystem-independence claim: extracting the
// model on two different clusters must yield equal shapes (everything
// except measured times).
func (m *Model) SameShape(o *Model) bool {
	if m.App != o.App || m.NP != o.NP || len(m.Phases) != len(o.Phases) {
		return false
	}
	if m.AccessMode != o.AccessMode || m.AccessType != o.AccessType ||
		m.Collective != o.Collective || m.PointerSet != o.PointerSet {
		return false
	}
	for i, a := range m.Phases {
		b := o.Phases[i]
		if a.Weight != b.Weight || a.Rep != b.Rep || a.NP != b.NP ||
			a.Tick != b.Tick || a.Collective != b.Collective ||
			a.OffsetC != b.OffsetC || a.OffsetA != b.OffsetA ||
			a.OffsetB != b.OffsetB || a.OffsetD != b.OffsetD ||
			len(a.Ops) != len(b.Ops) {
			return false
		}
		for j := range a.Ops {
			if a.Ops[j] != b.Ops[j] {
				return false
			}
		}
	}
	return true
}

// AccessPoint is one modeled access in the three-dimensional space of
// Figure 5: logical time (tick) × process × file offset.
type AccessPoint struct {
	Tick   int64
	Rank   int
	Offset int64
	Size   int64
	Dir    Direction
}

// AccessPoints expands the model into the global access pattern scatter
// used by the spatial/temporal figures (5, 7, 9, 10). Repetitions inside a
// phase advance by the slot displacement and one tick each.
func (m *Model) AccessPoints() []AccessPoint {
	var out []AccessPoint
	for _, pm := range m.Phases {
		fn := pm.OffsetFn()
		rep1 := pm.FamilyRep
		if rep1 == 0 {
			rep1 = 1
		}
		for rank := 0; rank < pm.NP; rank++ {
			base := fn.Eval(rank, rep1)
			for rep := 0; rep < pm.Rep; rep++ {
				off := base
				for slot, op := range pm.Ops {
					dir := Write
					if op.Op.IsRead() {
						dir = Read
					}
					out = append(out, AccessPoint{
						Tick:   pm.Tick + int64(rep*len(pm.Ops)+slot),
						Rank:   rank,
						Offset: off + int64(rep)*op.Disp + op.Skew,
						Size:   op.Size,
						Dir:    dir,
					})
				}
			}
		}
	}
	return out
}

// Diff explains how two models differ, one line per divergence (empty when
// SameShape holds) — the diagnostic behind the subsystem-independence
// check.
func (m *Model) Diff(o *Model) []string {
	var out []string
	add := func(format string, args ...interface{}) {
		out = append(out, fmt.Sprintf(format, args...))
	}
	if m.App != o.App {
		add("app: %q vs %q", m.App, o.App)
	}
	if m.NP != o.NP {
		add("np: %d vs %d", m.NP, o.NP)
	}
	for _, d := range []struct{ name, a, b string }{
		{"access mode", m.AccessMode, o.AccessMode},
		{"access type", m.AccessType, o.AccessType},
		{"pointer set", m.PointerSet, o.PointerSet},
	} {
		if d.a != d.b {
			add("%s: %q vs %q", d.name, d.a, d.b)
		}
	}
	if m.Collective != o.Collective {
		add("collective: %v vs %v", m.Collective, o.Collective)
	}
	if len(m.Phases) != len(o.Phases) {
		add("phase count: %d vs %d", len(m.Phases), len(o.Phases))
		return out
	}
	for i, a := range m.Phases {
		b := o.Phases[i]
		switch {
		case a.Weight != b.Weight:
			add("phase %d weight: %d vs %d", a.ID, a.Weight, b.Weight)
		case a.Rep != b.Rep:
			add("phase %d rep: %d vs %d", a.ID, a.Rep, b.Rep)
		case a.NP != b.NP:
			add("phase %d np: %d vs %d", a.ID, a.NP, b.NP)
		case a.Tick != b.Tick:
			add("phase %d tick: %d vs %d", a.ID, a.Tick, b.Tick)
		case a.Collective != b.Collective:
			add("phase %d collective: %v vs %v", a.ID, a.Collective, b.Collective)
		case a.OffsetA != b.OffsetA || a.OffsetB != b.OffsetB ||
			a.OffsetC != b.OffsetC || a.OffsetD != b.OffsetD:
			add("phase %d offset fn: %s vs %s", a.ID, a.OffsetExpr, b.OffsetExpr)
		case len(a.Ops) != len(b.Ops):
			add("phase %d op count: %d vs %d", a.ID, len(a.Ops), len(b.Ops))
		default:
			for j := range a.Ops {
				if a.Ops[j] != b.Ops[j] {
					add("phase %d op %d: %+v vs %+v", a.ID, j, a.Ops[j], b.Ops[j])
					break
				}
			}
		}
	}
	return out
}

// Save writes the model as JSON.
func (m *Model) Save(path string) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// Load reads a model saved by Save.
func Load(path string) (*Model, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Model
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("core: %s: %v", path, err)
	}
	return &m, nil
}

// String renders the model in the descriptive style of Figures 7, 9, 10:
// metadata block plus the phase table.
func (m *Model) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "I/O model of %s for %d processes (traced on %s)\n",
		m.App, m.NP, m.SourceConfig)
	fmt.Fprintf(&b, "  metadata: %s pointers, collective=%v, blocking=true\n",
		m.PointerSet, m.Collective)
	fmt.Fprintf(&b, "            %s access mode, %s access type\n", m.AccessMode, m.AccessType)
	w, r := m.TotalBytes()
	fmt.Fprintf(&b, "  volume:   %s written, %s read\n", units.FormatBytes(w), units.FormatBytes(r))
	fmt.Fprintf(&b, "  phases:   %d\n", len(m.Phases))
	fmt.Fprintf(&b, "%-6s %-8s %-10s %-5s %-10s %-8s %s\n",
		"Phase", "#Oper.", "rs", "Rep", "weight", "tick", "InitOffset")
	for _, pm := range m.Phases {
		fmt.Fprintf(&b, "%-6d %-8s %-10s %-5d %-10s %-8d %s\n",
			pm.ID,
			fmt.Sprintf("%d %s", len(pm.Ops)*pm.Rep*pm.NP, pm.Direction()),
			units.FormatBytes(pm.RequestSize()),
			pm.Rep,
			units.FormatBytes(pm.Weight),
			pm.Tick,
			pm.OffsetExpr)
	}
	return b.String()
}
