package core

import (
	"path/filepath"
	"testing"

	"iophases/internal/apps/btio"
	"iophases/internal/apps/madbench"
	"iophases/internal/cluster"
	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/runner"
	"iophases/internal/units"
)

// traceMadbench runs MADBench2 (paper parameters scaled by f) on spec and
// returns the extracted model.
func traceMadbench(t *testing.T, spec cluster.Spec, np int, rs int64) *Model {
	t.Helper()
	params := madbench.Default()
	params.RS = rs
	res := runner.Run(spec, np, "madbench2", func(sys *mpiio.System) func(*mpi.Rank) {
		return madbench.Program(sys, params)
	}, runner.Options{Trace: true})
	return Build(res.Set)
}

func TestMadbenchModelMatchesTableVIII(t *testing.T) {
	// Full paper scale: 16 processes, 32 MiB requests, shared file.
	m := traceMadbench(t, cluster.ConfigA(), 16, 32*units.MiB)
	if len(m.Phases) != 5 {
		t.Fatalf("phases = %d, want 5\n%s", len(m.Phases), m)
	}
	wantWeight := []int64{4 * units.GiB, 1 * units.GiB, 6 * units.GiB, 1 * units.GiB, 4 * units.GiB}
	wantRep := []int{8, 2, 6, 2, 8}
	wantDir := []Direction{Write, Read, Mixed, Write, Read}
	for i, pm := range m.Phases {
		if pm.Weight != wantWeight[i] || pm.Rep != wantRep[i] || pm.Direction() != wantDir[i] {
			t.Fatalf("phase %d = weight %s rep %d dir %s\n%s",
				pm.ID, units.FormatBytes(pm.Weight), pm.Rep, pm.Direction(), m)
		}
		// Table VIII: initOffset slope idP·8·32MB for every phase.
		if pm.OffsetA != 8*32*units.MiB || !pm.OffsetOK {
			t.Fatalf("phase %d offset fn A=%d exact=%v", pm.ID, pm.OffsetA, pm.OffsetOK)
		}
		if pm.NP != 16 {
			t.Fatalf("phase %d np=%d", pm.ID, pm.NP)
		}
	}
	// §IV-A metadata: individual pointers, non-collective, blocking,
	// sequential mode, shared file.
	if m.PointerSet != "individual" || m.Collective || m.AccessMode != "sequential" || m.AccessType != "shared" {
		t.Fatalf("metadata: %+v", m)
	}
	// Phase 3 skew: reads two bins ahead of writes.
	p3 := m.Phases[2]
	if len(p3.Ops) != 2 || p3.Ops[1].Skew != 2*32*units.MiB {
		t.Fatalf("phase 3 ops %+v", p3.Ops)
	}
}

func TestBTIOModelMatchesTableXI(t *testing.T) {
	// Miniature class (10 dumps) at 4 processes to keep the test fast;
	// the structure is class-independent (the paper: "we had obtained
	// the same I/O model in the four configurations to different
	// classes. Difference between the classes is the weights").
	const np = 4
	params := btio.Default(btio.ClassW)
	res := runner.Run(cluster.ConfigA(), np, "btio", func(sys *mpiio.System) func(*mpi.Rank) {
		return btio.Program(sys, params)
	}, runner.Options{Trace: true})
	m := Build(res.Set)

	dumps := btio.ClassW.Dumps()
	rs := btio.ClassW.RS(np)
	if len(m.Phases) != dumps+1 {
		t.Fatalf("phases = %d, want %d\n%s", len(m.Phases), dumps+1, m)
	}
	for i := 0; i < dumps; i++ {
		pm := m.Phases[i]
		if pm.Direction() != Write || pm.Rep != 1 || !pm.Collective {
			t.Fatalf("phase %d: dir=%s rep=%d coll=%v", pm.ID, pm.Direction(), pm.Rep, pm.Collective)
		}
		if pm.FamilyRep != i+1 {
			t.Fatalf("phase %d family rep %d", pm.ID, pm.FamilyRep)
		}
		// Table XI: rs·idP + rs·np·(ph−1), exactly.
		if pm.OffsetA != rs || pm.OffsetB != rs*np || !pm.OffsetOK {
			t.Fatalf("phase %d offsets A=%d B=%d want A=%d B=%d", pm.ID, pm.OffsetA, pm.OffsetB, rs, rs*np)
		}
	}
	last := m.Phases[dumps]
	if last.Direction() != Read || last.Rep != dumps {
		t.Fatalf("read phase %+v", last)
	}
	// §IV-B metadata: explicit offsets, collective, strided, shared,
	// etype 40.
	if m.PointerSet != "explicit" || !m.Collective || m.AccessMode != "strided" || m.AccessType != "shared" {
		t.Fatalf("metadata %+v", m)
	}
	if m.Files[0].ViewEtype != 40 {
		t.Fatalf("etype %d", m.Files[0].ViewEtype)
	}
	// Dump spacing: 5 steps × 24 exchanges + write = 121 ticks, Fig. 2.
	if d := m.Phases[1].Tick - m.Phases[0].Tick; d != 121 {
		t.Fatalf("dump tick spacing %d, want 121", d)
	}
}

// TestModelIndependence is the paper's central §I claim: the same model
// must come out of traces taken on different I/O subsystems.
func TestModelIndependence(t *testing.T) {
	rs := int64(4 * units.MiB)
	a := traceMadbench(t, cluster.ConfigA(), 8, rs)
	b := traceMadbench(t, cluster.ConfigB(), 8, rs)
	if !a.SameShape(b) {
		t.Fatalf("models differ across configurations:\nA:\n%s\nB:\n%s", a, b)
	}
	if a.SourceConfig == b.SourceConfig {
		t.Fatal("traces should come from different configs")
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m := traceMadbench(t, cluster.ConfigA(), 4, units.MiB)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.SameShape(m) {
		t.Fatal("round trip changed the model")
	}
}

func TestReplaySpecDerivation(t *testing.T) {
	m := traceMadbench(t, cluster.ConfigA(), 8, 2*units.MiB)
	p1 := m.Phases[0]
	spec := p1.Replay(m.AccessType)
	if spec.NP != 8 || spec.Segments != 1 {
		t.Fatalf("spec %+v", spec)
	}
	if spec.BlockPerProc != p1.Weight/8 || spec.Transfer != 2*units.MiB {
		t.Fatalf("spec %+v", spec)
	}
	if spec.FilePerProc || spec.Collective {
		t.Fatalf("madbench replay flags %+v", spec)
	}
	if spec.Direction != Write {
		t.Fatalf("direction %s", spec.Direction)
	}
}

func TestAccessPointsCoverVolume(t *testing.T) {
	m := traceMadbench(t, cluster.ConfigA(), 4, units.MiB)
	pts := m.AccessPoints()
	var vol int64
	for _, pt := range pts {
		vol += pt.Size
	}
	w, r := m.TotalBytes()
	if vol != w+r {
		t.Fatalf("access points cover %d bytes, want %d", vol, w+r)
	}
}

func TestTotalBytesMatchesApp(t *testing.T) {
	params := madbench.Default()
	params.RS = units.MiB
	m := traceMadbench(t, cluster.ConfigA(), 4, units.MiB)
	w, r := m.TotalBytes()
	wantW, wantR := madbench.TotalBytes(params, 4)
	if w != wantW || r != wantR {
		t.Fatalf("volume w=%d r=%d, want %d/%d", w, r, wantW, wantR)
	}
}
