package core

import (
	"testing"

	"iophases/internal/apps/btio"
	"iophases/internal/cluster"
	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/runner"
	"iophases/internal/units"
)

func traceBTIOModel(t *testing.T, np int, class btio.Class) *Model {
	t.Helper()
	params := btio.Default(class)
	res := runner.Run(cluster.ConfigA(), np, "btio", func(sys *mpiio.System) func(*mpi.Rank) {
		return btio.Program(sys, params)
	}, runner.Options{Trace: true})
	return Build(res.Set)
}

// TestRescaleMatchesActualTrace is the headline: the 4-process BT-IO model
// rescaled to 16 processes must equal the model actually traced at 16.
func TestRescaleMatchesActualTrace(t *testing.T) {
	m4 := traceBTIOModel(t, 4, btio.ClassW)
	m16, err := m4.Rescale(16)
	if err != nil {
		t.Fatal(err)
	}
	actual := traceBTIOModel(t, 16, btio.ClassW)
	if m16.NP != 16 || len(m16.Phases) != len(actual.Phases) {
		t.Fatalf("shape: np=%d phases=%d", m16.NP, len(m16.Phases))
	}
	for i, pm := range m16.Phases {
		am := actual.Phases[i]
		if pm.Weight != am.Weight {
			t.Fatalf("phase %d weight %d vs %d", pm.ID, pm.Weight, am.Weight)
		}
		if pm.RequestSize() != am.RequestSize() {
			t.Fatalf("phase %d rs %d vs %d", pm.ID, pm.RequestSize(), am.RequestSize())
		}
		if pm.OffsetA != am.OffsetA || pm.OffsetB != am.OffsetB ||
			pm.OffsetC != am.OffsetC || pm.OffsetD != am.OffsetD {
			t.Fatalf("phase %d offsets %+v vs %+v", pm.ID, pm.OffsetFn(), am.OffsetFn())
		}
		if pm.Rep != am.Rep || pm.NP != am.NP {
			t.Fatalf("phase %d rep/np", pm.ID)
		}
	}
}

func TestRescaleIdentity(t *testing.T) {
	m := traceBTIOModel(t, 4, btio.ClassW)
	same, err := m.Rescale(4)
	if err != nil {
		t.Fatal(err)
	}
	if !same.SameShape(m) {
		t.Fatal("identity rescale changed the model")
	}
}

func TestRescalePreservesVolume(t *testing.T) {
	m := traceBTIOModel(t, 4, btio.ClassW)
	w4, r4 := m.TotalBytes()
	m9, err := m.Rescale(9)
	if err != nil {
		t.Fatal(err)
	}
	w9, r9 := m9.TotalBytes()
	if w4 != w9 || r4 != r9 {
		t.Fatalf("volume changed: %d/%d vs %d/%d", w4, r4, w9, r9)
	}
}

func TestRescaleRejectsIndivisible(t *testing.T) {
	m := traceBTIOModel(t, 4, btio.ClassW)
	// ClassW dump bytes = 24³·40 = 552960·... per-phase weight must
	// divide by np; 7 does not divide it evenly in rs units.
	if _, err := m.Rescale(7); err == nil {
		t.Fatal("indivisible np accepted")
	}
	if _, err := m.Rescale(0); err == nil {
		t.Fatal("np=0 accepted")
	}
}

func TestRescaledModelPredicts(t *testing.T) {
	// The rescaled model must be usable downstream: replay specs stay
	// consistent (block·np == weight).
	m4 := traceBTIOModel(t, 4, btio.ClassW)
	m16, err := m4.Rescale(16)
	if err != nil {
		t.Fatal(err)
	}
	for _, pm := range m16.Phases {
		rs := pm.Replay(m16.AccessType)
		if rs.BlockPerProc*int64(rs.NP) != pm.Weight {
			t.Fatalf("phase %d replay inconsistent", pm.ID)
		}
		if rs.Transfer != pm.RequestSize() {
			t.Fatalf("phase %d transfer", pm.ID)
		}
	}
	_ = units.MiB
}

func TestDiffReportsDivergences(t *testing.T) {
	a := traceBTIOModel(t, 4, btio.ClassW)
	b := traceBTIOModel(t, 4, btio.ClassW)
	if d := a.Diff(b); len(d) != 0 {
		t.Fatalf("identical models diff: %v", d)
	}
	b.Phases[3].Weight += 42
	d := a.Diff(b)
	if len(d) != 1 {
		t.Fatalf("diff %v", d)
	}
	b.NP = 9
	if len(a.Diff(b)) != 2 {
		t.Fatalf("np divergence missed: %v", a.Diff(b))
	}
}
