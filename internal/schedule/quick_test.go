package schedule

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"iophases/internal/core"
)

// modelFromIntervals builds a synthetic model whose phase timing matches
// the given timeline exactly — the minimal input BestOffset/PlanJobs need.
func modelFromIntervals(tl []Interval) *core.Model {
	m := &core.Model{App: "synthetic"}
	for i, iv := range tl {
		m.Phases = append(m.Phases, &core.PhaseModel{
			ID: i, NP: 1, Weight: iv.Weight,
			StartSec: iv.Start, MeasuredSec: iv.End - iv.Start,
		})
	}
	return m
}

// genTimeline builds a random timeline on an integer grid: integer starts
// and durations with weights chosen as duration·rate for an integer rate,
// so every overlap contribution (seconds · min rate) is an integer and
// float summation is exact in any order. The properties below are then
// exact equalities, not tolerance checks.
func genTimeline(r *rand.Rand, n int) []Interval {
	tl := make([]Interval, n)
	for i := range tl {
		start := float64(r.Intn(100))
		dur := float64(1 + r.Intn(10))
		rate := int64(1 + r.Intn(100))
		tl[i] = Interval{Start: start, End: start + dur, Weight: int64(dur) * rate}
	}
	return tl
}

// TestOverlapSymmetry: Overlap(a, b, off) == Overlap(b, a, -off) — B
// starting off after A is the same physical situation as A starting off
// before B. The tentpole's simulator cross-validation builds on this: the
// planner may score either job as the anchor.
func TestOverlapSymmetry(t *testing.T) {
	f := func(a, b []Interval, off float64) bool {
		return Overlap(a, b, off) == Overlap(b, a, -off)
	}
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(genTimeline(r, 1+r.Intn(5)))
			args[1] = reflect.ValueOf(genTimeline(r, 1+r.Intn(5)))
			args[2] = reflect.ValueOf(float64(r.Intn(101) - 50))
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestOverlapZeroInsideGaps: whenever B's phases all land strictly inside
// A's compute gaps, the contention score is zero — the exact claim behind
// "steer B's phases into A's gaps".
func TestOverlapZeroInsideGaps(t *testing.T) {
	f := func(a, b []Interval) bool {
		return Overlap(a, b, 0) == 0
	}
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(args []reflect.Value, r *rand.Rand) {
			a := genTimeline(r, 1+r.Intn(5))
			gaps := Gaps(a)
			var b []Interval
			for _, g := range gaps {
				// Fit one phase inside each gap wide enough to hold one.
				if g.End-g.Start < 1 {
					continue
				}
				width := g.End - g.Start
				start := g.Start + float64(r.Intn(int(width)))
				end := start + 1
				if end > g.End {
					end = g.End
				}
				b = append(b, Interval{Start: start, End: end, Weight: 1 + int64(r.Intn(1000))})
			}
			args[0] = reflect.ValueOf(a)
			args[1] = reflect.ValueOf(b)
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestBestOffsetGridIsIndexExact pins the satellite fix: the searched grid
// is indexed (float64(i)·step), not accumulated, so at adversarial
// parameters — step 0.1 over a 1000 s window, 10000 non-representable
// increments — the grid has exactly the right point count and the chosen
// offset is bit-equal to a grid point.
func TestBestOffsetGridIsIndexExact(t *testing.T) {
	if got := GridSteps(1000, 0.1); got != 10000 {
		t.Fatalf("GridSteps(1000, 0.1) = %d, want 10000", got)
	}
	if got := GridSteps(0.3, 0.1); got != 3 {
		t.Fatalf("GridSteps(0.3, 0.1) = %d, want 3", got)
	}
	if got := GridSteps(1, 0.3); got != 3 {
		t.Fatalf("GridSteps(1, 0.3) = %d, want 3", got)
	}

	mk := func(start, end float64, w int64) *core.Model {
		return modelFromIntervals([]Interval{{Start: start, End: end, Weight: w}})
	}
	a, b := mk(0, 500, 500000), mk(0, 500, 500000)
	best, naive := BestOffset(a, b, 1000, 0.1)
	if naive.Score <= 0 {
		t.Fatal("identical jobs must contend at co-start")
	}
	// The first zero-contention grid point is i=5000; every earlier point
	// (e.g. 4999·0.1 = 499.90000000000003) still overlaps a sliver. An
	// accumulated grid drifts past the boundary and lands elsewhere.
	want := float64(5000) * 0.1
	if best.Score != 0 || best.OffsetSec != want {
		t.Fatalf("best = %+v, want score 0 at offset %v", best, want)
	}
	// Determinism: the same search at a window extended past the optimum
	// probes the same early grid points and returns the same plan.
	best2, _ := BestOffset(a, b, 700, 0.1)
	if best2 != best {
		t.Fatalf("window size changed the searched grid: %+v vs %+v", best2, best)
	}
}

// TestGapsShuffledInput is the regression for the sortedness bug: a
// timeline with out-of-order and overlapping phase timings (as
// multi-family merges can produce) must yield the same non-negative,
// non-overlapping gaps as the sorted equivalent.
func TestGapsShuffledInput(t *testing.T) {
	sorted := []Interval{
		{Start: 1, End: 3, Weight: 1},
		{Start: 2, End: 5, Weight: 1}, // overlaps the previous
		{Start: 7, End: 8, Weight: 1},
		{Start: 9, End: 12, Weight: 1},
	}
	shuffled := []Interval{sorted[3], sorted[0], sorted[2], sorted[1]}
	want := Gaps(sorted)
	got := Gaps(shuffled)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("shuffled gaps %+v, want %+v", got, want)
	}
	cursor := 0.0
	for i, g := range got {
		if g.End <= g.Start {
			t.Fatalf("gap %d has non-positive length: %+v", i, g)
		}
		if g.Start < cursor {
			t.Fatalf("gap %d overlaps its predecessor: %+v", i, got)
		}
		cursor = g.End
	}
	// The shuffle must not have mutated the caller's slice order.
	if shuffled[0].Start != 9 {
		t.Fatal("Gaps mutated its input")
	}
}

// TestPlanJobsPairMatchesBestOffset: the greedy N-job planner must reduce
// exactly to the pairwise search when N = 2.
func TestPlanJobsPairMatchesBestOffset(t *testing.T) {
	a := modelFromIntervals([]Interval{{Start: 0, End: 10, Weight: 1000}, {Start: 20, End: 30, Weight: 2000}})
	b := modelFromIntervals([]Interval{{Start: 0, End: 10, Weight: 1500}})
	best, _ := BestOffset(a, b, 40, 0.5)
	plans, err := PlanJobs([]*core.Model{a, b}, 40, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if plans[0].OffsetSec != 0 || plans[1] != best {
		t.Fatalf("PlanJobs %+v, want anchor 0 and %+v", plans, best)
	}
}
