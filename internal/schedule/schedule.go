// Package schedule applies I/O models to job co-scheduling — the use the
// paper sketches in §IV-A: "This view of application I/O can be useful …
// for the planning the parallel applications taking into account when the
// I/O phases are done in the application executing."
//
// Two jobs that share a cluster contend only while their I/O phases
// overlap; between phases each computes without touching storage. Given
// two I/O models (whose phases carry start times and durations from
// characterization), the planner scores candidate start offsets for the
// second job by the byte-weighted overlap of I/O intervals and picks the
// offset that interleaves one job's phases into the other's compute gaps.
package schedule

import (
	"fmt"
	"math"
	"sort"

	"iophases/internal/core"
)

// Interval is one I/O phase on the wall clock, weighted by its volume.
type Interval struct {
	Start, End float64 // seconds, app-relative
	Weight     int64   // bytes
}

// Timeline extracts a model's I/O intervals. Phases with missing timing
// (e.g. rescaled models) yield a nil timeline.
func Timeline(m *core.Model) []Interval {
	var out []Interval
	for _, pm := range m.Phases {
		if pm.MeasuredSec <= 0 {
			return nil
		}
		out = append(out, Interval{
			Start:  pm.StartSec,
			End:    pm.StartSec + pm.MeasuredSec,
			Weight: pm.Weight,
		})
	}
	return out
}

// Makespan reports the end of the last interval (the app's I/O horizon).
func Makespan(tl []Interval) float64 {
	var end float64
	for _, iv := range tl {
		if iv.End > end {
			end = iv.End
		}
	}
	return end
}

// Overlap scores the contention of two timelines when the second starts
// `offset` seconds after the first: for every pair of overlapping
// intervals it accumulates overlapSeconds · min(weightRate_a, weightRate_b)
// — bytes that will fight for the same storage path.
func Overlap(a, b []Interval, offset float64) float64 {
	var score float64
	for _, ia := range a {
		ra := rate(ia)
		for _, ib := range b {
			s := math.Max(ia.Start, ib.Start+offset)
			e := math.Min(ia.End, ib.End+offset)
			if e <= s {
				continue
			}
			score += (e - s) * math.Min(ra, rate(ib))
		}
	}
	return score
}

func rate(iv Interval) float64 {
	d := iv.End - iv.Start
	if d <= 0 {
		return 0
	}
	return float64(iv.Weight) / d
}

// Plan is a scored start offset for the second job.
type Plan struct {
	OffsetSec float64
	Score     float64 // contended bytes (lower is better)
}

// BestOffset searches start offsets for job B in [0, window] at the given
// step and returns the plan minimizing contention, plus the score at
// offset 0 (the naive co-start) for comparison. Ties prefer the smallest
// offset, so B never waits longer than it has to.
//
// The grid is indexed, not accumulated: offset i is float64(i)*stepSec, so
// the searched points are identical for any window size (an accumulating
// `off += stepSec` drifts by one ulp per step, and over a long window the
// drift moves grid points past phase boundaries — the planner's answer
// then depends on where the window ends, not on the timelines).
func BestOffset(a, b *core.Model, windowSec, stepSec float64) (best Plan, naive Plan) {
	ta, tb := Timeline(a), Timeline(b)
	naive = Plan{OffsetSec: 0, Score: Overlap(ta, tb, 0)}
	best = naive
	if windowSec <= 0 || stepSec <= 0 || ta == nil || tb == nil {
		return best, naive
	}
	for i, n := 1, GridSteps(windowSec, stepSec); i <= n; i++ {
		off := float64(i) * stepSec
		if s := Overlap(ta, tb, off); s < best.Score {
			best = Plan{OffsetSec: off, Score: s}
		}
	}
	return best, naive
}

// GridSteps reports how many step-sized offsets past zero the search grid
// of [0, window] contains. The epsilon admits the final grid point when
// window is an exact multiple of step up to rounding (window 1000, step
// 0.1 must search 10000 offsets, not 9999), scaled to the window so it
// cannot invent a point beyond it at any magnitude.
func GridSteps(windowSec, stepSec float64) int {
	if windowSec <= 0 || stepSec <= 0 {
		return 0
	}
	return int((windowSec + windowSec*1e-12) / stepSec)
}

// Gaps reports the compute gaps of a timeline (the complements of its I/O
// intervals within the makespan) — where a co-scheduled job's phases fit
// for free. The input is sorted by start time first: timelines from
// multi-family merges can carry out-of-order or overlapping phase
// timings, and sweeping them in phase order would emit negative-length or
// overlapping "gaps".
func Gaps(tl []Interval) []Interval {
	if len(tl) == 0 {
		return nil
	}
	sorted := append([]Interval(nil), tl...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].End < sorted[j].End
	})
	horizon := Makespan(sorted)
	var gaps []Interval
	cursor := 0.0
	for _, iv := range sorted {
		if iv.Start > cursor {
			gaps = append(gaps, Interval{Start: cursor, End: iv.Start})
		}
		if iv.End > cursor {
			cursor = iv.End
		}
	}
	if cursor < horizon {
		gaps = append(gaps, Interval{Start: cursor, End: horizon})
	}
	return gaps
}

// Shift returns the timeline with offset added to every interval — the
// wall-clock view of a job started offset seconds late.
func Shift(tl []Interval, offset float64) []Interval {
	out := make([]Interval, len(tl))
	for i, iv := range tl {
		out[i] = Interval{Start: iv.Start + offset, End: iv.End + offset, Weight: iv.Weight}
	}
	return out
}

// PlanJobs places N jobs on one shared subsystem greedily: job 0 anchors
// at offset 0; each later job sweeps [0, window] at step against the union
// of the already-placed (shifted) timelines and takes the offset that adds
// the least contention. Returned plans are per job, in input order; each
// Score is the contention that job adds against everything placed before
// it. For two jobs this reduces exactly to BestOffset. Models without
// phase timing are an error — a plan over missing timelines would be
// silent nonsense.
func PlanJobs(models []*core.Model, windowSec, stepSec float64) ([]Plan, error) {
	if len(models) < 2 {
		return nil, fmt.Errorf("schedule: PlanJobs needs at least 2 models, got %d", len(models))
	}
	timelines := make([][]Interval, len(models))
	for i, m := range models {
		if timelines[i] = Timeline(m); timelines[i] == nil {
			return nil, fmt.Errorf("schedule: model %q lacks phase timing (rescaled models cannot be scheduled)", m.App)
		}
	}
	plans := make([]Plan, len(models))
	placed := Shift(timelines[0], 0) // job 0 anchors the schedule
	plans[0] = Plan{}
	for j := 1; j < len(models); j++ {
		tb := timelines[j]
		best := Plan{OffsetSec: 0, Score: Overlap(placed, tb, 0)}
		for i, n := 1, GridSteps(windowSec, stepSec); i <= n; i++ {
			off := float64(i) * stepSec
			if s := Overlap(placed, tb, off); s < best.Score {
				best = Plan{OffsetSec: off, Score: s}
			}
		}
		plans[j] = best
		placed = append(placed, Shift(tb, best.OffsetSec)...)
	}
	return plans, nil
}

// TotalOverlap scores a complete offset assignment: the sum of pairwise
// byte-weighted overlaps between every two jobs at their relative offsets
// — the analytic contention predictor the simulated co-execution
// cross-validates.
func TotalOverlap(timelines [][]Interval, offsets []float64) float64 {
	var total float64
	for i := range timelines {
		for j := i + 1; j < len(timelines); j++ {
			total += Overlap(timelines[i], timelines[j], offsets[j]-offsets[i])
		}
	}
	return total
}
