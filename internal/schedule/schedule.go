// Package schedule applies I/O models to job co-scheduling — the use the
// paper sketches in §IV-A: "This view of application I/O can be useful …
// for the planning the parallel applications taking into account when the
// I/O phases are done in the application executing."
//
// Two jobs that share a cluster contend only while their I/O phases
// overlap; between phases each computes without touching storage. Given
// two I/O models (whose phases carry start times and durations from
// characterization), the planner scores candidate start offsets for the
// second job by the byte-weighted overlap of I/O intervals and picks the
// offset that interleaves one job's phases into the other's compute gaps.
package schedule

import (
	"math"

	"iophases/internal/core"
)

// Interval is one I/O phase on the wall clock, weighted by its volume.
type Interval struct {
	Start, End float64 // seconds, app-relative
	Weight     int64   // bytes
}

// Timeline extracts a model's I/O intervals. Phases with missing timing
// (e.g. rescaled models) yield a nil timeline.
func Timeline(m *core.Model) []Interval {
	var out []Interval
	for _, pm := range m.Phases {
		if pm.MeasuredSec <= 0 {
			return nil
		}
		out = append(out, Interval{
			Start:  pm.StartSec,
			End:    pm.StartSec + pm.MeasuredSec,
			Weight: pm.Weight,
		})
	}
	return out
}

// Makespan reports the end of the last interval (the app's I/O horizon).
func Makespan(tl []Interval) float64 {
	var end float64
	for _, iv := range tl {
		if iv.End > end {
			end = iv.End
		}
	}
	return end
}

// Overlap scores the contention of two timelines when the second starts
// `offset` seconds after the first: for every pair of overlapping
// intervals it accumulates overlapSeconds · min(weightRate_a, weightRate_b)
// — bytes that will fight for the same storage path.
func Overlap(a, b []Interval, offset float64) float64 {
	var score float64
	for _, ia := range a {
		ra := rate(ia)
		for _, ib := range b {
			s := math.Max(ia.Start, ib.Start+offset)
			e := math.Min(ia.End, ib.End+offset)
			if e <= s {
				continue
			}
			score += (e - s) * math.Min(ra, rate(ib))
		}
	}
	return score
}

func rate(iv Interval) float64 {
	d := iv.End - iv.Start
	if d <= 0 {
		return 0
	}
	return float64(iv.Weight) / d
}

// Plan is a scored start offset for the second job.
type Plan struct {
	OffsetSec float64
	Score     float64 // contended bytes (lower is better)
}

// BestOffset searches start offsets for job B in [0, window] at the given
// step and returns the plan minimizing contention, plus the score at
// offset 0 (the naive co-start) for comparison. Ties prefer the smallest
// offset, so B never waits longer than it has to.
func BestOffset(a, b *core.Model, windowSec, stepSec float64) (best Plan, naive Plan) {
	ta, tb := Timeline(a), Timeline(b)
	naive = Plan{OffsetSec: 0, Score: Overlap(ta, tb, 0)}
	best = naive
	if windowSec <= 0 || stepSec <= 0 || ta == nil || tb == nil {
		return best, naive
	}
	for off := stepSec; off <= windowSec+1e-9; off += stepSec {
		if s := Overlap(ta, tb, off); s < best.Score {
			best = Plan{OffsetSec: off, Score: s}
		}
	}
	return best, naive
}

// Gaps reports the compute gaps of a timeline (the complements of its I/O
// intervals within the makespan) — where a co-scheduled job's phases fit
// for free.
func Gaps(tl []Interval) []Interval {
	if len(tl) == 0 {
		return nil
	}
	horizon := Makespan(tl)
	// Intervals are phase-ordered by construction; merge conservatively.
	var gaps []Interval
	cursor := 0.0
	for _, iv := range tl {
		if iv.Start > cursor {
			gaps = append(gaps, Interval{Start: cursor, End: iv.Start})
		}
		if iv.End > cursor {
			cursor = iv.End
		}
	}
	if cursor < horizon {
		gaps = append(gaps, Interval{Start: cursor, End: horizon})
	}
	return gaps
}
