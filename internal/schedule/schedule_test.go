package schedule

import (
	"math"
	"testing"

	"iophases/internal/apps/madbench"
	"iophases/internal/cluster"
	"iophases/internal/core"
	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/runner"
	"iophases/internal/units"
)

func madbenchModel(t *testing.T, np int, rs int64, file string) *core.Model {
	t.Helper()
	params := madbench.Default()
	params.RS = rs
	params.FileName = file
	res := runner.Run(cluster.ConfigA(), np, "madbench2", func(sys *mpiio.System) func(*mpi.Rank) {
		return madbench.Program(sys, params)
	}, runner.Options{Trace: true})
	return core.Build(res.Set)
}

func TestTimelineMonotoneAndWeighted(t *testing.T) {
	m := madbenchModel(t, 4, 4*units.MiB, "/a.dat")
	tl := Timeline(m)
	if len(tl) != len(m.Phases) {
		t.Fatalf("intervals %d", len(tl))
	}
	for i, iv := range tl {
		if iv.End <= iv.Start || iv.Weight <= 0 {
			t.Fatalf("interval %d: %+v", i, iv)
		}
		if i > 0 && iv.Start < tl[i-1].Start {
			t.Fatalf("timeline out of order at %d", i)
		}
	}
	if Makespan(tl) != tl[len(tl)-1].End {
		t.Fatal("makespan")
	}
}

func TestOverlapProperties(t *testing.T) {
	a := []Interval{{Start: 0, End: 10, Weight: 1000}}
	b := []Interval{{Start: 0, End: 10, Weight: 1000}}
	full := Overlap(a, b, 0)
	if full <= 0 {
		t.Fatal("no overlap scored")
	}
	// Shifting fully apart removes the contention.
	if got := Overlap(a, b, 10); got != 0 {
		t.Fatalf("disjoint overlap %v", got)
	}
	// Half shift halves the overlap duration.
	half := Overlap(a, b, 5)
	if math.Abs(half-full/2) > 1e-9 {
		t.Fatalf("half overlap %v, want %v", half, full/2)
	}
}

func TestGapsComplementTimeline(t *testing.T) {
	tl := []Interval{{Start: 1, End: 2, Weight: 1}, {Start: 4, End: 5, Weight: 1}}
	gaps := Gaps(tl)
	want := []Interval{{Start: 0, End: 1}, {Start: 2, End: 4}}
	if len(gaps) != len(want) {
		t.Fatalf("gaps %+v", gaps)
	}
	for i := range want {
		if gaps[i].Start != want[i].Start || gaps[i].End != want[i].End {
			t.Fatalf("gap %d = %+v", i, gaps[i])
		}
	}
}

func TestBestOffsetReducesContention(t *testing.T) {
	a := madbenchModel(t, 4, 8*units.MiB, "/a.dat")
	b := madbenchModel(t, 4, 8*units.MiB, "/b.dat")
	best, naive := BestOffset(a, b, Makespan(Timeline(a)), 0.5)
	if best.Score > naive.Score {
		t.Fatalf("best %v worse than naive %v", best.Score, naive.Score)
	}
	if naive.Score <= 0 {
		t.Fatal("identical jobs at offset 0 must contend")
	}
}

// TestPlannedOffsetHelpsEmpirically is the end-to-end validation: run both
// jobs concurrently on one simulated cluster, naive co-start vs the
// planner's offset, and require the planned schedule to finish the pair's
// I/O no later (measured by combined makespan).
func TestPlannedOffsetHelpsEmpirically(t *testing.T) {
	const np = 4
	rs := int64(8 * units.MiB)
	a := madbenchModel(t, np, rs, "/a.dat")
	b := madbenchModel(t, np, rs, "/b.dat")
	best, naive := BestOffset(a, b, Makespan(Timeline(a)), 0.5)
	if best.OffsetSec == 0 {
		t.Skip("planner found no better offset at this scale")
	}

	runPair := func(offset float64) units.Duration {
		mk := func(file string) runner.ProgramFactory {
			params := madbench.Default()
			params.RS = rs
			params.FileName = file
			return func(sys *mpiio.System) func(*mpi.Rank) {
				return madbench.Program(sys, params)
			}
		}
		results, _ := runner.RunConcurrent(cluster.ConfigA(), []runner.Job{
			{Name: "jobA", NP: np, Prog: mk("/a.dat")},
			{Name: "jobB", NP: np, Prog: mk("/b.dat"), StartDelay: units.FromSeconds(offset)},
		}, false)
		var end units.Duration
		for _, r := range results {
			if r.End > end {
				end = r.End
			}
		}
		return end
	}
	naiveEnd := runPair(0)
	plannedEnd := runPair(best.OffsetSec)
	t.Logf("naive co-start ends %v; planned offset %.1fs ends %v (contention %.0f -> %.0f)",
		naiveEnd, best.OffsetSec, plannedEnd, naive.Score, best.Score)
	// The planned run delays job B, so its own span grows; the win is
	// bounded contention: the pair must not finish later than naive plus
	// the offset (i.e. the delayed job loses nothing to interference).
	slack := units.FromSeconds(best.OffsetSec)
	if plannedEnd > naiveEnd+slack {
		t.Fatalf("planned %v exceeds naive %v + offset %v", plannedEnd, naiveEnd, slack)
	}
}

func TestRunConcurrentIsolatesJobs(t *testing.T) {
	mk := func(file string) runner.ProgramFactory {
		params := madbench.Default()
		params.RS = units.MiB
		params.FileName = file
		return func(sys *mpiio.System) func(*mpi.Rank) {
			return madbench.Program(sys, params)
		}
	}
	results, _ := runner.RunConcurrent(cluster.ConfigA(), []runner.Job{
		{Name: "a", NP: 4, Prog: mk("/a.dat")},
		{Name: "b", NP: 4, Prog: mk("/b.dat")},
	}, true)
	if len(results) != 2 {
		t.Fatalf("results %d", len(results))
	}
	for _, r := range results {
		if r.End <= r.Start || r.Set == nil {
			t.Fatalf("job %s: %+v", r.Name, r)
		}
		w, rd := r.Set.TotalBytes()
		wantW, wantR := madbench.TotalBytes(madbench.Params{NBin: 8, RS: units.MiB}, 4)
		if w != wantW || rd != wantR {
			t.Fatalf("job %s traced %d/%d", r.Name, w, rd)
		}
	}
	// Concurrent jobs slow each other down vs running alone.
	solo := runner.Run(cluster.ConfigA(), 4, "solo", mk("/a.dat"), runner.Options{})
	if results[0].Elapsed <= solo.Elapsed {
		t.Fatalf("no interference: concurrent %v vs solo %v", results[0].Elapsed, solo.Elapsed)
	}
}
