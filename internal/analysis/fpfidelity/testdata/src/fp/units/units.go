// Package units is the fpfidelity corpus's cost vocabulary — a minimal
// twin of the real internal/units so the corpus fastpath package can
// exercise every rule against realistic types.
package units

// Duration is virtual time in nanoseconds.
type Duration int64

// Bandwidth is bytes per second.
type Bandwidth float64

// Cost constants: forbidden raw material inside the fast path.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Byte-size constants are geometry, not costs: legal everywhere.
const (
	B   int64 = 1
	KiB       = 1024 * B
	MiB       = 1024 * KiB
)

// MBps constructs a Bandwidth: forbidden in the fast path.
func MBps(v float64) Bandwidth { return Bandwidth(v * 1e6) }

// FromSeconds constructs a Duration: forbidden in the fast path.
func FromSeconds(s float64) Duration { return Duration(s * 1e9) }

// TransferTime is a sanctioned seam shared with the DES.
func TransferTime(bytes int64, bw Bandwidth) Duration {
	return Duration(float64(bytes) / float64(bw) * 1e9)
}

// BandwidthOf is a sanctioned seam shared with the DES.
func BandwidthOf(bytes int64, d Duration) Bandwidth {
	return Bandwidth(float64(bytes) / (float64(d) / 1e9))
}

// Seconds reads a Duration: value methods are legal.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// FormatBytes renders a size for humans; it returns no cost type.
func FormatBytes(n int64) string { return "n/a" }
