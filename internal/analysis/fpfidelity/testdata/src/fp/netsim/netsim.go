// Package netsim is the corpus stand-in for a sanctioned seam package:
// costs derived here are the shared formulas the DES uses, so the fast
// path may call them freely.
package netsim

import "iophases/internal/analysis/fpfidelity/testdata/src/fp/units"

// PathCost is the shared network cost seam.
func PathCost(bytes int64) units.Duration {
	return units.TransferTime(bytes, units.MBps(100))
}
