// Package fastpath is the fpfidelity corpus: the legal pattern is
// "call a seam, aggregate the results"; every local way to manufacture
// or reshape a cost is a diagnostic.
package fastpath

import (
	"iophases/internal/analysis/fpfidelity/testdata/src/fp/netsim"
	"iophases/internal/analysis/fpfidelity/testdata/src/fp/units"
)

// walk is the sanctioned shape: seam calls, integer geometry, cost
// aggregation by addition and comparison.
func walk(n int) units.Duration {
	var total units.Duration
	for i := 0; i < n; i++ {
		seg := netsim.PathCost(int64(i+1) * units.KiB)
		total += seg
	}
	return total
}

// slower compares two seam-derived costs: legal.
func slower(a, b units.Duration) units.Duration {
	if a < b {
		return b
	}
	return a
}

// span subtracts two seam-derived costs (an interval): legal.
func span(start, end units.Duration) units.Duration { return end - start }

// read uses a value method and integer geometry: legal.
func read(d units.Duration, bytes int64) (float64, units.Bandwidth) {
	return d.Seconds(), units.BandwidthOf(bytes*2, d)
}

func convertRaw(ns int64) units.Duration {
	return units.Duration(ns) // want `conversion to units.Duration constructs a cost from a raw number`
}

func scale(d units.Duration) units.Duration {
	return d * 2 // want `local arithmetic on units.Duration \(\*\) re-derives a cost`
}

func halve(b units.Bandwidth) units.Bandwidth {
	return b / 2 // want `local arithmetic on units.Bandwidth \(/\) re-derives a cost`
}

func pad(d units.Duration) units.Duration {
	return d + 500 // want `adjusting units.Duration by a constant re-derives a cost`
}

func shave(d units.Duration) units.Duration {
	d -= 10 // want `adjusting units.Duration by a constant re-derives a cost`
	return d
}

func double(d units.Duration) units.Duration {
	d *= 2 // want `local arithmetic on units.Duration \(\*\) re-derives a cost`
	return d
}

func construct(s float64) units.Duration {
	return units.FromSeconds(s) // want `units.FromSeconds constructs a units.Duration outside the sanctioned seams`
}

func linkRate() units.Bandwidth {
	return units.MBps(200) // want `units.MBps constructs a units.Bandwidth outside the sanctioned seams`
}

func tick() units.Duration {
	return units.Millisecond // want `units.Millisecond is a raw units.Duration constant`
}
