// Package fpfidelity implements the iovet analyzer that keeps the
// analytic fast path honest: internal/fastpath may only *derive* costs
// by calling the sanctioned shared seams — netsim.PathCost, the disksim
// device clocks, fsim's meta/stripe accounting, ior geometry,
// units.TransferTime/BandwidthOf — and may aggregate what they return
// (sums, comparisons, min/max). What it may not do is manufacture a
// cost of its own: convert a raw number into units.Duration/Bandwidth,
// scale a cost with local arithmetic, call a units constructor, or read
// a raw cost constant. Each of those is a re-derived cost expression
// that can drift from the DES formulas it must stay bit-identical to
// (DESIGN.md §11 "bit-exact by construction", §15).
package fpfidelity

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"iophases/internal/analysis/framework"
	"iophases/internal/analysis/simpkgs"
)

// Analyzer forbids locally-derived cost expressions in the fast path.
var Analyzer = &framework.Analyzer{
	Name: "fpfidelity",
	Doc: "forbid local cost derivation in internal/fastpath\n\n" +
		"The fast path must compute every Duration/Bandwidth through the shared seams\n" +
		"the DES itself uses (netsim.PathCost, disksim clocks, fsim meta/stripe, ior\n" +
		"geometry, units.TransferTime/BandwidthOf); local conversions, scaling\n" +
		"arithmetic, unit constructors and raw cost constants can silently diverge\n" +
		"from the simulation they claim to match bit-exactly (DESIGN.md §11, §15).",
	Run: run,
}

// seamCalls are the units functions the fast path may call: the shared
// cost derivations the DES uses too. Everything else in units that
// returns a cost is a constructor and therefore forbidden here.
var seamCalls = map[string]bool{
	"TransferTime": true,
	"BandwidthOf":  true,
}

const seams = "sanctioned seams (netsim.PathCost, disksim clocks, fsim meta/stripe, ior geometry, units.TransferTime/BandwidthOf)"

// costType reports whether t is one of the cost-carrying named types of
// the units package (matched by package base so corpora opt in).
func costType(t types.Type) (string, bool) {
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || simpkgs.Base(obj.Pkg().Path()) != "units" {
		return "", false
	}
	if obj.Name() == "Duration" || obj.Name() == "Bandwidth" {
		return "units." + obj.Name(), true
	}
	return "", false
}

func run(pass *framework.Pass) error {
	if simpkgs.Base(pass.Pkg.Path()) != "fastpath" {
		return nil
	}

	type diag struct {
		pos token.Pos
		msg string
	}
	var diags []diag
	report := func(pos token.Pos, msg string) { diags = append(diags, diag{pos, msg}) }

	typeOf := func(e ast.Expr) types.Type {
		if tv, ok := pass.TypesInfo.Types[e]; ok {
			return tv.Type
		}
		return nil
	}
	isCost := func(e ast.Expr) (string, bool) {
		t := typeOf(e)
		if t == nil {
			return "", false
		}
		return costType(t)
	}
	isConst := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[e]
		return ok && tv.Value != nil
	}
	checkBinary := func(pos token.Pos, op token.Token, x, y ast.Expr) {
		name, xCost := isCost(x)
		if !xCost {
			name, xCost = isCost(y)
		}
		if !xCost {
			return
		}
		switch op {
		case token.MUL, token.QUO, token.REM:
			report(pos, "local arithmetic on "+name+" ("+op.String()+") re-derives a cost: the fast path must take costs from the "+seams)
		case token.ADD, token.SUB:
			if isConst(x) || isConst(y) {
				report(pos, "adjusting "+name+" by a constant re-derives a cost: the fast path must take costs from the "+seams)
			}
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
					if name, ok := costType(tv.Type); ok {
						report(e.Pos(), "conversion to "+name+" constructs a cost from a raw number: the fast path must take costs from the "+seams)
					}
					return true
				}
				fn := calleeFunc(pass.TypesInfo, e)
				if fn == nil || fn.Pkg() == nil || simpkgs.Base(fn.Pkg().Path()) != "units" {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() != nil {
					// Methods on cost values (Seconds, String, …) only
					// read them: legal.
					return true
				}
				if seamCalls[fn.Name()] {
					return true
				}
				if sig.Results().Len() == 1 {
					if name, ok := costType(sig.Results().At(0).Type()); ok {
						report(e.Pos(), "units."+fn.Name()+" constructs a "+name+" outside the "+seams)
					}
				}
			case *ast.BinaryExpr:
				checkBinary(e.OpPos, e.Op, e.X, e.Y)
			case *ast.AssignStmt:
				var op token.Token
				switch e.Tok {
				case token.MUL_ASSIGN:
					op = token.MUL
				case token.QUO_ASSIGN:
					op = token.QUO
				case token.REM_ASSIGN:
					op = token.REM
				case token.ADD_ASSIGN:
					op = token.ADD
				case token.SUB_ASSIGN:
					op = token.SUB
				default:
					return true
				}
				if len(e.Lhs) == 1 && len(e.Rhs) == 1 {
					checkBinary(e.TokPos, op, e.Lhs[0], e.Rhs[0])
				}
			}
			return true
		})
	}

	// Raw cost constants (units.Nanosecond … units.Second). Byte-size
	// constants (B, KiB, …) are plain integers — geometry, not costs —
	// and stay legal.
	for ident, obj := range pass.TypesInfo.Uses {
		c, ok := obj.(*types.Const)
		if !ok || c.Pkg() == nil || simpkgs.Base(c.Pkg().Path()) != "units" {
			continue
		}
		if name, ok := costType(c.Type()); ok {
			report(ident.Pos(), "units."+c.Name()+" is a raw "+name+" constant: the fast path must take costs from the "+seams)
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		if diags[i].pos != diags[j].pos {
			return diags[i].pos < diags[j].pos
		}
		return diags[i].msg < diags[j].msg
	})
	for _, d := range diags {
		pass.Reportf(d.pos, "%s", d.msg)
	}
	return nil
}

// calleeFunc resolves the *types.Func a call expression invokes, if
// any.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
