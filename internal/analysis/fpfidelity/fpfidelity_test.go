package fpfidelity_test

import (
	"testing"

	"iophases/internal/analysis/analysistest"
	"iophases/internal/analysis/fpfidelity"
)

func TestFPFidelity(t *testing.T) {
	analysistest.Run(t, "./testdata/src/fp/...", fpfidelity.Analyzer)
}
