// Package procs is the procblock corpus: real blocking primitives
// inside des.Proc bodies versus the engine's virtual ones.
package procs

import (
	"sync"
	"time"

	"iophases/internal/des"
)

var results = make(chan int, 8)

func badProc(p *des.Proc) {
	results <- 1                 // want `channel send inside a des.Proc body`
	<-results                    // want `channel receive inside a des.Proc body`
	time.Sleep(time.Millisecond) // want `time.Sleep inside a des.Proc body`
	go func() {}()               // want `raw goroutine spawned inside a des.Proc body`
}

func badSync(p *des.Proc, mu *sync.Mutex, wg *sync.WaitGroup) {
	mu.Lock()         // want `sync.Mutex.Lock inside a des.Proc body`
	wg.Wait()         // want `sync.WaitGroup.Wait inside a des.Proc body`
	defer mu.Unlock() // want `sync.Mutex.Unlock inside a des.Proc body`
}

func badSelect(p *des.Proc) {
	select { // want `select inside a des.Proc body`
	case <-results: // want `channel receive inside a des.Proc body`
	default:
	}
}

func badRange(p *des.Proc) {
	for range results { // want `range over a channel inside a des.Proc body`
	}
}

// badNested: a function literal inside a proc body runs on the proc's
// goroutine chain — its channel ops are just as illegal.
func badNested(p *des.Proc) {
	helper := func() {
		results <- 2 // want `channel send inside a des.Proc body`
	}
	helper()
}

// goodProc uses only the engine's virtual blocking operations.
func goodProc(p *des.Proc) {
	p.Sleep(3)
	p.Yield()
}

// spawner shows the Spawn contract: the literal passed to Spawn is a
// proc body and gets checked.
func spawner(e *des.Engine) {
	e.Spawn("worker", func(p *des.Proc) {
		results <- 3 // want `channel send inside a des.Proc body`
	})
}

// notAProc takes no *des.Proc — channel use is the caller's business
// (sweep pools and CLIs legitimately use channels).
func notAProc() {
	results <- 4
	<-results
}

// allowed pins the suppression path.
func allowed(p *des.Proc) {
	//iovet:allow(procblock) corpus fixture: pinning the suppression path
	results <- 5
}
