package procblock_test

import (
	"testing"

	"iophases/internal/analysis/analysistest"
	"iophases/internal/analysis/procblock"
)

func TestProcBlock(t *testing.T) {
	analysistest.Run(t, "./testdata/src/procs", procblock.Analyzer)
}
