// Package procblock implements the iovet analyzer that keeps real
// blocking primitives out of des.Proc bodies.
//
// The coroutine engine hands control to exactly one process at a time
// through its own wake/park channel pair; a Proc body that blocks on a
// raw channel, a sync.Mutex, a WaitGroup or real time escapes that
// handoff — the engine believes the process is running while the
// goroutine is actually parked in the runtime, which wedges the
// scheduler or races it (DESIGN.md §5). Inside a Proc body the legal
// blocking operations are the virtual ones: Proc.Sleep, Proc.Park /
// Proc.Yield and the des.Resource / des.Barrier / des.WaitGroup
// abstractions built on them.
//
// A "Proc body" is any function or function literal with a *des.Proc
// parameter — the engine's Spawn contract — including function literals
// nested inside one (they execute on the proc's goroutine chain).
// Package des itself is exempt: it implements the primitives.
package procblock

import (
	"go/ast"
	"go/types"
	"strings"

	"iophases/internal/analysis/framework"
)

// Analyzer flags real blocking primitives inside des.Proc bodies.
var Analyzer = &framework.Analyzer{
	Name: "procblock",
	Doc: "forbid raw channel ops, sync primitives, goroutine spawns and time.Sleep in des.Proc bodies\n\n" +
		"Blocking outside the coroutine engine wedges or races the deterministic\n" +
		"scheduler; use Proc.Sleep/Park/Yield and the des synchronization types.",
	Run: run,
}

// blockingMethods maps sync type name -> method names that block (or
// pair with blocking, for Lock/Unlock symmetry).
var blockingMethods = map[string]map[string]bool{
	"Mutex":     {"Lock": true, "Unlock": true},
	"RWMutex":   {"Lock": true, "RLock": true, "Unlock": true, "RUnlock": true},
	"WaitGroup": {"Wait": true},
	"Cond":      {"Wait": true},
	"Once":      {"Do": true},
}

func run(pass *framework.Pass) error {
	// The engine package implements the wake/park rendezvous itself.
	if path := pass.Pkg.Path(); path == "iophases/internal/des" || strings.HasSuffix(path, "/des") {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && hasProcParam(pass, fn.Type) {
					checkProcBody(pass, fn.Body)
					return false
				}
			case *ast.FuncLit:
				if hasProcParam(pass, fn.Type) {
					checkProcBody(pass, fn.Body)
					return false
				}
			}
			return true
		})
	}
	return nil
}

// hasProcParam reports whether the function type takes a *des.Proc.
func hasProcParam(pass *framework.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		ptr, ok := tv.Type.(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Proc" && obj.Pkg() != nil && obj.Pkg().Path() == "iophases/internal/des" {
			return true
		}
	}
	return false
}

// checkProcBody flags blocking primitives anywhere in a proc body,
// including nested function literals (they run on the proc's goroutine).
func checkProcBody(pass *framework.Pass, body *ast.BlockStmt) {
	const fix = "bypasses the coroutine engine (use Proc.Sleep/Park/Yield or des.Resource/Barrier/WaitGroup)"
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Arrow, "channel send inside a des.Proc body %s", fix)
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.Reportf(n.OpPos, "channel receive inside a des.Proc body %s", fix)
			}
		case *ast.SelectStmt:
			pass.Reportf(n.Select, "select inside a des.Proc body %s", fix)
		case *ast.GoStmt:
			pass.Reportf(n.Go, "raw goroutine spawned inside a des.Proc body %s; use Engine.Spawn", fix)
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					pass.Reportf(n.For, "range over a channel inside a des.Proc body %s", fix)
				}
			}
		case *ast.CallExpr:
			checkCall(pass, n, fix)
		}
		return true
	})
}

func checkCall(pass *framework.Pass, call *ast.CallExpr, fix string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil {
		return
	}
	sig := f.Type().(*types.Signature)
	if sig.Recv() == nil {
		if f.Pkg().Path() == "time" && f.Name() == "Sleep" {
			pass.Reportf(call.Pos(), "time.Sleep inside a des.Proc body blocks real time, not virtual time; use Proc.Sleep")
		}
		return
	}
	if f.Pkg().Path() != "sync" {
		return
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return
	}
	if methods, ok := blockingMethods[named.Obj().Name()]; ok && methods[f.Name()] {
		pass.Reportf(call.Pos(), "sync.%s.%s inside a des.Proc body %s", named.Obj().Name(), f.Name(), fix)
	}
}
