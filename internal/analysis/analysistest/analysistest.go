// Package analysistest runs an analyzer over a corpus package and
// checks its diagnostics against `// want "regexp"` expectations, the
// same convention as golang.org/x/tools/go/analysis/analysistest
// (rebuilt on the local framework because this repo builds offline).
//
// A corpus lives under the analyzer's testdata/src/<pkg> directory —
// the go tool ignores testdata trees, so deliberately violating code
// never reaches `go build ./...` or iovet's own `./...` sweep, yet
// `go list` still loads it when the directory is named explicitly.
//
// Expectation syntax, on the line the diagnostic is expected:
//
//	fmt.Println(x) // want "writes output"
//	a, b := f()    // want "first" "second"
//
// Each quoted string (double-quoted or backquoted) is a regular
// expression that must match exactly one diagnostic message on that
// line; diagnostics with no matching expectation, and expectations with
// no matching diagnostic, fail the test. An unmatched expectation's
// failure names the nearest actual diagnostic — same file, closest line
// — so a near-miss regexp or an off-by-one line is debuggable from the
// failure text alone. //iovet:allow suppressions are applied before
// matching, so corpora also pin the suppression and allow-hygiene
// behavior.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"testing"

	"iophases/internal/analysis/framework"
)

// expectation is one `// want` regexp at a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRe captures the expectation list of a comment; string captures
// both `"..."` and backquoted forms.
var wantRe = regexp.MustCompile(`// want ((?:\s*(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `))+)`)

var stringRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// Run loads pattern (relative to the test's working directory, e.g.
// "./testdata/src/des") exactly once, applies the analyzers to the
// snapshot, and compares the resulting diagnostics with the corpus's
// // want expectations. Allow-comment validation uses exactly the
// analyzers' names as the known set.
func Run(t *testing.T, pattern string, analyzers ...*framework.Analyzer) {
	t.Helper()
	known := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		known = append(known, a.Name)
	}
	// One snapshot serves both the analyzer run and the // want
	// harvest: corpus tests pay for one `go list`, not two.
	snap, err := framework.LoadSnapshot(".", pattern)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", pattern, err)
	}
	res, err := framework.RunSnapshot(snap, analyzers, known)
	if err != nil {
		t.Fatalf("running analyzers over %s: %v", pattern, err)
	}

	var wants []*expectation
	for _, pkg := range snap.Pkgs {
		for _, f := range pkg.Syntax {
			ws, err := collectWants(snap.Fset, f)
			if err != nil {
				t.Fatal(err)
			}
			wants = append(wants, ws...)
		}
	}

	for _, problem := range compare(wants, res.Diagnostics) {
		t.Error(problem)
	}
}

// compare claims every diagnostic against the expectations and renders
// one problem string per mismatch in either direction. Unmatched
// expectations carry a nearest-actual-diagnostic hint. Separated from
// Run so the reporting contract itself is unit-testable.
func compare(wants []*expectation, diags []framework.Diagnostic) []string {
	var problems []string
	for _, d := range diags {
		if !claim(wants, d) {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if w.matched {
			continue
		}
		msg := fmt.Sprintf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		if near, ok := nearest(diags, w); ok {
			msg += fmt.Sprintf(" (nearest diagnostic: %s)", near)
		}
		problems = append(problems, msg)
	}
	return problems
}

// nearest picks the diagnostic closest to an unmatched expectation:
// same file, minimal line distance (ties to the earlier line). A
// diagnostic in another file is no hint at all.
func nearest(diags []framework.Diagnostic, w *expectation) (framework.Diagnostic, bool) {
	best := -1
	for i, d := range diags {
		if d.Position.Filename != w.file {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		db, dd := delta(diags[best].Position.Line, w.line), delta(d.Position.Line, w.line)
		if dd < db || (dd == db && d.Position.Line < diags[best].Position.Line) {
			best = i
		}
	}
	if best < 0 {
		return framework.Diagnostic{}, false
	}
	return diags[best], true
}

func delta(a, b int) int {
	if a < b {
		return b - a
	}
	return a - b
}

// claim marks the first unmatched expectation that covers d.
func claim(wants []*expectation, d framework.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Position.Filename || w.line != d.Position.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func collectWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, group := range f.Comments {
		for _, c := range group.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Slash)
			for _, lit := range stringRe.FindAllString(m[1], -1) {
				var pat string
				if lit[0] == '`' {
					pat = lit[1 : len(lit)-1]
				} else {
					var err error
					pat, err = strconv.Unquote(lit)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, lit, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
			}
		}
	}
	return out, nil
}
