// Package analysistest runs an analyzer over a corpus package and
// checks its diagnostics against `// want "regexp"` expectations, the
// same convention as golang.org/x/tools/go/analysis/analysistest
// (rebuilt on the local framework because this repo builds offline).
//
// A corpus lives under the analyzer's testdata/src/<pkg> directory —
// the go tool ignores testdata trees, so deliberately violating code
// never reaches `go build ./...` or iovet's own `./...` sweep, yet
// `go list` still loads it when the directory is named explicitly.
//
// Expectation syntax, on the line the diagnostic is expected:
//
//	fmt.Println(x) // want "writes output"
//	a, b := f()    // want "first" "second"
//
// Each quoted string (double-quoted or backquoted) is a regular
// expression that must match exactly one diagnostic message on that
// line; diagnostics with no matching expectation, and expectations with
// no matching diagnostic, fail the test. //iovet:allow suppressions are
// applied before matching, so corpora also pin the suppression and
// allow-hygiene behavior.
package analysistest

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"testing"

	"iophases/internal/analysis/framework"
)

// expectation is one `// want` regexp at a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// wantRe captures the expectation list of a comment; string captures
// both `"..."` and backquoted forms.
var wantRe = regexp.MustCompile(`// want ((?:\s*(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `))+)`)

var stringRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// Run loads pattern (relative to the test's working directory, e.g.
// "./testdata/src/des"), applies the analyzers, and compares the
// resulting diagnostics with the corpus's // want expectations.
// Allow-comment validation uses exactly the analyzers' names as the
// known set.
func Run(t *testing.T, pattern string, analyzers ...*framework.Analyzer) {
	t.Helper()
	known := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		known = append(known, a.Name)
	}
	res, err := framework.Run(".", []string{pattern}, analyzers, known)
	if err != nil {
		t.Fatalf("running analyzers over %s: %v", pattern, err)
	}

	// Reload the corpus syntax to harvest // want comments. Load is
	// cheap (build cache) and keeps framework.Run's API free of
	// test-only plumbing.
	pkgs, fset, err := framework.Load(".", pattern)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", pattern, err)
	}
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			wants = append(wants, collectWants(t, fset, f)...)
		}
	}

	for _, d := range res.Diagnostics {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched expectation that covers d.
func claim(wants []*expectation, d framework.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Position.Filename || w.line != d.Position.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func collectWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, group := range f.Comments {
		for _, c := range group.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Slash)
			for _, lit := range stringRe.FindAllString(m[1], -1) {
				var pat string
				if lit[0] == '`' {
					pat = lit[1 : len(lit)-1]
				} else {
					var err error
					pat, err = strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, lit, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
			}
		}
	}
	return out
}
