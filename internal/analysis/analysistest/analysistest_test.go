package analysistest

import (
	"go/token"
	"regexp"
	"strings"
	"testing"

	"iophases/internal/analysis/framework"
)

func diag(file string, line int, msg string) framework.Diagnostic {
	return framework.Diagnostic{
		Position: token.Position{Filename: file, Line: line, Column: 1},
		Analyzer: "test",
		Message:  msg,
	}
}

func want(file string, line int, pat string) *expectation {
	return &expectation{file: file, line: line, re: regexp.MustCompile(pat), raw: pat}
}

func TestCompareClean(t *testing.T) {
	wants := []*expectation{want("a.go", 3, "boom")}
	if probs := compare(wants, []framework.Diagnostic{diag("a.go", 3, "boom goes the line")}); len(probs) != 0 {
		t.Errorf("clean match produced problems: %v", probs)
	}
}

// TestCompareUnmatchedWantNamesNearest pins the debuggability contract:
// an unmatched expectation reports its exact file:line AND the nearest
// actual diagnostic in the same file, so a near-miss regexp or an
// off-by-one want line is fixable from the failure text alone.
func TestCompareUnmatchedWantNamesNearest(t *testing.T) {
	wants := []*expectation{want("a.go", 10, "missing pattern")}
	diags := []framework.Diagnostic{
		diag("b.go", 10, "same line, wrong file"),
		diag("a.go", 2, "far"),
		diag("a.go", 11, "near"),
	}
	probs := compare(wants, diags)
	// The three unexpected diagnostics also surface; find the want line.
	var wantProb string
	for _, p := range probs {
		if strings.Contains(p, "no diagnostic matching") {
			wantProb = p
		}
	}
	if wantProb == "" {
		t.Fatalf("no unmatched-want problem in %v", probs)
	}
	if !strings.HasPrefix(wantProb, "a.go:10: ") {
		t.Errorf("problem lacks exact file:line: %q", wantProb)
	}
	if !strings.Contains(wantProb, `"missing pattern"`) {
		t.Errorf("problem lacks the raw pattern: %q", wantProb)
	}
	if !strings.Contains(wantProb, "nearest diagnostic") || !strings.Contains(wantProb, "a.go:11") || !strings.Contains(wantProb, "near") {
		t.Errorf("problem should name a.go:11 (line distance 1) as nearest, got %q", wantProb)
	}
	if strings.Contains(wantProb, "b.go") {
		t.Errorf("nearest hint crossed files: %q", wantProb)
	}
}

func TestCompareNoNearestInOtherFiles(t *testing.T) {
	wants := []*expectation{want("a.go", 5, "x")}
	probs := compare(wants, []framework.Diagnostic{diag("b.go", 5, "x marks the spot")})
	var wantProb string
	for _, p := range probs {
		if strings.Contains(p, "no diagnostic matching") {
			wantProb = p
		}
	}
	if wantProb == "" || strings.Contains(wantProb, "nearest") {
		t.Errorf("want in a file with no diagnostics must carry no hint: %q", wantProb)
	}
}

func TestCompareUnexpectedDiagnostic(t *testing.T) {
	probs := compare(nil, []framework.Diagnostic{diag("a.go", 1, "surprise")})
	if len(probs) != 1 || !strings.Contains(probs[0], "unexpected diagnostic") || !strings.Contains(probs[0], "surprise") {
		t.Errorf("probs = %v", probs)
	}
}

// TestCompareNearestTieBreak pins the deterministic tie-break: equal
// line distance resolves to the earlier line.
func TestCompareNearestTieBreak(t *testing.T) {
	wants := []*expectation{want("a.go", 10, "zzz")}
	diags := []framework.Diagnostic{
		diag("a.go", 12, "below"),
		diag("a.go", 8, "above"),
	}
	probs := compare(wants, diags)
	var wantProb string
	for _, p := range probs {
		if strings.Contains(p, "no diagnostic matching") {
			wantProb = p
		}
	}
	if !strings.Contains(wantProb, "a.go:8") {
		t.Errorf("tie must break to the earlier line: %q", wantProb)
	}
}
