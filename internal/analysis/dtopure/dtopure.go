// Package dtopure implements the iovet analyzer that keeps the serve
// layer's request/response DTOs deterministic-marshal-safe. The daemon
// promises byte-identical responses for identical requests (DESIGN.md
// §13) — a promise encoding/json can only keep for value shapes it
// renders deterministically. Three field shapes break it: maps (JSON
// object key order follows map iteration... Go sorts them, but nested
// map values still admit NaN/float formatting drift and, worse, make
// responses depend on insertion history for non-string keys), interface
// fields (the dynamic type escapes review and can smuggle any of the
// others), and time.Time (a wall-clock read pretending to be data — the
// serve clock seam exists precisely so timestamps never reach a body).
// Channels and funcs don't marshal at all and fail at runtime.
//
// A DTO is any exported struct in an internal/serve package with at
// least one json-tagged field; the check recurses through the field
// types, so a violation buried in a nested helper struct surfaces at
// the DTO field that pulls it in.
package dtopure

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"iophases/internal/analysis/framework"
	"iophases/internal/analysis/simpkgs"
)

// Analyzer forbids nondeterministic-marshal field shapes in serve DTOs.
var Analyzer = &framework.Analyzer{
	Name: "dtopure",
	Doc: "require serve DTO structs to be deterministic-marshal-safe\n\n" +
		"Request/response structs (exported, json-tagged) may not contain maps,\n" +
		"interface fields, time.Time, channels or funcs — the shapes that break the\n" +
		"byte-identical-responses invariant of DESIGN.md §13 or fail to marshal at\n" +
		"all.",
	Run: run,
}

func run(pass *framework.Pass) error {
	if simpkgs.Base(pass.Pkg.Path()) != "serve" {
		return nil
	}

	type diag struct {
		pos token.Pos
		msg string
	}
	var diags []diag

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || !isDTO(st) {
					continue
				}
				for _, field := range st.Fields.List {
					t := pass.TypesInfo.Types[field.Type].Type
					if t == nil {
						continue
					}
					names := fieldNames(field)
					if why, path := unsafeShape(t, nil); why != "" {
						where := ""
						if path != "" {
							where = " (via " + path + ")"
						}
						diags = append(diags, diag{field.Pos(),
							ts.Name.Name + "." + names + where + ": " + why + " — DTOs must stay deterministic-marshal-safe (DESIGN.md §13)"})
					}
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		if diags[i].pos != diags[j].pos {
			return diags[i].pos < diags[j].pos
		}
		return diags[i].msg < diags[j].msg
	})
	for _, d := range diags {
		pass.Reportf(d.pos, "%s", d.msg)
	}
	return nil
}

// isDTO reports whether the struct carries at least one json-tagged
// field — the marker that it is (part of) a wire shape.
func isDTO(st *ast.StructType) bool {
	for _, f := range st.Fields.List {
		if f.Tag != nil && strings.Contains(f.Tag.Value, `json:`) {
			return true
		}
	}
	return false
}

// fieldNames joins a field declaration's names (embedded fields have
// none; render the type instead via "embedded").
func fieldNames(f *ast.Field) string {
	if len(f.Names) == 0 {
		return "(embedded)"
	}
	names := make([]string, len(f.Names))
	for i, n := range f.Names {
		names[i] = n.Name
	}
	return strings.Join(names, ",")
}

// unsafeShape reports why a type (or anything reachable through it) is
// not deterministic-marshal-safe, plus the access path that reaches the
// offending shape. An empty why means the type is safe.
func unsafeShape(t types.Type, seen []*types.Named) (why, path string) {
	switch u := t.(type) {
	case *types.Pointer:
		return unsafeShape(u.Elem(), seen)
	case *types.Slice:
		return unsafeShape(u.Elem(), seen)
	case *types.Array:
		return unsafeShape(u.Elem(), seen)
	case *types.Map:
		return "map fields break deterministic marshaling", ""
	case *types.Chan:
		return "channels do not marshal", ""
	case *types.Signature:
		return "funcs do not marshal", ""
	case *types.Interface:
		return "interface fields hide the marshaled dynamic type", ""
	case *types.Named:
		obj := u.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Time" {
			return "time.Time is a wall-clock value; serialize explicit units (seconds, ns) instead", ""
		}
		for _, s := range seen {
			if s == u {
				return "", ""
			}
		}
		seen = append(seen, u)
		if st, ok := u.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				fld := st.Field(i)
				if !fld.Exported() {
					continue // unexported fields never marshal
				}
				if why, p := unsafeShape(fld.Type(), seen); why != "" {
					hop := obj.Name() + "." + fld.Name()
					if p != "" {
						hop += " -> " + p
					}
					return why, hop
				}
			}
			return "", ""
		}
		return unsafeShape(u.Underlying(), seen)
	}
	return "", ""
}
