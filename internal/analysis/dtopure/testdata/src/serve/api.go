// Package serve is the dtopure corpus: exported json-tagged structs
// are wire DTOs and must stay deterministic-marshal-safe.
package serve

import "time"

// PredictRequest is a clean DTO: scalars, strings, slices of clean
// structs.
type PredictRequest struct {
	Model  string  `json:"model"`
	Config string  `json:"config"`
	Phases []Phase `json:"phases,omitempty"`
}

// Phase is clean.
type Phase struct {
	Index   int     `json:"index"`
	Seconds float64 `json:"seconds"`
}

// BadLabels carries a map: key order / value drift breaks
// byte-identical responses.
type BadLabels struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels"` // want `BadLabels.Labels: map fields break deterministic marshaling`
}

// BadStamp smuggles the wall clock into a body.
type BadStamp struct {
	ID   string    `json:"id"`
	When time.Time `json:"when"` // want `BadStamp.When: time.Time is a wall-clock value`
}

// BadAny hides the marshaled type behind an interface.
type BadAny struct {
	Kind  string `json:"kind"`
	Value any    `json:"value"` // want `BadAny.Value: interface fields hide the marshaled dynamic type`
}

// meta is a nested helper (not itself a DTO: no tags, unexported).
type meta struct {
	Extra map[string]int
}

// BadNested pulls a map in through a nested struct; the diagnostic
// names the path.
type BadNested struct {
	Name string `json:"name"`
	Meta meta   `json:"meta"` // want `BadNested.Meta \(via meta.Extra\): map fields break deterministic marshaling`
}

// notWire has no json tags: not a DTO, anything goes.
type notWire struct {
	Cache map[string]int
	Seen  time.Time
}

// Internal is exported but untagged — an in-process struct, not a wire
// shape, so it is exempt too.
type Internal struct {
	Conns map[string]int
}
