package dtopure_test

import (
	"testing"

	"iophases/internal/analysis/analysistest"
	"iophases/internal/analysis/dtopure"
)

func TestDTOPure(t *testing.T) {
	analysistest.Run(t, "./testdata/src/serve", dtopure.Analyzer)
}
