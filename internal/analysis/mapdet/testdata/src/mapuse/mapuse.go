// Package mapuse is the mapdet corpus: order-sensitive sinks inside
// range-over-map loops, plus the sanctioned collect-then-sort idioms.
package mapuse

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sort"
)

func printsDirectly(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `write to output \(fmt.Printf\)`
	}
}

func feedsHash(m map[string]int) [32]byte {
	h := sha256.New()
	for k := range m {
		h.Write([]byte(k)) // want `write to a writer/hash \(Write\)`
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

func buildsBuffer(m map[string]int, buf *bytes.Buffer) {
	for k := range m {
		buf.WriteString(k) // want `write to a writer/hash \(WriteString\)`
	}
}

func escapesUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to a slice that escapes`
	}
	return out
}

func sendsOnChannel(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside range over a map`
	}
}

func concatsString(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string concatenation into an outer variable`
	}
	return s
}

// collectThenSort is the sanctioned idiom: the appended slice is sorted
// after the loop, so iteration order cannot leak.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectThenSortSlice exercises the sort.Slice form with derived
// values, the des deadlock-report pattern.
func collectThenSortSlice(m map[string]int) []string {
	var rows []string
	for k, v := range m {
		rows = append(rows, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	return rows
}

// localAccumulator appends to a slice declared inside the loop — it
// cannot outlive an iteration, so order cannot leak.
func localAccumulator(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		n += len(doubled)
	}
	return n
}

type stat struct{ n int }

// Sum reads a value; sharing a name with hash.Hash.Sum does not make a
// zero-argument method a sink.
func (s *stat) Sum() int { return s.n }

func valueReaders(m map[string]*stat) map[string]int {
	out := make(map[string]int, len(m))
	for k, s := range m {
		out[k] = s.Sum()
	}
	return out
}

// commutativeReduce reads the map without any order-sensitive sink.
func commutativeReduce(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// rangeOverSlice is not a map range at all.
func rangeOverSlice(xs []string) {
	for _, x := range xs {
		fmt.Println(x)
	}
}

// allowed pins the suppression path for a deliberate, justified case.
func allowed(m map[string]int) {
	for k := range m {
		fmt.Println(k) //iovet:allow(mapdet) corpus fixture: output order intentionally unspecified
	}
}
