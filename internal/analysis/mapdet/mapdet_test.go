package mapdet_test

import (
	"testing"

	"iophases/internal/analysis/analysistest"
	"iophases/internal/analysis/mapdet"
)

func TestMapDet(t *testing.T) {
	analysistest.Run(t, "./testdata/src/mapuse", mapdet.Analyzer)
}
