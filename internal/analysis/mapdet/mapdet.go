// Package mapdet implements the iovet analyzer that catches the classic
// source of -j-dependent output: iterating a Go map while writing
// something order-sensitive.
//
// Map iteration order is randomized per run, so a `range m` whose body
// prints, feeds a hash/fingerprint, sends on a channel, or appends to a
// slice that outlives the loop produces output whose order varies
// between runs and between -j levels — exactly the failure mode the
// parallel-determinism invariant (DESIGN.md §5: `-j 1` ≡ `-j 8`,
// byte-identical stdout) forbids. The analyzer applies to every package
// in the module: report tables, cache fingerprints and CLI output are
// as order-sensitive as the simulation itself.
//
// The sanctioned idiom passes: collect into a slice, sort, then use —
// an append whose target is passed to a sort/slices call later in the
// same function is not flagged.
package mapdet

import (
	"go/ast"
	"go/token"
	"go/types"

	"iophases/internal/analysis/framework"
)

// Analyzer flags order-sensitive work inside range-over-map loops.
var Analyzer = &framework.Analyzer{
	Name: "mapdet",
	Doc: "flag nondeterministic map iteration that leaks into output, hashes or escaping slices\n\n" +
		"Sort the keys first (append to a slice that a later sort call consumes)\n" +
		"or justify with //iovet:allow(mapdet) <reason>.",
	Run: run,
}

// printSinks are package-level functions that emit order-sensitive
// output directly.
var printSinks = map[string]map[string]bool{
	"fmt": {
		"Print": true, "Printf": true, "Println": true,
		"Fprint": true, "Fprintf": true, "Fprintln": true,
	},
	"io":              {"WriteString": true, "Copy": true},
	"encoding/binary": {"Write": true},
}

// methodSinks are method names that feed writers, builders or hashes.
var methodSinks = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "WriteTo": true, "Sum": true, "Encode": true,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					scanBody(pass, d.Body)
				}
			case *ast.GenDecl:
				// Function literals in package-level var initializers.
				ast.Inspect(d, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						scanBody(pass, lit.Body)
						return false
					}
					return true
				})
			}
		}
	}
	return nil
}

// scanBody analyzes one function body: find its map-range loops and
// sort calls, then check each loop for order-sensitive sinks. Nested
// function literals are scanned independently so each loop is judged
// against the sorts of its own function.
func scanBody(pass *framework.Pass, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	type sortCall struct {
		pos token.Pos
		obj types.Object
	}
	var sorts []sortCall

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			scanBody(pass, n.Body)
			return false
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					ranges = append(ranges, n)
				}
			}
		case *ast.CallExpr:
			if pkgPath, _ := calleePkgFunc(pass, n); pkgPath == "sort" || pkgPath == "slices" {
				for _, arg := range n.Args {
					if obj := rootObj(pass, arg); obj != nil {
						sorts = append(sorts, sortCall{n.Pos(), obj})
					}
				}
			}
		}
		return true
	})

	sortedAfter := func(rs *ast.RangeStmt, obj types.Object) bool {
		for _, s := range sorts {
			if s.obj == obj && s.pos > rs.End() {
				return true
			}
		}
		return false
	}

	for _, rs := range ranges {
		checkRange(pass, rs, sortedAfter)
	}
}

// checkRange scans one map-range body for sinks.
func checkRange(pass *framework.Pass, rs *ast.RangeStmt, sortedAfter func(*ast.RangeStmt, types.Object) bool) {
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s inside range over a map: iteration order is nondeterministic and -j-dependent; sort the keys first", what)
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			report(n.Arrow, "channel send")
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if obj := rootObj(pass, n.Lhs[0]); obj != nil && declaredOutside(obj, rs) {
					if tv, ok := pass.TypesInfo.Types[n.Lhs[0]]; ok {
						if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
							report(n.TokPos, "string concatenation into an outer variable")
						}
					}
				}
			}
		case *ast.CallExpr:
			checkCall(pass, rs, n, sortedAfter, report)
		}
		return true
	})
}

func checkCall(pass *framework.Pass, rs *ast.RangeStmt, call *ast.CallExpr,
	sortedAfter func(*ast.RangeStmt, types.Object) bool, report func(token.Pos, string)) {
	// append(outer, ...) — the escaping-slice sink, with the
	// collect-then-sort exemption.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			obj := rootObj(pass, call.Args[0])
			if obj == nil || !declaredOutside(obj, rs) {
				return
			}
			if sortedAfter(rs, obj) {
				return
			}
			report(call.Pos(), "append to a slice that escapes the loop and is never sorted afterwards")
		}
		return
	}

	pkgPath, name := calleePkgFunc(pass, call)
	if names, ok := printSinks[pkgPath]; ok && names[name] {
		report(call.Pos(), "write to output ("+pkgPath+"."+name+")")
		return
	}
	// Method sinks: buf.WriteString, h.Write, enc.Encode, … A sink
	// always consumes an argument; zero-arg methods that merely share a
	// name (obs.Histogram.Sum reads a value) are not writes.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && len(call.Args) > 0 {
		if f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
			f.Type().(*types.Signature).Recv() != nil && methodSinks[f.Name()] {
			report(call.Pos(), "write to a writer/hash ("+f.Name()+")")
		}
	}
}

// calleePkgFunc resolves a call to a package-level function, reporting
// its package path and name ("" when the callee is something else).
func calleePkgFunc(pass *framework.Pass, call *ast.CallExpr) (pkgPath, name string) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	default:
		return "", ""
	}
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil || f.Type().(*types.Signature).Recv() != nil {
		return "", ""
	}
	return f.Pkg().Path(), f.Name()
}

// rootObj resolves the variable at the root of an expression: an
// identifier, a selector's field, or the argument under a one-argument
// conversion (sort.Sort(sort.StringSlice(keys))).
func rootObj(pass *framework.Pass, expr ast.Expr) types.Object {
	switch e := expr.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	case *ast.CallExpr:
		if len(e.Args) == 1 {
			return rootObj(pass, e.Args[0])
		}
	case *ast.UnaryExpr:
		return rootObj(pass, e.X)
	}
	return nil
}

// declaredOutside reports whether obj's declaration lies outside the
// range statement — i.e. the value outlives one iteration of the loop.
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}
