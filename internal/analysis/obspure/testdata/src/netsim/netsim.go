// Package netsim is the obspure corpus: its base name opts it into
// simulation-package scoping.
package netsim

import (
	"fmt"
	"io"
	"log"
	"os"

	"iophases/internal/obs"
)

func printsToStdout(x int) {
	fmt.Println("x =", x)      // want `fmt.Println writes to stdout`
	fmt.Printf("x = %d\n", x)  // want `fmt.Printf writes to stdout`
	fmt.Print(x)               // want `fmt.Print writes to stdout`
	log.Printf("x = %d\n", x)  // want `log.Printf writes to stderr`
	fmt.Fprintln(os.Stderr, x) // want `os.Stderr used from a simulation package`
}

func privateRegistry() *obs.Counter {
	r := obs.NewRegistry() // want `obs.NewRegistry constructs a private registry`
	return r.Counter("rogue")
}

// sprintfIsFine builds strings without writing anywhere.
func sprintfIsFine(x int) string {
	return fmt.Sprintf("x = %d", x)
}

// fprintfToInjectedWriter is legal: the caller (report, a test) decides
// where the bytes go.
func fprintfToInjectedWriter(w io.Writer, x int) {
	fmt.Fprintf(w, "x = %d\n", x)
}

// hotHandles is the sanctioned telemetry pattern.
func hotHandles() *obs.Counter {
	return obs.Hot().Counter("netsim/sends")
}

// allowed pins the suppression path.
func allowed() {
	fmt.Println("debug") //iovet:allow(obspure) corpus fixture: pinning the suppression path
}
