package obspure_test

import (
	"testing"

	"iophases/internal/analysis/analysistest"
	"iophases/internal/analysis/obspure"
)

func TestObsPure(t *testing.T) {
	analysistest.Run(t, "./testdata/src/netsim", obspure.Analyzer)
}
