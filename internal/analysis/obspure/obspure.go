// Package obspure implements the iovet analyzer that keeps simulation
// packages observationally pure.
//
// Two invariants from DESIGN.md §8: (1) all user-visible output flows
// through internal/report — a simulation layer that prints directly to
// stdout/stderr (fmt.Print*, the log package, os.Stdout/os.Stderr)
// breaks the byte-identical-output guarantees that the telemetry and
// parallel-determinism smoke tests pin; (2) telemetry handles must be
// fetched from the process-wide registry (obs.Hot / obs.Default), whose
// nil-safe handles make disabled telemetry a single branch — a freshly
// constructed private registry in a simulation layer silently forks the
// metric namespace and bypasses the enable gate.
package obspure

import (
	"go/token"
	"go/types"
	"sort"

	"iophases/internal/analysis/framework"
	"iophases/internal/analysis/simpkgs"
)

// Analyzer flags direct output and private obs registries in simulation
// packages.
var Analyzer = &framework.Analyzer{
	Name: "obspure",
	Doc: "forbid direct stdout/stderr/log writes and private obs registries in simulation packages\n\n" +
		"User-visible output flows through internal/report; telemetry handles come\n" +
		"from obs.Hot()/obs.Default() so the disabled state stays one nil branch.",
	Run: run,
}

func run(pass *framework.Pass) error {
	if !simpkgs.IsSim(pass.Pkg.Path()) {
		return nil
	}
	type hit struct {
		pos token.Pos
		msg string
	}
	var hits []hit
	for ident, obj := range pass.TypesInfo.Uses {
		pkg := obj.Pkg()
		if pkg == nil {
			continue
		}
		if f, ok := obj.(*types.Func); ok && f.Type().(*types.Signature).Recv() != nil {
			continue // methods: logger.Printf on an injected writer is report's business
		}
		switch pkg.Path() {
		case "fmt":
			switch obj.Name() {
			case "Print", "Printf", "Println":
				hits = append(hits, hit{ident.Pos(),
					"fmt." + obj.Name() + " writes to stdout from a simulation package; route output through internal/report"})
			}
		case "log":
			hits = append(hits, hit{ident.Pos(),
				"log." + obj.Name() + " writes to stderr from a simulation package; route output through internal/report"})
		case "os":
			switch obj.Name() {
			case "Stdout", "Stderr":
				hits = append(hits, hit{ident.Pos(),
					"os." + obj.Name() + " used from a simulation package; route output through internal/report"})
			}
		case "iophases/internal/obs":
			if obj.Name() == "NewRegistry" {
				hits = append(hits, hit{ident.Pos(),
					"obs.NewRegistry constructs a private registry in a simulation package; fetch nil-safe handles from obs.Hot() or obs.Default()"})
			}
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].pos < hits[j].pos })
	for _, h := range hits {
		pass.Reportf(h.pos, "%s", h.msg)
	}
	return nil
}
