// Package iovet assembles the full analyzer suite — the single registry
// cmd/iovet, bench.sh and CI run. Adding an analyzer here is all it
// takes to enforce a new invariant tree-wide.
package iovet

import (
	"iophases/internal/analysis/cachekey"
	"iophases/internal/analysis/detwall"
	"iophases/internal/analysis/detwalltrans"
	"iophases/internal/analysis/dtopure"
	"iophases/internal/analysis/errdrop"
	"iophases/internal/analysis/fpfidelity"
	"iophases/internal/analysis/framework"
	"iophases/internal/analysis/mapdet"
	"iophases/internal/analysis/obspure"
	"iophases/internal/analysis/procblock"
)

// All returns the full suite in stable (alphabetical) order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		cachekey.Analyzer,
		detwall.Analyzer,
		detwalltrans.Analyzer,
		dtopure.Analyzer,
		errdrop.Analyzer,
		fpfidelity.Analyzer,
		mapdet.Analyzer,
		obspure.Analyzer,
		procblock.Analyzer,
	}
}

// KnownNames lists every analyzer name valid inside an
// //iovet:allow(...) list, independent of which subset is running.
func KnownNames() []string {
	all := All()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}
