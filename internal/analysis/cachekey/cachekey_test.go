package cachekey_test

import (
	"testing"

	"iophases/internal/analysis/analysistest"
	"iophases/internal/analysis/cachekey"
)

func TestCacheKey(t *testing.T) {
	analysistest.Run(t, "./testdata/src/ck/...", cachekey.Analyzer)
}
