// Package cachekey implements the iovet analyzer that keeps the
// simcache fingerprint complete: every exported field of every struct
// reachable from a Canonical* key function must either enter the
// canonical encoding or carry an explicit `//iovet:cosmetic <reason>`
// marker on its declaration. This kills the "added a field, forgot the
// fingerprint, served a stale cache hit" bug class statically
// (DESIGN.md §15) — the runtime twin is the mutation quick-check in
// internal/simcache.
//
// The analyzer reconstructs how the fingerprint is actually computed:
//
//   - Reflective coverage. A call `encode…(…, reflect.ValueOf(E), S)`
//     binds E's struct type to the skip map S: every exported field is
//     encoded except S's entries. Skipped fields must be cosmetic-marked
//     (a skipped physical field is exactly the stale-cache bug), skip
//     entries must name real fields, and — since the reflective encoder
//     recurses with no skip — every type reached through an encoded
//     field is fully encoded, so its fields are checked for marker
//     conflicts and encodability (maps, interfaces, chans and funcs
//     render nondeterministically or not at all).
//
//   - Manual coverage. A struct without a reflective binding is covered
//     field-by-field: a field counts as read only if a Canonical*
//     function body selects it. Unread, unmarked exported fields are
//     diagnostics at their declaration — wherever that package lives,
//     which is why the driver collects suppressions globally.
//
// The two modes meet in the middle: a manually-read field whose value
// feeds reflect.ValueOf picks up that type's binding, so e.g.
// CanonicalCoexec's `spec.Config` hop into the reflective cluster.Spec
// encoding is followed precisely.
package cachekey

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"iophases/internal/analysis/framework"
	"iophases/internal/analysis/simpkgs"
)

// Analyzer verifies fingerprint completeness of the simcache package's
// Canonical* key functions.
var Analyzer = &framework.Analyzer{
	Name: "cachekey",
	Doc: "require every cache-key-reachable struct field to be fingerprinted or marked cosmetic\n\n" +
		"A cluster.Spec/coexec.Spec field that does not enter Canonical/CanonicalCoexec\n" +
		"makes two physically different runs share a cache entry — a stale hit served\n" +
		"as a fresh prediction. Fields with no physical effect opt out explicitly with\n" +
		"//iovet:cosmetic <reason> on their declaration (DESIGN.md §15).",
	Run: run,
}

// mode says how a struct type is reached from the key functions.
type mode int

const (
	reflective mode = iota // explicit reflect.ValueOf binding with a skip map
	nested                 // reached through an encoded field: fully encoded
	manual                 // covered only by explicit Canonical* field reads
)

// skipMap is one package-level `var xSkip = map[string]bool{...}`.
type skipMap struct {
	name    string
	entries map[string]token.Pos // field name -> key literal position
}

// structKey identifies a named struct type across package views.
type structKey string

func keyOf(n *types.Named) structKey {
	pkg := ""
	if p := n.Obj().Pkg(); p != nil {
		pkg = p.Path()
	}
	return structKey(pkg + "." + n.Obj().Name())
}

// display renders a type or field for diagnostics: pkgbase.Type[.Field].
func display(n *types.Named, field string) string {
	pkg := ""
	if p := n.Obj().Pkg(); p != nil {
		pkg = simpkgs.Base(p.Path()) + "."
	}
	s := pkg + n.Obj().Name()
	if field != "" {
		s += "." + field
	}
	return s
}

// deref unwraps pointers, slices and arrays down to the element type.
func deref(t types.Type) types.Type {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		default:
			return t
		}
	}
}

func run(pass *framework.Pass) error {
	if simpkgs.Base(pass.Pkg.Path()) != "simcache" {
		return nil
	}

	skips := collectSkipMaps(pass)
	bindings := collectBindings(pass, skips)
	roots, reads := collectCanonical(pass)

	type item struct {
		named *types.Named
		mode  mode
		// fallback anchors diagnostics for fields whose declaring
		// package is not loaded (no AST to point at).
		fallback token.Pos
	}
	var queue []item
	enqueue := func(n *types.Named, m mode, fb token.Pos) {
		if _, ok := n.Underlying().(*types.Struct); !ok {
			return
		}
		queue = append(queue, item{n, m, fb})
	}
	for _, r := range roots {
		m := manual
		if _, ok := bindings[keyOf(r.named)]; ok {
			m = reflective
		}
		enqueue(r.named, m, r.pos)
	}

	type diag struct {
		pos token.Pos
		msg string
	}
	var diags []diag
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, diag{pos, fmt.Sprintf(format, args...)})
	}
	// fieldPos resolves a field's declaration position, preferring the
	// declaring package's AST.
	fieldPos := func(n *types.Named, field string, fb token.Pos) (token.Pos, bool) {
		pkg := n.Obj().Pkg()
		if pkg == nil {
			return fb, false
		}
		if fd := pass.Facts.FieldDecl(pkg.Path(), n.Obj().Name(), field); fd != nil {
			return fd.Pos(), true
		}
		return fb, false
	}
	marker := func(n *types.Named, field string) (found, marked bool) {
		pkg := n.Obj().Pkg()
		if pkg == nil {
			return false, false
		}
		found, marked, _ = pass.Facts.FieldMarker(pkg.Path(), n.Obj().Name(), field, "cosmetic")
		return found, marked
	}

	seen := map[structKey]map[mode]bool{}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		key := keyOf(it.named)
		if seen[key] == nil {
			seen[key] = map[mode]bool{}
		}
		if seen[key][it.mode] {
			continue
		}
		seen[key][it.mode] = true

		st := it.named.Underlying().(*types.Struct)
		var skip *skipMap
		if it.mode == reflective {
			skip = bindings[key]
		}
		fieldNames := map[string]bool{}
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			name := fld.Name()
			fieldNames[name] = true
			found, marked := marker(it.named, name)

			if skip != nil {
				if pos, skipped := skip.entries[name]; skipped {
					if found && !marked {
						report(pos, "skip entry %q in %s drops %s, which has no //iovet:cosmetic marker — skipping a physical field means stale cache hits",
							name, skip.name, display(it.named, name))
					}
					continue
				}
			}
			switch it.mode {
			case reflective, nested:
				if !fld.Exported() {
					pos, _ := fieldPos(it.named, name, it.fallback)
					report(pos, "%s is unexported but reflectively encoded into the cache key — the encoder cannot read it",
						display(it.named, name))
					continue
				}
				if found && marked {
					pos, _ := fieldPos(it.named, name, it.fallback)
					report(pos, "%s is marked //iovet:cosmetic but is encoded into the fingerprint — remove the marker or skip the field",
						display(it.named, name))
				}
				checkEncodable(it.named, name, fld.Type(), it.fallback, fieldPos, report)
				if n, ok := deref(fld.Type()).(*types.Named); ok {
					fb := it.fallback
					if p, ok := fieldPos(it.named, name, it.fallback); ok {
						fb = p
					}
					enqueue(n, nested, fb)
				}
			case manual:
				if !fld.Exported() {
					continue
				}
				covered := reads[key][name]
				if covered && found && marked {
					pos, _ := fieldPos(it.named, name, it.fallback)
					report(pos, "%s is marked //iovet:cosmetic but is read by a Canonical function — the marker is stale",
						display(it.named, name))
				}
				if !covered && !marked {
					// Unloaded declaring packages can't be proven either
					// way; stay silent rather than guess.
					if pos, ok := fieldPos(it.named, name, it.fallback); ok {
						report(pos, "%s is not read by any Canonical function and has no //iovet:cosmetic marker — new fields must enter the fingerprint or opt out explicitly",
							display(it.named, name))
					}
				}
				if covered {
					if n, ok := deref(fld.Type()).(*types.Named); ok {
						m := manual
						if _, ok := bindings[keyOf(n)]; ok {
							m = reflective
						}
						fb := it.fallback
						if p, ok := fieldPos(it.named, name, it.fallback); ok {
							fb = p
						}
						enqueue(n, m, fb)
					}
				}
			}
		}
		if skip != nil {
			for name, pos := range skip.entries {
				if !fieldNames[name] {
					report(pos, "skip entry %q in %s names no field of %s — dead entries hide typos",
						name, skip.name, display(it.named, ""))
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		if diags[i].pos != diags[j].pos {
			return diags[i].pos < diags[j].pos
		}
		return diags[i].msg < diags[j].msg
	})
	for _, d := range diags {
		pass.Reportf(d.pos, "%s", d.msg)
	}
	return nil
}

// checkEncodable flags field types the reflective encoder renders
// nondeterministically (maps: iteration order) or not at all
// (chan/func/interface: %v prints addresses or dynamic types).
func checkEncodable(owner *types.Named, field string, t types.Type, fb token.Pos,
	fieldPos func(*types.Named, string, token.Pos) (token.Pos, bool),
	report func(token.Pos, string, ...any)) {
	bad := ""
	switch deref(t).Underlying().(type) {
	case *types.Map:
		bad = "map iteration order is nondeterministic"
	case *types.Chan:
		bad = "channels have no value encoding"
	case *types.Signature:
		bad = "functions have no value encoding"
	case *types.Interface:
		bad = "dynamic types escape the canonical encoding"
	}
	if bad == "" {
		return
	}
	pos, _ := fieldPos(owner, field, fb)
	report(pos, "%s has type %s, which cannot enter the cache key: %s",
		display(owner, field), types.TypeString(t, func(p *types.Package) string { return p.Name() }), bad)
}

// collectSkipMaps finds package-level `var x = map[string]bool{...}`
// declarations and records their string keys with positions.
func collectSkipMaps(pass *framework.Pass) map[types.Object]*skipMap {
	out := map[types.Object]*skipMap{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						break
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					if _, ok := pass.TypesInfo.Types[cl].Type.Underlying().(*types.Map); !ok {
						continue
					}
					sm := &skipMap{name: name.Name, entries: map[string]token.Pos{}}
					for _, el := range cl.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if lit, ok := kv.Key.(*ast.BasicLit); ok && lit.Kind == token.STRING {
							sm.entries[strings.Trim(lit.Value, `"`)] = lit.Pos()
						}
					}
					out[pass.TypesInfo.Defs[name]] = sm
				}
			}
		}
	}
	return out
}

// collectBindings finds every call carrying consecutive arguments
// `reflect.ValueOf(E), S` and binds E's struct type to the skip map S
// (an untyped nil binds an empty skip set).
func collectBindings(pass *framework.Pass, skips map[types.Object]*skipMap) map[structKey]*skipMap {
	bindings := map[structKey]*skipMap{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for i, arg := range call.Args {
				vo, ok := arg.(*ast.CallExpr)
				if !ok {
					continue
				}
				sel, ok := vo.Fun.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "reflect" || fn.Name() != "ValueOf" || len(vo.Args) != 1 {
					continue
				}
				named, ok := deref(pass.TypesInfo.Types[vo.Args[0]].Type).(*types.Named)
				if !ok {
					continue
				}
				sm := &skipMap{name: "(none)", entries: map[string]token.Pos{}}
				if i+1 < len(call.Args) {
					if ident, ok := call.Args[i+1].(*ast.Ident); ok {
						if m, ok := skips[pass.TypesInfo.Uses[ident]]; ok {
							sm = m
						}
					}
				}
				key := keyOf(named)
				if _, ok := bindings[key]; !ok {
					bindings[key] = sm
				}
			}
			return true
		})
	}
	return bindings
}

// root is one struct parameter of a Canonical* function.
type root struct {
	named *types.Named
	pos   token.Pos
}

// collectCanonical finds exported Canonical* functions, their
// struct-typed parameters (the key roots), and every field selection in
// their bodies (the manual coverage proof).
func collectCanonical(pass *framework.Pass) ([]root, map[structKey]map[string]bool) {
	var roots []root
	reads := map[structKey]map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !strings.HasPrefix(fd.Name.Name, "Canonical") || fd.Body == nil {
				continue
			}
			if fd.Type.Params != nil {
				for _, p := range fd.Type.Params.List {
					if named, ok := deref(pass.TypesInfo.Types[p.Type].Type).(*types.Named); ok {
						roots = append(roots, root{named, p.Pos()})
					}
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s := pass.TypesInfo.Selections[sel]
				if s == nil || s.Kind() != types.FieldVal {
					return true
				}
				if named, ok := deref(s.Recv()).(*types.Named); ok {
					key := keyOf(named)
					if reads[key] == nil {
						reads[key] = map[string]bool{}
					}
					reads[key][sel.Sel.Name] = true
				}
				return true
			})
		}
	}
	return roots, reads
}
