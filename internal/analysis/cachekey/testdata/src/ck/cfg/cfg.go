// Package cfg is the reflectively-encoded side of the cachekey corpus:
// a Spec bound to a skip map by the corpus simcache package, with one
// properly-marked cosmetic field, one skipped-but-unmarked field (the
// stale-cache bug), and one unencodable field.
package cfg

// Spec mirrors cluster.Spec's role as a fingerprint root.
type Spec struct {
	Nodes int
	Disks []Disk
	// Name is display-only and skipped by the corpus specSkip: legal.
	//iovet:cosmetic display label only
	Name string
	// Notes is skipped by specSkip but carries no marker — the
	// diagnostic lands on the skip entry in the simcache package.
	Notes string
	// Tags is encoded reflectively, and map iteration order is
	// nondeterministic.
	Tags map[string]string // want `cfg.Spec.Tags has type map\[string\]string, which cannot enter the cache key: map iteration order is nondeterministic`
}

// Disk is reached through Spec.Disks, so it is fully encoded — no skip
// map applies below the top level.
type Disk struct {
	RPM    int
	vendor string // want `cfg.Disk.vendor is unexported but reflectively encoded into the cache key`
}
