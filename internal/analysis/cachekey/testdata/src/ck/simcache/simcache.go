// Package simcache is the cachekey corpus's key package: its base name
// opts it into the analyzer's scope, and its Canonical* functions +
// skip maps define what the fingerprint provably covers.
package simcache

import (
	"fmt"
	"reflect"
	"strings"

	"iophases/internal/analysis/cachekey/testdata/src/ck/cfg"
	"iophases/internal/analysis/cachekey/testdata/src/ck/job"
)

// specSkip drops cfg.Spec fields from the reflective encoding. Name is
// properly cosmetic-marked; Notes is the stale-cache bug (skipped but
// physical); Ghost is a typo for a field that no longer exists.
var specSkip = map[string]bool{
	"Name":  true,
	"Notes": true, // want `skip entry "Notes" in specSkip drops cfg.Spec.Notes, which has no //iovet:cosmetic marker`
	"Ghost": true, // want `skip entry "Ghost" in specSkip names no field of cfg.Spec`
}

// Canonical fingerprints a Spec reflectively, binding cfg.Spec to
// specSkip.
func Canonical(spec cfg.Spec) string {
	var b strings.Builder
	encodeValue(&b, reflect.ValueOf(spec), specSkip)
	return b.String()
}

// CanonicalJob fingerprints a Job with manual field reads plus a
// reflective hop for the embedded Spec.
func CanonicalJob(j job.Job) string {
	var b strings.Builder
	encodeValue(&b, reflect.ValueOf(j.Spec), specSkip)
	fmt.Fprintf(&b, "|off=%g;owner=%s", j.Offset, j.Owner)
	return b.String()
}

// encodeValue is the corpus twin of the real reflective encoder: skip
// applies at the top struct level only.
func encodeValue(b *strings.Builder, v reflect.Value, skip map[string]bool) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if skip[v.Type().Field(i).Name] {
				continue
			}
			encodeValue(b, v.Field(i), nil)
		}
	case reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			encodeValue(b, v.Index(i), nil)
		}
	default:
		fmt.Fprintf(b, "%v;", v.Interface())
	}
}
