// Package job is the manually-encoded side of the cachekey corpus: its
// fields are covered only by explicit reads in CanonicalJob, so an
// added-but-forgotten field is the exact stale-cache case the analyzer
// exists for.
package job

import "iophases/internal/analysis/cachekey/testdata/src/ck/cfg"

// Job mirrors coexec.Spec/App: part reflective hop, part manual reads.
type Job struct {
	// Spec is read by CanonicalJob and hops into cfg.Spec's reflective
	// binding.
	Spec cfg.Spec
	// Offset is read by CanonicalJob: covered.
	Offset float64
	// Label is unread but explicitly cosmetic: legal.
	//iovet:cosmetic operator-facing tag
	Label string
	// Priority was added without touching the fingerprint — the bug.
	Priority int // want `job.Job.Priority is not read by any Canonical function and has no //iovet:cosmetic marker`
	// Owner claims to be cosmetic yet CanonicalJob reads it.
	//iovet:cosmetic audit trail only
	Owner string // want `job.Job.Owner is marked //iovet:cosmetic but is read by a Canonical function`
}
