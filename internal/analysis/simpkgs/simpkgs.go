// Package simpkgs defines which packages count as "simulation
// packages" for the iovet analyzers that scope to them (detwall,
// procblock, obspure). These are the layers whose behavior feeds
// simulated results — where only virtual time and seeded randomness
// are legal and all user-visible output must flow through
// internal/report (DESIGN.md §5/§8/§9).
package simpkgs

import "strings"

// names are the final import-path elements of the simulation packages.
// Matching on the last element (rather than the full iophases/internal/
// prefix) lets analyzer corpora under testdata/src/<name> opt into the
// same scoping rules the real packages get.
var names = map[string]bool{
	"des":      true,
	"disksim":  true,
	"netsim":   true,
	"fsim":     true,
	"mpiio":    true,
	"phase":    true,
	"predict":  true,
	"replay":   true,
	"faults":   true,
	"simcache": true,
	"fastpath": true,
	"coexec":   true,
	"schedule": true,
	"trace":    true,
	"pattern":  true,
	// The prediction service: not a simulation layer itself, but its
	// byte-identical-response invariant (DESIGN.md §13) imposes the same
	// purity rules — no wall clock or entropy may reach a response body,
	// and telemetry handles come from the shared registry. Its sanctioned
	// wall-clock seam (clock.go) is allowlisted in detwall.
	"serve": true,
}

// IsSim reports whether the import path names a simulation package.
func IsSim(pkgPath string) bool {
	return names[Base(pkgPath)]
}

// Base reports the final element of an import path.
func Base(pkgPath string) string {
	if i := strings.LastIndexByte(pkgPath, '/'); i >= 0 {
		return pkgPath[i+1:]
	}
	return pkgPath
}
