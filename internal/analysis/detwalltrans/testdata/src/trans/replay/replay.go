// Package replay is a sim-scoped package that itself calls a tainted
// module helper: the diagnostic lands here, at the offending call site,
// and callers of Tainted in other sim packages stay silent (one report
// per root cause, not one per caller).
package replay

import "iophases/internal/analysis/detwalltrans/testdata/src/trans/util"

// Tainted reaches the clock through util.
func Tainted() int64 {
	return util.Stamp() // want `call to util.Stamp transitively reaches time.Now`
}
