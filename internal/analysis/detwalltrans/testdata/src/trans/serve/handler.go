package serve

import "iophases/internal/analysis/detwalltrans/testdata/src/trans/util"

// viaSeam measures through the seam: now() is a barrier, no diagnostic.
func viaSeam() int64 { return now().UnixNano() }

// outsideSeam shows the exemption is per-file: the same tainted helper
// is still flagged outside clock.go.
func outsideSeam() int64 {
	return util.Stamp() // want `call to util.Stamp transitively reaches time.Now`
}
