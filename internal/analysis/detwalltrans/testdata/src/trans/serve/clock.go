// Package serve exercises the wall-clock seam: clock.go is the
// allowlisted seam file, so its functions are barriers (callers stay
// clean) and call sites inside it are exempt.
package serve

import (
	"time"

	"iophases/internal/analysis/detwalltrans/testdata/src/trans/util"
)

// now is the sanctioned seam; its taint must not leak to callers.
func now() time.Time { return time.Now() }

// stampViaUtil is inside the seam file, so even a call to a tainted
// helper is exempt here.
func stampViaUtil() int64 { return util.Stamp() }
