// Package predict is the sim-side corpus: its base name opts it into
// simulation scope, and every route to a nondeterminism source that is
// at least one call edge long must be flagged here.
package predict

import (
	"iophases/internal/analysis/detwalltrans/testdata/src/trans/obs"
	"iophases/internal/analysis/detwalltrans/testdata/src/trans/replay"
	"iophases/internal/analysis/detwalltrans/testdata/src/trans/util"
)

func oneHop() int64 {
	return util.Stamp() // want `call to util.Stamp transitively reaches time.Now \(reads the wall clock\) via util.Stamp -> time.Now`
}

func twoHops() int64 {
	return util.Elapsed() // want `call to util.Elapsed transitively reaches time.Now \(reads the wall clock\) via util.Elapsed -> util.Stamp -> time.Now`
}

func seededFromGlobal() int {
	return util.Jitter() // want `call to util.Jitter transitively reaches math/rand.Intn \(draws from the global stream\) via util.Jitter -> math/rand.Intn`
}

// pure calls only the clean helper: no diagnostic.
func pure() int { return util.Clean() }

// measured calls the telemetry barrier: sanctioned, no diagnostic.
func measured() int64 { return obs.Span() }

// viaSim calls a tainted function in another sim package: the report
// belongs to replay's own call site, not here.
func viaSim() int64 { return replay.Tainted() }
