// Package obs mirrors the real telemetry package: it reads the wall
// clock to time the process, and it is a measurement-only barrier — sim
// packages may call it without inheriting the taint.
package obs

import "time"

// Span reads the wall clock (sanctioned: measures the process, not the
// simulation).
func Span() int64 { return time.Now().UnixNano() }
