// Package util is a non-simulation module helper — the hiding spot the
// transitive analyzer exists to close. detwall never looks here (the
// package is out of sim scope), so the wall-clock reads below are
// legal locally; the taint must surface at sim-side call sites.
package util

import (
	"math/rand"
	"time"
)

// Stamp touches the wall clock directly (one edge from sim callers).
func Stamp() int64 { return time.Now().UnixNano() }

// Elapsed reaches the clock through Stamp (two edges from sim callers).
func Elapsed() int64 { return Stamp() }

// Clean is free of nondeterminism.
func Clean() int { return 42 }

// Jitter draws from the global math/rand stream.
func Jitter() int { return rand.Intn(10) }
