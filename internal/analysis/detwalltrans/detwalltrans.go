// Package detwalltrans implements the interprocedural twin of detwall:
// wall-clock and nondeterminism taint follows call edges, so a
// simulation package calling a helper *anywhere in the module* that
// (transitively) touches time.Now or the global rand stream is flagged
// at the sim-side call site — the per-package blindspot of the
// syntactic analyzer.
//
// Phase 1 (Analyzer.Init) seeds detwall's forbidden table into the
// module call graph and propagates reachability up the edges. Two kinds
// of functions are barriers — their taint is sanctioned and must not
// leak to callers: the measurement-only packages (obs, sweep), whose
// whole point is timing the *process* rather than the simulation, and
// detwall's per-package wall-clock seam files (serve/clock.go).
//
// Division of labor with detwall: a *direct* use of a forbidden source
// in a sim package is detwall's diagnostic; detwalltrans only reports
// calls whose path to the source is at least one edge long. A tainted
// callee that itself lives in a sim package is also skipped here — it
// is flagged once, at its own offending call site, instead of at every
// caller up the chain.
package detwalltrans

import (
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"iophases/internal/analysis/detwall"
	"iophases/internal/analysis/framework"
	"iophases/internal/analysis/simpkgs"
)

// Analyzer flags sim-package calls that transitively reach a
// nondeterminism source through module helpers.
var Analyzer = &framework.Analyzer{
	Name: "detwalltrans",
	Doc: "forbid sim-package calls that transitively reach wall clock or global randomness\n\n" +
		"detwall catches direct uses; this analyzer propagates the same forbidden-source\n" +
		"table over the module call graph, so hiding time.Now one call edge outside a\n" +
		"simulation package no longer slips through (DESIGN.md §5, §15).",
	Init: initReach,
	Run:  run,
}

// measureOnly are module packages whose job is measuring the process
// itself — telemetry timelines (obs) and sweep-pool utilization (sweep).
// They legitimately read the wall clock, and calling them from
// simulation code is sanctioned because their results never feed
// simulated state; they are barriers in the taint propagation.
var measureOnly = map[string]bool{"obs": true, "sweep": true}

// state is the Init product shared by every package pass.
type state struct {
	reach map[framework.FuncID]*framework.Chain
}

func initReach(f *framework.Facts) (any, error) {
	seeds := map[framework.FuncID]string{}
	for id, meta := range f.Callees {
		if meta.Recv {
			// Methods are legal, matching detwall: rng.Float64() on an
			// explicit seeded *rand.Rand is the sanctioned pattern.
			continue
		}
		if why, ok := detwall.Forbidden(meta.PkgPath, meta.Name); ok {
			seeds[id] = why
		}
	}
	barrier := func(fn *framework.FuncInfo) bool {
		return measureOnly[fn.PkgBase] || detwall.SeamFile(fn.PkgBase, fn.File)
	}
	return &state{reach: f.Reaches(seeds, barrier)}, nil
}

// short compresses a loaded function's package path to its base for
// diagnostics ("iophases/internal/x/util.Stamp" -> "util.Stamp") while
// leaving unloaded callees — the stdlib sources — fully qualified, so
// "math/rand.Intn" and "math/rand/v2.Intn" stay distinguishable.
func short(f *framework.Facts, id framework.FuncID) string {
	if fn := f.Funcs[id]; fn != nil {
		return fn.PkgBase + strings.TrimPrefix(string(id), fn.PkgPath)
	}
	return string(id)
}

func run(pass *framework.Pass) error {
	if !simpkgs.IsSim(pass.Pkg.Path()) {
		return nil
	}
	st := pass.Init.(*state)
	base := simpkgs.Base(pass.Pkg.Path())

	type hit struct {
		pos token.Pos
		id  framework.FuncID
		c   *framework.Chain
	}
	var hits []hit
	for ident, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		id := framework.FuncIDOf(fn)
		c := st.reach[id]
		if c == nil || len(c.Path) == 0 {
			// Unreached, or a direct source (empty path below the
			// callee) — the latter is detwall's diagnostic, not ours.
			continue
		}
		if callee := pass.Facts.Funcs[id]; callee != nil && simpkgs.IsSim(callee.PkgPath) {
			// Tainted sim-package functions are flagged at their own
			// offending call site, not at every caller.
			continue
		}
		if detwall.SeamFile(base, filepath.Base(pass.Fset.Position(ident.Pos()).Filename)) {
			continue
		}
		hits = append(hits, hit{ident.Pos(), id, c})
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].pos < hits[j].pos })
	for _, h := range hits {
		parts := make([]string, 0, len(h.c.Path)+1)
		parts = append(parts, short(pass.Facts, h.id))
		for _, step := range h.c.Path {
			parts = append(parts, short(pass.Facts, step))
		}
		source := parts[len(parts)-1]
		pass.Reportf(h.pos, "call to %s transitively reaches %s (%s) via %s: simulation packages may use only virtual time and seeded faults.Schedule randomness",
			short(pass.Facts, h.id), source, h.c.Why, strings.Join(parts, " -> "))
	}
	return nil
}
