package detwalltrans_test

import (
	"testing"

	"iophases/internal/analysis/analysistest"
	"iophases/internal/analysis/detwalltrans"
)

func TestDetwallTrans(t *testing.T) {
	analysistest.Run(t, "./testdata/src/trans/...", detwalltrans.Analyzer)
}
