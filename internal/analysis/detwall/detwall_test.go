package detwall_test

import (
	"testing"

	"iophases/internal/analysis/analysistest"
	"iophases/internal/analysis/detwall"
)

func TestSimPackage(t *testing.T) {
	analysistest.Run(t, "./testdata/src/des", detwall.Analyzer)
}

func TestNonSimPackage(t *testing.T) {
	analysistest.Run(t, "./testdata/src/notsim", detwall.Analyzer)
}

// The serve corpus pins the wall-clock seam: clock.go is exempt, every
// other file in the package is not.
func TestServeSeamFile(t *testing.T) {
	analysistest.Run(t, "./testdata/src/serve", detwall.Analyzer)
}
