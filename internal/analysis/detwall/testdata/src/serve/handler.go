package serve

import (
	"math/rand"
	"time"
)

// handler shows the seam is per-file, not per-package: outside clock.go
// the usual detwall rules apply, so wall-clock reads and global
// randomness are still build failures.
func handler() time.Duration {
	start := time.Now() // want `time.Now reads the wall clock`
	doWork()
	return time.Since(start) // want `time.Since reads the wall clock`
}

func jitter() time.Duration {
	return time.Duration(rand.Intn(10)) * time.Millisecond // want `math/rand.Intn draws from the global stream`
}

// viaSeam is the legal pattern: route the measurement through the seam
// helpers, which live in the one greppable file.
func viaSeam() time.Duration {
	start := now()
	doWork()
	return since(start)
}

func doWork() {}
