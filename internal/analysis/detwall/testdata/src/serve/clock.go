// Package serve is a detwall corpus for the wall-clock seam: the
// package is in simpkgs scope, but clock.go is its allowlisted seam
// file, so the wall-clock reads here must NOT be flagged.
package serve

import "time"

func now() time.Time { return time.Now() }

func since(t time.Time) time.Duration { return time.Since(t) }
