// Package des is a detwall corpus: its import-path base name opts it
// into simulation-package scoping.
package des

import (
	crand "crypto/rand"
	"math/rand"
	"os"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

func sleeps() {
	time.Sleep(time.Millisecond) // want `time.Sleep blocks on real time`
	<-time.After(time.Second)    // want `time.After fires on real time`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since reads the wall clock`
}

func globalRand() int {
	rand.Seed(42)       // want `math/rand.Seed reseeds the global stream`
	_ = rand.Float64()  // want `math/rand.Float64 draws from the global stream`
	return rand.Intn(8) // want `math/rand.Intn draws from the global stream`
}

func entropy(buf []byte) {
	_, _ = crand.Read(buf) // want `crypto/rand.Read reads crypto entropy`
	_ = os.Getpid()        // want `os.Getpid reads process identity`
}

// seededRand is the legal pattern: an explicit source, seeded by the
// caller (faults.Schedule in the real tree).
func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// durations shows that time.Duration arithmetic — a pure value type —
// is fine; only the wall-clock functions are forbidden.
func durations(d time.Duration) time.Duration {
	return d + 3*time.Millisecond
}

// allowed shows a justified suppression: the diagnostic on the next
// line is silenced because the allow names detwall and gives a reason.
func allowed() time.Time {
	//iovet:allow(detwall) corpus fixture: pinning the suppression path
	return time.Now()
}
