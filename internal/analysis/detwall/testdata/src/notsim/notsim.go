// Package notsim is a detwall negative corpus: its name is not a
// simulation package, so wall-clock use is legal (the sweep pool and
// CLIs time real work).
package notsim

import "time"

func WallClockIsFine() time.Time {
	return time.Now()
}
