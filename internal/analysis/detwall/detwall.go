// Package detwall implements the iovet analyzer that keeps wall-clock
// time and unseeded randomness out of the simulation packages.
//
// The simulator's core guarantee — the same inputs produce bit-identical
// tables at any -j, with telemetry on or off, across runs (DESIGN.md §5)
// — holds only if nothing inside the simulation reads a source that
// varies between runs: the wall clock, the global math/rand stream,
// crypto entropy, or process identity. Seeded randomness is legal, but
// only through an explicit *rand.Rand carried by faults.Schedule
// (DESIGN.md §9); rand.New/rand.NewSource therefore pass while every
// global-stream function is flagged.
package detwall

import (
	"go/token"
	"go/types"
	"path/filepath"
	"sort"

	"iophases/internal/analysis/framework"
	"iophases/internal/analysis/simpkgs"
)

// Analyzer flags wall-clock and global-randomness sources in simulation
// packages.
var Analyzer = &framework.Analyzer{
	Name: "detwall",
	Doc: "forbid wall-clock time and unseeded randomness in simulation packages\n\n" +
		"Simulation code may consult only virtual time (des.Engine.Now) and the\n" +
		"seeded per-schedule rand stream (faults.Schedule); anything else breaks\n" +
		"run-to-run bit-determinism (DESIGN.md §5, §9).",
	Run: run,
}

// anyName in a forbidden set matches every object of the package.
const anyName = "*"

// forbidden maps package path -> object name -> why it is illegal.
var forbidden = map[string]map[string]string{
	"time": {
		"Now":       "reads the wall clock",
		"Since":     "reads the wall clock",
		"Until":     "reads the wall clock",
		"Sleep":     "blocks on real time (use Proc.Sleep for virtual time)",
		"After":     "fires on real time",
		"AfterFunc": "fires on real time",
		"Tick":      "fires on real time",
		"NewTimer":  "fires on real time",
		"NewTicker": "fires on real time",
	},
	"math/rand": {
		"Seed":        "reseeds the global stream",
		"Int":         "draws from the global stream",
		"Intn":        "draws from the global stream",
		"Int31":       "draws from the global stream",
		"Int31n":      "draws from the global stream",
		"Int63":       "draws from the global stream",
		"Int63n":      "draws from the global stream",
		"Uint32":      "draws from the global stream",
		"Uint64":      "draws from the global stream",
		"Float32":     "draws from the global stream",
		"Float64":     "draws from the global stream",
		"ExpFloat64":  "draws from the global stream",
		"NormFloat64": "draws from the global stream",
		"Perm":        "draws from the global stream",
		"Shuffle":     "draws from the global stream",
		"Read":        "draws from the global stream",
	},
	// math/rand/v2 has no Seed at all — every top-level function is
	// implicitly seeded from runtime entropy.
	"math/rand/v2": {anyName: "draws from a runtime-seeded stream"},
	"crypto/rand":  {anyName: "reads crypto entropy"},
	"os": {
		"Getpid":  "reads process identity",
		"Getppid": "reads process identity",
	},
}

// wallSeams allowlists the one file per package that is allowed to read
// the wall clock: a sanctioned seam whose callers measure the *server*
// (latency histograms, access-log timestamps), never the simulation.
// Keyed by package base name then file base name, so corpus packages
// under testdata/src/<name> exercise the same exemption. Everything
// outside the seam file — including the rest of its package — is still
// flagged, which forces new wall-clock reads through the seam where
// they stay greppable and out of response bodies.
var wallSeams = map[string]map[string]bool{
	"serve": {"clock.go": true},
}

// Forbidden reports whether pkgPath.name is a nondeterminism source and
// why — the shared seed table for the transitive analyzer, so direct
// and interprocedural detection can never drift apart.
func Forbidden(pkgPath, name string) (why string, ok bool) {
	byName, ok := forbidden[pkgPath]
	if !ok {
		return "", false
	}
	if why, ok := byName[name]; ok {
		return why, true
	}
	why, ok = byName[anyName]
	return why, ok
}

// SeamFile reports whether fileBase is the sanctioned wall-clock seam
// of the package with base name pkgBase.
func SeamFile(pkgBase, fileBase string) bool {
	return wallSeams[pkgBase][fileBase]
}

func run(pass *framework.Pass) error {
	if !simpkgs.IsSim(pass.Pkg.Path()) {
		return nil
	}
	seam := wallSeams[simpkgs.Base(pass.Pkg.Path())]
	// info.Uses iterates in map order; collect and sort so the report
	// order is stable (the driver re-sorts, but stable input keeps
	// duplicate handling predictable).
	type hit struct {
		pos  token.Pos
		pkg  string
		name string
		why  string
	}
	var hits []hit
	for ident, obj := range pass.TypesInfo.Uses {
		pkg := obj.Pkg()
		if pkg == nil {
			continue
		}
		// Methods are legal: rng.Float64() on an explicit, seeded
		// *rand.Rand is exactly the sanctioned pattern. Only
		// package-level sources (the global stream, the wall clock)
		// are forbidden.
		if f, ok := obj.(*types.Func); ok && f.Type().(*types.Signature).Recv() != nil {
			continue
		}
		byName, ok := forbidden[pkg.Path()]
		if !ok {
			continue
		}
		why, ok := byName[obj.Name()]
		if !ok {
			why, ok = byName[anyName]
		}
		if !ok {
			continue
		}
		if seam != nil && seam[filepath.Base(pass.Fset.Position(ident.Pos()).Filename)] {
			continue
		}
		hits = append(hits, hit{ident.Pos(), pkg.Path(), obj.Name(), why})
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].pos < hits[j].pos })
	for _, h := range hits {
		pass.Reportf(h.pos, "%s.%s %s: simulation packages may use only virtual time and seeded faults.Schedule randomness", h.pkg, h.name, h.why)
	}
	return nil
}
