package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// AllowAnalyzerName attributes the framework's own diagnostics about
// malformed //iovet:allow comments. It is not a runnable analyzer and
// its diagnostics can never be suppressed — a broken suppression must
// always surface.
const AllowAnalyzerName = "iovet"

// allowForm is the only accepted shape: //iovet:allow(name[,name...])
// followed by a mandatory free-text reason.
var allowForm = regexp.MustCompile(`^//iovet:allow\(([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)\)\s+(\S.*)$`)

// suppressions records which analyzers are allowed on which lines of
// which files. An allow comment covers its own line (trailing comment)
// and the line immediately below it (full-line comment above the
// flagged statement).
type suppressions struct {
	byFileLine map[string]map[int]map[string]bool
}

// covers reports whether d is silenced by an allow comment.
func (s *suppressions) covers(d Diagnostic) bool {
	if d.Analyzer == AllowAnalyzerName {
		return false
	}
	lines := s.byFileLine[d.Position.Filename]
	if lines == nil {
		return false
	}
	return lines[d.Position.Line][d.Analyzer]
}

// collectAllows scans every comment of files for //iovet:allow markers.
// known is the full set of analyzer names valid in an allow list.
// Malformed markers — wrong shape, unknown analyzer, missing reason —
// come back as AllowAnalyzerName diagnostics.
func collectAllows(fset *token.FileSet, files []*ast.File, known map[string]bool) (*suppressions, []Diagnostic) {
	sup := &suppressions{byFileLine: map[string]map[int]map[string]bool{}}
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      pos,
			Position: fset.Position(pos),
			Analyzer: AllowAnalyzerName,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	knownNames := func() string {
		names := make([]string, 0, len(known))
		for n := range known {
			names = append(names, n)
		}
		sort.Strings(names)
		return strings.Join(names, ", ")
	}

	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text := c.Text
				if !strings.HasPrefix(text, "//") {
					continue // block comments cannot carry allows
				}
				body := strings.TrimLeft(text[2:], " \t")
				if !strings.HasPrefix(body, "iovet:allow") {
					continue
				}
				m := allowForm.FindStringSubmatch(text)
				if m == nil {
					report(c.Slash, "malformed suppression comment %q: want //iovet:allow(<analyzer>) <reason> — the reason is mandatory", text)
					continue
				}
				names := strings.Split(m[1], ",")
				ok := true
				for i, name := range names {
					names[i] = strings.TrimSpace(name)
					if !known[names[i]] {
						report(c.Slash, "//iovet:allow names unknown analyzer %q (known: %s)", names[i], knownNames())
						ok = false
					}
				}
				if !ok {
					continue
				}
				pos := fset.Position(c.Slash)
				lines := sup.byFileLine[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					sup.byFileLine[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set := lines[line]
					if set == nil {
						set = map[string]bool{}
						lines[line] = set
					}
					for _, name := range names {
						set[name] = true
					}
				}
			}
		}
	}
	return sup, diags
}
