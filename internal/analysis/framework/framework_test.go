package framework_test

import (
	"go/ast"
	"strings"
	"testing"

	"iophases/internal/analysis/analysistest"
	"iophases/internal/analysis/framework"
)

// marker flags every function whose name starts with Flag — a minimal
// deterministic signal to exercise suppression plumbing. It borrows the
// name "detwall" so corpus allow-lists resolve against a known name.
var marker = &framework.Analyzer{
	Name: "detwall",
	Doc:  "test marker: flags Flag* functions",
	Run: func(pass *framework.Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Flag") {
					pass.Reportf(fd.Pos(), "marker")
				}
			}
		}
		return nil
	},
}

func TestAllowHygiene(t *testing.T) {
	analysistest.Run(t, "./testdata/src/allows", marker)
}

// TestSuppressionCount pins that silenced findings are counted, not
// lost: the corpus has two valid allows covering two marker findings.
func TestSuppressionCount(t *testing.T) {
	res, err := framework.Run(".", []string{"./testdata/src/allows"},
		[]*framework.Analyzer{marker}, []string{marker.Name})
	if err != nil {
		t.Fatal(err)
	}
	if res.Suppressed != 2 {
		t.Errorf("Suppressed = %d, want 2", res.Suppressed)
	}
}

// TestMissingReason pins that an allow without a reason is rejected and
// suppresses nothing — the finding it sat above still surfaces.
func TestMissingReason(t *testing.T) {
	res, err := framework.Run(".", []string{"./testdata/src/allowbad"},
		[]*framework.Analyzer{marker}, []string{marker.Name})
	if err != nil {
		t.Fatal(err)
	}
	var sawMalformed, sawMarker bool
	for _, d := range res.Diagnostics {
		switch {
		case d.Analyzer == framework.AllowAnalyzerName &&
			strings.Contains(d.Message, "the reason is mandatory"):
			sawMalformed = true
		case d.Message == "marker":
			sawMarker = true
		}
	}
	if !sawMalformed {
		t.Errorf("no missing-reason diagnostic in %v", res.Diagnostics)
	}
	if !sawMarker {
		t.Errorf("reasonless allow suppressed the finding below it: %v", res.Diagnostics)
	}
	if res.Suppressed != 0 {
		t.Errorf("Suppressed = %d, want 0", res.Suppressed)
	}
}

// TestLoadRejectsBadPattern pins that loader failures surface as errors
// rather than empty (vacuously clean) results.
func TestLoadRejectsBadPattern(t *testing.T) {
	_, err := framework.Run(".", []string{"./does/not/exist"}, nil, nil)
	if err == nil {
		t.Fatal("expected an error for a nonexistent pattern")
	}
}
