// Package framework is the core of iovet, the repo's static-analysis
// suite. It mirrors the shape of golang.org/x/tools/go/analysis —
// Analyzer, Pass, Diagnostic — so each checker reads like a standard
// go/analysis analyzer, but is built entirely on the standard library:
// this repo builds offline (no module proxy), so x/tools cannot be a
// dependency. Type information comes from `go list -export` compiled
// export data (see load.go), the same source go/packages uses.
//
// The framework also owns the `//iovet:allow(<analyzer>) <reason>`
// suppression mechanism (suppress.go): a diagnostic may be silenced by
// an allow comment on its line or the line above, the reason is
// mandatory, and malformed or unknown-analyzer allows are themselves
// diagnostics that cannot be suppressed.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant checker. It mirrors
// golang.org/x/tools/go/analysis.Analyzer minus the pieces iovet does
// not need (facts, requires, result types).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //iovet:allow(<name>) suppression comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: first line is a summary, the
	// rest explains the invariant the analyzer enforces.
	Doc string
	// Init, when non-nil, runs once per driver invocation before any
	// Run call, receiving the phase-1 interprocedural facts (call
	// graph, struct-field index). Its result is handed to every Pass of
	// this analyzer via Pass.Init — the place to precompute module-wide
	// state like taint reachability, instead of per package.
	Init func(*Facts) (any, error)
	// Run applies the analyzer to one package, reporting findings
	// through the Pass. A non-nil error aborts the whole iovet run —
	// reserve it for "cannot analyze", not for findings.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts is the whole invocation's phase-1 product — shared by every
	// analyzer and every package of the run.
	Facts *Facts
	// Init is what this analyzer's Init function returned (nil when the
	// analyzer has no Init).
	Init   any
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: an invariant violation at a source
// position, attributed to the analyzer that found it.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional
// file:line:col: message [analyzer] form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Analyzer)
}
