// facts.go is phase 1 of the two-phase driver: after the loader has
// parsed and type-checked every matched package (in dependency order),
// buildFacts walks all of them once and derives module-wide facts the
// phase-2 analyzers consume — a call graph over every function body, a
// struct-field declaration index (for field-level marker comments), and
// a generic reachability/taint propagator over the graph.
//
// Identity across packages is by name, not by types.Object: each target
// package type-checks against its dependencies' *export data*, so the
// same function seen from two packages is two distinct objects. FuncID
// ("pkgpath.Name" or "pkgpath.Recv.Name") collapses those views into
// one node per function.
package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// FuncID names one function module-wide: "pkgpath.Name" for package
// functions, "pkgpath.Recv.Name" for methods (pointer receivers
// dereferenced, so (*T).M and T.M are one node).
type FuncID string

// FuncIDOf derives the FuncID of a types.Func, regardless of which
// package's type-check produced it.
func FuncIDOf(f *types.Func) FuncID {
	pkg := ""
	if p := f.Pkg(); p != nil {
		pkg = p.Path()
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return FuncID(pkg + "." + n.Obj().Name() + "." + f.Name())
		}
		// Interface methods and other anonymous receivers: keyed by
		// method name only; callers treat these as opaque (no body).
		return FuncID(pkg + ".(recv)." + f.Name())
	}
	return FuncID(pkg + "." + f.Name())
}

// CalleeMeta describes a function referenced from some loaded body,
// whether or not its own body was loaded (stdlib and import-only
// dependencies have no FuncInfo, only a CalleeMeta).
type CalleeMeta struct {
	PkgPath string
	Name    string
	Recv    bool // method (has a receiver)
}

// FuncInfo is the phase-1 record of one function whose body was loaded.
type FuncInfo struct {
	ID      FuncID
	PkgPath string
	PkgBase string // final import-path element (simpkgs-style scoping)
	File    string // base name of the declaring file
	Pos     token.Pos
	// Calls lists every function referenced from the body, deduplicated,
	// in first-occurrence order. References count, not just call
	// expressions: a function assigned to a variable and invoked later
	// still taints its user (conservative for reachability analyses).
	Calls []FuncID
}

// Facts is the module-wide phase-1 product shared by every analyzer of a
// driver run.
type Facts struct {
	// Funcs maps every loaded function (and one synthetic
	// "pkgpath.init" node per package covering package-level variable
	// initializers) to its call-graph record.
	Funcs map[FuncID]*FuncInfo
	// Callees records identity metadata for every FuncID referenced
	// anywhere, including functions with no loaded body.
	Callees map[FuncID]CalleeMeta
	// fields indexes struct field declarations by
	// "pkgpath.TypeName.FieldName" for marker-comment lookups.
	fields map[string]*ast.Field
	// pkgs indexes loaded packages by import path.
	pkgs map[string]*Package
}

// PackageByPath reports the loaded package with the given import path,
// or nil when the path was not among the load targets.
func (f *Facts) PackageByPath(path string) *Package { return f.pkgs[path] }

// FieldDecl reports the ast.Field declaring pkgPath.typeName.fieldName,
// or nil when the declaring package was not loaded (its struct came in
// through export data only).
func (f *Facts) FieldDecl(pkgPath, typeName, fieldName string) *ast.Field {
	return f.fields[pkgPath+"."+typeName+"."+fieldName]
}

// FieldMarker scans a field declaration's doc and line comments for an
// //iovet:<marker> comment (e.g. //iovet:cosmetic <reason>) and reports
// whether it is present and the text after the marker word. found is
// false when the declaring package was not loaded.
func (f *Facts) FieldMarker(pkgPath, typeName, fieldName, marker string) (found, marked bool, reason string) {
	fd := f.FieldDecl(pkgPath, typeName, fieldName)
	if fd == nil {
		return false, false, ""
	}
	prefix := "iovet:" + marker
	for _, group := range []*ast.CommentGroup{fd.Doc, fd.Comment} {
		if group == nil {
			continue
		}
		for _, c := range group.List {
			if !strings.HasPrefix(c.Text, "//") {
				continue
			}
			body := strings.TrimLeft(c.Text[2:], " \t")
			if rest, ok := strings.CutPrefix(body, prefix); ok {
				return true, true, strings.TrimSpace(rest)
			}
		}
	}
	return true, false, ""
}

// Chain is one function's witness that it reaches a seed: Why is the
// seed's description, Path the call chain below the function — its
// tainted callee first, the seed last. A seed's own Chain has an empty
// Path.
type Chain struct {
	Why  string
	Path []FuncID
}

// Render formats the chain as "fn → hop → seed", trimming a module
// prefix for brevity.
func (c *Chain) Render(from FuncID, trimPrefix string) string {
	parts := make([]string, 0, len(c.Path)+1)
	for _, id := range append([]FuncID{from}, c.Path...) {
		parts = append(parts, strings.TrimPrefix(string(id), trimPrefix))
	}
	return strings.Join(parts, " -> ")
}

// Reaches propagates seed attributes up the call graph: a function
// reaches a seed when it references (directly or transitively) a seeded
// function. barrier, when non-nil, marks loaded functions whose taint
// must not propagate further — sanctioned seams whose callers are clean
// by design. The result maps every reaching FuncID (seeds included) to
// a shortest witness chain; BFS from the seeds with sorted frontiers
// makes the chains deterministic across runs.
func (f *Facts) Reaches(seeds map[FuncID]string, barrier func(*FuncInfo) bool) map[FuncID]*Chain {
	// Reverse adjacency over the loaded bodies.
	rev := map[FuncID][]FuncID{}
	for id, fn := range f.Funcs {
		for _, callee := range fn.Calls {
			rev[callee] = append(rev[callee], id)
		}
	}
	for _, callers := range rev {
		sort.Slice(callers, func(i, j int) bool { return callers[i] < callers[j] })
	}

	out := map[FuncID]*Chain{}
	frontier := make([]FuncID, 0, len(seeds))
	for id, why := range seeds {
		// A barrier function that is itself a seed stays a dead end: its
		// own record exists (callers may ask), but it never propagates.
		out[id] = &Chain{Why: why}
		frontier = append(frontier, id)
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })

	for len(frontier) > 0 {
		var next []FuncID
		for _, id := range frontier {
			if fn := f.Funcs[id]; fn != nil && barrier != nil && barrier(fn) {
				continue
			}
			reached := out[id]
			for _, caller := range rev[id] {
				if _, seen := out[caller]; seen {
					continue
				}
				if fn := f.Funcs[caller]; fn != nil && barrier != nil && barrier(fn) {
					continue
				}
				path := make([]FuncID, 0, len(reached.Path)+1)
				path = append(append(path, id), reached.Path...)
				out[caller] = &Chain{Why: reached.Why, Path: path}
				next = append(next, caller)
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		frontier = next
	}
	return out
}

// buildFacts derives the module-wide facts from a loaded snapshot. One
// AST pass per package: function declarations contribute call-graph
// nodes, package-level value specs fold into a synthetic init node, and
// struct type declarations feed the field index.
func buildFacts(snap *Snapshot) *Facts {
	f := &Facts{
		Funcs:   map[FuncID]*FuncInfo{},
		Callees: map[FuncID]CalleeMeta{},
		fields:  map[string]*ast.Field{},
		pkgs:    map[string]*Package{},
	}
	for _, pkg := range snap.Pkgs {
		f.pkgs[pkg.PkgPath] = pkg
		base := pkg.PkgPath
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		for _, file := range pkg.Syntax {
			fileBase := filepath.Base(snap.Fset.Position(file.Pos()).Filename)
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					obj, ok := pkg.TypesInfo.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					info := &FuncInfo{
						ID:      FuncIDOf(obj),
						PkgPath: pkg.PkgPath,
						PkgBase: base,
						File:    fileBase,
						Pos:     d.Pos(),
					}
					f.collectCalls(pkg, d.Body, info)
					f.Funcs[info.ID] = info
				case *ast.GenDecl:
					f.indexStructs(pkg, d)
					// Package-level initializers (composite literals
					// registering callbacks, etc.) fold into one
					// synthetic init node per package.
					if d.Tok == token.VAR {
						init := f.initNode(pkg, base, d.Pos())
						for _, spec := range d.Specs {
							vs, ok := spec.(*ast.ValueSpec)
							if !ok {
								continue
							}
							for _, v := range vs.Values {
								f.collectCalls(pkg, v, init)
							}
						}
					}
				}
			}
		}
	}
	return f
}

// initNode returns (creating on first use) the package's synthetic init
// call-graph node.
func (f *Facts) initNode(pkg *Package, base string, pos token.Pos) *FuncInfo {
	id := FuncID(pkg.PkgPath + ".init")
	if fn, ok := f.Funcs[id]; ok {
		return fn
	}
	fn := &FuncInfo{ID: id, PkgPath: pkg.PkgPath, PkgBase: base, Pos: pos}
	f.Funcs[id] = fn
	return fn
}

// collectCalls records every function referenced from node into info.
func (f *Facts) collectCalls(pkg *Package, node ast.Node, info *FuncInfo) {
	seen := map[FuncID]bool{}
	for _, id := range info.Calls {
		seen[id] = true
	}
	ast.Inspect(node, func(n ast.Node) bool {
		ident, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := pkg.TypesInfo.Uses[ident].(*types.Func)
		if !ok {
			return true
		}
		id := FuncIDOf(fn)
		if id == info.ID || seen[id] {
			return true
		}
		seen[id] = true
		info.Calls = append(info.Calls, id)
		if _, ok := f.Callees[id]; !ok {
			pkgPath := ""
			if p := fn.Pkg(); p != nil {
				pkgPath = p.Path()
			}
			sig, _ := fn.Type().(*types.Signature)
			f.Callees[id] = CalleeMeta{
				PkgPath: pkgPath,
				Name:    fn.Name(),
				Recv:    sig != nil && sig.Recv() != nil,
			}
		}
		return true
	})
}

// indexStructs records the field declarations of every struct type in a
// GenDecl under "pkgpath.Type.Field" keys.
func (f *Facts) indexStructs(pkg *Package, d *ast.GenDecl) {
	if d.Tok != token.TYPE {
		return
	}
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			continue
		}
		for _, field := range st.Fields.List {
			for _, name := range field.Names {
				f.fields[pkg.PkgPath+"."+ts.Name.Name+"."+name.Name] = field
			}
		}
	}
}
