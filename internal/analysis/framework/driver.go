package framework

import (
	"fmt"
	"io"
	"sort"
)

// Result is one driver run's outcome.
type Result struct {
	// Diagnostics are the surviving findings, sorted by file, line,
	// column, analyzer. A clean tree has none.
	Diagnostics []Diagnostic
	// Suppressed counts findings silenced by //iovet:allow comments.
	Suppressed int
}

// Run loads the packages matched by patterns (relative to dir), applies
// every analyzer to every package, and folds in allow-comment hygiene
// checks. known is the full registry of analyzer names valid inside
// //iovet:allow lists — it may be a superset of the analyzers actually
// running (e.g. `iovet -only detwall` must not reject an allow that
// names mapdet).
func Run(dir string, patterns []string, analyzers []*Analyzer, known []string) (*Result, error) {
	knownSet := map[string]bool{}
	for _, n := range known {
		knownSet[n] = true
	}
	pkgs, fset, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	for _, pkg := range pkgs {
		sup, allowDiags := collectAllows(fset, pkg.Syntax, knownSet)
		res.Diagnostics = append(res.Diagnostics, allowDiags...)

		var found []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				report:    func(d Diagnostic) { found = append(found, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzing %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
		for _, d := range found {
			if sup.covers(d) {
				res.Suppressed++
				continue
			}
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}

	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return res, nil
}

// Format writes the result's diagnostics one per line.
func Format(w io.Writer, res *Result) {
	for _, d := range res.Diagnostics {
		fmt.Fprintln(w, d.String())
	}
}
