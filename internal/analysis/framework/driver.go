package framework

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Result is one driver run's outcome.
type Result struct {
	// Diagnostics are the surviving findings, sorted by file, line,
	// column, analyzer. A clean tree has none.
	Diagnostics []Diagnostic
	// Suppressed counts findings silenced by //iovet:allow comments.
	Suppressed int
}

// Run loads the packages matched by patterns (relative to dir) once,
// then applies every analyzer to the shared snapshot. known is the full
// registry of analyzer names valid inside //iovet:allow lists — it may
// be a superset of the analyzers actually running (e.g. `iovet -only
// detwall` must not reject an allow that names mapdet).
func Run(dir string, patterns []string, analyzers []*Analyzer, known []string) (*Result, error) {
	snap, err := LoadSnapshot(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return RunSnapshot(snap, analyzers, known)
}

// RunSnapshot is phase 2 of a driver invocation: it folds in
// allow-comment hygiene over every package, runs each analyzer's Init
// once against the snapshot's facts, then applies the analyzers to
// every package. Suppressions are collected globally before any
// analyzer runs, because interprocedural analyzers (cachekey) report at
// positions in packages other than the one driving the check — an
// allow comment must work wherever the diagnostic lands, not only when
// the "current" package happens to contain it.
func RunSnapshot(snap *Snapshot, analyzers []*Analyzer, known []string) (*Result, error) {
	knownSet := map[string]bool{}
	for _, n := range known {
		knownSet[n] = true
	}

	res := &Result{}
	sup := &suppressions{byFileLine: map[string]map[int]map[string]bool{}}
	for _, pkg := range snap.Pkgs {
		pkgSup, allowDiags := collectAllows(snap.Fset, pkg.Syntax, knownSet)
		res.Diagnostics = append(res.Diagnostics, allowDiags...)
		for file, lines := range pkgSup.byFileLine {
			sup.byFileLine[file] = lines
		}
	}

	inits := make([]any, len(analyzers))
	for i, a := range analyzers {
		if a.Init == nil {
			continue
		}
		v, err := a.Init(snap.Facts)
		if err != nil {
			return nil, fmt.Errorf("%s: init: %v", a.Name, err)
		}
		inits[i] = v
	}

	var found []Diagnostic
	for _, pkg := range snap.Pkgs {
		for i, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      snap.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Facts:     snap.Facts,
				Init:      inits[i],
				report:    func(d Diagnostic) { found = append(found, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzing %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	seen := map[string]bool{}
	for _, d := range found {
		if sup.covers(d) {
			res.Suppressed++
			continue
		}
		// Interprocedural analyzers can rediscover the same fact from
		// several packages' views; a diagnostic is one (position,
		// analyzer, message) triple regardless of how many passes
		// reported it.
		key := fmt.Sprintf("%s:%d:%d:%s:%s", d.Position.Filename, d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
		if seen[key] {
			continue
		}
		seen[key] = true
		res.Diagnostics = append(res.Diagnostics, d)
	}

	sort.Slice(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i], res.Diagnostics[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return res, nil
}

// Format writes the result's diagnostics one per line.
func Format(w io.Writer, res *Result) {
	for _, d := range res.Diagnostics {
		fmt.Fprintln(w, d.String())
	}
}

// jsonDiagnostic fixes the field order of -json output. CI's problem
// matcher parses these lines with a regex, so the order is part of the
// format: file, line, col, analyzer, message.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON writes the result's diagnostics as JSON Lines — one
// compact object per finding, empty output for a clean tree.
func WriteJSON(w io.Writer, res *Result) error {
	enc := json.NewEncoder(w)
	for _, d := range res.Diagnostics {
		if err := enc.Encode(jsonDiagnostic{
			File:     d.Position.Filename,
			Line:     d.Position.Line,
			Col:      d.Position.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}); err != nil {
			return err
		}
	}
	return nil
}
