package framework_test

import (
	"strings"
	"testing"

	"iophases/internal/analysis/framework"
)

const corpusPrefix = "iophases/internal/analysis/framework/testdata/src/factgraph/"

func loadFactgraph(t testing.TB) *framework.Snapshot {
	t.Helper()
	snap, err := framework.LoadSnapshot(".", "./testdata/src/factgraph/...")
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestFactsCallGraph(t *testing.T) {
	snap := loadFactgraph(t)
	f := snap.Facts

	// Dependency order: helper (the dependency) must precede caller.
	var order []string
	for _, p := range snap.Pkgs {
		order = append(order, strings.TrimPrefix(p.PkgPath, corpusPrefix))
	}
	if len(order) != 2 || order[0] != "helper" || order[1] != "caller" {
		t.Fatalf("packages not in dependency order: %v", order)
	}

	stamp := framework.FuncID(corpusPrefix + "helper.Stamp")
	indirect := framework.FuncID(corpusPrefix + "caller.Indirect")
	mark := framework.FuncID(corpusPrefix + "helper.Gauge.Mark")
	callerInit := framework.FuncID(corpusPrefix + "caller.init")

	calls := func(id framework.FuncID) []framework.FuncID {
		t.Helper()
		fn := f.Funcs[id]
		if fn == nil {
			t.Fatalf("no FuncInfo for %s; have %d funcs", id, len(f.Funcs))
		}
		return fn.Calls
	}
	contains := func(list []framework.FuncID, want framework.FuncID) bool {
		for _, id := range list {
			if id == want {
				return true
			}
		}
		return false
	}

	if !contains(calls(stamp), framework.FuncID("time.Now")) {
		t.Errorf("helper.Stamp calls = %v, want to include time.Now", calls(stamp))
	}
	if !contains(calls(indirect), stamp) {
		t.Errorf("caller.Indirect calls = %v, want to include helper.Stamp (cross-package edge)", calls(indirect))
	}
	if !contains(calls(mark), stamp) {
		t.Errorf("method Gauge.Mark calls = %v, want to include helper.Stamp", calls(mark))
	}
	if !contains(calls(callerInit), stamp) {
		t.Errorf("synthetic caller.init calls = %v, want to include helper.Stamp", calls(callerInit))
	}

	// Callee metadata exists even for functions with no loaded body.
	meta, ok := f.Callees["time.Now"]
	if !ok || meta.PkgPath != "time" || meta.Name != "Now" || meta.Recv {
		t.Errorf("Callees[time.Now] = %+v, ok=%v", meta, ok)
	}
}

func TestReaches(t *testing.T) {
	snap := loadFactgraph(t)
	f := snap.Facts
	seeds := map[framework.FuncID]string{"time.Now": "wall clock"}

	t.Run("no barrier", func(t *testing.T) {
		reach := f.Reaches(seeds, nil)
		for _, name := range []string{"helper.Stamp", "helper.Seam", "helper.Gauge.Mark",
			"caller.Indirect", "caller.TwoHops", "caller.ViaSeam", "caller.init"} {
			if reach[framework.FuncID(corpusPrefix+name)] == nil {
				t.Errorf("%s should reach time.Now", name)
			}
		}
		for _, name := range []string{"helper.Clean", "caller.Pure"} {
			if c := reach[framework.FuncID(corpusPrefix+name)]; c != nil {
				t.Errorf("%s should not reach time.Now (chain %v)", name, c.Path)
			}
		}
		// TwoHops' witness chain is Indirect → Stamp → time.Now.
		c := reach[framework.FuncID(corpusPrefix+"caller.TwoHops")]
		got := c.Render(framework.FuncID(corpusPrefix+"caller.TwoHops"), corpusPrefix)
		want := "caller.TwoHops -> caller.Indirect -> helper.Stamp -> time.Now"
		if got != want {
			t.Errorf("chain = %q, want %q", got, want)
		}
	})

	t.Run("seam barrier", func(t *testing.T) {
		reach := f.Reaches(seeds, func(fn *framework.FuncInfo) bool {
			return fn.ID == framework.FuncID(corpusPrefix+"helper.Seam")
		})
		if reach[framework.FuncID(corpusPrefix+"caller.ViaSeam")] != nil {
			t.Error("barrier on helper.Seam should keep caller.ViaSeam clean")
		}
		if reach[framework.FuncID(corpusPrefix+"caller.Indirect")] == nil {
			t.Error("barrier on helper.Seam must not block the Stamp route")
		}
	})
}

func TestFieldMarker(t *testing.T) {
	f := loadFactgraph(t).Facts
	helperPkg := strings.TrimSuffix(corpusPrefix, "/") + "/helper"

	found, marked, reason := f.FieldMarker(helperPkg, "Config", "Label", "cosmetic")
	if !found || !marked || reason != "display-only name" {
		t.Errorf("Config.Label marker = (%v, %v, %q), want (true, true, \"display-only name\")", found, marked, reason)
	}
	found, marked, _ = f.FieldMarker(helperPkg, "Config", "Nodes", "cosmetic")
	if !found || marked {
		t.Errorf("Config.Nodes marker = (%v, %v), want found and unmarked", found, marked)
	}
	found, _, _ = f.FieldMarker("not/loaded", "T", "F", "cosmetic")
	if found {
		t.Error("unloaded package must report found=false")
	}
}

// TestSingleListInvocationPerRun pins the tentpole loader property: one
// driver invocation spawns exactly one `go list` subprocess, no matter
// how many analyzers run over the snapshot.
func TestSingleListInvocationPerRun(t *testing.T) {
	nop := func(name string) *framework.Analyzer {
		return &framework.Analyzer{
			Name: name,
			Doc:  "no-op",
			Init: func(*framework.Facts) (any, error) { return nil, nil },
			Run:  func(*framework.Pass) error { return nil },
		}
	}
	analyzers := []*framework.Analyzer{nop("a"), nop("b"), nop("c"), nop("d")}
	before := framework.ListInvocations()
	if _, err := framework.Run(".", []string{"./testdata/src/factgraph/..."}, analyzers, []string{"a", "b", "c", "d"}); err != nil {
		t.Fatal(err)
	}
	if got := framework.ListInvocations() - before; got != 1 {
		t.Errorf("driver run spawned %d `go list` subprocesses, want exactly 1", got)
	}
}

// BenchmarkDriverSingleLoad benchmarks a full driver invocation with
// four analyzers over the corpus and reports go-list subprocesses per
// operation — the metric must stay at 1.00 (the loader is the dominant
// cost of an iovet run; a per-analyzer reload would quadruple it here).
func BenchmarkDriverSingleLoad(b *testing.B) {
	nop := func(name string) *framework.Analyzer {
		return &framework.Analyzer{Name: name, Doc: "no-op", Run: func(*framework.Pass) error { return nil }}
	}
	analyzers := []*framework.Analyzer{nop("a"), nop("b"), nop("c"), nop("d")}
	before := framework.ListInvocations()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := framework.Run(".", []string{"./testdata/src/factgraph/..."}, analyzers, []string{"a", "b", "c", "d"}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	delta := framework.ListInvocations() - before
	b.ReportMetric(float64(delta)/float64(b.N), "go-list/op")
	if delta != int64(b.N) {
		b.Fatalf("%d driver runs spawned %d `go list` subprocesses, want one each", b.N, delta)
	}
}
