package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync/atomic"
)

// Package is one loaded, parsed and type-checked package — the unit an
// Analyzer runs over.
type Package struct {
	PkgPath   string
	Dir       string
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Snapshot is one driver invocation's view of the module: every matched
// package, loaded once, in dependency order (a package appears after
// everything it imports), plus the interprocedural facts phase 1 derives
// from the whole set. All analyzers of a run share one Snapshot — the
// `go list` subprocess and the type-check behind it happen exactly once
// per invocation (pinned by TestSingleListInvocationPerRun).
type Snapshot struct {
	Pkgs  []*Package
	Fset  *token.FileSet
	Facts *Facts
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// listInvocations counts `go list` subprocesses since process start. The
// loader is the dominant cost of an iovet run (it compiles export data
// for the whole dependency closure), so the driver must spawn it once
// per invocation, never once per analyzer; the counter makes that
// property testable (and benchmarkable) instead of aspirational.
var listInvocations atomic.Int64

// ListInvocations reports how many `go list` subprocesses the loader has
// spawned in this process.
func ListInvocations() int64 { return listInvocations.Load() }

// LoadSnapshot resolves patterns (e.g. "./...") relative to dir, parses
// the matched packages' non-test Go files, type-checks them against the
// compiled export data of their dependencies, and builds the
// interprocedural facts over the whole set.
//
// The pipeline is one `go list -export -deps -json` invocation, which
// compiles (or reuses from the build cache) export data for every
// dependency, then go/types with a gc-importer lookup over those files —
// the stdlib equivalent of go/packages.Load(NeedSyntax|NeedTypes|NeedDeps).
// It works fully offline; only the go toolchain is required.
//
// Packages come back in dependency order: `go list -deps` emits a
// package only after all of its dependencies, and filtering to the
// non-dep targets preserves that order. Phase-1 fact building and any
// analyzer that folds results bottom-up can therefore walk Pkgs front to
// back and meet every callee before its callers.
//
// Test files are deliberately excluded: iovet guards the invariants of
// shipped simulation code, and tests routinely (and legitimately) use
// wall-clock timeouts, goroutines and raw channels to exercise it.
func LoadSnapshot(dir string, patterns ...string) (*Snapshot, error) {
	args := append([]string{"list", "-export", "-deps", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	listInvocations.Add(1)
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %v: %s: %s", patterns, p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	// One importer for every target: imported packages are cached, so a
	// dependency shared by many targets is read once.
	imp := importer.ForCompiler(fset, "gc", lookup)

	snap := &Snapshot{Fset: fset}
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		snap.Pkgs = append(snap.Pkgs, &Package{
			PkgPath:   t.ImportPath,
			Dir:       t.Dir,
			Syntax:    files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	snap.Facts = buildFacts(snap)
	return snap, nil
}

// Load is the legacy single-purpose loader: LoadSnapshot without the
// snapshot wrapper. Kept for callers that only need syntax and types.
func Load(dir string, patterns ...string) (pkgs []*Package, fset *token.FileSet, err error) {
	snap, err := LoadSnapshot(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	return snap.Pkgs, snap.Fset, nil
}
