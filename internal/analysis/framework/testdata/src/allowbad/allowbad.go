// Package allowbad holds an //iovet:allow with no reason. Checked by a
// direct framework.Run test (the missing-reason diagnostic lands on the
// comment's own line, where no separate // want comment can sit).
package allowbad

//iovet:allow(detwall)
func FlagReasonMissing() {}
