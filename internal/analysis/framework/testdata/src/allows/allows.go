// Package allows is the framework corpus for //iovet:allow hygiene:
// well-formed suppressions silence findings; malformed ones are
// diagnostics in their own right and silence nothing.
package allows

func FlagPlain() {} // want `marker`

//iovet:allow(detwall) demo: suppressed by a full-line allow above
func FlagAllowedAbove() {}

func FlagAllowedTrailing() {} //iovet:allow(detwall) demo: suppressed by a trailing allow

//iovet:allow(nosuchanalyzer) no such analyzer exists // want `names unknown analyzer "nosuchanalyzer"`
func FlagUnknownAnalyzer() {} // want `marker`

// iovet:allow(detwall) leading space invalidates this form // want `malformed suppression comment`
func FlagSpacedForm() {} // want `marker`

//iovet:allow(detwall) an allow two lines up does not reach this far

func FlagTooFar() {} // want `marker`

// A prose mention of the //iovet:allow(detwall) syntax mid-comment is
// not an allow and must be neither validated nor applied.
func FlagProseMention() {} // want `marker`
