// Package caller is the cross-package side of the facts corpus: it
// reaches the wall clock only through helper functions in another
// package — exactly the per-package blindspot the interprocedural facts
// exist to close.
package caller

import "iophases/internal/analysis/framework/testdata/src/factgraph/helper"

// Indirect reaches time.Now through helper.Stamp (one edge away).
func Indirect() int64 { return helper.Stamp() }

// TwoHops reaches it through Indirect (two edges away).
func TwoHops() int64 { return Indirect() }

// Pure calls only the clean helper.
func Pure() int { return helper.Clean() }

// ViaSeam calls the sanctioned seam; with the seam as a barrier this
// function must stay clean.
func ViaSeam() int64 { return helper.Seam() }

// initialized exercises the synthetic package-init call node.
var initialized = helper.Stamp()
