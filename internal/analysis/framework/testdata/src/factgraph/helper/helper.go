// Package helper is the callee side of the facts corpus: a module
// helper that touches the wall clock, one clean function, and a method,
// so the call-graph and reachability tests have known shapes to assert.
package helper

import "time"

// Stamp touches the wall clock directly.
func Stamp() int64 { return time.Now().UnixNano() }

// Clean is wall-clock free.
func Clean() int { return 1 }

// Gauge exercises method nodes in the graph.
type Gauge struct{ n int }

// Mark is a method that reaches the clock through Stamp.
func (g *Gauge) Mark() { g.n = int(Stamp()) }

// Seam is a sanctioned boundary: it touches the clock but its callers
// are clean by design (the barrier test cuts propagation here).
func Seam() int64 { return time.Now().UnixNano() }

// Config exercises the struct-field index and marker lookup.
type Config struct {
	Nodes int
	// Label has no effect on results.
	//iovet:cosmetic display-only name
	Label string
}
