// Package calls is the errdrop corpus: discarded versus handled errors
// from the hardened replay/predict/telemetry APIs.
package calls

import (
	"iophases/internal/cluster"
	"iophases/internal/core"
	"iophases/internal/predict"
	"iophases/internal/replay"
	"iophases/internal/report"
	"iophases/internal/trace"
	"iophases/internal/units"
)

func drops(spec cluster.Spec, m *core.Model, set *trace.Set) {
	replay.TraceSet(spec, set)    // want `error result of replay.TraceSet is discarded`
	predict.EstimateTime(m, spec) // want `error result of predict.EstimateTime is discarded`
	report.SaveTelemetry("", "")  // want `error result of report.SaveTelemetry is discarded`
}

func blanks(spec cluster.Spec, m *core.Model, set *trace.Set) {
	_, _, _ = replay.Model(spec, m)        // want `error result of replay.Model is assigned to _`
	_, _ = predict.EstimateTime(m, spec)   // want `error result of predict.EstimateTime is assigned to _`
	total, _ := replay.TraceSet(spec, set) // want `error result of replay.TraceSet is assigned to _`
	_ = total
}

func deferred() {
	go report.SaveTelemetry("", "")    // want `error result of report.SaveTelemetry is discarded by go statement`
	defer report.SaveTelemetry("", "") // want `error result of report.SaveTelemetry is discarded by defer statement`
}

// handled is the sanctioned shape: every error reaches a name.
func handled(spec cluster.Spec, m *core.Model, set *trace.Set) (units.Duration, error) {
	if _, err := predict.EstimateTime(m, spec); err != nil {
		return 0, err
	}
	if err := report.SaveTelemetry("", ""); err != nil {
		return 0, err
	}
	return replay.TraceSet(spec, set)
}

// nonError results may be discarded freely — only the error matters.
func nonError(spec cluster.Spec, fileSize, rs int64) {
	predict.PeakBandwidth(spec, fileSize, rs)
}

// allowed pins the suppression path for a deliberate discard.
func allowed() {
	//iovet:allow(errdrop) corpus fixture: best-effort save on an exit path
	report.SaveTelemetry("", "")
}
