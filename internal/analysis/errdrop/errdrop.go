// Package errdrop implements the iovet analyzer that forbids discarding
// the errors of the hardened replay/predict/telemetry APIs.
//
// PR 4 converted these layers' panic paths into returned errors —
// "ranks exceed", "phase count mismatch", fault-scenario validation,
// telemetry write failures — precisely so that CLIs and callers surface
// diagnostics instead of crashing or, worse, printing a wrong table. A
// caller that drops such an error (a bare call statement, or an
// assignment of the error to _) reopens the silent-wrong-table hole the
// hardening closed. Tests may discard deliberately; iovet does not
// analyze test files.
package errdrop

import (
	"go/ast"
	"go/types"

	"iophases/internal/analysis/framework"
)

// Analyzer flags discarded errors from replay, predict and
// report.SaveTelemetry calls.
var Analyzer = &framework.Analyzer{
	Name: "errdrop",
	Doc: "forbid discarding errors returned by replay/predict/report.SaveTelemetry\n\n" +
		"These errors replaced panics (degraded inputs, bad scenarios, failed\n" +
		"telemetry writes); dropping one hides a wrong or missing result.",
	Run: run,
}

// guarded reports whether f is one of the hardened error-returning
// APIs: any package-level function of replay or predict, or
// report.SaveTelemetry — matched by import-path base so corpora under
// testdata/src/<name> exercise the same rules.
func guarded(f *types.Func) bool {
	if f.Pkg() == nil || f.Type().(*types.Signature).Recv() != nil {
		return false
	}
	switch base(f.Pkg().Path()) {
	case "replay", "predict":
		return true
	case "report":
		return f.Name() == "SaveTelemetry"
	}
	return false
}

func base(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if f := guardedCall(pass, n.X); f != nil {
					pass.Reportf(n.Pos(), "error result of %s.%s is discarded; handle it or justify with //iovet:allow(errdrop)", base(f.Pkg().Path()), f.Name())
				}
			case *ast.GoStmt:
				if f := guardedCall(pass, n.Call); f != nil {
					pass.Reportf(n.Pos(), "error result of %s.%s is discarded by go statement", base(f.Pkg().Path()), f.Name())
				}
			case *ast.DeferStmt:
				if f := guardedCall(pass, n.Call); f != nil {
					pass.Reportf(n.Pos(), "error result of %s.%s is discarded by defer statement", base(f.Pkg().Path()), f.Name())
				}
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// guardedCall resolves expr to a call of a guarded error-returning
// function (nil otherwise).
func guardedCall(pass *framework.Pass, expr ast.Expr) *types.Func {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return nil
	}
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	default:
		return nil
	}
	f, ok := obj.(*types.Func)
	if !ok || !guarded(f) {
		return nil
	}
	res := f.Type().(*types.Signature).Results()
	if res.Len() == 0 {
		return nil
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Name() != "error" || named.Obj().Pkg() != nil {
		return nil
	}
	return f
}

// checkAssign flags `…, _ = guardedFn(…)` where the blank identifier
// swallows the error result.
func checkAssign(pass *framework.Pass, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	f := guardedCall(pass, assign.Rhs[0])
	if f == nil {
		return
	}
	res := f.Type().(*types.Signature).Results()
	if len(assign.Lhs) != res.Len() {
		return
	}
	last, ok := assign.Lhs[len(assign.Lhs)-1].(*ast.Ident)
	if ok && last.Name == "_" {
		pass.Reportf(last.Pos(), "error result of %s.%s is assigned to _; handle it or justify with //iovet:allow(errdrop)", base(f.Pkg().Path()), f.Name())
	}
}
