package errdrop_test

import (
	"testing"

	"iophases/internal/analysis/analysistest"
	"iophases/internal/analysis/errdrop"
)

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, "./testdata/src/calls", errdrop.Analyzer)
}
