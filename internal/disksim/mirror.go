package disksim

import "iophases/internal/units"

// This file exports pure "clock" mirrors of the simulated devices for the
// analytic fast path (internal/fastpath). A clock computes exactly the
// virtual-time cost the DES device would charge for the same request
// sequence — same formulas, same stateful head/cache bookkeeping, same
// integer arithmetic through units.TransferTime — without an engine, a
// process or an event queue. The guarantee is structural: each clock calls
// the very functions the device calls (HeadClock.serviceTime, stripeSplit,
// raid5Parts, dirtySet.add/gather, recentIndex), so a formula change in the
// device is automatically a formula change in the mirror. Divergence is a
// bug; predict's FastPath=verify mode runs both and panics on any.

// HeadClock is the stateful service-time model of one disk spindle: head
// position (sequential vs seek), read/write turnaround, per-request
// overhead. Disk delegates its timing to an embedded HeadClock, and the
// fast path advances a standalone one through the same request sequence.
type HeadClock struct {
	params    DiskParams
	lastEnd   int64 // file offset where the previous request finished
	lastWrite bool  // direction of the previous request
	started   bool
}

// NewHeadClock returns a clock for a disk in its initial (unstarted) state.
func NewHeadClock(params DiskParams) *HeadClock {
	return &HeadClock{params: params, lastEnd: -1}
}

// ServiceTime computes the duration of one request and updates head state.
// seek reports whether the request paid a seek (for counter mirroring).
func (h *HeadClock) ServiceTime(offset, size int64, write bool) (t units.Duration, seek bool) {
	bw := h.params.SeqReadBW
	if write {
		bw = h.params.SeqWriteBW
	}
	t = h.params.Overhead + units.TransferTime(size, bw)
	dist := offset - h.lastEnd
	if dist < 0 {
		dist = -dist
	}
	if h.lastEnd < 0 || dist > h.params.NearThreshold {
		t += h.params.SeekTime
		seek = true
	}
	if h.started && write != h.lastWrite {
		t += h.params.Turnaround
	}
	h.lastEnd = offset + size
	h.lastWrite = write
	h.started = true
	return t, seek
}

// DeviceClock computes the caller-observed service time of uncontended
// requests against a device. Implemented by HeadClock (single disk) and
// ArrayClock; the fast path drives whichever matches the cluster spec.
type DeviceClock interface {
	// OpTime reports the blocking time of one logical read or write and
	// advances the device state exactly as the DES device would.
	OpTime(offset, size int64, write bool) units.Duration
}

// OpTime implements DeviceClock for a single uncontended disk: with an
// empty queue, Disk.Read/Write block the caller for exactly the service
// time (acquire and release are free when nothing is queued).
func (h *HeadClock) OpTime(offset, size int64, write bool) units.Duration {
	if size == 0 {
		// Disk.Read/Write return before touching head state.
		return 0
	}
	t, _ := h.ServiceTime(offset, size, write)
	return t
}

// ArrayClock mirrors Array timing for a contention-free caller: every
// member request of one logical op starts at the same instant (the DES
// spawns all chunk helpers at the issuing time), so the op's blocking time
// is the maximum member service time; RAID5 sub-stripe writes decompose
// into head/middle/tail exactly as Array.Write does.
type ArrayClock struct {
	level      RAIDLevel
	stripeUnit int64
	members    []HeadClock
}

// NewArrayClock returns a clock for a healthy array of n identical members.
func NewArrayClock(level RAIDLevel, n int, stripeUnit int64, disk DiskParams) *ArrayClock {
	a := &ArrayClock{level: level, stripeUnit: stripeUnit, members: make([]HeadClock, n)}
	for i := range a.members {
		a.members[i] = HeadClock{params: disk, lastEnd: -1}
	}
	return a
}

// dataDisks mirrors Array.dataDisks.
func (a *ArrayClock) dataDisks() int {
	if a.level == RAID5 {
		return len(a.members) - 1
	}
	return len(a.members)
}

// issueTime mirrors Array.issue on a healthy array: all chunk helpers are
// spawned at the same virtual instant against distinct member queues, so
// each member's (sequential, per-chunk) service chain starts immediately
// and the caller unblocks at the slowest member.
func (a *ArrayClock) issueTime(chunks []chunk, write, rmw bool) units.Duration {
	var max units.Duration
	for _, c := range chunks {
		m := &a.members[c.disk]
		var t units.Duration
		if write && rmw {
			// Read-modify-write: read old data, write data, write parity —
			// three sequential member ops, same order as Array.issue.
			t1, _ := m.ServiceTime(c.offset, c.size, false)
			t2, _ := m.ServiceTime(c.offset, c.size, true)
			t3, _ := m.ServiceTime(c.offset, c.size, true)
			t = t1 + t2 + t3
		} else {
			t, _ = m.ServiceTime(c.offset, c.size, write)
		}
		if t > max {
			max = t
		}
	}
	return max
}

// OpTime implements DeviceClock, mirroring Array.Read / Array.Write on a
// healthy array with an idle controller queue.
func (a *ArrayClock) OpTime(offset, size int64, write bool) units.Duration {
	if size <= 0 {
		return 0
	}
	if !write {
		return a.issueTime(stripeSplit(a.stripeUnit, len(a.members), offset, size), false, false)
	}
	if a.level != RAID5 {
		return a.issueTime(stripeSplit(a.stripeUnit, len(a.members), offset, size), true, false)
	}
	stripe := a.stripeUnit * int64(a.dataDisks())
	parts, n := raid5Parts(offset, size, stripe)
	var total units.Duration
	for _, part := range parts[:n] {
		total += a.issueTime(stripeSplit(a.stripeUnit, len(a.members), part.off, part.size), true, part.rmw)
	}
	return total
}

// CacheLedger is the dirty-extent bookkeeping of a WriteCache, exported so
// the fast path's flusher model gathers chunks in exactly the elevator
// (SCAN) order the simulated flusher uses.
type CacheLedger struct {
	d dirtySet
}

// NewCacheLedger returns a ledger with the cache's flush chunk size.
func NewCacheLedger(chunk int64) *CacheLedger {
	return &CacheLedger{d: dirtySet{chunk: chunk}}
}

// Add records a dirty extent (WriteCache deposit).
func (l *CacheLedger) Add(offset, size int64) {
	l.d.add(cacheExtent{offset, size})
}

// Gather pops the next flush chunk in elevator order.
func (l *CacheLedger) Gather() (off, n int64) { return l.d.gather() }

// Dirty reports whether any extent remains unflushed.
func (l *CacheLedger) Dirty() bool { return len(l.d.extents) > 0 }

// RecentIndex is the WriteCache's recently-written read index, exported for
// the fast path's read-hit decisions.
type RecentIndex struct {
	r recentIndex
}

// NewRecentIndex returns an index bounded to capacity bytes.
func NewRecentIndex(capacity int64) *RecentIndex {
	return &RecentIndex{r: recentIndex{capacity: capacity, m: make(map[int64]int64)}}
}

// Remember indexes a written extent (evicting the oldest beyond capacity).
func (x *RecentIndex) Remember(offset, size int64) {
	x.r.remember(cacheExtent{offset, size})
}

// Hit reports whether [offset, offset+size) is fully cached.
func (x *RecentIndex) Hit(offset, size int64) bool { return x.r.hit(offset, size) }

// Invalidate drops the whole index (DropCaches).
func (x *RecentIndex) Invalidate() { x.r.invalidate() }
