// Package disksim models block storage devices: rotational disks, RAID
// arrays, JBOD sets and write-back caches. The service model is first-order
// but mechanism-faithful: sequential streaming runs at the platter rate,
// discontiguous accesses pay seek time, RAID0/5 scale with member count,
// RAID5 sub-stripe writes pay the read-modify-write penalty, and a
// write-back cache absorbs bursts at memory speed while draining at device
// speed. These are the mechanisms behind the BW_PK / BW_MD split that the
// paper's Tables IX and X measure.
package disksim

import (
	"fmt"

	"iophases/internal/des"
	"iophases/internal/faults"
	"iophases/internal/obs"
	"iophases/internal/units"
)

// diskMetrics bundles the aggregate run-telemetry handles shared by every
// Disk. Handles are nil unless telemetry was enabled before the disk was
// built, so the disabled path costs one branch per counter — no map lookups
// on the request path (pinned by the allocs/op gate in bench_test.go).
type diskMetrics struct {
	readOps    *obs.Counter
	writeOps   *obs.Counter
	readBytes  *obs.Counter
	writeBytes *obs.Counter
	seeks      *obs.Counter
	readSize   *obs.Histogram
	writeSize  *obs.Histogram
	queueWait  *obs.Histogram // microseconds of virtual time spent queued
}

func newDiskMetrics() diskMetrics {
	h := obs.Hot()
	if h == nil {
		return diskMetrics{}
	}
	return diskMetrics{
		readOps:    h.Counter("disksim/read_ops"),
		writeOps:   h.Counter("disksim/write_ops"),
		readBytes:  h.Counter("disksim/read_bytes"),
		writeBytes: h.Counter("disksim/write_bytes"),
		seeks:      h.Counter("disksim/seeks"),
		readSize:   h.Histogram("disksim/read_size"),
		writeSize:  h.Histogram("disksim/write_size"),
		queueWait:  h.Histogram("disksim/queue_wait_us"),
	}
}

// Counters are cumulative per-device activity counters, the simulator's
// equivalent of /proc/diskstats (what `iostat -x` reads).
type Counters struct {
	ReadOps    int64
	WriteOps   int64
	ReadBytes  int64
	WriteBytes int64
	BusyTime   units.Duration
	Seeks      int64
}

// SectorsRead reports read volume in 512-byte sectors, the unit iostat and
// Figure 8 of the paper use.
func (c Counters) SectorsRead() int64 { return c.ReadBytes / 512 }

// SectorsWritten reports write volume in 512-byte sectors.
func (c Counters) SectorsWritten() int64 { return c.WriteBytes / 512 }

// Device is anything that can service byte-addressed reads and writes in
// virtual time.
type Device interface {
	// Read services a read of size bytes at offset, blocking the process.
	Read(p *des.Proc, offset, size int64)
	// Write services a write of size bytes at offset, blocking the process.
	Write(p *des.Proc, offset, size int64)
	// Counters reports cumulative activity.
	Counters() Counters
	// Name identifies the device in reports.
	Name() string
	// Capacity reports the device size in bytes.
	Capacity() int64
}

// DiskParams describe a single rotational disk.
type DiskParams struct {
	SeqReadBW  units.Bandwidth // sustained sequential read rate
	SeqWriteBW units.Bandwidth // sustained sequential write rate
	SeekTime   units.Duration  // average seek + rotational latency
	Overhead   units.Duration  // per-request command overhead
	CapacityB  int64           // usable capacity in bytes
	// NearThreshold is the offset discontinuity below which a request is
	// still treated as sequential (track buffer / short seek).
	NearThreshold int64
	// Turnaround is the extra cost of switching between reading and
	// writing (write-cache flush, lost rotation). It is what makes an
	// interleaved write-read stream slower than the average of a pure
	// write stream and a pure read stream — the effect behind the
	// paper's ≈50% characterization error on MADBench2's phase 3.
	Turnaround units.Duration
}

// SATA7200 returns parameters for a ~2008-era 7200 rpm SATA disk, the class
// of device in the Aohyper cluster's compute and PVFS I/O nodes.
func SATA7200(capacity int64) DiskParams {
	return DiskParams{
		SeqReadBW:     units.MBps(78),
		SeqWriteBW:    units.MBps(72),
		SeekTime:      8500 * units.Microsecond,
		Overhead:      120 * units.Microsecond,
		CapacityB:     capacity,
		NearThreshold: 1 * units.MiB,
		Turnaround:    6 * units.Millisecond,
	}
}

// SAS15K returns parameters for a 15k rpm SAS disk, the class in
// configuration C's IBM x3550 nodes and Finisterrae's SFS20 cabins.
func SAS15K(capacity int64) DiskParams {
	return DiskParams{
		SeqReadBW:     units.MBps(120),
		SeqWriteBW:    units.MBps(110),
		SeekTime:      5500 * units.Microsecond,
		Overhead:      80 * units.Microsecond,
		CapacityB:     capacity,
		NearThreshold: 1 * units.MiB,
		Turnaround:    3 * units.Millisecond,
	}
}

// Disk is a single spindle with a FIFO request queue.
type Disk struct {
	name   string
	params DiskParams
	queue  *des.Resource
	head   HeadClock // head-position timing state (shared with mirror.go)
	ctr    Counters
	met    diskMetrics
	flt    *faults.Injector // nil on a healthy cluster
}

// NewDisk creates a disk on the engine.
func NewDisk(eng *des.Engine, name string, params DiskParams) *Disk {
	if params.SeqReadBW <= 0 || params.SeqWriteBW <= 0 {
		panic(fmt.Sprintf("disksim: disk %q without bandwidth", name))
	}
	return &Disk{
		name:   name,
		params: params,
		queue:  des.NewResource(eng, "disk:"+name, 1),
		head:   HeadClock{params: params, lastEnd: -1},
		met:    newDiskMetrics(),
		flt:    faults.For(eng),
	}
}

func (d *Disk) Name() string    { return d.name }
func (d *Disk) Capacity() int64 { return d.params.CapacityB }

// serviceTime computes the duration of one request and updates head state.
// The timing model lives in HeadClock so the analytic fast path advances
// the identical formulas; this wrapper only keeps the seek counters.
func (d *Disk) serviceTime(offset, size int64, write bool) units.Duration {
	t, seek := d.head.ServiceTime(offset, size, write)
	if seek {
		d.ctr.Seeks++
		d.met.seeks.Inc()
	}
	return t
}

func (d *Disk) Read(p *des.Proc, offset, size int64) {
	if size == 0 {
		// A zero-byte read moves no data and, on a real device, never
		// leaves the submitting host: no seek, no counter, no histogram
		// sample (the seed charged a full seek here and polluted
		// disksim/read_size with zeros).
		return
	}
	d.acquire(p)
	t := d.serviceTime(offset, size, false)
	if d.flt != nil {
		t = d.flt.DiskTime(d.name, p.Now(), t)
	}
	p.Sleep(t)
	d.queue.Release(1)
	d.ctr.ReadOps++
	d.ctr.ReadBytes += size
	d.ctr.BusyTime += t
	d.met.readOps.Inc()
	d.met.readBytes.Add(size)
	d.met.readSize.Observe(size)
}

func (d *Disk) Write(p *des.Proc, offset, size int64) {
	if size == 0 {
		return
	}
	d.acquire(p)
	t := d.serviceTime(offset, size, true)
	if d.flt != nil {
		t = d.flt.DiskTime(d.name, p.Now(), t)
	}
	p.Sleep(t)
	d.queue.Release(1)
	d.ctr.WriteOps++
	d.ctr.WriteBytes += size
	d.ctr.BusyTime += t
	d.met.writeOps.Inc()
	d.met.writeBytes.Add(size)
	d.met.writeSize.Observe(size)
}

// acquire takes the request queue, observing the virtual time spent waiting
// behind other requests. The Now() reads happen only when telemetry is on,
// so the disabled path is a single branch around a plain Acquire.
func (d *Disk) acquire(p *des.Proc) {
	if d.met.queueWait == nil {
		d.queue.Acquire(p, 1)
		return
	}
	before := p.Now()
	d.queue.Acquire(p, 1)
	d.met.queueWait.Observe(int64((p.Now() - before) / units.Microsecond))
}

func (d *Disk) Counters() Counters { return d.ctr }

// StreamRate reports the sustained sequential rate for the direction.
func (d *Disk) StreamRate(write bool) units.Bandwidth {
	if write {
		return d.params.SeqWriteBW
	}
	return d.params.SeqReadBW
}
