package disksim

import (
	"testing"

	"iophases/internal/des"
	"iophases/internal/faults"
	"iophases/internal/obs"
	"iophases/internal/units"
)

// measureOn is measure with a fault schedule attached before the device is
// built, mirroring cluster.Build's ordering.
func measureOn(t *testing.T, sch *faults.Schedule, fn func(eng *des.Engine, p *des.Proc)) units.Duration {
	t.Helper()
	eng := des.NewEngine()
	if sch != nil {
		faults.Attach(eng, sch, "test")
	}
	var took units.Duration
	eng.Spawn("m", func(p *des.Proc) {
		start := p.Now()
		fn(eng, p)
		took = p.Now() - start
	})
	eng.Run()
	return took
}

func TestZeroSizeAccessIsFreeNoOp(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	obs.Hot().Reset()

	took := measure(t, func(eng *des.Engine, p *des.Proc) {
		d := NewDisk(eng, "d", testDiskParams())
		d.Read(p, 0, 0)
		d.Write(p, 512, 0)
		if d.Counters() != (Counters{}) {
			t.Errorf("zero-size access changed counters: %+v", d.Counters())
		}
		// A real read afterwards still behaves normally.
		d.Read(p, 0, units.MiB)
		if c := d.Counters(); c.ReadOps != 1 || c.ReadBytes != units.MiB {
			t.Errorf("counters after real read: %+v", c)
		}
	})
	if took <= 0 {
		t.Fatal("real read took no time")
	}
	// The seed charged a full seek for zero-size reads and polluted the
	// request-size histogram with zero samples.
	if n := obs.Hot().Histogram("disksim/read_size").Count(); n != 1 {
		t.Fatalf("disksim/read_size has %d samples, want 1 (no zero-size sample)", n)
	}
	if n := obs.Hot().Histogram("disksim/write_size").Count(); n != 0 {
		t.Fatalf("disksim/write_size has %d samples, want 0", n)
	}
}

func TestSlowDiskFaultScalesServiceTime(t *testing.T) {
	read := func(sch *faults.Schedule) units.Duration {
		return measureOn(t, sch, func(eng *des.Engine, p *des.Proc) {
			d := NewDisk(eng, "ion0/d0", testDiskParams())
			d.Read(p, 0, 64*units.MiB)
		})
	}
	healthy := read(nil)
	slow := read(&faults.Schedule{Name: "s", Effects: []faults.Effect{
		{Kind: faults.SlowDisk, Factor: 3},
	}})
	if slow <= 2*healthy || slow >= 4*healthy {
		t.Fatalf("slow-disk factor 3: healthy %v, degraded %v", healthy, slow)
	}
	// An effect matching a different disk leaves this one untouched.
	other := read(&faults.Schedule{Name: "o", Effects: []faults.Effect{
		{Kind: faults.SlowDisk, Match: "ion1", Factor: 3},
	}})
	if other != healthy {
		t.Fatalf("unmatched slow-disk changed service time: %v vs %v", other, healthy)
	}
}

func TestRAIDMemberLostDegradesWindow(t *testing.T) {
	mkArray := func(eng *des.Engine) *Array {
		members := make([]*Disk, 4)
		for i := range members {
			members[i] = NewDisk(eng, "a/d", testDiskParams())
		}
		return NewArray(eng, "a", RAID5, members, 64*1024)
	}
	// Lost member for the first 10 virtual seconds, healthy after.
	sch := &faults.Schedule{Name: "r", Effects: []faults.Effect{
		{Kind: faults.RAIDMemberLost, Member: 0, ForSec: 10},
	}}
	var inWindow, afterWindow units.Duration
	measureOn(t, sch, func(eng *des.Engine, p *des.Proc) {
		a := mkArray(eng)
		start := p.Now()
		a.Read(p, 0, 4*units.MiB) // chunks on the lost member reconstruct
		inWindow = p.Now() - start

		p.Sleep(20*units.Second - p.Now())
		start = p.Now()
		a.Read(p, 0, 4*units.MiB)
		afterWindow = p.Now() - start
	})
	if inWindow <= afterWindow {
		t.Fatalf("degraded read %v not slower than rebuilt read %v", inWindow, afterWindow)
	}

	// RAID0 has no redundancy: the effect must not apply.
	var r0 units.Duration
	measureOn(t, sch, func(eng *des.Engine, p *des.Proc) {
		members := make([]*Disk, 4)
		for i := range members {
			members[i] = NewDisk(eng, "a/d", testDiskParams())
		}
		a := NewArray(eng, "a", RAID0, members, 64*1024)
		start := p.Now()
		a.Read(p, 0, 4*units.MiB)
		r0 = p.Now() - start
	})
	healthy0 := measure(t, func(eng *des.Engine, p *des.Proc) {
		members := make([]*Disk, 4)
		for i := range members {
			members[i] = NewDisk(eng, "a/d", testDiskParams())
		}
		a := NewArray(eng, "a", RAID0, members, 64*1024)
		a.Read(p, 0, 4*units.MiB)
	})
	if r0 != healthy0 {
		t.Fatalf("raid-member-lost affected RAID0: %v vs %v", r0, healthy0)
	}
}
