package disksim

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"iophases/internal/des"
	"iophases/internal/units"
)

func testDiskParams() DiskParams {
	return DiskParams{
		SeqReadBW:     units.MBps(100),
		SeqWriteBW:    units.MBps(80),
		SeekTime:      10 * units.Millisecond,
		Overhead:      0,
		CapacityB:     100 * units.GiB,
		NearThreshold: units.MiB,
	}
}

// measure runs fn in a fresh engine and returns the virtual time it took.
func measure(t *testing.T, fn func(eng *des.Engine, p *des.Proc)) units.Duration {
	t.Helper()
	eng := des.NewEngine()
	var took units.Duration
	eng.Spawn("m", func(p *des.Proc) {
		start := p.Now()
		fn(eng, p)
		took = p.Now() - start
	})
	eng.Run()
	return took
}

func TestDiskSequentialReadRate(t *testing.T) {
	took := measure(t, func(eng *des.Engine, p *des.Proc) {
		d := NewDisk(eng, "d", testDiskParams())
		for i := int64(0); i < 10; i++ {
			d.Read(p, i*10*units.MiB, 10*units.MiB)
		}
	})
	// 100 MiB at 100 MB/s + one initial seek.
	want := units.Second + 10*units.Millisecond
	if took != want {
		t.Fatalf("sequential read took %v, want %v", took, want)
	}
}

func TestDiskRandomPaysSeeks(t *testing.T) {
	seq := measure(t, func(eng *des.Engine, p *des.Proc) {
		d := NewDisk(eng, "d", testDiskParams())
		for i := int64(0); i < 100; i++ {
			d.Read(p, i*64*units.KiB, 64*units.KiB)
		}
	})
	rnd := measure(t, func(eng *des.Engine, p *des.Proc) {
		d := NewDisk(eng, "d", testDiskParams())
		for i := int64(0); i < 100; i++ {
			// 100 MiB stride defeats the near-threshold.
			d.Read(p, (i%2)*50*units.GiB+i*64*units.KiB, 64*units.KiB)
		}
	})
	if rnd < 10*seq {
		t.Fatalf("random (%v) should be ≫ sequential (%v)", rnd, seq)
	}
}

func TestDiskCounters(t *testing.T) {
	eng := des.NewEngine()
	d := NewDisk(eng, "d", testDiskParams())
	eng.Spawn("m", func(p *des.Proc) {
		d.Write(p, 0, 4*units.MiB)
		d.Read(p, 0, 2*units.MiB)
	})
	eng.Run()
	c := d.Counters()
	if c.WriteBytes != 4*units.MiB || c.ReadBytes != 2*units.MiB {
		t.Fatalf("counters %+v", c)
	}
	if c.SectorsWritten() != 4*units.MiB/512 {
		t.Fatalf("sectors written %d", c.SectorsWritten())
	}
	if c.WriteOps != 1 || c.ReadOps != 1 {
		t.Fatalf("ops %+v", c)
	}
}

func TestDiskQueueSerializes(t *testing.T) {
	eng := des.NewEngine()
	d := NewDisk(eng, "d", testDiskParams())
	for i := 0; i < 4; i++ {
		eng.Spawn(fmt.Sprintf("w%d", i), func(p *des.Proc) {
			d.Write(p, 0, 80*units.MiB)
		})
	}
	eng.Run()
	// 4 × 1s writes must serialize (plus one seek; offset 0 repeats so
	// only the first seeks).
	if eng.Now() < 4*units.Second {
		t.Fatalf("parallel writes finished in %v; disk must serialize", eng.Now())
	}
}

func TestRAID0ScalesBandwidth(t *testing.T) {
	single := measure(t, func(eng *des.Engine, p *des.Proc) {
		d := NewDisk(eng, "d", testDiskParams())
		d.Read(p, 0, 400*units.MiB)
	})
	striped := measure(t, func(eng *des.Engine, p *des.Proc) {
		var members []*Disk
		for i := 0; i < 4; i++ {
			members = append(members, NewDisk(eng, fmt.Sprintf("d%d", i), testDiskParams()))
		}
		a := NewArray(eng, "r0", RAID0, members, 256*units.KiB)
		a.Read(p, 0, 400*units.MiB)
	})
	speedup := float64(single) / float64(striped)
	if speedup < 3.5 || speedup > 4.5 {
		t.Fatalf("RAID0x4 speedup = %.2f, want ≈4", speedup)
	}
}

func TestRAID5FullStripeAvoidsRMW(t *testing.T) {
	newR5 := func(eng *des.Engine) *Array {
		var members []*Disk
		for i := 0; i < 5; i++ {
			members = append(members, NewDisk(eng, fmt.Sprintf("d%d", i), testDiskParams()))
		}
		return NewArray(eng, "r5", RAID5, members, 256*units.KiB)
	}
	stripe := int64(4) * 256 * units.KiB // 4 data disks × unit
	full := measure(t, func(eng *des.Engine, p *des.Proc) {
		a := newR5(eng)
		for i := int64(0); i < 64; i++ {
			a.Write(p, i*stripe, stripe)
		}
	})
	partial := measure(t, func(eng *des.Engine, p *des.Proc) {
		a := newR5(eng)
		for i := int64(0); i < 64; i++ {
			// Same volume in misaligned sub-stripe writes.
			a.Write(p, i*stripe+128*units.KiB, stripe)
		}
	})
	if float64(partial) < 1.5*float64(full) {
		t.Fatalf("sub-stripe writes (%v) should pay RMW vs full-stripe (%v)", partial, full)
	}
}

func TestRAID5CapacityExcludesParity(t *testing.T) {
	eng := des.NewEngine()
	var members []*Disk
	for i := 0; i < 5; i++ {
		members = append(members, NewDisk(eng, fmt.Sprintf("d%d", i), testDiskParams()))
	}
	a := NewArray(eng, "r5", RAID5, members, 256*units.KiB)
	if a.Capacity() != 4*100*units.GiB {
		t.Fatalf("capacity = %d", a.Capacity())
	}
	if a.PeakBandwidth(false).MBpsValue() != 400 {
		t.Fatalf("peak read = %v", a.PeakBandwidth(false))
	}
}

func TestStripeChunksCoverExtent(t *testing.T) {
	f := func(off uint32, sz uint16) bool {
		eng := des.NewEngine()
		var members []*Disk
		for i := 0; i < 4; i++ {
			members = append(members, NewDisk(eng, fmt.Sprintf("d%d", i), testDiskParams()))
		}
		a := NewArray(eng, "r0", RAID0, members, 64*units.KiB)
		offset := int64(off)
		size := int64(sz) + 1
		var total int64
		for _, c := range a.stripeChunks(offset, size) {
			if c.size <= 0 || c.disk < 0 || c.disk >= 4 {
				return false
			}
			total += c.size
		}
		return total == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCoalesceMergesSequentialRuns(t *testing.T) {
	eng := des.NewEngine()
	var members []*Disk
	for i := 0; i < 4; i++ {
		members = append(members, NewDisk(eng, fmt.Sprintf("d%d", i), testDiskParams()))
	}
	a := NewArray(eng, "r0", RAID0, members, 64*units.KiB)
	chunks := a.stripeChunks(0, 16*units.MiB)
	if len(chunks) != 4 {
		t.Fatalf("16 MiB over 4 disks should coalesce to 4 chunks, got %d", len(chunks))
	}
	for _, c := range chunks {
		if c.size != 4*units.MiB {
			t.Fatalf("chunk %+v, want 4 MiB each", c)
		}
	}
}

func TestWriteCacheAbsorbsBurst(t *testing.T) {
	eng := des.NewEngine()
	d := NewDisk(eng, "d", testDiskParams())
	c := NewWriteCache(eng, "c", d, CacheParams{Capacity: 64 * units.MiB, MemBW: units.GBps(2), Chunk: 4 * units.MiB})
	var burst units.Duration
	eng.Spawn("w", func(p *des.Proc) {
		start := p.Now()
		c.Write(p, 0, 32*units.MiB)
		burst = p.Now() - start
		c.Drain(p)
	})
	eng.Run()
	diskTime := units.TransferTime(32*units.MiB, testDiskParams().SeqWriteBW)
	if burst >= diskTime/4 {
		t.Fatalf("burst took %v, want ≪ disk time %v", burst, diskTime)
	}
	if got := d.Counters().WriteBytes; got != 32*units.MiB {
		t.Fatalf("drained %d bytes to disk", got)
	}
}

func TestWriteCacheSustainedPacesAtDiskRate(t *testing.T) {
	eng := des.NewEngine()
	d := NewDisk(eng, "d", testDiskParams())
	c := NewWriteCache(eng, "c", d, CacheParams{Capacity: 16 * units.MiB, MemBW: units.GBps(2), Chunk: 4 * units.MiB})
	var took units.Duration
	eng.Spawn("w", func(p *des.Proc) {
		start := p.Now()
		for i := int64(0); i < 32; i++ {
			c.Write(p, i*16*units.MiB, 16*units.MiB)
		}
		c.Drain(p)
		took = p.Now() - start
	})
	eng.Run()
	wantSec := float64(512*units.MiB) / float64(units.MBps(80))
	if math.Abs(took.Seconds()-wantSec) > 0.20*wantSec {
		t.Fatalf("sustained 512 MiB took %v, want ≈%.2fs (disk-paced)", took, wantSec)
	}
}

func TestWriteCacheReadHit(t *testing.T) {
	eng := des.NewEngine()
	d := NewDisk(eng, "d", testDiskParams())
	c := NewWriteCache(eng, "c", d, DefaultCacheParams())
	var hit, miss units.Duration
	eng.Spawn("w", func(p *des.Proc) {
		c.Write(p, 0, 8*units.MiB)
		start := p.Now()
		c.Read(p, 0, 8*units.MiB) // just written: hit
		hit = p.Now() - start
		start = p.Now()
		c.Read(p, units.GiB, 8*units.MiB) // cold: miss
		miss = p.Now() - start
	})
	eng.Run()
	if hit >= miss/4 {
		t.Fatalf("hit %v should be ≪ miss %v", hit, miss)
	}
}

func TestDegradedRAID5ReadsSlower(t *testing.T) {
	read := func(degrade bool) units.Duration {
		return measure(t, func(eng *des.Engine, p *des.Proc) {
			var members []*Disk
			for i := 0; i < 5; i++ {
				members = append(members, NewDisk(eng, fmt.Sprintf("d%d", i), testDiskParams()))
			}
			a := NewArray(eng, "r5", RAID5, members, 256*units.KiB)
			if degrade {
				a.Fail(2)
			}
			for i := int64(0); i < 32; i++ {
				a.Read(p, i*4*units.MiB, 4*units.MiB)
			}
		})
	}
	healthy, degraded := read(false), read(true)
	if degraded <= healthy {
		t.Fatalf("degraded reads (%v) should cost more than healthy (%v)", degraded, healthy)
	}
	if float64(degraded) > 3*float64(healthy) {
		t.Fatalf("degraded overhead implausible: %v vs %v", degraded, healthy)
	}
}

func TestDegradedRAID5StillWrites(t *testing.T) {
	eng := des.NewEngine()
	var members []*Disk
	for i := 0; i < 5; i++ {
		members = append(members, NewDisk(eng, fmt.Sprintf("d%d", i), testDiskParams()))
	}
	a := NewArray(eng, "r5", RAID5, members, 256*units.KiB)
	a.Fail(0)
	if !a.Degraded() {
		t.Fatal("not degraded")
	}
	eng.Spawn("w", func(p *des.Proc) {
		a.Write(p, 0, 8*units.MiB)
	})
	eng.Run()
	if members[0].Counters().WriteBytes != 0 {
		t.Fatal("failed member received writes")
	}
	if a.Counters().WriteBytes != 8*units.MiB {
		t.Fatalf("logical writes %d", a.Counters().WriteBytes)
	}
}

func TestRAID0CannotFail(t *testing.T) {
	eng := des.NewEngine()
	var members []*Disk
	for i := 0; i < 2; i++ {
		members = append(members, NewDisk(eng, fmt.Sprintf("d%d", i), testDiskParams()))
	}
	a := NewArray(eng, "r0", RAID0, members, 256*units.KiB)
	defer func() {
		if recover() == nil {
			t.Fatal("RAID0 Fail did not panic")
		}
	}()
	a.Fail(0)
}

func TestSecondFailurePanics(t *testing.T) {
	eng := des.NewEngine()
	var members []*Disk
	for i := 0; i < 3; i++ {
		members = append(members, NewDisk(eng, fmt.Sprintf("d%d", i), testDiskParams()))
	}
	a := NewArray(eng, "r5", RAID5, members, 256*units.KiB)
	a.Fail(1)
	defer func() {
		if recover() == nil {
			t.Fatal("double failure accepted")
		}
	}()
	a.Fail(2)
}

func TestJBODIndependentDisks(t *testing.T) {
	eng := des.NewEngine()
	j := NewJBOD(eng, "j", 3, testDiskParams())
	if j.Len() != 3 {
		t.Fatalf("len = %d", j.Len())
	}
	for i := 0; i < 3; i++ {
		i := i
		eng.Spawn(fmt.Sprintf("w%d", i), func(p *des.Proc) {
			j.Disk(i).Write(p, 0, 80*units.MiB)
		})
	}
	eng.Run()
	// Independent disks run in parallel: 1s + seek, not 3s.
	if eng.Now() > 1200*units.Millisecond {
		t.Fatalf("JBOD parallel writes took %v", eng.Now())
	}
}

func TestPresetDiskParams(t *testing.T) {
	sata := SATA7200(80 * units.GiB)
	sas := SAS15K(160 * units.GiB)
	if sas.SeqReadBW <= sata.SeqReadBW {
		t.Fatal("SAS should outrun SATA")
	}
	if sas.SeekTime >= sata.SeekTime {
		t.Fatal("SAS should seek faster than SATA")
	}
	if sata.CapacityB != 80*units.GiB {
		t.Fatalf("capacity %d", sata.CapacityB)
	}
}
