package disksim

import (
	"fmt"

	"iophases/internal/des"
	"iophases/internal/units"
)

// WriteCache is a write-back cache in front of a Device: writes are
// absorbed at memory speed while the cache has room and a background
// flusher drains dirty data to the device. Reads of recently written data
// hit the cache. This is the OS page cache / RAID controller cache whose
// effect makes measured write bandwidth exceed read bandwidth on the
// paper's NFS configuration (Table IX: 89–93 MB/s writes vs 66–68 MB/s
// reads).
type WriteCache struct {
	eng      *des.Engine
	name     string
	dev      Device
	capacity int64
	memBW    units.Bandwidth
	chunk    int64

	level    int64 // dirty bytes not yet flushed
	dirty    dirtySet
	flushing bool
	waiters  []*des.Proc

	// Recently-written index: a FIFO of write extents bounded to the
	// cache capacity in bytes, approximating an LRU page cache. Reads
	// hit only data among the most recent `capacity` bytes written —
	// older data has been evicted, as on a real server under streaming
	// load (the paper's FZ ≥ 2·RAM rule exists to force exactly this).
	recent recentIndex
}

type cacheExtent struct {
	offset, size int64
}

// dirtySet tracks dirty extents in offset order plus the flusher's SCAN
// (elevator) position: flushing resumes at or above scanPos and wraps when
// nothing dirty remains higher. Without it the flusher would restart at
// the lowest dirty offset after every chunk and thrash between concurrent
// streams' regions, paying a seek per chunk. Factored out of WriteCache so
// the fast path's flusher model (mirror.go's CacheLedger) gathers chunks
// in exactly the same order.
type dirtySet struct {
	extents []cacheExtent
	scanPos int64
	chunk   int64 // flusher request size
}

// recentIndex is the recently-written read index behind WriteCache.Read,
// shared with mirror.go's RecentIndex.
type recentIndex struct {
	m        map[int64]int64 // offset -> end
	q        []cacheExtent
	bytes    int64
	capacity int64
}

// CacheParams configure a WriteCache.
type CacheParams struct {
	Capacity int64           // dirty-data limit
	MemBW    units.Bandwidth // absorption rate (memory copy)
	Chunk    int64           // flusher request size
}

// DefaultCacheParams models a node with ~1–2 GB RAM dedicating a few
// hundred MB to dirty pages.
func DefaultCacheParams() CacheParams {
	return CacheParams{Capacity: 256 * units.MiB, MemBW: units.GBps(2), Chunk: 4 * units.MiB}
}

// NewWriteCache wraps dev.
func NewWriteCache(eng *des.Engine, name string, dev Device, params CacheParams) *WriteCache {
	if params.Capacity <= 0 || params.MemBW <= 0 || params.Chunk <= 0 {
		panic(fmt.Sprintf("disksim: cache %q bad params %+v", name, params))
	}
	return &WriteCache{
		eng:      eng,
		name:     name,
		dev:      dev,
		capacity: params.Capacity,
		memBW:    params.MemBW,
		chunk:    params.Chunk,
		dirty:    dirtySet{chunk: params.Chunk},
		recent:   recentIndex{capacity: params.Capacity, m: make(map[int64]int64)},
	}
}

func (c *WriteCache) Name() string    { return c.name }
func (c *WriteCache) Capacity() int64 { return c.dev.Capacity() }

// Write absorbs data at memory speed while space is available and blocks
// behind the flusher when the cache is full, pacing sustained writes at
// device speed — the fluid write-back model.
func (c *WriteCache) Write(p *des.Proc, offset, size int64) {
	remaining := size
	for remaining > 0 {
		for c.capacity-c.level <= 0 {
			c.waiters = append(c.waiters, p)
			p.Park("cache full " + c.name)
		}
		n := c.capacity - c.level
		if n > remaining {
			n = remaining
		}
		p.Sleep(units.TransferTime(n, c.memBW))
		c.level += n
		c.dirty.add(cacheExtent{offset, n})
		c.recent.remember(cacheExtent{offset, n})
		offset += n
		remaining -= n
		c.kickFlusher()
	}
}

// add inserts an extent into the offset-sorted dirty list, merging with
// neighbours — the page cache's per-file radix tree, which lets the
// flusher write large sequential clusters no matter how many concurrent
// streams interleaved their arrivals.
func (s *dirtySet) add(e cacheExtent) {
	i := 0
	for i < len(s.extents) && s.extents[i].offset < e.offset {
		i++
	}
	// Merge with predecessor.
	if i > 0 && s.extents[i-1].offset+s.extents[i-1].size == e.offset {
		s.extents[i-1].size += e.size
		// And possibly with successor.
		if i < len(s.extents) && s.extents[i-1].offset+s.extents[i-1].size == s.extents[i].offset {
			s.extents[i-1].size += s.extents[i].size
			s.extents = append(s.extents[:i], s.extents[i+1:]...)
		}
		return
	}
	// Merge with successor.
	if i < len(s.extents) && e.offset+e.size == s.extents[i].offset {
		s.extents[i].offset = e.offset
		s.extents[i].size += e.size
		return
	}
	s.extents = append(s.extents, cacheExtent{})
	copy(s.extents[i+1:], s.extents[i:])
	s.extents[i] = e
}

// remember indexes a written extent and evicts the oldest entries beyond
// the capacity budget.
func (r *recentIndex) remember(e cacheExtent) {
	r.m[e.offset] = e.offset + e.size
	r.q = append(r.q, e)
	r.bytes += e.size
	for r.bytes > r.capacity && len(r.q) > 0 {
		old := r.q[0]
		r.q = r.q[1:]
		r.bytes -= old.size
		if end, ok := r.m[old.offset]; ok && end == old.offset+old.size {
			delete(r.m, old.offset)
		}
	}
}

// hit reports whether the whole extent is indexed (at a matching write
// boundary).
func (r *recentIndex) hit(offset, size int64) bool {
	end, ok := r.m[offset]
	return ok && end >= offset+size
}

// invalidate drops the whole index.
func (r *recentIndex) invalidate() {
	r.m = make(map[int64]int64)
	r.q = nil
	r.bytes = 0
}

// Read serves cache hits at memory speed and misses from the device. A hit
// requires the whole extent to be among the most recent `capacity` bytes
// written (at a matching write boundary); anything older has been evicted.
func (c *WriteCache) Read(p *des.Proc, offset, size int64) {
	if c.recent.hit(offset, size) {
		p.Sleep(units.TransferTime(size, c.memBW))
		return
	}
	c.dev.Read(p, offset, size)
}

// kickFlusher starts the background drain process if not already running.
func (c *WriteCache) kickFlusher() {
	if c.flushing {
		return
	}
	c.flushing = true
	c.eng.Spawn("flusher:"+c.name, func(fp *des.Proc) {
		for len(c.dirty.extents) > 0 {
			off, n := c.dirty.gather()
			c.dev.Write(fp, off, n)
			c.level -= n
			c.wakeWaiters()
		}
		c.flushing = false
	})
}

// gather pops up to one chunk of dirty data from the lowest-offset run
// (elevator order), cutting at chunk-aligned boundaries so steady-state
// flushes stay stripe-aligned. Without large aligned flushes, a full cache
// degenerates into sliver writes that force RAID5 read-modify-write on
// what is really a streaming write.
func (s *dirtySet) gather() (off, n int64) {
	// SCAN: continue from the elevator position, wrapping to the lowest
	// dirty run when the sweep passes the top.
	i := 0
	for i < len(s.extents) && s.extents[i].offset+s.extents[i].size <= s.scanPos {
		i++
	}
	if i == len(s.extents) {
		i = 0
	}
	ext := &s.extents[i]
	off = ext.offset
	if off < s.scanPos && s.scanPos < off+ext.size {
		off = s.scanPos // resume mid-run after a partial flush
	}
	n = ext.offset + ext.size - off
	if n > s.chunk {
		n = s.chunk
	}
	// Align the cut so subsequent gathers start on chunk boundaries.
	if rem := (off + n) % s.chunk; n > rem && off%s.chunk != 0 {
		n -= rem
	}
	// Remove [off, off+n) from the run, splitting if needed.
	switch {
	case off == ext.offset && n == ext.size:
		s.extents = append(s.extents[:i], s.extents[i+1:]...)
	case off == ext.offset:
		ext.offset += n
		ext.size -= n
	case off+n == ext.offset+ext.size:
		ext.size -= n
	default:
		tail := cacheExtent{offset: off + n, size: ext.offset + ext.size - off - n}
		ext.size = off - ext.offset
		s.extents = append(s.extents, cacheExtent{})
		copy(s.extents[i+2:], s.extents[i+1:])
		s.extents[i+1] = tail
	}
	s.scanPos = off + n
	return off, n
}

// wakeWaiters admits blocked writers once a meaningful amount of space is
// free (hysteresis): waking on every freed sliver would let writers refill
// the cache in fragments and re-trigger the sliver cascade.
func (c *WriteCache) wakeWaiters() {
	if free := c.capacity - c.level; free < c.chunk && c.level > 0 {
		return
	}
	waiting := c.waiters
	c.waiters = nil
	for _, w := range waiting {
		c.eng.Unpark(w)
	}
}

// Invalidate clears the recently-written index (echo 3 >
// /proc/sys/vm/drop_caches). Dirty data is unaffected; call Drain first for
// a full flush-and-drop.
func (c *WriteCache) Invalidate() {
	c.recent.invalidate()
}

// Drain blocks until all dirty data reaches the device (fsync / close).
func (c *WriteCache) Drain(p *des.Proc) {
	for c.level > 0 {
		c.waiters = append(c.waiters, p)
		p.Park("cache drain " + c.name)
	}
}

// Level reports current dirty bytes (for tests).
func (c *WriteCache) Level() int64 { return c.level }

// Counters reports the underlying device's counters.
func (c *WriteCache) Counters() Counters { return c.dev.Counters() }

// Inner exposes the wrapped device.
func (c *WriteCache) Inner() Device { return c.dev }
