package disksim

import (
	"fmt"

	"iophases/internal/des"
	"iophases/internal/faults"
	"iophases/internal/units"
)

// RAIDLevel selects the array organization.
type RAIDLevel int

const (
	// RAID0 stripes without redundancy.
	RAID0 RAIDLevel = iota
	// RAID5 stripes with rotating parity; sub-stripe writes pay
	// read-modify-write.
	RAID5
)

// Array is a striped disk array with a single controller queue. Member
// requests are issued to the member disks concurrently through helper
// processes, so a full-stripe access genuinely overlaps the spindles and
// the per-disk counters reflect real member activity (Figure 8 samples
// them).
type Array struct {
	eng        *des.Engine
	name       string
	chunkName  string // precomputed helper-proc name (issue is the hot path)
	level      RAIDLevel
	members    []*Disk
	stripeUnit int64
	queue      *des.Resource
	ctr        Counters
	failed     int              // failed member index, -1 = healthy
	flt        *faults.Injector // nil on a healthy cluster
}

// NewArray builds an array over the given member disks. stripeUnit is the
// per-disk chunk size (the paper's configuration A uses 256 KiB).
func NewArray(eng *des.Engine, name string, level RAIDLevel, members []*Disk, stripeUnit int64) *Array {
	if len(members) < 2 {
		panic(fmt.Sprintf("disksim: array %q needs >= 2 members", name))
	}
	if level == RAID5 && len(members) < 3 {
		panic(fmt.Sprintf("disksim: RAID5 array %q needs >= 3 members", name))
	}
	if stripeUnit <= 0 {
		panic(fmt.Sprintf("disksim: array %q stripe unit %d", name, stripeUnit))
	}
	return &Array{
		eng:        eng,
		name:       name,
		chunkName:  name + "/chunk",
		level:      level,
		members:    members,
		stripeUnit: stripeUnit,
		failed:     -1,
		flt:        faults.For(eng),
		// The controller admits a handful of requests concurrently;
		// member queues provide the real serialization.
		queue: des.NewResource(eng, "raid:"+name, 4),
	}
}

func (a *Array) Name() string { return a.name }

// Capacity reports usable capacity (members minus one for RAID5 parity).
func (a *Array) Capacity() int64 {
	n := int64(len(a.members))
	if a.level == RAID5 {
		n--
	}
	return n * a.members[0].Capacity()
}

// dataDisks reports how many members hold data in each stripe.
func (a *Array) dataDisks() int {
	if a.level == RAID5 {
		return len(a.members) - 1
	}
	return len(a.members)
}

// chunk is one member-disk request derived from striping.
type chunk struct {
	disk   int
	offset int64
	size   int64
}

// stripeChunks splits a logical extent into per-member requests. Data is
// laid out round-robin in stripeUnit chunks across the data disks; for
// RAID5 the parity rotation is approximated by spreading data over all
// members (which matches the aggregate bandwidth behaviour of rotating
// parity).
func (a *Array) stripeChunks(offset, size int64) []chunk {
	return stripeSplit(a.stripeUnit, len(a.members), offset, size)
}

// stripeSplit is the pure striping computation behind stripeChunks, shared
// with ArrayClock so the fast path derives the exact same member requests.
func stripeSplit(stripeUnit int64, nmembers int, offset, size int64) []chunk {
	n := int64(nmembers)
	var out []chunk
	for size > 0 {
		unitIdx := offset / stripeUnit
		within := offset % stripeUnit
		take := stripeUnit - within
		if take > size {
			take = size
		}
		disk := int(unitIdx % n)
		// Member-local offset: stripe row × unit + offset within unit.
		row := unitIdx / n
		out = append(out, chunk{disk: disk, offset: row*stripeUnit + within, size: take})
		offset += take
		size -= take
	}
	return coalesce(out, nmembers)
}

// raidPart is one leg of a RAID5 write's head/middle/tail decomposition.
type raidPart struct {
	off, size int64
	rmw       bool
}

// raid5Parts decomposes a RAID5 write into at most three legs: a partial
// head stripe (read-modify-write), full middle stripes (parity from new
// data alone), and a partial tail (read-modify-write). Returned by value
// so the Array hot path allocates nothing. Shared with ArrayClock.
func raid5Parts(offset, size, stripe int64) (parts [3]raidPart, n int) {
	head := offset % stripe
	if head != 0 {
		head = stripe - head
		if head > size {
			head = size
		}
		parts[n] = raidPart{off: offset, size: head, rmw: true}
		n++
		offset += head
		size -= head
	}
	middle := size - size%stripe
	if middle > 0 {
		parts[n] = raidPart{off: offset, size: middle}
		n++
		offset += middle
		size -= middle
	}
	if size > 0 {
		parts[n] = raidPart{off: offset, size: size, rmw: true}
		n++
	}
	return parts, n
}

// coalesce merges per-disk chunks that are contiguous in member-local space
// (successive stripe rows land back-to-back on each member), so one logical
// request issues at most one member request per disk instead of one per
// stripe unit. Member order is preserved for determinism.
func coalesce(chunks []chunk, ndisks int) []chunk {
	last := make([]int, ndisks) // index+1 of the last chunk kept per disk
	out := chunks[:0]
	for _, c := range chunks {
		if li := last[c.disk]; li > 0 {
			prev := &out[li-1]
			if prev.offset+prev.size == c.offset {
				prev.size += c.size
				continue
			}
		}
		out = append(out, c)
		last[c.disk] = len(out)
	}
	return out
}

// effectiveFailed reports the member lost at now: a permanent Fail() if
// set, otherwise a fault-schedule raid-member-lost window. RAID0 has no
// redundancy, so schedule-driven loss does not apply to it (a permanent
// Fail on RAID0 already panics).
func (a *Array) effectiveFailed(now units.Duration) int {
	failed := a.failed
	if failed < 0 && a.flt != nil && a.level == RAID5 {
		if m, ok := a.flt.LostMember(a.name, now, len(a.members), a.members[0].Capacity()); ok {
			failed = m
		}
	}
	return failed
}

// issue runs the chunks against member disks concurrently and blocks the
// caller until all complete. failed is the member lost for this request
// (-1 when healthy), sampled once per logical request so a rebuild
// completing mid-request cannot split one access across both regimes.
func (a *Array) issue(p *des.Proc, chunks []chunk, write, rmw bool, failed int) {
	wg := des.NewWaitGroup(a.eng)
	wg.Add(len(chunks))
	for _, c := range chunks {
		c := c
		a.eng.Spawn(a.chunkName, func(hp *des.Proc) {
			if c.disk == failed {
				if write {
					// Data destined for the lost member lands in
					// parity only: surviving members absorb an
					// extra parity update of the chunk size.
					alt := a.members[(c.disk+1)%len(a.members)]
					alt.Write(hp, c.offset, c.size)
				} else {
					// Reconstruction: read the chunk's stripe
					// from every surviving member.
					rg := des.NewWaitGroup(a.eng)
					for i, m := range a.members {
						if i == failed {
							continue
						}
						m := m
						rg.Add(1)
						a.eng.Spawn(a.name+"/rebuild", func(rp *des.Proc) {
							m.Read(rp, c.offset, c.size)
							rg.Done()
						})
					}
					rg.Wait(hp)
				}
				wg.Done()
				return
			}
			d := a.members[c.disk]
			if write {
				if rmw {
					// Read-modify-write: the old data (and
					// parity) must be read before the new
					// parity can be written.
					d.Read(hp, c.offset, c.size)
				}
				d.Write(hp, c.offset, c.size)
				if rmw {
					// Parity write on the rotating parity
					// member; charge it to the same disk's
					// queue as an extra op of equal size —
					// aggregate cost matches the classic
					// 4-I/O small-write penalty within 2x.
					d.Write(hp, c.offset, c.size)
				}
			} else {
				d.Read(hp, c.offset, c.size)
			}
			wg.Done()
		})
	}
	wg.Wait(p)
}

// fullStripe reports whether the extent covers whole stripes (so RAID5 can
// compute parity without reading).
func (a *Array) fullStripe(offset, size int64) bool {
	stripe := a.stripeUnit * int64(a.dataDisks())
	return offset%stripe == 0 && size%stripe == 0
}

func (a *Array) Read(p *des.Proc, offset, size int64) {
	a.queue.Acquire(p, 1)
	a.issue(p, a.stripeChunks(offset, size), false, false, a.effectiveFailed(p.Now()))
	a.queue.Release(1)
	a.ctr.ReadOps++
	a.ctr.ReadBytes += size
}

func (a *Array) Write(p *des.Proc, offset, size int64) {
	total := size
	a.queue.Acquire(p, 1)
	failed := a.effectiveFailed(p.Now())
	if a.level != RAID5 {
		a.issue(p, a.stripeChunks(offset, size), true, false, failed)
	} else {
		// RAID5: only the partial-stripe head and tail pay
		// read-modify-write; the aligned middle writes full stripes
		// with parity computed from the new data alone.
		stripe := a.stripeUnit * int64(a.dataDisks())
		parts, n := raid5Parts(offset, size, stripe)
		for _, part := range parts[:n] {
			a.issue(p, a.stripeChunks(part.off, part.size), true, part.rmw, failed)
		}
	}
	a.queue.Release(1)
	a.ctr.WriteOps++
	a.ctr.WriteBytes += total
}

// Counters reports array-level logical counters. Member-level physical
// counters are available via Members().
func (a *Array) Counters() Counters {
	c := a.ctr
	for _, m := range a.members {
		mc := m.Counters()
		if mc.BusyTime > c.BusyTime {
			c.BusyTime = mc.BusyTime // busiest member bounds the array
		}
		c.Seeks += mc.Seeks
	}
	return c
}

// Members exposes the member disks (for device-level monitoring).
func (a *Array) Members() []*Disk { return a.members }

// Fail marks member i failed. RAID5 keeps serving in degraded mode: reads
// of chunks on the failed member reconstruct from every surviving member
// (a full-stripe read per lost chunk); writes skip the lost member.
// RAID0 panics — it has no redundancy.
func (a *Array) Fail(i int) {
	if a.level != RAID5 {
		panic(fmt.Sprintf("disksim: %s: RAID0 cannot lose a member", a.name))
	}
	if i < 0 || i >= len(a.members) {
		panic(fmt.Sprintf("disksim: %s: no member %d", a.name, i))
	}
	if a.failed >= 0 && a.failed != i {
		panic(fmt.Sprintf("disksim: %s: second failure (member %d already lost)", a.name, a.failed))
	}
	a.failed = i
}

// Degraded reports whether a member has failed.
func (a *Array) Degraded() bool { return a.failed >= 0 }

// PeakBandwidth estimates the array's streaming bandwidth for reads or
// writes — the quantity IOzone's sequential test converges to.
func (a *Array) PeakBandwidth(write bool) units.Bandwidth {
	per := a.members[0].params.SeqReadBW
	if write {
		per = a.members[0].params.SeqWriteBW
	}
	n := a.dataDisks()
	return units.Bandwidth(float64(per) * float64(n))
}

// JBOD is a set of independent disks: each file lives wholly on one disk,
// selected by the placement function (round-robin by file id in the PVFS
// configuration of the paper). JBOD itself is not a Device — callers pick a
// member per file — but it provides uniform construction and monitoring.
type JBOD struct {
	name  string
	disks []*Disk
}

// NewJBOD creates n disks with identical parameters.
func NewJBOD(eng *des.Engine, name string, n int, params DiskParams) *JBOD {
	if n <= 0 {
		panic(fmt.Sprintf("disksim: JBOD %q with %d disks", name, n))
	}
	j := &JBOD{name: name}
	for i := 0; i < n; i++ {
		j.disks = append(j.disks, NewDisk(eng, fmt.Sprintf("%s/d%d", name, i), params))
	}
	return j
}

// Disk returns member i.
func (j *JBOD) Disk(i int) *Disk { return j.disks[i] }

// Len reports the member count.
func (j *JBOD) Len() int { return len(j.disks) }

// Name reports the set name.
func (j *JBOD) Name() string { return j.name }
