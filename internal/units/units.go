// Package units provides byte-size and bandwidth quantities shared by the
// whole simulator stack. All sizes are int64 byte counts and all simulated
// durations are des-style integer nanoseconds, so arithmetic stays exact and
// deterministic across platforms.
package units

import "fmt"

// Byte size multiples (binary, as used by IOR and IOzone).
const (
	B   int64 = 1
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
	TiB int64 = 1 << 40
)

// Bandwidth is a data rate in bytes per second. The simulator uses float64
// rates only at the edges (configuration constants, report output); transfer
// durations are computed in integer nanoseconds.
type Bandwidth float64

// Common bandwidth constructors.
func MBps(v float64) Bandwidth { return Bandwidth(v * float64(MiB)) }
func GBps(v float64) Bandwidth { return Bandwidth(v * float64(GiB)) }

// MBpsValue reports the bandwidth in MiB/s, the unit every table of the
// paper uses.
func (b Bandwidth) MBpsValue() float64 { return float64(b) / float64(MiB) }

func (b Bandwidth) String() string {
	return fmt.Sprintf("%.2f MB/s", b.MBpsValue())
}

// Duration is simulated time in nanoseconds. A dedicated type (rather than
// time.Duration) keeps the virtual clock visibly separate from wall time.
type Duration int64

const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

func (d Duration) String() string {
	return fmt.Sprintf("%.6fs", d.Seconds())
}

// FromSeconds converts floating-point seconds to a Duration, rounding to the
// nearest nanosecond.
func FromSeconds(s float64) Duration {
	return Duration(s*float64(Second) + 0.5)
}

// TransferTime is the time to move size bytes at rate bw. It is the single
// place where bytes and bandwidth meet, so every component computes transfer
// costs identically. A non-positive bandwidth panics: it is a configuration
// bug, not a runtime condition.
func TransferTime(size int64, bw Bandwidth) Duration {
	if bw <= 0 {
		panic("units: non-positive bandwidth")
	}
	if size <= 0 {
		return 0
	}
	sec := float64(size) / float64(bw)
	return FromSeconds(sec)
}

// BandwidthOf reports the achieved bandwidth for moving size bytes in d.
// Zero duration yields zero bandwidth so callers need not special-case
// instantaneous (cache-absorbed) transfers.
func BandwidthOf(size int64, d Duration) Bandwidth {
	if d <= 0 || size <= 0 {
		return 0
	}
	return Bandwidth(float64(size) / d.Seconds())
}

// FormatBytes renders a byte count with a binary suffix, e.g. "32MB" or
// "4GB", matching the compact style used in the paper's tables.
func FormatBytes(n int64) string {
	switch {
	case n >= GiB && n%GiB == 0:
		return fmt.Sprintf("%dGB", n/GiB)
	case n >= MiB && n%MiB == 0:
		return fmt.Sprintf("%dMB", n/MiB)
	case n >= KiB && n%KiB == 0:
		return fmt.Sprintf("%dKB", n/KiB)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
