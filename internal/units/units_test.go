package units

import (
	"testing"
	"testing/quick"
)

func TestTransferTime(t *testing.T) {
	if got := TransferTime(100*MiB, MBps(100)); got != Second {
		t.Fatalf("100MiB at 100MB/s = %v, want 1s", got)
	}
	if got := TransferTime(0, MBps(10)); got != 0 {
		t.Fatalf("zero bytes = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero bandwidth did not panic")
		}
	}()
	TransferTime(1, 0)
}

func TestBandwidthOfInvertsTransferTime(t *testing.T) {
	f := func(mb uint16, rate uint8) bool {
		size := (int64(mb) + 1) * MiB
		bw := MBps(float64(rate) + 1)
		d := TransferTime(size, bw)
		got := BandwidthOf(size, d)
		rel := (float64(got) - float64(bw)) / float64(bw)
		return rel < 1e-6 && rel > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthOfGuards(t *testing.T) {
	if BandwidthOf(100, 0) != 0 || BandwidthOf(0, Second) != 0 {
		t.Fatal("degenerate inputs not guarded")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		4 * GiB:    "4GB",
		32 * MiB:   "32MB",
		256 * KiB:  "256KB",
		10612080:   "10612080B",
		6 * GiB:    "6GB",
		1536 * MiB: "1536MB",
		KiB:        "1KB",
		1:          "1B",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Fatalf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestDurationConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Fatal("Seconds conversion broken")
	}
	if (1500 * Millisecond).String() != "1.500000s" {
		t.Fatalf("string = %q", (1500 * Millisecond).String())
	}
}

func TestBandwidthString(t *testing.T) {
	if got := MBps(112).String(); got != "112.00 MB/s" {
		t.Fatalf("string = %q", got)
	}
	if MBps(112).MBpsValue() != 112 {
		t.Fatal("MBpsValue round trip")
	}
}
