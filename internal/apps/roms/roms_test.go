package roms

import (
	"testing"

	"iophases/internal/cluster"
	"iophases/internal/core"
	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/runner"
	"iophases/internal/trace"
)

func runTraced(t *testing.T, np int, p Params) *trace.Set {
	t.Helper()
	res := runner.Run(cluster.ConfigA(), np, "roms-upwelling", func(sys *mpiio.System) func(*mpi.Rank) {
		return Program(sys, p)
	}, runner.Options{Trace: true})
	return res.Set
}

func TestGeometryHelpers(t *testing.T) {
	p := Upwelling()
	if HistoryRecords(p) != 10 {
		t.Fatalf("records %d", HistoryRecords(p))
	}
	if HistoryFiles(p) != 2 {
		t.Fatalf("files %d", HistoryFiles(p))
	}
	// zeta (2-D) + 4 × 3-D fields of doubles.
	want := int64(128*128*8) + 4*int64(128*128*16*8)
	if RecordBytes(p) != want {
		t.Fatalf("record bytes %d, want %d", RecordBytes(p), want)
	}
}

func TestRunOpensMultipleFiles(t *testing.T) {
	p := Upwelling()
	set := runTraced(t, 4, p)
	// 2 history files + 1 restart file.
	if got := len(set.Files); got != 3 {
		t.Fatalf("file metas %d, want 3", got)
	}
	names := map[string]bool{}
	for _, f := range set.Files {
		names[f.Name] = true
	}
	for _, want := range []string{"/ocean_his_0000.nc", "/ocean_his_0001.nc", "/ocean_rst.nc"} {
		if !names[want] {
			t.Fatalf("missing %s in %v", want, names)
		}
	}
}

func TestTracedVolumeMatchesGeometry(t *testing.T) {
	p := Upwelling()
	p.RestartEvery = 0 // history only for exact accounting
	const np = 4
	set := runTraced(t, np, p)
	w, _ := set.TotalBytes()
	data := RecordBytes(p) * int64(HistoryRecords(p))
	// Metadata: per history file, rank 0 writes a superblock and five
	// object headers.
	meta := int64(HistoryFiles(p)) * (2048 + 5*1024)
	if w != data+meta {
		t.Fatalf("traced %d, want %d data + %d meta", w, data, meta)
	}
}

// TestModelPerFile is the paper's future-work claim: the model applies to
// each file the application opens.
func TestModelPerFile(t *testing.T) {
	p := Upwelling()
	set := runTraced(t, 4, p)
	m := core.Build(set)
	filesWithPhases := map[int]int{}
	for _, pm := range m.Phases {
		filesWithPhases[pm.File]++
	}
	if len(filesWithPhases) != 3 {
		t.Fatalf("phases span %d files, want 3: %v", len(filesWithPhases), filesWithPhases)
	}
	// Every phase has an exact offset function and positive weight.
	for _, pm := range m.Phases {
		if pm.Weight <= 0 {
			t.Fatalf("phase %d weight %d", pm.ID, pm.Weight)
		}
		if !pm.OffsetOK {
			t.Fatalf("phase %d (file %d) offset fit inexact: %s", pm.ID, pm.File, pm.OffsetExpr)
		}
	}
	// The model is collective and strided (HDF5 slab views).
	if !m.Collective || m.AccessMode != "strided" {
		t.Fatalf("metadata %+v", m)
	}
}

func TestModelIndependenceAcrossConfigs(t *testing.T) {
	p := Upwelling()
	p.Steps = 16 // keep it quick
	build := func(spec cluster.Spec) *core.Model {
		res := runner.Run(spec, 4, "roms", func(sys *mpiio.System) func(*mpi.Rank) {
			return Program(sys, p)
		}, runner.Options{Trace: true})
		return core.Build(res.Set)
	}
	a, b := build(cluster.ConfigA()), build(cluster.ConfigB())
	if !a.SameShape(b) {
		t.Fatal("ROMS model differs across configurations")
	}
}

func TestIndependentTransferMode(t *testing.T) {
	p := Upwelling()
	p.Collective = false
	p.Steps = 8
	set := runTraced(t, 4, p)
	for _, ev := range set.DataEvents(1) {
		if ev.Op.IsCollective() {
			t.Fatalf("collective op %s in independent mode", ev.Op)
		}
	}
}

func TestBadGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Program(nil, Params{})
}
