// Package roms implements an ocean-model I/O skeleton in the style of the
// ROMS "upwelling" case the paper names as future work (§V): a regional
// ocean model time-stepping a 3-D grid, writing history records through
// parallel HDF5 every few steps, rolling to a new history file after a
// fixed number of records, and writing restart checkpoints to a separate
// file — several files open over the run, so the extracted I/O model has
// phases on multiple file ids (the paper: "This application open different
// files in executing time and we can observe that our model is applicable
// to each file").
package roms

import (
	"fmt"

	"iophases/internal/hdf5"
	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/units"
)

// Params configure the model run.
type Params struct {
	NX, NY, NZ     int64          // grid (x fastest, z slowest)
	Steps          int            // time steps
	HistEvery      int            // steps between history records
	RecordsPerFile int            // history-file rollover
	RestartEvery   int            // steps between restart checkpoints (0 = none)
	Collective     bool           // H5FD_MPIO collective transfer
	Layout         hdf5.Layout    // dataset layout
	ChunkBytes     int64          // for Chunked layout
	StepWork       units.Duration // busy-work per time step
	HaloBytes      int64          // halo exchange per step
}

// Upwelling returns the canonical upwelling-test parameterization scaled
// for simulation: a 128×128×16 grid, history every 4 steps, 5 records per
// history file, restart every 16 steps.
func Upwelling() Params {
	return Params{
		NX: 128, NY: 128, NZ: 16,
		Steps:          40,
		HistEvery:      4,
		RecordsPerFile: 5,
		RestartEvery:   16,
		Collective:     true,
		Layout:         hdf5.Contiguous,
		StepWork:       30 * units.Millisecond,
		HaloBytes:      64 * units.KiB,
	}
}

// fields of a history record: one 2-D free-surface field and four 3-D
// fields, double precision — the ROMS his-file standard set.
var (
	fields2D = []string{"zeta"}
	fields3D = []string{"temp", "salt", "u", "v"}
)

// HistoryRecords reports the total number of history records a run writes.
func HistoryRecords(p Params) int {
	if p.HistEvery <= 0 {
		return 0
	}
	return p.Steps / p.HistEvery
}

// HistoryFiles reports how many history files a run opens.
func HistoryFiles(p Params) int {
	rec := HistoryRecords(p)
	if rec == 0 || p.RecordsPerFile <= 0 {
		return 0
	}
	return (rec + p.RecordsPerFile - 1) / p.RecordsPerFile
}

// RecordBytes reports the data volume of one history record across all
// ranks.
func RecordBytes(p Params) int64 {
	vol2 := p.NX * p.NY * 8
	vol3 := p.NX * p.NY * p.NZ * 8
	return int64(len(fields2D))*vol2 + int64(len(fields3D))*vol3
}

// Program returns the per-rank program.
func Program(sys *mpiio.System, p Params) func(r *mpi.Rank) {
	if p.NX <= 0 || p.NY <= 0 || p.NZ <= 0 || p.Steps <= 0 {
		panic("roms: bad grid")
	}
	return func(r *mpi.Rank) {
		if r.ID() == 0 {
			sys.MarkStart(r)
		}
		np := r.Size()
		recsPerFile := int64(p.RecordsPerFile)

		var hist *hdf5.File
		var recInFile int64
		openHistory := func(idx int) {
			hist = hdf5.Create(sys, r, fmt.Sprintf("/ocean_his_%04d.nc", idx))
			// Datasets sized for this file's records: time is folded
			// into dimension 0 (records for 2-D fields, records×NZ
			// for 3-D fields).
			for _, f := range fields2D {
				hist.CreateDataset(r, f, hdf5.Dims{recsPerFile, p.NY, p.NX}, 8, p.Layout, p.ChunkBytes)
			}
			for _, f := range fields3D {
				hist.CreateDataset(r, f, hdf5.Dims{recsPerFile * p.NZ, p.NY, p.NX}, 8, p.Layout, p.ChunkBytes)
			}
			recInFile = 0
		}

		writeRecord := func() {
			yslab := hdf5.RowDecompose(hdf5.Dims{1, p.NY, p.NX}, r.ID(), np)
			y0, yc := yslab.Start[1], yslab.Count[1]
			for _, f := range fields2D {
				hist.Dataset(f).WriteSlab(r, hdf5.Slab{
					Start: hdf5.Dims{recInFile, y0, 0},
					Count: hdf5.Dims{1, yc, p.NX},
				}, p.Collective)
			}
			for _, f := range fields3D {
				hist.Dataset(f).WriteSlab(r, hdf5.Slab{
					Start: hdf5.Dims{recInFile * p.NZ, y0, 0},
					Count: hdf5.Dims{p.NZ, yc, p.NX},
				}, p.Collective)
			}
			recInFile++
		}

		writeRestart := func() {
			rst := hdf5.Create(sys, r, "/ocean_rst.nc")
			yslab := hdf5.RowDecompose(hdf5.Dims{1, p.NY, p.NX}, r.ID(), np)
			y0, yc := yslab.Start[1], yslab.Count[1]
			for _, f := range fields3D {
				ds := rst.CreateDataset(r, f, hdf5.Dims{p.NZ, p.NY, p.NX}, 8, p.Layout, p.ChunkBytes)
				ds.WriteSlab(r, hdf5.Slab{
					Start: hdf5.Dims{0, y0, 0},
					Count: hdf5.Dims{p.NZ, yc, p.NX},
				}, p.Collective)
			}
			rst.Close(r)
		}

		fileIdx := 0
		openHistory(fileIdx)
		for step := 1; step <= p.Steps; step++ {
			r.Compute(p.StepWork)
			r.Exchange(p.HaloBytes) // barotropic + baroclinic halos
			r.Exchange(p.HaloBytes)
			if p.HistEvery > 0 && step%p.HistEvery == 0 {
				if recInFile == recsPerFile {
					hist.Close(r)
					fileIdx++
					openHistory(fileIdx)
				}
				writeRecord()
			}
			if p.RestartEvery > 0 && step%p.RestartEvery == 0 {
				writeRestart()
			}
		}
		hist.Close(r)
	}
}
