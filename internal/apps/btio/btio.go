// Package btio implements the I/O skeleton of the NAS Parallel Benchmarks
// BT-IO kernel (Block-Tridiagonal solver, I/O version 2.4), the validation
// application of §IV-B. The solver's numerics are busy-work; its MPI
// communication structure (which drives the logical-tick spacing between
// dumps) and its MPI-IO surface are modeled faithfully:
//
//   - subtype FULL: every 5 time steps all np ranks write the entire
//     solution field through a nested strided file view with collective
//     MPI_File_write_at_all; after the last step the whole history is
//     re-read collectively for verification (class C: 40 dumps then one
//     read phase of rep 40; class D: 50/50 — Table XI).
//   - subtype SIMPLE: the same accesses with independent MPI-IO, used as
//     the ablation baseline for collective buffering.
//
// Request size rs = grid³·5·8 bytes / np (10 612 080 B for class C on 16
// processes — the value visible in Figure 2), etype 40 bytes (five
// doubles), and at dump ph rank idP's first byte sits at
// rs·idP + rs·np·(ph−1), Table XI's f(initOffset).
package btio

import (
	"fmt"

	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/units"
)

// Class is a NAS problem class.
type Class struct {
	Name      string
	Grid      int64 // cubic grid dimension
	TimeSteps int   // solver steps; a dump every 5
}

// NAS problem classes for BT-IO.
var (
	ClassA = Class{Name: "A", Grid: 64, TimeSteps: 200}
	ClassB = Class{Name: "B", Grid: 102, TimeSteps: 200}
	ClassC = Class{Name: "C", Grid: 162, TimeSteps: 200}
	ClassD = Class{Name: "D", Grid: 408, TimeSteps: 250}
	// ClassW is a miniature class for fast tests and benches.
	ClassW = Class{Name: "W", Grid: 24, TimeSteps: 50}
)

// ClassByName resolves a class.
func ClassByName(name string) (Class, bool) {
	for _, c := range []Class{ClassA, ClassB, ClassC, ClassD, ClassW} {
		if c.Name == name {
			return c, true
		}
	}
	return Class{}, false
}

// Dumps reports the number of solution writes (every 5 steps).
func (c Class) Dumps() int { return c.TimeSteps / 5 }

// RS reports the per-rank request size for np processes: the rank's share
// of mesh points (5 doubles each), rounded down to whole points so requests
// stay etype-aligned (real BT-IO pads unevenly across ranks; the paper's
// 10 612 080 B for class C / 16p is within 0.2% of this value).
func (c Class) RS(np int) int64 {
	points := c.Grid * c.Grid * c.Grid / int64(np)
	return points * 40
}

// DumpBytes reports the size of one full solution dump across np ranks.
func (c Class) DumpBytes(np int) int64 { return c.RS(np) * int64(np) }

// Subtypes of the BT-IO benchmark.
const (
	Full   = "full"   // collective MPI-IO, shared file
	Simple = "simple" // independent MPI-IO, shared file
	Epio   = "epio"   // independent MPI-IO, one file per process
)

// Params configure a run.
type Params struct {
	Class    Class
	Subtype  string // Full or Simple
	FileName string
	// PiecesPerRank is the number of strided pieces one rank's dump
	// decomposes into. Table XI's offset functions correspond to 1
	// (rank-contiguous blocks interleaved per dump); the solver's cell
	// decomposition (q² pieces for np = q²) is available for the
	// collective-vs-independent ablation.
	PiecesPerRank int
	// SolveWork is the busy-work per time step standing in for the
	// x/y/z block-tridiagonal solves.
	SolveWork units.Duration
	// HaloBytes is the per-exchange message size of the solver.
	HaloBytes int64
}

// Default returns a faithful parameterization for a class.
func Default(class Class) Params {
	return Params{
		Class:         class,
		Subtype:       Full,
		FileName:      "/btio.out",
		PiecesPerRank: 1,
		SolveWork:     40 * units.Millisecond,
		HaloBytes:     class.Grid * class.Grid * 8 / 4,
	}
}

// exchangesPerStep is the solver's MPI event count per time step: three
// sweep directions × (copy faces + forward elimination + back substitution
// messaging) — 24 events per step gives the 121-tick dump spacing visible
// in Figure 2 (5 steps × 24 + the write itself).
const exchangesPerStep = 24

// Program returns the per-rank program; np must be a perfect square (BT
// requirement: n² processes).
func Program(sys *mpiio.System, p Params) func(r *mpi.Rank) {
	if p.Subtype != Full && p.Subtype != Simple && p.Subtype != Epio {
		panic(fmt.Sprintf("btio: subtype %q", p.Subtype))
	}
	if p.PiecesPerRank <= 0 {
		p.PiecesPerRank = 1
	}
	return func(r *mpi.Rank) {
		np := r.Size()
		if q := isqrt(np); q*q != np {
			panic(fmt.Sprintf("btio: np=%d is not a square", np))
		}
		if r.ID() == 0 {
			sys.MarkStart(r)
		}
		rs := p.Class.RS(np)
		const etype = 40 // five doubles
		rsEtypes := rs / etype

		var f *mpiio.File
		if p.Subtype == Epio {
			// Each process owns a private, contiguous file: no view,
			// dumps append back to back.
			f = sys.Open(r, p.FileName, mpiio.Unique)
			f.SetView(r, 0, etype, mpiio.Contig{})
		} else {
			f = sys.Open(r, p.FileName, mpiio.Shared)
			piece := rs / int64(p.PiecesPerRank)
			f.SetView(r, 0, etype, mpiio.Vector{
				Block:  piece,
				Stride: int64(np) * piece,
				Phase:  int64(r.ID()) * piece,
			})
		}

		dumps := p.Class.Dumps()
		write := func(d int) {
			off := int64(d) * rsEtypes
			if p.Subtype == Full {
				f.WriteAtAll(r, off, rs)
			} else {
				f.WriteAt(r, off, rs)
			}
		}
		read := func(d int) {
			off := int64(d) * rsEtypes
			if p.Subtype == Full {
				f.ReadAtAll(r, off, rs)
			} else {
				f.ReadAt(r, off, rs)
			}
		}

		for d := 0; d < dumps; d++ {
			for step := 0; step < 5; step++ {
				r.Compute(p.SolveWork)
				for e := 0; e < exchangesPerStep; e++ {
					r.Exchange(p.HaloBytes)
				}
			}
			write(d)
		}
		// Verification: re-read the full history, back-to-back.
		for d := 0; d < dumps; d++ {
			read(d)
		}
		f.Close(r)
	}
}

// ValidateNP reports whether np satisfies BT's n² process requirement.
func ValidateNP(np int) error {
	if q := isqrt(np); np <= 0 || q*q != np {
		return fmt.Errorf("btio: np=%d is not a positive square", np)
	}
	return nil
}

func isqrt(n int) int {
	for q := 0; ; q++ {
		if q*q >= n {
			return q
		}
	}
}

// TotalBytes reports the run's data volume for np ranks (each direction
// moves the whole history once).
func TotalBytes(p Params, np int) (written, read int64) {
	v := p.Class.DumpBytes(np) * int64(p.Class.Dumps())
	return v, v
}
