package btio

import (
	"testing"

	"iophases/internal/cluster"
	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/runner"
	"iophases/internal/trace"
	"iophases/internal/units"
)

func runTraced(t *testing.T, np int, p Params) *trace.Set {
	t.Helper()
	res := runner.Run(cluster.ConfigA(), np, "btio", func(sys *mpiio.System) func(*mpi.Rank) {
		return Program(sys, p)
	}, runner.Options{Trace: true})
	return res.Set
}

func TestClassGeometry(t *testing.T) {
	if ClassC.Dumps() != 40 || ClassD.Dumps() != 50 {
		t.Fatalf("dumps %d/%d, want 40/50", ClassC.Dumps(), ClassD.Dumps())
	}
	// Class C / 16p request size ≈ the paper's 10 612 080 B (within the
	// padding difference of the real cell decomposition).
	rs := ClassC.RS(16)
	if rs < 10_500_000 || rs > 10_700_000 {
		t.Fatalf("class C rs = %d", rs)
	}
	if rs%40 != 0 {
		t.Fatalf("rs %d not etype-aligned", rs)
	}
	if ClassD.DumpBytes(36)%36 != 0 {
		t.Fatal("dump not evenly divided")
	}
}

func TestClassByName(t *testing.T) {
	for _, n := range []string{"A", "B", "C", "D", "W"} {
		if _, ok := ClassByName(n); !ok {
			t.Fatalf("class %s missing", n)
		}
	}
	if _, ok := ClassByName("Z"); ok {
		t.Fatal("ghost class")
	}
}

func TestTraceShape(t *testing.T) {
	p := Default(ClassW)
	set := runTraced(t, 4, p)
	dumps := ClassW.Dumps()
	for rank := 0; rank < 4; rank++ {
		evs := set.DataEvents(rank)
		if len(evs) != 2*dumps {
			t.Fatalf("rank %d ops = %d, want %d", rank, len(evs), 2*dumps)
		}
		for d := 0; d < dumps; d++ {
			if !evs[d].Op.IsCollective() || !evs[d].Op.IsWrite() {
				t.Fatalf("dump %d op %s", d, evs[d].Op)
			}
			if !evs[dumps+d].Op.IsRead() {
				t.Fatalf("verify %d op %s", d, evs[dumps+d].Op)
			}
		}
	}
}

func TestDumpTickSpacingMatchesFigure2(t *testing.T) {
	p := Default(ClassW)
	set := runTraced(t, 4, p)
	evs := set.DataEvents(0)
	for d := 1; d < ClassW.Dumps(); d++ {
		if delta := evs[d].Tick - evs[d-1].Tick; delta != 121 {
			t.Fatalf("dump spacing %d, want 121 (5 steps × 24 events + write)", delta)
		}
	}
	// Verification reads are back-to-back.
	dumps := ClassW.Dumps()
	for d := 1; d < dumps; d++ {
		if evs[dumps+d].Tick != evs[dumps+d-1].Tick+1 {
			t.Fatal("verification reads not tick-contiguous")
		}
	}
}

func TestViewOffsetsEtypeUnits(t *testing.T) {
	p := Default(ClassW)
	set := runTraced(t, 4, p)
	rs := ClassW.RS(4)
	evs := set.DataEvents(1)
	for d := 0; d < 3; d++ {
		if evs[d].Offset != int64(d)*rs/40 {
			t.Fatalf("dump %d view offset %d, want %d etypes", d, evs[d].Offset, int64(d)*rs/40)
		}
		if evs[d].Size != rs {
			t.Fatalf("dump %d size %d", d, evs[d].Size)
		}
	}
}

func TestMetadataMatchesSectionIVB(t *testing.T) {
	p := Default(ClassW)
	set := runTraced(t, 4, p)
	m := set.FileMetaByID(0)
	if m == nil || m.PointerSet != "explicit" || !m.Collective || !m.Blocking {
		t.Fatalf("meta %+v", m)
	}
	if m.ViewEtype != 40 || !m.HasView {
		t.Fatalf("view meta %+v", m)
	}
	// The per-rank views interleave rank blocks: rank r at phase r·rs.
	rs := ClassW.RS(4)
	for r := 0; r < 4; r++ {
		v := m.ViewOf(r)
		if v.Phase != int64(r)*rs || v.Stride != 4*rs || v.Block != rs {
			t.Fatalf("rank %d view %+v", r, v)
		}
	}
}

func TestPiecesPerRankDecomposition(t *testing.T) {
	p := Default(ClassW)
	p.PiecesPerRank = 4
	set := runTraced(t, 4, p)
	m := set.FileMetaByID(0)
	rs := ClassW.RS(4)
	v := m.ViewOf(1)
	if v.Block != rs/4 || v.Stride != 4*rs/4 || v.Phase != rs/4 {
		t.Fatalf("pieces view %+v", v)
	}
	// Volume is unchanged by the decomposition.
	w, _ := set.TotalBytes()
	if w != rs*4*int64(ClassW.Dumps()) {
		t.Fatalf("written %d", w)
	}
}

func TestSimpleSubtypeUsesIndependentIO(t *testing.T) {
	p := Default(ClassW)
	p.Subtype = Simple
	set := runTraced(t, 4, p)
	for _, ev := range set.DataEvents(0) {
		if ev.Op.IsCollective() {
			t.Fatalf("simple subtype produced collective op %s", ev.Op)
		}
	}
}

func TestEpioSubtypeFilePerProcess(t *testing.T) {
	p := Default(ClassW)
	p.Subtype = Epio
	set := runTraced(t, 4, p)
	m := set.FileMetaByID(0)
	if m.AccessType != "unique" {
		t.Fatalf("access type %q", m.AccessType)
	}
	// Private files: every rank writes the same (contiguous) offsets.
	rs := ClassW.RS(4)
	for rank := 0; rank < 4; rank++ {
		evs := set.DataEvents(rank)
		for d := 0; d < 3; d++ {
			if evs[d].Offset != int64(d)*rs/40 {
				t.Fatalf("rank %d dump %d offset %d", rank, d, evs[d].Offset)
			}
			if evs[d].Op.IsCollective() {
				t.Fatalf("epio produced collective %s", evs[d].Op)
			}
		}
	}
	w, _ := set.TotalBytes()
	if want := ClassW.DumpBytes(4) * int64(ClassW.Dumps()); w != want {
		t.Fatalf("volume %d want %d", w, want)
	}
}

func TestValidateNP(t *testing.T) {
	for _, np := range []int{1, 4, 9, 16, 36, 64, 121} {
		if err := ValidateNP(np); err != nil {
			t.Fatalf("np=%d rejected: %v", np, err)
		}
	}
	for _, np := range []int{0, -4, 3, 8, 15, 120} {
		if ValidateNP(np) == nil {
			t.Fatalf("np=%d accepted", np)
		}
	}
}

func TestTotalBytesAccounting(t *testing.T) {
	p := Default(ClassW)
	w, r := TotalBytes(p, 4)
	want := ClassW.DumpBytes(4) * int64(ClassW.Dumps())
	if w != want || r != want {
		t.Fatalf("volume %d/%d, want %d", w, r, want)
	}
	_ = units.MiB
}
