// Package madbench implements the I/O skeleton of MADBench2, the cosmology
// benchmark (MADspec / CMB angular power spectrum) used in §IV-A of the
// paper. In I/O mode all calculation and communication is replaced by
// busy-work (the paper runs it exactly so), leaving the out-of-core matrix
// traffic:
//
//	S — build and write NBin component matrices        (S_w)
//	W — read each matrix, manipulate, write it back,   (W_r, W_w)
//	    pipelined two bins ahead (prime 2 reads, steady
//	    state write i / read i+2, drain 2 writes)
//	C — read every matrix once                         (C_r)
//
// Each rank owns a contiguous region of the shared file: bin b of rank p
// lives at (p·NBin + b)·RS. With 16 processes, 8 bins and 32 MiB request
// size this reproduces the five phases of Table VIII, weights 4/1/6/1/4 GB
// and initial offsets idP·8·32MB (± 2·32MB).
package madbench

import (
	"fmt"

	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/units"
)

// Params configure a run.
type Params struct {
	NBin     int            // number of component matrices (paper: 8)
	RS       int64          // per-process request size (paper: 32 MiB at 8KPIX/16p)
	FileName string         // shared data file
	BusyWork units.Duration // busy-work standing in for calculation per bin
	// Gangs selects multi-gang mode (§IV-A): S builds and writes the
	// matrices over all processes, but W and C redistribute them over
	// process subsets — each gang manipulates its share of the bins,
	// and every gang process covers several ranks' S-time shares, so
	// the W/C accesses become strided across the file. 0 or 1 is the
	// single-gang mode of the paper's measured runs. Gangs must divide
	// both np and NBin.
	Gangs int
}

// Default returns the paper's configuration: 8 bins, 32 MiB request size —
// 8KPIX over 16 processes (NPix²·8 bytes / np = 8192²·8/16 = 32 MiB),
// single gang.
func Default() Params {
	return Params{
		NBin:     8,
		RS:       32 * units.MiB,
		FileName: "/madbench2.dat",
		BusyWork: 250 * units.Millisecond,
		Gangs:    1,
	}
}

// Validate checks the parameters against a process count.
func (p Params) Validate(np int) error {
	if p.NBin <= 0 || p.RS <= 0 {
		return fmt.Errorf("madbench: nbin=%d rs=%d", p.NBin, p.RS)
	}
	if p.Gangs > 1 && (np%p.Gangs != 0 || p.NBin%p.Gangs != 0) {
		return fmt.Errorf("madbench: gangs=%d must divide np=%d and nbin=%d",
			p.Gangs, np, p.NBin)
	}
	return nil
}

// KPixRS computes the per-process request size for a pixel count and
// process count: one NPix² matrix of float64 spread over np ranks.
func KPixRS(kpix, np int) int64 {
	npix := int64(kpix) * 1024
	return npix * npix * 8 / int64(np)
}

// Program returns the per-rank program; run it with mpi.World.Run.
func Program(sys *mpiio.System, p Params) func(r *mpi.Rank) {
	if p.NBin <= 0 || p.RS <= 0 {
		panic("madbench: bad params")
	}
	if p.Gangs > 1 {
		return multiGangProgram(sys, p)
	}
	return func(r *mpi.Rank) {
		if r.ID() == 0 {
			sys.MarkStart(r)
		}
		f := sys.Open(r, p.FileName, mpiio.Shared)
		base := int64(r.ID()) * int64(p.NBin) * p.RS
		bin := func(b int64) int64 { return base + b*p.RS }

		// S: build (busy-work) and write each bin. The writes are
		// back-to-back MPI-IO calls — one phase of rep NBin.
		f.Seek(r, bin(0))
		for b := 0; b < p.NBin; b++ {
			r.Compute(p.BusyWork)
			f.Write(r, p.RS) // sequential: pointer advances by RS
		}
		r.Barrier() // gang synchronization between functions

		// W: pipelined read-manipulate-write, two bins of read-ahead.
		f.Seek(r, bin(0))
		f.Read(r, p.RS) // prime bins 0 and 1
		f.Read(r, p.RS)
		for i := int64(0); i < int64(p.NBin-2); i++ {
			r.Compute(p.BusyWork)
			f.Seek(r, bin(i))
			f.Write(r, p.RS) // write back bin i
			f.Seek(r, bin(i+2))
			f.Read(r, p.RS) // prefetch bin i+2
		}
		r.Compute(p.BusyWork)
		f.Seek(r, bin(int64(p.NBin-2)))
		f.Write(r, p.RS) // drain the last two bins
		f.Write(r, p.RS)
		r.Barrier()

		// C: read every bin once.
		f.Seek(r, bin(0))
		for b := 0; b < p.NBin; b++ {
			r.Compute(p.BusyWork)
			f.Read(r, p.RS)
		}
		f.Close(r)
	}
}

// multiGangProgram is the multi-gang variant: W and C run on gangs of
// np/Gangs processes, each gang owning NBin/Gangs matrices. A gang process
// covers Gangs consecutive ranks' S-time shares of each owned bin, so its
// W/C accesses stride through the file in RS pieces NBin·RS apart.
func multiGangProgram(sys *mpiio.System, p Params) func(r *mpi.Rank) {
	return func(r *mpi.Rank) {
		np := r.Size()
		if np%p.Gangs != 0 || p.NBin%p.Gangs != 0 {
			panic(fmt.Sprintf("madbench: gangs=%d must divide np=%d and nbin=%d",
				p.Gangs, np, p.NBin))
		}
		if r.ID() == 0 {
			sys.MarkStart(r)
		}
		f := sys.Open(r, p.FileName, mpiio.Shared)
		gangSize := np / p.Gangs
		gang := r.ID() / gangSize
		q := r.ID() % gangSize // position within the gang
		binsPerGang := p.NBin / p.Gangs

		// S: identical to single gang — all processes write all bins.
		base := int64(r.ID()) * int64(p.NBin) * p.RS
		f.Seek(r, base)
		for b := 0; b < p.NBin; b++ {
			r.Compute(p.BusyWork)
			f.Write(r, p.RS)
		}
		r.Barrier() // gang redistribution

		// shareOffsets lists the file regions gang process q covers for
		// an owned bin: the S-time shares of ranks q·Gangs..(q+1)·Gangs−1.
		accessBin := func(b int64, write bool) {
			for s := 0; s < p.Gangs; s++ {
				share := int64(q*p.Gangs + s)
				off := (share*int64(p.NBin) + b) * p.RS
				f.Seek(r, off)
				if write {
					f.Write(r, p.RS)
				} else {
					f.Read(r, p.RS)
				}
			}
		}

		// W: the gang's bins, pipelined two ahead as in single gang.
		ownedBin := func(i int) int64 { return int64(gang*binsPerGang + i) }
		prime := 2
		if prime > binsPerGang {
			prime = binsPerGang
		}
		for i := 0; i < prime; i++ {
			accessBin(ownedBin(i), false)
		}
		for i := 0; i < binsPerGang-prime; i++ {
			r.Compute(p.BusyWork)
			accessBin(ownedBin(i), true)
			accessBin(ownedBin(i+prime), false)
		}
		for i := binsPerGang - prime; i < binsPerGang; i++ {
			r.Compute(p.BusyWork)
			accessBin(ownedBin(i), true)
		}
		r.Barrier()

		// C: read the gang's bins once.
		for i := 0; i < binsPerGang; i++ {
			r.Compute(p.BusyWork)
			accessBin(ownedBin(i), false)
		}
		f.Close(r)
	}
}

// TotalBytes reports the volume one run moves: writes (S writes NBin, W
// writes NBin) and reads (W reads NBin, C reads NBin) per rank. The totals
// are gang-invariant: multi-gang redistributes the same matrices over
// fewer processes with proportionally more data each.
func TotalBytes(p Params, np int) (written, read int64) {
	perRank := int64(p.NBin) * p.RS
	return 2 * perRank * int64(np), 2 * perRank * int64(np)
}
