package madbench

import (
	"testing"

	"iophases/internal/cluster"
	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/runner"
	"iophases/internal/trace"
	"iophases/internal/units"
)

func runTraced(t *testing.T, np int, p Params) *trace.Set {
	t.Helper()
	res := runner.Run(cluster.ConfigA(), np, "madbench2", func(sys *mpiio.System) func(*mpi.Rank) {
		return Program(sys, p)
	}, runner.Options{Trace: true})
	return res.Set
}

func TestDefaultMatchesPaperScale(t *testing.T) {
	p := Default()
	if p.NBin != 8 || p.RS != 32*units.MiB {
		t.Fatalf("default %+v", p)
	}
	if KPixRS(8, 16) != 32*units.MiB {
		t.Fatalf("KPixRS(8,16) = %d, want 32 MiB (8192²·8/16)", KPixRS(8, 16))
	}
}

func TestOperationSequencePerRank(t *testing.T) {
	p := Default()
	p.RS = units.MiB
	set := runTraced(t, 4, p)
	evs := set.DataEvents(0)
	// S: 8W; W: 2R + 6×(W,R) + 2W; C: 8R → 32 data ops.
	if len(evs) != 32 {
		t.Fatalf("ops = %d, want 32", len(evs))
	}
	var pattern []byte
	for _, ev := range evs {
		if ev.Op.IsWrite() {
			pattern = append(pattern, 'W')
		} else {
			pattern = append(pattern, 'R')
		}
	}
	want := "WWWWWWWW" + "RR" + "WRWRWRWRWRWR" + "WW" + "RRRRRRRR"
	if string(pattern) != want {
		t.Fatalf("op pattern %s,\nwant       %s", pattern, want)
	}
}

func TestOffsetsMatchTableVIII(t *testing.T) {
	p := Default()
	p.RS = units.MiB
	set := runTraced(t, 4, p)
	for rank := 0; rank < 4; rank++ {
		evs := set.DataEvents(rank)
		base := int64(rank) * 8 * units.MiB
		// S writes bins 0..7 sequentially.
		for b := int64(0); b < 8; b++ {
			if evs[b].Offset != base+b*units.MiB {
				t.Fatalf("rank %d S[%d] offset %d", rank, b, evs[b].Offset)
			}
		}
		// Steady state: write bin i, read bin i+2.
		if evs[10].Offset != base || evs[11].Offset != base+2*units.MiB {
			t.Fatalf("rank %d steady state offsets %d/%d", rank, evs[10].Offset, evs[11].Offset)
		}
	}
}

func TestTicksContiguousWithinFunctions(t *testing.T) {
	p := Default()
	p.RS = units.MiB
	set := runTraced(t, 2, p)
	evs := set.DataEvents(0)
	// The 8 S writes must occupy consecutive ticks (no MPI events in
	// between — that is what merges them into one phase of rep 8).
	for i := 1; i < 8; i++ {
		if evs[i].Tick != evs[i-1].Tick+1 {
			t.Fatalf("S writes not tick-contiguous: %d -> %d", evs[i-1].Tick, evs[i].Tick)
		}
	}
	// A gap (the gang barrier) separates S from W.
	if evs[8].Tick == evs[7].Tick+1 {
		t.Fatal("no barrier gap between S and W")
	}
}

func TestTotalBytes(t *testing.T) {
	p := Default()
	w, r := TotalBytes(p, 16)
	if w != 8*units.GiB || r != 8*units.GiB {
		t.Fatalf("volume %d/%d", w, r)
	}
	set := runTraced(t, 4, Params{NBin: 8, RS: units.MiB, FileName: "/m", BusyWork: units.Millisecond})
	gotW, gotR := set.TotalBytes()
	wantW, wantR := TotalBytes(Params{NBin: 8, RS: units.MiB}, 4)
	if gotW != wantW || gotR != wantR {
		t.Fatalf("traced %d/%d, want %d/%d", gotW, gotR, wantW, wantR)
	}
}

func TestMetadataIndividualNonCollective(t *testing.T) {
	p := Default()
	p.RS = units.MiB
	set := runTraced(t, 2, p)
	m := set.FileMetaByID(0)
	if m == nil || m.PointerSet != "individual" || m.Collective || !m.Blocking {
		t.Fatalf("meta %+v", m)
	}
	if m.AccessType != "shared" {
		t.Fatalf("access type %s", m.AccessType)
	}
}

func TestMultiGangVolumeInvariant(t *testing.T) {
	// The same matrices move regardless of gang count.
	single := Default()
	single.RS = units.MiB
	multi := single
	multi.Gangs = 2
	s1 := runTraced(t, 8, single)
	s2 := runTraced(t, 8, multi)
	w1, r1 := s1.TotalBytes()
	w2, r2 := s2.TotalBytes()
	if w1 != w2 || r1 != r2 {
		t.Fatalf("volume changed: %d/%d vs %d/%d", w1, r1, w2, r2)
	}
}

func TestMultiGangStridesAcrossShares(t *testing.T) {
	p := Default()
	p.RS = units.MiB
	p.Gangs = 2 // 8 procs → gangs of 4, each proc covers 2 shares per bin
	set := runTraced(t, 8, p)
	evs := set.DataEvents(1) // rank 1 = gang 0, q=1
	// After the 8 S writes, W's accesses come in share pairs: offsets
	// (2·8+b)·RS and (3·8+b)·RS — a stride of NBin·RS between shares.
	first := evs[8]
	second := evs[9]
	if second.Offset-first.Offset != 8*units.MiB {
		t.Fatalf("share stride %d, want NBin·RS", second.Offset-first.Offset)
	}
	if !first.Op.IsRead() || !second.Op.IsRead() {
		t.Fatalf("prime ops %s %s", first.Op, second.Op)
	}
	// Per-rank op count: 8 S writes + 2·binsPerGang·gangs W ops + ...
	// binsPerGang = 4, gangs (shares) = 2: W = (4 writes + 4 reads)·2 =
	// 16, C = 4·2 = 8 → total 8+16+8 = 32.
	if len(evs) != 32 {
		t.Fatalf("ops %d, want 32", len(evs))
	}
	// Access mode becomes strided in the extracted metadata.
	// (W jumps by NBin·RS between shares.)
}

func TestMultiGangModelStillFivePhaseFamilies(t *testing.T) {
	// The gang run still has the S / W-prime / W-steady / W-drain / C
	// structure; phases multiply by the share loop but group per gang.
	p := Default()
	p.RS = units.MiB
	p.Gangs = 2
	set := runTraced(t, 8, p)
	w, r := set.TotalBytes()
	wantW, wantR := TotalBytes(p, 8)
	if w != wantW || r != wantR {
		t.Fatalf("volume %d/%d want %d/%d", w, r, wantW, wantR)
	}
}

func TestValidateGangs(t *testing.T) {
	p := Default()
	if err := p.Validate(16); err != nil {
		t.Fatal(err)
	}
	p.Gangs = 3 // does not divide np=8 or nbin=8
	if p.Validate(8) == nil {
		t.Fatal("invalid gang count accepted")
	}
	p.Gangs = 4
	if err := p.Validate(8); err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.RS = 0
	if bad.Validate(4) == nil {
		t.Fatal("rs=0 accepted")
	}
}

func TestBadParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Program(nil, Params{NBin: 0, RS: 0})
}
