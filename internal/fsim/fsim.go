// Package fsim models the global filesystems of the paper's four I/O
// configurations: NFS (one server, all traffic through its NIC), PVFS2-like
// striping over NASD I/O nodes, Lustre-like striping over OSS nodes, and
// plain local filesystems. All four are instances of one mechanism — a set
// of storage targets behind a network fabric with round-robin striping —
// differing only in target count, stripe size, per-target device and cache
// policy. That uniformity is what lets the paper's methodology compare them
// with a single benchmark surface.
package fsim

import (
	"fmt"
	"sort"

	"iophases/internal/des"
	"iophases/internal/disksim"
	"iophases/internal/faults"
	"iophases/internal/netsim"
	"iophases/internal/obs"
	"iophases/internal/units"
)

// fsMetrics bundles the run-telemetry handles shared by every FS instance.
// All handles are nil unless telemetry was enabled before New ran.
type fsMetrics struct {
	opens     *obs.Counter
	creates   *obs.Counter
	metaOps   *obs.Counter
	writeSize *obs.Histogram // client-extent sizes, bytes
	readSize  *obs.Histogram
}

func newFSMetrics() fsMetrics {
	h := obs.Hot()
	if h == nil {
		return fsMetrics{}
	}
	return fsMetrics{
		opens:     h.Counter("fsim/opens"),
		creates:   h.Counter("fsim/creates"),
		metaOps:   h.Counter("fsim/meta_ops"),
		writeSize: h.Histogram("fsim/write_size"),
		readSize:  h.Histogram("fsim/read_size"),
	}
}

// Target is one storage server: a fabric endpoint plus the device (possibly
// cache-wrapped) that holds its share of every file's stripes.
type Target struct {
	Node string         // fabric endpoint name
	Dev  disksim.Device // WriteCache wraps count as Device too
}

// Params configure a filesystem instance.
type Params struct {
	Name       string
	Kind       string // "local" | "nfs" | "pvfs2" | "lustre"
	Targets    []Target
	StripeSize int64 // bytes per target per stripe row
	// FileStripeCount is how many targets one file stripes over
	// (Lustre's stripe_count). 0 or >= len(Targets) stripes every file
	// over all targets (PVFS2 behaviour). Files are assigned target
	// subsets round-robin in creation order.
	FileStripeCount int
	MetaNode        string         // metadata server endpoint ("" = first target)
	MetaCost        units.Duration // per-metadata-operation service time
	// MaxServerRequest is the granularity a storage server processes
	// requests at (NFS wsize / PVFS2 flow buffer / Lustre RPC size).
	// Larger client extents are issued to the device in pieces of this
	// size, so concurrent streams genuinely interleave at the disk —
	// the mechanism that keeps measured bandwidth well below the
	// device peak in Tables IX and X. 0 means unlimited.
	MaxServerRequest int64
}

// DefaultMetaCost is the metadata-operation service time used when Params
// leaves MetaCost zero. Exported so the analytic fast path resolves the
// same effective cost from a cluster spec.
const DefaultMetaCost = 200 * units.Microsecond

// EffectiveStripeCount reports how many of ntargets a new file stripes
// over given a FileStripeCount setting — allocateTargets' clamping rule,
// exported for the fast path's single-target admissibility check.
func EffectiveStripeCount(stripeCount, ntargets int) int {
	if stripeCount <= 0 || stripeCount > ntargets {
		return ntargets
	}
	return stripeCount
}

// Account accumulates one application's share of filesystem traffic.
// Attach one to every handle an application opens (File.SetAccount) and
// the data-path totals split cleanly per app: when every handle on a
// filesystem carries an account, the accounts' byte totals sum exactly to
// the filesystem's Traffic() totals — the conservation law co-execution
// reports are checked against. Fields are plain ints: the DES executes
// all procs on one goroutine, so no atomics are needed.
type Account struct {
	Name         string // application label, for reports
	BytesWritten int64  // client extent bytes successfully written
	BytesRead    int64
	Writes       int64 // successful data operations (post-retry)
	Reads        int64
	NetBytes     int64 // fabric payload attributed to this app's data path
}

// FS is a simulated global filesystem.
type FS struct {
	eng     *des.Engine
	fab     *netsim.Fabric
	params  Params
	files   map[string]*fileMeta
	opens   int64
	created int64
	written int64 // data-path totals, always on (cheap adds)
	read    int64
	met     fsMetrics
	flt     *faults.Injector // nil on a healthy cluster
}

type fileMeta struct {
	size    int64
	targets []int // indices into params.Targets this file stripes over
}

// New creates a filesystem over fabric endpoints. Every target node must be
// registered in the fabric.
func New(eng *des.Engine, fab *netsim.Fabric, params Params) *FS {
	if len(params.Targets) == 0 {
		panic(fmt.Sprintf("fsim: %q has no targets", params.Name))
	}
	if params.StripeSize <= 0 {
		panic(fmt.Sprintf("fsim: %q stripe size %d", params.Name, params.StripeSize))
	}
	for _, t := range params.Targets {
		if !fab.HasEndpoint(t.Node) {
			panic(fmt.Sprintf("fsim: target node %q not in fabric", t.Node))
		}
	}
	if params.MetaNode == "" {
		params.MetaNode = params.Targets[0].Node
	}
	if params.MetaCost == 0 {
		params.MetaCost = DefaultMetaCost
	}
	return &FS{eng: eng, fab: fab, params: params, files: make(map[string]*fileMeta),
		met: newFSMetrics(), flt: faults.For(eng)}
}

// Name reports the filesystem instance name.
func (fs *FS) Name() string { return fs.params.Name }

// Kind reports the filesystem flavour ("nfs", "pvfs2", "lustre", "local").
func (fs *FS) Kind() string { return fs.params.Kind }

// Targets exposes the storage targets (for monitoring and peak math).
func (fs *FS) Targets() []Target { return fs.params.Targets }

// StripeSize reports the striping unit.
func (fs *FS) StripeSize() int64 { return fs.params.StripeSize }

// Traffic reports the filesystem's lifetime data-path totals: client
// extent bytes successfully written and read, across every file and every
// application sharing the instance.
func (fs *FS) Traffic() (written, read int64) { return fs.written, fs.read }

// File is an open handle. Handles are cheap descriptors; all state lives in
// the filesystem.
type File struct {
	fs   *FS
	name string
	acct *Account // nil outside co-execution
}

// SetAccount attributes this handle's subsequent data operations to an
// application account. Pass nil to detach.
func (f *File) SetAccount(a *Account) { f.acct = a }

// Open creates-or-opens a file from a client node, paying one metadata
// round trip.
func (fs *FS) Open(p *des.Proc, client, name string) *File {
	fs.metaOp(p, client)
	if _, ok := fs.files[name]; !ok {
		fs.files[name] = &fileMeta{targets: fs.allocateTargets()}
		fs.created++
		fs.met.creates.Inc()
	}
	fs.opens++
	fs.met.opens.Inc()
	return &File{fs: fs, name: name}
}

// allocateTargets picks the target subset for a new file: stripe over all
// targets unless FileStripeCount narrows it, in which case consecutive
// files start on rotating targets (Lustre's round-robin OST allocator).
func (fs *FS) allocateTargets() []int {
	n := len(fs.params.Targets)
	sc := EffectiveStripeCount(fs.params.FileStripeCount, n)
	start := int(fs.created) % n
	out := make([]int, sc)
	for i := 0; i < sc; i++ {
		out[i] = (start + i) % n
	}
	return out
}

// metaOp charges a metadata request: small message to the MDS plus service
// time.
func (fs *FS) metaOp(p *des.Proc, client string) {
	fs.fab.Send(p, client, fs.params.MetaNode, 1024)
	p.Sleep(fs.params.MetaCost)
	fs.met.metaOps.Inc()
}

// ChargeMetaOp exposes the metadata-operation cost to upper layers (e.g.
// MPI-IO shared file pointers, which serialize through the target in real
// implementations).
func (fs *FS) ChargeMetaOp(p *des.Proc, client string) { fs.metaOp(p, client) }

// Name reports the file's path.
func (f *File) Name() string { return f.name }

// Size reports the current file size (max written extent).
func (f *File) Size() int64 { return f.fs.files[f.name].size }

// Close releases the handle with one metadata operation.
func (f *File) Close(p *des.Proc, client string) {
	f.fs.metaOp(p, client)
}

// extentChunk is one target's share of a striped extent. target indexes the
// file's target subset, not the global target list.
type extentChunk struct {
	target int
	offset int64 // target-local offset
	size   int64
}

// stripeExtent splits a file extent across ntargets, round-robin by
// StripeSize, returning at most one coalesced chunk per target (successive
// stripe rows are contiguous in target-local space).
func (fs *FS) stripeExtent(ntargets int, offset, size int64) []extentChunk {
	n := int64(ntargets)
	unit := fs.params.StripeSize
	byTarget := make(map[int]*extentChunk)
	var order []int
	for size > 0 {
		unitIdx := offset / unit
		within := offset % unit
		take := unit - within
		if take > size {
			take = size
		}
		tgt := int(unitIdx % n)
		row := unitIdx / n
		local := row*unit + within
		if c, ok := byTarget[tgt]; ok && c.offset+c.size == local {
			c.size += take
		} else if !ok {
			byTarget[tgt] = &extentChunk{target: tgt, offset: local, size: take}
			order = append(order, tgt)
		} else {
			// Discontiguous on the same target (wrap within one
			// call): extend conservatively to cover the gap; this
			// only happens for extents spanning many rows where
			// the chunks are contiguous anyway.
			c.size = local + take - c.offset
		}
		offset += take
		size -= take
	}
	out := make([]extentChunk, 0, len(order))
	sort.Ints(order)
	for _, tgt := range order {
		out = append(out, *byTarget[tgt])
	}
	return out
}

// Write moves size bytes from the client node into the file at offset:
// network transfer to each involved target, then the target device write.
// Chunks proceed in parallel across targets — the aggregation mechanism
// that makes striped filesystems outrun a single NFS server.
//
// The returned error is non-nil only under an attached fault schedule
// with transient-error effects (faults.ErrTransient); callers on healthy
// clusters may ignore it.
func (f *File) Write(p *des.Proc, client string, offset, size int64) error {
	fs := f.fs
	if size < 0 || offset < 0 {
		panic(fmt.Sprintf("fsim: write off=%d size=%d", offset, size))
	}
	if size == 0 {
		return nil
	}
	fs.met.writeSize.Observe(size)
	meta := fs.files[f.name]
	chunks := fs.stripeExtent(len(meta.targets), offset, size)
	if err := fs.runChunks(p, client, meta.targets, chunks, true); err != nil {
		return err
	}
	if end := offset + size; end > meta.size {
		meta.size = end
	}
	fs.written += size
	if a := f.acct; a != nil {
		a.BytesWritten += size
		a.Writes++
		a.NetBytes += size // write data to the targets
	}
	return nil
}

// Read moves size bytes from the file into the client node: target device
// read, then network transfer back. Error semantics as for Write.
func (f *File) Read(p *des.Proc, client string, offset, size int64) error {
	fs := f.fs
	if size < 0 || offset < 0 {
		panic(fmt.Sprintf("fsim: read off=%d size=%d", offset, size))
	}
	if size == 0 {
		return nil
	}
	fs.met.readSize.Observe(size)
	meta := fs.files[f.name]
	chunks := fs.stripeExtent(len(meta.targets), offset, size)
	if err := fs.runChunks(p, client, meta.targets, chunks, false); err != nil {
		return err
	}
	fs.read += size
	if a := f.acct; a != nil {
		a.BytesRead += size
		a.Reads++
		// Data back to the client plus one 256-byte request message per
		// server-granularity step — the same payloads chunkOp put on the
		// fabric, tallied here so the hot closures stay untouched.
		a.NetBytes += size + 256*fs.requestMessages(chunks)
	}
	return nil
}

// requestMessages counts the per-step read request messages chunkOp issues
// for a chunk set, given the server request granularity.
func (fs *FS) requestMessages(chunks []extentChunk) int64 {
	var n int64
	for _, c := range chunks {
		step := fs.params.MaxServerRequest
		if step <= 0 || step > c.size {
			step = c.size
		}
		n += (c.size + step - 1) / step
	}
	return n
}

// runChunks executes per-target chunk operations, in parallel when more
// than one target is involved. The healthy path (no injector) spawns the
// same closures as the seed — no error slice, no extra captures — so the
// allocs/op gate holds; only faulted clusters pay for error collection.
func (fs *FS) runChunks(p *des.Proc, client string, targets []int, chunks []extentChunk, write bool) error {
	if len(chunks) == 1 {
		return fs.chunkOp(p, client, targets, chunks[0], write)
	}
	wg := des.NewWaitGroup(fs.eng)
	wg.Add(len(chunks))
	// Chunk workers live on the shard of the storage target they drive, so
	// a node-partitioned engine keeps each target's device events local.
	if fs.flt == nil {
		for _, c := range chunks {
			c := c
			shard := fs.eng.ShardOf(fs.params.Targets[targets[c.target]].Node)
			fs.eng.SpawnOn(shard, fs.params.Name+"/chunk", func(hp *des.Proc) {
				fs.chunkOp(hp, client, targets, c, write)
				wg.Done()
			})
		}
		wg.Wait(p)
		return nil
	}
	errs := make([]error, len(chunks))
	for i, c := range chunks {
		i, c := i, c
		shard := fs.eng.ShardOf(fs.params.Targets[targets[c.target]].Node)
		fs.eng.SpawnOn(shard, fs.params.Name+"/chunk", func(hp *des.Proc) {
			errs[i] = fs.chunkOp(hp, client, targets, c, write)
			wg.Done()
		})
	}
	wg.Wait(p)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (fs *FS) chunkOp(p *des.Proc, client string, targets []int, c extentChunk, write bool) error {
	if fs.flt != nil {
		// Transient server errors surface at request-issue time: the
		// client learns immediately and retries the whole extent, so no
		// partial transfer time is charged here.
		if err := fs.flt.OpError(p.Now()); err != nil {
			return err
		}
	}
	t := fs.params.Targets[targets[c.target]]
	step := fs.params.MaxServerRequest
	if step <= 0 || step > c.size {
		step = c.size
	}
	for done := int64(0); done < c.size; done += step {
		n := step
		if c.size-done < n {
			n = c.size - done
		}
		off := c.offset + done
		if write {
			fs.fab.Send(p, client, t.Node, n)
			t.Dev.Write(p, off, n)
		} else {
			// Request message, device read, data back to client.
			fs.fab.Send(p, client, t.Node, 256)
			t.Dev.Read(p, off, n)
			fs.fab.Send(p, t.Node, client, n)
		}
	}
	return nil
}

// Sync drains every cache-wrapped target, modeling fsync/umount.
func (fs *FS) Sync(p *des.Proc) {
	for _, t := range fs.params.Targets {
		if d, ok := t.Dev.(*disksim.WriteCache); ok {
			d.Drain(p)
		}
	}
}

// DropCaches drains every cache-wrapped target and invalidates its
// recently-written index — the flush-and-remount a careful benchmark does
// between its write and read passes.
func (fs *FS) DropCaches(p *des.Proc) {
	fs.Sync(p)
	for _, t := range fs.params.Targets {
		if d, ok := t.Dev.(*disksim.WriteCache); ok {
			d.Invalidate()
		}
	}
}

// PeakDeviceBandwidth sums the targets' streaming device rates — the
// quantity Eq. 3–4 of the paper compute from IOzone (BW_PK): the ideal
// parallel device ceiling with no network in the way.
func (fs *FS) PeakDeviceBandwidth(write bool) units.Bandwidth {
	var sum units.Bandwidth
	for _, t := range fs.params.Targets {
		sum += deviceStreamRate(t.Dev, write)
	}
	return sum
}

// deviceStreamRate estimates one device's streaming rate by its type.
func deviceStreamRate(dev disksim.Device, write bool) units.Bandwidth {
	switch d := dev.(type) {
	case *disksim.Array:
		return d.PeakBandwidth(write)
	case *disksim.WriteCache:
		return deviceStreamRate(d.Inner(), write)
	case *disksim.Disk:
		return d.StreamRate(write)
	default:
		panic(fmt.Sprintf("fsim: unknown device type %T", dev))
	}
}
