package fsim

import (
	"fmt"
	"testing"
	"testing/quick"

	"iophases/internal/des"
	"iophases/internal/disksim"
	"iophases/internal/netsim"
	"iophases/internal/units"
)

// rig bundles a small simulated cluster for filesystem tests.
type rig struct {
	eng *des.Engine
	fab *netsim.Fabric
}

func newRig(clients int) *rig {
	eng := des.NewEngine()
	fab := netsim.NewFabric(eng, "net", netsim.LinkParams{Bandwidth: units.MBps(100), Latency: 10 * units.Microsecond})
	for i := 0; i < clients; i++ {
		fab.AddEndpoint(fmt.Sprintf("cn%d", i))
	}
	return &rig{eng: eng, fab: fab}
}

func (r *rig) nfs(t *testing.T, diskBW float64) *FS {
	t.Helper()
	r.fab.AddEndpoint("nas")
	d := disksim.NewDisk(r.eng, "nas-disk", disksim.DiskParams{
		SeqReadBW: units.MBps(diskBW), SeqWriteBW: units.MBps(diskBW),
		SeekTime: 5 * units.Millisecond, CapacityB: units.TiB, NearThreshold: units.MiB,
	})
	return New(r.eng, r.fab, Params{
		Name: "nfs", Kind: "nfs",
		Targets:    []Target{{Node: "nas", Dev: d}},
		StripeSize: 64 * units.KiB,
	})
}

func (r *rig) striped(t *testing.T, n int, diskBW float64) *FS {
	t.Helper()
	var targets []Target
	for i := 0; i < n; i++ {
		node := fmt.Sprintf("ion%d", i)
		r.fab.AddEndpoint(node)
		d := disksim.NewDisk(r.eng, node+"-disk", disksim.DiskParams{
			SeqReadBW: units.MBps(diskBW), SeqWriteBW: units.MBps(diskBW),
			SeekTime: 5 * units.Millisecond, CapacityB: units.TiB, NearThreshold: units.MiB,
		})
		targets = append(targets, Target{Node: node, Dev: d})
	}
	return New(r.eng, r.fab, Params{
		Name: "pvfs", Kind: "pvfs2", Targets: targets, StripeSize: 64 * units.KiB,
	})
}

func TestNFSWriteGoesThroughNetworkAndDisk(t *testing.T) {
	r := newRig(1)
	fs := r.nfs(t, 1000) // fast disk: network-bound
	var took units.Duration
	r.eng.Spawn("c", func(p *des.Proc) {
		f := fs.Open(p, "cn0", "/data")
		start := p.Now()
		f.Write(p, "cn0", 0, 100*units.MiB)
		took = p.Now() - start
		f.Close(p, "cn0")
	})
	r.eng.Run()
	// Network (100 MB/s) dominates: ≈1s + disk time + latencies.
	if took < units.Second || took > 1300*units.Millisecond {
		t.Fatalf("write took %v, want ≈1s (network-bound)", took)
	}
}

func TestNFSAggregateBoundByServerLink(t *testing.T) {
	const n = 4
	r := newRig(n)
	fs := r.nfs(t, 1000)
	for i := 0; i < n; i++ {
		node := fmt.Sprintf("cn%d", i)
		r.eng.Spawn(node, func(p *des.Proc) {
			f := fs.Open(p, node, "/shared")
			f.Write(p, node, int64(100*units.MiB), 100*units.MiB)
		})
	}
	r.eng.Run()
	// 400 MiB through one 100 MB/s NIC ≥ 4s regardless of disk speed.
	if r.eng.Now() < 4*units.Second {
		t.Fatalf("aggregate %v, want ≥4s (server NIC bound)", r.eng.Now())
	}
}

func TestStripedFSScalesWithTargets(t *testing.T) {
	const n = 4
	run := func(targets int) units.Duration {
		r := newRig(n)
		fs := r.striped(t, targets, 1000)
		for i := 0; i < n; i++ {
			node := fmt.Sprintf("cn%d", i)
			r.eng.Spawn(node, func(p *des.Proc) {
				f := fs.Open(p, node, "/shared")
				f.Write(p, node, int64(i)*100*units.MiB, 100*units.MiB)
			})
		}
		r.eng.Run()
		return r.eng.Now()
	}
	one, four := run(1), run(4)
	speedup := float64(one) / float64(four)
	// With 4 targets each client is bounded by its own NIC (1s for
	// 100 MiB at 100 MB/s) plus per-target downlink sharing, so the ideal
	// 4x collapses to ≈2.3x — the same effect that keeps real striped
	// filesystems below linear scaling on slow client NICs.
	if speedup < 2.0 {
		t.Fatalf("striping speedup %.2f (1 target %v, 4 targets %v)", speedup, one, four)
	}
	if four > 2*units.Second {
		t.Fatalf("4-target case took %v, want < 2s (NIC-bound)", four)
	}
}

func TestReadCarriesDataBack(t *testing.T) {
	r := newRig(1)
	fs := r.nfs(t, 1000)
	var wrote, read units.Duration
	r.eng.Spawn("c", func(p *des.Proc) {
		f := fs.Open(p, "cn0", "/f")
		start := p.Now()
		f.Write(p, "cn0", 0, 50*units.MiB)
		wrote = p.Now() - start
		start = p.Now()
		f.Read(p, "cn0", 0, 50*units.MiB)
		read = p.Now() - start
	})
	r.eng.Run()
	if read < wrote/2 {
		t.Fatalf("read %v suspiciously cheap vs write %v", read, wrote)
	}
	if fs.Targets()[0].Dev.Counters().ReadBytes != 50*units.MiB {
		t.Fatal("read did not reach the device")
	}
}

func TestFileSizeTracksMaxExtent(t *testing.T) {
	r := newRig(1)
	fs := r.nfs(t, 1000)
	r.eng.Spawn("c", func(p *des.Proc) {
		f := fs.Open(p, "cn0", "/f")
		f.Write(p, "cn0", 10*units.MiB, 5*units.MiB)
		if f.Size() != 15*units.MiB {
			t.Errorf("size = %d", f.Size())
		}
		f.Write(p, "cn0", 0, units.MiB)
		if f.Size() != 15*units.MiB {
			t.Errorf("size shrank to %d", f.Size())
		}
	})
	r.eng.Run()
}

func TestStripeExtentPartition(t *testing.T) {
	r := newRig(1)
	fs := r.striped(t, 3, 100)
	f := func(off uint32, sz uint16) bool {
		offset, size := int64(off), int64(sz)+1
		var total int64
		for _, c := range fs.stripeExtent(3, offset, size) {
			if c.size <= 0 || c.target < 0 || c.target >= 3 {
				return false
			}
			total += c.size
		}
		return total >= size // coalescing may cover gaps, never undershoot
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStripeExtentExactWhenAligned(t *testing.T) {
	r := newRig(1)
	fs := r.striped(t, 3, 100)
	chunks := fs.stripeExtent(3, 0, 3*64*units.KiB*10)
	var total int64
	for _, c := range chunks {
		total += c.size
	}
	if total != 3*64*units.KiB*10 {
		t.Fatalf("aligned extent split covers %d bytes", total)
	}
	if len(chunks) != 3 {
		t.Fatalf("want one coalesced chunk per target, got %d", len(chunks))
	}
}

func TestPeakDeviceBandwidthSumsTargets(t *testing.T) {
	r := newRig(1)
	fs := r.striped(t, 3, 70)
	if got := fs.PeakDeviceBandwidth(true).MBpsValue(); got != 210 {
		t.Fatalf("peak = %v, want 210", got)
	}
}

func TestSyncDrainsCaches(t *testing.T) {
	r := newRig(1)
	r.fab.AddEndpoint("nas")
	disk := disksim.NewDisk(r.eng, "d", disksim.SATA7200(units.TiB))
	cache := disksim.NewWriteCache(r.eng, "c", disk, disksim.DefaultCacheParams())
	fs := New(r.eng, r.fab, Params{
		Name: "nfs", Kind: "nfs",
		Targets:    []Target{{Node: "nas", Dev: cache}},
		StripeSize: 64 * units.KiB,
	})
	r.eng.Spawn("c", func(p *des.Proc) {
		f := fs.Open(p, "cn0", "/f")
		f.Write(p, "cn0", 0, 32*units.MiB)
		fs.Sync(p)
		if cache.Level() != 0 {
			t.Errorf("cache still dirty: %d", cache.Level())
		}
	})
	r.eng.Run()
	if disk.Counters().WriteBytes != 32*units.MiB {
		t.Fatalf("disk got %d bytes", disk.Counters().WriteBytes)
	}
}

func TestFileStripeCountNarrowsTargets(t *testing.T) {
	r := newRig(1)
	var targets []Target
	var disks []*disksim.Disk
	for i := 0; i < 4; i++ {
		node := fmt.Sprintf("oss%d", i)
		r.fab.AddEndpoint(node)
		d := disksim.NewDisk(r.eng, node+"-d", disksim.SATA7200(units.TiB))
		disks = append(disks, d)
		targets = append(targets, Target{Node: node, Dev: d})
	}
	fs := New(r.eng, r.fab, Params{
		Name: "lustre", Kind: "lustre", Targets: targets,
		StripeSize: units.MiB, FileStripeCount: 2,
	})
	r.eng.Spawn("c", func(p *des.Proc) {
		f := fs.Open(p, "cn0", "/one")
		f.Write(p, "cn0", 0, 8*units.MiB)
	})
	r.eng.Run()
	touched := 0
	for _, d := range disks {
		if d.Counters().WriteBytes > 0 {
			touched++
		}
	}
	if touched != 2 {
		t.Fatalf("file touched %d targets, want stripe count 2", touched)
	}
}

func TestFileStripeCountRotatesAcrossFiles(t *testing.T) {
	r := newRig(1)
	var targets []Target
	var disks []*disksim.Disk
	for i := 0; i < 3; i++ {
		node := fmt.Sprintf("oss%d", i)
		r.fab.AddEndpoint(node)
		d := disksim.NewDisk(r.eng, node+"-d", disksim.SATA7200(units.TiB))
		disks = append(disks, d)
		targets = append(targets, Target{Node: node, Dev: d})
	}
	fs := New(r.eng, r.fab, Params{
		Name: "lustre", Kind: "lustre", Targets: targets,
		StripeSize: units.MiB, FileStripeCount: 1,
	})
	r.eng.Spawn("c", func(p *des.Proc) {
		for i := 0; i < 3; i++ {
			f := fs.Open(p, "cn0", fmt.Sprintf("/f%d", i))
			f.Write(p, "cn0", 0, units.MiB)
		}
	})
	r.eng.Run()
	for i, d := range disks {
		if d.Counters().WriteBytes != units.MiB {
			t.Fatalf("disk %d got %d bytes; allocator should rotate", i, d.Counters().WriteBytes)
		}
	}
}

func TestOpenUnknownNodePanics(t *testing.T) {
	r := newRig(1)
	fs := r.nfs(t, 100)
	panicked := false
	r.eng.Spawn("c", func(p *des.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		fs.Open(p, "nonexistent", "/f")
	})
	r.eng.Run()
	if !panicked {
		t.Fatal("no panic for unknown client endpoint")
	}
}
