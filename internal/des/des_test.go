package des

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"iophases/internal/units"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Schedule(20*units.Millisecond, func() { got = append(got, "c") })
	e.Schedule(10*units.Millisecond, func() { got = append(got, "a") })
	e.Schedule(10*units.Millisecond, func() { got = append(got, "b") })
	e.Run()
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("event order = %v, want %v", got, want)
	}
	if e.Now() != 20*units.Millisecond {
		t.Fatalf("final time = %v, want 20ms", e.Now())
	}
}

func TestTiesFireInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(units.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken at %d: got %d", i, v)
		}
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var wake units.Duration
	e.Spawn("p", func(p *Proc) {
		p.Sleep(3 * units.Second)
		wake = p.Now()
	})
	e.Run()
	if wake != 3*units.Second {
		t.Fatalf("woke at %v, want 3s", wake)
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine()
	var order []string
	for _, spec := range []struct {
		name  string
		sleep units.Duration
	}{{"slow", 30 * units.Millisecond}, {"fast", 10 * units.Millisecond}, {"mid", 20 * units.Millisecond}} {
		spec := spec
		e.Spawn(spec.name, func(p *Proc) {
			p.Sleep(spec.sleep)
			order = append(order, spec.name)
		})
	}
	e.Run()
	want := []string{"fast", "mid", "slow"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestDeadlockDetection(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("deadlock not detected")
		}
		msg, ok := r.(string)
		if !ok || msg == "" {
			t.Fatalf("unexpected panic payload %v", r)
		}
	}()
	e := NewEngine()
	m := NewMailbox(e, "never", 0)
	e.Spawn("stuck", func(p *Proc) { m.Get(p) })
	e.Run()
}

func TestResourceFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "disk", 1)
	var order []string
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("p%d", i)
		e.Spawn(name, func(p *Proc) {
			r.Acquire(p, 1)
			order = append(order, name)
			p.Sleep(units.Second)
			r.Release(1)
		})
	}
	e.Run()
	want := []string{"p0", "p1", "p2", "p3", "p4"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("admission order = %v, want %v", order, want)
	}
	if e.Now() != 5*units.Second {
		t.Fatalf("serialized holds should end at 5s, got %v", e.Now())
	}
}

func TestResourceNoBarging(t *testing.T) {
	// A big request at the head of the queue must not be overtaken by a
	// small one that arrives later.
	e := NewEngine()
	r := NewResource(e, "srv", 4)
	var order []string
	e.Spawn("hog", func(p *Proc) {
		r.Acquire(p, 4)
		p.Sleep(units.Second)
		r.Release(4)
	})
	e.Spawn("big", func(p *Proc) {
		p.Sleep(units.Millisecond)
		r.Acquire(p, 3)
		order = append(order, "big")
		r.Release(3)
	})
	e.Spawn("small", func(p *Proc) {
		p.Sleep(2 * units.Millisecond)
		r.Acquire(p, 1)
		order = append(order, "small")
		r.Release(1)
	})
	e.Run()
	want := []string{"big", "small"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v (no barging)", order, want)
	}
}

func TestResourceConcurrentCapacity(t *testing.T) {
	// Capacity 2 admits two holders at once: four 1s holds finish at 2s.
	e := NewEngine()
	r := NewResource(e, "dual", 2)
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			r.Acquire(p, 1)
			p.Sleep(units.Second)
			r.Release(1)
		})
	}
	e.Run()
	if e.Now() != 2*units.Second {
		t.Fatalf("finished at %v, want 2s", e.Now())
	}
}

func TestBarrierReleasesAtLastArrival(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(e, "b", 3)
	var releases []units.Duration
	for i := 0; i < 3; i++ {
		d := units.Duration(i+1) * units.Second
		e.Spawn(fmt.Sprintf("r%d", i), func(p *Proc) {
			p.Sleep(d)
			b.Wait(p)
			releases = append(releases, p.Now())
		})
	}
	e.Run()
	if len(releases) != 3 {
		t.Fatalf("got %d releases", len(releases))
	}
	for _, at := range releases {
		if at != 3*units.Second {
			t.Fatalf("release at %v, want 3s (last arrival)", at)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(e, "b", 2)
	count := 0
	for i := 0; i < 2; i++ {
		e.Spawn(fmt.Sprintf("r%d", i), func(p *Proc) {
			for k := 0; k < 10; k++ {
				p.Sleep(units.Millisecond)
				b.Wait(p)
				count++
			}
		})
	}
	e.Run()
	if count != 20 {
		t.Fatalf("count = %d, want 20", count)
	}
}

func TestMailboxRendezvous(t *testing.T) {
	e := NewEngine()
	m := NewMailbox(e, "m", 0)
	var sent, recv units.Duration
	e.Spawn("tx", func(p *Proc) {
		m.Put(p, 42)
		sent = p.Now()
	})
	e.Spawn("rx", func(p *Proc) {
		p.Sleep(5 * units.Second)
		if v := m.Get(p); v != 42 {
			t.Errorf("got %v", v)
		}
		recv = p.Now()
	})
	e.Run()
	if recv != 5*units.Second {
		t.Fatalf("recv at %v", recv)
	}
	if sent != 5*units.Second {
		t.Fatalf("blocking send completed at %v, want 5s", sent)
	}
}

func TestMailboxBuffered(t *testing.T) {
	e := NewEngine()
	m := NewMailbox(e, "m", 2)
	var puts []units.Duration
	e.Spawn("tx", func(p *Proc) {
		for i := 0; i < 3; i++ {
			m.Put(p, i)
			puts = append(puts, p.Now())
		}
	})
	e.Spawn("rx", func(p *Proc) {
		p.Sleep(units.Second)
		for i := 0; i < 3; i++ {
			if v := m.Get(p); v != i {
				t.Errorf("item %d = %v", i, v)
			}
		}
	})
	e.Run()
	if puts[0] != 0 || puts[1] != 0 {
		t.Fatalf("buffered puts should not block: %v", puts)
	}
	if puts[2] != units.Second {
		t.Fatalf("third put at %v, want 1s", puts[2])
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	wg := NewWaitGroup(e)
	wg.Add(3)
	var done units.Duration
	for i := 1; i <= 3; i++ {
		d := units.Duration(i) * units.Second
		e.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	e.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		done = p.Now()
	})
	e.Run()
	if done != 3*units.Second {
		t.Fatalf("wait released at %v, want 3s", done)
	}
}

// TestDeterminism re-runs an irregular workload and requires identical
// completion timestamps — the core reproducibility guarantee.
func TestDeterminism(t *testing.T) {
	run := func() []units.Duration {
		e := NewEngine()
		r := NewResource(e, "r", 2)
		b := NewBarrier(e, "b", 4)
		var stamps []units.Duration
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for k := 0; k < 5; k++ {
					p.Sleep(units.Duration(1+(i*7+k*3)%5) * units.Millisecond)
					r.Acquire(p, 1)
					p.Sleep(units.Duration(1+(i+k)%3) * units.Millisecond)
					r.Release(1)
					b.Wait(p)
				}
				stamps = append(stamps, p.Now())
			})
		}
		e.Run()
		return stamps
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

// Property: for any set of sleep durations, processes complete in sorted
// duration order and the engine clock ends at the maximum.
func TestQuickSleepOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 50 {
			return true
		}
		e := NewEngine()
		var finished []units.Duration
		for i, r := range raw {
			d := units.Duration(r) * units.Microsecond
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(d)
				finished = append(finished, p.Now())
			})
		}
		e.Run()
		var max units.Duration
		for i := 1; i < len(finished); i++ {
			if finished[i] < finished[i-1] {
				return false
			}
		}
		for _, d := range finished {
			if d > max {
				max = d
			}
		}
		return e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []int
	e.Schedule(units.Second, func() { fired = append(fired, 1) })
	e.Schedule(3*units.Second, func() { fired = append(fired, 3) })
	remaining := e.RunUntil(2 * units.Second)
	if !remaining {
		t.Fatal("expected remaining events")
	}
	if !reflect.DeepEqual(fired, []int{1}) {
		t.Fatalf("fired = %v", fired)
	}
	if e.RunUntil(10 * units.Second) {
		t.Fatal("queue should be drained")
	}
	if !reflect.DeepEqual(fired, []int{1, 3}) {
		t.Fatalf("fired = %v", fired)
	}
}

func TestYield(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	e.Run()
	want := []string{"a1", "b1", "a2"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}
