package des

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"iophases/internal/units"
)

// TestElisionEngagesWhenUncontended pins that the fast path actually fires:
// a lone sleeping proc must advance the clock inline, never parking.
func TestElisionEngagesWhenUncontended(t *testing.T) {
	e := NewEngine()
	e.Spawn("solo", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(units.Millisecond)
		}
	})
	e.Run()
	if e.Now() != 10*units.Millisecond {
		t.Fatalf("clock at %v, want 10ms", e.Now())
	}
	if e.Elisions() != 10 {
		t.Fatalf("elisions = %d, want 10", e.Elisions())
	}
}

// TestElisionTieFallsBackToQueue pins the legality boundary: an event at
// exactly now+d was scheduled before the sleep's resume would be, so it
// must fire first — the sleep may not elide past it.
func TestElisionTieFallsBackToQueue(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(units.Millisecond, func() { order = append(order, "event") })
	e.Spawn("p", func(p *Proc) {
		p.Sleep(units.Millisecond)
		order = append(order, "proc")
	})
	e.Run()
	if want := []string{"event", "proc"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestElisionIdenticalToParkResume is the bit-identity contract of the fast
// path: any mix of sleeps, resources and barriers must produce the same
// completion stamps with elision on and off.
func TestElisionIdenticalToParkResume(t *testing.T) {
	run := func() []units.Duration {
		e := NewEngine()
		r := NewResource(e, "r", 2)
		b := NewBarrier(e, "b", 4)
		var stamps []units.Duration
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for k := 0; k < 5; k++ {
					p.Sleep(units.Duration(1+(i*7+k*3)%5) * units.Millisecond)
					r.Acquire(p, 1)
					p.Sleep(units.Duration(1+(i+k)%3) * units.Millisecond)
					r.Release(1)
					b.Wait(p)
				}
				stamps = append(stamps, p.Now())
			})
		}
		e.Run()
		return stamps
	}
	fast := run()
	elisionDisabled = true
	slow := run()
	elisionDisabled = false
	if !reflect.DeepEqual(fast, slow) {
		t.Fatalf("elided run %v differs from park/resume run %v", fast, slow)
	}
}

// Property form of the same contract over random sleep schedules.
func TestQuickElisionInvariance(t *testing.T) {
	stamps := func(raw []uint16) []units.Duration {
		e := NewEngine()
		var out []units.Duration
		for i, r := range raw {
			d := units.Duration(r) * units.Microsecond
			e.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(d)
				p.Sleep(d / 2)
				out = append(out, p.Now())
			})
		}
		e.Run()
		return out
	}
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 40 {
			return true
		}
		fast := stamps(raw)
		elisionDisabled = true
		slow := stamps(raw)
		elisionDisabled = false
		return reflect.DeepEqual(fast, slow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestElisionRespectsRunUntil pins the deadline guard: a sleep that would
// elide past a RunUntil deadline must park instead, so the engine stops
// exactly at the boundary with the resume still queued.
func TestElisionRespectsRunUntil(t *testing.T) {
	e := NewEngine()
	var wake units.Duration
	e.Spawn("p", func(p *Proc) {
		p.Sleep(5 * units.Second)
		wake = p.Now()
	})
	if !e.RunUntil(2 * units.Second) {
		t.Fatal("expected the sleep's resume to remain queued")
	}
	if wake != 0 {
		t.Fatalf("proc woke at %v before the deadline window reached 5s", wake)
	}
	if e.RunUntil(10 * units.Second) {
		t.Fatal("queue should drain")
	}
	if wake != 5*units.Second {
		t.Fatalf("woke at %v, want 5s", wake)
	}
	// Within a generous deadline the fast path applies again.
	if e.Elisions() == 0 {
		e2 := NewEngine()
		e2.Spawn("p", func(p *Proc) { p.Sleep(units.Second) })
		e2.RunUntil(units.Second)
		if e2.Elisions() != 1 {
			t.Fatalf("in-deadline sleep did not elide (%d)", e2.Elisions())
		}
	}
}

// TestDeadlockReportNamesProcsAndReasons covers the diagnostics path: the
// panic must name every blocked proc with the reason it parked under.
func TestDeadlockReportNamesProcsAndReasons(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("deadlock not detected")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic payload %T, want string", r)
		}
		for _, want := range []string{
			"deadlock at ",
			"elided=",
			"switches=",
			"2 blocked processes",
			"alice[waiting-for-token]",
			"bob[holding-pattern]",
		} {
			if !strings.Contains(msg, want) {
				t.Errorf("deadlock report %q missing %q", msg, want)
			}
		}
	}()
	e := NewEngine()
	e.Spawn("alice", func(p *Proc) { p.Park("waiting-for-token") })
	e.Spawn("bob", func(p *Proc) { p.Park("holding-pattern") })
	e.Run()
}

// TestProcRecyclingDrainsPool pins that finished engines leave no parked
// helper goroutines behind: spawning through several Run cycles reuses the
// pool and Run's exit empties it.
func TestProcRecyclingDrainsPool(t *testing.T) {
	e := NewEngine()
	for round := 0; round < 3; round++ {
		for i := 0; i < 8; i++ {
			e.Spawn("w", func(p *Proc) { p.Sleep(units.Microsecond) })
		}
		e.Run()
		if len(e.pool) != 0 {
			t.Fatalf("round %d: %d procs still pooled after Run", round, len(e.pool))
		}
		if len(e.live) != 0 {
			t.Fatalf("round %d: %d procs still live", round, len(e.live))
		}
	}
}

// TestDeadlockReportCarriesVirtualTime pins that a hang report is
// self-locating in virtual time: a process parking forever after advancing
// the clock must produce a panic stamped with that exact timestamp.
func TestDeadlockReportCarriesVirtualTime(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("deadlock not detected")
		}
		msg := r.(string)
		if !strings.Contains(msg, "deadlock at 0.001500s") {
			t.Errorf("deadlock report %q missing virtual timestamp 0.001500s", msg)
		}
	}()
	e := NewEngine()
	e.Spawn("stall", func(p *Proc) {
		p.Sleep(1500 * units.Microsecond)
		p.Park("forever")
	})
	e.Run()
}
