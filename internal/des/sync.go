package des

import "fmt"

// Barrier blocks processes until a fixed number have arrived, then releases
// them all at the arrival time of the last one — the semantics of
// MPI_Barrier in virtual time. A Barrier is reusable: generation counting
// lets the same ranks synchronize repeatedly.
type Barrier struct {
	eng     *Engine
	name    string
	n       int
	arrived []*Proc
}

// NewBarrier creates a barrier for n processes.
func NewBarrier(eng *Engine, name string, n int) *Barrier {
	if n <= 0 {
		panic(fmt.Sprintf("des: barrier %q size %d", name, n))
	}
	return &Barrier{eng: eng, name: name, n: n}
}

// Wait blocks until n processes (including the caller) have called Wait in
// the current generation. The last arriver releases the others and returns
// without blocking.
func (b *Barrier) Wait(p *Proc) {
	if len(b.arrived) == b.n-1 {
		// Resume this generation and reuse the backing array for the
		// next one. Safe: the resumed procs only re-enter Wait (and
		// append) after this loop has finished reading the slice.
		waiting := b.arrived
		b.arrived = b.arrived[:0]
		for _, w := range waiting {
			b.eng.scheduleResume(0, w) // closure-free wakeup
		}
		return
	}
	b.arrived = append(b.arrived, p)
	p.block("barrier " + b.name)
}

// Size reports the participant count.
func (b *Barrier) Size() int { return b.n }

// Mailbox is a blocking point-to-point channel in virtual time, used for
// MPI-style message passing. Senders block until a receiver takes the value
// (rendezvous), matching blocking MPI semantics; buffered delivery is the
// caller's concern.
type Mailbox struct {
	eng     *Engine
	name    string
	items   []interface{}
	getters []*Proc
	cap     int
	putters []mboxPut
}

type mboxPut struct {
	p *Proc
	v interface{}
}

// NewMailbox creates a mailbox with the given buffer capacity; capacity 0
// means every Put rendezvouses with a Get.
func NewMailbox(eng *Engine, name string, capacity int) *Mailbox {
	if capacity < 0 {
		panic(fmt.Sprintf("des: mailbox %q capacity %d", name, capacity))
	}
	return &Mailbox{eng: eng, name: name, cap: capacity}
}

// Put delivers v, blocking while the buffer is full and no getter waits.
func (m *Mailbox) Put(p *Proc, v interface{}) {
	if len(m.getters) > 0 {
		g := m.getters[0]
		m.getters = m.getters[1:]
		m.items = append(m.items, v)
		m.eng.scheduleResume(0, g)
		return
	}
	if len(m.items) < m.cap {
		m.items = append(m.items, v)
		return
	}
	m.putters = append(m.putters, mboxPut{p, v})
	p.block("put " + m.name)
}

// Get receives the oldest value, blocking while the mailbox is empty.
func (m *Mailbox) Get(p *Proc) interface{} {
	if len(m.items) == 0 {
		m.promotePutter() // rendezvous with a blocked sender, if any
	}
	for len(m.items) == 0 {
		m.getters = append(m.getters, p)
		p.block("get " + m.name)
	}
	v := m.items[0]
	m.items = m.items[1:]
	if len(m.items) < m.cap {
		m.promotePutter() // buffer space freed; admit the next sender
	}
	return v
}

// promotePutter moves the oldest blocked sender's value into the buffer and
// resumes that sender. Callers guarantee there is room (or an active take).
func (m *Mailbox) promotePutter() {
	if len(m.putters) == 0 {
		return
	}
	pt := m.putters[0]
	m.putters = m.putters[1:]
	m.items = append(m.items, pt.v)
	m.eng.scheduleResume(0, pt.p)
}

// Len reports the buffered item count.
func (m *Mailbox) Len() int { return len(m.items) }

// WaitGroup counts outstanding work in virtual time; Wait blocks until the
// counter returns to zero.
type WaitGroup struct {
	eng     *Engine
	count   int
	waiters []*Proc
}

// NewWaitGroup creates an empty wait group.
func NewWaitGroup(eng *Engine) *WaitGroup { return &WaitGroup{eng: eng} }

// Add adjusts the counter by delta; a negative result panics.
func (w *WaitGroup) Add(delta int) {
	w.count += delta
	if w.count < 0 {
		panic("des: negative WaitGroup count")
	}
	if w.count == 0 {
		// Reuse the waiter buffer across rounds (see Barrier.Wait for
		// why the aliasing is safe).
		waiting := w.waiters
		w.waiters = w.waiters[:0]
		for _, p := range waiting {
			w.eng.scheduleResume(0, p)
		}
	}
}

// Done decrements the counter.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks until the counter is zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.count == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.block("waitgroup")
}
