package des

import "fmt"

// Resource is a counted resource with FIFO admission, the building block for
// links, disk queues and server threads. Acquire blocks until the requested
// units are available; waiters are admitted strictly in arrival order (no
// barging), so a large request at the head of the queue is not starved by
// smaller ones behind it.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	// waiters[head:] are the queued waiters. Dequeuing advances head
	// instead of re-slicing so the backing array's capacity is reused —
	// admission churn on a busy resource allocates nothing in steady
	// state.
	waiters []resWaiter
	head    int
}

type resWaiter struct {
	p *Proc
	n int
}

// NewResource creates a resource with the given total capacity.
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("des: resource %q capacity %d", name, capacity))
	}
	return &Resource{eng: eng, name: name, capacity: capacity}
}

// Acquire obtains n units, blocking the process until they are free.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("des: acquire %d of %q (capacity %d)", n, r.name, r.capacity))
	}
	if r.head == len(r.waiters) && r.inUse+n <= r.capacity {
		r.inUse += n
		return
	}
	r.waiters = append(r.waiters, resWaiter{p, n})
	p.block("acquire " + r.name)
}

// Release returns n units and admits as many queued waiters as now fit, in
// FIFO order. Admitted processes resume via zero-delay events so wake-up
// order matches queue order deterministically.
func (r *Resource) Release(n int) {
	if n <= 0 || r.inUse < n {
		panic(fmt.Sprintf("des: release %d of %q (in use %d)", n, r.name, r.inUse))
	}
	r.inUse -= n
	for r.head < len(r.waiters) {
		w := r.waiters[r.head]
		if r.inUse+w.n > r.capacity {
			break
		}
		r.inUse += w.n
		r.waiters[r.head] = resWaiter{}
		r.head++
		r.eng.scheduleResume(0, w.p) // closure-free wakeup
	}
	if r.head == len(r.waiters) {
		r.waiters = r.waiters[:0]
		r.head = 0
	}
}

// InUse reports the currently held units.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of blocked waiters.
func (r *Resource) QueueLen() int { return len(r.waiters) - r.head }

// Use acquires n units, runs fn, and releases — the common
// hold-for-the-duration idiom.
func (r *Resource) Use(p *Proc, n int, fn func()) {
	r.Acquire(p, n)
	defer r.Release(n)
	fn()
}
