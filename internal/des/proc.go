package des

import (
	"fmt"

	"iophases/internal/units"
)

// Proc is a simulated process: a goroutine that runs in virtual time,
// cooperatively interleaved by the engine. At most one Proc executes at any
// instant; control transfers through the wake/park channel pair, so Procs
// may freely share state without data races.
type Proc struct {
	eng   *Engine
	name  string
	wake  chan struct{}
	park  chan struct{}
	state string // human-readable blocking reason for deadlock reports
	fn    func(p *Proc)
	shard int // owning event shard; always 0 on an unsharded engine
}

// Spawn starts fn as a new simulated process. The process begins at the
// current virtual time (via a zero-delay event) and runs until fn returns.
//
// Procs are recycled: a terminated process returns its goroutine and
// channels to the engine's free list, so the simulators' per-request
// helper processes (RAID member chunks, parallel-FS stripe fan-out) cost
// no allocation and no goroutine creation in steady state. No caller may
// retain the returned *Proc past fn's return — the identity is reused.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.spawnOn(e.curShard, name, fn)
}

// spawnOn is the Spawn core with an explicit shard: the new process's
// resume events queue on that shard. On an unsharded engine every caller
// passes 0 (curShard never moves), so the classic path is unchanged.
func (e *Engine) spawnOn(shard int, name string, fn func(p *Proc)) *Proc {
	var p *Proc
	if n := len(e.pool); n > 0 {
		p = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		p.name = name
		p.state = "starting"
		p.fn = fn
		p.shard = shard
	} else {
		p = &Proc{
			eng:   e,
			name:  name,
			wake:  make(chan struct{}),
			park:  make(chan struct{}),
			state: "starting",
			fn:    fn,
			shard: shard,
		}
		go p.loop()
	}
	e.live[p] = struct{}{}
	e.scheduleResume(0, p)
	return p
}

// loop is the recycled goroutine body: run one process function per wake,
// park back into the engine's free list between lives, exit when woken
// with no function (drainPool's termination signal).
func (p *Proc) loop() {
	for {
		<-p.wake
		fn := p.fn
		if fn == nil {
			return
		}
		p.fn = nil
		fn(p)
		e := p.eng
		delete(e.live, p) // engine is parked in resume(); safe to touch
		e.pool = append(e.pool, p)
		p.park <- struct{}{}
	}
}

// resume transfers control to p and blocks until p parks again (either by
// blocking on a primitive or by terminating). Only event callbacks call
// resume, so process wake-ups inherit the event queue's deterministic order.
func (e *Engine) resume(p *Proc) {
	e.switches++
	p.wake <- struct{}{}
	<-p.park
}

// block parks the calling process, handing control back to the engine, and
// returns when some event resumes it. reason is recorded for deadlock
// diagnostics.
func (p *Proc) block(reason string) {
	p.state = reason
	if m := p.eng.met; m != nil {
		m.parks.Inc()
	}
	p.park <- struct{}{}
	<-p.wake
	p.state = "running"
}

// Name reports the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine reports the engine the process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports the current virtual time.
func (p *Proc) Now() units.Duration { return p.eng.now }

// Sleep advances the process by d in virtual time.
//
// Fast path (switch elision): when no queued event fires at or before
// now+d, the scheduled resume would be the next event popped — so the
// park/resume rendezvous is pure overhead and Sleep instead advances the
// engine clock inline and keeps running on the same goroutine. Any tie
// (an event at exactly now+d has a smaller seq than a resume scheduled
// now, so it must run first) falls back to the park path, which keeps
// event order — and therefore every simulation result — bit-identical.
func (p *Proc) Sleep(d units.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("des: %s sleeping negative duration %v", p.name, d))
	}
	if d == 0 {
		return
	}
	e := p.eng
	if target := e.now + d; e.canElide(target) {
		e.now = target
		e.noteElision()
		return
	}
	e.scheduleResume(d, p)
	p.block("sleep")
}

// Park blocks the process until some event calls Engine.Unpark on it.
// It is the extension point for building custom blocking abstractions
// (caches, servers) outside this package; reason appears in deadlock
// reports.
func (p *Proc) Park(reason string) { p.block(reason) }

// Unpark schedules p to resume at the current virtual time. It must pair
// with a Park; unparking a running process corrupts the control handoff.
func (e *Engine) Unpark(p *Proc) {
	e.scheduleResume(0, p)
}

// Yield reschedules the process at the current time behind already-queued
// events, letting same-time events run first. With no same-time event
// queued there is nothing to yield to and the call returns inline (the
// rescheduled resume would fire immediately anyway).
func (p *Proc) Yield() {
	e := p.eng
	if e.canElide(e.now) {
		e.noteElision()
		return
	}
	e.scheduleResume(0, p)
	p.block("yield")
}
