package des

import (
	"fmt"

	"iophases/internal/units"
)

// Proc is a simulated process: a goroutine that runs in virtual time,
// cooperatively interleaved by the engine. At most one Proc executes at any
// instant; control transfers through the wake/park channel pair, so Procs
// may freely share state without data races.
type Proc struct {
	eng   *Engine
	name  string
	wake  chan struct{}
	park  chan struct{}
	state string // human-readable blocking reason for deadlock reports
}

// Spawn starts fn as a new simulated process. The process begins at the
// current virtual time (via a zero-delay event) and runs until fn returns.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:   e,
		name:  name,
		wake:  make(chan struct{}),
		park:  make(chan struct{}),
		state: "starting",
	}
	e.live[p] = struct{}{}
	go func() {
		<-p.wake
		fn(p)
		delete(e.live, p) // engine is parked in resume(); safe to touch
		p.park <- struct{}{}
	}()
	e.scheduleResume(0, p)
	return p
}

// resume transfers control to p and blocks until p parks again (either by
// blocking on a primitive or by terminating). Only event callbacks call
// resume, so process wake-ups inherit the event queue's deterministic order.
func (e *Engine) resume(p *Proc) {
	p.wake <- struct{}{}
	<-p.park
}

// block parks the calling process, handing control back to the engine, and
// returns when some event resumes it. reason is recorded for deadlock
// diagnostics.
func (p *Proc) block(reason string) {
	p.state = reason
	p.park <- struct{}{}
	<-p.wake
	p.state = "running"
}

// Name reports the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine reports the engine the process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports the current virtual time.
func (p *Proc) Now() units.Duration { return p.eng.now }

// Sleep advances the process by d in virtual time.
func (p *Proc) Sleep(d units.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("des: %s sleeping negative duration %v", p.name, d))
	}
	if d == 0 {
		return
	}
	p.eng.scheduleResume(d, p)
	p.block("sleep")
}

// Park blocks the process until some event calls Engine.Unpark on it.
// It is the extension point for building custom blocking abstractions
// (caches, servers) outside this package; reason appears in deadlock
// reports.
func (p *Proc) Park(reason string) { p.block(reason) }

// Unpark schedules p to resume at the current virtual time. It must pair
// with a Park; unparking a running process corrupts the control handoff.
func (e *Engine) Unpark(p *Proc) {
	e.scheduleResume(0, p)
}

// Yield reschedules the process at the current time behind already-queued
// events, letting same-time events run first.
func (p *Proc) Yield() {
	p.eng.scheduleResume(0, p)
	p.block("yield")
}
