package des

import (
	"testing"

	"iophases/internal/units"
)

// BenchmarkEngine drives the event queue through a schedule/fire churn that
// mirrors the simulator's steady state: a bounded set of pending events with
// every fired event scheduling a successor. The allocs/op metric is the
// per-event heap cost of the queue itself (plus one closure per event).
func BenchmarkEngine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		const width = 64 // concurrent pending events
		remaining := 10_000
		var tick func()
		tick = func() {
			if remaining > 0 {
				remaining--
				e.Schedule(units.Microsecond, tick)
			}
		}
		for j := 0; j < width; j++ {
			e.Schedule(units.Duration(j), tick)
		}
		e.Run()
	}
}

// BenchmarkEngineSchedule isolates Schedule+pop cost without callback work:
// pre-fill the queue, then drain it.
func BenchmarkEngineSchedule(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 4096; j++ {
			e.Schedule(units.Duration(j%97), func() {})
		}
		e.Run()
	}
}

// BenchmarkEngineProcs measures the process-handoff path: many Procs
// sleeping in lockstep, the pattern mpi.World produces.
func BenchmarkEngineProcs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 16; j++ {
			e.Spawn("p", func(p *Proc) {
				for k := 0; k < 200; k++ {
					p.Sleep(units.Microsecond)
				}
			})
		}
		e.Run()
	}
}
