package des

import (
	"testing"

	"iophases/internal/units"
)

// BenchmarkEngine drives the event queue through a schedule/fire churn that
// mirrors the simulator's steady state: a bounded set of pending events with
// every fired event scheduling a successor. The allocs/op metric is the
// per-event heap cost of the queue itself (plus one closure per event).
func BenchmarkEngine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		const width = 64 // concurrent pending events
		remaining := 10_000
		var tick func()
		tick = func() {
			if remaining > 0 {
				remaining--
				e.Schedule(units.Microsecond, tick)
			}
		}
		for j := 0; j < width; j++ {
			e.Schedule(units.Duration(j), tick)
		}
		e.Run()
	}
}

// BenchmarkEngineSchedule isolates Schedule+pop cost without callback work:
// pre-fill the queue, then drain it.
func BenchmarkEngineSchedule(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 4096; j++ {
			e.Schedule(units.Duration(j%97), func() {})
		}
		e.Run()
	}
}

// BenchmarkEngineProcs measures the process-handoff path: many Procs
// sleeping in lockstep, the pattern mpi.World produces. Lockstep sleeps
// tie at every instant, so switch elision never applies here — this is the
// park/resume rendezvous cost, on purpose.
func BenchmarkEngineProcs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 16; j++ {
			e.Spawn("p", func(p *Proc) {
				for k := 0; k < 200; k++ {
					p.Sleep(units.Microsecond)
				}
			})
		}
		e.Run()
	}
}

// switchHeavy is the elision-friendly counterpart: a proc burning through
// short sleeps with no event due before each wake target — the shape of an
// uncontended disk transfer chain or inter-phase busy-work. A far-future
// sentinel keeps the queue non-empty so the fast path pays its real cost
// (a heap-top check per sleep). Every sleep would cost four channel
// operations without elision; with it, the loop is inline time advances.
func switchHeavy(e *Engine) {
	e.Schedule(3600*units.Second, func() {})
	e.Spawn("p", func(p *Proc) {
		for k := 0; k < 3200; k++ {
			p.Sleep(units.Microsecond)
		}
	})
	e.Run()
}

// BenchmarkEngineSwitchHeavy measures the switch-elision fast path (see
// Sleep). Compare with BenchmarkEngineSwitchHeavyParkResume, the same
// workload forced through the park/resume slow path — the ratio is the
// rendezvous overhead elision removes.
func BenchmarkEngineSwitchHeavy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		switchHeavy(NewEngine())
	}
}

// BenchmarkEngineSwitchHeavyParkResume is BenchmarkEngineSwitchHeavy with
// elision disabled: the engine's pre-elision behavior, kept measurable so
// BENCH_<n>.json snapshots record the fast path's effect in one file.
func BenchmarkEngineSwitchHeavyParkResume(b *testing.B) {
	elisionDisabled = true
	defer func() { elisionDisabled = false }()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		switchHeavy(NewEngine())
	}
}
