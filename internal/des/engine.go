// Package des implements a deterministic discrete-event simulation engine
// with coroutine-style processes. It is the substrate on which the simulated
// cluster, network, storage and MPI runtime execute.
//
// Determinism is the central design constraint: the engine hands control to
// exactly one process at a time, event ties break on a monotone sequence
// number, and no wall-clock or map-iteration order ever influences results.
// Running the same program twice produces bit-identical traces.
//
// Each Engine is single-threaded: all of its events and processes execute
// on one goroutine chain with explicit handoff. Independent engines share
// nothing, so distinct simulations may run concurrently on separate
// goroutines (see internal/sweep) without locks and without perturbing
// each other's event order.
package des

import (
	"fmt"
	"sort"

	"iophases/internal/obs"
	"iophases/internal/units"
)

// event is a scheduled callback. Events with equal timestamps fire in
// scheduling order (seq), which makes the simulation fully reproducible.
// Events are stored by value in the queue — the hot path allocates nothing
// per event. When proc is non-nil the event resumes that process directly
// instead of calling fn, which keeps Sleep/Unpark/Yield closure-free.
type event struct {
	at   units.Duration
	seq  uint64
	fn   func()
	proc *Proc
}

// before reports heap order: earliest time first, scheduling order on ties.
func (ev event) before(other event) bool {
	if ev.at != other.at {
		return ev.at < other.at
	}
	return ev.seq < other.seq
}

// eventQueue is a value-based binary min-heap. It replaces the seed's
// container/heap implementation, whose interface{} boxing cost one heap
// allocation per scheduled event; storing events inline cuts the engine's
// steady-state allocs/op to slice growth only (see BenchmarkEngine).
type eventQueue []event

func (q *eventQueue) push(ev event) {
	*q = append(*q, ev)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the closure for GC
	h = h[:n]
	*q = h
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && h[right].before(h[left]) {
			child = right
		}
		if !h[child].before(h[i]) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
	return top
}

// initialQueueCap pre-sizes the event queue so steady-state simulations
// (hundreds of in-flight disk, link and process events) never re-grow it.
const initialQueueCap = 256

// Engine is a virtual-time event scheduler. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now      units.Duration
	queue    eventQueue
	seq      uint64
	live     map[*Proc]struct{}
	pool     []*Proc // recycled procs: goroutine + channels ready for reuse
	running  bool
	elided   uint64
	switches uint64 // park/resume handoffs actually performed
	// limit bounds inline clock advances while RunUntil drives the loop:
	// a Sleep that would elide past the deadline must park instead, so
	// the engine regains control exactly at the deadline boundary.
	limit   units.Duration
	limited bool

	// Run-telemetry handles, nil unless obs was enabled when the engine
	// was built. Every method on the nil struct is a no-op branch, so the
	// disabled state adds no allocations to the hot path (pinned by the
	// allocs/op gate on BenchmarkEngineSwitchHeavy).
	met *engineMetrics

	// faultCtx is an opaque slot for a per-engine fault injector
	// (internal/faults). Typed any to keep des free of upward imports;
	// devices fetch it once at construction, so the no-faults service
	// path pays a single nil check.
	faultCtx any

	// Sharded-queue state (see shard.go). nshards is 0 on the classic
	// single-queue engine, so every hot path gates sharding behind one
	// always-false comparison; curShard is the shard whose event is
	// currently firing and therefore the affinity new work inherits.
	nshards   int
	shardQ    []eventQueue
	curShard  int
	lookahead units.Duration
	horizon   units.Duration
	windows   uint64
}

// SetFaultCtx installs the engine's fault-injection context. Called once
// by cluster.Build before any device is constructed.
func (e *Engine) SetFaultCtx(v any) { e.faultCtx = v }

// FaultCtx reports the fault-injection context, nil when none is attached.
func (e *Engine) FaultCtx() any { return e.faultCtx }

// engineMetrics bundles the engine's obs handles behind one pointer so
// NewEngine stays within the inlining budget: an inlined NewEngine lets
// escape analysis stack-allocate short-lived engines (the per-op engine
// in BenchmarkEngineSchedule), which the allocs/op gate relies on.
type engineMetrics struct {
	scheduled *obs.Counter
	elided    *obs.Counter
	parks     *obs.Counter
	queueMax  *obs.Gauge
}

func newEngineMetrics() *engineMetrics {
	h := obs.Hot()
	if h == nil {
		return nil
	}
	return &engineMetrics{
		scheduled: h.Counter("des/events_scheduled"),
		elided:    h.Counter("des/events_elided"),
		parks:     h.Counter("des/proc_parks"),
		queueMax:  h.Gauge("des/queue_depth_max"),
	}
}

// noteScheduled counts one queued event and tracks the depth high-water
// mark. No-op on the nil (telemetry disabled) receiver.
func (m *engineMetrics) noteScheduled(depth int) {
	if m == nil {
		return
	}
	m.scheduled.Inc()
	m.queueMax.SetMax(int64(depth))
}

// NewEngine returns an engine with an empty event queue at time zero.
func NewEngine() *Engine {
	return &Engine{
		queue: make(eventQueue, 0, initialQueueCap),
		live:  make(map[*Proc]struct{}),
		met:   newEngineMetrics(),
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() units.Duration { return e.now }

// Elisions reports how many context switches the engine has elided: blocking
// calls (Sleep, uncontended transfers) that advanced the clock inline
// instead of parking the process. Purely observational — used by tests to
// pin that the fast path engages and by perf diagnostics.
func (e *Engine) Elisions() uint64 { return e.elided }

// Switches reports how many park/resume handoffs the engine performed —
// the context switches elision did not remove. Observational only.
func (e *Engine) Switches() uint64 { return e.switches }

// noteElision counts one elided context switch (clock advanced inline).
func (e *Engine) noteElision() {
	e.elided++
	if m := e.met; m != nil {
		m.elided.Inc()
	}
}

// elisionDisabled forces every Sleep/Yield through the park/resume slow
// path. Test-and-benchmark-only: BenchmarkEngineSwitchHeavyParkResume uses
// it to keep the counterfactual cost of the elided rendezvous measurable.
var elisionDisabled = false

// canElide reports whether a process may advance the clock to target inline
// instead of scheduling a resume event and parking: legal exactly when no
// queued event fires at or before target (such an event must run first, in
// seq order, before any resume the caller would schedule now) and target
// does not cross an active RunUntil deadline.
func (e *Engine) canElide(target units.Duration) bool {
	if elisionDisabled {
		return false
	}
	if e.nshards > 1 {
		if at, ok := e.minPendingAt(); ok && at <= target {
			return false
		}
	} else if len(e.queue) > 0 && e.queue[0].at <= target {
		return false
	}
	return !e.limited || target <= e.limit
}

// Schedule arranges for fn to run after delay. A negative delay panics:
// causality violations are programming errors.
func (e *Engine) Schedule(delay units.Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	e.seq++
	if e.nshards > 1 {
		e.pushShard(e.curShard, event{at: e.now + delay, seq: e.seq, fn: fn})
		return
	}
	e.queue.push(event{at: e.now + delay, seq: e.seq, fn: fn})
	e.met.noteScheduled(len(e.queue))
}

// scheduleResume arranges for p to be resumed after delay without
// allocating a closure — the Sleep/Unpark/Spawn fast path.
func (e *Engine) scheduleResume(delay units.Duration, p *Proc) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	e.seq++
	if e.nshards > 1 {
		e.pushShard(p.shard, event{at: e.now + delay, seq: e.seq, proc: p})
		return
	}
	e.queue.push(event{at: e.now + delay, seq: e.seq, proc: p})
	e.met.noteScheduled(len(e.queue))
}

// fire dispatches one popped event.
func (e *Engine) fire(ev event) {
	e.now = ev.at
	if ev.proc != nil {
		e.resume(ev.proc)
		return
	}
	ev.fn()
}

// Run executes events until the queue drains. If processes are still alive
// when the queue empties, the simulation has deadlocked and Run panics with
// the blocked processes' names and states — silent hangs would otherwise be
// indistinguishable from completion.
func (e *Engine) Run() {
	if e.running {
		panic("des: Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	if e.nshards > 1 {
		e.runSharded()
	} else {
		for len(e.queue) > 0 {
			e.fire(e.queue.pop())
		}
	}
	e.drainPool()
	if len(e.live) > 0 {
		names := make([]string, 0, len(e.live))
		for p := range e.live {
			names = append(names, fmt.Sprintf("%s[%s]", p.name, p.state))
		}
		sort.Strings(names)
		// The virtual timestamp plus the engine's elision/switch counters
		// make hang reports self-locating: "at 2.4s after 10M switches"
		// narrows a deadlock far faster than proc names alone.
		panic(fmt.Sprintf("des: deadlock at %v (elided=%d switches=%d), %d blocked processes: %v",
			e.now, e.elided, e.switches, len(names), names))
	}
}

// RunUntil executes events with timestamps <= deadline, leaving later events
// queued. It reports whether any events remain.
func (e *Engine) RunUntil(deadline units.Duration) bool {
	if e.running {
		panic("des: RunUntil re-entered")
	}
	e.running = true
	e.limited = true
	e.limit = deadline
	defer func() { e.running = false; e.limited = false }()
	if e.nshards > 1 {
		if e.runUntilSharded(deadline) {
			return true
		}
		e.drainPool()
		return false
	}
	for len(e.queue) > 0 {
		if e.queue[0].at > deadline {
			return true
		}
		e.fire(e.queue.pop())
	}
	e.drainPool()
	return false
}

// drainPool terminates the recycled proc goroutines once the simulation has
// run out of events. Without this, every finished engine would leave its
// free-listed goroutines parked on their wake channels forever — a leak
// that compounds across the thousands of engines a sweep creates.
func (e *Engine) drainPool() {
	for i, p := range e.pool {
		p.fn = nil // loop() interprets a wake without a function as exit
		p.wake <- struct{}{}
		e.pool[i] = nil
	}
	e.pool = e.pool[:0]
}

// Pending reports how many events are queued.
func (e *Engine) Pending() int {
	if e.nshards > 1 {
		n := 0
		for i := range e.shardQ {
			n += len(e.shardQ[i])
		}
		return n
	}
	return len(e.queue)
}
