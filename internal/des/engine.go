// Package des implements a deterministic discrete-event simulation engine
// with coroutine-style processes. It is the substrate on which the simulated
// cluster, network, storage and MPI runtime execute.
//
// Determinism is the central design constraint: the engine hands control to
// exactly one process at a time, event ties break on a monotone sequence
// number, and no wall-clock or map-iteration order ever influences results.
// Running the same program twice produces bit-identical traces.
package des

import (
	"container/heap"
	"fmt"
	"sort"

	"iophases/internal/units"
)

// event is a scheduled callback. Events with equal timestamps fire in
// scheduling order (seq), which makes the simulation fully reproducible.
type event struct {
	at  units.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a virtual-time event scheduler. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     units.Duration
	queue   eventHeap
	seq     uint64
	live    map[*Proc]struct{}
	running bool
}

// NewEngine returns an engine with an empty event queue at time zero.
func NewEngine() *Engine {
	return &Engine{live: make(map[*Proc]struct{})}
}

// Now reports the current virtual time.
func (e *Engine) Now() units.Duration { return e.now }

// Schedule arranges for fn to run after delay. A negative delay panics:
// causality violations are programming errors.
func (e *Engine) Schedule(delay units.Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: e.now + delay, seq: e.seq, fn: fn})
}

// Run executes events until the queue drains. If processes are still alive
// when the queue empties, the simulation has deadlocked and Run panics with
// the blocked processes' names and states — silent hangs would otherwise be
// indistinguishable from completion.
func (e *Engine) Run() {
	if e.running {
		panic("des: Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		ev.fn()
	}
	if len(e.live) > 0 {
		names := make([]string, 0, len(e.live))
		for p := range e.live {
			names = append(names, fmt.Sprintf("%s[%s]", p.name, p.state))
		}
		sort.Strings(names)
		panic(fmt.Sprintf("des: deadlock at %v, %d blocked processes: %v",
			e.now, len(names), names))
	}
}

// RunUntil executes events with timestamps <= deadline, leaving later events
// queued. It reports whether any events remain.
func (e *Engine) RunUntil(deadline units.Duration) bool {
	if e.running {
		panic("des: RunUntil re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.queue.Len() > 0 {
		if e.queue[0].at > deadline {
			return true
		}
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		ev.fn()
	}
	return false
}

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return e.queue.Len() }
