package des

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"iophases/internal/units"
)

// shardTrace runs a pseudo-random workload derived from seed on an engine
// with the given shard count and records every observable step as
// (proc, virtual time) pairs plus the final clock. The workload mixes the
// engine's whole surface — sleeps (elidable and tied), callbacks scheduled
// from proc context, yields, a contended resource, and a rendezvous
// mailbox — across processes pinned to different shards.
func shardTrace(seed uint64, shards int) ([]string, units.Duration) {
	e := NewEngine()
	if shards > 1 {
		e.SetShards(shards)
		e.SetLookahead(50 * units.Microsecond)
	}
	rng := seed
	next := func(n uint64) uint64 { // xorshift64, deterministic across runs
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	var tr []string
	note := func(who string, at units.Duration) {
		tr = append(tr, fmt.Sprintf("%s@%d", who, at))
	}
	res := NewResource(e, "res", 2)
	mbox := NewMailbox(e, "mb", 1)
	np := int(2 + next(5))
	for i := 0; i < np; i++ {
		i := i
		steps := int(3 + next(6))
		e.SpawnOn(e.ShardOf(fmt.Sprintf("node%d", i%3)), fmt.Sprintf("p%d", i), func(p *Proc) {
			for s := 0; s < steps; s++ {
				switch next(5) {
				case 0:
					p.Sleep(units.Duration(next(200)) * units.Microsecond)
				case 1:
					d := units.Duration(next(100)) * units.Microsecond
					e.Schedule(d, func() { note(fmt.Sprintf("cb%d", i), e.Now()) })
				case 2:
					res.Acquire(p, 1)
					p.Sleep(units.Duration(10+next(40)) * units.Microsecond)
					res.Release(1)
				case 3:
					p.Yield()
				case 4:
					if i%2 == 0 {
						mbox.Put(p, i)
					} else {
						mbox.Get(p)
					}
				}
				note(fmt.Sprintf("p%d.%d", i, s), p.Now())
			}
		})
	}
	// Mailbox puts and gets may be unbalanced; a harvester unsticks any
	// party still parked once the queue drains, so the run terminates for
	// every seed.
	e.Spawn("harvest", func(p *Proc) {
		for {
			p.Sleep(units.Second)
			if e.Pending() > 0 {
				continue // still making progress
			}
			if len(e.live) <= 1 {
				return // only the harvester remains
			}
			mbox.promoteAll()
		}
	})
	e.Run()
	return tr, e.Now()
}

// promoteAll unblocks every parked mailbox party (test-only: the harvester
// uses it to guarantee the random workload terminates).
func (m *Mailbox) promoteAll() {
	for len(m.putters) > 0 {
		m.promotePutter()
	}
	for len(m.getters) > 0 {
		g := m.getters[0]
		m.getters = m.getters[1:]
		m.items = append(m.items, len(m.items))
		m.eng.scheduleResume(0, g)
	}
}

// TestShardInvariance is the central sharding property: for random
// workloads and any shard count, the event trace and final clock are
// bit-identical to the single-queue engine.
func TestShardInvariance(t *testing.T) {
	prop := func(seed uint64, rawShards uint8) bool {
		shards := 2 + int(rawShards%7)
		base, baseEnd := shardTrace(seed, 1)
		got, gotEnd := shardTrace(seed, shards)
		if baseEnd != gotEnd || !reflect.DeepEqual(base, got) {
			t.Logf("seed %d shards %d: end %v vs %v, trace %v vs %v",
				seed, shards, baseEnd, gotEnd, base, got)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestShardInvarianceElisionDisabled re-runs the property with switch
// elision off, so every sleep takes the park/resume path through the
// sharded queues.
func TestShardInvarianceElisionDisabled(t *testing.T) {
	elisionDisabled = true
	defer func() { elisionDisabled = false }()
	for seed := uint64(1); seed <= 25; seed++ {
		base, baseEnd := shardTrace(seed, 1)
		got, gotEnd := shardTrace(seed, 4)
		if baseEnd != gotEnd || !reflect.DeepEqual(base, got) {
			t.Fatalf("seed %d: end %v vs %v", seed, baseEnd, gotEnd)
		}
	}
}

// TestSetShardsPristineOnly pins the pristine-engine contract: partitioning
// after anything has been scheduled or fired must panic, as must invalid
// counts.
func TestSetShardsPristineOnly(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero shards", func() { NewEngine().SetShards(0) })
	mustPanic("negative", func() { NewEngine().SetShards(-3) })
	mustPanic("after schedule", func() {
		e := NewEngine()
		e.Schedule(0, func() {})
		e.SetShards(4)
	})
	mustPanic("after run", func() {
		e := NewEngine()
		e.Spawn("p", func(p *Proc) { p.Sleep(units.Microsecond) })
		e.Run()
		e.SetShards(4)
	})

	// SetShards(1) on a pristine engine is the classic layout, not an error.
	e := NewEngine()
	e.SetShards(1)
	if e.Sharded() || e.Shards() != 1 {
		t.Errorf("SetShards(1): Sharded=%v Shards=%d", e.Sharded(), e.Shards())
	}
	e.SetShards(4)
	if !e.Sharded() || e.Shards() != 4 {
		t.Errorf("SetShards(4): Sharded=%v Shards=%d", e.Sharded(), e.Shards())
	}
}

// TestSpawnOnValidation pins shard-index bounds checking on a sharded
// engine and the collapse-to-zero behavior on an unsharded one.
func TestSpawnOnValidation(t *testing.T) {
	e := NewEngine()
	e.SetShards(2)
	defer func() {
		if recover() == nil {
			t.Error("SpawnOn out-of-range shard: no panic")
		}
	}()
	e.SpawnOn(0, "ok", func(p *Proc) {})
	e.SpawnOn(5, "bad", func(p *Proc) {})
}

// TestShardOfStable pins the affinity hash: deterministic, in range, and
// collapsing to 0 on an unsharded engine.
func TestShardOfStable(t *testing.T) {
	plain := NewEngine()
	if got := plain.ShardOf("ionode3"); got != 0 {
		t.Errorf("unsharded ShardOf = %d", got)
	}
	e := NewEngine()
	e.SetShards(5)
	for _, key := range []string{"", "comp0", "comp1", "ionode0", "a-long-node-name"} {
		a, b := e.ShardOf(key), e.ShardOf(key)
		if a != b || a < 0 || a >= 5 {
			t.Errorf("ShardOf(%q) = %d, %d", key, a, b)
		}
	}
}

// TestWindowsCounting pins the conservative-window accounting: events
// spaced wider than the lookahead each open a window; events inside the
// horizon do not.
func TestWindowsCounting(t *testing.T) {
	e := NewEngine()
	e.SetShards(2)
	e.SetLookahead(units.Millisecond)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * units.Millisecond) // each lands past the horizon
		}
	})
	e.Run()
	// Elision may advance the clock inline without dispatching, so pin
	// only that windows were counted and never exceed fired events.
	if e.Windows() == 0 {
		t.Error("no windows counted with positive lookahead")
	}
	// Without lookahead, no windows.
	e2 := NewEngine()
	e2.SetShards(2)
	e2.Spawn("p", func(p *Proc) { p.Sleep(units.Second) })
	e2.Run()
	if e2.Windows() != 0 {
		t.Errorf("windows = %d without lookahead", e2.Windows())
	}
}
