package des

import (
	"fmt"

	"iophases/internal/units"
)

// Sharded event queues: the engine's single min-heap can be partitioned
// into per-affinity shards (ranks by compute node, filesystem chunk
// workers by storage target), each with its own heap. Events still fire in
// global (time, seq) order — the dispatch loop pops the minimum across
// shard heads — so a sharded run is bit-identical to the classic
// single-queue engine at any shard count; the property tests in
// shard_test.go pin exactly that.
//
// What sharding buys is structure, not threads: the partition plus a
// conservative lookahead bound (the minimum network latency — no shard
// can affect another sooner than one link traversal) identifies the
// synchronization windows inside which shards could fire independently.
// The engine counts those windows (Windows) as it dispatches. Execution
// itself stays on one goroutine: the simulators freely share state under
// the one-process-at-a-time contract, and breaking that contract for
// wall-clock parallelism would trade determinism for speed — the analytic
// fast path (internal/fastpath) is where raw speed comes from.

// SetShards partitions the event queue into n shards. It must be called on
// a pristine engine — nothing scheduled, nothing fired, not running —
// because re-homing queued events would reorder ties. n == 1 restores the
// classic single-queue layout.
func (e *Engine) SetShards(n int) {
	if n < 1 {
		panic(fmt.Sprintf("des: shard count %d", n))
	}
	if e.running || e.seq != 0 || len(e.queue) > 0 {
		panic("des: SetShards on a non-pristine engine")
	}
	if n == 1 {
		e.nshards = 0
		e.shardQ = nil
		return
	}
	e.nshards = n
	e.shardQ = make([]eventQueue, n)
	for i := range e.shardQ {
		e.shardQ[i] = make(eventQueue, 0, initialQueueCap)
	}
}

// SetLookahead sets the conservative lookahead bound used for window
// accounting: the minimum virtual time one shard's event can take to
// affect another shard (for a cluster, the network link latency).
// Non-positive disables window counting.
func (e *Engine) SetLookahead(d units.Duration) { e.lookahead = d }

// Sharded reports whether the event queue is partitioned.
func (e *Engine) Sharded() bool { return e.nshards > 1 }

// Shards reports the shard count (1 for the classic single queue).
func (e *Engine) Shards() int {
	if e.nshards > 1 {
		return e.nshards
	}
	return 1
}

// Windows reports how many conservative synchronization windows the
// dispatch loop has crossed: maximal runs of events shorter than the
// lookahead bound, within which shards could fire independently. Zero
// unless the engine is sharded with a positive lookahead.
func (e *Engine) Windows() uint64 { return e.windows }

// ShardOf maps an affinity key (a node name) onto a shard index with
// FNV-1a. Stable across runs — hash order must never influence results,
// and FNV of the same key always lands on the same shard. Returns 0 on an
// unsharded engine.
func (e *Engine) ShardOf(key string) int {
	if e.nshards <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(e.nshards))
}

// SpawnOn is Spawn with explicit shard placement: the process's resume
// events queue on that shard instead of inheriting the spawning context's.
// On an unsharded engine any shard index collapses to the single queue.
func (e *Engine) SpawnOn(shard int, name string, fn func(p *Proc)) *Proc {
	if e.nshards > 1 && (shard < 0 || shard >= e.nshards) {
		panic(fmt.Sprintf("des: SpawnOn shard %d of %d", shard, e.nshards))
	}
	if e.nshards <= 1 {
		shard = 0
	}
	return e.spawnOn(shard, name, fn)
}

// pushShard queues an event on a shard and maintains the scheduled-events
// telemetry (depth high-water mark is the global pending count, matching
// the unsharded meaning).
func (e *Engine) pushShard(shard int, ev event) {
	e.shardQ[shard].push(ev)
	e.met.noteScheduled(e.Pending())
}

// minShard returns the shard whose head event is globally next in
// (time, seq) order. Linear in the shard count, which is small.
func (e *Engine) minShard() (int, bool) {
	best, found := -1, false
	for i := range e.shardQ {
		if len(e.shardQ[i]) == 0 {
			continue
		}
		if !found || e.shardQ[i][0].before(e.shardQ[best][0]) {
			best, found = i, true
		}
	}
	return best, found
}

// minPendingAt reports the earliest queued timestamp across all shards.
func (e *Engine) minPendingAt() (units.Duration, bool) {
	si, ok := e.minShard()
	if !ok {
		return 0, false
	}
	return e.shardQ[si][0].at, true
}

// noteWindow advances the conservative-window accounting for one
// dispatched event: an event at or past the current horizon opens a new
// window reaching lookahead further.
func (e *Engine) noteWindow(at units.Duration) {
	if e.lookahead <= 0 {
		return
	}
	if at >= e.horizon {
		e.windows++
		e.horizon = at + e.lookahead
	}
}

// runSharded is Run's dispatch loop over partitioned queues: globally
// minimal event first, firing shard recorded so new work inherits its
// affinity.
func (e *Engine) runSharded() {
	for {
		si, ok := e.minShard()
		if !ok {
			return
		}
		ev := e.shardQ[si].pop()
		e.noteWindow(ev.at)
		e.curShard = si
		e.fire(ev)
	}
}

// runUntilSharded is RunUntil's bounded dispatch loop; reports whether
// events past the deadline remain queued.
func (e *Engine) runUntilSharded(deadline units.Duration) bool {
	for {
		si, ok := e.minShard()
		if !ok {
			return false
		}
		if e.shardQ[si][0].at > deadline {
			return true
		}
		ev := e.shardQ[si].pop()
		e.noteWindow(ev.at)
		e.curShard = si
		e.fire(ev)
	}
}
