package obs

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// metricNameRE is the Prometheus metric-name grammar; sampleRE one sample
// line (no labels except the histogram `le`).
var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRE     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="([^"]+)"\})? (-?\d+)$`)
	typeRE       = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
)

// parseProm does a strict line-by-line parse of the exposition: every line
// must be a TYPE comment or a sample, every sample's name must be declared
// by the preceding TYPE (histogram samples via the _bucket/_sum/_count
// suffixes), and histogram buckets must be cumulative.
func parseProm(t *testing.T, text string) map[string]int64 {
	t.Helper()
	values := map[string]int64{}
	declared := map[string]string{} // metric -> kind
	cur, curKind := "", ""
	var lastCum int64
	sawInf := false
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if m := typeRE.FindStringSubmatch(line); m != nil {
			if curKind == "histogram" && !sawInf {
				t.Fatalf("histogram %s ended without an le=\"+Inf\" bucket", cur)
			}
			cur, curKind = m[1], m[2]
			lastCum, sawInf = 0, false
			if _, dup := declared[cur]; dup {
				t.Fatalf("metric %s declared twice", cur)
			}
			declared[cur] = curKind
			continue
		}
		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable exposition line %q", line)
		}
		name, le := m[1], m[3]
		v, err := strconv.ParseInt(m[4], 10, 64)
		if err != nil {
			t.Fatalf("sample %q: %v", line, err)
		}
		switch curKind {
		case "counter", "gauge":
			if name != cur {
				t.Fatalf("sample %q under TYPE %s", line, cur)
			}
			values[name] = v
		case "histogram":
			switch {
			case name == cur+"_bucket":
				if le == "" {
					t.Fatalf("bucket without le label: %q", line)
				}
				if v < lastCum {
					t.Fatalf("histogram %s buckets not cumulative: %d after %d", cur, v, lastCum)
				}
				lastCum = v
				if le == "+Inf" {
					sawInf = true
					values[name+"+Inf"] = v
				}
			case name == cur+"_sum":
				values[name] = v
			case name == cur+"_count":
				if !sawInf {
					t.Fatalf("histogram %s: _count before +Inf bucket", cur)
				}
				if v != values[cur+"_bucket+Inf"] {
					t.Fatalf("histogram %s: count %d != +Inf bucket %d", cur, v, values[cur+"_bucket+Inf"])
				}
				values[name] = v
			default:
				t.Fatalf("sample %q under histogram %s", line, cur)
			}
		default:
			t.Fatalf("sample %q before any TYPE line", line)
		}
	}
	if curKind == "histogram" && !sawInf {
		t.Fatalf("histogram %s ended without an le=\"+Inf\" bucket", cur)
	}
	for name := range declared {
		if !metricNameRE.MatchString(name) {
			t.Fatalf("declared name %q outside the metric-name grammar", name)
		}
	}
	return values
}

// TestWritePromParses builds a registry with the repo's real naming style
// (slashes, dots, leading digits) and checks the exposition is strictly
// parseable with sanitized names.
func TestWritePromParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("simcache/hits").Add(42)
	r.Counter("9starts.with-digit").Add(1)
	r.Gauge("serve/queue_depth").Set(-3)
	h := r.Histogram("serve/latency_us")
	for _, v := range []int64{0, 1, 3, 100, 100000} {
		h.Observe(v)
	}
	var b bytes.Buffer
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	vals := parseProm(t, b.String())
	if vals["simcache_hits"] != 42 {
		t.Fatalf("simcache_hits = %d, want 42", vals["simcache_hits"])
	}
	if vals["_9starts_with_digit"] != 1 {
		t.Fatalf("leading-digit name not sanitized: %v", vals)
	}
	if vals["serve_queue_depth"] != -3 {
		t.Fatalf("serve_queue_depth = %d, want -3", vals["serve_queue_depth"])
	}
	if got := vals["serve_latency_us_count"]; got != 5 {
		t.Fatalf("histogram count = %d, want 5", got)
	}
	if got := vals["serve_latency_us_sum"]; got != 100104 {
		t.Fatalf("histogram sum = %d, want 100104", got)
	}
}

// TestWritePromHistogramBounds pins the le mapping of the log2 buckets:
// bucket i counts v in [2^(i-1), 2^i), so its inclusive bound is 2^i-1,
// and the v <= 0 bucket exports at le="0".
func TestWritePromHistogramBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	h.Observe(-5)  // le="0"
	h.Observe(1)   // le="1"
	h.Observe(3)   // le="3"
	h.Observe(100) // le="127"
	var b bytes.Buffer
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`h_bucket{le="0"} 1`,
		`h_bucket{le="1"} 2`,
		`h_bucket{le="3"} 3`,
		`h_bucket{le="127"} 4`,
		`h_bucket{le="+Inf"} 4`,
		"h_sum 99",
		"h_count 4",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestPromNameCollisions: distinct registry names that sanitize equally
// must still export unique metric names, deterministically.
func TestPromNameCollisions(t *testing.T) {
	r := NewRegistry()
	r.Counter("a/b").Add(1)
	r.Counter("a.b").Add(2)
	r.Counter("a_b").Add(3)
	var b bytes.Buffer
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	vals := parseProm(t, b.String())
	// Sorted originals: "a.b" < "a/b" < "a_b" — first keeps the clean name.
	if vals["a_b"] != 2 || vals["a_b_2"] != 1 || vals["a_b_3"] != 3 {
		t.Fatalf("collision resolution wrong: %v", vals)
	}
}

// TestWritePromByteStable: two expositions of an idle live registry are
// byte-identical, and an update in between changes the bytes.
func TestWritePromByteStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(12)
	var a, b bytes.Buffer
	if err := r.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("idle registry not byte-stable:\n%s\nvs\n%s", a.String(), b.String())
	}
	r.Counter("c").Inc()
	var c bytes.Buffer
	if err := r.WriteProm(&c); err != nil {
		t.Fatal(err)
	}
	if c.String() == a.String() {
		t.Fatal("exposition unchanged after a counter increment")
	}
}

// TestPromNameGrammar spot-checks the sanitizer.
func TestPromNameGrammar(t *testing.T) {
	cases := map[string]string{
		"simcache/hits":   "simcache_hits",
		"sweep/busy_ns":   "sweep_busy_ns",
		"9x":              "_9x",
		"a b.c-d/e":       "a_b_c_d_e",
		"colon:ok":        "colon:ok",
		"":                "_",
		"München/latency": "M__nchen_latency", // bytes, not runes: both UTF-8 bytes map to _
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
		if got := promName(in); !metricNameRE.MatchString(got) {
			t.Errorf("promName(%q) = %q outside grammar", in, got)
		}
	}
}
