package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// traceDoc mirrors the trace_event JSON envelope for test decoding.
type traceDoc struct {
	TraceEvents []traceEv      `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData"`
}

type traceEv struct {
	Ph   string          `json:"ph"`
	Name string          `json:"name"`
	Pid  int64           `json:"pid"`
	Tid  int64           `json:"tid"`
	Ts   json.Number     `json:"ts"`
	Args json.RawMessage `json:"args"`
}

func decodeTimeline(t *testing.T, r *Recorder) traceDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("timeline output is not valid JSON: %v\n%s", err, buf.String())
	}
	return doc
}

// TestTimelineSchema pins the trace_event schema: every event carries the
// required ph/ts/pid/tid/name fields, B spans carry their args, and the
// metadata events name the process and thread lanes.
func TestTimelineSchema(t *testing.T) {
	r := NewRecorder(0)
	tr := r.Track("app@configA", "phases")
	tr.Span("phase 1", 1000, 2500,
		Arg{Key: "weight", Value: int64(1 << 20)},
		Arg{Key: "rs", Value: int64(65536)},
		Arg{Key: "np", Value: 16},
		Arg{Key: "bwMBps", Value: 101.5})
	doc := decodeTimeline(t, r)

	var sawProcMeta, sawThreadMeta, sawB, sawE bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "" || ev.Name == "" {
			t.Fatalf("event missing ph/name: %+v", ev)
		}
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				sawProcMeta = true
			}
			if ev.Name == "thread_name" {
				sawThreadMeta = true
			}
		case "B":
			sawB = true
			if ev.Ts.String() != "1" { // 1000ns = 1µs
				t.Errorf("B ts = %s, want 1", ev.Ts)
			}
			var args map[string]any
			if err := json.Unmarshal(ev.Args, &args); err != nil {
				t.Fatalf("B args do not parse: %v", err)
			}
			for _, key := range []string{"weight", "rs", "np", "bwMBps"} {
				if _, ok := args[key]; !ok {
					t.Errorf("B span missing arg %q: %v", key, args)
				}
			}
		case "E":
			sawE = true
			if ev.Ts.String() != "2.500" {
				t.Errorf("E ts = %s, want 2.500", ev.Ts)
			}
		default:
			t.Errorf("unexpected ph %q", ev.Ph)
		}
	}
	if !sawProcMeta || !sawThreadMeta || !sawB || !sawE {
		t.Fatalf("missing event kinds: procMeta=%v threadMeta=%v B=%v E=%v",
			sawProcMeta, sawThreadMeta, sawB, sawE)
	}
	if doc.OtherData["spans"] != float64(1) {
		t.Errorf("otherData spans = %v, want 1", doc.OtherData["spans"])
	}
}

// TestTimelineMonotoneAndBalanced is the structural contract of the
// exporter: per (pid, tid) lane, timestamps never go backwards and the B/E
// events form a balanced stack — even with nested and concurrent recording.
func TestTimelineMonotoneAndBalanced(t *testing.T) {
	r := NewRecorder(0)
	// Nested spans on one track plus several concurrent tracks.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := r.Track("engine", fmt.Sprintf("proc %d", w))
			for i := 0; i < 50; i++ {
				base := int64(i * 1000)
				tr.Span("outer", base, base+900)
				tr.Span("inner", base+100, base+400)
				tr.Span("point", base+500, base+500) // zero-length: widened
			}
		}(w)
	}
	wg.Wait()
	doc := decodeTimeline(t, r)

	type lane struct{ pid, tid int64 }
	lastTs := map[lane]float64{}
	depth := map[lane]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		l := lane{ev.Pid, ev.Tid}
		ts, err := ev.Ts.Float64()
		if err != nil {
			t.Fatalf("ts %q: %v", ev.Ts, err)
		}
		if prev, ok := lastTs[l]; ok && ts < prev {
			t.Fatalf("lane %v: ts went backwards %v -> %v", l, prev, ts)
		}
		lastTs[l] = ts
		switch ev.Ph {
		case "B":
			depth[l]++
		case "E":
			depth[l]--
			if depth[l] < 0 {
				t.Fatalf("lane %v: E without matching B at ts %v", l, ts)
			}
		}
	}
	for l, d := range depth {
		if d != 0 {
			t.Fatalf("lane %v: %d unclosed spans", l, d)
		}
	}
	if len(lastTs) != 4 {
		t.Fatalf("expected 4 span lanes, saw %d", len(lastTs))
	}
}

// TestTimelineRingDrops pins bounded memory: beyond capacity the ring
// evicts whole spans (balance preserved) and reports the drop count.
func TestTimelineRingDrops(t *testing.T) {
	r := NewRecorder(8)
	tr := r.Track("p", "t")
	for i := 0; i < 20; i++ {
		tr.Span("s", int64(i*10), int64(i*10+5))
	}
	if r.Len() != 8 {
		t.Fatalf("ring holds %d spans, want 8", r.Len())
	}
	if r.Dropped() != 12 {
		t.Fatalf("dropped = %d, want 12", r.Dropped())
	}
	doc := decodeTimeline(t, r)
	var b, e int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "B":
			b++
		case "E":
			e++
		}
	}
	if b != 8 || e != 8 {
		t.Fatalf("B/E = %d/%d after eviction, want 8/8", b, e)
	}
	if doc.OtherData["droppedSpans"] != float64(12) {
		t.Errorf("otherData droppedSpans = %v, want 12", doc.OtherData["droppedSpans"])
	}
}

// TestTrackTidsAreFresh pins the concurrency contract: every Track call
// gets its own tid, while one process name shares a pid.
func TestTrackTidsAreFresh(t *testing.T) {
	r := NewRecorder(0)
	a := r.Track("replay", "x")
	b := r.Track("replay", "x")
	if a.tid == b.tid {
		t.Fatal("two Track calls shared a tid")
	}
	if a.pid != b.pid {
		t.Fatal("one process name produced two pids")
	}
}

// TestTimelineNilSafety pins that a missing recorder is inert end to end:
// nil recorder, nil track, and the process-global accessors.
func TestTimelineNilSafety(t *testing.T) {
	var r *Recorder
	tr := r.Track("p", "t")
	if tr != nil {
		t.Fatal("nil recorder returned a non-nil track")
	}
	tr.Span("s", 0, 1) // must not panic
	if r.Len() != 0 || r.Dropped() != 0 || r.WallNow() != 0 {
		t.Fatal("nil recorder reported state")
	}
	if err := r.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Fatal("nil recorder WriteJSON should error")
	}

	StopTimeline()
	if Timeline() != nil {
		t.Fatal("Timeline() non-nil after StopTimeline")
	}
}

// TestStartTimelineEnables pins that requesting a timeline also enables
// metric collection (a timeline without the engine/device counters would
// be half blind).
func TestStartTimelineEnables(t *testing.T) {
	defer func() { StopTimeline(); SetEnabled(false) }()
	SetEnabled(false)
	r := StartTimeline(16)
	if r == nil || Timeline() != r {
		t.Fatal("StartTimeline did not install the recorder")
	}
	if !Enabled() {
		t.Fatal("StartTimeline did not enable telemetry")
	}
}
