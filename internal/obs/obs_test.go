package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestNilHandlesAreNoOps pins the disabled-telemetry contract: every method
// on a nil handle must be callable and inert — this is what lets hot layers
// hold handles unconditionally.
func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter reported a value")
	}
	c.Reset()

	var g *Gauge
	g.Set(3)
	g.Add(2)
	g.SetMax(9)
	if g.Value() != 0 {
		t.Fatal("nil gauge reported a value")
	}

	var h *Histogram
	h.Observe(42)
	if h.Count() != 0 || h.Sum() != 0 || h.Buckets() != nil {
		t.Fatal("nil histogram reported observations")
	}

	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry handed out non-nil handles")
	}
	r.Reset()
}

// TestNilHandleAllocs pins that the disabled path allocates nothing — the
// property the engine's allocs/op gate depends on.
func TestNilHandleAllocs(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.SetMax(7)
		h.Observe(9)
	})
	if allocs != 0 {
		t.Fatalf("nil handles allocated %.1f per run, want 0", allocs)
	}
}

// TestRegistryAggregatesByName pins process-wide aggregation: two fetches
// of one name share a handle.
func TestRegistryAggregatesByName(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("des/events")
	b := r.Counter("des/events")
	if a != b {
		t.Fatal("same name produced distinct counters")
	}
	a.Add(3)
	b.Inc()
	if got := r.Counter("des/events").Value(); got != 4 {
		t.Fatalf("aggregated value = %d, want 4", got)
	}
}

// TestGaugeSetMax is the high-watermark contract, including under
// concurrency.
func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Fatalf("SetMax lowered the gauge to %d", g.Value())
	}
	var wg sync.WaitGroup
	for i := 1; i <= 64; i++ {
		wg.Add(1)
		go func(v int64) { defer wg.Done(); g.SetMax(v) }(int64(i))
	}
	wg.Wait()
	if g.Value() != 64 {
		t.Fatalf("concurrent SetMax landed on %d, want 64", g.Value())
	}
}

// TestHistogramBucketBoundaries pins the log2 bucketing: v lands in
// [2^(i-1), 2^i) and non-positive values in the zero bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	var h Histogram
	for _, v := range []int64{-3, 0, 1, 2, 3, 4, 1023, 1024, math.MaxInt64} {
		h.Observe(v)
	}
	if h.Count() != 9 {
		t.Fatalf("count = %d, want 9", h.Count())
	}
	want := map[[2]int64]int64{
		{0, 0}:                   2, // -3, 0
		{1, 2}:                   1, // 1
		{2, 4}:                   2, // 2, 3
		{4, 8}:                   1, // 4
		{512, 1024}:              1, // 1023
		{1024, 2048}:             1, // 1024
		{1 << 62, math.MaxInt64}: 1, // MaxInt64
	}
	got := map[[2]int64]int64{}
	for _, b := range h.Buckets() {
		got[[2]int64{b.Low, b.High}] = b.N
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("bucket [%d,%d) = %d, want %d", k[0], k[1], got[k], n)
		}
	}
	if len(got) != len(want) {
		t.Errorf("bucket set %v, want %v", got, want)
	}
}

// TestWriteTextSortedAndJSONParses pins the render contracts: text output
// lists metrics sorted by name, and the JSON dump parses back into the
// snapshot shape.
func TestWriteTextSortedAndJSONParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Add(1)
	r.Counter("alpha").Add(2)
	r.Gauge("mid").Set(7)
	r.Histogram("sizes").Observe(4096)

	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	s := text.String()
	if strings.Index(s, "alpha") > strings.Index(s, "zeta") {
		t.Fatalf("counters not sorted:\n%s", s)
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(js.Bytes(), &snap); err != nil {
		t.Fatalf("JSON dump does not parse: %v", err)
	}
	if snap.Counters["alpha"] != 2 || snap.Gauges["mid"] != 7 {
		t.Fatalf("snapshot round trip lost values: %+v", snap)
	}
	if hs := snap.Histograms["sizes"]; hs.Count != 1 || hs.Sum != 4096 {
		t.Fatalf("histogram round trip lost values: %+v", hs)
	}
}

// TestHotGate pins the enable gate: Hot is nil until telemetry is
// requested, and then is the default registry.
func TestHotGate(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(false)
	if Hot() != nil {
		t.Fatal("Hot() non-nil while disabled")
	}
	SetEnabled(true)
	if Hot() != Default() {
		t.Fatal("Hot() is not the default registry when enabled")
	}
}

// TestRegistryReset pins that Reset zeroes values but keeps handles live.
func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(9)
	r.Histogram("h").Observe(8)
	r.Reset()
	if c.Value() != 0 {
		t.Fatalf("counter survived Reset with %d", c.Value())
	}
	if r.Histogram("h").Count() != 0 {
		t.Fatal("histogram survived Reset")
	}
	c.Inc()
	if r.Counter("c").Value() != 1 {
		t.Fatal("handle went stale after Reset")
	}
}

// TestPhaseLog pins RecordPhase's gating, deterministic ordering and
// dedup, and the peak registry.
func TestPhaseLog(t *testing.T) {
	ResetTelemetry()
	SetEnabled(false)
	RecordPhase(PhaseRecord{App: "x", Phase: 1})
	if len(Phases()) != 0 {
		t.Fatal("RecordPhase recorded while disabled")
	}
	SetEnabled(true)
	defer func() { SetEnabled(false); ResetTelemetry() }()
	rows := []PhaseRecord{
		{App: "bt", Config: "A", Source: "measured", Phase: 2},
		{App: "bt", Config: "A", Source: "measured", Phase: 1},
		{App: "bt", Config: "A", Source: "estimate", Phase: 1},
		{App: "bt", Config: "A", Source: "measured", Phase: 1}, // dup
	}
	for _, r := range rows {
		RecordPhase(r)
	}
	got := Phases()
	if len(got) != 3 {
		t.Fatalf("got %d rows, want 3 (dup collapsed): %+v", len(got), got)
	}
	if got[0].Source != "estimate" || got[1].Phase != 1 || got[2].Phase != 2 {
		t.Fatalf("rows not in canonical order: %+v", got)
	}

	RecordPeak("A", 100, 80)
	if w, r, ok := PeakFor("A"); !ok || w != 100 || r != 80 {
		t.Fatalf("PeakFor(A) = %v %v %v", w, r, ok)
	}
	if _, _, ok := PeakFor("Z"); ok {
		t.Fatal("PeakFor invented a peak")
	}
}
