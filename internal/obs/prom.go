// Prometheus text exposition (format 0.0.4) of a registry snapshot — the
// /metrics endpoint of the iod prediction service. The renderer is
// deterministic by construction: metrics are emitted counters first, then
// gauges, then histograms, each kind sorted by sanitized name, so two
// consecutive scrapes of an idle registry are byte-identical (pinned by
// TestWritePromByteStable). Histograms are exported in the cumulative
// _bucket/_sum/_count form scrapers expect; the log2 ring buckets map onto
// `le` bounds of 2^i-1 (each raw bucket i counts v in [2^(i-1), 2^i), so
// its inclusive upper bound is 2^i-1, with the v <= 0 bucket at le="0").
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promName sanitizes a registry metric name into the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*: every illegal byte becomes '_' and a
// leading digit is prefixed with '_'. The mapping is not injective
// ("a/b" and "a.b" both yield "a_b"); promNames resolves collisions.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promNames maps every registry name to a unique sanitized name. Names are
// assigned in sorted-original order, so the mapping is deterministic: when
// two originals sanitize identically, the first keeps the clean name and
// each later one gets an ordinal suffix ("a_b", "a_b_2", "a_b_3", …).
func promNames(names []string) map[string]string {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	out := make(map[string]string, len(sorted))
	taken := make(map[string]int, len(sorted))
	for _, name := range sorted {
		s := promName(name)
		if n := taken[s]; n > 0 {
			taken[s] = n + 1
			s = fmt.Sprintf("%s_%d", s, n+1)
		}
		taken[s]++
		out[name] = s
	}
	return out
}

// WriteProm renders the registry in the Prometheus text exposition format.
// Serve it with content type "text/plain; version=0.0.4".
func (r *Registry) WriteProm(w io.Writer) error {
	return r.Snapshot().WriteProm(w)
}

// WriteProm renders a snapshot in the Prometheus text exposition format:
// counters, gauges, then histograms, sorted by sanitized name within each
// kind, one deterministic byte stream per snapshot.
func (s Snapshot) WriteProm(w io.Writer) error {
	var names []string
	for name := range s.Counters {
		names = append(names, name)
	}
	for name := range s.Gauges {
		names = append(names, name)
	}
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names) // map-range order is random; collision suffixes must not be
	rename := promNames(names)

	var b strings.Builder
	scalars := func(kind string, m map[string]int64) {
		for _, name := range sortedBySanitized(m, rename) {
			pn := rename[name]
			fmt.Fprintf(&b, "# TYPE %s %s\n", pn, kind)
			fmt.Fprintf(&b, "%s %d\n", pn, m[name])
		}
	}
	scalars("counter", s.Counters)
	scalars("gauge", s.Gauges)

	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Slice(hnames, func(i, j int) bool { return rename[hnames[i]] < rename[hnames[j]] })
	for _, name := range hnames {
		h := s.Histograms[name]
		pn := rename[name]
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		var cum int64
		for _, bk := range h.Buckets {
			cum += bk.N
			// Raw bucket [Low, High) has inclusive upper bound High-1;
			// the v <= 0 bucket (High == 0) exports as le="0".
			le := bk.High - 1
			if bk.High == 0 {
				le = 0
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", pn, le, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// sortedBySanitized orders a scalar metric map's keys by their sanitized
// exposition name, so output order matches what the scraper sees.
func sortedBySanitized(m map[string]int64, rename map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return rename[out[i]] < rename[out[j]] })
	return out
}
