// Timeline: a virtual-time span recorder that exports Chrome
// trace_event-format JSON, loadable in Perfetto (https://ui.perfetto.dev)
// or chrome://tracing. Spans are recorded as whole records — (track, name,
// start, end, args) — and only rendered to B/E event pairs at write time,
// which keeps every track's B/E balanced even when the ring buffer drops
// old spans under memory pressure.
//
// Tracks map onto the trace_event process/thread hierarchy: a process
// (pid) groups one simulated component or analysis stage (an application
// run, a replay, the sweep pool), and every Track call allocates a fresh
// thread (tid) under it. Fresh tids are the concurrency contract: each
// Track is appended to by exactly one goroutine whose clock (virtual or
// wall) is monotone, so per-track timestamps are monotone by construction
// even while many engines record in parallel.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Arg is one span attribute, rendered into the trace_event "args" object.
// Attributes are ordered (not a map) so emitted JSON is deterministic.
type Arg struct {
	Key   string
	Value any
}

// spanRec is one recorded span. Timestamps are nanoseconds on the track's
// clock (virtual time for simulation tracks, wall time for pool tracks).
type spanRec struct {
	pid, tid int64
	name     string
	start    int64
	end      int64
	args     string // pre-rendered JSON object body ("" = no args)
}

// DefaultTimelineCap bounds recorder memory: the ring keeps this many
// spans and overwrites the oldest beyond it. 1<<16 spans ≈ a few MB —
// enough for every phase, replay and pool task of a full experiment run
// while keeping a runaway emitter harmless.
const DefaultTimelineCap = 1 << 16

// Recorder collects spans into a fixed-capacity ring buffer.
type Recorder struct {
	epoch time.Time // wall-clock zero for WallNow

	mu      sync.Mutex
	cap     int
	spans   []spanRec
	next    int // ring cursor once len(spans) == cap
	dropped int64
	pids    map[string]int64 // process name -> pid
	pidSeq  int64
	tidSeq  int64
	tracks  []trackMeta
}

type trackMeta struct {
	pid, tid int64
	process  string
	thread   string
}

// NewRecorder returns a recorder holding at most capacity spans
// (DefaultTimelineCap when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultTimelineCap
	}
	return &Recorder{
		epoch: time.Now(),
		cap:   capacity,
		pids:  make(map[string]int64),
	}
}

// Track is a span destination: one (pid, tid) lane of the exported trace.
// A Track must be used from a single goroutine whose timestamps are
// monotone; nil Tracks drop every span, so callers can hold the result of
// Track() unconditionally.
type Track struct {
	rec      *Recorder
	pid, tid int64
}

// Track allocates a new lane under the named process group. The process
// name is shared (all tracks of one process render together in Perfetto);
// the tid is always fresh, so concurrent recorders of the same component
// kind never interleave on one lane. Nil-safe: a nil recorder returns a
// nil track.
func (r *Recorder) Track(process, thread string) *Track {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	pid, ok := r.pids[process]
	if !ok {
		r.pidSeq++
		pid = r.pidSeq
		r.pids[process] = pid
	}
	r.tidSeq++
	tid := r.tidSeq
	r.tracks = append(r.tracks, trackMeta{pid: pid, tid: tid, process: process, thread: thread})
	return &Track{rec: r, pid: pid, tid: tid}
}

// Span records one [start, end) span with optional attributes. Timestamps
// are nanoseconds on the track's clock; zero-length spans are widened to
// 1ns so their B strictly precedes their E. No-op on a nil track.
func (t *Track) Span(name string, start, end int64, args ...Arg) {
	if t == nil {
		return
	}
	if end <= start {
		end = start + 1
	}
	rec := spanRec{pid: t.pid, tid: t.tid, name: name, start: start, end: end, args: encodeArgs(args)}
	r := t.rec
	r.mu.Lock()
	if len(r.spans) < r.cap {
		r.spans = append(r.spans, rec)
	} else {
		r.spans[r.next] = rec
		r.next = (r.next + 1) % r.cap
		r.dropped++
	}
	r.mu.Unlock()
}

// WallNow reports nanoseconds since the recorder's creation on the wall
// clock — the timestamp source for non-simulated tracks (the sweep pool).
// Returns 0 on a nil recorder.
func (r *Recorder) WallNow() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.epoch))
}

// Len reports how many spans are currently held (test hook).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Dropped reports how many spans the ring evicted.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// encodeArgs renders attributes as the body of a JSON object, preserving
// argument order.
func encodeArgs(args []Arg) string {
	if len(args) == 0 {
		return ""
	}
	var b strings.Builder
	for i, a := range args {
		if i > 0 {
			b.WriteByte(',')
		}
		key, _ := json.Marshal(a.Key)
		val, err := json.Marshal(a.Value)
		if err != nil {
			val = []byte(`"unencodable"`)
		}
		b.Write(key)
		b.WriteByte(':')
		b.Write(val)
	}
	return b.String()
}

// traceEvent is one exported trace_event record.
type traceEvent struct {
	ts    int64 // nanoseconds (converted to µs on write)
	ph    byte  // 'B' | 'E'
	span  spanRec
	order int // stable tiebreak: recording order
}

// WriteJSON writes the recorded timeline as a Chrome trace_event JSON
// object: {"traceEvents": [...], "otherData": {...}}. Per track, B/E pairs
// are emitted sorted by timestamp with ends-before-begins on ties, so
// every track's span stack is balanced and its timestamps monotone —
// properties the timeline tests pin.
func (r *Recorder) WriteJSON(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("obs: no timeline recorder")
	}
	r.mu.Lock()
	spans := append([]spanRec(nil), r.spans...)
	tracks := append([]trackMeta(nil), r.tracks...)
	dropped := r.dropped
	r.mu.Unlock()

	bw := newErrWriter(w)
	bw.printf("{\"traceEvents\":[")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.printf(",\n")
		} else {
			bw.printf("\n")
		}
		first = false
		bw.printf(format, args...)
	}

	// Metadata: process and thread names, so Perfetto labels the lanes.
	seenPid := map[int64]bool{}
	for _, tm := range tracks {
		if !seenPid[tm.pid] {
			seenPid[tm.pid] = true
			name, _ := json.Marshal(tm.process)
			emit(`{"ph":"M","name":"process_name","pid":%d,"tid":0,"ts":0,"args":{"name":%s}}`, tm.pid, name)
		}
		if tm.thread != "" {
			name, _ := json.Marshal(tm.thread)
			emit(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"ts":0,"args":{"name":%s}}`, tm.pid, tm.tid, name)
		}
	}

	// Group spans by track, then emit each track's B/E events in an order
	// that keeps the stack well-formed: by timestamp; on ties E before B
	// (a span ending where the next begins closes first); among Bs the
	// longer (outer) span opens first; among Es the later-started (inner)
	// span closes first.
	byTrack := map[[2]int64][]traceEvent{}
	var trackOrder [][2]int64
	for i, s := range spans {
		key := [2]int64{s.pid, s.tid}
		if _, ok := byTrack[key]; !ok {
			trackOrder = append(trackOrder, key)
		}
		byTrack[key] = append(byTrack[key],
			traceEvent{ts: s.start, ph: 'B', span: s, order: i},
			traceEvent{ts: s.end, ph: 'E', span: s, order: i})
	}
	sort.Slice(trackOrder, func(i, j int) bool {
		if trackOrder[i][0] != trackOrder[j][0] {
			return trackOrder[i][0] < trackOrder[j][0]
		}
		return trackOrder[i][1] < trackOrder[j][1]
	})
	for _, key := range trackOrder {
		evs := byTrack[key]
		sort.Slice(evs, func(i, j int) bool {
			a, b := evs[i], evs[j]
			if a.ts != b.ts {
				return a.ts < b.ts
			}
			if a.ph != b.ph {
				return a.ph == 'E' // ends close before new begins open
			}
			if a.ph == 'B' {
				if a.span.end != b.span.end {
					return a.span.end > b.span.end // outer span opens first
				}
			} else {
				if a.span.start != b.span.start {
					return a.span.start > b.span.start // inner span closes first
				}
			}
			return a.order < b.order
		})
		for _, ev := range evs {
			name, _ := json.Marshal(ev.span.name)
			if ev.ph == 'B' && ev.span.args != "" {
				emit(`{"ph":"B","name":%s,"pid":%d,"tid":%d,"ts":%s,"args":{%s}}`,
					name, ev.span.pid, ev.span.tid, microseconds(ev.ts), ev.span.args)
			} else {
				emit(`{"ph":"%c","name":%s,"pid":%d,"tid":%d,"ts":%s}`,
					ev.ph, name, ev.span.pid, ev.span.tid, microseconds(ev.ts))
			}
		}
	}
	bw.printf("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedSpans\":%d,\"spans\":%d}}\n",
		dropped, len(spans))
	return bw.err
}

// microseconds renders a nanosecond timestamp as the decimal microsecond
// value trace_event expects, preserving sub-µs precision ("12.345").
func microseconds(ns int64) string {
	us := ns / 1000
	frac := ns % 1000
	if frac == 0 {
		return fmt.Sprintf("%d", us)
	}
	return fmt.Sprintf("%d.%03d", us, frac)
}

// errWriter folds write errors so the emit loop stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func newErrWriter(w io.Writer) *errWriter { return &errWriter{w: w} }

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// timeline is the process-wide recorder, nil unless a CLI passed
// -timeline. Nil-safety on Recorder/Track means call sites never check.
var timeline atomic.Pointer[Recorder]

// StartTimeline installs a fresh process-wide recorder (capacity <= 0
// selects DefaultTimelineCap) and returns it. It also enables run
// telemetry: a timeline without metrics handles would miss the layers
// that only emit through Hot().
func StartTimeline(capacity int) *Recorder {
	r := NewRecorder(capacity)
	timeline.Store(r)
	SetEnabled(true)
	return r
}

// StopTimeline removes the process-wide recorder (tests).
func StopTimeline() { timeline.Store(nil) }

// Timeline returns the process-wide recorder, or nil when no timeline was
// requested.
func Timeline() *Recorder { return timeline.Load() }
