// Package obs is the unified run-telemetry layer: a zero-dependency metrics
// registry (counters, gauges, histograms with fixed log2 buckets) plus a
// virtual-time span recorder that exports Chrome trace_event JSON (see
// timeline.go). Every simulation layer — the DES engine, network, disks,
// filesystems, the replay cache, the analysis pipeline and the sweep pool —
// reports through this package, so a run can be inspected end to end
// instead of through ad-hoc -v prints.
//
// Two invariants shape the design (DESIGN.md "Observability invariants"):
//
//   - Telemetry must never perturb the simulation. Instrumentation only
//     reads the virtual clock and bumps atomics; it schedules no events,
//     takes no engine-level locks and writes nothing to stdout, so event
//     order — and therefore every simulated result — is bit-identical with
//     telemetry on or off.
//
//   - A disabled registry costs one branch. Hot layers fetch metric handles
//     at construction via Hot(), which returns nil unless run telemetry was
//     requested; every handle method is nil-safe, so the per-event cost in
//     the disabled state is a single nil check and zero allocations (pinned
//     by the allocs/op regression gate on BenchmarkEngineSwitchHeavy).
//
// The default registry itself always exists: layers whose counters are part
// of their API regardless of flags (simcache hit/miss stats behind -v)
// register on Default() directly and pay one atomic add per event, the same
// cost as the bespoke counters they replace.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op on every method, which is the
// disabled-telemetry fast path.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter. For the layer that owns the counter (and
// tests) — monotonicity is per owner epoch, not per process. No-op on nil.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.v.Store(0)
}

// reset zeroes the counter (registry Reset only).
func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an instantaneous atomic value. A nil *Gauge is a no-op.
type Gauge struct{ v atomic.Int64 }

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta. No-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v exceeds the current value — a
// high-watermark update (queue depths, pool widths). No-op on nil.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reports the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) reset() { g.v.Store(0) }

// histBuckets is the fixed bucket count of every histogram: bucket i counts
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i), with
// bucket 0 holding v <= 0. Fixed log2 buckets keep Observe lock-free (one
// bits.Len64 plus one atomic add) and the memory per histogram constant.
const histBuckets = 65

// Histogram counts observations in fixed log2 buckets. A nil *Histogram is
// a no-op on every method.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Lock-free; no-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reports the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of observed values (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Bucket is one non-empty histogram bucket: Low <= v < High (Low 0 for the
// v <= 0 bucket).
type Bucket struct {
	Low  int64 `json:"low"`
	High int64 `json:"high"`
	N    int64 `json:"n"`
}

// Buckets reports the non-empty buckets in ascending value order.
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	var out []Bucket
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		b := Bucket{N: n}
		if i > 0 {
			b.Low = int64(1) << (i - 1)
			if i < 63 {
				b.High = int64(1) << i
			} else {
				// Bucket 63 covers [2^62, 2^63) but int64 tops out at
				// 2^63-1, and bucket 64 is unreachable from int64 input.
				b.High = math.MaxInt64
			}
		}
		out = append(out, b)
	}
	return out
}

// Registry is a named collection of metrics. Registration (Counter, Gauge,
// Histogram) takes a mutex; updates through the returned handles are
// lock-free atomics. All methods are nil-safe: a nil *Registry hands out
// nil handles, so a layer wired to a disabled registry costs one branch
// per event.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Calls with
// one name — from any goroutine, any engine — share one counter, so values
// aggregate process-wide. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Nil on
// a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered metric (tests, long-lived servers). The
// handles stay valid — only their values clear.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.ctrs {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// HistSnapshot is a histogram's state in a Snapshot.
type HistSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, with deterministic
// (sorted) iteration order for rendering.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.ctrs {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		snap.Histograms[name] = HistSnapshot{Count: h.Count(), Sum: h.Sum(), Buckets: h.Buckets()}
	}
	return snap
}

// WriteText renders the registry human-readably, metrics sorted by name
// within each kind.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	var b strings.Builder
	writeKind := func(kind string, m map[string]int64) {
		names := sortedKeys(m)
		if len(names) == 0 {
			return
		}
		fmt.Fprintf(&b, "# %s\n", kind)
		for _, name := range names {
			fmt.Fprintf(&b, "%-44s %d\n", name, m[name])
		}
		b.WriteByte('\n')
	}
	writeKind("counters", snap.Counters)
	writeKind("gauges", snap.Gauges)
	if len(snap.Histograms) > 0 {
		fmt.Fprintf(&b, "# histograms (log2 buckets)\n")
		names := make([]string, 0, len(snap.Histograms))
		for name := range snap.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			h := snap.Histograms[name]
			fmt.Fprintf(&b, "%-44s count=%d sum=%d\n", name, h.Count, h.Sum)
			for _, bk := range h.Buckets {
				fmt.Fprintf(&b, "  [%d,%d): %d\n", bk.Low, bk.High, bk.N)
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders the registry snapshot as JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// defaultRegistry always exists: always-on layers (simcache) register on it
// unconditionally, and Hot() exposes it to hot layers once enabled.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Never nil.
func Default() *Registry { return defaultRegistry }

// enabled gates hot-path instrumentation (the DES engine, per-link and
// per-device handles): components fetch handles only when run telemetry
// was requested, so the disabled steady state costs one nil branch.
var enabled atomic.Bool

// SetEnabled turns run telemetry on or off. Components pick the state up
// at construction time (NewEngine, NewLink, …), so flip it before building
// any simulation the run should observe.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether run telemetry was requested.
func Enabled() bool { return enabled.Load() }

// Hot returns the default registry when run telemetry is enabled and nil
// otherwise — the constructor-time gate for hot-path layers.
func Hot() *Registry {
	if enabled.Load() {
		return defaultRegistry
	}
	return nil
}
