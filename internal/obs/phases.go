// Phase telemetry: a run-wide log of per-phase measurements and estimates,
// the data behind report.Telemetry's table. The analysis pipeline records
// one row per phase per stage — "measured" rows when a trace is decomposed
// (internal/phase), "estimate" rows when a model is replayed on a target
// configuration (internal/predict) — and PeakBandwidth results register per
// configuration, so the renderer can put BW_CH, SystemUsage (Eq. 5) and
// relative error (Eq. 6–7) side by side without re-running anything.
package obs

import (
	"sort"
	"sync"
)

// PhaseRecord is one phase's telemetry row from one pipeline stage.
type PhaseRecord struct {
	App    string `json:"app"`
	Config string `json:"config"` // configuration measured or estimated on
	Source string `json:"source"` // "measured" | "estimate"
	Phase  int    `json:"phase"`  // idPH
	NP     int    `json:"np"`
	RS     int64  `json:"rs"`     // request size in bytes
	Weight int64  `json:"weight"` // bytes
	Dir    string `json:"dir"`    // "W" | "R" | "W-R"

	BWMDMBps  float64 `json:"bwMdMBps,omitempty"`  // measured bandwidth
	BWCHMBps  float64 `json:"bwChMBps,omitempty"`  // characterized bandwidth
	TimeMDSec float64 `json:"timeMdSec,omitempty"` // measured phase time
	TimeCHSec float64 `json:"timeChSec,omitempty"` // estimated phase time (Eq. 2)
}

// phaseLogCap bounds the log: a full experiment run records a few thousand
// rows; beyond the cap new rows are dropped (and counted) rather than
// growing without bound.
const phaseLogCap = 16384

var (
	phaseMu      sync.Mutex
	phaseLog     []PhaseRecord
	phaseDropped int64
	peaks        = map[string][2]float64{} // config -> {write, read} MB/s
)

// RecordPhase appends a telemetry row when run telemetry is enabled.
func RecordPhase(pr PhaseRecord) {
	if !Enabled() {
		return
	}
	phaseMu.Lock()
	defer phaseMu.Unlock()
	if len(phaseLog) >= phaseLogCap {
		phaseDropped++
		return
	}
	phaseLog = append(phaseLog, pr)
}

// RecordPeak registers a configuration's device peak (Eq. 3–4) so Usage
// columns can be derived for that configuration's phases.
func RecordPeak(config string, writeMBps, readMBps float64) {
	if !Enabled() {
		return
	}
	phaseMu.Lock()
	defer phaseMu.Unlock()
	peaks[config] = [2]float64{writeMBps, readMBps}
}

// PeakFor reports a configuration's recorded device peak in MB/s.
func PeakFor(config string) (writeMBps, readMBps float64, ok bool) {
	phaseMu.Lock()
	defer phaseMu.Unlock()
	p, ok := peaks[config]
	return p[0], p[1], ok
}

// Phases returns the recorded rows sorted deterministically — by app,
// config, source, np, phase id — with exact duplicates collapsed. Sorting
// here (rather than relying on append order) keeps the dump stable under
// concurrent recording at any -j.
func Phases() []PhaseRecord {
	phaseMu.Lock()
	rows := append([]PhaseRecord(nil), phaseLog...)
	phaseMu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		switch {
		case a.App != b.App:
			return a.App < b.App
		case a.Config != b.Config:
			return a.Config < b.Config
		case a.Source != b.Source:
			return a.Source < b.Source
		case a.NP != b.NP:
			return a.NP < b.NP
		case a.Phase != b.Phase:
			return a.Phase < b.Phase
		default:
			return a.TimeCHSec < b.TimeCHSec
		}
	})
	out := rows[:0]
	for i, r := range rows {
		if i == 0 || r != rows[i-1] {
			out = append(out, r)
		}
	}
	return out
}

// ResetTelemetry clears the phase log and peak registrations (tests).
func ResetTelemetry() {
	phaseMu.Lock()
	defer phaseMu.Unlock()
	phaseLog = nil
	phaseDropped = 0
	peaks = map[string][2]float64{}
}
