package trace

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"iophases/internal/units"
)

func sampleEvents() []Event {
	return []Event{
		{Rank: 0, File: 1, Op: OpWriteAtAll, Offset: 0, Tick: 148, Size: 10612080,
			Time: units.FromSeconds(22.198392), Duration: units.FromSeconds(0.131034)},
		{Rank: 0, File: 1, Op: OpWriteAtAll, Offset: 265302, Tick: 269, Size: 10612080,
			Time: units.FromSeconds(39.101632), Duration: units.FromSeconds(0.159706)},
		{Rank: 0, File: 1, Op: OpReadAtAll, Offset: 0, Tick: 400, Size: 10612080,
			Time: units.FromSeconds(55.0), Duration: units.FromSeconds(0.13)},
	}
}

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op                      Op
		write, read, data, coll bool
	}{
		{OpWriteAtAll, true, false, true, true},
		{OpReadAtAll, false, true, true, true},
		{OpWriteAt, true, false, true, false},
		{OpRead, false, true, true, false},
		{OpSetView, false, false, false, false},
		{OpOpen, false, false, false, false},
	}
	for _, c := range cases {
		if c.op.IsWrite() != c.write || c.op.IsRead() != c.read ||
			c.op.IsData() != c.data || c.op.IsCollective() != c.coll {
			t.Fatalf("classification wrong for %s", c.op)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sampleEvents()
	if err := WriteText(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\nin  %+v\nout %+v", in, out)
	}
}

func TestTextRoundTripQuick(t *testing.T) {
	f := func(rank uint8, file uint8, off int64, tick uint16, size uint32, tms, dus uint32) bool {
		if off < 0 {
			off = -off
		}
		ev := Event{
			Rank: int(rank), File: int(file), Op: OpWriteAt, Offset: off,
			Tick: int64(tick), Size: int64(size),
			Time:     units.Duration(tms) * units.Microsecond,
			Duration: units.Duration(dus) * units.Microsecond,
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, []Event{ev}); err != nil {
			return false
		}
		out, err := ParseText(&buf)
		if err != nil || len(out) != 1 {
			return false
		}
		return out[0] == ev
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParseRejectsBadLines(t *testing.T) {
	if _, err := ParseText(bytes.NewBufferString("1 2 3\n")); err == nil {
		t.Fatal("short line accepted")
	}
	if _, err := ParseText(bytes.NewBufferString("a b c d e f g h\n")); err == nil {
		t.Fatal("non-numeric line accepted")
	}
}

func TestSetSaveLoad(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "traces")
	s := NewSet("example", "configA", 2)
	s.AddFile(FileMeta{ID: 1, Name: "/data", AccessType: "shared", PointerSet: "explicit",
		Collective: true, Blocking: true, HasView: true, ViewDisp: 0, ViewEtype: 40, ViewDesc: "vector"})
	for _, ev := range sampleEvents() {
		s.Record(ev)
	}
	s.Record(Event{Rank: 1, File: 1, Op: OpWriteAtAll, Offset: 0, Tick: 147, Size: 10612080})
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != "example" || got.Config != "configA" || got.NP != 2 {
		t.Fatalf("header %+v", got)
	}
	if len(got.Events[0]) != 3 || len(got.Events[1]) != 1 {
		t.Fatalf("event counts %d/%d", len(got.Events[0]), len(got.Events[1]))
	}
	if !reflect.DeepEqual(got.Files, s.Files) {
		t.Fatalf("file meta mismatch")
	}
	if !reflect.DeepEqual(got.Events[0], s.Events[0]) {
		t.Fatalf("rank 0 events mismatch")
	}
}

func TestTotalBytes(t *testing.T) {
	s := NewSet("x", "c", 1)
	for _, ev := range sampleEvents() {
		s.Record(ev)
	}
	w, r := s.TotalBytes()
	if w != 2*10612080 || r != 10612080 {
		t.Fatalf("w=%d r=%d", w, r)
	}
}

func TestDataEventsFiltersMetadata(t *testing.T) {
	s := NewSet("x", "c", 1)
	s.Record(Event{Rank: 0, File: 1, Op: OpOpen, Tick: 1})
	s.Record(Event{Rank: 0, File: 1, Op: OpSetView, Tick: 2})
	s.Record(Event{Rank: 0, File: 1, Op: OpWriteAt, Tick: 3, Size: 100})
	s.Record(Event{Rank: 0, File: 1, Op: OpClose, Tick: 4})
	data := s.DataEvents(0)
	if len(data) != 1 || data[0].Op != OpWriteAt {
		t.Fatalf("data events %+v", data)
	}
}

func TestFileMetaByID(t *testing.T) {
	s := NewSet("x", "c", 1)
	s.AddFile(FileMeta{ID: 3, Name: "/a"})
	s.AddFile(FileMeta{ID: 3, Name: "/b"}) // replace
	if m := s.FileMetaByID(3); m == nil || m.Name != "/b" {
		t.Fatalf("meta %+v", m)
	}
	if s.FileMetaByID(9) != nil {
		t.Fatal("ghost meta")
	}
	if len(s.Files) != 1 {
		t.Fatalf("duplicate meta entries: %d", len(s.Files))
	}
}
