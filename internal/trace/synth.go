// Deterministic synthetic trace generation for streaming benchmarks and the
// CI bounded-memory smoke. Events are computed on the fly — a Synth source
// never materializes a rank's trace, so it can stand in for billion-event
// inputs at O(1) memory. Everything is pure arithmetic on the event index:
// package trace sits under the determinism analyzers, and identical specs
// must yield identical traces on every run.
package trace

import (
	"fmt"
	"io"

	"iophases/internal/units"
)

// SynthSpec parameterizes a synthetic trace. The shape mirrors a periodic
// checkpoint workload: per rank, rounds of (write, read) pairs advancing by
// RequestSize per pair, with an offset jump and a tick gap between rounds
// (each round mines to its own LAP and phase), followed by a few
// tick-separated dump writes whose constant displacement forms one
// non-contiguous repeated LAP — the family-split case.
type SynthSpec struct {
	App           string
	Config        string
	NP            int
	EventsPerRank int64
	RequestSize   int64 // bytes per op (default 1 MiB)
	RoundLen      int64 // events per round (default 4096, forced even)
}

// withDefaults resolves zero fields.
func (sp SynthSpec) withDefaults() SynthSpec {
	if sp.App == "" {
		sp.App = "synth"
	}
	if sp.Config == "" {
		sp.Config = "synthetic"
	}
	if sp.RequestSize <= 0 {
		sp.RequestSize = 1 << 20
	}
	if sp.RoundLen <= 0 {
		sp.RoundLen = 4096
	}
	if sp.RoundLen%2 != 0 {
		sp.RoundLen++
	}
	return sp
}

// dumps is the number of trailing dump writes per rank (the repeated
// non-contiguous LAP); ranks with very short traces skip the dump section.
const synthDumps = 4

// Synth returns a Source generating the spec's trace.
func Synth(spec SynthSpec) (Source, error) {
	spec = spec.withDefaults()
	if spec.NP <= 0 {
		return nil, fmt.Errorf("trace: synth: NP must be positive, got %d", spec.NP)
	}
	if spec.EventsPerRank <= 0 {
		return nil, fmt.Errorf("trace: synth: EventsPerRank must be positive, got %d", spec.EventsPerRank)
	}
	return synthSource{spec: spec}, nil
}

type synthSource struct{ spec SynthSpec }

func (s synthSource) Meta() Meta {
	return Meta{
		App:    s.spec.App,
		Config: s.spec.Config,
		NP:     s.spec.NP,
		Files: []FileMeta{{
			ID:         0,
			Name:       "synth.dat",
			AccessType: "shared",
			PointerSet: "explicit",
			Blocking:   true,
		}},
	}
}

func (s synthSource) OpenRank(p int) (Reader, error) {
	if p < 0 || p >= s.spec.NP {
		return nil, fmt.Errorf("trace: rank %d out of range [0,%d)", p, s.spec.NP)
	}
	return &synthReader{spec: s.spec, rank: p}, nil
}

// synthReader generates rank events from the running index j.
type synthReader struct {
	spec SynthSpec
	rank int
	j    int64          // next event index
	now  units.Duration // virtual time cursor
}

func (r *synthReader) Read(buf []Event) (int, error) {
	if r.j >= r.spec.EventsPerRank {
		return 0, io.EOF
	}
	n := 0
	for n < len(buf) && r.j < r.spec.EventsPerRank {
		buf[n] = r.event()
		n++
		r.j++
	}
	return n, nil
}

func (r *synthReader) Close() error { return nil }

// event computes event j of the rank and advances the virtual clock.
func (r *synthReader) event() Event {
	sp := r.spec
	rs := sp.RequestSize
	bulk := sp.EventsPerRank
	if bulk > 4*synthDumps {
		bulk -= synthDumps
	}
	var ev Event
	if r.j < bulk {
		// Bulk section: (write, read) pairs. Each rank owns a disjoint
		// region; rounds jump an extra rank-region stride so the offset
		// progression breaks at round boundaries and each round is its
		// own LAP.
		pair := r.j / 2
		round := r.j / sp.RoundLen
		op := OpWriteAt
		if r.j%2 == 1 {
			op = OpReadAt
		}
		ev = Event{
			Rank:   r.rank,
			File:   0,
			Op:     op,
			Offset: (int64(r.rank)*(bulk/2+1) + pair + round*int64(sp.NP)) * rs,
			Tick:   r.j + round*7, // tick gap between rounds
			Size:   rs,
		}
	} else {
		// Dump section: tick-separated writes with constant displacement —
		// one LAP with Rep = synthDumps whose repetitions are split into a
		// phase family.
		d := r.j - bulk
		dumpBase := (int64(sp.NP)*(bulk/2+1) + bulk*int64(sp.NP)) * rs
		ev = Event{
			Rank:   r.rank,
			File:   0,
			Op:     OpWriteAt,
			Offset: dumpBase + (int64(r.rank)+d*int64(sp.NP))*2*rs,
			Tick:   bulk + (bulk/sp.RoundLen)*7 + d*5, // gap of 5 ticks per dump
			Size:   2 * rs,
		}
	}
	ev.Duration = units.Duration(1000 + (r.j%7)*10)
	ev.Time = r.now
	r.now += ev.Duration + 50
	return ev
}
