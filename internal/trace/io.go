package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"iophases/internal/units"
)

// textEncoder streams events into the Figure 2 column format: header on
// creation, rows in bounded chunks, buffered flush on close.
type textEncoder struct {
	bw  *bufio.Writer
	err error
}

func newTextEncoder(w io.Writer) *textEncoder {
	e := &textEncoder{bw: bufio.NewWriter(w)}
	_, e.err = fmt.Fprintf(e.bw, "%-4s %-4s %-26s %-14s %-8s %-12s %-12s %s\n",
		"IdP", "IdF", "MPI-Operation", "Offset", "tick", "RequestSize", "time", "duration")
	return e
}

func (e *textEncoder) writeEvents(events []Event) {
	if e.err != nil {
		return
	}
	for _, ev := range events {
		if _, err := fmt.Fprintf(e.bw, "%-4d %-4d %-26s %-14d %-8d %-12d %-12.6f %.6f\n",
			ev.Rank, ev.File, ev.Op, ev.Offset, ev.Tick, ev.Size,
			ev.Time.Seconds(), ev.Duration.Seconds()); err != nil {
			e.err = err
			return
		}
	}
}

func (e *textEncoder) close() error {
	if e.err != nil {
		return e.err
	}
	return e.bw.Flush()
}

// WriteText renders one rank's trace in the column format of Figure 2.
func WriteText(w io.Writer, events []Event) error {
	e := newTextEncoder(w)
	e.writeEvents(events)
	return e.close()
}

// maxLineLen bounds one trace line; the widest legitimate row (all int64
// fields at full width) is well under 1 KiB, so 1 MiB means corrupt input.
const maxLineLen = 1024 * 1024

// parseTextLine decodes one WriteText row. ok is false for blank and header
// lines. wantRank >= 0 additionally requires the row's IdP to match the
// per-rank file being read — a mismatched row would silently corrupt rank
// attribution downstream (phases group by rank).
func parseTextLine(text string, line, wantRank int) (ev Event, ok bool, err error) {
	text = strings.TrimSpace(text)
	if text == "" || strings.HasPrefix(text, "IdP") {
		return Event{}, false, nil
	}
	fields := strings.Fields(text)
	if len(fields) != 8 {
		return Event{}, false, fmt.Errorf("trace: line %d has %d fields, want 8", line, len(fields))
	}
	if ev.Rank, err = strconv.Atoi(fields[0]); err != nil {
		return Event{}, false, fmt.Errorf("trace: line %d IdP: %v", line, err)
	}
	if wantRank >= 0 && ev.Rank != wantRank {
		return Event{}, false, fmt.Errorf("trace: line %d: IdP %d does not match rank %d of this trace file", line, ev.Rank, wantRank)
	}
	if ev.File, err = strconv.Atoi(fields[1]); err != nil {
		return Event{}, false, fmt.Errorf("trace: line %d IdF: %v", line, err)
	}
	ev.Op = Op(fields[2])
	if ev.Offset, err = strconv.ParseInt(fields[3], 10, 64); err != nil {
		return Event{}, false, fmt.Errorf("trace: line %d offset: %v", line, err)
	}
	if ev.Tick, err = strconv.ParseInt(fields[4], 10, 64); err != nil {
		return Event{}, false, fmt.Errorf("trace: line %d tick: %v", line, err)
	}
	if ev.Size, err = strconv.ParseInt(fields[5], 10, 64); err != nil {
		return Event{}, false, fmt.Errorf("trace: line %d size: %v", line, err)
	}
	tsec, err := strconv.ParseFloat(fields[6], 64)
	if err != nil {
		return Event{}, false, fmt.Errorf("trace: line %d time: %v", line, err)
	}
	ev.Time = units.FromSeconds(tsec)
	dsec, err := strconv.ParseFloat(fields[7], 64)
	if err != nil {
		return Event{}, false, fmt.Errorf("trace: line %d duration: %v", line, err)
	}
	ev.Duration = units.FromSeconds(dsec)
	return ev, true, nil
}

// scanErr wraps a scanner failure with position context; bufio reports an
// overlong line as the bare ErrTooLong, which is useless without knowing
// where in a multi-gigabyte trace it happened.
func scanErr(err error, line int) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("trace: line %d exceeds %d bytes: %w", line, maxLineLen, err)
	}
	return fmt.Errorf("trace: line %d: %w", line, err)
}

// ParseText reads a trace rendered by WriteText. Rows may carry any IdP;
// use ParseTextRank when reading a per-rank trace file.
func ParseText(r io.Reader) ([]Event, error) {
	return ParseTextRank(r, -1)
}

// ParseTextRank reads a per-rank trace rendered by WriteText, rejecting
// rows whose IdP differs from want (want < 0 disables the check).
func ParseTextRank(r io.Reader, want int) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, maxLineLen), maxLineLen)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		ev, ok, err := parseTextLine(sc.Text(), line, want)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, ev)
		}
	}
	return out, scanErr(sc.Err(), line+1)
}

// setHeader is the JSON sidecar saved next to the per-rank trace files.
type setHeader struct {
	App    string     `json:"app"`
	Config string     `json:"config"`
	NP     int        `json:"np"`
	Files  []FileMeta `json:"files"`
}

// saveMeta writes the meta.json sidecar.
func saveMeta(dir string, hdr setHeader) error {
	raw, err := json.MarshalIndent(hdr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "meta.json"), raw, 0o644)
}

// Save writes a Set to dir: meta.json plus trace.<rank>.txt per rank.
func (s *Set) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := saveMeta(dir, setHeader{s.App, s.Config, s.NP, s.Files}); err != nil {
		return err
	}
	for p := 0; p < s.NP; p++ {
		f, err := os.Create(rankPath(dir, p, FormatText))
		if err != nil {
			return err
		}
		werr := WriteText(f, s.Events[p])
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
	}
	return nil
}

// loadMeta reads and decodes dir's meta.json sidecar.
func loadMeta(dir string) (setHeader, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return setHeader{}, err
	}
	var hdr setHeader
	if err := json.Unmarshal(raw, &hdr); err != nil {
		return setHeader{}, fmt.Errorf("trace: meta.json: %v", err)
	}
	return hdr, nil
}

// Load reads a Set saved by Save or SaveBinary (per-rank format
// auto-detected, binary preferred when both exist).
func Load(dir string) (*Set, error) {
	src, err := OpenDir(dir)
	if err != nil {
		return nil, err
	}
	return ReadSet(src)
}
