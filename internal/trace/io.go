package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"iophases/internal/units"
)

// WriteText renders one rank's trace in the column format of Figure 2.
func WriteText(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-4s %-4s %-26s %-14s %-8s %-12s %-12s %s\n",
		"IdP", "IdF", "MPI-Operation", "Offset", "tick", "RequestSize", "time", "duration")
	for _, ev := range events {
		fmt.Fprintf(bw, "%-4d %-4d %-26s %-14d %-8d %-12d %-12.6f %.6f\n",
			ev.Rank, ev.File, ev.Op, ev.Offset, ev.Tick, ev.Size,
			ev.Time.Seconds(), ev.Duration.Seconds())
	}
	return bw.Flush()
}

// ParseText reads a trace rendered by WriteText.
func ParseText(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "IdP") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 8 {
			return nil, fmt.Errorf("trace: line %d has %d fields, want 8", line, len(fields))
		}
		var ev Event
		var err error
		if ev.Rank, err = strconv.Atoi(fields[0]); err != nil {
			return nil, fmt.Errorf("trace: line %d IdP: %v", line, err)
		}
		if ev.File, err = strconv.Atoi(fields[1]); err != nil {
			return nil, fmt.Errorf("trace: line %d IdF: %v", line, err)
		}
		ev.Op = Op(fields[2])
		if ev.Offset, err = strconv.ParseInt(fields[3], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d offset: %v", line, err)
		}
		if ev.Tick, err = strconv.ParseInt(fields[4], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d tick: %v", line, err)
		}
		if ev.Size, err = strconv.ParseInt(fields[5], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d size: %v", line, err)
		}
		tsec, err := strconv.ParseFloat(fields[6], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d time: %v", line, err)
		}
		ev.Time = units.FromSeconds(tsec)
		dsec, err := strconv.ParseFloat(fields[7], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d duration: %v", line, err)
		}
		ev.Duration = units.FromSeconds(dsec)
		out = append(out, ev)
	}
	return out, sc.Err()
}

// setHeader is the JSON sidecar saved next to the per-rank trace files.
type setHeader struct {
	App    string     `json:"app"`
	Config string     `json:"config"`
	NP     int        `json:"np"`
	Files  []FileMeta `json:"files"`
}

// Save writes a Set to dir: meta.json plus trace.<rank>.txt per rank.
func (s *Set) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	hdr, err := json.MarshalIndent(setHeader{s.App, s.Config, s.NP, s.Files}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), hdr, 0o644); err != nil {
		return err
	}
	for p := 0; p < s.NP; p++ {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("trace.%d.txt", p)))
		if err != nil {
			return err
		}
		werr := WriteText(f, s.Events[p])
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return cerr
		}
	}
	return nil
}

// Load reads a Set saved by Save.
func Load(dir string) (*Set, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, err
	}
	var hdr setHeader
	if err := json.Unmarshal(raw, &hdr); err != nil {
		return nil, fmt.Errorf("trace: meta.json: %v", err)
	}
	s := NewSet(hdr.App, hdr.Config, hdr.NP)
	s.Files = hdr.Files
	for p := 0; p < hdr.NP; p++ {
		f, err := os.Open(filepath.Join(dir, fmt.Sprintf("trace.%d.txt", p)))
		if err != nil {
			return nil, err
		}
		evs, perr := ParseText(f)
		f.Close()
		if perr != nil {
			return nil, fmt.Errorf("trace: rank %d: %v", p, perr)
		}
		s.Events[p] = evs
	}
	return s, nil
}
