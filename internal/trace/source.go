package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Meta describes a trace set without its events: the meta.json sidecar in
// struct form. Sources expose it so consumers can size per-rank work before
// reading a single event.
type Meta struct {
	App    string
	Config string
	NP     int
	Files  []FileMeta
}

// Reader streams one rank's events in trace order. Read fills buf and
// returns how many events were decoded; it returns 0, io.EOF once the rank's
// stream is exhausted (a call may also return n > 0 with a nil error and
// io.EOF only on the next call). Any other error is a decode failure.
type Reader interface {
	Read(buf []Event) (int, error)
	Close() error
}

// Source provides per-rank event streams plus the set metadata. OpenRank may
// be called any number of times per rank — every call restarts the rank's
// stream from the beginning, which is what lets multi-pass analyses
// (phase.IdentifyStream's repetition rescan) run without buffering events.
type Source interface {
	Meta() Meta
	OpenRank(p int) (Reader, error)
}

// Source adapts an in-memory Set to the streaming interface: the backend
// used when the events are already resident (traced runs, tests).
func (s *Set) Source() Source { return setSource{s} }

type setSource struct{ s *Set }

func (ss setSource) Meta() Meta {
	return Meta{App: ss.s.App, Config: ss.s.Config, NP: ss.s.NP, Files: ss.s.Files}
}

func (ss setSource) OpenRank(p int) (Reader, error) {
	if p < 0 || p >= ss.s.NP {
		return nil, fmt.Errorf("trace: rank %d out of range [0,%d)", p, ss.s.NP)
	}
	return &sliceReader{evs: ss.s.Events[p]}, nil
}

// sliceReader streams an in-memory event slice.
type sliceReader struct{ evs []Event }

func (r *sliceReader) Read(buf []Event) (int, error) {
	if len(r.evs) == 0 {
		return 0, io.EOF
	}
	n := copy(buf, r.evs)
	r.evs = r.evs[n:]
	return n, nil
}

func (r *sliceReader) Close() error { return nil }

// rankPath returns the on-disk file for rank p in the given format.
func rankPath(dir string, p int, f Format) string {
	return filepath.Join(dir, fmt.Sprintf("trace.%d%s", p, f.ext()))
}

// dirSource streams a saved trace directory rank by rank, auto-detecting
// the per-rank encoding (binary preferred when both files exist).
type dirSource struct {
	dir  string
	meta Meta
	fmts []Format
}

// OpenDir opens a trace directory saved by Save or SaveBinary as a
// streaming Source. Only meta.json is read eagerly; per-rank files are
// opened (and their rank headers validated) on OpenRank.
func OpenDir(dir string) (Source, error) {
	hdr, err := loadMeta(dir)
	if err != nil {
		return nil, err
	}
	d := &dirSource{
		dir:  dir,
		meta: Meta{App: hdr.App, Config: hdr.Config, NP: hdr.NP, Files: hdr.Files},
		fmts: make([]Format, hdr.NP),
	}
	for p := 0; p < hdr.NP; p++ {
		switch {
		case fileExists(rankPath(dir, p, FormatBinary)):
			d.fmts[p] = FormatBinary
		case fileExists(rankPath(dir, p, FormatText)):
			d.fmts[p] = FormatText
		default:
			return nil, fmt.Errorf("trace: rank %d: neither %s nor %s exists",
				p, rankPath(dir, p, FormatBinary), rankPath(dir, p, FormatText))
		}
	}
	return d, nil
}

func fileExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && !st.IsDir()
}

func (d *dirSource) Meta() Meta { return d.meta }

func (d *dirSource) OpenRank(p int) (Reader, error) {
	if p < 0 || p >= d.meta.NP {
		return nil, fmt.Errorf("trace: rank %d out of range [0,%d)", p, d.meta.NP)
	}
	path := rankPath(d.dir, p, d.fmts[p])
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if d.fmts[p] == FormatBinary {
		br, err := newBinReader(f, p, path)
		if err != nil {
			f.Close()
			return nil, err
		}
		return br, nil
	}
	return newTextReader(f, p, path), nil
}

// textReader incrementally parses a per-rank text trace, validating that
// every row's IdP matches the rank the file claims to hold.
type textReader struct {
	f    *os.File
	sc   *bufio.Scanner
	want int
	line int
	path string
}

func newTextReader(f *os.File, want int, path string) *textReader {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), maxLineLen)
	return &textReader{f: f, sc: sc, want: want, path: path}
}

func (r *textReader) Read(buf []Event) (int, error) {
	n := 0
	for n < len(buf) {
		if !r.sc.Scan() {
			if err := scanErr(r.sc.Err(), r.line+1); err != nil {
				return n, fmt.Errorf("%s: %v", r.path, err)
			}
			if n == 0 {
				return 0, io.EOF
			}
			return n, nil
		}
		r.line++
		ev, ok, err := parseTextLine(r.sc.Text(), r.line, r.want)
		if err != nil {
			return n, fmt.Errorf("%s: %v", r.path, err)
		}
		if ok {
			buf[n] = ev
			n++
		}
	}
	return n, nil
}

func (r *textReader) Close() error { return r.f.Close() }

// ReadAll drains a Reader into a slice.
func ReadAll(r Reader) ([]Event, error) {
	var out []Event
	buf := make([]Event, 4096)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// ReadSet materializes a Source into an in-memory Set.
func ReadSet(src Source) (*Set, error) {
	m := src.Meta()
	s := NewSet(m.App, m.Config, m.NP)
	s.Files = m.Files
	for p := 0; p < m.NP; p++ {
		r, err := src.OpenRank(p)
		if err != nil {
			return nil, err
		}
		evs, rerr := ReadAll(r)
		cerr := r.Close()
		if rerr != nil {
			return nil, rerr
		}
		if cerr != nil {
			return nil, cerr
		}
		s.Events[p] = evs
	}
	return s, nil
}
