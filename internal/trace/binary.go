// Binary on-disk trace format — the compact per-rank encoding for large
// traces, in the spirit of Darshan's and Recorder's logs: field deltas
// against the previous event, zigzag varints, and an adaptive operation
// dictionary so each event costs a few bytes instead of a ~100-byte text row.
//
// Layout of trace.<p>.bin:
//
//	magic "IOBIN1" (6 bytes)
//	uvarint rank                      — must equal the <p> of the filename
//	records, each led by a uvarint code:
//	  0        end-of-trace sentinel (must be the final byte)
//	  1        op-define: uvarint length, then that many bytes of MPI
//	           operation name; appended to the dictionary
//	  n >= 2   event with Op = dict[n-2], followed by six signed varints —
//	           the deltas of File, Offset, Tick, Size, Time, Duration
//	           against the previous event (a zero Event for the first)
//
// Deltas use two's-complement wraparound, which is self-inverse, so even
// adversarial max-int64 jumps round-trip exactly. The sentinel lets the
// decoder tell clean end-of-trace from truncation. Rank is stored once in
// the header — a per-event IdP cannot disagree with the file, by
// construction (the text loader must validate this per row instead).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"iophases/internal/units"
)

// Format identifies a per-rank trace file encoding.
type Format int

// Per-rank trace encodings.
const (
	FormatText   Format = iota // trace.<p>.txt, the Figure 2 column layout
	FormatBinary               // trace.<p>.bin, delta-encoded varints
)

func (f Format) ext() string {
	if f == FormatBinary {
		return ".bin"
	}
	return ".txt"
}

func (f Format) String() string {
	if f == FormatBinary {
		return "binary"
	}
	return "text"
}

// ParseFormat resolves a -format flag value.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "text":
		return FormatText, nil
	case "binary":
		return FormatBinary, nil
	}
	return 0, fmt.Errorf("trace: unknown format %q (want text or binary)", s)
}

var binMagic = []byte("IOBIN1")

// maxOpLen bounds one dictionary entry; MPI-IO routine names are < 32
// bytes, so anything longer is corrupt input, not a long name.
const maxOpLen = 256

// BinaryWriter encodes one rank's events into the binary format. Close
// writes the end-of-trace sentinel; a file without one is truncated.
type BinaryWriter struct {
	w    io.Writer
	ops  map[Op]uint64 // op name -> event code (>= 2)
	prev Event
	rank int
	buf  []byte
}

// NewBinaryWriter writes the header and returns an encoder for rank p.
func NewBinaryWriter(w io.Writer, p int) (*BinaryWriter, error) {
	bw := &BinaryWriter{w: w, ops: make(map[Op]uint64), rank: p, buf: make([]byte, 0, 128)}
	bw.buf = append(bw.buf, binMagic...)
	bw.buf = binary.AppendUvarint(bw.buf, uint64(p))
	return bw, bw.flush()
}

func (bw *BinaryWriter) flush() error {
	if len(bw.buf) == 0 {
		return nil
	}
	_, err := bw.w.Write(bw.buf)
	bw.buf = bw.buf[:0]
	return err
}

// Write encodes one event. The event's Rank must match the writer's: the
// format stores rank once in the header.
func (bw *BinaryWriter) Write(ev Event) error {
	if ev.Rank != bw.rank {
		return fmt.Errorf("trace: binary rank %d: event has IdP %d", bw.rank, ev.Rank)
	}
	code, ok := bw.ops[ev.Op]
	if !ok {
		code = uint64(len(bw.ops)) + 2
		bw.ops[ev.Op] = code
		bw.buf = binary.AppendUvarint(bw.buf, 1)
		bw.buf = binary.AppendUvarint(bw.buf, uint64(len(ev.Op)))
		bw.buf = append(bw.buf, ev.Op...)
	}
	bw.buf = binary.AppendUvarint(bw.buf, code)
	bw.buf = binary.AppendVarint(bw.buf, int64(ev.File)-int64(bw.prev.File))
	bw.buf = binary.AppendVarint(bw.buf, ev.Offset-bw.prev.Offset)
	bw.buf = binary.AppendVarint(bw.buf, ev.Tick-bw.prev.Tick)
	bw.buf = binary.AppendVarint(bw.buf, ev.Size-bw.prev.Size)
	bw.buf = binary.AppendVarint(bw.buf, int64(ev.Time)-int64(bw.prev.Time))
	bw.buf = binary.AppendVarint(bw.buf, int64(ev.Duration)-int64(bw.prev.Duration))
	bw.prev = ev
	if len(bw.buf) >= 64*1024 {
		return bw.flush()
	}
	return nil
}

// Close writes the end-of-trace sentinel and flushes. It does not close the
// underlying writer.
func (bw *BinaryWriter) Close() error {
	bw.buf = binary.AppendUvarint(bw.buf, 0)
	return bw.flush()
}

// binReader decodes the binary format as a streaming Reader.
type binReader struct {
	f    io.Closer
	r    *bufio.Reader
	ops  []Op
	prev Event
	rank int
	path string
	done bool
}

// newBinReader validates the header and returns a decoder. wantRank < 0
// accepts any rank.
func newBinReader(f *os.File, wantRank int, path string) (*binReader, error) {
	r := bufio.NewReaderSize(f, 64*1024)
	var magic [6]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%s: trace: bad binary header: %v", path, err)
	}
	if string(magic[:]) != string(binMagic) {
		return nil, fmt.Errorf("%s: trace: bad magic %q (want %q)", path, magic[:], binMagic)
	}
	rank, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("%s: trace: reading rank: %v", path, err)
	}
	if rank > 1<<30 {
		return nil, fmt.Errorf("%s: trace: implausible rank %d", path, rank)
	}
	if wantRank >= 0 && int(rank) != wantRank {
		return nil, fmt.Errorf("%s: trace: header rank %d does not match rank %d of this trace file", path, rank, wantRank)
	}
	return &binReader{f: f, r: r, rank: int(rank), path: path}, nil
}

// corrupt wraps a decode failure; a bare io.EOF mid-record means the file
// was truncated before the end-of-trace sentinel.
func (d *binReader) corrupt(what string, err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%s: trace: truncated binary trace (%s): %v", d.path, what, err)
	}
	return fmt.Errorf("%s: trace: %s: %v", d.path, what, err)
}

func (d *binReader) Read(buf []Event) (int, error) {
	if d.done {
		return 0, io.EOF
	}
	n := 0
	for n < len(buf) {
		code, err := binary.ReadUvarint(d.r)
		if err != nil {
			return n, d.corrupt("record code", err)
		}
		switch {
		case code == 0:
			if _, err := d.r.ReadByte(); err != io.EOF {
				return n, fmt.Errorf("%s: trace: trailing data after end-of-trace sentinel", d.path)
			}
			d.done = true
			if n == 0 {
				return 0, io.EOF
			}
			return n, nil
		case code == 1:
			l, err := binary.ReadUvarint(d.r)
			if err != nil {
				return n, d.corrupt("op length", err)
			}
			if l == 0 || l > maxOpLen {
				return n, fmt.Errorf("%s: trace: implausible op name length %d", d.path, l)
			}
			name := make([]byte, l)
			if _, err := io.ReadFull(d.r, name); err != nil {
				return n, d.corrupt("op name", err)
			}
			d.ops = append(d.ops, Op(name))
		default:
			idx := code - 2
			if idx >= uint64(len(d.ops)) {
				return n, fmt.Errorf("%s: trace: event references undefined op code %d (dictionary has %d)", d.path, code, len(d.ops))
			}
			ev := Event{Rank: d.rank, Op: d.ops[idx]}
			var deltas [6]int64
			for i := range deltas {
				v, err := binary.ReadVarint(d.r)
				if err != nil {
					return n, d.corrupt("event field", err)
				}
				deltas[i] = v
			}
			ev.File = int(int64(d.prev.File) + deltas[0])
			ev.Offset = d.prev.Offset + deltas[1]
			ev.Tick = d.prev.Tick + deltas[2]
			ev.Size = d.prev.Size + deltas[3]
			ev.Time = d.prev.Time + units.Duration(deltas[4])
			ev.Duration = d.prev.Duration + units.Duration(deltas[5])
			d.prev = ev
			buf[n] = ev
			n++
		}
	}
	return n, nil
}

func (d *binReader) Close() error { return d.f.Close() }

// SaveBinary writes a Set to dir in the binary per-rank format: meta.json
// plus trace.<rank>.bin per rank.
func (s *Set) SaveBinary(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := saveMeta(dir, setHeader{s.App, s.Config, s.NP, s.Files}); err != nil {
		return err
	}
	for p := 0; p < s.NP; p++ {
		if err := writeBinaryRank(rankPath(dir, p, FormatBinary), p, s.Events[p]); err != nil {
			return err
		}
	}
	return nil
}

func writeBinaryRank(path string, p int, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw, err := NewBinaryWriter(f, p)
	if err == nil {
		for _, ev := range events {
			if err = bw.Write(ev); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = bw.Close()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ConvertDir re-encodes a saved trace directory into dst with the given
// per-rank format, streaming rank by rank — memory stays bounded no matter
// how large the trace is.
func ConvertDir(srcDir, dstDir string, f Format) error {
	src, err := OpenDir(srcDir)
	if err != nil {
		return err
	}
	return WriteDir(src, dstDir, f)
}

// WriteDir drains a Source into a trace directory in the given per-rank
// format, one bounded-size chunk at a time.
func WriteDir(src Source, dstDir string, format Format) error {
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		return err
	}
	m := src.Meta()
	if err := saveMeta(dstDir, setHeader{m.App, m.Config, m.NP, m.Files}); err != nil {
		return err
	}
	buf := make([]Event, 4096)
	for p := 0; p < m.NP; p++ {
		if err := writeRankFrom(src, p, rankPath(dstDir, p, format), format, buf); err != nil {
			return err
		}
	}
	return nil
}

func writeRankFrom(src Source, p int, path string, format Format, buf []Event) error {
	r, err := src.OpenRank(p)
	if err != nil {
		return err
	}
	defer r.Close()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = copyRank(f, r, p, format, buf)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func copyRank(f *os.File, r Reader, p int, format Format, buf []Event) error {
	if format == FormatBinary {
		bw, err := NewBinaryWriter(f, p)
		if err != nil {
			return err
		}
		for {
			n, err := r.Read(buf)
			for _, ev := range buf[:n] {
				if werr := bw.Write(ev); werr != nil {
					return werr
				}
			}
			if err == io.EOF {
				return bw.Close()
			}
			if err != nil {
				return err
			}
		}
	}
	tw := newTextEncoder(f)
	for {
		n, err := r.Read(buf)
		tw.writeEvents(buf[:n])
		if err == io.EOF {
			return tw.close()
		}
		if err != nil {
			return err
		}
	}
}
