package trace

import (
	"os"
	"reflect"
	"testing"
)

func TestOpenDirMixedFormats(t *testing.T) {
	// Rank 0 text-only, rank 1 binary-only: per-rank auto-detection.
	dir := t.TempDir()
	s := NewSet("mixed", "c", 2)
	s.Record(Event{Rank: 0, File: 0, Op: OpWriteAt, Tick: 1, Size: 10})
	s.Record(Event{Rank: 1, File: 0, Op: OpReadAt, Tick: 1, Size: 20})
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := writeBinaryRank(rankPath(dir, 1, FormatBinary), 1, s.Events[1]); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(rankPath(dir, 1, FormatText)); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, s.Events) {
		t.Fatalf("events mismatch:\ngot  %+v\nwant %+v", got.Events, s.Events)
	}
}

func TestOpenDirMissingRankFile(t *testing.T) {
	dir := t.TempDir()
	s := NewSet("x", "c", 2)
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(rankPath(dir, 1, FormatText)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir); err == nil {
		t.Fatal("missing rank file accepted")
	}
}

func TestSourceRestartable(t *testing.T) {
	// The Source contract: OpenRank restarts the stream every call — the
	// property the streaming rescan pass depends on.
	dir := t.TempDir()
	s := adversarialSet()
	if err := s.SaveBinary(dir); err != nil {
		t.Fatal(err)
	}
	src, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		r, err := src.OpenRank(0)
		if err != nil {
			t.Fatal(err)
		}
		evs, err := ReadAll(r)
		r.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(evs, s.Events[0]) {
			t.Fatalf("pass %d diverged", pass)
		}
	}
}

func TestSetSourceRoundTrip(t *testing.T) {
	s := adversarialSet()
	got, err := ReadSet(s.Source())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Events, s.Events) {
		t.Fatal("Set -> Source -> Set diverged")
	}
}

func TestSynthDeterministicAndRestartable(t *testing.T) {
	spec := SynthSpec{NP: 2, EventsPerRank: 5000, RoundLen: 64}
	a, err := Synth(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synth(spec)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		ra, _ := a.OpenRank(p)
		rb, _ := b.OpenRank(p)
		ea, err := ReadAll(ra)
		if err != nil {
			t.Fatal(err)
		}
		eb, err := ReadAll(rb)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ea, eb) {
			t.Fatalf("rank %d: identical specs diverged", p)
		}
		if len(ea) != 5000 {
			t.Fatalf("rank %d: %d events, want 5000", p, len(ea))
		}
		// Ticks must be strictly increasing (trace order).
		for i := 1; i < len(ea); i++ {
			if ea[i].Tick <= ea[i-1].Tick {
				t.Fatalf("rank %d: tick not increasing at %d: %d -> %d",
					p, i, ea[i-1].Tick, ea[i].Tick)
			}
		}
	}
	if _, err := a.OpenRank(2); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}

func TestSynthValidation(t *testing.T) {
	if _, err := Synth(SynthSpec{NP: 0, EventsPerRank: 10}); err == nil {
		t.Fatal("NP=0 accepted")
	}
	if _, err := Synth(SynthSpec{NP: 1, EventsPerRank: 0}); err == nil {
		t.Fatal("EventsPerRank=0 accepted")
	}
}

func TestViewMatchesViewOf(t *testing.T) {
	s := NewSet("x", "c", 4)
	s.AddFile(FileMeta{ID: 0, Name: "/a", Views: []ViewInfo{
		{Rank: 0, Disp: 10, Etype: 40, Block: 100, Stride: 400},
		{Rank: 2, Disp: 20, Etype: 40},
		{Rank: 2, Disp: 99, Etype: 8}, // duplicate: first wins, like ViewOf
	}})
	s.AddFile(FileMeta{ID: 5, Name: "/b"})
	for _, id := range []int{0, 5, 7} {
		for p := 0; p < 4; p++ {
			want := ViewInfo{Rank: p, Etype: 1}
			if m := s.FileMetaByID(id); m != nil {
				want = m.ViewOf(p)
			}
			if got := s.View(id, p); got != want {
				t.Fatalf("View(%d,%d) = %+v, want %+v", id, p, got, want)
			}
		}
	}
}

func TestViewIndexInvalidatedByAddFile(t *testing.T) {
	s := NewSet("x", "c", 1)
	s.AddFile(FileMeta{ID: 0, Views: []ViewInfo{{Rank: 0, Disp: 1, Etype: 1}}})
	if got := s.View(0, 0).Disp; got != 1 {
		t.Fatalf("disp = %d", got)
	}
	// Replacing the file after a lookup must rebuild the index.
	s.AddFile(FileMeta{ID: 0, Views: []ViewInfo{{Rank: 0, Disp: 2, Etype: 1}}})
	if got := s.View(0, 0).Disp; got != 2 {
		t.Fatalf("stale index: disp = %d, want 2", got)
	}
}

// BenchmarkViewIndexed pins the satellite perf fix: the indexed lookup
// must stay O(1) in files and views.
func BenchmarkViewIndexed(b *testing.B) {
	s := manyFileSet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := s.View(63, 63); v.Etype != 40 {
			b.Fatal("bad view")
		}
	}
}

// BenchmarkViewScan is the pre-index double linear scan, for comparison.
func BenchmarkViewScan(b *testing.B) {
	s := manyFileSet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := s.FileMetaByID(63).ViewOf(63); v.Etype != 40 {
			b.Fatal("bad view")
		}
	}
}

func manyFileSet() *Set {
	s := NewSet("bench", "c", 64)
	for id := 0; id < 64; id++ {
		m := FileMeta{ID: id}
		for p := 0; p < 64; p++ {
			m.Views = append(m.Views, ViewInfo{Rank: p, Etype: 40})
		}
		s.AddFile(m)
	}
	return s
}

func BenchmarkBinaryEncode(b *testing.B) {
	events := synthRankEvents(b, 100_000)
	b.SetBytes(int64(len(events)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bw, err := NewBinaryWriter(discard{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, ev := range events {
			if err := bw.Write(ev); err != nil {
				b.Fatal(err)
			}
		}
		if err := bw.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryDecode(b *testing.B) {
	events := synthRankEvents(b, 100_000)
	dir := b.TempDir()
	path := rankPath(dir, 0, FormatBinary)
	if err := writeBinaryRank(path, 0, events); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(events)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		d, err := newBinReader(f, 0, path)
		if err != nil {
			b.Fatal(err)
		}
		got, err := ReadAll(d)
		d.Close()
		if err != nil || len(got) != len(events) {
			b.Fatalf("decode: %v (%d events)", err, len(got))
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func synthRankEvents(tb testing.TB, n int64) []Event {
	src, err := Synth(SynthSpec{NP: 1, EventsPerRank: n})
	if err != nil {
		tb.Fatal(err)
	}
	r, err := src.OpenRank(0)
	if err != nil {
		tb.Fatal(err)
	}
	defer r.Close()
	events, err := ReadAll(r)
	if err != nil {
		tb.Fatal(err)
	}
	return events
}
