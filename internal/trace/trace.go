// Package trace defines the MPI-IO event records produced by the
// interposition tracer, in the format of Figure 2 of the paper: one trace
// file per rank with columns
//
//	IdP IdF MPI-Operation Offset tick RequestSize time duration
//
// plus the per-file metadata the tracer gathers (pointer kind, collective,
// blocking, access type, file view). Traces are the only input the phase
// analyzer needs, which is exactly the paper's point: characterize once,
// analyze anywhere.
package trace

import (
	"sync"

	"iophases/internal/units"
)

// Op names an MPI-IO operation, using the MPI-2 routine names.
type Op string

// MPI-IO operations the tracer interposes.
const (
	OpOpen       Op = "MPI_File_open"
	OpClose      Op = "MPI_File_close"
	OpSetView    Op = "MPI_File_set_view"
	OpWriteAt    Op = "MPI_File_write_at"
	OpWriteAtAll Op = "MPI_File_write_at_all"
	OpReadAt     Op = "MPI_File_read_at"
	OpReadAtAll  Op = "MPI_File_read_at_all"
	OpWrite      Op = "MPI_File_write"
	OpWriteAll   Op = "MPI_File_write_all"
	OpRead       Op = "MPI_File_read"
	OpReadAll    Op = "MPI_File_read_all"
	OpIWriteAt   Op = "MPI_File_iwrite_at"
	OpIReadAt    Op = "MPI_File_iread_at"
)

// IsWrite reports whether the operation transfers data to storage.
func (o Op) IsWrite() bool {
	switch o {
	case OpWriteAt, OpWriteAtAll, OpWrite, OpWriteAll, OpIWriteAt:
		return true
	}
	return false
}

// IsRead reports whether the operation transfers data from storage.
func (o Op) IsRead() bool {
	switch o {
	case OpReadAt, OpReadAtAll, OpRead, OpReadAll, OpIReadAt:
		return true
	}
	return false
}

// IsNonblocking reports whether the operation is a nonblocking variant.
func (o Op) IsNonblocking() bool { return o == OpIWriteAt || o == OpIReadAt }

// IsData reports whether the operation moves file data (vs metadata).
func (o Op) IsData() bool { return o.IsWrite() || o.IsRead() }

// IsCollective reports whether the operation is a collective variant.
func (o Op) IsCollective() bool {
	switch o {
	case OpWriteAtAll, OpReadAtAll, OpWriteAll, OpReadAll:
		return true
	}
	return false
}

// Event is one traced MPI-IO call by one rank (a row of Figure 2). Offset
// is the view-relative offset in bytes, exactly what the application passed
// (the phase model works in the file's logical view, as §III-A1 describes).
type Event struct {
	Rank     int            // IdP
	File     int            // IdF
	Op       Op             // MPI-Operation
	Offset   int64          // view-relative offset in bytes
	Tick     int64          // logical time (PAS2P tick)
	Size     int64          // RequestSize in bytes
	Time     units.Duration // virtual time at call start
	Duration units.Duration // call duration
}

// ViewInfo is one rank's recorded file view (MPI_File_set_view arguments),
// in machine-usable form so the analyzer can translate view offsets to
// physical file offsets. Block == 0 means a contiguous filetype.
type ViewInfo struct {
	Rank   int   `json:"rank"`
	Disp   int64 `json:"disp"`
	Etype  int64 `json:"etype"`
	Block  int64 `json:"block"`
	Stride int64 `json:"stride"`
	Phase  int64 `json:"phase"`
}

// Physical translates a view-relative offset (etype units) to the physical
// byte offset of the first byte accessed.
func (v ViewInfo) Physical(offEtypes int64) int64 {
	b := offEtypes * v.Etype
	if v.Block <= 0 {
		return v.Disp + b
	}
	blk := b / v.Block
	within := b % v.Block
	return v.Disp + v.Phase + blk*v.Stride + within
}

// FileMeta is the per-file metadata of §III-A1 / §IV: how the application
// opened and viewed the file, recorded (not inferred) by the tracer.
type FileMeta struct {
	ID         int        `json:"id"`
	Name       string     `json:"name"`
	AccessType string     `json:"accessType"` // "shared" | "unique"
	PointerSet string     `json:"pointerSet"` // "explicit" | "individual" | "shared"
	Collective bool       `json:"collective"` // any collective data op seen
	Blocking   bool       `json:"blocking"`   // all ops blocking (always true here)
	HasView    bool       `json:"hasView"`    // MPI_File_set_view used
	ViewDisp   int64      `json:"viewDisp"`
	ViewEtype  int64      `json:"viewEtype"` // etype extent in bytes
	ViewDesc   string     `json:"viewDesc"`  // human-readable filetype description
	Views      []ViewInfo `json:"views,omitempty"`
}

// ViewOf returns rank p's recorded view, or a byte-contiguous default.
func (m *FileMeta) ViewOf(p int) ViewInfo {
	for _, v := range m.Views {
		if v.Rank == p {
			return v
		}
	}
	return ViewInfo{Rank: p, Etype: 1}
}

// Set is the complete characterization of one application run: all ranks'
// traces plus metadata — the traceFile(p) collection of Table I.
type Set struct {
	App    string     `json:"app"`
	Config string     `json:"config"` // cluster the trace was taken on
	NP     int        `json:"np"`
	Files  []FileMeta `json:"files"`
	// Events holds one slice per rank, each sorted by tick.
	Events [][]Event `json:"events"`

	mu  sync.Mutex // guards idx
	idx *setIndex  // lazy metadata index; nil until first lookup, reset by AddFile
}

// setIndex accelerates the per-event metadata lookups (file id → FileMeta,
// (file, rank) → ViewInfo). Both were linear scans called once per event
// translation; replay and phase building over wide traces made them O(events
// × files) and O(events × views).
type setIndex struct {
	file map[int]int       // file ID → position in Files
	view []map[int]ViewInfo // per Files position: rank → first recorded view
}

// index returns the metadata index, building it on first use. AddFile
// invalidates it, so the index always reflects the current Files slice.
func (s *Set) index() *setIndex {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.idx == nil {
		ix := &setIndex{file: make(map[int]int, len(s.Files)), view: make([]map[int]ViewInfo, len(s.Files))}
		for i := range s.Files {
			if _, dup := ix.file[s.Files[i].ID]; !dup {
				ix.file[s.Files[i].ID] = i
			}
			if len(s.Files[i].Views) > 0 {
				vm := make(map[int]ViewInfo, len(s.Files[i].Views))
				for _, v := range s.Files[i].Views {
					// First recorded view wins, matching ViewOf's scan.
					if _, dup := vm[v.Rank]; !dup {
						vm[v.Rank] = v
					}
				}
				ix.view[i] = vm
			}
		}
		s.idx = ix
	}
	return s.idx
}

// NewSet allocates a Set for np ranks.
func NewSet(app, config string, np int) *Set {
	return &Set{App: app, Config: config, NP: np, Events: make([][]Event, np)}
}

// Record appends an event to its rank's trace.
func (s *Set) Record(ev Event) {
	s.Events[ev.Rank] = append(s.Events[ev.Rank], ev)
}

// RankTrace returns rank p's events.
func (s *Set) RankTrace(p int) []Event { return s.Events[p] }

// FileMetaByID returns metadata for file id, or nil.
func (s *Set) FileMetaByID(id int) *FileMeta {
	if i, ok := s.index().file[id]; ok {
		return &s.Files[i]
	}
	return nil
}

// View returns rank p's recorded view of file id, or a byte-contiguous
// default — the indexed equivalent of FileMetaByID(id).ViewOf(p), O(1)
// instead of a double linear scan per event translation.
func (s *Set) View(id, p int) ViewInfo {
	ix := s.index()
	if i, ok := ix.file[id]; ok {
		if v, ok := ix.view[i][p]; ok {
			return v
		}
	}
	return ViewInfo{Rank: p, Etype: 1}
}

// AddFile registers file metadata, replacing an existing entry for the same
// id. Any metadata index built so far is invalidated.
func (s *Set) AddFile(m FileMeta) {
	s.mu.Lock()
	s.idx = nil
	s.mu.Unlock()
	for i := range s.Files {
		if s.Files[i].ID == m.ID {
			s.Files[i] = m
			return
		}
	}
	s.Files = append(s.Files, m)
}

// TotalBytes sums data volume by direction across all ranks.
func (s *Set) TotalBytes() (written, read int64) {
	for _, evs := range s.Events {
		for _, ev := range evs {
			switch {
			case ev.Op.IsWrite():
				written += ev.Size
			case ev.Op.IsRead():
				read += ev.Size
			}
		}
	}
	return written, read
}

// DataEvents returns rank p's data-moving events in tick order. The result
// is sized exactly (one counting pass, one allocation) — extraction calls
// this per rank on every Identify and repeated append-growth of
// multi-thousand-event slices showed up in heap profiles.
func (s *Set) DataEvents(p int) []Event {
	n := 0
	for i := range s.Events[p] {
		if s.Events[p][i].Op.IsData() {
			n++
		}
	}
	out := make([]Event, 0, n)
	for _, ev := range s.Events[p] {
		if ev.Op.IsData() {
			out = append(out, ev)
		}
	}
	return out
}
