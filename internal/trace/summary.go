package trace

import (
	"fmt"
	"sort"
	"strings"

	"iophases/internal/units"
)

// Summary is an aggregate characterization of a trace set in the style of
// Darshan's counters (the paper's related work [2]): per-file operation
// counts, volumes, request-size histograms and timing totals. Where the
// phase model answers "when and where", the summary answers "how much of
// what" — useful as a sanity view and for comparing against
// darshan-parser output of real runs.
type Summary struct {
	App    string
	Config string
	NP     int
	Files  []FileSummary
}

// FileSummary aggregates one file's activity across all ranks.
type FileSummary struct {
	ID           int
	Name         string
	Writes       int64
	Reads        int64
	BytesWritten int64
	BytesRead    int64
	WriteTime    units.Duration // summed call durations
	ReadTime     units.Duration
	Collective   int64 // collective data calls
	Independent  int64
	Nonblocking  int64
	MinRS, MaxRS int64
	// Histogram buckets request sizes by powers of two from 1 KiB
	// (bucket 0: <1 KiB … bucket 12: >=2 GiB), Darshan's SIZE_*
	// counters.
	Histogram [13]int64
	// RanksTouched is how many ranks accessed the file.
	RanksTouched int
}

// histBucket maps a request size to its histogram bucket.
func histBucket(size int64) int {
	b := 0
	for s := int64(units.KiB); s <= size && b < 12; s <<= 1 {
		b++
	}
	return b
}

// bucketLabel names a histogram bucket.
func bucketLabel(b int) string {
	switch {
	case b == 0:
		return "<1K"
	case b >= 12:
		return ">=2G"
	default:
		return units.FormatBytes(int64(units.KiB) << (b - 1))
	}
}

// Summarize aggregates a trace set.
func Summarize(s *Set) *Summary {
	byFile := make(map[int]*FileSummary)
	ranks := make(map[int]map[int]bool)
	var order []int
	get := func(id int) *FileSummary {
		fs, ok := byFile[id]
		if !ok {
			fs = &FileSummary{ID: id, MinRS: -1}
			if m := s.FileMetaByID(id); m != nil {
				fs.Name = m.Name
			}
			byFile[id] = fs
			ranks[id] = make(map[int]bool)
			order = append(order, id)
		}
		return fs
	}
	for p := 0; p < s.NP; p++ {
		for _, ev := range s.Events[p] {
			if !ev.Op.IsData() {
				continue
			}
			fs := get(ev.File)
			ranks[ev.File][p] = true
			switch {
			case ev.Op.IsWrite():
				fs.Writes++
				fs.BytesWritten += ev.Size
				fs.WriteTime += ev.Duration
			case ev.Op.IsRead():
				fs.Reads++
				fs.BytesRead += ev.Size
				fs.ReadTime += ev.Duration
			}
			if ev.Op.IsCollective() {
				fs.Collective++
			} else {
				fs.Independent++
			}
			if ev.Op.IsNonblocking() {
				fs.Nonblocking++
			}
			if fs.MinRS < 0 || ev.Size < fs.MinRS {
				fs.MinRS = ev.Size
			}
			if ev.Size > fs.MaxRS {
				fs.MaxRS = ev.Size
			}
			fs.Histogram[histBucket(ev.Size)]++
		}
	}
	sort.Ints(order)
	out := &Summary{App: s.App, Config: s.Config, NP: s.NP}
	for _, id := range order {
		fs := byFile[id]
		fs.RanksTouched = len(ranks[id])
		out.Files = append(out.Files, *fs)
	}
	return out
}

// String renders the summary in a darshan-parser-like layout.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# darshan-style summary: app=%s config=%s nprocs=%d\n",
		s.App, s.Config, s.NP)
	for _, f := range s.Files {
		fmt.Fprintf(&b, "\nfile %d: %s (touched by %d ranks)\n", f.ID, f.Name, f.RanksTouched)
		fmt.Fprintf(&b, "  POSIX_WRITES      %8d   BYTES_WRITTEN %12d\n", f.Writes, f.BytesWritten)
		fmt.Fprintf(&b, "  POSIX_READS       %8d   BYTES_READ    %12d\n", f.Reads, f.BytesRead)
		fmt.Fprintf(&b, "  COLL_OPENS        %8d   INDEP_OPS     %12d\n", f.Collective, f.Independent)
		fmt.Fprintf(&b, "  NONBLOCKING_OPS   %8d\n", f.Nonblocking)
		fmt.Fprintf(&b, "  WRITE_TIME  %12.6f   READ_TIME  %12.6f\n",
			f.WriteTime.Seconds(), f.ReadTime.Seconds())
		if f.Writes+f.Reads > 0 {
			fmt.Fprintf(&b, "  RS_MIN %s  RS_MAX %s\n",
				units.FormatBytes(f.MinRS), units.FormatBytes(f.MaxRS))
			fmt.Fprintf(&b, "  size histogram:")
			for bkt, n := range f.Histogram {
				if n > 0 {
					fmt.Fprintf(&b, " %s:%d", bucketLabel(bkt), n)
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
