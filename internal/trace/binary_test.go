package trace

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"iophases/internal/units"
)

// encodeRank renders events into an in-memory binary trace.
func encodeRank(t *testing.T, p int, events []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw, err := NewBinaryWriter(&buf, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := bw.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeFile writes raw to a temp file and drains it through the binary
// decoder, returning the events or the first error.
func decodeFile(t *testing.T, raw []byte, wantRank int) ([]Event, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.bin")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := newBinReader(f, wantRank, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	defer d.Close()
	return ReadAll(d)
}

func TestBinaryRoundTripAdversarial(t *testing.T) {
	// Negative offsets, zero sizes, max-int64 jumps in both directions —
	// the wraparound delta encoding must reproduce every value exactly.
	events := []Event{
		{Rank: 3, File: 0, Op: OpWriteAt, Offset: -1 << 40, Tick: 0, Size: 0},
		{Rank: 3, File: 7, Op: OpReadAt, Offset: math.MaxInt64, Tick: math.MaxInt64, Size: math.MaxInt64,
			Time: units.Duration(math.MaxInt64), Duration: units.Duration(math.MaxInt64)},
		{Rank: 3, File: -2, Op: OpWriteAt, Offset: math.MinInt64, Tick: -5, Size: 1,
			Time: units.Duration(math.MinInt64), Duration: 0},
		{Rank: 3, File: 0, Op: OpWrite, Offset: 0, Tick: 0, Size: 0},
	}
	got, err := decodeFile(t, encodeRank(t, 3, events), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip mismatch:\nin  %+v\nout %+v", events, got)
	}
}

func TestBinaryRoundTripQuick(t *testing.T) {
	f := func(file int16, off, tick, size int64, tm, du int64, op uint8) bool {
		ops := []Op{OpWriteAt, OpReadAt, OpWriteAtAll, OpReadAtAll, OpSetView}
		ev := Event{
			Rank: 5, File: int(file), Op: ops[int(op)%len(ops)],
			Offset: off, Tick: tick, Size: size,
			Time: units.Duration(tm), Duration: units.Duration(du),
		}
		got, err := decodeFile(t, encodeRank(t, 5, []Event{ev, ev}), 5)
		return err == nil && len(got) == 2 && got[0] == ev && got[1] == ev
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryEmptyRank(t *testing.T) {
	got, err := decodeFile(t, encodeRank(t, 0, nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("events %+v, want none", got)
	}
}

func TestBinaryWriterRejectsWrongRank(t *testing.T) {
	var buf bytes.Buffer
	bw, err := NewBinaryWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Write(Event{Rank: 3, Op: OpWriteAt}); err == nil {
		t.Fatal("wrong-rank event accepted")
	}
}

func TestBinaryCorruptInputs(t *testing.T) {
	good := encodeRank(t, 1, []Event{
		{Rank: 1, File: 0, Op: OpWriteAt, Offset: 100, Tick: 1, Size: 64},
		{Rank: 1, File: 0, Op: OpReadAt, Offset: 200, Tick: 2, Size: 64},
	})

	t.Run("bad magic", func(t *testing.T) {
		raw := append([]byte{}, good...)
		raw[0] = 'X'
		if _, err := decodeFile(t, raw, 1); err == nil || !strings.Contains(err.Error(), "bad magic") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		if _, err := decodeFile(t, good[:4], 1); err == nil {
			t.Fatal("truncated header accepted")
		}
	})
	t.Run("truncated mid-record", func(t *testing.T) {
		// Every proper prefix that cuts a record must error, never
		// silently return short data.
		for cut := len(binMagic) + 1; cut < len(good)-1; cut++ {
			if _, err := decodeFile(t, good[:cut], 1); err == nil {
				t.Fatalf("cut at %d accepted", cut)
			} else if !strings.Contains(err.Error(), "trace:") {
				t.Fatalf("cut at %d: unwrapped error %v", cut, err)
			}
		}
	})
	t.Run("trailing data", func(t *testing.T) {
		raw := append(append([]byte{}, good...), 0x7)
		if _, err := decodeFile(t, raw, 1); err == nil || !strings.Contains(err.Error(), "trailing data") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("varint overflow", func(t *testing.T) {
		raw := append([]byte{}, binMagic...)
		raw = binary.AppendUvarint(raw, 1)
		// 11 continuation bytes: overflows ReadUvarint.
		for i := 0; i < 11; i++ {
			raw = append(raw, 0xFF)
		}
		if _, err := decodeFile(t, raw, 1); err == nil {
			t.Fatal("overflowing varint accepted")
		}
	})
	t.Run("undefined op code", func(t *testing.T) {
		raw := append([]byte{}, binMagic...)
		raw = binary.AppendUvarint(raw, 1)
		raw = binary.AppendUvarint(raw, 9) // event code with empty dictionary
		if _, err := decodeFile(t, raw, 1); err == nil || !strings.Contains(err.Error(), "undefined op code") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("implausible op length", func(t *testing.T) {
		raw := append([]byte{}, binMagic...)
		raw = binary.AppendUvarint(raw, 1)
		raw = binary.AppendUvarint(raw, 1)           // op-define
		raw = binary.AppendUvarint(raw, maxOpLen+1) // absurd name length
		if _, err := decodeFile(t, raw, 1); err == nil || !strings.Contains(err.Error(), "op name length") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("header rank mismatch", func(t *testing.T) {
		if _, err := decodeFile(t, good, 2); err == nil || !strings.Contains(err.Error(), "does not match rank 2") {
			t.Fatalf("err = %v", err)
		}
	})
}

// adversarialSet exercises save/load with hostile values and an empty rank.
func adversarialSet() *Set {
	s := NewSet("adv", "test", 3)
	s.AddFile(FileMeta{ID: 0, Name: "/adv", AccessType: "shared", PointerSet: "explicit", Blocking: true})
	s.Record(Event{Rank: 0, File: 0, Op: OpWriteAt, Offset: -(1 << 50), Tick: 1, Size: 0,
		Time: 5 * units.Microsecond, Duration: units.Microsecond})
	s.Record(Event{Rank: 0, File: 0, Op: OpReadAt, Offset: 1 << 55, Tick: 2, Size: 1 << 45})
	// Rank 1 stays empty; rank 2 has one plain event.
	s.Record(Event{Rank: 2, File: 0, Op: OpWrite, Offset: 0, Tick: 1, Size: 7})
	return s
}

func TestSaveLoadAdversarialBothFormats(t *testing.T) {
	want := adversarialSet()
	for _, f := range []Format{FormatText, FormatBinary} {
		dir := filepath.Join(t.TempDir(), f.String())
		var err error
		if f == FormatBinary {
			err = want.SaveBinary(dir)
		} else {
			err = want.Save(dir)
		}
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		got, err := Load(dir)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for p := 0; p < want.NP; p++ {
			w := want.Events[p]
			g := got.Events[p]
			if len(w) != len(g) {
				t.Fatalf("%s rank %d: %d events, want %d", f, p, len(g), len(w))
			}
			for i := range w {
				if w[i] != g[i] {
					t.Fatalf("%s rank %d event %d: %+v != %+v", f, p, i, g[i], w[i])
				}
			}
		}
	}
}

func TestConvertDirRoundTrip(t *testing.T) {
	want := adversarialSet()
	text := filepath.Join(t.TempDir(), "text")
	if err := want.Save(text); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "bin")
	if err := ConvertDir(text, bin, FormatBinary); err != nil {
		t.Fatal(err)
	}
	back := filepath.Join(t.TempDir(), "back")
	if err := ConvertDir(bin, back, FormatText); err != nil {
		t.Fatal(err)
	}
	a, err := Load(text)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(back)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events, b.Events) || !reflect.DeepEqual(a.Files, b.Files) {
		t.Fatal("text -> binary -> text round trip diverged")
	}
}

func TestLoadRejectsRankMismatch(t *testing.T) {
	dir := t.TempDir()
	s := NewSet("x", "c", 1)
	s.Record(Event{Rank: 0, File: 0, Op: OpWriteAt, Tick: 1, Size: 10})
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Corrupt rank 0's file with a row claiming IdP 5.
	path := filepath.Join(dir, "trace.0.txt")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(raw), "0    0", "5    0", 1)
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(dir)
	if err == nil {
		t.Fatal("mismatched IdP accepted")
	}
	if !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "does not match rank 0") {
		t.Fatalf("err = %v", err)
	}
}

func TestScannerTooLongHasContext(t *testing.T) {
	long := strings.Repeat("x", maxLineLen+10)
	_, err := ParseText(strings.NewReader("IdP header\n" + long + "\n"))
	if err == nil {
		t.Fatal("overlong line accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 2") || !strings.Contains(msg, "exceeds") {
		t.Fatalf("err = %v", err)
	}
}
