package trace

import (
	"strings"
	"testing"

	"iophases/internal/units"
)

func summarySet() *Set {
	s := NewSet("app", "cfg", 2)
	s.AddFile(FileMeta{ID: 0, Name: "/a"})
	s.AddFile(FileMeta{ID: 1, Name: "/b"})
	for p := 0; p < 2; p++ {
		s.Record(Event{Rank: p, File: 0, Op: OpWriteAtAll, Size: 4 * units.MiB,
			Tick: 1, Duration: units.Second})
		s.Record(Event{Rank: p, File: 0, Op: OpReadAt, Size: 512,
			Tick: 2, Duration: units.Millisecond})
	}
	s.Record(Event{Rank: 0, File: 1, Op: OpIWriteAt, Size: 64 * units.KiB,
		Tick: 3, Duration: units.Millisecond})
	s.Record(Event{Rank: 0, File: 1, Op: OpOpen, Tick: 4}) // metadata: ignored
	return s
}

func TestSummarizeCounts(t *testing.T) {
	sum := Summarize(summarySet())
	if len(sum.Files) != 2 {
		t.Fatalf("files %d", len(sum.Files))
	}
	a := sum.Files[0]
	if a.Writes != 2 || a.Reads != 2 {
		t.Fatalf("ops %d/%d", a.Writes, a.Reads)
	}
	if a.BytesWritten != 8*units.MiB || a.BytesRead != 1024 {
		t.Fatalf("bytes %d/%d", a.BytesWritten, a.BytesRead)
	}
	if a.Collective != 2 || a.Independent != 2 {
		t.Fatalf("coll/indep %d/%d", a.Collective, a.Independent)
	}
	if a.WriteTime != 2*units.Second {
		t.Fatalf("write time %v", a.WriteTime)
	}
	if a.MinRS != 512 || a.MaxRS != 4*units.MiB {
		t.Fatalf("rs %d/%d", a.MinRS, a.MaxRS)
	}
	if a.RanksTouched != 2 {
		t.Fatalf("ranks %d", a.RanksTouched)
	}
	b := sum.Files[1]
	if b.Nonblocking != 1 || b.RanksTouched != 1 {
		t.Fatalf("file b %+v", b)
	}
}

func TestHistogramBuckets(t *testing.T) {
	if histBucket(512) != 0 {
		t.Fatal("512")
	}
	if histBucket(1024) != 1 {
		t.Fatal("1024")
	}
	if histBucket(2047) != 1 {
		t.Fatal("2047")
	}
	if histBucket(2048) != 2 {
		t.Fatal("2048")
	}
	if histBucket(4*units.GiB) != 12 {
		t.Fatal("4G must clamp to the top bucket")
	}
	if bucketLabel(0) != "<1K" || bucketLabel(12) != ">=2G" || bucketLabel(1) != "1KB" {
		t.Fatalf("labels %s %s %s", bucketLabel(0), bucketLabel(12), bucketLabel(1))
	}
}

func TestSummaryString(t *testing.T) {
	out := Summarize(summarySet()).String()
	for _, want := range []string{"POSIX_WRITES", "BYTES_WRITTEN", "/a", "/b",
		"NONBLOCKING_OPS", "size histogram:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
