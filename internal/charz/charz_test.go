package charz

import (
	"strings"
	"testing"

	"iophases/internal/cluster"
	"iophases/internal/units"
)

func smallOpts() Options {
	return Options{
		NPs:          []int{1, 4},
		RequestSizes: []int64{units.MiB, 8 * units.MiB},
		BlockSize:    16 * units.MiB,
		DeviceFile:   256 * units.MiB,
	}
}

func TestCharacterizeGridShape(t *testing.T) {
	rep := Characterize(cluster.ConfigA(), smallOpts())
	// 2 NPs × 2 RS × (3 base + unique + collective) minus np=1
	// collective rows = 2·2·5 − 2 = 18.
	if len(rep.Library) != 18 {
		t.Fatalf("library rows %d", len(rep.Library))
	}
	// 2 request sizes × 3 patterns at the device.
	if len(rep.Device) != 6 {
		t.Fatalf("device rows %d", len(rep.Device))
	}
	for _, row := range rep.Library {
		if row.WriteBW <= 0 || row.ReadBW <= 0 {
			t.Fatalf("empty row %+v", row)
		}
	}
	if rep.PeakWrite <= 0 || rep.PeakRead <= 0 {
		t.Fatal("no peaks")
	}
}

func TestLibraryBelowDevicePeakOnNFS(t *testing.T) {
	// The headline relation of §IV-A: the library-level best stays under
	// the device peak on the network-bound NFS configuration.
	rep := Characterize(cluster.ConfigA(), smallOpts())
	bw, br := rep.Best()
	if bw >= rep.PeakWrite || br >= rep.PeakRead {
		t.Fatalf("library best (%.0f/%.0f) should sit below device peak (%.0f/%.0f)",
			bw.MBpsValue(), br.MBpsValue(),
			rep.PeakWrite.MBpsValue(), rep.PeakRead.MBpsValue())
	}
}

func TestDefaultsFill(t *testing.T) {
	var o Options
	o.fill(cluster.ConfigC())
	if len(o.NPs) < 2 || o.BlockSize <= 0 || len(o.RequestSizes) == 0 {
		t.Fatalf("defaults %+v", o)
	}
}

func TestReportString(t *testing.T) {
	rep := Characterize(cluster.ConfigB(), Options{
		NPs:          []int{2},
		RequestSizes: []int64{4 * units.MiB},
		BlockSize:    8 * units.MiB,
		DeviceFile:   128 * units.MiB,
		SkipUnique:   true,
	})
	out := rep.String()
	for _, want := range []string{"BW_PK", "library-level best", "sequential", "strided", "random", "device level"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}
