// Package charz performs the exhaustive I/O-system characterization of
// the authors' prior work ("Methodology for performance evaluation of the
// input/output system on computer clusters", CLUSTER Workshops 2011 — the
// paper's reference [11] and its §III-B starting point): sweep the
// benchmark parameter grid of Tables III and IV over a configuration and
// assemble its performance map. The phase methodology exists to avoid
// re-running this full sweep for every application; charz provides the
// baseline it replaces.
package charz

import (
	"fmt"
	"strings"

	"iophases/internal/cluster"
	"iophases/internal/ior"
	"iophases/internal/iozone"
	"iophases/internal/simcache"
	"iophases/internal/sweep"
	"iophases/internal/units"
)

// Options select the sweep grid. Zero values take the defaults noted.
type Options struct {
	NPs          []int   // default: 1, np/4, np/2 of cluster capacity (≥1 each)
	RequestSizes []int64 // default: 256 KiB, 4 MiB, 32 MiB
	BlockSize    int64   // per-process block, default 64 MiB
	DeviceFile   int64   // IOzone file size, default 2 GiB (FZ rule applies)
	// IncludeUnique adds file-per-process rows; IncludeCollective adds
	// collective rows (shared file only). Both default on.
	SkipUnique     bool
	SkipCollective bool
}

// LibraryRow is one IOR measurement at the I/O library level.
type LibraryRow struct {
	NP         int
	RS         int64
	AccessMode string // "sequential" | "strided" | "random"
	AccessType string // "shared" | "unique"
	Collective bool
	WriteBW    units.Bandwidth
	ReadBW     units.Bandwidth
	WriteIOPS  float64
	ReadIOPS   float64
}

// Report is a configuration's performance map.
type Report struct {
	Config    string
	Library   []LibraryRow
	Device    []iozone.Result // per first I/O node, Table IV grid
	PeakWrite units.Bandwidth // Eq. 3–4
	PeakRead  units.Bandwidth
}

func (o *Options) fill(spec cluster.Spec) {
	if len(o.NPs) == 0 {
		max := spec.MaxProcs()
		o.NPs = []int{1}
		if n := max / 4; n > 1 {
			o.NPs = append(o.NPs, n)
		}
		if n := max / 2; n > 1 && n != max/4 {
			o.NPs = append(o.NPs, n)
		}
	}
	if len(o.RequestSizes) == 0 {
		o.RequestSizes = []int64{256 * units.KiB, 4 * units.MiB, 32 * units.MiB}
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 64 * units.MiB
	}
	if o.DeviceFile <= 0 {
		o.DeviceFile = 2 * units.GiB
	}
}

// Characterize sweeps the grids and assembles the report. Every benchmark
// run uses a fresh cluster.
func Characterize(spec cluster.Spec, opts Options) *Report {
	opts.fill(spec)
	rep := &Report{Config: spec.Name}

	type variant struct {
		mode       string
		interleave bool
		random     bool
		unique     bool
		collective bool
	}
	variants := []variant{
		{mode: "sequential"},
		{mode: "strided", interleave: true},
		{mode: "random", random: true},
	}
	if !opts.SkipUnique {
		variants = append(variants, variant{mode: "sequential", unique: true})
	}
	if !opts.SkipCollective {
		variants = append(variants, variant{mode: "sequential", collective: true})
	}

	// Enumerate the grid first, then fan the independent IOR runs out over
	// the sweep pool (each run builds a private cluster simulation).
	// Results come back in grid order, so the report is identical at any
	// concurrency; runs are memoized through the simcache.
	type cell struct {
		p  ior.Params
		at string
		v  variant
	}
	var grid []cell
	for _, np := range opts.NPs {
		for _, rs := range opts.RequestSizes {
			if opts.BlockSize%rs != 0 {
				continue
			}
			for _, v := range variants {
				if v.collective && np == 1 {
					continue
				}
				at := "shared"
				if v.unique {
					at = "unique"
				}
				grid = append(grid, cell{
					p: ior.Params{
						NP: np, BlockSize: opts.BlockSize, Transfer: rs,
						Segments: 1, DoWrite: true, DoRead: true, Fsync: true,
						Interleaved: v.interleave, RandomOrder: v.random,
						FilePerProc: v.unique, Collective: v.collective,
						ReorderRead: true, Seed: 1,
					},
					at: at, v: v,
				})
			}
		}
	}
	rep.Library = sweep.Map(grid, func(_ int, c cell) LibraryRow {
		res := simcache.RunIOR(spec, c.p)
		return LibraryRow{
			NP: c.p.NP, RS: c.p.Transfer, AccessMode: c.v.mode, AccessType: c.at,
			Collective: c.v.collective,
			WriteBW:    res.WriteBW, ReadBW: res.ReadBW,
			WriteIOPS: res.IOPSw, ReadIOPS: res.IOPSr,
		}
	})

	// Device level: Table IV grid on the first I/O node.
	c := cluster.Build(spec)
	rep.Device = iozone.Sweep(c.Eng, c.IODevice(0), opts.DeviceFile, opts.RequestSizes)
	rep.PeakWrite, rep.PeakRead = iozone.PeakOfConfig(spec, opts.DeviceFile, opts.RequestSizes[len(opts.RequestSizes)-1])
	return rep
}

// Best reports the library-level maxima by direction — what an application
// could at best extract through MPI-IO on this configuration.
func (r *Report) Best() (write, read units.Bandwidth) {
	for _, row := range r.Library {
		if row.WriteBW > write {
			write = row.WriteBW
		}
		if row.ReadBW > read {
			read = row.ReadBW
		}
	}
	return write, read
}

// String renders the report as aligned tables.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "I/O characterization of %s\n", r.Config)
	fmt.Fprintf(&b, "BW_PK (devices, Eq. 3-4): write %.0f MB/s, read %.0f MB/s\n",
		r.PeakWrite.MBpsValue(), r.PeakRead.MBpsValue())
	bw, br := r.Best()
	fmt.Fprintf(&b, "library-level best:       write %.0f MB/s, read %.0f MB/s\n\n",
		bw.MBpsValue(), br.MBpsValue())
	fmt.Fprintf(&b, "%-4s %-8s %-11s %-7s %-5s %10s %10s\n",
		"NP", "RS", "AM", "AT", "coll", "BW_w", "BW_r")
	for _, row := range r.Library {
		fmt.Fprintf(&b, "%-4d %-8s %-11s %-7s %-5v %10.1f %10.1f\n",
			row.NP, units.FormatBytes(row.RS), row.AccessMode, row.AccessType,
			row.Collective, row.WriteBW.MBpsValue(), row.ReadBW.MBpsValue())
	}
	fmt.Fprintf(&b, "\ndevice level (first I/O node):\n")
	fmt.Fprintf(&b, "%-8s %-11s %10s %10s\n", "RS", "pattern", "BW_w", "BW_r")
	for _, d := range r.Device {
		fmt.Fprintf(&b, "%-8s %-11s %10.1f %10.1f\n",
			units.FormatBytes(d.Params.RequestSize), string(d.Params.Pattern),
			d.WriteBW.MBpsValue(), d.ReadBW.MBpsValue())
	}
	return b.String()
}
