package report

import (
	"strings"
	"testing"
	"time"
)

func TestLatenciesNearestRank(t *testing.T) {
	// 100 samples: 1ms..100ms. Nearest-rank percentiles are exact sample
	// values.
	var samples []time.Duration
	for i := 1; i <= 100; i++ {
		samples = append(samples, time.Duration(i)*time.Millisecond)
	}
	s := Latencies(samples, time.Second)
	if s.N != 100 || s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("stats %+v", s)
	}
	if s.P50 != 50*time.Millisecond || s.P95 != 95*time.Millisecond || s.P99 != 99*time.Millisecond {
		t.Fatalf("percentiles p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}
	if s.ThroughputRPS != 100 {
		t.Fatalf("throughput %v", s.ThroughputRPS)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Fatalf("mean %v", s.Mean)
	}
}

func TestLatenciesSmallSamples(t *testing.T) {
	s := Latencies([]time.Duration{5 * time.Millisecond}, 0)
	if s.P50 != 5*time.Millisecond || s.P99 != 5*time.Millisecond || s.ThroughputRPS != 0 {
		t.Fatalf("stats %+v", s)
	}
	if z := Latencies(nil, time.Second); z.N != 0 || z.P99 != 0 {
		t.Fatalf("zero stats %+v", z)
	}
}

func TestLatenciesDoesNotMutateInput(t *testing.T) {
	samples := []time.Duration{3, 1, 2}
	Latencies(samples, time.Second)
	if samples[0] != 3 || samples[1] != 1 || samples[2] != 2 {
		t.Fatalf("input mutated: %v", samples)
	}
}

func TestLatencyStatsString(t *testing.T) {
	s := Latencies([]time.Duration{
		500 * time.Microsecond, 800 * time.Microsecond, 20 * time.Millisecond,
	}, time.Second)
	out := s.String()
	for _, want := range []string{"p99", "20.0ms", "800µs", "3", "req/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
