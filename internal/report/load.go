// load.go summarizes load-test latencies — the reporting half of
// cmd/iodload. The math lives here (not in the command) so the percentile
// definition is tested and shared with any future harness.
package report

import (
	"fmt"
	"sort"
	"time"
)

// LatencyStats are order statistics over one load run's request latencies.
type LatencyStats struct {
	N             int
	Min, Max      time.Duration
	P50, P95, P99 time.Duration
	Mean          time.Duration
	Wall          time.Duration // whole-run wall-clock
	ThroughputRPS float64       // N / Wall
}

// Latencies computes order statistics over samples. Percentiles use the
// nearest-rank definition (ceil(q·N), 1-indexed) on a sorted copy — P99 of
// 100 samples is the 99th smallest, never an interpolated value that no
// request actually experienced. Zero samples yield a zero struct.
func Latencies(samples []time.Duration, wall time.Duration) LatencyStats {
	s := LatencyStats{N: len(samples), Wall: wall}
	if len(samples) == 0 {
		return s
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(q float64) time.Duration {
		// nearest-rank: smallest index i with i/N >= q
		i := int(float64(len(sorted)) * q)
		if float64(i) < float64(len(sorted))*q {
			i++
		}
		if i < 1 {
			i = 1
		}
		if i > len(sorted) {
			i = len(sorted)
		}
		return sorted[i-1]
	}
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.P50 = rank(0.50)
	s.P95 = rank(0.95)
	s.P99 = rank(0.99)
	s.Mean = sum / time.Duration(len(sorted))
	if wall > 0 {
		s.ThroughputRPS = float64(len(sorted)) / wall.Seconds()
	}
	return s
}

// String renders the stats as one aligned table.
func (s LatencyStats) String() string {
	return Table("", []string{"requests", "throughput", "mean", "p50", "p95", "p99", "max"}, [][]string{{
		fmt.Sprint(s.N),
		fmt.Sprintf("%.0f req/s", s.ThroughputRPS),
		fmtLatency(s.Mean),
		fmtLatency(s.P50),
		fmtLatency(s.P95),
		fmtLatency(s.P99),
		fmtLatency(s.Max),
	}})
}

// fmtLatency renders a duration at load-test granularity: microseconds
// under 10ms, otherwise milliseconds.
func fmtLatency(d time.Duration) string {
	if d < 10*time.Millisecond {
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}
