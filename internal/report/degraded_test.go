package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iophases/internal/core"
	"iophases/internal/predict"
	"iophases/internal/trace"
	"iophases/internal/units"
)

func TestDegradedRendersDeltaTable(t *testing.T) {
	pm := &core.PhaseModel{ID: 1, Ops: []core.OpModel{{Op: trace.OpWriteAt}}}
	c := &predict.DegradedComparison{
		App: "madbench2", Config: "configA", Scenario: "slow-disk",
		Phases: []predict.PhaseDelta{{
			Phase:         pm,
			Healthy:       predict.PhaseEstimate{Phase: pm, TimeCH: 2 * units.Second},
			Degraded:      predict.PhaseEstimate{Phase: pm, TimeCH: 6 * units.Second},
			HealthyUsage:  40,
			DegradedUsage: 80,
		}},
		HealthyTotal:  2 * units.Second,
		DegradedTotal: 6 * units.Second,
		HealthyPeakW:  units.MBps(300),
		DegradedPeakW: units.MBps(100),
	}
	out := Degraded(c)
	for _, want := range []string{
		"slow-disk", "configA", "3.00x", "T_healthy", "T_degraded",
		"2.000", "6.000", "40%", "80%", "BW_PK healthy",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// The -metrics/-timeline file-write failures must surface as returned
// errors (CLIs exit non-zero), never silently vanish.
func TestSaveTelemetryReportsWriteFailures(t *testing.T) {
	dir := t.TempDir()
	ok := filepath.Join(dir, "m.json")
	if err := SaveTelemetry(ok, ""); err != nil {
		t.Fatalf("writable path failed: %v", err)
	}
	if _, err := os.Stat(ok); err != nil {
		t.Fatal("metrics file not written")
	}

	bad := filepath.Join(dir, "missing", "m.json")
	if err := SaveTelemetry(bad, ""); err == nil {
		t.Fatal("unwritable metrics path reported no error")
	}
	if err := SaveTelemetry("", filepath.Join(dir, "missing", "t.json")); err == nil {
		t.Fatal("unwritable timeline path reported no error")
	}
	// Both failing: both reported.
	err := SaveTelemetry(bad, filepath.Join(dir, "missing", "t.json"))
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("joined error %v", err)
	}
	// Empty paths are a no-op.
	if err := SaveTelemetry("", ""); err != nil {
		t.Fatalf("no-op save errored: %v", err)
	}
}
