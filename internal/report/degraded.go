package report

import (
	"fmt"

	"iophases/internal/predict"
)

// Degraded renders a healthy-vs-degraded comparison as the delta table
// the fault analysis produces: per phase, Time_io and SystemUsage in each
// state, plus the slowdown factor, followed by the Eq. 1 totals.
func Degraded(c *predict.DegradedComparison) string {
	var rows [][]string
	for _, pd := range c.Phases {
		slow := "-"
		if pd.Healthy.TimeCH > 0 {
			slow = fmt.Sprintf("%.2fx", float64(pd.Degraded.TimeCH)/float64(pd.Healthy.TimeCH))
		}
		rows = append(rows, []string{
			fmt.Sprint(pd.Phase.ID),
			string(pd.Phase.Direction()),
			fmt.Sprintf("%.3f", pd.Healthy.TimeCH.Seconds()),
			fmt.Sprintf("%.3f", pd.Degraded.TimeCH.Seconds()),
			slow,
			fmt.Sprintf("%.0f%%", pd.HealthyUsage),
			fmt.Sprintf("%.0f%%", pd.DegradedUsage),
		})
	}
	rows = append(rows, []string{
		"Total", "",
		fmt.Sprintf("%.3f", c.HealthyTotal.Seconds()),
		fmt.Sprintf("%.3f", c.DegradedTotal.Seconds()),
		fmt.Sprintf("%.2fx", c.Slowdown()),
		"", "",
	})
	title := fmt.Sprintf("%s on %s under %q: healthy vs degraded (Time_io in s)",
		c.App, c.Config, c.Scenario)
	out := Table(title,
		[]string{"Phase", "Dir", "T_healthy", "T_degraded", "slowdown", "Use_h", "Use_d"}, rows)
	out += fmt.Sprintf("BW_PK healthy W/R: %.0f/%.0f MB/s; degraded W/R: %.0f/%.0f MB/s\n",
		c.HealthyPeakW.MBpsValue(), c.HealthyPeakR.MBpsValue(),
		c.DegradedPeakW.MBpsValue(), c.DegradedPeakR.MBpsValue())
	return out
}
