// Package report renders experiment results as aligned text tables and
// ASCII figures — the terminal equivalents of the paper's tables and of
// Figures 5–10 (global access patterns and device-activity time series).
package report

import (
	"fmt"
	"strings"
)

// Table renders rows under headers with aligned columns, in the visual
// style of the paper's tables.
func Table(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(headers)
	total := len(headers)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range rows {
		line(row)
	}
	return b.String()
}

// Series is one named sequence of (x, y) points for plotting.
type Series struct {
	Name   string
	X      []float64
	Y      []float64
	Marker byte
}

// TimeSeries renders series as a height×width ASCII chart with a shared
// y-axis — Figure 8's sectors-per-second panels.
func TimeSeries(title, xlabel, ylabel string, width, height int, series []Series) string {
	if width < 16 || height < 4 {
		panic("report: chart too small")
	}
	var xmin, xmax, ymax float64
	first := true
	for _, s := range series {
		for i := range s.X {
			if first {
				xmin, xmax = s.X[i], s.X[i]
				first = false
			}
			if s.X[i] < xmin {
				xmin = s.X[i]
			}
			if s.X[i] > xmax {
				xmax = s.X[i]
			}
			if s.Y[i] > ymax {
				ymax = s.Y[i]
			}
		}
	}
	if first || xmax == xmin {
		return title + " (no data)\n"
	}
	if ymax == 0 {
		ymax = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		for i := range s.X {
			col := int(float64(width-1) * (s.X[i] - xmin) / (xmax - xmin))
			row := height - 1 - int(float64(height-1)*s.Y[i]/ymax)
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = marker
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%s (max %.4g)\n", ylabel, ymax)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, " %-10.4g%*s\n", xmin, width-10, fmt.Sprintf("%.4g %s", xmax, xlabel))
	var legend []string
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		legend = append(legend, fmt.Sprintf("%c=%s", marker, s.Name))
	}
	fmt.Fprintf(&b, " legend: %s\n", strings.Join(legend, "  "))
	return b.String()
}

// ScatterPoint is one access in the tick × offset plane (one dot of the
// paper's Figure 5/7 global-access-pattern plots).
type ScatterPoint struct {
	X      float64 // tick
	Y      float64 // file offset
	Marker byte    // 'W' or 'R'
}

// Scatter renders the global access pattern: logical time on x, file
// offset on y, direction as the mark.
func Scatter(title string, width, height int, points []ScatterPoint) string {
	if len(points) == 0 {
		return title + " (no accesses)\n"
	}
	xmin, xmax := points[0].X, points[0].X
	ymin, ymax := points[0].Y, points[0].Y
	for _, p := range points {
		if p.X < xmin {
			xmin = p.X
		}
		if p.X > xmax {
			xmax = p.X
		}
		if p.Y < ymin {
			ymin = p.Y
		}
		if p.Y > ymax {
			ymax = p.Y
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range points {
		col := int(float64(width-1) * (p.X - xmin) / (xmax - xmin))
		row := height - 1 - int(float64(height-1)*(p.Y-ymin)/(ymax-ymin))
		grid[row][col] = p.Marker
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "file offset (max %.4g bytes)\n", ymax)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, " tick %.4g .. %.4g   (W=write R=read)\n", xmin, xmax)
	return b.String()
}
