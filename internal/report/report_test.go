package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := Table("Title", []string{"Phase", "Weight"}, [][]string{
		{"1", "4GB"},
		{"41", "1GB"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "Title" {
		t.Fatalf("title %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Phase") || !strings.Contains(lines[1], "Weight") {
		t.Fatalf("header %q", lines[1])
	}
	// Columns align: "Weight" starts at the same index in every row.
	idx := strings.Index(lines[1], "Weight")
	if !strings.HasPrefix(lines[3][idx:], "4GB") || !strings.HasPrefix(lines[4][idx:], "1GB") {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestTableWideCells(t *testing.T) {
	out := Table("", []string{"A"}, [][]string{{"very-long-cell-content"}})
	if !strings.Contains(out, "very-long-cell-content") {
		t.Fatalf("content lost:\n%s", out)
	}
}

func TestTimeSeriesRendersMarkers(t *testing.T) {
	out := TimeSeries("disk", "s", "MB/s", 40, 8, []Series{
		{Name: "write", Marker: 'w', X: []float64{0, 1, 2, 3}, Y: []float64{0, 50, 100, 50}},
		{Name: "read", Marker: 'r', X: []float64{0, 1, 2, 3}, Y: []float64{100, 50, 0, 25}},
	})
	if !strings.Contains(out, "w") || !strings.Contains(out, "r") {
		t.Fatalf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "legend: w=write  r=read") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "max 100") {
		t.Fatalf("y scale missing:\n%s", out)
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	out := TimeSeries("t", "x", "y", 40, 8, nil)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty case: %q", out)
	}
}

func TestScatterPlacesExtremes(t *testing.T) {
	out := Scatter("pattern", 20, 6, []ScatterPoint{
		{X: 0, Y: 0, Marker: 'W'},
		{X: 10, Y: 100, Marker: 'R'},
	})
	lines := strings.Split(out, "\n")
	// The W (min x, min y) lands bottom-left; the R (max x, max y)
	// top-right.
	var topRow, bottomRow string
	for _, l := range lines {
		if strings.HasPrefix(l, "|") {
			if topRow == "" {
				topRow = l
			}
			bottomRow = l
		}
	}
	// bottomRow here is the axis line; walk back for the last grid row.
	gridRows := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "|") {
			gridRows++
		}
	}
	if gridRows != 6 {
		t.Fatalf("grid rows %d:\n%s", gridRows, out)
	}
	if !strings.Contains(topRow, "R") {
		t.Fatalf("top row misses R: %q", topRow)
	}
	_ = bottomRow
	if !strings.Contains(out, "W") {
		t.Fatalf("W missing:\n%s", out)
	}
}

func TestScatterEmpty(t *testing.T) {
	if out := Scatter("p", 10, 4, nil); !strings.Contains(out, "no accesses") {
		t.Fatalf("empty case %q", out)
	}
}
