package report

import (
	"strings"
	"testing"

	"iophases/internal/obs"
)

func TestTableAlignment(t *testing.T) {
	out := Table("Title", []string{"Phase", "Weight"}, [][]string{
		{"1", "4GB"},
		{"41", "1GB"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "Title" {
		t.Fatalf("title %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Phase") || !strings.Contains(lines[1], "Weight") {
		t.Fatalf("header %q", lines[1])
	}
	// Columns align: "Weight" starts at the same index in every row.
	idx := strings.Index(lines[1], "Weight")
	if !strings.HasPrefix(lines[3][idx:], "4GB") || !strings.HasPrefix(lines[4][idx:], "1GB") {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestTableWideCells(t *testing.T) {
	out := Table("", []string{"A"}, [][]string{{"very-long-cell-content"}})
	if !strings.Contains(out, "very-long-cell-content") {
		t.Fatalf("content lost:\n%s", out)
	}
}

func TestTimeSeriesRendersMarkers(t *testing.T) {
	out := TimeSeries("disk", "s", "MB/s", 40, 8, []Series{
		{Name: "write", Marker: 'w', X: []float64{0, 1, 2, 3}, Y: []float64{0, 50, 100, 50}},
		{Name: "read", Marker: 'r', X: []float64{0, 1, 2, 3}, Y: []float64{100, 50, 0, 25}},
	})
	if !strings.Contains(out, "w") || !strings.Contains(out, "r") {
		t.Fatalf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "legend: w=write  r=read") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "max 100") {
		t.Fatalf("y scale missing:\n%s", out)
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	out := TimeSeries("t", "x", "y", 40, 8, nil)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty case: %q", out)
	}
}

func TestScatterPlacesExtremes(t *testing.T) {
	out := Scatter("pattern", 20, 6, []ScatterPoint{
		{X: 0, Y: 0, Marker: 'W'},
		{X: 10, Y: 100, Marker: 'R'},
	})
	lines := strings.Split(out, "\n")
	// The W (min x, min y) lands bottom-left; the R (max x, max y)
	// top-right.
	var topRow, bottomRow string
	for _, l := range lines {
		if strings.HasPrefix(l, "|") {
			if topRow == "" {
				topRow = l
			}
			bottomRow = l
		}
	}
	// bottomRow here is the axis line; walk back for the last grid row.
	gridRows := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "|") {
			gridRows++
		}
	}
	if gridRows != 6 {
		t.Fatalf("grid rows %d:\n%s", gridRows, out)
	}
	if !strings.Contains(topRow, "R") {
		t.Fatalf("top row misses R: %q", topRow)
	}
	_ = bottomRow
	if !strings.Contains(out, "W") {
		t.Fatalf("W missing:\n%s", out)
	}
}

func TestScatterEmpty(t *testing.T) {
	if out := Scatter("p", 10, 4, nil); !strings.Contains(out, "no accesses") {
		t.Fatalf("empty case %q", out)
	}
}

// TestTelemetryTable pins the run-telemetry renderer: usage derives from a
// direction-matched registered peak, relative error from the Eq. 6–7 pair,
// and unknown configurations degrade to "-" instead of forcing a peak run.
func TestTelemetryTable(t *testing.T) {
	rows := []obs.PhaseRecord{
		{App: "bt", Config: "A", Source: "measured", Phase: 1, NP: 16,
			RS: 1 << 20, Weight: 1 << 30, Dir: "W", BWMDMBps: 50, TimeMDSec: 20},
		{App: "bt", Config: "A", Source: "estimate", Phase: 1, NP: 16,
			RS: 1 << 20, Weight: 1 << 30, Dir: "W", BWCHMBps: 40,
			TimeCHSec: 25, TimeMDSec: 20},
		{App: "bt", Config: "NOPEAK", Source: "measured", Phase: 2, NP: 16,
			RS: 4096, Weight: 1 << 20, Dir: "R", BWMDMBps: 10, TimeMDSec: 1},
	}
	peakOf := func(config string) (float64, float64, bool) {
		if config == "A" {
			return 100, 80, true
		}
		return 0, 0, false
	}
	got := Telemetry(rows, peakOf)
	for _, want := range []string{
		"BW_CH", "Usage%", "RelErr%",
		"50.0", // measured usage: 50 / 100 write peak
		"40.0", // estimate usage projected from BW_CH
		"25.0", // |25-20|/20 = 25% relative error
	} {
		if !strings.Contains(got, want) {
			t.Errorf("telemetry table missing %q:\n%s", want, got)
		}
	}
	// The NOPEAK row must render with "-" usage, not invent a number.
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "NOPEAK") && !strings.Contains(line, "-") {
			t.Errorf("NOPEAK row lacks '-' usage: %q", line)
		}
	}
	if !strings.Contains(Telemetry(nil, peakOf), "no phase records") {
		t.Error("empty telemetry should say so")
	}
}
