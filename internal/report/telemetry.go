// Telemetry renders the run-telemetry phase log (obs.RecordPhase rows) as
// one aligned table: per phase and pipeline stage, the measured and
// characterized bandwidths, times, the system usage of Eq. 5 against the
// configuration's registered device peak, and the relative estimation
// error of Eq. 6–7 where both sides exist. It is the -metrics dump's
// human-readable summary — the same numbers the paper's Tables IX–XIV are
// assembled from, collected as a side effect of whatever the run already
// did.
package report

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"iophases/internal/obs"
	"iophases/internal/units"
)

// Telemetry renders phase telemetry rows. peakOf resolves a
// configuration's registered device peak (MB/s write, read); pass
// obs.PeakFor. Configurations without a registered peak print "-" in the
// Usage column rather than forcing an IOzone run.
func Telemetry(rows []obs.PhaseRecord, peakOf func(config string) (writeMBps, readMBps float64, ok bool)) string {
	if len(rows) == 0 {
		return "telemetry: no phase records\n"
	}
	headers := []string{"App", "Config", "Source", "Phase", "np", "rs", "weight", "Dir",
		"BW_MD", "BW_CH", "T_MD(s)", "T_CH(s)", "Usage%", "RelErr%"}
	var cells [][]string
	for _, r := range rows {
		bw := func(v float64) string {
			if v == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2f", v)
		}
		sec := func(v float64) string {
			if v == 0 {
				return "-"
			}
			return fmt.Sprintf("%.4f", v)
		}
		usage := "-"
		if w, rd, ok := peakOf(r.Config); ok {
			if pk := peakForDir(r.Dir, w, rd); pk > 0 {
				// Eq. 5 proper uses the measured bandwidth; estimate
				// rows project usage from BW_CH instead.
				if v := r.BWMDMBps; v > 0 {
					usage = fmt.Sprintf("%.1f", v/pk*100)
				} else if v := r.BWCHMBps; v > 0 {
					usage = fmt.Sprintf("%.1f", v/pk*100)
				}
			}
		}
		relErr := "-"
		if r.TimeMDSec > 0 && r.TimeCHSec > 0 {
			relErr = fmt.Sprintf("%.1f", abs(r.TimeCHSec-r.TimeMDSec)/r.TimeMDSec*100)
		}
		cells = append(cells, []string{
			r.App, r.Config, r.Source,
			fmt.Sprintf("%d", r.Phase),
			fmt.Sprintf("%d", r.NP),
			units.FormatBytes(r.RS),
			units.FormatBytes(r.Weight),
			r.Dir,
			bw(r.BWMDMBps), bw(r.BWCHMBps),
			sec(r.TimeMDSec), sec(r.TimeCHSec),
			usage, relErr,
		})
	}
	return Table("Telemetry: per-phase bandwidth, usage (Eq. 5) and relative error (Eq. 6-7)",
		headers, cells)
}

// peakForDir picks the direction-matched device peak: write peak for W
// phases, read peak for R, and their mean for mixed phases (the same
// averaging the characterization itself applies to W-R).
func peakForDir(dir string, writeMBps, readMBps float64) float64 {
	switch dir {
	case "W":
		return writeMBps
	case "R":
		return readMBps
	default:
		return (writeMBps + readMBps) / 2
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// WriteMetricsJSON dumps the default registry snapshot plus the phase
// telemetry rows as one JSON document — the machine-readable form of the
// -metrics flag.
func WriteMetricsJSON(w io.Writer) error {
	payload := struct {
		Metrics obs.Snapshot      `json:"metrics"`
		Phases  []obs.PhaseRecord `json:"phases"`
	}{obs.Default().Snapshot(), obs.Phases()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload)
}

// WriteMetricsText dumps the registry human-readably followed by the
// Telemetry phase table — the text form of the -metrics flag.
func WriteMetricsText(w io.Writer) error {
	if err := obs.Default().WriteText(w); err != nil {
		return err
	}
	_, err := io.WriteString(w, Telemetry(obs.Phases(), obs.PeakFor))
	return err
}

// SaveTelemetry writes the -metrics and/or -timeline output files for a
// CLI run. A ".json" metrics extension selects the JSON dump, anything
// else the text rendering; the timeline is always Chrome trace_event JSON.
// Empty paths are skipped. Nothing here touches stdout, preserving the
// CLIs' byte-identical-output invariant.
func SaveTelemetry(metricsPath, timelinePath string) error {
	var errs []error
	write := func(path string, fn func(io.Writer) error) {
		f, err := os.Create(path)
		if err != nil {
			errs = append(errs, err)
			return
		}
		if err := fn(f); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", path, err))
		}
		if err := f.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	if metricsPath != "" {
		if strings.HasSuffix(metricsPath, ".json") {
			write(metricsPath, WriteMetricsJSON)
		} else {
			write(metricsPath, WriteMetricsText)
		}
	}
	if timelinePath != "" {
		write(timelinePath, obs.Timeline().WriteJSON)
	}
	return errors.Join(errs...)
}
