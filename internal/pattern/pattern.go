// Package pattern extracts local access patterns (LAP) from per-rank
// traces — the compression step of Figure 3 in the paper. A LAP is a run of
// repetitions of a small periodic unit of I/O operations with constant
// offset progression: "40 writes of 10612080 bytes advancing 265302 etypes
// each" becomes one row instead of forty.
//
// The miner generalizes plain run-length encoding to composite periodic
// units (period up to MaxPeriod ops), which is what collapses MADBench2's
// interleaved (write bin i, read bin i+2) steady state into a single LAP —
// the paper's phase 3.
package pattern

import (
	"fmt"
	"strconv"
	"strings"

	"iophases/internal/trace"
)

// MaxPeriod is the largest composite unit the miner searches for. The
// paper's workloads need 2 (write-read interleave); 4 leaves headroom for
// double-buffered patterns without inviting spurious matches.
const MaxPeriod = 4

// Template is one slot of a LAP unit: the invariant part of an operation
// across repetitions plus its per-repetition offset progression.
type Template struct {
	File       int
	Op         trace.Op
	Size       int64 // request size in bytes
	InitOffset int64 // offset of the first repetition (etype units)
	Disp       int64 // offset advance per repetition (etype units)
}

// Signature identifies templates that are "similar" across ranks (simLAP in
// Table I): everything except InitOffset.
func (t Template) Signature() string {
	return string(t.appendSignature(nil))
}

// appendSignature appends the template's signature (the fmt layout
// "f%d/%s/%d/%d" of File, Op, Size, Disp) without fmt's reflection cost —
// signature building runs once per LAP slot on every Identify call.
func (t Template) appendSignature(b []byte) []byte {
	b = append(b, 'f')
	b = strconv.AppendInt(b, int64(t.File), 10)
	b = append(b, '/')
	b = append(b, t.Op...)
	b = append(b, '/')
	b = strconv.AppendInt(b, t.Size, 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, t.Disp, 10)
	return b
}

// LAP is one local access pattern: Rep repetitions of Unit, referencing the
// half-open event range [Start, Start+Rep*len(Unit)) of the rank's data
// events.
type LAP struct {
	Rank  int
	Start int // index into the rank's data-event slice
	Unit  []Template
	Rep   int
}

// Len reports the number of events the LAP covers.
func (l LAP) Len() int { return l.Rep * len(l.Unit) }

// Signature identifies LAPs that are similar across ranks.
func (l LAP) Signature() string {
	b := make([]byte, 0, 64)
	for _, t := range l.Unit {
		b = t.appendSignature(b)
		b = append(b, '|')
	}
	b = append(b, 'x')
	b = strconv.AppendInt(b, int64(l.Rep), 10)
	return string(b)
}

// Bytes reports the total data volume of the LAP.
func (l LAP) Bytes() int64 {
	var unit int64
	for _, t := range l.Unit {
		unit += t.Size
	}
	return unit * int64(l.Rep)
}

// Event returns the traced event of (rep, slot) given the rank's data
// events.
func (l LAP) Event(events []trace.Event, rep, slot int) trace.Event {
	return events[l.Start+rep*len(l.Unit)+slot]
}

// ContiguousTicks reports whether the run's events occupy consecutive
// ticks, i.e. no other MPI events were interleaved. This is the paper's
// criterion for keeping repetitions inside one phase ("there are not other
// MPI events between the reading operations") versus splitting them.
func (l LAP) ContiguousTicks(events []trace.Event) bool {
	n := l.Len()
	if n <= 1 {
		return true
	}
	first := events[l.Start].Tick
	last := events[l.Start+n-1].Tick
	return last-first == int64(n-1)
}

// RepTick reports the tick of repetition rep's first slot.
func (l LAP) RepTick(events []trace.Event, rep int) int64 {
	return l.Event(events, rep, 0).Tick
}

// Extract mines rank p's data events into LAPs, greedily left to right: at
// each position it chooses the period k <= MaxPeriod maximizing covered
// events (ties to the smallest k), requiring every slot to repeat with
// identical (file, op, size) and a constant per-repetition offset delta.
func Extract(rank int, events []trace.Event) []LAP {
	var out []LAP
	for i := 0; i < len(events); {
		bestK, bestRep := 1, 1
		maxK := MaxPeriod
		if rem := len(events) - i; maxK > rem {
			maxK = rem
		}
		for k := 1; k <= maxK; k++ {
			rep := countReps(events, i, k)
			if k > 1 && rep < 2 {
				// A composite unit that never repeats is not a
				// pattern — without this guard any k would
				// trivially "cover" k events.
				continue
			}
			if rep*k > bestRep*bestK {
				bestK, bestRep = k, rep
			}
		}
		out = append(out, buildLAP(rank, events, i, bestK, bestRep))
		i += bestK * bestRep
	}
	return out
}

// countReps counts consecutive repetitions of the k-unit starting at i.
func countReps(events []trace.Event, i, k int) int {
	rep := 1
	// Offset deltas are fixed by the first two repetitions, then must
	// hold exactly for all subsequent ones. k never exceeds MaxPeriod,
	// so the deltas live in a stack array — countReps runs once per
	// (position, period) candidate and must not allocate.
	var disp [MaxPeriod]int64
	for {
		base := i + rep*k
		if base+k > len(events) {
			return rep
		}
		ok := true
		for m := 0; m < k && ok; m++ {
			a, b := events[i+(rep-1)*k+m], events[base+m]
			if a.File != b.File || a.Op != b.Op || a.Size != b.Size {
				ok = false
				break
			}
			d := b.Offset - a.Offset
			if rep == 1 {
				disp[m] = d
			} else if d != disp[m] {
				ok = false
			}
		}
		if !ok {
			return rep
		}
		rep++
	}
}

// buildLAP assembles the LAP record for a confirmed run.
func buildLAP(rank int, events []trace.Event, i, k, rep int) LAP {
	unit := make([]Template, k)
	for m := 0; m < k; m++ {
		ev := events[i+m]
		var disp int64
		if rep > 1 {
			disp = events[i+k+m].Offset - ev.Offset
		}
		unit[m] = Template{
			File:       ev.File,
			Op:         ev.Op,
			Size:       ev.Size,
			InitOffset: ev.Offset,
			Disp:       disp,
		}
	}
	return LAP{Rank: rank, Start: i, Unit: unit, Rep: rep}
}

// Expand reconstructs the event skeleton (file, op, size, offset) a LAP
// stands for, in order. It is the inverse used by the round-trip property
// tests: Expand(Extract(events)) must reproduce events' data fields
// exactly.
func Expand(laps []LAP) []Template {
	var out []Template
	for _, l := range laps {
		for r := 0; r < l.Rep; r++ {
			for _, t := range l.Unit {
				out = append(out, Template{
					File:       t.File,
					Op:         t.Op,
					Size:       t.Size,
					InitOffset: t.InitOffset + int64(r)*t.Disp,
				})
			}
		}
	}
	return out
}

// FormatTable renders LAPs in the column layout of Figure 3.
func FormatTable(laps []LAP) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-4s %-26s %-5s %-12s %-12s %s\n",
		"IdP", "IdF", "MPI-Operation", "Rep", "RequestSize", "Disp", "OffsetInit")
	for _, l := range laps {
		for _, t := range l.Unit {
			fmt.Fprintf(&b, "%-4d %-4d %-26s %-5d %-12d %-12d %d\n",
				l.Rank, t.File, t.Op, l.Rep, t.Size, t.Disp, t.InitOffset)
		}
	}
	return b.String()
}
