package pattern

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"iophases/internal/trace"
	"iophases/internal/units"
)

// randEvents generates an adversarial event stream: mixed ops and sizes,
// offsets that advance, repeat, and jump (so positions die at varied
// points), interleaved non-data events the miner must skip, and running
// ticks/times/durations for the aggregate checks.
func randEvents(rng *rand.Rand, count int) []trace.Event {
	var events []trace.Event
	off := int64(0)
	var tm units.Duration
	for i := 0; i < count; i++ {
		if rng.Intn(12) == 0 {
			events = append(events, trace.Event{Rank: 0, File: 1, Op: trace.OpSetView, Tick: int64(i + 1)})
			continue
		}
		op := trace.OpWrite
		if rng.Intn(2) == 1 {
			op = trace.OpRead
		}
		size := int64(rng.Intn(4)+1) * 1024
		d := units.Duration(rng.Intn(5000) + 1)
		events = append(events, trace.Event{
			Rank: 0, File: 1, Op: op, Offset: off, Size: size,
			Tick: int64(i + 1), Time: tm, Duration: d,
		})
		tm += d + units.Duration(rng.Intn(100))
		switch rng.Intn(3) {
		case 0:
			off += size
		case 1: // repeat
		case 2:
			off = int64(rng.Intn(1 << 20))
		}
	}
	return events
}

// feedChunked pushes events through a Miner in random-size chunks.
func feedChunked(rng *rand.Rand, events []trace.Event) *Miner {
	m := NewMiner(0)
	for len(events) > 0 {
		n := rng.Intn(7) + 1
		if n > len(events) {
			n = len(events)
		}
		m.Feed(events[:n])
		events = events[n:]
	}
	return m
}

// dataOnly is the in-memory pipeline's Set.DataEvents filter.
func dataOnly(events []trace.Event) []trace.Event {
	var out []trace.Event
	for _, ev := range events {
		if ev.Op.IsData() {
			out = append(out, ev)
		}
	}
	return out
}

// TestMinerMatchesExtract pins the tentpole equivalence: a Miner fed any
// chunking of a stream yields exactly Extract's LAPs, and its aggregates
// equal the values computed from the materialized events.
func TestMinerMatchesExtract(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		events := randEvents(rng, int(n%500)+1)
		data := dataOnly(events)
		want := Extract(0, data)

		got := feedChunked(rng, events).Finish()
		if len(got) != len(want) {
			t.Logf("seed %d: %d laps, want %d", seed, len(got), len(want))
			return false
		}
		for i := range got {
			if !reflect.DeepEqual(got[i].LAP, want[i]) {
				t.Logf("seed %d lap %d:\ngot  %+v\nwant %+v", seed, i, got[i].LAP, want[i])
				return false
			}
			l := want[i]
			first := l.Event(data, 0, 0)
			last := l.Event(data, l.Rep-1, len(l.Unit)-1)
			var elapsed units.Duration
			for r := 0; r < l.Rep; r++ {
				for s := range l.Unit {
					elapsed += l.Event(data, r, s).Duration
				}
			}
			g := got[i]
			if g.FirstTick != first.Tick || g.LastTick != last.Tick ||
				g.FirstStart != first.Time || g.Elapsed != elapsed {
				t.Logf("seed %d lap %d aggregates: got {%d %d %d %d} want {%d %d %d %d}",
					seed, i, g.FirstTick, g.LastTick, g.FirstStart, g.Elapsed,
					first.Tick, last.Tick, first.Time, elapsed)
				return false
			}
			if g.Contiguous() != l.ContiguousTicks(data) {
				t.Logf("seed %d lap %d contiguity mismatch", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestMinerChunkingInvariance: every chunking — including one event at a
// time and one giant chunk — yields the identical LAP stream.
func TestMinerChunkingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	events := randEvents(rng, 400)

	whole := NewMiner(0)
	whole.Feed(events)
	want := whole.Finish()

	single := NewMiner(0)
	for i := range events {
		single.Feed(events[i : i+1])
	}
	if got := single.Finish(); !reflect.DeepEqual(got, want) {
		t.Fatal("event-at-a-time chunking diverged from single-chunk feed")
	}
	if whole.BoundaryMerges() != 0 {
		t.Fatalf("single-chunk feed reported %d boundary merges", whole.BoundaryMerges())
	}
}

func TestMinerCounters(t *testing.T) {
	// Long uniform run split across chunks: one LAP assembled across
	// every boundary.
	var events []trace.Event
	for i := int64(0); i < 100; i++ {
		events = append(events, trace.Event{Rank: 0, File: 1, Op: trace.OpWrite,
			Offset: i * 100, Size: 100, Tick: i + 1})
	}
	m := NewMiner(0)
	for i := 0; i < len(events); i += 10 {
		m.Feed(events[i : i+10])
	}
	laps := m.Finish()
	if len(laps) != 1 || laps[0].Rep != 100 {
		t.Fatalf("laps %+v", laps)
	}
	if m.ChunksFolded() != 10 {
		t.Fatalf("chunks folded = %d, want 10", m.ChunksFolded())
	}
	if m.BoundaryMerges() != 1 {
		t.Fatalf("boundary merges = %d, want 1", m.BoundaryMerges())
	}
}

func TestMinerEmptyAndNonData(t *testing.T) {
	m := NewMiner(0)
	m.Feed(nil)
	m.Feed([]trace.Event{{Rank: 0, File: 1, Op: trace.OpOpen}})
	if laps := m.Finish(); len(laps) != 0 {
		t.Fatalf("laps %+v, want none", laps)
	}
}

// BenchmarkMinerChunked is the streaming analogue of the Fig3 extraction
// benchmark: 1M events through 2048-event chunks.
func BenchmarkMinerChunked(b *testing.B) {
	const n = 1 << 20
	events := make([]trace.Event, n)
	for i := range events {
		events[i] = trace.Event{Rank: 0, File: 1, Op: trace.OpWrite,
			Offset: int64(i%64) * 100, Size: 100, Tick: int64(i + 1)}
	}
	b.SetBytes(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMiner(0)
		for j := 0; j < n; j += 2048 {
			m.Feed(events[j : j+2048])
		}
		if laps := m.Finish(); len(laps) == 0 {
			b.Fatal("no laps")
		}
	}
}
