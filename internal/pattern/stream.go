// Incremental LAP mining — the streaming counterpart of Extract. A Miner is
// fed a rank's events in arbitrary fixed-size chunks and produces the exact
// LAP sequence Extract would produce on the concatenated stream, while
// retaining O(1) state per rank: the first 2·MaxPeriod events of the current
// position (the unit templates under construction) and a ring of the last
// 2·MaxPeriod events (the comparison window and the partial tail carried
// across chunk boundaries). Peak memory is therefore independent of trace
// length — the property phase.IdentifyStream builds its bounded-memory
// pipeline on.
//
// Equivalence argument (pinned by TestMinerMatchesExtract): Extract decides
// each position by counting, for every period k ≤ MaxPeriod, the consecutive
// repetitions of the k-unit. The Miner tracks the same candidates
// event-by-event: event j of a position is slot j mod k of repetition
// j div k, and is compared against event j−k, which is at most MaxPeriod
// back — inside the ring. A candidate dies at its first failed comparison
// with its repetition count frozen exactly where countReps would stop. When
// every candidate is dead (or input ends) the winner is known — remaining
// candidates can never improve — and the chosen coverage C satisfies
// C > j − MaxPeriod (the last-dying candidate's complete repetitions reach
// within one unit of j), so the ≤ MaxPeriod leftover events are still in
// the window and are replayed as the next position's prefix.
package pattern

import (
	"iophases/internal/trace"
	"iophases/internal/units"
)

// window is the bounded tail the Miner retains: head and ring each hold
// 2·MaxPeriod events, the carry limit promised by the streaming design.
const window = 2 * MaxPeriod

// RepMeta is the measured timing of one repetition of a StreamLAP —
// recorded only for LAPs whose repetitions become separate phases (the
// family-split case), by the rescan pass.
type RepMeta struct {
	Tick    int64          // tick of the repetition's first slot
	Start   units.Duration // virtual time of the repetition's first slot
	Elapsed units.Duration // sum of the repetition's op durations
}

// StreamLAP is a mined LAP plus the aggregates phase identification needs
// once the underlying events are gone: boundary ticks for the contiguity
// test, first-op start time, and the total busy time.
type StreamLAP struct {
	LAP
	FirstTick  int64
	LastTick   int64
	FirstStart units.Duration
	Elapsed    units.Duration // sum of op durations over all repetitions
	Reps       []RepMeta      // per-repetition detail; nil unless rescanned
}

// Contiguous mirrors LAP.ContiguousTicks without needing the events.
func (l *StreamLAP) Contiguous() bool {
	n := l.Len()
	if n <= 1 {
		return true
	}
	return l.LastTick-l.FirstTick == int64(n-1)
}

// minerCand is one period candidate of the current position.
type minerCand struct {
	dead bool
	reps int // confirmed complete repetitions
	disp [MaxPeriod]int64
}

// Miner incrementally mines one rank's event stream into LAPs.
type Miner struct {
	rank int
	out  []StreamLAP

	// Current-position state: j data events consumed since the position
	// started at absolute data-event index start. head pins the first
	// window events (unit templates), ring the last window events with
	// position-relative cumulative durations.
	j       int
	start   int
	head    [window]trace.Event
	ring    [window]trace.Event
	ringCum [window]units.Duration
	sum     units.Duration
	cand    [MaxPeriod]minerCand

	feedSeq int // chunks folded so far
	posSeq  int // feedSeq when the current position started
	merges  int // LAPs whose events spanned more than one chunk
}

// NewMiner returns a Miner for rank p's stream.
func NewMiner(p int) *Miner { return &Miner{rank: p} }

// Feed folds one chunk into the miner. Non-data events are skipped (the
// streaming equivalent of Set.DataEvents); chunk boundaries are invisible
// to the mining decision.
func (m *Miner) Feed(events []trace.Event) {
	m.feedSeq++
	for _, ev := range events {
		if !ev.Op.IsData() {
			continue
		}
		m.feedOne(ev)
	}
}

// Finish flushes the tail into final LAPs and returns the full sequence.
func (m *Miner) Finish() []StreamLAP {
	for m.j > 0 {
		m.decide()
	}
	return m.out
}

// BoundaryMerges reports how many emitted LAPs were assembled from events
// spanning more than one Feed chunk.
func (m *Miner) BoundaryMerges() int { return m.merges }

// ChunksFolded reports how many chunks have been fed.
func (m *Miner) ChunksFolded() int { return m.feedSeq }

// at returns event idx of the current position; idx must be < window or
// within the last window events (decision-time accesses always are).
func (m *Miner) at(idx int) trace.Event {
	if idx < window {
		return m.head[idx]
	}
	return m.ring[idx%window]
}

func (m *Miner) feedOne(ev trace.Event) {
	j := m.j
	if j == 0 {
		m.posSeq = m.feedSeq
	}
	if j < window {
		m.head[j] = ev
	}
	alive := false
	for k := 1; k <= MaxPeriod; k++ {
		c := &m.cand[k-1]
		if c.dead {
			continue
		}
		r, slot := j/k, j%k
		if r == 0 {
			// Template repetition: nothing to compare yet.
			if slot == k-1 {
				c.reps = 1
			}
			alive = true
			continue
		}
		prev := m.at(j - k)
		if prev.File != ev.File || prev.Op != ev.Op || prev.Size != ev.Size {
			c.dead = true
			continue
		}
		d := ev.Offset - prev.Offset
		if r == 1 {
			c.disp[slot] = d
		} else if d != c.disp[slot] {
			c.dead = true
			continue
		}
		if slot == k-1 {
			c.reps = r + 1
		}
		alive = true
	}
	m.sum += ev.Duration
	m.ring[j%window] = ev
	m.ringCum[j%window] = m.sum
	m.j = j + 1
	if !alive {
		m.decide()
	}
}

// decide picks the winning (period, repetitions) for the current position —
// exactly Extract's rule: maximize covered events, ties to the smallest
// period, composite units must repeat at least twice — emits the LAP, and
// replays the ≤ MaxPeriod leftover events as the next position's prefix.
func (m *Miner) decide() {
	if m.j == 0 {
		return
	}
	bestK, bestRep := 1, 1
	for k := 1; k <= MaxPeriod; k++ {
		rep := m.cand[k-1].reps
		if rep == 0 || (k > 1 && rep < 2) {
			continue
		}
		if rep*k > bestRep*bestK {
			bestK, bestRep = k, rep
		}
	}

	unit := make([]Template, bestK)
	for s := 0; s < bestK; s++ {
		ev := m.head[s]
		var disp int64
		if bestRep > 1 {
			disp = m.cand[bestK-1].disp[s]
		}
		unit[s] = Template{File: ev.File, Op: ev.Op, Size: ev.Size, InitOffset: ev.Offset, Disp: disp}
	}
	c := bestK * bestRep
	last := m.at(c - 1)
	m.out = append(m.out, StreamLAP{
		LAP:        LAP{Rank: m.rank, Start: m.start, Unit: unit, Rep: bestRep},
		FirstTick:  m.head[0].Tick,
		LastTick:   last.Tick,
		FirstStart: m.head[0].Time,
		Elapsed:    m.ringCum[(c-1)%window],
	})
	if m.feedSeq > m.posSeq {
		m.merges++
	}

	// Replay the overrun past the winner's coverage as a fresh position.
	var tail [window]trace.Event
	n := m.j - c
	for i := 0; i < n; i++ {
		tail[i] = m.at(c + i)
	}
	m.start += c
	m.j = 0
	m.sum = 0
	m.cand = [MaxPeriod]minerCand{}
	for i := 0; i < n; i++ {
		m.feedOne(tail[i])
	}
}
