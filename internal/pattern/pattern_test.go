package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"

	"iophases/internal/trace"
)

// ev builds a data event with sequential ticks handled by the caller.
func ev(op trace.Op, off, size, tick int64) trace.Event {
	return trace.Event{Rank: 0, File: 1, Op: op, Offset: off, Size: size, Tick: tick}
}

func TestExtractSimpleRun(t *testing.T) {
	// 40 writes advancing 265302 etypes each — Figure 3's first row.
	var events []trace.Event
	for i := int64(0); i < 40; i++ {
		events = append(events, ev(trace.OpWriteAtAll, i*265302, 10612080, 148+i*121))
	}
	laps := Extract(0, events)
	if len(laps) != 1 {
		t.Fatalf("laps = %d, want 1", len(laps))
	}
	l := laps[0]
	if l.Rep != 40 || len(l.Unit) != 1 {
		t.Fatalf("lap %+v", l)
	}
	u := l.Unit[0]
	if u.Disp != 265302 || u.InitOffset != 0 || u.Size != 10612080 {
		t.Fatalf("unit %+v", u)
	}
	if l.ContiguousTicks(events) {
		t.Fatal("121-tick strides must not be contiguous")
	}
}

func TestExtractWriteThenRead(t *testing.T) {
	// Figure 3: 40 writes then 40 reads, same geometry.
	var events []trace.Event
	tick := int64(1)
	for i := int64(0); i < 40; i++ {
		events = append(events, ev(trace.OpWriteAtAll, i*265302, 10612080, tick))
		tick += 121
	}
	for i := int64(0); i < 40; i++ {
		events = append(events, ev(trace.OpReadAtAll, i*265302, 10612080, tick))
		tick++
	}
	laps := Extract(0, events)
	if len(laps) != 2 {
		t.Fatalf("laps = %d, want 2:\n%s", len(laps), FormatTable(laps))
	}
	if !laps[0].Unit[0].Op.IsWrite() || !laps[1].Unit[0].Op.IsRead() {
		t.Fatalf("ops %s %s", laps[0].Unit[0].Op, laps[1].Unit[0].Op)
	}
	if !laps[1].ContiguousTicks(events) {
		t.Fatal("back-to-back reads should be tick-contiguous")
	}
}

func TestExtractMadbenchShape(t *testing.T) {
	// The W-function steady state: R R (W R)x6 W W, preceded by 8 S
	// writes and followed by 8 C reads — must yield exactly 5 LAPs
	// matching Table VIII.
	const MB32 = 32 << 20
	base := int64(0)
	var events []trace.Event
	tick := int64(1)
	add := func(op trace.Op, bin int64) {
		events = append(events, ev(op, base+bin*MB32, MB32, tick))
		tick += 3 // barriers/busy-work between I/O calls
	}
	for b := int64(0); b < 8; b++ {
		add(trace.OpWrite, b) // S
	}
	add(trace.OpRead, 0) // W prime
	add(trace.OpRead, 1)
	for i := int64(0); i < 6; i++ { // W steady state
		add(trace.OpWrite, i)
		add(trace.OpRead, i+2)
	}
	add(trace.OpWrite, 6) // W drain
	add(trace.OpWrite, 7)
	for b := int64(0); b < 8; b++ {
		add(trace.OpRead, b) // C
	}
	laps := Extract(0, events)
	if len(laps) != 5 {
		t.Fatalf("laps = %d, want 5:\n%s", len(laps), FormatTable(laps))
	}
	wantReps := []int{8, 2, 6, 2, 8}
	wantUnit := []int{1, 1, 2, 1, 1}
	for i, l := range laps {
		if l.Rep != wantReps[i] || len(l.Unit) != wantUnit[i] {
			t.Fatalf("lap %d: rep=%d unit=%d, want rep=%d unit=%d",
				i, l.Rep, len(l.Unit), wantReps[i], wantUnit[i])
		}
	}
	// Phase 3's unit: write at bin i, read at bin i+2 — disp 32MB both.
	p3 := laps[2]
	if p3.Unit[0].Disp != MB32 || p3.Unit[1].Disp != MB32 {
		t.Fatalf("phase3 disps %+v", p3.Unit)
	}
	if p3.Unit[1].InitOffset-p3.Unit[0].InitOffset != 2*MB32 {
		t.Fatalf("phase3 read/write skew %+v", p3.Unit)
	}
}

func TestExtractSingletons(t *testing.T) {
	events := []trace.Event{
		ev(trace.OpWrite, 0, 100, 1),
		ev(trace.OpRead, 500, 200, 2),
		ev(trace.OpWrite, 90, 300, 3),
	}
	laps := Extract(0, events)
	if len(laps) != 3 {
		t.Fatalf("laps = %d, want 3 singletons", len(laps))
	}
	for _, l := range laps {
		if l.Rep != 1 || len(l.Unit) != 1 {
			t.Fatalf("lap %+v", l)
		}
	}
}

func TestExtractPrefersSmallestPeriodOnTie(t *testing.T) {
	// 8 identical-progression writes: k=1 rep=8 must win over k=2 rep=4.
	var events []trace.Event
	for i := int64(0); i < 8; i++ {
		events = append(events, ev(trace.OpWrite, i*100, 100, i+1))
	}
	laps := Extract(0, events)
	if len(laps) != 1 || len(laps[0].Unit) != 1 || laps[0].Rep != 8 {
		t.Fatalf("laps %+v", laps)
	}
}

// TestExpandRoundTrip is the core invariant: expanding extracted LAPs
// reproduces the original event skeleton byte-for-byte.
func TestExpandRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%60) + 1
		var events []trace.Event
		off := int64(0)
		for i := 0; i < count; i++ {
			op := trace.OpWrite
			if rng.Intn(2) == 1 {
				op = trace.OpRead
			}
			size := int64(rng.Intn(4)+1) * 1024
			events = append(events, ev(op, off, size, int64(i+1)))
			// Mix of advancing, repeating, and jumping offsets.
			switch rng.Intn(3) {
			case 0:
				off += size
			case 1: // repeat
			case 2:
				off = int64(rng.Intn(1 << 20))
			}
		}
		got := Expand(Extract(0, events))
		if len(got) != len(events) {
			return false
		}
		for i, g := range got {
			e := events[i]
			if g.File != e.File || g.Op != e.Op || g.Size != e.Size || g.InitOffset != e.Offset {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesConservation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%80) + 1
		var events []trace.Event
		var total int64
		for i := 0; i < count; i++ {
			size := int64(rng.Intn(1000) + 1)
			total += size
			events = append(events, ev(trace.OpWrite, int64(rng.Intn(100))*1000, size, int64(i+1)))
		}
		var sum int64
		for _, l := range Extract(0, events) {
			sum += l.Bytes()
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSignatureIgnoresInitOffset(t *testing.T) {
	a := Template{File: 1, Op: trace.OpWrite, Size: 100, Disp: 10, InitOffset: 0}
	b := Template{File: 1, Op: trace.OpWrite, Size: 100, Disp: 10, InitOffset: 9999}
	if a.Signature() != b.Signature() {
		t.Fatal("signature must ignore InitOffset (simLAP definition)")
	}
	c := Template{File: 1, Op: trace.OpWrite, Size: 100, Disp: 11}
	if a.Signature() == c.Signature() {
		t.Fatal("signature must include Disp")
	}
}

func TestEventAccessor(t *testing.T) {
	var events []trace.Event
	for i := int64(0); i < 6; i++ {
		op := trace.OpWrite
		if i%2 == 1 {
			op = trace.OpRead
		}
		events = append(events, ev(op, i*10, 10, i+1))
	}
	laps := Extract(0, events)
	if len(laps) != 1 || len(laps[0].Unit) != 2 || laps[0].Rep != 3 {
		t.Fatalf("laps %+v", laps)
	}
	got := laps[0].Event(events, 2, 1)
	if got.Offset != 50 || !got.Op.IsRead() {
		t.Fatalf("event(2,1) = %+v", got)
	}
	if laps[0].RepTick(events, 1) != 3 {
		t.Fatalf("reptick = %d", laps[0].RepTick(events, 1))
	}
}
