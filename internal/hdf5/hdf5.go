// Package hdf5 implements a simplified parallel HDF5-like library on top
// of the simulated MPI-IO layer — the substrate for the ROMS-style
// application the paper names as future work ("we are analyzing upwelling
// of ROMs framework that use HDF5 parallel to writing operations").
//
// The model captures what matters to I/O-phase analysis:
//
//   - a file is a superblock plus object headers (metadata writes through
//     rank 0) followed by dataset data;
//   - datasets are up-to-3-dimensional arrays of fixed-size elements with
//     contiguous or chunked layout (chunk allocation costs a metadata
//     operation per new chunk — the B-tree insertion);
//   - ranks write hyperslabs; a slab must decompose into equal contiguous
//     runs at a constant stride (the practical row/plane decompositions),
//     which maps to one strided MPI-IO view access — exactly how HDF5
//     drives MPI-IO underneath H5Dwrite.
//
// Unsupported HDF5 features (compression, variable-length types, groups
// beyond a flat namespace) are orthogonal to access-pattern extraction.
package hdf5

import (
	"fmt"

	"iophases/internal/mpi"
	"iophases/internal/mpiio"
)

// Layout selects a dataset's storage layout.
type Layout int

// Dataset layouts.
const (
	Contiguous Layout = iota
	Chunked
)

const (
	superblockSize   = 2048
	objectHeaderSize = 1024
)

// File is a parallel HDF5-like file.
type File struct {
	sys      *mpiio.System
	f        *mpiio.File
	name     string
	allocEnd int64 // next free byte for dataset allocation
	datasets map[string]*Dataset
}

// Create opens a new file collectively; rank 0 writes the superblock.
func Create(sys *mpiio.System, r *mpi.Rank, name string) *File {
	f := sys.Open(r, name, mpiio.Shared)
	if r.ID() == 0 {
		f.WriteAt(r, 0, superblockSize)
	}
	r.Sync()
	return &File{
		sys:      sys,
		f:        f,
		name:     name,
		allocEnd: superblockSize,
		datasets: make(map[string]*Dataset),
	}
}

// Open reopens an existing file collectively (the metadata read).
func Open(sys *mpiio.System, r *mpi.Rank, name string) *File {
	f := sys.Open(r, name, mpiio.Shared)
	if r.ID() == 0 {
		f.ReadAt(r, 0, superblockSize)
	}
	r.Sync()
	return &File{
		sys:      sys,
		f:        f,
		name:     name,
		allocEnd: superblockSize,
		datasets: make(map[string]*Dataset),
	}
}

// Underlying exposes the MPI-IO handle (for tests).
func (h *File) Underlying() *mpiio.File { return h.f }

// Close closes the file collectively.
func (h *File) Close(r *mpi.Rank) { h.f.Close(r) }

// Dims are dataset dimensions, slowest-varying first; unused trailing
// dimensions are 1.
type Dims [3]int64

// Elems reports the total element count.
func (d Dims) Elems() int64 {
	n := int64(1)
	for _, v := range d {
		if v > 0 {
			n *= v
		}
	}
	return n
}

// Dataset is a named n-dimensional array in a file.
type Dataset struct {
	file     *File
	name     string
	dims     Dims
	elemSize int64
	layout   Layout
	chunkB   int64          // chunk size in bytes (Chunked layout)
	start    int64          // file offset of the data
	alloc    map[int64]bool // chunks already allocated
}

// CreateDataset defines a dataset collectively; rank 0 writes the object
// header, and space is allocated at the end of the file. chunkBytes is
// only used for the Chunked layout.
func (h *File) CreateDataset(r *mpi.Rank, name string, dims Dims, elemSize int64, layout Layout, chunkBytes int64) *Dataset {
	if elemSize <= 0 || dims.Elems() <= 0 {
		panic(fmt.Sprintf("hdf5: dataset %q: dims %v elem %d", name, dims, elemSize))
	}
	if layout == Chunked && chunkBytes <= 0 {
		panic(fmt.Sprintf("hdf5: dataset %q: chunked without chunk size", name))
	}
	ds, ok := h.datasets[name]
	if !ok {
		ds = &Dataset{
			file:     h,
			name:     name,
			dims:     dims,
			elemSize: elemSize,
			layout:   layout,
			chunkB:   chunkBytes,
			start:    h.allocEnd + objectHeaderSize,
			alloc:    make(map[int64]bool),
		}
		h.allocEnd = ds.start + dims.Elems()*elemSize
		h.datasets[name] = ds
	}
	if r.ID() == 0 {
		h.f.WriteAt(r, ds.start-objectHeaderSize, objectHeaderSize)
	}
	r.Sync()
	return ds
}

// Dataset returns a previously created dataset.
func (h *File) Dataset(name string) *Dataset {
	ds, ok := h.datasets[name]
	if !ok {
		panic(fmt.Sprintf("hdf5: unknown dataset %q in %s", name, h.name))
	}
	return ds
}

// Slab selects a hyperslab: Start element and Count elements per
// dimension.
type Slab struct {
	Start Dims
	Count Dims
}

// Bytes reports the slab's data volume.
func (s Slab) Bytes(elemSize int64) int64 { return s.Count.Elems() * elemSize }

// pattern reduces a slab to (firstByte, runBytes, strideBytes, runCount)
// relative to the dataset start, requiring the equal-runs-constant-stride
// shape one strided MPI datatype can express.
func (ds *Dataset) pattern(s Slab) (first, run, stride, count int64) {
	d := ds.dims
	for i := range d {
		if d[i] <= 0 {
			d[i] = 1
		}
		if s.Count[i] <= 0 {
			s.Count[i] = 1
		}
		if s.Start[i]+s.Count[i] > d[i] {
			panic(fmt.Sprintf("hdf5: slab %v out of bounds of %v in %q", s, ds.dims, ds.name))
		}
	}
	rowB := d[2] * ds.elemSize // one x-row
	planeB := d[1] * rowB      // one z-plane
	first = s.Start[0]*planeB + s.Start[1]*rowB + s.Start[2]*ds.elemSize
	switch {
	case s.Count[2] == d[2] && s.Count[1] == d[1]:
		// Whole planes: one contiguous run.
		return first, s.Count[0] * planeB, s.Count[0] * planeB, 1
	case s.Count[2] == d[2]:
		// Full rows, partial planes: one run per plane.
		return first, s.Count[1] * rowB, planeB, s.Count[0]
	case s.Count[1] == 1:
		// Partial rows within single-y slices: one run per plane.
		if s.Count[0] == 1 {
			return first, s.Count[2] * ds.elemSize, rowB, 1
		}
		return first, s.Count[2] * ds.elemSize, planeB, s.Count[0]
	default:
		panic(fmt.Sprintf(
			"hdf5: slab %v of %q needs a nested datatype; decompose along one axis",
			s, ds.name))
	}
}

// access performs a hyperslab data operation through a strided MPI-IO
// view (one traced MPI call, like H5Dwrite over MPI-IO).
func (ds *Dataset) access(r *mpi.Rank, s Slab, write, collective bool) {
	first, run, stride, count := ds.pattern(s)
	if ds.layout == Chunked && write {
		// Chunk allocation: a metadata operation per chunk first
		// touched by this rank (B-tree insertion). The single-threaded
		// engine makes the map race-free.
		lo := (first) / ds.chunkB
		hi := (first + stride*(count-1) + run - 1) / ds.chunkB
		for c := lo; c <= hi; c++ {
			if !ds.alloc[c] {
				ds.alloc[c] = true
				ds.file.sys.FS().ChargeMetaOp(r.Proc(), r.Node())
			}
		}
	}
	bytes := run * count
	ds.file.f.SetView(r, ds.start, ds.elemSize, mpiio.Vector{
		Block:  run,
		Stride: stride,
		Phase:  first,
	})
	offEtypes := int64(0) // the view already points at the slab
	switch {
	case write && collective:
		ds.file.f.WriteAtAll(r, offEtypes, bytes)
	case write:
		ds.file.f.WriteAt(r, offEtypes, bytes)
	case collective:
		ds.file.f.ReadAtAll(r, offEtypes, bytes)
	default:
		ds.file.f.ReadAt(r, offEtypes, bytes)
	}
}

// WriteSlab writes the rank's hyperslab (collective selects H5FD_MPIO
// collective transfer).
func (ds *Dataset) WriteSlab(r *mpi.Rank, s Slab, collective bool) {
	ds.access(r, s, true, collective)
}

// ReadSlab reads the rank's hyperslab.
func (ds *Dataset) ReadSlab(r *mpi.Rank, s Slab, collective bool) {
	ds.access(r, s, false, collective)
}

// RowDecompose splits dimension 1 (y) of a dataset evenly over np ranks —
// the standard 1-D horizontal decomposition of ocean/atmosphere models.
// Remainder rows go to the last rank.
func RowDecompose(dims Dims, rank, np int) Slab {
	rows := dims[1]
	per := rows / int64(np)
	start := int64(rank) * per
	count := per
	if rank == np-1 {
		count = rows - start
	}
	return Slab{
		Start: Dims{0, start, 0},
		Count: Dims{dims[0], count, dims[2]},
	}
}
