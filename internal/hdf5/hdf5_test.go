package hdf5

import (
	"testing"

	"iophases/internal/cluster"
	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/trace"
	"iophases/internal/units"
)

// rig runs a program on a small traced world over config A.
func runProgram(t *testing.T, np int, prog func(sys *mpiio.System, r *mpi.Rank)) (*trace.Set, *cluster.Cluster) {
	t.Helper()
	c := cluster.Build(cluster.ConfigA())
	nodes := make([]string, np)
	for i := range nodes {
		nodes[i] = c.NodeOfRank(i, np)
	}
	w := mpi.NewWorld(c.Eng, c.Fabric, nodes)
	sys := mpiio.NewSystem(c.FS, w)
	sys.Tracer = trace.NewSet("hdf5test", "configA", np)
	w.Run(func(r *mpi.Rank) { prog(sys, r) })
	return sys.Tracer, c
}

func TestDimsElems(t *testing.T) {
	if (Dims{4, 8, 16}).Elems() != 512 {
		t.Fatal("elems")
	}
	if (Dims{5, 0, 0}).Elems() != 5 {
		t.Fatal("unused dims must count as 1")
	}
}

func TestPatternShapes(t *testing.T) {
	ds := &Dataset{dims: Dims{4, 8, 16}, elemSize: 8, name: "d"}
	// Whole planes: contiguous.
	first, run, _, count := ds.pattern(Slab{Count: Dims{2, 8, 16}})
	if first != 0 || run != 2*8*16*8 || count != 1 {
		t.Fatalf("planes: %d %d %d", first, run, count)
	}
	// Full rows, partial planes: one run per plane.
	first, run, stride, count := ds.pattern(Slab{Start: Dims{0, 2, 0}, Count: Dims{4, 3, 16}})
	if first != 2*16*8 || run != 3*16*8 || stride != 8*16*8 || count != 4 {
		t.Fatalf("rows: %d %d %d %d", first, run, stride, count)
	}
	// Partial row in one y-slice per plane.
	_, run, stride, count = ds.pattern(Slab{Start: Dims{0, 1, 4}, Count: Dims{4, 1, 8}})
	if run != 8*8 || stride != 8*16*8 || count != 4 {
		t.Fatalf("partial: %d %d %d", run, stride, count)
	}
}

func TestPatternRejectsNestedShapes(t *testing.T) {
	ds := &Dataset{dims: Dims{4, 8, 16}, elemSize: 8, name: "d"}
	defer func() {
		if recover() == nil {
			t.Fatal("nested slab accepted")
		}
	}()
	ds.pattern(Slab{Count: Dims{2, 3, 8}}) // partial rows AND partial planes
}

func TestPatternRejectsOutOfBounds(t *testing.T) {
	ds := &Dataset{dims: Dims{4, 8, 16}, elemSize: 8, name: "d"}
	defer func() {
		if recover() == nil {
			t.Fatal("oob slab accepted")
		}
	}()
	ds.pattern(Slab{Start: Dims{0, 6, 0}, Count: Dims{4, 3, 16}})
}

func TestWriteSlabMovesData(t *testing.T) {
	const np = 4
	dims := Dims{1, 64, 64}
	set, c := runProgram(t, np, func(sys *mpiio.System, r *mpi.Rank) {
		h := Create(sys, r, "/test.h5")
		ds := h.CreateDataset(r, "field", dims, 8, Contiguous, 0)
		ds.WriteSlab(r, RowDecompose(dims, r.ID(), np), true)
		h.Close(r)
	})
	wantData := dims.Elems() * 8
	w, _ := set.TotalBytes()
	meta := int64(superblockSize + objectHeaderSize) // rank 0 metadata
	if w != wantData+meta {
		t.Fatalf("traced %d bytes, want %d data + %d meta", w, wantData, meta)
	}
	if got := c.IODevice(0).Counters().WriteBytes; got < wantData {
		t.Fatalf("device got %d", got)
	}
}

func TestRowDecomposeCoversGrid(t *testing.T) {
	dims := Dims{3, 100, 7}
	var rows int64
	for rank := 0; rank < 8; rank++ {
		s := RowDecompose(dims, rank, 8)
		rows += s.Count[1]
		if s.Count[0] != 3 || s.Count[2] != 7 {
			t.Fatalf("slab %v", s)
		}
	}
	if rows != 100 {
		t.Fatalf("rows covered %d", rows)
	}
}

func TestSlabViewIsStrided(t *testing.T) {
	// A partial-plane write must record a strided (vector) view.
	set, _ := runProgram(t, 2, func(sys *mpiio.System, r *mpi.Rank) {
		h := Create(sys, r, "/v.h5")
		dims := Dims{4, 8, 16}
		ds := h.CreateDataset(r, "d", dims, 8, Contiguous, 0)
		ds.WriteSlab(r, RowDecompose(dims, r.ID(), 2), false)
		h.Close(r)
	})
	m := set.FileMetaByID(0)
	if m == nil || !m.HasView {
		t.Fatal("no view recorded")
	}
	v := m.ViewOf(1)
	if v.Block <= 0 || v.Stride <= v.Block {
		t.Fatalf("view not strided: %+v", v)
	}
}

func TestChunkedLayoutChargesAllocation(t *testing.T) {
	// Compare the write call itself (traced duration): the chunked
	// layout pays one metadata operation per newly allocated chunk.
	run := func(layout Layout, chunk int64) units.Duration {
		c := cluster.Build(cluster.ConfigA())
		w := mpi.NewWorld(c.Eng, c.Fabric, []string{c.NodeOfRank(0, 1)})
		sys := mpiio.NewSystem(c.FS, w)
		var took units.Duration
		w.Run(func(r *mpi.Rank) {
			h := Create(sys, r, "/c.h5")
			dims := Dims{1, 64, 64}
			ds := h.CreateDataset(r, "d", dims, 8, layout, chunk)
			start := r.Now()
			ds.WriteSlab(r, Slab{Count: dims}, false)
			took = r.Now() - start
			h.Close(r)
		})
		return took
	}
	contig := run(Contiguous, 0)
	chunked := run(Chunked, 4*units.KiB) // 8 chunks of 4 KiB for 32 KiB data
	if chunked <= contig {
		t.Fatalf("chunk allocation free: contiguous %v vs chunked %v", contig, chunked)
	}
}

func TestReadSlabRoundTrip(t *testing.T) {
	set, _ := runProgram(t, 2, func(sys *mpiio.System, r *mpi.Rank) {
		h := Create(sys, r, "/rw.h5")
		dims := Dims{2, 16, 16}
		ds := h.CreateDataset(r, "d", dims, 8, Contiguous, 0)
		slab := RowDecompose(dims, r.ID(), 2)
		ds.WriteSlab(r, slab, true)
		ds.ReadSlab(r, slab, true)
		h.Close(r)
	})
	w, rd := set.TotalBytes()
	data := (Dims{2, 16, 16}).Elems() * int64(8)
	if rd != data {
		t.Fatalf("read %d, want %d", rd, data)
	}
	if w < data {
		t.Fatalf("wrote %d", w)
	}
}

func TestUnknownDatasetPanics(t *testing.T) {
	runProgram(t, 1, func(sys *mpiio.System, r *mpi.Rank) {
		h := Create(sys, r, "/x.h5")
		defer func() {
			if recover() == nil {
				t.Error("unknown dataset accessed")
			}
		}()
		h.Dataset("ghost")
	})
}
