package predict

import (
	"fmt"
	"sort"

	"iophases/internal/cluster"
	"iophases/internal/core"
	"iophases/internal/disksim"
	"iophases/internal/netsim"
	"iophases/internal/sweep"
	"iophases/internal/units"
)

// Variant is one hypothetical configuration in a what-if exploration —
// the design/selection use the paper targets with the SIMCAN simulation
// framework in its future work, available here natively because the
// whole substrate is already a simulator.
type Variant struct {
	Name string
	Spec cluster.Spec
}

// ExploreResult is a variant's estimated application I/O time.
type ExploreResult struct {
	Variant Variant
	Total   units.Duration
	Est     *Estimate
}

// Explore estimates the model's I/O time on every variant and returns the
// results sorted ascending by estimated time (best first). The
// application never runs on any variant — only its phases are replayed,
// so a wide sweep costs seconds. Variants estimate concurrently on the
// sweep pool (each replay owns a private simulation); results are
// order-preserving and then stably sorted, so the ranking is identical at
// any -j.
func Explore(m *core.Model, variants []Variant) ([]ExploreResult, error) {
	return ExploreOpts(m, variants, EstimateOptions{})
}

// ExploreOpts is Explore with explicit estimation options (fast-path mode,
// faithful mixed-phase characterization).
func ExploreOpts(m *core.Model, variants []Variant, opts EstimateOptions) ([]ExploreResult, error) {
	type exploreRes struct {
		r   ExploreResult
		err error
	}
	results := sweep.Map(variants, func(_ int, v Variant) exploreRes {
		est, err := EstimateTimeOpts(m, v.Spec, opts)
		if err != nil {
			return exploreRes{err: fmt.Errorf("variant %s: %w", v.Name, err)}
		}
		return exploreRes{r: ExploreResult{Variant: v, Total: est.TotalCH, Est: est}}
	})
	out := make([]ExploreResult, 0, len(results))
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, r.r)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Total < out[j].Total })
	return out, nil
}

// StandardVariants derives a systematic what-if sweep from a base
// configuration: I/O-node counts, network generations, and device
// organizations — the questions §I of the paper opens with ("When is it
// convenient to use a parallel or distributed file system? … RAID or
// single disks?").
func StandardVariants(base cluster.Spec) []Variant {
	var out []Variant
	add := func(name string, mutate func(s *cluster.Spec)) {
		s := base
		s.Name = fmt.Sprintf("%s+%s", base.Name, name)
		mutate(&s)
		out = append(out, Variant{Name: name, Spec: s})
	}
	add("baseline", func(s *cluster.Spec) {})
	// Network generations.
	add("10GbE", func(s *cluster.Spec) { s.Net = netsim.Ethernet10G() })
	add("IB20G", func(s *cluster.Spec) { s.Net = netsim.Infiniband20G() })
	// I/O node scaling (striped filesystem over n servers).
	for _, n := range []int{2, 4, 8} {
		n := n
		add(fmt.Sprintf("%d-ion-striped", n), func(s *cluster.Spec) {
			s.Storage.Kind = "pvfs2"
			s.Storage.IONodes = n
			s.Storage.FileStripeCount = 0
		})
	}
	// Device organization.
	add("raid0", func(s *cluster.Spec) {
		if s.Storage.RAID != nil {
			r := *s.Storage.RAID
			r.Level = disksim.RAID0
			s.Storage.RAID = &r
		}
	})
	add("single-disk", func(s *cluster.Spec) {
		s.Storage.RAID = nil
		s.Storage.DisksPerNode = 1
	})
	return out
}
