package predict

import (
	"math"
	"testing"

	"iophases/internal/apps/btio"
	"iophases/internal/apps/madbench"
	"iophases/internal/cluster"
	"iophases/internal/core"
	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/runner"
	"iophases/internal/units"
)

// measure runs an app on a spec and returns the model (with measured
// times).
func measureMadbench(t *testing.T, spec cluster.Spec, np int, rs int64) *core.Model {
	t.Helper()
	params := madbench.Default()
	params.RS = rs
	res := runner.Run(spec, np, "madbench2", func(sys *mpiio.System) func(*mpi.Rank) {
		return madbench.Program(sys, params)
	}, runner.Options{Trace: true})
	return core.Build(res.Set)
}

func measureBTIO(t *testing.T, spec cluster.Spec, np int, class btio.Class) *core.Model {
	t.Helper()
	params := btio.Default(class)
	res := runner.Run(spec, np, "btio", func(sys *mpiio.System) func(*mpi.Rank) {
		return btio.Program(sys, params)
	}, runner.Options{Trace: true})
	return core.Build(res.Set)
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(110, 100); math.Abs(got-10) > 1e-9 {
		t.Fatalf("err = %v", got)
	}
	if got := RelativeError(90, 100); math.Abs(got-10) > 1e-9 {
		t.Fatalf("err = %v", got)
	}
	if !math.IsInf(RelativeError(1, 0), 1) {
		t.Fatal("division by zero not guarded")
	}
}

func TestUsage(t *testing.T) {
	if got := Usage(units.MBps(93), units.MBps(400)); math.Abs(got-23.25) > 0.01 {
		t.Fatalf("usage = %v", got)
	}
	if Usage(units.MBps(93), 0) != 0 {
		t.Fatal("zero peak not guarded")
	}
}

func TestEstimateTimeSharesIdenticalReplays(t *testing.T) {
	// BT-IO's write rounds are identical; one IOR run must serve all of
	// them (plus one for the read phase).
	m := measureBTIO(t, cluster.ConfigA(), 4, btio.ClassW)
	est, err := EstimateTime(m, cluster.ConfigA())
	if err != nil {
		t.Fatal(err)
	}
	if est.IORRuns != 2 {
		t.Fatalf("IOR runs = %d, want 2 (writes shared + reads)", est.IORRuns)
	}
	if len(est.Phases) != len(m.Phases) {
		t.Fatalf("phase estimates %d", len(est.Phases))
	}
	if est.TotalCH <= 0 {
		t.Fatal("no total estimate")
	}
	var sum units.Duration
	for _, pe := range est.Phases {
		if pe.BWch <= 0 || pe.TimeCH <= 0 {
			t.Fatalf("phase %d estimate %+v", pe.Phase.ID, pe)
		}
		sum += pe.TimeCH
	}
	if sum != est.TotalCH {
		t.Fatalf("Eq.1 violated: %v != %v", sum, est.TotalCH)
	}
}

func TestEstimationErrorWithinPaperBound(t *testing.T) {
	// The headline claim: estimate on the same configuration the app was
	// measured on and compare — errors below 10% for BT-IO (Tables
	// XIII–XIV). Phase weights must exceed the server caches for the
	// methodology to hold (the paper validates at class D, 2.65 GB per
	// dump); a shortened class D keeps the test fast at that scale.
	class := btio.ClassD
	class.TimeSteps = 25 // 5 dumps
	for _, spec := range []cluster.Spec{cluster.ConfigC(), cluster.Finisterrae()} {
		m := measureBTIO(t, spec, 16, class)
		est, err := EstimateTime(m, spec)
		if err != nil {
			t.Fatal(err)
		}
		groups, err := CompareByFamily(est, m)
		if err != nil {
			t.Fatal(err)
		}
		if len(groups) != 2 {
			t.Fatalf("%s: %d groups", spec.Name, len(groups))
		}
		for _, g := range groups {
			if g.RelErr > 15 {
				t.Errorf("%s %s: error %.1f%% (CH %v, MD %v)",
					spec.Name, g.Label, g.RelErr, g.TimeCH, g.TimeMD)
			}
		}
	}
}

func TestCompareByFamilyGroupsBTIO(t *testing.T) {
	m := measureBTIO(t, cluster.ConfigA(), 4, btio.ClassW)
	est, err := EstimateTime(m, cluster.ConfigA())
	if err != nil {
		t.Fatal(err)
	}
	groups, err := CompareByFamily(est, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	dumps := btio.ClassW.Dumps()
	if groups[0].NPhases != dumps || groups[1].NPhases != 1 {
		t.Fatalf("group sizes %d/%d", groups[0].NPhases, groups[1].NPhases)
	}
	if groups[0].Label == groups[1].Label {
		t.Fatal("labels not distinct")
	}
}

func TestSelectConfigPrefersFinisterraeForBTIO(t *testing.T) {
	// Table XII: Finisterrae provides the lower I/O time for BT-IO.
	m := measureBTIO(t, cluster.ConfigC(), 16, btio.ClassA)
	best, choices, err := SelectConfig(m, []cluster.Spec{cluster.ConfigC(), cluster.Finisterrae()})
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != 2 {
		t.Fatalf("choices %d", len(choices))
	}
	if choices[best].Config != "finisterrae" {
		t.Fatalf("selected %s (times: %v vs %v)", choices[best].Config,
			choices[0].Total, choices[1].Total)
	}
}

func TestPeakBandwidthOrdering(t *testing.T) {
	// Eq. 3–4: config A (RAID5, 4 data disks) should beat config B
	// (3 single disks) at the device level even though B can beat A
	// through the network — the whole point of separating BW_PK from
	// BW_MD.
	aw, _ := PeakBandwidth(cluster.ConfigA(), 512*units.MiB, 8*units.MiB)
	bw, _ := PeakBandwidth(cluster.ConfigB(), 512*units.MiB, 8*units.MiB)
	if aw <= bw {
		t.Fatalf("peak A %v <= peak B %v", aw, bw)
	}
}

func TestUsageBelowFullCapacity(t *testing.T) {
	// Eq. 5 on config A: the application cannot use more capacity than
	// the network lets through, so usage stays well below 100%.
	m := measureMadbench(t, cluster.ConfigA(), 8, 8*units.MiB)
	pkW, pkR := PeakBandwidth(cluster.ConfigA(), 2*units.GiB, 8*units.MiB)
	for _, pm := range m.Phases {
		bwMD := units.BandwidthOf(pm.Weight, units.FromSeconds(pm.MeasuredSec))
		pk := pkW
		if pm.Direction() == core.Read {
			pk = pkR
		}
		u := Usage(bwMD, pk)
		if u <= 0 || u > 100 {
			t.Errorf("phase %d usage %.1f%%", pm.ID, u)
		}
	}
}

func TestMixedPhaseUsesAveragedBandwidth(t *testing.T) {
	m := measureMadbench(t, cluster.ConfigB(), 8, 8*units.MiB)
	var mixed *core.PhaseModel
	for _, pm := range m.Phases {
		if pm.Direction() == core.Mixed {
			mixed = pm
		}
	}
	if mixed == nil {
		t.Fatal("no mixed phase in MADBench model")
	}
	est, err := EstimateTime(m, cluster.ConfigB())
	if err != nil {
		t.Fatal(err)
	}
	for _, pe := range est.Phases {
		if pe.Phase == mixed && pe.BWch <= 0 {
			t.Fatal("mixed phase got no averaged bandwidth")
		}
	}
}
