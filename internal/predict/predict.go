// Package predict implements the analysis and evaluation stages of the
// methodology (§III-B, §III-C): replay each phase of an application I/O
// model with IOR on a target configuration to obtain BW_CH, estimate the
// application's I/O time there (Eq. 1–2), compute the device-level peak
// BW_PK via IOzone (Eq. 3–4), system usage (Eq. 5), relative estimation
// errors (Eq. 6–7), and select the configuration with the least I/O time.
package predict

import (
	"fmt"
	"math"

	"iophases/internal/cluster"
	"iophases/internal/core"
	"iophases/internal/fastpath"
	"iophases/internal/ior"
	"iophases/internal/obs"
	"iophases/internal/replay"
	"iophases/internal/simcache"
	"iophases/internal/sweep"
	"iophases/internal/units"
)

// PhaseEstimate is one phase's characterized bandwidth and time on a
// target configuration.
type PhaseEstimate struct {
	Phase  *core.PhaseModel
	BWch   units.Bandwidth // IOR transfer rate for the phase's replay
	TimeCH units.Duration  // weight / BW_CH  (Eq. 2)
	// Faithful marks characterization by the phase-faithful replayer
	// rather than an IOR pass average.
	Faithful bool
}

// Estimate is a full model-on-configuration estimation.
type Estimate struct {
	App    string
	Config string
	Phases []PhaseEstimate
	// TotalCH is Eq. 1: the sum over phases.
	TotalCH units.Duration
	// IORRuns counts the benchmark executions needed (identical phases
	// share one run, e.g. BT-IO's fifty write rounds).
	IORRuns int
}

// EstimateOptions tune the analysis stage.
type EstimateOptions struct {
	// FaithfulMixed characterizes multi-operation (W-R) phases with the
	// phase-faithful replay benchmark instead of averaging separate IOR
	// write and read passes — the improvement the paper's §V proposes
	// to cut the ≈50% error on complex phases.
	FaithfulMixed bool
	// FastPath selects how contention-free phase replays are priced:
	// ModeOff always simulates, ModeOn answers admissible replays in
	// closed form (bit-identical by construction), ModeVerify runs both
	// and panics on any divergence. The zero value defers to the
	// fastpath package default.
	FastPath fastpath.Mode
}

// EstimateTime replays every phase of the model on the target
// configuration with IOR (§III-B parameterization) and sums Eq. 2 over
// phases. Identical replay specs are benchmarked once and reused.
func EstimateTime(m *core.Model, spec cluster.Spec) (*Estimate, error) {
	return EstimateTimeOpts(m, spec, EstimateOptions{})
}

// EstimateTimeOpts is EstimateTime with explicit options. Distinct phase
// replays fan out over the sweep worker pool — each replay builds a private
// cluster simulation, so per-phase benchmarks are independent — while
// identical replay specs (BT-IO's fifty write rounds) are benchmarked once
// and reused. The deduplication happens before the fan-out, so IORRuns and
// every per-phase bandwidth are identical at any concurrency.
//
// A model whose phases need more ranks than the configuration has cores
// is reported as an error before any simulation runs.
func EstimateTimeOpts(m *core.Model, spec cluster.Spec, opts EstimateOptions) (*Estimate, error) {
	for _, pm := range m.Phases {
		if pm.NP > spec.MaxProcs() {
			return nil, fmt.Errorf("predict: %s phase %d needs %d ranks but %s has capacity %d",
				m.App, pm.ID, pm.NP, spec.Name, spec.MaxProcs())
		}
	}
	est := &Estimate{App: m.App, Config: spec.Name}
	type bwKey struct {
		np        int
		block, tx int64
		fpp, coll bool
		dir       core.Direction
		faithful  bool
	}
	// First pass: dedupe replay specs in model order.
	type job struct {
		rs       core.ReplaySpec
		pm       *core.PhaseModel
		faithful bool
	}
	slot := make(map[bwKey]int) // key -> index into jobs
	var jobs []job
	keys := make([]bwKey, len(m.Phases))
	for i, pm := range m.Phases {
		rs := pm.Replay(m.AccessType)
		faithful := opts.FaithfulMixed && len(pm.Ops) > 1
		key := bwKey{rs.NP, rs.BlockPerProc, rs.Transfer, rs.FilePerProc, rs.Collective, rs.Direction, faithful}
		keys[i] = key
		if _, ok := slot[key]; !ok {
			slot[key] = len(jobs)
			jobs = append(jobs, job{rs: rs, pm: pm, faithful: faithful})
		}
	}
	// Second pass: run the distinct replays concurrently. Errors ride
	// alongside the bandwidths; the first failing job (in model order)
	// wins, matching what a serial loop would report.
	type bwRes struct {
		bw  units.Bandwidth
		err error
	}
	bws := sweep.Map(jobs, func(_ int, j job) bwRes {
		if j.faithful {
			r, err := replay.PhaseMode(spec, m, j.pm, opts.FastPath)
			return bwRes{r.BW, err}
		}
		return bwRes{runReplay(spec, j.rs, opts.FastPath), nil}
	})
	for _, b := range bws {
		if b.err != nil {
			return nil, b.err
		}
	}
	est.IORRuns = len(jobs)
	// Third pass: assemble per-phase estimates in model order.
	for i, pm := range m.Phases {
		faithful := opts.FaithfulMixed && len(pm.Ops) > 1
		bw := bws[slot[keys[i]]].bw
		pe := PhaseEstimate{Phase: pm, BWch: bw, Faithful: faithful}
		if bw > 0 {
			pe.TimeCH = units.TransferTime(pm.Weight, bw)
		}
		est.Phases = append(est.Phases, pe)
		est.TotalCH += pe.TimeCH
	}
	recordTelemetry(m, spec.Name, est)
	return est, nil
}

// recordTelemetry reports one "estimate" telemetry row per phase (the
// BW_CH / Time_CH side of report.Telemetry's table) and, when a timeline
// was requested, one span per phase on an estimate track whose spans abut
// at their Eq. 1 cumulative times. No-op unless telemetry is enabled.
func recordTelemetry(m *core.Model, config string, est *Estimate) {
	if !obs.Enabled() {
		return
	}
	tr := obs.Timeline().Track("estimate "+m.App+"@"+config, "phases")
	var cursor units.Duration
	for _, pe := range est.Phases {
		pm := pe.Phase
		obs.RecordPhase(obs.PhaseRecord{
			App:       m.App,
			Config:    config,
			Source:    "estimate",
			Phase:     pm.ID,
			NP:        pm.NP,
			RS:        pm.RequestSize(),
			Weight:    pm.Weight,
			Dir:       string(pm.Direction()),
			BWCHMBps:  pe.BWch.MBpsValue(),
			TimeCHSec: pe.TimeCH.Seconds(),
			TimeMDSec: pm.MeasuredSec,
		})
		tr.Span(fmt.Sprintf("phase %d", pm.ID), int64(cursor), int64(cursor+pe.TimeCH),
			obs.Arg{Key: "weight", Value: pm.Weight},
			obs.Arg{Key: "rs", Value: pm.RequestSize()},
			obs.Arg{Key: "np", Value: pm.NP},
			obs.Arg{Key: "bwMBps", Value: pe.BWch.MBpsValue()},
			obs.Arg{Key: "dir", Value: string(pm.Direction())})
		cursor += pe.TimeCH
	}
}

// runReplay executes the IOR replica for a replay spec and reports the
// phase's characterized bandwidth. Mixed phases average the write and read
// rates — the paper's stated treatment, and the documented source of its
// ≈50% error on MADBench2's phase 3 (§V). Runs are memoized through the
// content-addressed simcache: an identical (spec, params) replay anywhere
// in the process — another variant of a sweep, another table of the
// experiment suite — returns the stored result without simulating.
func runReplay(spec cluster.Spec, rs core.ReplaySpec, mode fastpath.Mode) units.Bandwidth {
	p := ior.FromReplay(rs)
	res := simcache.RunIORMode(spec, p, mode)
	switch rs.Direction {
	case core.Write:
		return res.WriteBW
	case core.Read:
		return res.ReadBW
	default: // Mixed
		return (res.WriteBW + res.ReadBW) / 2
	}
}

// Usage is Eq. 5: the percentage of the device-peak capacity the
// application's measured bandwidth consumes.
func Usage(bwMD, bwPK units.Bandwidth) float64 {
	if bwPK <= 0 {
		return 0
	}
	return float64(bwMD) / float64(bwPK) * 100
}

// RelativeError is Eq. 6–7 applied to any characterized-vs-measured pair
// (bandwidths or times), in percent.
func RelativeError(ch, md float64) float64 {
	if md == 0 {
		return math.Inf(1)
	}
	return math.Abs(ch-md) / md * 100
}

// PeakBandwidth measures BW_PK for a configuration (Eq. 3–4) with the
// IOzone replica: per-I/O-node maxima over access patterns, summed across
// nodes. fileSize should exceed the node's cache (the paper's 2×RAM rule).
// Results are memoized per (spec, sizes) through the simcache.
func PeakBandwidth(spec cluster.Spec, fileSize, requestSize int64) (write, read units.Bandwidth) {
	write, read = simcache.PeakBandwidth(spec, fileSize, requestSize)
	// Register the peak so report.Telemetry can derive SystemUsage (Eq. 5)
	// for this configuration's phases without re-running IOzone.
	obs.RecordPeak(spec.Name, write.MBpsValue(), read.MBpsValue())
	return write, read
}

// GroupComparison compares characterized vs measured time for a phase
// group (Tables XII–XIV group BT-IO as "Phase 1–50" and "Phase 51").
type GroupComparison struct {
	Label   string
	TimeCH  units.Duration
	TimeMD  units.Duration
	RelErr  float64 // percent
	Weight  int64
	NPhases int
}

// CompareByFamily groups the estimate's phases by family and compares
// against the measured times carried in a model extracted from a run on
// the same target configuration. The two models must have the same shape;
// a mismatch (comparing against the wrong run's model) is reported as an
// error rather than a panic.
func CompareByFamily(est *Estimate, measured *core.Model) ([]GroupComparison, error) {
	if len(measured.Phases) != len(est.Phases) {
		return nil, fmt.Errorf("predict: phase count mismatch: measured model has %d phases, estimate has %d (models extracted from different runs?)",
			len(measured.Phases), len(est.Phases))
	}
	type agg struct {
		label   string
		ch, md  units.Duration
		weight  int64
		count   int
		firstID int
		lastID  int
	}
	var groups []*agg
	index := make(map[int]*agg)
	for i, pe := range est.Phases {
		famID := pe.Phase.FamilyID
		var g *agg
		if famID != 0 {
			if got, ok := index[famID]; ok {
				g = got
			}
		}
		if g == nil {
			g = &agg{firstID: pe.Phase.ID}
			groups = append(groups, g)
			if famID != 0 {
				index[famID] = g
			}
		}
		g.ch += pe.TimeCH
		g.md += units.FromSeconds(measured.Phases[i].MeasuredSec)
		g.weight += pe.Phase.Weight
		g.count++
		g.lastID = pe.Phase.ID
	}
	var out []GroupComparison
	for _, g := range groups {
		label := fmt.Sprintf("Phase %d", g.firstID)
		if g.count > 1 {
			label = fmt.Sprintf("Phase %d-%d", g.firstID, g.lastID)
		}
		out = append(out, GroupComparison{
			Label:   label,
			TimeCH:  g.ch,
			TimeMD:  g.md,
			RelErr:  RelativeError(g.ch.Seconds(), g.md.Seconds()),
			Weight:  g.weight,
			NPhases: g.count,
		})
	}
	return out, nil
}

// Choice is one configuration's estimated total.
type Choice struct {
	Config  string
	Total   units.Duration
	ByGroup []GroupComparison // TimeMD zero (no measurement involved)
	Est     *Estimate
}

// SelectConfig estimates the model on every candidate and returns the
// choices sorted as given plus the index of the minimum — "the
// configuration with less I/O time" (§III-B). Candidates estimate
// concurrently on the sweep pool; the returned order and tie-breaking
// (first minimum wins) match the serial loop exactly. The first
// candidate's error (in the given order) aborts the selection.
func SelectConfig(m *core.Model, specs []cluster.Spec) (best int, choices []Choice, err error) {
	type choiceRes struct {
		c   Choice
		err error
	}
	results := sweep.Map(specs, func(_ int, spec cluster.Spec) choiceRes {
		est, err := EstimateTime(m, spec)
		if err != nil {
			return choiceRes{err: err}
		}
		return choiceRes{c: Choice{Config: spec.Name, Total: est.TotalCH, Est: est}}
	})
	choices = make([]Choice, 0, len(results))
	for _, r := range results {
		if r.err != nil {
			return -1, nil, r.err
		}
		choices = append(choices, r.c)
	}
	best = -1
	for i := range choices {
		if best < 0 || choices[i].Total < choices[best].Total {
			best = i
		}
	}
	return best, choices, nil
}
