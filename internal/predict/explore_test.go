package predict

import (
	"reflect"
	"testing"

	"iophases/internal/cluster"
	"iophases/internal/simcache"
	"iophases/internal/sweep"
	"iophases/internal/units"
)

func TestStandardVariantsShape(t *testing.T) {
	vars := StandardVariants(cluster.ConfigA())
	if len(vars) < 6 {
		t.Fatalf("variants = %d", len(vars))
	}
	names := map[string]bool{}
	for _, v := range vars {
		if names[v.Name] {
			t.Fatalf("duplicate variant %q", v.Name)
		}
		names[v.Name] = true
		// Every variant must build.
		c := cluster.Build(v.Spec)
		if c.FS == nil {
			t.Fatalf("variant %q does not build", v.Name)
		}
	}
	for _, want := range []string{"baseline", "10GbE", "IB20G", "raid0", "single-disk"} {
		if !names[want] {
			t.Fatalf("missing variant %q", want)
		}
	}
}

func TestExploreRanksVariants(t *testing.T) {
	// A bandwidth-bound write model: faster networks and striped I/O
	// nodes must rank at or above the 1GbE NFS baseline.
	m := measureMadbench(t, cluster.ConfigA(), 8, 8*units.MiB)
	results, err := Explore(m, StandardVariants(cluster.ConfigA()))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 6 {
		t.Fatalf("results %d", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].Total < results[i-1].Total {
			t.Fatal("results not sorted best-first")
		}
	}
	pos := map[string]int{}
	for i, r := range results {
		pos[r.Variant.Name] = i
	}
	if pos["IB20G"] > pos["baseline"] {
		t.Fatalf("InfiniBand (%d) should not rank below the 1GbE baseline (%d)",
			pos["IB20G"], pos["baseline"])
	}
	if results[len(results)-1].Variant.Name == "IB20G" {
		t.Fatal("IB20G ranked last")
	}
	// Every estimate is positive and consistent with its phases.
	for _, r := range results {
		if r.Total <= 0 || r.Est == nil {
			t.Fatalf("bad result %+v", r.Variant.Name)
		}
	}
}

// TestExploreParallelEqualsSerial is the sweep pool's determinism contract
// at the API level: the same exploration at any concurrency returns the
// same ranking with the same numbers, cache hot or cold.
func TestExploreParallelEqualsSerial(t *testing.T) {
	m := measureMadbench(t, cluster.ConfigA(), 8, 8*units.MiB)
	variants := StandardVariants(cluster.ConfigA())

	runAt := func(workers int) []ExploreResult {
		defer sweep.SetConcurrency(0)
		sweep.SetConcurrency(workers)
		simcache.Reset() // cold cache each time: equality must not depend on it
		rs, err := Explore(m, variants)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	serial := runAt(1)
	parallel := runAt(8)
	if len(serial) != len(parallel) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Variant.Name != parallel[i].Variant.Name ||
			serial[i].Total != parallel[i].Total {
			t.Fatalf("rank %d differs: serial %s/%v, parallel %s/%v", i,
				serial[i].Variant.Name, serial[i].Total,
				parallel[i].Variant.Name, parallel[i].Total)
		}
		if !reflect.DeepEqual(serial[i].Est.Phases, parallel[i].Est.Phases) {
			t.Fatalf("per-phase estimates differ for %s", serial[i].Variant.Name)
		}
	}

	// Warm cache must not change results either.
	warm, err := Explore(m, variants)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Total != warm[i].Total {
			t.Fatalf("warm-cache result differs at rank %d", i)
		}
	}
	if hit, _, _ := simcache.Stats(); hit == 0 {
		t.Fatal("second exploration produced no cache hits")
	}
}

// TestEstimateParallelEqualsSerial pins the per-phase fan-out inside
// EstimateTimeOpts: IORRuns (dedup count) and every bandwidth must be
// concurrency-independent.
func TestEstimateParallelEqualsSerial(t *testing.T) {
	m := measureMadbench(t, cluster.ConfigB(), 8, 8*units.MiB)
	runAt := func(workers int) *Estimate {
		defer sweep.SetConcurrency(0)
		sweep.SetConcurrency(workers)
		simcache.Reset()
		est, err := EstimateTime(m, cluster.ConfigB())
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	serial := runAt(1)
	parallel := runAt(8)
	if serial.IORRuns != parallel.IORRuns {
		t.Fatalf("IORRuns %d vs %d", serial.IORRuns, parallel.IORRuns)
	}
	if serial.TotalCH != parallel.TotalCH {
		t.Fatalf("TotalCH %v vs %v", serial.TotalCH, parallel.TotalCH)
	}
	for i := range serial.Phases {
		if serial.Phases[i].BWch != parallel.Phases[i].BWch {
			t.Fatalf("phase %d BW_CH differs", i)
		}
	}
}
