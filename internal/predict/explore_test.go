package predict

import (
	"testing"

	"iophases/internal/cluster"
	"iophases/internal/units"
)

func TestStandardVariantsShape(t *testing.T) {
	vars := StandardVariants(cluster.ConfigA())
	if len(vars) < 6 {
		t.Fatalf("variants = %d", len(vars))
	}
	names := map[string]bool{}
	for _, v := range vars {
		if names[v.Name] {
			t.Fatalf("duplicate variant %q", v.Name)
		}
		names[v.Name] = true
		// Every variant must build.
		c := cluster.Build(v.Spec)
		if c.FS == nil {
			t.Fatalf("variant %q does not build", v.Name)
		}
	}
	for _, want := range []string{"baseline", "10GbE", "IB20G", "raid0", "single-disk"} {
		if !names[want] {
			t.Fatalf("missing variant %q", want)
		}
	}
}

func TestExploreRanksVariants(t *testing.T) {
	// A bandwidth-bound write model: faster networks and striped I/O
	// nodes must rank at or above the 1GbE NFS baseline.
	m := measureMadbench(t, cluster.ConfigA(), 8, 8*units.MiB)
	results := Explore(m, StandardVariants(cluster.ConfigA()))
	if len(results) < 6 {
		t.Fatalf("results %d", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].Total < results[i-1].Total {
			t.Fatal("results not sorted best-first")
		}
	}
	pos := map[string]int{}
	for i, r := range results {
		pos[r.Variant.Name] = i
	}
	if pos["IB20G"] > pos["baseline"] {
		t.Fatalf("InfiniBand (%d) should not rank below the 1GbE baseline (%d)",
			pos["IB20G"], pos["baseline"])
	}
	if results[len(results)-1].Variant.Name == "IB20G" {
		t.Fatal("IB20G ranked last")
	}
	// Every estimate is positive and consistent with its phases.
	for _, r := range results {
		if r.Total <= 0 || r.Est == nil {
			t.Fatalf("bad result %+v", r.Variant.Name)
		}
	}
}
