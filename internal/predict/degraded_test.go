package predict

import (
	"strings"
	"testing"

	"iophases/internal/cluster"
	"iophases/internal/core"
	"iophases/internal/faults"
	"iophases/internal/units"
)

func TestCompareDegradedSlowsPhasesDown(t *testing.T) {
	m := measureMadbench(t, cluster.ConfigA(), 8, 8*units.MiB)
	sch, _ := faults.Preset("slow-disk")
	cmp, err := CompareDegraded(m, cluster.ConfigA(), sch, 512*units.MiB, 8*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Scenario != "slow-disk" || cmp.Config != "configA" {
		t.Fatalf("labels %q/%q", cmp.Scenario, cmp.Config)
	}
	if len(cmp.Phases) != len(m.Phases) {
		t.Fatalf("phase deltas %d, want %d", len(cmp.Phases), len(m.Phases))
	}
	if cmp.Slowdown() <= 1 {
		t.Fatalf("slow-disk slowdown %.2fx not > 1", cmp.Slowdown())
	}
	for _, pd := range cmp.Phases {
		if pd.Degraded.TimeCH < pd.Healthy.TimeCH {
			t.Errorf("phase %d faster degraded (%v) than healthy (%v)",
				pd.Phase.ID, pd.Degraded.TimeCH, pd.Healthy.TimeCH)
		}
		if pd.HealthyUsage <= 0 || pd.DegradedUsage <= 0 {
			t.Errorf("phase %d usage %v/%v", pd.Phase.ID, pd.HealthyUsage, pd.DegradedUsage)
		}
	}
	// The degraded device peak must reflect the slowed disks.
	if cmp.DegradedPeakW >= cmp.HealthyPeakW {
		t.Fatalf("degraded peak %v not below healthy %v", cmp.DegradedPeakW, cmp.HealthyPeakW)
	}
}

func TestCompareDegradedValidatesSchedule(t *testing.T) {
	m := measureMadbench(t, cluster.ConfigA(), 8, 8*units.MiB)
	bad := &faults.Schedule{Name: "bad", Effects: []faults.Effect{
		{Kind: faults.SlowDisk, Factor: 0.5},
	}}
	if _, err := CompareDegraded(m, cluster.ConfigA(), bad, 512*units.MiB, 8*units.MiB); err == nil {
		t.Fatal("invalid schedule accepted")
	}
}

// The panics this layer used to raise are now errors a CLI can print.
func TestEstimateTimeRejectsOversizedModel(t *testing.T) {
	m := measureMadbench(t, cluster.ConfigA(), 8, 4*units.MiB)
	for _, pm := range m.Phases {
		pm.NP = 10_000
	}
	_, err := EstimateTime(m, cluster.ConfigA())
	if err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("oversized model: err = %v", err)
	}
	if _, _, err := SelectConfig(m, []cluster.Spec{cluster.ConfigA()}); err == nil {
		t.Fatal("SelectConfig accepted an oversized model")
	}
	if _, err := Explore(m, StandardVariants(cluster.ConfigA())); err == nil {
		t.Fatal("Explore accepted an oversized model")
	}
}

func TestCompareByFamilyRejectsPhaseCountMismatch(t *testing.T) {
	m := measureMadbench(t, cluster.ConfigA(), 8, 4*units.MiB)
	est, err := EstimateTime(m, cluster.ConfigA())
	if err != nil {
		t.Fatal(err)
	}
	other := *m
	other.Phases = append([]*core.PhaseModel(nil), m.Phases[:len(m.Phases)-1]...)
	_, err = CompareByFamily(est, &other)
	if err == nil || !strings.Contains(err.Error(), "phase count mismatch") {
		t.Fatalf("mismatched models: err = %v", err)
	}
}
