package predict

import (
	"fmt"

	"iophases/internal/cluster"
	"iophases/internal/core"
	"iophases/internal/faults"
	"iophases/internal/units"
)

// PhaseDelta is one phase's estimate on the healthy configuration next to
// the same phase on the configuration running a fault scenario. Usage is
// Eq. 5 evaluated against each state's own device peak — a degraded array
// has a lower ceiling, so usage can rise even as bandwidth falls.
type PhaseDelta struct {
	Phase         *core.PhaseModel
	Healthy       PhaseEstimate
	Degraded      PhaseEstimate
	HealthyUsage  float64 // percent of the healthy BW_PK (direction-matched)
	DegradedUsage float64 // percent of the degraded BW_PK
}

// DegradedComparison is the healthy-vs-degraded analysis of one model on
// one configuration under one fault scenario — the delta table answering
// "which configuration degrades most gracefully for this application?".
type DegradedComparison struct {
	App      string
	Config   string
	Scenario string
	Phases   []PhaseDelta
	// Totals are Eq. 1 sums over phases in each state.
	HealthyTotal  units.Duration
	DegradedTotal units.Duration
	// Device peaks (Eq. 3–4) in each state.
	HealthyPeakW  units.Bandwidth
	HealthyPeakR  units.Bandwidth
	DegradedPeakW units.Bandwidth
	DegradedPeakR units.Bandwidth
}

// Slowdown reports DegradedTotal / HealthyTotal (0 when the healthy total
// is zero).
func (c *DegradedComparison) Slowdown() float64 {
	if c.HealthyTotal <= 0 {
		return 0
	}
	return float64(c.DegradedTotal) / float64(c.HealthyTotal)
}

// CompareDegraded estimates the model on spec twice — healthy, and with
// the fault schedule attached — and pairs the per-phase results.
// peakFileSize and peakRS parameterize the IOzone peak measurement
// (Eq. 3–4) used for the usage columns.
//
// The degraded run uses a spec renamed to "<config>+<scenario>": the name
// is cosmetic to the simulation (simcache skips it; the schedule itself
// keys the cache), but it keeps obs peak records, link counters and
// timeline tracks from colliding with the healthy run's.
func CompareDegraded(m *core.Model, spec cluster.Spec, sch *faults.Schedule, peakFileSize, peakRS int64) (*DegradedComparison, error) {
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	healthySpec := spec
	healthySpec.Faults = nil
	degradedSpec := spec
	degradedSpec.Faults = sch
	degradedSpec.Name = spec.Name + "+" + sch.Name

	healthy, err := EstimateTime(m, healthySpec)
	if err != nil {
		return nil, err
	}
	degraded, err := EstimateTime(m, degradedSpec)
	if err != nil {
		return nil, err
	}
	if len(healthy.Phases) != len(degraded.Phases) {
		return nil, fmt.Errorf("predict: healthy/degraded phase count mismatch %d vs %d",
			len(healthy.Phases), len(degraded.Phases))
	}

	out := &DegradedComparison{
		App:           m.App,
		Config:        spec.Name,
		Scenario:      sch.Name,
		HealthyTotal:  healthy.TotalCH,
		DegradedTotal: degraded.TotalCH,
	}
	out.HealthyPeakW, out.HealthyPeakR = PeakBandwidth(healthySpec, peakFileSize, peakRS)
	out.DegradedPeakW, out.DegradedPeakR = PeakBandwidth(degradedSpec, peakFileSize, peakRS)

	for i := range healthy.Phases {
		hp, dp := healthy.Phases[i], degraded.Phases[i]
		out.Phases = append(out.Phases, PhaseDelta{
			Phase:         hp.Phase,
			Healthy:       hp,
			Degraded:      dp,
			HealthyUsage:  Usage(hp.BWch, directionPeak(hp.Phase, out.HealthyPeakW, out.HealthyPeakR)),
			DegradedUsage: Usage(dp.BWch, directionPeak(dp.Phase, out.DegradedPeakW, out.DegradedPeakR)),
		})
	}
	return out, nil
}

// directionPeak picks the Eq. 5 denominator matching a phase's transfer
// direction; mixed phases compare against the mean of the two peaks, the
// same averaging the paper applies to their characterization.
func directionPeak(pm *core.PhaseModel, peakW, peakR units.Bandwidth) units.Bandwidth {
	switch pm.Direction() {
	case core.Write:
		return peakW
	case core.Read:
		return peakR
	default:
		return (peakW + peakR) / 2
	}
}
