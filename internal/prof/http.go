// http.go adapts the package for the one resident process in the repo,
// cmd/iod, where the package comment's "plain files are enough" no longer
// holds: a daemon's interesting states happen while it serves. Importing
// net/http/pprof here (instead of in cmd/iod) keeps its side-effectful
// DefaultServeMux registration out of every other binary and gives the
// server an explicit, flag-gated handler to mount.
package prof

import (
	"net/http"
	"net/http/pprof"
)

// HTTPHandler returns the runtime profiling endpoints rooted at
// /debug/pprof/ (index, cmdline, profile, symbol, trace, plus the named
// runtime profiles via the index). Handlers are registered on a private
// mux — nothing touches http.DefaultServeMux — so the caller decides
// whether profiling is exposed at all.
func HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
