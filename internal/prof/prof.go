// Package prof wires runtime/pprof file profiles into the CLIs. The
// simulator's perf work is profile-guided (see DESIGN.md §5); these helpers
// make `-cpuprofile`/`-memprofile` a two-line addition to any main so every
// hot-path claim can be re-verified with `go tool pprof` on a real run.
// net/http/pprof would drag a server into batch commands; plain files are
// enough for offline analysis.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into path and returns a stop function that
// ends profiling and closes the file. An empty path is a no-op (the flag
// was not set); the returned stop is always safe to call exactly once.
func Start(path string) (stop func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("prof: create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("prof: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeap writes an allocs-space heap profile to path after a final GC,
// so the snapshot reflects live + cumulative allocation state at exit. An
// empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prof: create heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC() // flatten transient garbage so allocs dominate the profile
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		return fmt.Errorf("prof: write heap profile: %w", err)
	}
	return nil
}
