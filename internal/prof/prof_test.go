package prof

import (
	"os"
	"path/filepath"
	"testing"
)

// pprof profiles are gzipped protobuf; a loadable file starts with the
// gzip magic. That is the loadability smoke check `go tool pprof` needs
// without shelling out to it.
func isGzip(t *testing.T, path string) bool {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return len(b) >= 2 && b[0] == 0x1f && b[1] == 0x8b
}

func TestStartWritesLoadableCPUProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := Start(path)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has at least its header flushed.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if !isGzip(t, path) {
		t.Fatalf("%s is not a gzipped pprof profile", path)
	}
}

func TestWriteHeapWritesLoadableProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mem.pprof")
	if err := WriteHeap(path); err != nil {
		t.Fatal(err)
	}
	if !isGzip(t, path) {
		t.Fatalf("%s is not a gzipped pprof profile", path)
	}
}

func TestEmptyPathIsNoOp(t *testing.T) {
	stop, err := Start("")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := WriteHeap(""); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadPathErrors(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "x")); err == nil {
		t.Fatal("Start on an uncreatable path succeeded")
	}
	if err := WriteHeap(filepath.Join(t.TempDir(), "no", "such", "dir", "x")); err == nil {
		t.Fatal("WriteHeap on an uncreatable path succeeded")
	}
}
