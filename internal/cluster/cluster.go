// Package cluster assembles simulated computer clusters matching the four
// I/O configurations of the paper's evaluation (Tables VI and VII):
//
//	Configuration A — Aohyper, NFS v3 over 1 GbE, NAS with RAID5 (5 disks,
//	                  256 KiB stripe), ext4, async export (write-back cache).
//	Configuration B — Aohyper, PVFS2 over 1 GbE, 3 NASD I/O nodes, JBOD,
//	                  ext3.
//	Configuration C — 32 IBM x3550 nodes, NFS v3 over 1 GbE, SAS RAID5.
//	Finisterrae     — CESGA, Lustre (HP SFS) over 20 Gb/s InfiniBand,
//	                  18 OSS with SFS20 RAID5 cabins, 2 MDS.
//
// Every configuration is built from mechanisms (disks, links, servers) so
// measured bandwidths emerge from contention rather than lookup tables; the
// constants below are calibrated to the hardware classes the paper names,
// not to its result tables.
package cluster

import (
	"fmt"
	"sync/atomic"

	"iophases/internal/des"
	"iophases/internal/disksim"
	"iophases/internal/faults"
	"iophases/internal/fsim"
	"iophases/internal/netsim"
	"iophases/internal/units"
)

// RAIDSpec selects an array organization for an I/O node.
type RAIDSpec struct {
	Level      disksim.RAIDLevel
	StripeUnit int64
}

// StorageSpec describes the global filesystem's server side.
type StorageSpec struct {
	Kind            string // "nfs" | "pvfs2" | "lustre"
	IONodes         int
	DisksPerNode    int
	Disk            disksim.DiskParams
	RAID            *RAIDSpec            // nil: single disk (or JBOD member) per node
	Cache           *disksim.CacheParams // nil: no server write-back cache
	FSStripe        int64                // filesystem striping unit across I/O nodes
	FileStripeCount int                  // 0 = stripe every file over all I/O nodes
	// ServerRequest is the server-side request granularity (NFS wsize,
	// PVFS2 flow buffer, Lustre RPC size); see fsim.Params.
	ServerRequest int64
	MetaCost      units.Duration
}

// Spec is a complete cluster description.
type Spec struct {
	// Name labels the configuration in reports and error messages; it
	// has no effect on simulated physics, so renaming a config must not
	// re-key the replay cache.
	//iovet:cosmetic display label, excluded from the simcache fingerprint
	Name string
	//iovet:cosmetic display text, excluded from the simcache fingerprint
	Description  string
	ComputeNodes int
	CoresPerNode int
	Net          netsim.LinkParams
	Storage      StorageSpec
	// LocalDisk, when non-nil, attaches a DAS disk to every compute node
	// (used by IOzone's CN rows in Table IV).
	LocalDisk *disksim.DiskParams
	// Faults, when non-nil, attaches a deterministic fault schedule to the
	// cluster: the service layers consult it on every request, so the
	// configuration runs degraded. It is part of the spec's physical
	// identity — simcache fingerprints it, so healthy and degraded runs
	// never share cache entries.
	Faults *faults.Schedule
}

// MaxProcs reports the process capacity of the cluster.
func (s Spec) MaxProcs() int { return s.ComputeNodes * s.CoresPerNode }

// Cluster is a built, runnable configuration. Each Cluster owns a private
// engine; build a fresh one per experiment run.
type Cluster struct {
	Spec   Spec
	Eng    *des.Engine
	Fabric *netsim.Fabric
	FS     *fsim.FS

	computeNodes []string
	ioNodes      []string
	localDisks   map[string]*disksim.Disk
	ioDevices    []disksim.Device // per-I/O-node device (cache-wrapped if configured)
	memberDisks  [][]*disksim.Disk
}

// shardCount is the package-wide event-queue shard count applied to every
// engine Build constructs. Atomic because sweeps build clusters from many
// goroutines; 0/1 both mean the classic single queue.
var shardCount atomic.Int32

// SetShards sets the event-queue shard count for subsequently built
// clusters (the -shards CLI flag). Sharding partitions each engine's event
// queue by node affinity; results are bit-identical at any count.
func SetShards(n int) {
	if n < 1 {
		panic(fmt.Sprintf("cluster: shard count %d", n))
	}
	shardCount.Store(int32(n))
}

// Shards reports the configured event-queue shard count.
func Shards() int {
	if n := shardCount.Load(); n > 1 {
		return int(n)
	}
	return 1
}

// Build constructs the cluster on a fresh engine.
func Build(spec Spec) *Cluster {
	if spec.ComputeNodes <= 0 || spec.CoresPerNode <= 0 {
		panic(fmt.Sprintf("cluster: %q has no compute capacity", spec.Name))
	}
	if spec.Storage.IONodes <= 0 || spec.Storage.DisksPerNode <= 0 {
		panic(fmt.Sprintf("cluster: %q has no storage", spec.Name))
	}
	eng := des.NewEngine()
	if n := Shards(); n > 1 {
		// Partition the event queue by node affinity, with the network
		// latency as the conservative lookahead bound: no node's event
		// can affect another node sooner than one link traversal.
		eng.SetShards(n)
		eng.SetLookahead(spec.Net.Latency)
	}
	if spec.Faults != nil {
		// Attach before any device exists: constructors capture the
		// engine's injector handle once, at build time.
		faults.Attach(eng, spec.Faults, spec.Name)
	}
	fab := netsim.NewFabric(eng, spec.Name, spec.Net)
	c := &Cluster{
		Spec:       spec,
		Eng:        eng,
		Fabric:     fab,
		localDisks: make(map[string]*disksim.Disk),
	}
	for i := 0; i < spec.ComputeNodes; i++ {
		node := fmt.Sprintf("cn%02d", i)
		fab.AddEndpoint(node)
		c.computeNodes = append(c.computeNodes, node)
		if spec.LocalDisk != nil {
			c.localDisks[node] = disksim.NewDisk(eng, node+"/das", *spec.LocalDisk)
		}
	}
	var targets []fsim.Target
	for i := 0; i < spec.Storage.IONodes; i++ {
		node := fmt.Sprintf("ion%02d", i)
		fab.AddEndpoint(node)
		c.ioNodes = append(c.ioNodes, node)
		var members []*disksim.Disk
		for d := 0; d < spec.Storage.DisksPerNode; d++ {
			members = append(members, disksim.NewDisk(eng,
				fmt.Sprintf("%s/d%d", node, d), spec.Storage.Disk))
		}
		c.memberDisks = append(c.memberDisks, members)
		var dev disksim.Device
		if spec.Storage.RAID != nil {
			dev = disksim.NewArray(eng, node+"/raid", spec.Storage.RAID.Level,
				members, spec.Storage.RAID.StripeUnit)
		} else {
			dev = members[0]
			if len(members) > 1 {
				// Multiple independent disks on one node without
				// RAID: concatenate by treating them as a RAID0
				// with a huge stripe so whole files land on one
				// member — JBOD placement.
				dev = disksim.NewArray(eng, node+"/jbod", disksim.RAID0,
					members, 64*units.GiB)
			}
		}
		if spec.Storage.Cache != nil {
			dev = disksim.NewWriteCache(eng, node+"/cache", dev, *spec.Storage.Cache)
		}
		c.ioDevices = append(c.ioDevices, dev)
		targets = append(targets, fsim.Target{Node: node, Dev: dev})
	}
	c.FS = fsim.New(eng, fab, fsim.Params{
		Name:             spec.Name + "/fs",
		Kind:             spec.Storage.Kind,
		Targets:          targets,
		StripeSize:       spec.Storage.FSStripe,
		FileStripeCount:  spec.Storage.FileStripeCount,
		MaxServerRequest: spec.Storage.ServerRequest,
		MetaCost:         spec.Storage.MetaCost,
	})
	return c
}

// ComputeNodes lists compute node endpoint names.
func (c *Cluster) ComputeNodes() []string { return c.computeNodes }

// IONodes lists I/O node endpoint names.
func (c *Cluster) IONodes() []string { return c.ioNodes }

// NodeOfRank maps MPI rank to its compute node under the default block
// (fill-node-cores-first) placement.
func (c *Cluster) NodeOfRank(rank, np int) string {
	return c.Place(rank, np, PlaceBlock)
}

// Placement selects a rank-to-node mapping strategy. The paper's §IV-A
// notes the phase view "can be useful for the matching of processes that
// do I/O operations near to I/O nodes"; in a star fabric the lever is NIC
// multiplicity: block packing shares few NICs but keeps halo exchanges
// intra-node, scatter placement gives every rank more NIC headroom at the
// price of network communication.
type Placement string

// Placement strategies.
const (
	// PlaceBlock fills each node's cores before the next node (the MPI
	// default).
	PlaceBlock Placement = "block"
	// PlaceScatter round-robins ranks across nodes (cyclic placement).
	PlaceScatter Placement = "scatter"
)

// Place maps a rank to its node under the given strategy.
func (c *Cluster) Place(rank, np int, strategy Placement) string {
	if np > c.Spec.MaxProcs() {
		panic(fmt.Sprintf("cluster: %d ranks exceed %s capacity %d",
			np, c.Spec.Name, c.Spec.MaxProcs()))
	}
	if rank < 0 || rank >= np {
		panic(fmt.Sprintf("cluster: rank %d out of range 0..%d", rank, np-1))
	}
	switch strategy {
	case PlaceScatter:
		return c.computeNodes[rank%len(c.computeNodes)]
	default:
		return c.computeNodes[rank/c.Spec.CoresPerNode]
	}
}

// IODevice returns I/O node i's device (cache-wrapped if configured).
func (c *Cluster) IODevice(i int) disksim.Device { return c.ioDevices[i] }

// MemberDisks returns the physical disks behind I/O node i, for
// device-level monitoring (Figure 8).
func (c *Cluster) MemberDisks(i int) []*disksim.Disk { return c.memberDisks[i] }

// LocalDisk returns a compute node's DAS disk, or nil.
func (c *Cluster) LocalDisk(node string) *disksim.Disk { return c.localDisks[node] }

// ConfigA returns the Aohyper NFS configuration (Table VI, left column).
func ConfigA() Spec {
	return Spec{
		Name:         "configA",
		Description:  "Aohyper: NFS v3, 1GbE, NAS with RAID5 (5 SATA disks, 256KiB stripe), ext4, async export",
		ComputeNodes: 8,
		CoresPerNode: 2, // AMD Athlon 64 X2
		Net:          netsim.Ethernet1G(),
		Storage: StorageSpec{
			Kind:          "nfs",
			IONodes:       1,
			DisksPerNode:  5,
			Disk:          disksim.SATA7200(917 * units.GiB / 4), // 917 GB usable over 4 data disks
			RAID:          &RAIDSpec{Level: disksim.RAID5, StripeUnit: 256 * units.KiB},
			Cache:         &disksim.CacheParams{Capacity: 512 * units.MiB, MemBW: units.GBps(2), Chunk: 4 * units.MiB},
			FSStripe:      64 * units.KiB,
			ServerRequest: units.MiB, // NFS wsize/rsize with server merging
		},
		LocalDisk: localDiskParams(disksim.SATA7200(150 * units.GiB)),
	}
}

// ConfigB returns the Aohyper PVFS2 configuration (Table VI, right column).
func ConfigB() Spec {
	return Spec{
		Name:         "configB",
		Description:  "Aohyper: PVFS2 2.8.2, 1GbE, 3 NASD I/O nodes, JBOD (1 disk each), ext3",
		ComputeNodes: 8,
		CoresPerNode: 2,
		Net:          netsim.Ethernet1G(),
		Storage: StorageSpec{
			Kind:         "pvfs2",
			IONodes:      3,
			DisksPerNode: 1,
			Disk:         disksim.SATA7200(130 * units.GiB),
			// PVFS2's Trove writes through to the local filesystem
			// without an async dirty window (unlike an NFS async
			// export), so no server write-back cache is modeled.
			Cache:         nil,
			FSStripe:      64 * units.KiB,
			ServerRequest: 256 * units.KiB, // PVFS2 flow buffer
		},
		LocalDisk: localDiskParams(disksim.SATA7200(150 * units.GiB)),
	}
}

// ConfigC returns the 32-node NFS configuration (Table VII, left column).
func ConfigC() Spec {
	return Spec{
		Name:         "configC",
		Description:  "32x IBM x3550: NFS v3, 1GbE, NAS with RAID5 (5 SAS disks), ext4",
		ComputeNodes: 32,
		CoresPerNode: 4, // 2x dual-core Xeon 5160
		Net:          netsim.Ethernet1G(),
		Storage: StorageSpec{
			Kind:          "nfs",
			IONodes:       1,
			DisksPerNode:  5,
			Disk:          disksim.SAS15K(1800 * units.GiB / 4),
			RAID:          &RAIDSpec{Level: disksim.RAID5, StripeUnit: 256 * units.KiB},
			Cache:         &disksim.CacheParams{Capacity: 1 * units.GiB, MemBW: units.GBps(3), Chunk: 4 * units.MiB},
			FSStripe:      64 * units.KiB,
			ServerRequest: units.MiB,
		},
		LocalDisk: localDiskParams(disksim.SAS15K(160 * units.GiB)),
	}
}

// Finisterrae returns the CESGA Lustre configuration (Table VII, right
// column). The 866 SFS20 disks are modeled as 18 OSS each fronting a RAID5
// cabin; HP SFS assigns each file a small stripe count, so a single shared
// file does not reach the full 18-OSS aggregate — the mechanism behind the
// modest shared-file bandwidths the paper measures on this machine.
func Finisterrae() Spec {
	return Spec{
		Name:         "finisterrae",
		Description:  "CESGA Finisterrae: Lustre (HP SFS), InfiniBand 20Gb/s, 18 OSS, RAID5 SFS20 cabins",
		ComputeNodes: 142,
		CoresPerNode: 16, // HP rx7640, 16 Itanium cores
		Net:          netsim.Infiniband20G(),
		Storage: StorageSpec{
			Kind:         "lustre",
			IONodes:      18,
			DisksPerNode: 5, // one RAID5 cabin slice per OSS (4 data + parity)
			Disk:         disksim.SAS15K(250 * units.GiB),
			RAID:         &RAIDSpec{Level: disksim.RAID5, StripeUnit: 256 * units.KiB},
			Cache:        &disksim.CacheParams{Capacity: 512 * units.MiB, MemBW: units.GBps(3), Chunk: 4 * units.MiB},
			FSStripe:     1 * units.MiB,
			// HP SFS default stripe count: one OST per file unless
			// tuned; BT-IO's shared file therefore runs against a
			// single RAID cabin.
			FileStripeCount: 1,
			ServerRequest:   units.MiB, // Lustre RPC size
			MetaCost:        300 * units.Microsecond,
		},
	}
}

func localDiskParams(p disksim.DiskParams) *disksim.DiskParams { return &p }

// Presets lists the four paper configurations in presentation order.
func Presets() []Spec {
	return []Spec{ConfigA(), ConfigB(), ConfigC(), Finisterrae()}
}

// PresetByName resolves a configuration by its Name field.
func PresetByName(name string) (Spec, bool) {
	for _, s := range Presets() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
