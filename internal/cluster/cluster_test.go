package cluster

import (
	"testing"

	"iophases/internal/des"
	"iophases/internal/units"
)

func TestPresetsBuild(t *testing.T) {
	for _, spec := range Presets() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			c := Build(spec)
			if c.FS == nil {
				t.Fatal("no filesystem")
			}
			if got := len(c.ComputeNodes()); got != spec.ComputeNodes {
				t.Fatalf("compute nodes = %d, want %d", got, spec.ComputeNodes)
			}
			if got := len(c.IONodes()); got != spec.Storage.IONodes {
				t.Fatalf("io nodes = %d, want %d", got, spec.Storage.IONodes)
			}
			if c.FS.Kind() != spec.Storage.Kind {
				t.Fatalf("fs kind = %q", c.FS.Kind())
			}
		})
	}
}

func TestPresetByName(t *testing.T) {
	for _, name := range []string{"configA", "configB", "configC", "finisterrae"} {
		if _, ok := PresetByName(name); !ok {
			t.Fatalf("preset %q missing", name)
		}
	}
	if _, ok := PresetByName("nope"); ok {
		t.Fatal("unexpected preset")
	}
}

func TestNodeOfRankBlockPlacement(t *testing.T) {
	c := Build(ConfigA()) // 8 nodes × 2 cores
	if n := c.NodeOfRank(0, 16); n != "cn00" {
		t.Fatalf("rank 0 on %s", n)
	}
	if n := c.NodeOfRank(1, 16); n != "cn00" {
		t.Fatalf("rank 1 on %s", n)
	}
	if n := c.NodeOfRank(2, 16); n != "cn01" {
		t.Fatalf("rank 2 on %s", n)
	}
	if n := c.NodeOfRank(15, 16); n != "cn07" {
		t.Fatalf("rank 15 on %s", n)
	}
}

func TestNodeOfRankCapacity(t *testing.T) {
	c := Build(ConfigA())
	defer func() {
		if recover() == nil {
			t.Fatal("overcommit did not panic")
		}
	}()
	c.NodeOfRank(0, 17)
}

func TestMaxProcs(t *testing.T) {
	if got := ConfigC().MaxProcs(); got != 128 {
		t.Fatalf("configC capacity %d, want 128 (holds the paper's 121-proc run)", got)
	}
	if got := Finisterrae().MaxProcs(); got < 121 {
		t.Fatalf("finisterrae capacity %d", got)
	}
}

func TestConfigAWriteIsNetworkBound(t *testing.T) {
	// The headline relationship of Table IX: device peak far above the
	// bandwidth any client sees through the 1GbE NFS path.
	c := Build(ConfigA())
	var took units.Duration
	c.Eng.Spawn("w", func(p *des.Proc) {
		f := c.FS.Open(p, c.NodeOfRank(0, 1), "/t")
		start := p.Now()
		f.Write(p, c.NodeOfRank(0, 1), 0, 256*units.MiB)
		c.FS.Sync(p)
		took = p.Now() - start
	})
	c.Eng.Run()
	bw := units.BandwidthOf(256*units.MiB, took).MBpsValue()
	peak := c.FS.PeakDeviceBandwidth(true).MBpsValue()
	if bw >= peak/2 {
		t.Fatalf("measured %0.f MB/s vs device peak %0.f MB/s: NFS should be network-bound", bw, peak)
	}
	if bw < 50 || bw > 120 {
		t.Fatalf("measured %0.f MB/s, want within 1GbE ballpark", bw)
	}
}

func TestFinisterraeOutrunsConfigCOnSharedFile(t *testing.T) {
	run := func(spec Spec) units.Bandwidth {
		c := Build(spec)
		const np = 4
		var took units.Duration
		done := des.NewWaitGroup(c.Eng)
		done.Add(np)
		for r := 0; r < np; r++ {
			node := c.NodeOfRank(r, np)
			off := int64(r) * 64 * units.MiB
			c.Eng.Spawn(node, func(p *des.Proc) {
				f := c.FS.Open(p, node, "/shared")
				f.Write(p, node, off, 64*units.MiB)
				done.Done()
			})
		}
		c.Eng.Spawn("t", func(p *des.Proc) {
			done.Wait(p)
			c.FS.Sync(p)
			took = p.Now()
		})
		c.Eng.Run()
		return units.BandwidthOf(np*64*units.MiB, took)
	}
	cc, fi := run(ConfigC()), run(Finisterrae())
	if fi <= cc {
		t.Fatalf("finisterrae %v should beat configC %v", fi, cc)
	}
}

func TestLocalDisksPresent(t *testing.T) {
	c := Build(ConfigA())
	if c.LocalDisk("cn00") == nil {
		t.Fatal("configA compute nodes should have DAS disks")
	}
	f := Build(Finisterrae())
	if f.LocalDisk("cn00") != nil {
		t.Fatal("finisterrae nodes are diskless in this model")
	}
}

func TestPlacementStrategies(t *testing.T) {
	c := Build(ConfigA()) // 8 nodes × 2 cores
	if c.Place(0, 4, PlaceBlock) != "cn00" || c.Place(1, 4, PlaceBlock) != "cn00" {
		t.Fatal("block placement")
	}
	if c.Place(0, 4, PlaceScatter) != "cn00" || c.Place(1, 4, PlaceScatter) != "cn01" {
		t.Fatal("scatter placement")
	}
	// Scatter wraps past the node count.
	if c.Place(9, 16, PlaceScatter) != "cn01" {
		t.Fatalf("wrap: %s", c.Place(9, 16, PlaceScatter))
	}
}
