package ior

import (
	"testing"

	"iophases/internal/cluster"
	"iophases/internal/core"
	"iophases/internal/units"
)

func smallParams() Params {
	return Params{
		NP:        4,
		BlockSize: 16 * units.MiB,
		Transfer:  4 * units.MiB,
		Segments:  1,
		DoWrite:   true,
		DoRead:    true,
	}
}

func TestValidate(t *testing.T) {
	good := smallParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.BlockSize = 10 * units.MiB // not a multiple of transfer
	if bad.Validate() == nil {
		t.Fatal("misaligned block accepted")
	}
	bad = good
	bad.DoWrite, bad.DoRead = false, false
	if bad.Validate() == nil {
		t.Fatal("no-op run accepted")
	}
	bad = good
	bad.NP = 0
	if bad.Validate() == nil {
		t.Fatal("np=0 accepted")
	}
}

func TestAggregateBytes(t *testing.T) {
	p := smallParams()
	p.Segments = 3
	if got := p.AggregateBytes(); got != 3*4*16*units.MiB {
		t.Fatalf("aggregate = %d", got)
	}
}

func TestOffsetLayouts(t *testing.T) {
	p := smallParams()
	// Sequential (segmented) layout: rank blocks contiguous.
	if off := p.Offset(1, 0, 2); off != 16*units.MiB+2*4*units.MiB {
		t.Fatalf("seq offset = %d", off)
	}
	if off := p.Offset(0, 1, 0); off != 4*16*units.MiB {
		t.Fatalf("segment base = %d", off)
	}
	p.Interleaved = true
	if off := p.Offset(1, 0, 2); off != 2*4*4*units.MiB+4*units.MiB {
		t.Fatalf("interleaved offset = %d", off)
	}
	p.Interleaved = false
	p.FilePerProc = true
	if off := p.Offset(3, 0, 1); off != 4*units.MiB {
		t.Fatalf("file-per-proc offset = %d (rank must not matter)", off)
	}
}

func TestRunMovesAllData(t *testing.T) {
	c := cluster.Build(cluster.ConfigA())
	res := RunOn(c, smallParams())
	if res.WriteBW <= 0 || res.ReadBW <= 0 {
		t.Fatalf("bw = %v / %v", res.WriteBW, res.ReadBW)
	}
	if res.WriteOps != 16 || res.ReadOps != 16 {
		t.Fatalf("ops %d/%d, want 16 each", res.WriteOps, res.ReadOps)
	}
	if got := c.IODevice(0).Counters().WriteBytes; got != 64*units.MiB {
		t.Fatalf("device write bytes %d", got)
	}
	if res.IOPSw <= 0 || res.IOPSr <= 0 {
		t.Fatalf("iops %v/%v", res.IOPSw, res.IOPSr)
	}
}

func TestNFSWriteBandwidthIsNetworkBound(t *testing.T) {
	p := Params{
		NP: 8, BlockSize: 64 * units.MiB, Transfer: 8 * units.MiB,
		Segments: 1, DoWrite: true, Fsync: true,
	}
	res := Run(cluster.ConfigA(), p)
	bw := res.WriteBW.MBpsValue()
	if bw < 60 || bw > 115 {
		t.Fatalf("configA IOR write = %.1f MB/s, want 1GbE-bound (60–115)", bw)
	}
}

func TestCollectiveFlagRuns(t *testing.T) {
	p := smallParams()
	p.Collective = true
	res := Run(cluster.ConfigA(), p)
	if res.WriteBW <= 0 || res.ReadBW <= 0 {
		t.Fatalf("collective run produced %v / %v", res.WriteBW, res.ReadBW)
	}
}

func TestFilePerProcRuns(t *testing.T) {
	p := smallParams()
	p.FilePerProc = true
	c := cluster.Build(cluster.ConfigB())
	res := RunOn(c, p)
	if res.WriteBW <= 0 {
		t.Fatal("file-per-proc write failed")
	}
	// Four private files over three JBOD targets: every target touched.
	touched := 0
	for i := 0; i < 3; i++ {
		if c.IODevice(i).Counters().WriteBytes > 0 {
			touched++
		}
	}
	if touched != 3 {
		t.Fatalf("only %d of 3 JBOD targets used", touched)
	}
}

func TestFsyncLowersWriteBandwidth(t *testing.T) {
	// On a fast network with a server cache, untimed dirty data inflates
	// bandwidth; -e must bring it down to device speed.
	base := Params{
		NP: 16, BlockSize: 8 * units.MiB, Transfer: 4 * units.MiB,
		Segments: 1, DoWrite: true,
	}
	withSync := base
	withSync.Fsync = true
	plain := Run(cluster.Finisterrae(), base)
	synced := Run(cluster.Finisterrae(), withSync)
	if synced.WriteBW >= plain.WriteBW {
		t.Fatalf("fsync did not reduce write bw: %v vs %v", synced.WriteBW, plain.WriteBW)
	}
}

func TestReorderedReadsAvoidServerCache(t *testing.T) {
	p := Params{
		NP: 4, BlockSize: 32 * units.MiB, Transfer: 8 * units.MiB,
		Segments: 1, DoWrite: true, DoRead: true,
	}
	reordered := p
	reordered.ReorderRead = true
	a := Run(cluster.ConfigA(), p)
	b := Run(cluster.ConfigA(), reordered)
	// Both should hit storage because the harness drops caches between
	// passes; reordering must not *increase* bandwidth.
	if b.ReadBW > a.ReadBW*2 {
		t.Fatalf("reordered read bw %v vs %v", b.ReadBW, a.ReadBW)
	}
	if a.ReadBW.MBpsValue() > 400 {
		t.Fatalf("read pass served from cache: %.0f MB/s", a.ReadBW.MBpsValue())
	}
}

func TestFromReplaySpec(t *testing.T) {
	rs := core.ReplaySpec{
		PhaseID: 3, NP: 16, BlockPerProc: 256 * units.MiB,
		Transfer: 32 * units.MiB, Segments: 1,
		Collective: true, Direction: core.Write,
	}
	p := FromReplay(rs)
	if p.NP != 16 || p.BlockSize != 256*units.MiB || p.Transfer != 32*units.MiB {
		t.Fatalf("params %+v", p)
	}
	if !p.DoWrite || p.DoRead || !p.Collective || !p.Fsync {
		t.Fatalf("flags %+v", p)
	}
	rs.Direction = core.Mixed
	p = FromReplay(rs)
	if !p.DoWrite || !p.DoRead || !p.ReorderRead {
		t.Fatalf("mixed flags %+v", p)
	}
}

func TestFromReplayGuardsDegenerateBlock(t *testing.T) {
	rs := core.ReplaySpec{
		PhaseID: 1, NP: 3, BlockPerProc: 10*units.MiB + 7,
		Transfer: 4 * units.MiB, Segments: 1, Direction: core.Read,
	}
	p := FromReplay(rs)
	if err := p.Validate(); err != nil {
		t.Fatalf("guard failed: %v (%+v)", err, p)
	}
}

func TestInterleavedDenseLayoutBeatsBlockLayoutUnderConcurrency(t *testing.T) {
	// With 8 concurrent writers, transfer-interleaved placement covers
	// the file densely in arrival order (near-sequential at the disk),
	// while per-rank 32 MiB blocks make the head jump between eight
	// regions — a seek per request on the JBOD PVFS configuration. The
	// same effect is why collective I/O reorders to file order.
	base := Params{
		NP: 8, BlockSize: 32 * units.MiB, Transfer: units.MiB,
		Segments: 1, DoWrite: true, Fsync: true,
	}
	inter := base
	inter.Interleaved = true
	seqRes := Run(cluster.ConfigB(), base)
	intRes := Run(cluster.ConfigB(), inter)
	if intRes.WriteBW < seqRes.WriteBW {
		t.Fatalf("dense interleaved (%v) should beat block layout (%v) under concurrency",
			intRes.WriteBW, seqRes.WriteBW)
	}
}

func TestRandomOrderSlowerOnDiskBoundFS(t *testing.T) {
	// Table III's random access mode: shuffled chunk order defeats
	// sequential streaming on the seek-bound PVFS configuration.
	// One process isolates the pattern effect: with several concurrent
	// ranks even "sequential" interleaves at the disk.
	base := Params{
		NP: 1, BlockSize: 256 * units.MiB, Transfer: units.MiB,
		Segments: 1, DoWrite: true, DoRead: true, Fsync: true,
	}
	random := base
	random.RandomOrder = true
	random.Seed = 11
	seq := Run(cluster.ConfigB(), base)
	rnd := Run(cluster.ConfigB(), random)
	if rnd.ReadBW >= seq.ReadBW {
		t.Fatalf("random reads (%v) should be slower than sequential (%v)", rnd.ReadBW, seq.ReadBW)
	}
}

func TestRandomOrderDeterministic(t *testing.T) {
	p := Params{
		NP: 2, BlockSize: 16 * units.MiB, Transfer: units.MiB,
		Segments: 1, DoWrite: true, RandomOrder: true, Seed: 3,
	}
	a := Run(cluster.ConfigA(), p)
	b := Run(cluster.ConfigA(), p)
	if a.WriteTime != b.WriteTime {
		t.Fatalf("same seed differs: %v vs %v", a.WriteTime, b.WriteTime)
	}
}
