// Package ior re-implements the IOR benchmark (LLNL's Interleaved-Or-Random
// parallel I/O benchmark) against the simulated cluster, exposing the
// parameter surface of Table III: file size via block/segment counts,
// request (transfer) size -t, block size -b, segment count -s, access type
// -F (file per process), collective -c, np, and sequential or interleaved
// block layouts. The paper uses IOR at the I/O-library level both to
// characterize configurations exhaustively and — the core of §III-B — to
// replay each I/O phase of an application model on a target subsystem,
// yielding BW_CH.
package ior

import (
	"math/rand"

	"fmt"

	"iophases/internal/cluster"
	"iophases/internal/core"
	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/trace"
	"iophases/internal/units"
)

// Params mirror IOR's command-line surface (Table III).
type Params struct {
	NP          int
	BlockSize   int64 // -b: contiguous bytes per process per segment
	Transfer    int64 // -t: bytes per I/O call
	Segments    int   // -s
	FilePerProc bool  // -F
	Collective  bool  // -c
	Interleaved bool  // transfer-interleaved layout (strided blocks)
	// RandomOrder visits each rank's chunks in a deterministic shuffled
	// order (IOR -z), the "random" access mode of Table III.
	RandomOrder bool
	Seed        int64 // shuffle seed for RandomOrder
	DoWrite     bool  // -w
	DoRead      bool  // -r
	// ReorderRead reads the block of the next rank (IOR -C), defeating
	// locality between the write and read passes.
	ReorderRead bool
	// Fsync includes an MPI_File_sync in the timed write pass (IOR -e),
	// so server write-back caches cannot fake bandwidth the devices
	// never delivered. Phase replays always set it.
	Fsync bool
	// TraceRun records the benchmark's own MPI-IO activity in PAS2P
	// format — used to extract the I/O model *of IOR* (the paper's
	// Figure 6 example). Traced runs never enter the replay cache
	// (their value is the per-run mutable trace), so the flag is
	// legitimately outside the fingerprint.
	//iovet:cosmetic traced runs bypass the cache entirely
	TraceRun bool
	// FileName only keys the simulated filesystem's metadata map;
	// placement rotates on creation order, never on the name, so a
	// renamed-but-identical replay may share a cache entry.
	//iovet:cosmetic placement is name-independent
	FileName string
}

// Validate checks parameter consistency.
func (p Params) Validate() error {
	if p.NP <= 0 {
		return fmt.Errorf("ior: np=%d", p.NP)
	}
	if p.BlockSize <= 0 || p.Transfer <= 0 || p.Segments <= 0 {
		return fmt.Errorf("ior: b=%d t=%d s=%d", p.BlockSize, p.Transfer, p.Segments)
	}
	if p.BlockSize%p.Transfer != 0 {
		return fmt.Errorf("ior: block %d not a multiple of transfer %d", p.BlockSize, p.Transfer)
	}
	if !p.DoWrite && !p.DoRead {
		return fmt.Errorf("ior: neither write nor read selected")
	}
	return nil
}

// AggregateBytes reports the total data volume per pass.
func (p Params) AggregateBytes() int64 {
	return p.BlockSize * int64(p.NP) * int64(p.Segments)
}

// Result carries the Table V output metrics.
type Result struct {
	Params    Params
	WriteTime units.Duration
	ReadTime  units.Duration
	WriteBW   units.Bandwidth // mean aggregate transfer rate, MB/s
	ReadBW    units.Bandwidth
	WriteOps  int64
	ReadOps   int64
	IOPSw     float64
	IOPSr     float64
	Trace     *trace.Set // non-nil when Params.TraceRun
}

// Offset reports the file offset (bytes) of chunk i of segment s for a
// rank under the chosen layout. Exported so the analytic fast path
// (internal/fastpath) walks the exact access pattern RunOn issues.
func (p Params) Offset(rank, seg, chunk int) int64 {
	if p.FilePerProc {
		// Private file: plain sequential.
		return int64(seg)*p.BlockSize + int64(chunk)*p.Transfer
	}
	segBase := int64(seg) * p.BlockSize * int64(p.NP)
	if p.Interleaved {
		return segBase + int64(chunk)*int64(p.NP)*p.Transfer + int64(rank)*p.Transfer
	}
	return segBase + int64(rank)*p.BlockSize + int64(chunk)*p.Transfer
}

// ChunkOrder returns the order a rank visits its block's chunks in:
// identity, or the deterministic per-rank shuffle of RandomOrder (IOR -z).
// RunOn and the fast path derive their access sequences from this one
// function, so the two walk byte-identical patterns.
func (p Params) ChunkOrder(rank int) []int {
	chunks := int(p.BlockSize / p.Transfer)
	order := make([]int, chunks)
	for i := range order {
		order[i] = i
	}
	if p.RandomOrder {
		rng := rand.New(rand.NewSource(p.Seed + int64(rank) + 1))
		rng.Shuffle(chunks, func(i, j int) {
			order[i], order[j] = order[j], order[i]
		})
	}
	return order
}

// Run executes IOR on a freshly built cluster.
func Run(spec cluster.Spec, p Params) Result {
	c := cluster.Build(spec)
	return RunOn(c, p)
}

// RunOn executes IOR on an existing cluster (its engine must be idle).
func RunOn(c *cluster.Cluster, p Params) Result {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if p.FileName == "" {
		p.FileName = "/ior.testfile"
	}
	nodes := make([]string, p.NP)
	for i := range nodes {
		nodes[i] = c.NodeOfRank(i, p.NP)
	}
	w := mpi.NewWorld(c.Eng, c.Fabric, nodes)
	sys := mpiio.NewSystem(c.FS, w)
	if p.TraceRun {
		sys.Tracer = trace.NewSet("ior", c.Spec.Name, p.NP)
	}
	chunks := int(p.BlockSize / p.Transfer)

	res := Result{Params: p}
	var writeStart, writeEnd, readStart, readEnd units.Duration
	access := mpiio.Shared
	if p.FilePerProc {
		access = mpiio.Unique
	}
	w.Run(func(r *mpi.Rank) {
		f := sys.Open(r, p.FileName, access)
		chunkOrder := p.ChunkOrder(r.ID())
		pass := func(write bool) (units.Duration, units.Duration) {
			r.Barrier()
			start := r.Now()
			for seg := 0; seg < p.Segments; seg++ {
				for _, ch := range chunkOrder {
					rank := r.ID()
					if !write && p.ReorderRead && !p.FilePerProc {
						rank = (r.ID() + 1) % p.NP
					}
					off := p.Offset(rank, seg, ch)
					switch {
					case write && p.Collective:
						f.WriteAtAll(r, off, p.Transfer)
					case write:
						f.WriteAt(r, off, p.Transfer)
					case p.Collective:
						f.ReadAtAll(r, off, p.Transfer)
					default:
						f.ReadAt(r, off, p.Transfer)
					}
				}
			}
			if write && p.Fsync {
				f.Sync(r) // IOR -e: fsync inside the timed window
			}
			r.Barrier()
			return start, r.Now()
		}
		if p.DoWrite {
			s, e := pass(true)
			if r.ID() == 0 {
				writeStart, writeEnd = s, e
			}
		}
		if p.DoWrite && p.DoRead {
			// Flush and drop server caches between passes (the
			// cache-defeating remount every serious harness does),
			// so the read pass measures storage, not the server's
			// page cache.
			r.Sync()
			if r.ID() == 0 {
				c.FS.DropCaches(r.Proc())
			}
			r.Sync()
		}
		if p.DoRead {
			s, e := pass(false)
			if r.ID() == 0 {
				readStart, readEnd = s, e
			}
		}
		f.Close(r)
	})

	res.Trace = sys.Tracer
	vol := p.AggregateBytes()
	ops := int64(chunks) * int64(p.Segments) * int64(p.NP)
	if p.DoWrite {
		res.WriteTime = writeEnd - writeStart
		res.WriteBW = units.BandwidthOf(vol, res.WriteTime)
		res.WriteOps = ops
		if sec := res.WriteTime.Seconds(); sec > 0 {
			res.IOPSw = float64(ops) / sec
		}
	}
	if p.DoRead {
		res.ReadTime = readEnd - readStart
		res.ReadBW = units.BandwidthOf(vol, res.ReadTime)
		res.ReadOps = ops
		if sec := res.ReadTime.Seconds(); sec > 0 {
			res.IOPSr = float64(ops) / sec
		}
	}
	return res
}

// FromReplay converts a phase replay spec (§III-B: s=1, b=weight/np, t=rs,
// -F and -c from metadata) into IOR parameters. Mixed phases run both
// passes; pure phases run only their direction.
func FromReplay(rs core.ReplaySpec) Params {
	p := Params{
		NP:          rs.NP,
		BlockSize:   rs.BlockPerProc,
		Transfer:    rs.Transfer,
		Segments:    rs.Segments,
		FilePerProc: rs.FilePerProc,
		Collective:  rs.Collective,
		Fsync:       true,
		FileName:    fmt.Sprintf("/ior.phase%d", rs.PhaseID),
	}
	switch rs.Direction {
	case core.Write:
		p.DoWrite = true
	case core.Read:
		p.DoWrite, p.DoRead, p.ReorderRead = true, true, true
	case core.Mixed:
		p.DoWrite, p.DoRead, p.ReorderRead = true, true, true
	}
	// Transfers must divide the block; phase weights are always
	// rep·rs·np so block = rep·rs divides cleanly, but guard against
	// degenerate models.
	if p.BlockSize%p.Transfer != 0 {
		p.BlockSize = (p.BlockSize / p.Transfer) * p.Transfer
		if p.BlockSize == 0 {
			p.BlockSize = p.Transfer
		}
	}
	return p
}
