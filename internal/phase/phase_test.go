package phase

import (
	"math/rand"
	"testing"
	"testing/quick"

	"iophases/internal/trace"
	"iophases/internal/units"
)

const mb32 = int64(32) << 20

// madbenchSet builds a synthetic 4-rank MADBench2-shaped trace matching
// Table VIII's structure: S writes 8 bins, W primes 2 reads + 6×(write,
// read+2) + 2 drain writes, C reads 8 bins. Offsets: idP·8·32MB + bin·32MB.
func madbenchSet(np int) *trace.Set {
	s := trace.NewSet("madbench2", "test", np)
	s.AddFile(trace.FileMeta{ID: 0, Name: "/data", AccessType: "shared",
		PointerSet: "individual", Blocking: true})
	for p := 0; p < np; p++ {
		base := int64(p) * 8 * mb32
		tick := int64(0)
		tm := units.Duration(0)
		add := func(op trace.Op, bin int64) {
			tick++ // I/O calls are back-to-back inside a function
			s.Record(trace.Event{Rank: p, File: 0, Op: op,
				Offset: base + bin*mb32, Tick: tick, Size: mb32,
				Time: tm, Duration: 100 * units.Millisecond})
			tm += 200 * units.Millisecond
		}
		gangSync := func() { tick += 2 } // barrier between functions
		for b := int64(0); b < 8; b++ {
			add(trace.OpWrite, b) // S
		}
		gangSync()
		add(trace.OpRead, 0) // W prime
		add(trace.OpRead, 1)
		for i := int64(0); i < 6; i++ { // W steady state
			add(trace.OpWrite, i)
			add(trace.OpRead, i+2)
		}
		add(trace.OpWrite, 6) // W drain
		add(trace.OpWrite, 7)
		gangSync()
		for b := int64(0); b < 8; b++ {
			add(trace.OpRead, b) // C
		}
	}
	return s
}

func TestIdentifyMadbenchPhases(t *testing.T) {
	res := Identify(madbenchSet(16))
	if len(res.Phases) != 5 {
		t.Fatalf("phases = %d, want 5:\n%s", len(res.Phases), res.FormatTable())
	}
	// Table VIII: weights 4GB, 1GB, 6GB(3+3), 1GB, 4GB for 16 procs.
	wantWeights := []int64{4 * units.GiB, 1 * units.GiB, 6 * units.GiB, 1 * units.GiB, 4 * units.GiB}
	wantReps := []int{8, 2, 6, 2, 8}
	for i, ph := range res.Phases {
		if ph.Weight != wantWeights[i] {
			t.Errorf("phase %d weight %s, want %s", ph.ID,
				units.FormatBytes(ph.Weight), units.FormatBytes(wantWeights[i]))
		}
		if ph.Rep != wantReps[i] {
			t.Errorf("phase %d rep %d, want %d", ph.ID, ph.Rep, wantReps[i])
		}
		if ph.NP != 16 {
			t.Errorf("phase %d np %d", ph.ID, ph.NP)
		}
		// InitOffset = idP·8·32MB (+ constant shifts): slope is 8·32MB.
		if ph.OffsetFn.A != 8*mb32 || !ph.OffsetFn.Exact {
			t.Errorf("phase %d offset fn %+v", ph.ID, ph.OffsetFn)
		}
	}
	// Phase 3 is the mixed write-read phase.
	if !res.Phases[2].IsMixed() {
		t.Fatal("phase 3 should be W-R")
	}
	if res.Phases[0].OpCount() != 128 || res.Phases[2].OpCount() != 192 {
		t.Fatalf("op counts %d %d, want 128 and 192 (Table IX)",
			res.Phases[0].OpCount(), res.Phases[2].OpCount())
	}
}

// btioSet builds a synthetic BT-IO-shaped trace: np ranks, strided view
// with etype 40, dumps write rounds separated by solver ticks, then a
// contiguous block of re-reads.
func btioSet(np, dumps int, rsBytes int64) *trace.Set {
	s := trace.NewSet("btio", "test", np)
	meta := trace.FileMeta{ID: 0, Name: "/btio", AccessType: "shared",
		PointerSet: "explicit", Collective: true, Blocking: true,
		HasView: true, ViewEtype: 40}
	for p := 0; p < np; p++ {
		meta.Views = append(meta.Views, trace.ViewInfo{
			Rank: p, Etype: 40, Block: rsBytes,
			Stride: int64(np) * rsBytes, Phase: int64(p) * rsBytes,
		})
	}
	s.AddFile(meta)
	rsEtypes := rsBytes / 40
	for p := 0; p < np; p++ {
		tick := int64(27)
		for d := 0; d < dumps; d++ {
			s.Record(trace.Event{Rank: p, File: 0, Op: trace.OpWriteAtAll,
				Offset: int64(d) * rsEtypes, Tick: tick, Size: rsBytes,
				Duration: 50 * units.Millisecond})
			tick += 121
		}
		for d := 0; d < dumps; d++ {
			s.Record(trace.Event{Rank: p, File: 0, Op: trace.OpReadAtAll,
				Offset: int64(d) * rsEtypes, Tick: tick, Size: rsBytes,
				Duration: 60 * units.Millisecond})
			tick++
		}
	}
	return s
}

func TestIdentifyBTIOPhases(t *testing.T) {
	const np, dumps = 4, 40
	rs := int64(10612080)
	res := Identify(btioSet(np, dumps, rs))
	// Table XI class C: 40 write phases + 1 read phase of rep 40.
	if len(res.Phases) != dumps+1 {
		t.Fatalf("phases = %d, want %d", len(res.Phases), dumps+1)
	}
	for i := 0; i < dumps; i++ {
		ph := res.Phases[i]
		if !ph.IsWrite() || ph.Rep != 1 || ph.NP != np {
			t.Fatalf("phase %d: %+v", ph.ID, ph)
		}
		if ph.FamilyRep != i+1 {
			t.Fatalf("phase %d family rep %d", ph.ID, ph.FamilyRep)
		}
		if !ph.Collective {
			t.Fatalf("phase %d should be collective", ph.ID)
		}
		// Table XI: initOffset = rs·idP + rs·(ph−1) + rs·(np−1)·(ph−1)
		//         = rs·idP + rs·np·(ph−1).
		if ph.OffsetFn.A != rs || ph.OffsetFn.B != rs*int64(np) || !ph.OffsetFn.Exact {
			t.Fatalf("phase %d offset fn %+v", ph.ID, ph.OffsetFn)
		}
	}
	last := res.Phases[dumps]
	if !last.IsRead() || last.Rep != dumps {
		t.Fatalf("read phase %+v", last)
	}
	if last.Weight != rs*int64(dumps)*int64(np) {
		t.Fatalf("read phase weight %d", last.Weight)
	}
}

func TestWeightConservation(t *testing.T) {
	f := func(seed int64, npRaw, nRaw uint8) bool {
		np := int(npRaw%4) + 1
		n := int(nRaw%40) + 1
		rng := rand.New(rand.NewSource(seed))
		s := trace.NewSet("rnd", "test", np)
		s.AddFile(trace.FileMeta{ID: 0, Name: "/r"})
		var total int64
		// Same op sequence for all ranks (SPMD), random shapes.
		type opShape struct {
			op   trace.Op
			size int64
			off  int64
		}
		shapes := make([]opShape, n)
		for i := range shapes {
			op := trace.OpWrite
			if rng.Intn(2) == 0 {
				op = trace.OpRead
			}
			shapes[i] = opShape{op, int64(rng.Intn(1000) + 1), int64(rng.Intn(100)) * 1000}
		}
		for p := 0; p < np; p++ {
			for i, sh := range shapes {
				s.Record(trace.Event{Rank: p, File: 0, Op: sh.op,
					Offset: sh.off + int64(p)*1_000_000,
					Tick:   int64(i*2 + 1), Size: sh.size})
				total += sh.size
			}
		}
		return Identify(s).TotalBytes() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPhasesOrderedByTick(t *testing.T) {
	res := Identify(madbenchSet(4))
	for i := 1; i < len(res.Phases); i++ {
		if res.Phases[i].Tick < res.Phases[i-1].Tick {
			t.Fatalf("phases out of tick order at %d", i)
		}
		if res.Phases[i].ID != res.Phases[i-1].ID+1 {
			t.Fatalf("ids not sequential")
		}
	}
}

func TestMeasuredBW(t *testing.T) {
	res := Identify(madbenchSet(4))
	ph := res.Phases[0] // 8 writes × 100 ms per rank → 0.8 s elapsed
	wantTime := 800 * units.Millisecond
	if got := ph.MeasuredTime(); got != wantTime {
		t.Fatalf("measured time %v, want %v", got, wantTime)
	}
	wantBW := units.BandwidthOf(ph.Weight, wantTime)
	if got := ph.MeasuredBW(); got != wantBW {
		t.Fatalf("bw %v, want %v", got, wantBW)
	}
}

func TestOffsetFnRender(t *testing.T) {
	rs := int64(10612080)
	fn := OffsetFn{A: rs, B: 4 * rs, Exact: true}
	got := fn.Render(rs, 4)
	if got != "rs*idP + 4*rs*(ph-1)" {
		t.Fatalf("render = %q", got)
	}
	plain := OffsetFn{C: 12345, Exact: true}
	if plain.Render(1000, 4) != "12345" {
		t.Fatalf("render = %q", plain.Render(1000, 4))
	}
	inexact := OffsetFn{C: 7, Exact: false}
	if inexact.Render(0, 1) != "7 (approx)" {
		t.Fatalf("render = %q", inexact.Render(0, 1))
	}
}

func TestOffsetFnEval(t *testing.T) {
	fn := OffsetFn{C: 100, A: 10, B: 1000, D: 3}
	if got := fn.Eval(2, 1); got != 120 {
		t.Fatalf("eval(2,1) = %d", got)
	}
	if got := fn.Eval(2, 4); got != 100+20+3000+18 {
		t.Fatalf("eval(2,4) = %d", got)
	}
}

func TestFamiliesGrouping(t *testing.T) {
	res := Identify(btioSet(4, 10, 4000))
	fams := res.Families()
	if len(fams) != 2 {
		t.Fatalf("families = %d, want 2 (write family + read phase)", len(fams))
	}
	if len(fams[0]) != 10 || len(fams[1]) != 1 {
		t.Fatalf("family sizes %d/%d", len(fams[0]), len(fams[1]))
	}
}

func TestSubsetOfRanksFormsPhase(t *testing.T) {
	// Only ranks 0 and 1 of 4 do I/O: phase np must be 2.
	s := trace.NewSet("partial", "test", 4)
	s.AddFile(trace.FileMeta{ID: 0, Name: "/p"})
	for p := 0; p < 2; p++ {
		for i := int64(0); i < 5; i++ {
			s.Record(trace.Event{Rank: p, File: 0, Op: trace.OpWrite,
				Offset: int64(p)*1000 + i*100, Tick: i + 1, Size: 100})
		}
	}
	res := Identify(s)
	if len(res.Phases) != 1 || res.Phases[0].NP != 2 {
		t.Fatalf("phases %+v", res.Phases)
	}
}
