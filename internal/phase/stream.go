// Streaming phase identification — the bounded-memory counterpart of
// Identify for traces too large to materialize. Events flow from a
// trace.Source through per-rank pattern.Miners in fixed-size chunks; only
// the mined LAPs and their aggregates survive, so peak memory is
// O(np · window + LAPs) instead of O(events).
//
// The decomposition is two-pass. Pass 1 mines every rank and aggregates
// per-LAP boundary ticks, first start and total busy time — enough to
// build every phase except the family-split case, where one repeated LAP
// becomes one phase per repetition and each phase needs its own
// repetition's tick, start and elapsed time. Pass 2 re-opens only the
// ranks contributing to split groups (the Source contract makes OpenRank
// restartable) and indexes events straight into the known LAP geometry:
// event i of a LAP starting at s with period k is repetition (i−s)/k, slot
// (i−s)%k — no re-mining. Both passes fan out over the sweep pool and are
// consumed serially in rank order, so the result is byte-identical to
// Identify's at any -j (pinned by TestIdentifyStreamMatchesIdentify).
package phase

import (
	"io"
	"sort"

	"iophases/internal/obs"
	"iophases/internal/pattern"
	"iophases/internal/sweep"
	"iophases/internal/trace"
)

// streamChunk is the per-read event buffer; small enough that np buffers
// are negligible, large enough to amortize Reader call overhead.
const streamChunk = 2048

// Streaming pipeline telemetry.
var (
	cEvents  = obs.Default().Counter("stream/events")
	cChunks  = obs.Default().Counter("stream/chunks_folded")
	cMerges  = obs.Default().Counter("stream/boundary_merges")
	cRescans = obs.Default().Counter("stream/rescans")
)

// streamRank is one rank's pass-1 result.
type streamRank struct {
	laps   []pattern.StreamLAP
	events int64
	chunks int
	merges int
	err    error
}

// IdentifyStream is Identify over a trace.Source: identical phases,
// bounded memory. The returned Result's Set carries the source metadata
// but no events.
func IdentifyStream(src trace.Source) (*Result, error) {
	meta := src.Meta()
	set := trace.NewSet(meta.App, meta.Config, meta.NP)
	set.Files = meta.Files

	perRank := sweep.Map(make([]struct{}, meta.NP), func(p int, _ struct{}) streamRank {
		return mineRank(src, p)
	})
	for p := range perRank {
		if err := perRank[p].err; err != nil {
			return nil, err
		}
		cEvents.Add(perRank[p].events)
		cChunks.Add(int64(perRank[p].chunks))
		cMerges.Add(int64(perRank[p].merges))
	}

	g := groupMembers(meta.NP, func(p int, emit func(member)) {
		laps := perRank[p].laps
		for i := range laps {
			emit(member{rank: p, lap: laps[i].LAP, agg: &laps[i]})
		}
	})
	if err := fillSplitReps(src, g); err != nil {
		return nil, err
	}
	phases := buildPhases(set, g)
	recordTelemetry(set, phases)
	return &Result{Set: set, Phases: phases}, nil
}

// mineRank streams one rank through a Miner.
func mineRank(src trace.Source, p int) streamRank {
	r, err := src.OpenRank(p)
	if err != nil {
		return streamRank{err: err}
	}
	defer r.Close()
	m := pattern.NewMiner(p)
	buf := make([]trace.Event, streamChunk)
	var total int64
	for {
		n, err := r.Read(buf)
		if n > 0 {
			total += int64(n)
			m.Feed(buf[:n])
		}
		if err != nil {
			if err != io.EOF {
				return streamRank{err: err}
			}
			break
		}
	}
	return streamRank{laps: m.Finish(), events: total, chunks: m.ChunksFolded(), merges: m.BoundaryMerges()}
}

// fillSplitReps runs pass 2: for every group that will split into a phase
// family (repeated, not tick-contiguous), fill the per-repetition RepMeta
// of each member by re-streaming just those ranks.
func fillSplitReps(src trace.Source, g grouped) error {
	needs := make(map[int][]*pattern.StreamLAP)
	for _, key := range g.order {
		ms := g.groups[key]
		if ms[0].lap.Rep == 1 {
			continue
		}
		contig := true
		for i := range ms {
			if !ms[i].contiguous() {
				contig = false
				break
			}
		}
		if contig {
			continue
		}
		for i := range ms {
			needs[ms[i].rank] = append(needs[ms[i].rank], ms[i].agg)
		}
	}
	if len(needs) == 0 {
		return nil
	}
	ranks := make([]int, 0, len(needs))
	for p := range needs {
		ranks = append(ranks, p)
	}
	sort.Ints(ranks)
	errs := sweep.Map(ranks, func(_ int, p int) error {
		cRescans.Inc()
		return fillReps(src, p, needs[p])
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fillReps re-streams rank p and indexes its data events into the laps'
// repetition slots. laps arrive in mining order, which is Start order, and
// positions never overlap, so a single cursor suffices.
func fillReps(src trace.Source, p int, laps []*pattern.StreamLAP) error {
	for _, l := range laps {
		l.Reps = make([]pattern.RepMeta, l.Rep)
	}
	r, err := src.OpenRank(p)
	if err != nil {
		return err
	}
	defer r.Close()
	buf := make([]trace.Event, streamChunk)
	i := 0 // data-event index within the rank
	li := 0
	for li < len(laps) {
		n, err := r.Read(buf)
		for _, ev := range buf[:n] {
			if !ev.Op.IsData() {
				continue
			}
			idx := i
			i++
			for li < len(laps) && idx >= laps[li].Start+laps[li].Len() {
				li++
			}
			if li == len(laps) {
				break
			}
			l := laps[li]
			if idx < l.Start {
				continue
			}
			k := len(l.Unit)
			rel := idx - l.Start
			rep, slot := rel/k, rel%k
			if slot == 0 {
				l.Reps[rep].Tick = ev.Tick
				l.Reps[rep].Start = ev.Time
			}
			l.Reps[rep].Elapsed += ev.Duration
		}
		if err != nil {
			if err != io.EOF {
				return err
			}
			break
		}
	}
	return nil
}
