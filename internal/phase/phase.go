// Package phase identifies the I/O phases of a traced parallel application
// — the central construct of the paper (§III-A1). A phase groups similar
// local access patterns (simLAP) of a number of processes at similar
// logical times; its significance is its weight = rep · rs · np, and its
// placement is a closed-form initial-offset function f(initOffset) of the
// process id (and, for phase families like BT-IO's fifty write rounds, of
// the phase number).
package phase

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"iophases/internal/obs"
	"iophases/internal/pattern"
	"iophases/internal/sweep"
	"iophases/internal/trace"
	"iophases/internal/units"
)

// OpSpec is one operation slot of a phase's repeating unit.
type OpSpec struct {
	Op   trace.Op
	Size int64 // request size in bytes (rs)
	Disp int64 // physical byte advance per repetition within the phase
	Skew int64 // physical byte offset of this slot relative to slot 0
}

// RankAccess is one rank's participation in a phase.
type RankAccess struct {
	Rank       int
	InitOffset int64          // physical byte offset of the first access
	Elapsed    units.Duration // sum of the rank's op durations in the phase
	Start      units.Duration // first op start (app-relative)
}

// Phase is one I/O phase (Table I: {idPH, idF, weight, f(initOffset)}).
type Phase struct {
	ID         int // idPH, 1-based in tick order
	File       int // idF
	Ops        []OpSpec
	Rep        int
	NP         int // processes participating
	Ranks      []RankAccess
	Tick       int64 // earliest first-op tick across ranks
	Weight     int64 // rep · Σ rs · np, in bytes
	Collective bool
	OffsetFn   OffsetFn

	// Family links phases split from one repeated pattern (e.g. BT-IO's
	// write rounds 1..50): FamilyID is shared and FamilyRep is the
	// 1-based repetition index (the "ph" of Table XI). Unsplit phases
	// have FamilyRep 0.
	FamilyID  int
	FamilyRep int
}

// RequestSize reports the dominant request size (first op slot).
func (ph *Phase) RequestSize() int64 { return ph.Ops[0].Size }

// IsWrite / IsRead / IsMixed classify the phase's operation direction.
func (ph *Phase) IsWrite() bool { return ph.direction() == "W" }
func (ph *Phase) IsRead() bool  { return ph.direction() == "R" }
func (ph *Phase) IsMixed() bool { return ph.direction() == "W-R" }

func (ph *Phase) direction() string {
	var w, r bool
	for _, op := range ph.Ops {
		w = w || op.Op.IsWrite()
		r = r || op.Op.IsRead()
	}
	switch {
	case w && r:
		return "W-R"
	case w:
		return "W"
	default:
		return "R"
	}
}

// OpCount reports the total operation count of the phase (the "#Oper."
// column of Tables IX and X): ops per unit × rep × np.
func (ph *Phase) OpCount() int { return len(ph.Ops) * ph.Rep * ph.NP }

// StartTime is the phase's earliest operation start in the traced run
// (app-relative virtual time).
func (ph *Phase) StartTime() units.Duration {
	var min units.Duration = 1 << 62
	for _, ra := range ph.Ranks {
		if ra.Start < min {
			min = ra.Start
		}
	}
	return min
}

// MeasuredTime is the phase's elapsed I/O time in the traced run: ranks
// proceed concurrently, so it is the maximum per-rank busy time.
func (ph *Phase) MeasuredTime() units.Duration {
	var max units.Duration
	for _, ra := range ph.Ranks {
		if ra.Elapsed > max {
			max = ra.Elapsed
		}
	}
	return max
}

// MeasuredBW is the aggregate bandwidth the application achieved in this
// phase — the BW_MD of Eq. 5–7.
func (ph *Phase) MeasuredBW() units.Bandwidth {
	return units.BandwidthOf(ph.Weight, ph.MeasuredTime())
}

// OffsetFn is the fitted f(initOffset): for rank idP in repetition ph of a
// family,
//
//	initOffset = C + A·idP + B·(ph−1) + D·idP·(ph−1)   (bytes)
//
// Unsplit phases use only C + A·idP.
type OffsetFn struct {
	C, A, B, D int64
	Exact      bool // fit reproduces every observed offset exactly
}

// Eval computes the modeled offset for a rank and family repetition
// (familyRep is 1-based; pass 1 for unsplit phases).
func (f OffsetFn) Eval(idP int, familyRep int) int64 {
	k := int64(familyRep - 1)
	return f.C + f.A*int64(idP) + f.B*k + f.D*int64(idP)*k
}

// Render formats the function in the paper's style, factoring coefficients
// by the request size when they divide evenly (e.g. "rs*idP + rs*(np-1)*(ph-1)").
func (f OffsetFn) Render(rs int64, np int) string {
	var terms []string
	add := func(coef int64, sym string) {
		if coef == 0 {
			return
		}
		switch {
		case rs > 0 && coef%rs == 0 && coef/rs != 1:
			terms = append(terms, fmt.Sprintf("%d*rs%s", coef/rs, sym))
		case rs > 0 && coef == rs:
			terms = append(terms, fmt.Sprintf("rs%s", sym))
		default:
			terms = append(terms, fmt.Sprintf("%d%s", coef, sym))
		}
	}
	add(f.C, "")
	add(f.A, "*idP")
	add(f.B, "*(ph-1)")
	add(f.D, "*idP*(ph-1)")
	if len(terms) == 0 {
		return "0"
	}
	s := strings.Join(terms, " + ")
	if !f.Exact {
		s += " (approx)"
	}
	return s
}

// Result is the phase decomposition of one traced run.
type Result struct {
	Set    *trace.Set
	Phases []*Phase
}

// rankLAPs is one rank's extraction result: its data events and the mined
// patterns over them.
type rankLAPs struct {
	events []trace.Event
	laps   []pattern.LAP
}

// Identify extracts LAPs per rank, groups similar LAPs across ranks, splits
// repetition rounds separated by other MPI events into per-round phases,
// fits offset functions, and returns phases ordered by tick.
//
// Per-rank extraction is embarrassingly parallel (each rank reads only its
// own trace), so it fans out over the sweep pool; the cross-rank grouping
// that follows consumes the results serially in rank order, which keeps the
// group keys, phase order and every fitted function identical at any -j.
func Identify(set *trace.Set) *Result {
	perRank := sweep.Map(make([]struct{}, set.NP), func(p int, _ struct{}) rankLAPs {
		events := set.DataEvents(p)
		return rankLAPs{events: events, laps: pattern.Extract(p, events)}
	})

	g := groupMembers(set.NP, func(p int, emit func(member)) {
		events := perRank[p].events
		for _, l := range perRank[p].laps {
			emit(member{rank: p, lap: l, events: events})
		}
	})
	phases := buildPhases(set, g)
	recordTelemetry(set, phases)
	return &Result{Set: set, Phases: phases}
}

// grouped is the cross-rank similarity grouping: simLAP groups in
// first-seen order.
type grouped struct {
	groups map[string][]member
	order  []string
}

// groupMembers buckets members by occurrence-counted similarity key. visit
// is called once per rank in rank order and emits that rank's members in
// LAP order — the serial consumption that keeps grouping deterministic at
// any worker-pool width.
func groupMembers(np int, visit func(p int, emit func(member))) grouped {
	g := grouped{groups: make(map[string][]member)}
	occ := make(map[string]int)
	emit := func(m member) {
		sig := m.lap.Signature()
		key := strconv.Itoa(occ[sig]) + "#" + sig
		occ[sig]++
		if _, seen := g.groups[key]; !seen {
			g.order = append(g.order, key)
		}
		g.groups[key] = append(g.groups[key], m)
	}
	for p := 0; p < np; p++ {
		clear(occ)
		visit(p, emit)
	}
	return g
}

// buildPhases turns similarity groups into phases: contiguous (or
// single-repetition) groups become one phase, groups whose repetitions are
// separated by other MPI events split into per-round phase families; then
// tick-sort, number, and fit family offset functions.
func buildPhases(set *trace.Set, g grouped) []*Phase {
	var phases []*Phase
	family := 0
	for _, key := range g.order {
		ms := g.groups[key]
		l0 := ms[0].lap
		contig := true
		for i := range ms {
			if !ms[i].contiguous() {
				contig = false
				break
			}
		}
		if contig || l0.Rep == 1 {
			phases = append(phases, buildPhase(set, ms, mergedSpec{rep: l0.Rep}, 0, 0))
			continue
		}
		// Repetitions separated by other MPI events: one phase per
		// round, linked as a family (BT-IO's write rounds).
		family++
		for rep := 0; rep < l0.Rep; rep++ {
			phases = append(phases, buildPhase(set, ms, mergedSpec{rep: 1, round: rep}, family, rep+1))
		}
	}

	sort.SliceStable(phases, func(i, j int) bool { return phases[i].Tick < phases[j].Tick })
	for i, ph := range phases {
		ph.ID = i + 1
	}
	fitFamilies(phases)
	return phases
}

// recordTelemetry reports the decomposition to the run-telemetry layer:
// one "measured" row per phase for the -metrics dump, and — when a
// timeline was requested — one span per phase on a virtual-time track for
// the traced run, carrying the weight/rs/np/bandwidth attributes the
// paper's tables are built from. No-op unless telemetry is enabled, so the
// identification hot path is untouched in normal runs.
func recordTelemetry(set *trace.Set, phases []*Phase) {
	if !obs.Enabled() {
		return
	}
	tr := obs.Timeline().Track("trace "+set.App+"@"+set.Config, "phases")
	for _, ph := range phases {
		start := ph.StartTime()
		elapsed := ph.MeasuredTime()
		obs.RecordPhase(obs.PhaseRecord{
			App:       set.App,
			Config:    set.Config,
			Source:    "measured",
			Phase:     ph.ID,
			NP:        ph.NP,
			RS:        ph.RequestSize(),
			Weight:    ph.Weight,
			Dir:       ph.direction(),
			BWMDMBps:  ph.MeasuredBW().MBpsValue(),
			TimeMDSec: elapsed.Seconds(),
		})
		tr.Span(fmt.Sprintf("phase %d", ph.ID), int64(start), int64(start+elapsed),
			obs.Arg{Key: "weight", Value: ph.Weight},
			obs.Arg{Key: "rs", Value: ph.RequestSize()},
			obs.Arg{Key: "np", Value: ph.NP},
			obs.Arg{Key: "bwMBps", Value: ph.MeasuredBW().MBpsValue()},
			obs.Arg{Key: "dir", Value: ph.direction()})
	}
}

// mergedSpec tells buildPhase which slice of the LAP a phase covers.
type mergedSpec struct {
	rep   int // repetitions inside this phase
	round int // starting repetition (0-based) within the LAP
}

// member is one rank's contribution to a simLAP group — backed either by
// the rank's in-memory events (Identify) or by the streaming aggregates a
// Miner carries once the events are gone (IdentifyStream). Exactly one of
// events/agg is set.
type member struct {
	rank   int
	lap    pattern.LAP
	events []trace.Event       // in-memory path
	agg    *pattern.StreamLAP  // streaming path
}

// contiguous reports whether the member's repetitions are tick-adjacent.
func (m *member) contiguous() bool {
	if m.agg != nil {
		return m.agg.Contiguous()
	}
	return m.lap.ContiguousTicks(m.events)
}

// firstOf returns the tick, start time, and logical offset of slot 0 of
// repetition round. The streaming offset is exact, not reconstructed: the
// miner only keeps a repetition alive while every slot advances by its
// constant displacement, so slot 0 of round r is InitOffset + r·Disp by
// the invariant that admitted the repetition.
func (m *member) firstOf(round int) (tick int64, start units.Duration, off int64) {
	if m.agg == nil {
		ev := m.lap.Event(m.events, round, 0)
		return ev.Tick, ev.Time, ev.Offset
	}
	t := m.lap.Unit[0]
	off = t.InitOffset + int64(round)*t.Disp
	if round == 0 {
		return m.agg.FirstTick, m.agg.FirstStart, off
	}
	r := m.agg.Reps[round]
	return r.Tick, r.Start, off
}

// elapsed sums the member's op durations over rep repetitions starting at
// round. The whole-LAP case is answered from the running aggregate; split
// rounds need the per-repetition detail the rescan pass fills in.
func (m *member) elapsed(round, rep int) units.Duration {
	if m.agg != nil {
		if round == 0 && rep == m.lap.Rep {
			return m.agg.Elapsed
		}
		var d units.Duration
		for r := round; r < round+rep; r++ {
			d += m.agg.Reps[r].Elapsed
		}
		return d
	}
	var d units.Duration
	for r := round; r < round+rep; r++ {
		for s := 0; s < len(m.lap.Unit); s++ {
			d += m.lap.Event(m.events, r, s).Duration
		}
	}
	return d
}

func buildPhase(set *trace.Set, members []member, spec mergedSpec, familyID, familyRep int) *Phase {
	l0 := members[0].lap
	ph := &Phase{
		File:      l0.Unit[0].File,
		Rep:       spec.rep,
		NP:        len(members),
		FamilyID:  familyID,
		FamilyRep: familyRep,
	}
	// Operation slots: physical per-repetition displacement and the
	// slot's physical skew from slot 0 (e.g. MADBench2's steady-state
	// reads run two bins ahead of its writes).
	phys := func(off int64) int64 {
		return set.View(ph.File, l0.Rank).Physical(off)
	}
	slot0 := phys(l0.Unit[0].InitOffset)
	for _, t := range l0.Unit {
		ph.Ops = append(ph.Ops, OpSpec{
			Op:   t.Op,
			Size: t.Size,
			Disp: phys(t.InitOffset+t.Disp) - phys(t.InitOffset),
			Skew: phys(t.InitOffset) - slot0,
		})
		if t.Op.IsCollective() {
			ph.Collective = true
		}
	}
	var unitBytes int64
	for _, op := range ph.Ops {
		unitBytes += op.Size
	}
	ph.Weight = unitBytes * int64(spec.rep) * int64(len(members))
	ph.Tick = int64(1) << 62
	for i := range members {
		m := &members[i]
		tick, start, off := m.firstOf(spec.round)
		if tick < ph.Tick {
			ph.Tick = tick
		}
		ph.Ranks = append(ph.Ranks, RankAccess{
			Rank:       m.rank,
			InitOffset: set.View(ph.File, m.rank).Physical(off),
			Elapsed:    m.elapsed(spec.round, spec.rep),
			Start:      start,
		})
	}
	ph.OffsetFn = fitOffsets(ph.Ranks)
	return ph
}

// fitOffsets computes C + A·idP from observed per-rank offsets (exact
// integer fit when possible).
func fitOffsets(ranks []RankAccess) OffsetFn {
	if len(ranks) == 0 {
		return OffsetFn{Exact: true}
	}
	if len(ranks) == 1 {
		return OffsetFn{C: ranks[0].InitOffset, Exact: true}
	}
	// Least-squares slope over (idP, offset); offsets in real patterns
	// are exactly affine, so verify and flag.
	var n, sx, sy, sxx, sxy float64
	for _, ra := range ranks {
		x, y := float64(ra.Rank), float64(ra.InitOffset)
		n++
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	var a float64
	if den != 0 {
		a = (n*sxy - sx*sy) / den
	}
	A := int64(a + 0.5*sign(a))
	C := ranks[0].InitOffset - A*int64(ranks[0].Rank)
	fn := OffsetFn{C: C, A: A, Exact: true}
	for _, ra := range ranks {
		if fn.Eval(ra.Rank, 1) != ra.InitOffset {
			fn.Exact = false
			break
		}
	}
	return fn
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// fitFamilies lifts per-phase offset fits to the family form with (ph−1)
// terms, Table XI style: B and D come from consecutive rounds and are
// verified across the whole family.
func fitFamilies(phases []*Phase) {
	byFamily := make(map[int][]*Phase)
	for _, ph := range phases {
		if ph.FamilyID > 0 {
			byFamily[ph.FamilyID] = append(byFamily[ph.FamilyID], ph)
		}
	}
	for _, fam := range byFamily {
		sort.Slice(fam, func(i, j int) bool { return fam[i].FamilyRep < fam[j].FamilyRep })
		if len(fam) < 2 {
			continue
		}
		base, next := fam[0].OffsetFn, fam[1].OffsetFn
		if !base.Exact || !next.Exact {
			continue
		}
		full := OffsetFn{
			C: base.C, A: base.A,
			B: next.C - base.C, D: next.A - base.A,
			Exact: true,
		}
		for _, ph := range fam {
			for _, ra := range ph.Ranks {
				if full.Eval(ra.Rank, ph.FamilyRep) != ra.InitOffset {
					full.Exact = false
				}
			}
		}
		if full.Exact {
			for _, ph := range fam {
				fn := full
				ph.OffsetFn = fn
			}
		}
	}
}

// TotalBytes sums phase weights; it must equal the trace's data volume
// (conservation property).
func (r *Result) TotalBytes() int64 {
	var n int64
	for _, ph := range r.Phases {
		n += ph.Weight
	}
	return n
}

// Families groups the result's phases by family id (0 = unsplit, listed
// individually).
func (r *Result) Families() [][]*Phase {
	var out [][]*Phase
	index := make(map[int]int)
	for _, ph := range r.Phases {
		if ph.FamilyID == 0 {
			out = append(out, []*Phase{ph})
			continue
		}
		if i, ok := index[ph.FamilyID]; ok {
			out[i] = append(out[i], ph)
		} else {
			index[ph.FamilyID] = len(out)
			out = append(out, []*Phase{ph})
		}
	}
	return out
}

// FormatTable renders phases in the layout of Table VIII.
func (r *Result) FormatTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-12s %-34s %-5s %-10s %s\n",
		"Phase", "#Oper.", "InitOffset", "Rep", "weight", "tick")
	for _, ph := range r.Phases {
		fmt.Fprintf(&b, "%-6d %-12s %-34s %-5d %-10s %d\n",
			ph.ID,
			fmt.Sprintf("%d %s", ph.OpCount(), ph.direction()),
			ph.OffsetFn.Render(ph.RequestSize(), ph.NP),
			ph.Rep,
			units.FormatBytes(ph.Weight),
			ph.Tick)
	}
	return b.String()
}
