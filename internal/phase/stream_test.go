package phase

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"iophases/internal/sweep"
	"iophases/internal/trace"
)

// identifyBoth runs the in-memory and streaming pipelines over the same
// set (via its Source adapter) and requires deeply identical phases and a
// byte-identical table — the tentpole equivalence at phase granularity.
func identifyBoth(t *testing.T, set *trace.Set) (*Result, *Result) {
	t.Helper()
	inMem := Identify(set)
	streamed, err := IdentifyStream(set.Source())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inMem.Phases, streamed.Phases) {
		t.Fatalf("phases diverge:\n-- in-memory --\n%s\n-- streamed --\n%s",
			inMem.FormatTable(), streamed.FormatTable())
	}
	if inMem.FormatTable() != streamed.FormatTable() {
		t.Fatal("tables diverge")
	}
	return inMem, streamed
}

func TestIdentifyStreamMatchesIdentifyMadbench(t *testing.T) {
	identifyBoth(t, madbenchSet(16))
}

func TestIdentifyStreamMatchesIdentifyBTIO(t *testing.T) {
	// The family-split corpus: repetitions separated by solver ticks force
	// the pass-2 repetition rescan.
	res, _ := identifyBoth(t, btioSet(4, 40, 10612080))
	split := 0
	for _, ph := range res.Phases {
		if ph.FamilyID > 0 {
			split++
		}
	}
	if split == 0 {
		t.Fatal("corpus lost its family-split phases; rescan untested")
	}
}

func TestIdentifyStreamFromDir(t *testing.T) {
	// Through the on-disk formats: save, reopen as a streaming source,
	// identify — still identical to the in-memory decomposition.
	for _, f := range []trace.Format{trace.FormatText, trace.FormatBinary} {
		set := btioSet(4, 10, 40*1024)
		want := Identify(set)
		dir := t.TempDir()
		var err error
		if f == trace.FormatBinary {
			err = set.SaveBinary(dir)
		} else {
			err = set.Save(dir)
		}
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		src, err := trace.OpenDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		got, err := IdentifyStream(src)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if !reflect.DeepEqual(want.Phases, got.Phases) {
			t.Fatalf("%s: phases diverge:\n%s\nvs\n%s", f, want.FormatTable(), got.FormatTable())
		}
	}
}

// TestIdentifyStreamParallelismInvariance is the streaming counterpart of
// the Identify -j pin: both passes fan out, so the result must be deeply
// identical at any worker-pool width.
func TestIdentifyStreamParallelismInvariance(t *testing.T) {
	set := btioSet(9, 5, 40*1024)
	run := func() *Result {
		res, err := IdentifyStream(set.Source())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	prev := sweep.SetConcurrency(1)
	serial := run()
	sweep.SetConcurrency(8)
	wide := run()
	sweep.SetConcurrency(prev)
	if !reflect.DeepEqual(serial.Phases, wide.Phases) {
		t.Errorf("IdentifyStream at -j 1 and -j 8 differ:\n%s\nvs\n%s",
			serial.FormatTable(), wide.FormatTable())
	}
}

func TestIdentifyStreamSynth(t *testing.T) {
	// The synthetic generator used by benchmarks and the CI memory smoke:
	// per-round LAPs plus a family-split dump section. Streamed and
	// materialized extraction must agree here too.
	src, err := trace.Synth(trace.SynthSpec{NP: 4, EventsPerRank: 2000, RoundLen: 128})
	if err != nil {
		t.Fatal(err)
	}
	set, err := trace.ReadSet(src)
	if err != nil {
		t.Fatal(err)
	}
	want := Identify(set)
	got, err := IdentifyStream(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Phases, got.Phases) {
		t.Fatalf("phases diverge:\n%s\nvs\n%s", want.FormatTable(), got.FormatTable())
	}
	var hasFamily bool
	for _, ph := range got.Phases {
		if ph.FamilyID > 0 {
			hasFamily = true
		}
	}
	if !hasFamily {
		t.Fatal("synth trace must exercise the family-split rescan")
	}
}

func TestIdentifyStreamPropagatesErrors(t *testing.T) {
	// A corrupt rank file must surface as an error, not a partial result.
	set := madbenchSet(2)
	dir := t.TempDir()
	if err := set.Save(dir); err != nil {
		t.Fatal(err)
	}
	corruptTextFile(t, dir, 1)
	src, err := trace.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := IdentifyStream(src); err == nil {
		t.Fatal("corrupt rank accepted")
	} else if !strings.Contains(err.Error(), "trace.1.txt") {
		t.Fatalf("error lost file context: %v", err)
	}
}

// corruptTextFile appends a malformed row to rank p's text trace.
func corruptTextFile(t *testing.T, dir string, p int) {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("trace.%d.txt", p))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("not a valid trace row\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
