package phase

import (
	"reflect"
	"testing"

	"iophases/internal/sweep"
)

// TestIdentifyParallelismInvariance pins the determinism contract of the
// parallel extraction fan-out: Identify must produce a deeply identical
// Result regardless of worker-pool width, because per-rank extraction
// results are merged in rank order no matter which worker finished first.
func TestIdentifyParallelismInvariance(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func() *Result
	}{
		{"madbench16", func() *Result { return Identify(madbenchSet(16)) }},
		{"btio9", func() *Result { return Identify(btioSet(9, 5, 40*1024)) }},
	} {
		prev := sweep.SetConcurrency(1)
		serial := tc.run()
		sweep.SetConcurrency(8)
		wide := tc.run()
		sweep.SetConcurrency(prev)
		if !reflect.DeepEqual(serial, wide) {
			t.Errorf("%s: Identify at -j 1 and -j 8 differ:\n-- j1 --\n%s\n-- j8 --\n%s",
				tc.name, serial.FormatTable(), wide.FormatTable())
		}
	}
}
