package fastpath

import (
	"iophases/internal/cluster"
	"iophases/internal/fsim"
	"iophases/internal/netsim"
	"iophases/internal/units"
)

// walker advances a single rank's virtual clock through the filesystem
// call sequence an admissible run issues. Compute nodes and I/O nodes are
// distinct fabric endpoints in every built cluster, so every request
// crosses the network at the uncontended path cost; at one rank, barriers
// and collective syncs are free (zero tree phases, immediate rendezvous).
// All costs flow through the sanctioned seams (net.PathCost, the server
// sim's device clocks, the fsim meta cost carried in metaCost) — see the
// package comment's "Sanctioned cost seams" and the fpfidelity analyzer.
type walker struct {
	net      netsim.LinkParams
	metaCost units.Duration
	maxReq   int64 // fsim MaxServerRequest (0 = unlimited)
	srv      *serverSim
	now      units.Duration
}

func newWalker(spec cluster.Spec) *walker {
	mc := spec.Storage.MetaCost
	if mc == 0 {
		mc = fsim.DefaultMetaCost
	}
	return &walker{
		net:      spec.Net,
		metaCost: mc,
		maxReq:   spec.Storage.ServerRequest,
		srv:      newServerSim(spec.Storage),
	}
}

// send charges one fabric transfer between the client and the target.
func (w *walker) send(size int64) { w.now += w.net.PathCost(size) }

// metaOp charges one metadata round trip (fsim.metaOp): a 1 KiB request to
// the metadata node plus the service time.
func (w *walker) metaOp() {
	w.send(1024)
	w.now += w.metaCost
}

// open charges an MPI-IO collective open at one rank: the filesystem
// create-or-open metadata operation (the collective sync is free).
func (w *walker) open() { w.metaOp() }

// close charges an MPI-IO collective close at one rank.
func (w *walker) close() { w.metaOp() }

// writeExtent walks one client write extent through fsim's chunkOp: with a
// single target the extent is one chunk at its own file offset, issued to
// the server in MaxServerRequest pieces — transfer to the target, then the
// server-side write, sequentially in the client's process.
func (w *walker) writeExtent(offset, size int64) {
	step := w.maxReq
	if step <= 0 || step > size {
		step = size
	}
	for done := int64(0); done < size; done += step {
		n := step
		if size-done < n {
			n = size - done
		}
		w.send(n)
		w.now = w.srv.write(w.now, offset+done, n)
		if w.srv.bail {
			return
		}
	}
}

// readExtent walks one client read extent: per server piece, a 256-byte
// request message, the server-side read, and the data transfer back.
func (w *walker) readExtent(offset, size int64) {
	step := w.maxReq
	if step <= 0 || step > size {
		step = size
	}
	for done := int64(0); done < size; done += step {
		n := step
		if size-done < n {
			n = size - done
		}
		w.send(256)
		w.now = w.srv.read(w.now, offset+done, n)
		if w.srv.bail {
			return
		}
		w.send(n)
	}
}

// fsync charges MPI_File_sync: drain every cache-wrapped target (one here).
func (w *walker) fsync() { w.now = w.srv.drain(w.now) }

// dropCaches charges the flush-and-invalidate between benchmark passes.
func (w *walker) dropCaches() {
	w.now = w.srv.drain(w.now)
	w.srv.invalidate()
}

// bailed reports whether the walk hit a situation only the DES can price.
func (w *walker) bailed() bool { return w.srv.bail }
