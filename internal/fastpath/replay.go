package fastpath

import (
	"iophases/internal/cluster"
	"iophases/internal/core"
	"iophases/internal/units"
)

// ReplayPhase computes a phase replay's busy time analytically: the exact
// operation sequence replay.Phase issues at one rank — per repetition,
// every slot at its modeled offset — priced by the same walker as IOR. ok
// is false on inadmissible workloads or dynamic bailouts; elapsed matches
// replay.Phase's Elapsed bit-exactly when ok.
//
// The busy window mirrors the replayer's: it opens after the file open and
// closes before the collective close, so neither metadata operation is
// included. The write-back cache is not drained — the replay measures
// client-visible time, dirty data and all, exactly as the DES does.
func ReplayPhase(spec cluster.Spec, m *core.Model, pm *core.PhaseModel) (units.Duration, bool) {
	if admitReplay(spec, m, pm) != "" {
		cBailouts.Inc()
		return 0, false
	}
	w := newWalker(spec)
	fn := pm.OffsetFn()
	famRep := pm.FamilyRep
	if famRep == 0 {
		famRep = 1
	}

	w.open()
	base := fn.Eval(0, famRep)
	start := w.now
	for rep := 0; rep < pm.Rep; rep++ {
		for _, op := range pm.Ops {
			off := base + int64(rep)*op.Disp + op.Skew
			if op.Size == 0 {
				// Zero-size slots map to no physical extents: free.
				continue
			}
			if op.Size < 0 || off < 0 {
				// The DES panics on these; bail so it still does.
				cBailouts.Inc()
				return 0, false
			}
			if op.Op.IsWrite() {
				w.writeExtent(off, op.Size)
			} else {
				w.readExtent(off, op.Size)
			}
			if w.bailed() {
				cBailouts.Inc()
				return 0, false
			}
		}
	}
	busy := w.now - start
	cHits.Inc()
	return busy, true
}
