// Package fastpath computes IOR runs and phase replays in closed form when
// the workload provably cannot contend: one rank, one storage target, no
// fault schedule. Under those conditions the discrete-event simulation
// degenerates into a single chain of operations (plus at most one
// background flusher with fully determined completion times), so the
// virtual clock can be advanced arithmetically — same formulas, same
// stateful head/cache bookkeeping, same integer rounding — without building
// an engine, spawning coroutines or scheduling events.
//
// Exactness is structural, not approximate: the walkers call the very
// functions the simulated devices call (netsim.LinkParams.PathCost,
// disksim.HeadClock/ArrayClock, disksim.CacheLedger/RecentIndex,
// ior.Params.Offset/ChunkOrder), so a formula change in a device is
// automatically a formula change here. Whenever the walker meets a
// situation whose event interleaving it cannot reproduce bit-exactly — a
// virtual-time tie with the flusher, a cache-pressure stall, a read racing
// a flush — it bails out and the caller falls back to the full DES.
// ModeVerify runs both and panics on any divergence; the corpus tests in
// fastpath_test.go compare against the DES for every built-in
// configuration.
//
// # Sanctioned cost seams
//
// "Same formulas" is machine-enforced: the iovet fpfidelity analyzer
// (DESIGN.md §15) forbids this package from manufacturing costs locally.
// Every units.Duration/units.Bandwidth here must originate from the
// shared seams the DES itself uses —
//
//   - netsim.LinkParams.PathCost: network transfer cost
//   - disksim.HeadClock/ArrayClock OpTime: device service times
//   - fsim meta/stripe accounting (MetaCost, MaxServerRequest, striping)
//   - ior.Params geometry (Offset/ChunkOrder/request sizes)
//   - units.TransferTime / units.BandwidthOf: the shared conversion pair
//
// — and may only be aggregated (summed, compared, subtracted). Raw
// conversions (units.Duration(n)), scaling arithmetic (d*2, b/2),
// constructor calls (units.MBps, units.FromSeconds) and raw cost
// constants (units.Millisecond) are build failures, so a re-derived cost
// expression cannot silently drift from the simulation it must match
// bit-exactly.
package fastpath

import (
	"fmt"
	"sync/atomic"

	"iophases/internal/obs"
)

// Mode selects how callers use the fast path.
type Mode int32

const (
	// ModeDefault resolves to the package-wide default at use time.
	ModeDefault Mode = iota
	// ModeOff always runs the full DES.
	ModeOff
	// ModeOn uses the analytic result when the workload is admissible,
	// falling back to the DES otherwise.
	ModeOn
	// ModeVerify runs both paths and panics if the results differ in any
	// field — the divergence tripwire CI runs the quick suite under.
	ModeVerify
)

// defaultMode is the package-wide default consulted by ModeDefault. The
// fast path is exact (verify-mode checked), so it is on by default.
var defaultMode atomic.Int32

func init() { defaultMode.Store(int32(ModeOn)) }

// SetDefault installs the package-wide default mode. ModeDefault is not a
// valid default (it would self-reference).
func SetDefault(m Mode) {
	if m == ModeDefault {
		panic("fastpath: ModeDefault is not a valid default")
	}
	defaultMode.Store(int32(m))
}

// DefaultMode reports the package-wide default.
func DefaultMode() Mode { return Mode(defaultMode.Load()) }

// Resolve maps ModeDefault to the package default; other modes pass
// through.
func (m Mode) Resolve() Mode {
	if m == ModeDefault {
		return DefaultMode()
	}
	return m
}

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeDefault:
		return "default"
	case ModeOff:
		return "off"
	case ModeOn:
		return "on"
	case ModeVerify:
		return "verify"
	default:
		return fmt.Sprintf("Mode(%d)", int32(m))
	}
}

// ParseMode parses a CLI flag value ("off", "on", "verify").
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off":
		return ModeOff, nil
	case "on":
		return ModeOn, nil
	case "verify":
		return ModeVerify, nil
	default:
		return ModeDefault, fmt.Errorf("fastpath: mode %q (want off|on|verify)", s)
	}
}

// Counters live on the default registry (not the Hot gate) so hits and
// bailouts are observable without enabling run telemetry — the quick-suite
// acceptance check reads them directly.
var (
	cHits     = obs.Default().Counter("fastpath/hits")
	cBailouts = obs.Default().Counter("fastpath/bailouts")
)

// Stats reports cumulative fast-path outcomes: runs answered analytically
// and runs that bailed to the DES (statically or dynamically).
func Stats() (hits, bailouts int64) {
	return cHits.Value(), cBailouts.Value()
}
