package fastpath

import (
	"iophases/internal/cluster"
	"iophases/internal/ior"
	"iophases/internal/units"
)

// RunIOR computes an IOR run analytically. ok is false when the workload
// is inadmissible or the walk hit a dynamic bailout; the caller must then
// run the full DES. When ok, the Result is bit-identical to ior.Run's —
// every field, including the Params echo with the default file name filled
// in — which ModeVerify asserts.
func RunIOR(spec cluster.Spec, p ior.Params) (ior.Result, bool) {
	if admitIOR(spec, p) != "" {
		cBailouts.Inc()
		return ior.Result{}, false
	}
	if p.FileName == "" {
		p.FileName = "/ior.testfile"
	}
	w := newWalker(spec)
	chunks := int(p.BlockSize / p.Transfer)
	order := p.ChunkOrder(0)

	w.open()
	// One pass mirrors RunOn's: at a single rank the enclosing barriers
	// are free, ReorderRead maps rank 0 back to itself, and each transfer
	// is one contiguous extent at the layout offset.
	pass := func(write bool) (start, end units.Duration) {
		start = w.now
		for seg := 0; seg < p.Segments; seg++ {
			for _, ch := range order {
				off := p.Offset(0, seg, ch)
				if write {
					w.writeExtent(off, p.Transfer)
				} else {
					w.readExtent(off, p.Transfer)
				}
				if w.bailed() {
					return start, w.now
				}
			}
		}
		if write && p.Fsync {
			w.fsync()
		}
		return start, w.now
	}

	var writeStart, writeEnd, readStart, readEnd units.Duration
	if p.DoWrite {
		writeStart, writeEnd = pass(true)
	}
	if p.DoWrite && p.DoRead && !w.bailed() {
		w.dropCaches()
	}
	if p.DoRead && !w.bailed() {
		readStart, readEnd = pass(false)
	}
	if w.bailed() {
		cBailouts.Inc()
		return ior.Result{}, false
	}
	w.close()

	res := ior.Result{Params: p}
	vol := p.AggregateBytes()
	ops := int64(chunks) * int64(p.Segments) * int64(p.NP)
	if p.DoWrite {
		res.WriteTime = writeEnd - writeStart
		res.WriteBW = units.BandwidthOf(vol, res.WriteTime)
		res.WriteOps = ops
		if sec := res.WriteTime.Seconds(); sec > 0 {
			res.IOPSw = float64(ops) / sec
		}
	}
	if p.DoRead {
		res.ReadTime = readEnd - readStart
		res.ReadBW = units.BandwidthOf(vol, res.ReadTime)
		res.ReadOps = ops
		if sec := res.ReadTime.Seconds(); sec > 0 {
			res.IOPSr = float64(ops) / sec
		}
	}
	cHits.Inc()
	return res, true
}
