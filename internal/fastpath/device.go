package fastpath

import (
	"iophases/internal/cluster"
	"iophases/internal/disksim"
	"iophases/internal/units"
)

// serverSim is the analytic model of one storage target: the device clock
// plus, when the spec configures a write-back cache, the client-visible
// cache state and the background flusher's completion schedule. Device
// service times come exclusively from the disksim clocks (a sanctioned
// fpfidelity seam); this file never computes a duration of its own.
//
// With a single rank the flusher is the only concurrent actor in the whole
// simulation, and its behavior is fully determined: it gathers elevator
// chunks from the dirty ledger and writes them back-to-back to the device,
// so every completion time follows arithmetically from the previous one.
// serverSim replays that schedule lazily — completions are applied when the
// client's clock passes them — which reproduces the DES interleaving
// exactly except at virtual-time ties, where event order would depend on
// scheduling sequence numbers the walker does not track. Ties, cache
// pressure (a deposit larger than free space, which would park the client)
// and device reads racing a flush all set bail instead of guessing.
type serverSim struct {
	dev disksim.DeviceClock

	hasCache bool
	capacity int64
	memBW    units.Bandwidth
	ledger   *disksim.CacheLedger // dirty extents not yet gathered
	recent   *disksim.RecentIndex
	level    int64 // dirty bytes: ledger plus the in-flight chunk

	fBusy bool           // a gathered chunk is being written to the device
	fDone units.Duration // its completion time
	fN    int64          // its size

	bail bool
}

// newServerSim builds the analytic target for a spec's storage side.
func newServerSim(st cluster.StorageSpec) *serverSim {
	s := &serverSim{dev: deviceClock(st)}
	if st.Cache != nil {
		s.hasCache = true
		s.capacity = st.Cache.Capacity
		s.memBW = st.Cache.MemBW
		s.ledger = disksim.NewCacheLedger(st.Cache.Chunk)
		s.recent = disksim.NewRecentIndex(st.Cache.Capacity)
	}
	return s
}

// deviceClock mirrors cluster.Build's per-I/O-node device assembly: RAID
// array, JBOD-as-RAID0 concatenation, or a bare disk.
func deviceClock(st cluster.StorageSpec) disksim.DeviceClock {
	switch {
	case st.RAID != nil:
		return disksim.NewArrayClock(st.RAID.Level, st.DisksPerNode, st.RAID.StripeUnit, st.Disk)
	case st.DisksPerNode > 1:
		return disksim.NewArrayClock(disksim.RAID0, st.DisksPerNode, 64*units.GiB, st.Disk)
	default:
		return disksim.NewHeadClock(st.Disk)
	}
}

// advance applies every flusher completion strictly before until. A
// completion landing exactly at until is a virtual-time tie: whether it
// fires before or after the client's next action depends on event sequence
// numbers, so the walker bails rather than pick an order.
func (s *serverSim) advance(until units.Duration) {
	for s.fBusy && s.fDone < until {
		s.complete()
	}
	if s.fBusy && s.fDone == until {
		s.bail = true
	}
}

// complete applies the in-flight chunk's completion and immediately starts
// the next gather if dirty data remains — the flusher loop's zero-gap
// chaining. Returns the completion time for drain bookkeeping.
func (s *serverSim) complete() units.Duration {
	t := s.fDone
	s.level -= s.fN
	s.fBusy = false
	if s.ledger.Dirty() {
		s.startFlusher(t)
	}
	return t
}

// startFlusher gathers the next elevator chunk at time t and schedules its
// device write, exactly as the spawned flusher process does.
func (s *serverSim) startFlusher(t units.Duration) {
	off, n := s.ledger.Gather()
	s.fN = n
	s.fBusy = true
	s.fDone = t + s.dev.OpTime(off, n, true)
}

// write advances the clock through one server-side write landing at time t
// and returns the completion time. Without a cache the client process
// performs the device write itself; with one, the deposit is absorbed at
// memory speed and the flusher is kicked — unless free space cannot take
// the whole deposit, which in the DES splits the write and parks the
// client behind flush wakeups (bail).
func (s *serverSim) write(t units.Duration, offset, size int64) units.Duration {
	if !s.hasCache {
		return t + s.dev.OpTime(offset, size, true)
	}
	s.advance(t)
	if s.bail {
		return t
	}
	if s.capacity-s.level < size {
		s.bail = true // cache pressure: the DES would split and park
		return t
	}
	end := t + units.TransferTime(size, s.memBW)
	// Completions inside the memcpy window fire before the deposit is
	// recorded, so they gather from the ledger as it stands now.
	s.advance(end)
	if s.bail {
		return end
	}
	s.level += size
	s.ledger.Add(offset, size)
	s.recent.Remember(offset, size)
	if !s.fBusy && s.ledger.Dirty() {
		s.startFlusher(end)
	}
	return end
}

// read advances the clock through one server-side read landing at time t.
// Recent-index hits cost a memory copy; misses go to the device, but only
// when the cache is fully clean — a device read overlapping a flush would
// contend on the member queues, which only the DES prices.
func (s *serverSim) read(t units.Duration, offset, size int64) units.Duration {
	if !s.hasCache {
		return t + s.dev.OpTime(offset, size, false)
	}
	s.advance(t)
	if s.bail {
		return t
	}
	if s.recent.Hit(offset, size) {
		return t + units.TransferTime(size, s.memBW)
	}
	if s.fBusy || s.level > 0 {
		s.bail = true
		return t
	}
	return t + s.dev.OpTime(offset, size, false)
}

// drain runs the flusher to completion and returns when the last dirty
// byte reaches the device (fsync). Already-clean caches return t: the DES
// Drain loop exits without parking.
func (s *serverSim) drain(t units.Duration) units.Duration {
	if !s.hasCache {
		return t
	}
	end := t
	for s.fBusy {
		if done := s.complete(); done > end {
			end = done
		}
	}
	if s.level != 0 {
		// Dirty data with no flush in flight would mean a deposit never
		// kicked the flusher — impossible by construction; bail rather
		// than report a time that cannot be right.
		s.bail = true
	}
	return end
}

// invalidate drops the recently-written index (DropCaches).
func (s *serverSim) invalidate() {
	if s.hasCache {
		s.recent.Invalidate()
	}
}
