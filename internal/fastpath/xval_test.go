// Cross-validation of the analytic fast path against the full DES, from an
// external test package: the replay package imports fastpath (PhaseMode
// dispatches here), so a test that runs both sides must live outside the
// import cycle.
package fastpath_test

import (
	"testing"

	"iophases/internal/cluster"
	"iophases/internal/core"
	"iophases/internal/fastpath"
	"iophases/internal/faults"
	"iophases/internal/ior"
	"iophases/internal/replay"
	"iophases/internal/trace"
	"iophases/internal/units"
)

// OpModel aliases keep the case table readable.
type OpModel = core.OpModel

// phaseModels are synthetic single-rank phase models covering the
// op-sequence surface the replayer executes: single-op and mixed phases,
// repetition displacement, inter-slot skew (MADBench2's phase 3 shape),
// offset bases, and family repetition scaling.
func phaseModels() []*core.PhaseModel {
	mk := func(id int, rep int, weight int64, ops ...OpModel) *core.PhaseModel {
		return &core.PhaseModel{ID: id, NP: 1, Rep: rep, Weight: weight, Ops: ops,
			OffsetOK: true}
	}
	w := func(size, disp, skew int64) OpModel {
		return OpModel{Op: trace.OpWriteAt, Size: size, Disp: disp, Skew: skew}
	}
	r := func(size, disp, skew int64) OpModel {
		return OpModel{Op: trace.OpReadAt, Size: size, Disp: disp, Skew: skew}
	}
	cases := []*core.PhaseModel{
		mk(0, 8, 8*units.MiB, w(units.MiB, units.MiB, 0)),
		mk(1, 8, 8*units.MiB, r(units.MiB, units.MiB, 0)),
		// Mixed write+read per repetition — the shape IOR cannot replay.
		mk(2, 6, 12*units.MiB, w(units.MiB, 2*units.MiB, 0), r(units.MiB, 2*units.MiB, units.MiB)),
		// Read running two bins ahead of the write (MADBench2 phase 3).
		mk(3, 4, 8*units.MiB, w(units.MiB, units.MiB, 0), r(units.MiB, units.MiB, 2*units.MiB)),
		// Request sizes crossing the server-request clamp.
		mk(4, 3, 24*units.MiB, w(4*units.MiB, 4*units.MiB, 0)),
		// Small requests below every boundary.
		mk(5, 16, units.MiB, w(64*units.KiB, 64*units.KiB, 0)),
		// Zero-size slot mixed in: free on both paths.
		mk(6, 4, 4*units.MiB, w(units.MiB, units.MiB, 0), w(0, 0, 0)),
	}
	// Offset base and family repetition variants.
	fam := mk(7, 4, 4*units.MiB, w(units.MiB, units.MiB, 0))
	fam.OffsetC = 16 * units.MiB
	fam.FamilyID = 1
	fam.FamilyRep = 3
	cases = append(cases, fam)
	return cases
}

// TestReplayPhaseMatchesDES cross-validates ReplayPhase against the full
// replayer for every built-in configuration and phase case: when the fast
// path answers, the busy time must be bit-identical to replay.PhaseMode
// with the fast path forced off.
func TestReplayPhaseMatchesDES(t *testing.T) {
	for _, spec := range cluster.Presets() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			m := &core.Model{App: "xval", NP: 1, AccessType: "shared"}
			hits := 0
			for _, pm := range phaseModels() {
				fast, ok := fastpath.ReplayPhase(spec, m, pm)
				if !ok {
					continue
				}
				hits++
				des, err := replay.PhaseMode(spec, m, pm, fastpath.ModeOff)
				if err != nil {
					t.Fatalf("phase %d: %v", pm.ID, err)
				}
				if fast != des.Elapsed {
					t.Errorf("%s phase %d: fast %v des %v", spec.Name, pm.ID, fast, des.Elapsed)
				}
			}
			admissible := effectiveStripes(spec) == 1
			if admissible && hits == 0 {
				t.Errorf("%s: no fast-path hits on an admissible configuration", spec.Name)
			}
			if !admissible && hits != 0 {
				t.Errorf("%s: %d hits on an inadmissible configuration", spec.Name, hits)
			}
		})
	}
}

// TestVerifyModeAgrees runs PhaseMode in verify mode — which panics on any
// fast/DES divergence — across the whole corpus, and checks the result
// matches the forced-off DES result exactly.
func TestVerifyModeAgrees(t *testing.T) {
	for _, spec := range cluster.Presets() {
		m := &core.Model{App: "xval", NP: 1, AccessType: "shared"}
		for _, pm := range phaseModels() {
			got, err := replay.PhaseMode(spec, m, pm, fastpath.ModeVerify)
			if err != nil {
				t.Fatalf("%s phase %d: %v", spec.Name, pm.ID, err)
			}
			want, err := replay.PhaseMode(spec, m, pm, fastpath.ModeOff)
			if err != nil {
				t.Fatalf("%s phase %d: %v", spec.Name, pm.ID, err)
			}
			if got != want {
				t.Errorf("%s phase %d: verify %+v off %+v", spec.Name, pm.ID, got, want)
			}
		}
	}
}

// TestFaultPresetsBail pins the admission rule's first gate: any fault
// schedule — all five built-in presets — makes both entry points bail, so
// degraded-mode analysis always runs the full DES.
func TestFaultPresetsBail(t *testing.T) {
	names := faults.PresetNames()
	if len(names) != 5 {
		t.Fatalf("expected 5 fault presets, got %v", names)
	}
	p := ior.Params{NP: 1, BlockSize: units.MiB, Transfer: 256 * units.KiB,
		Segments: 1, DoWrite: true, DoRead: true, Fsync: true}
	m := &core.Model{App: "xval", NP: 1, AccessType: "shared"}
	pm := phaseModels()[0]
	for _, name := range names {
		spec := cluster.ConfigA()
		sched, ok := faults.Preset(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		spec.Faults = sched
		if _, ok := fastpath.RunIOR(spec, p); ok {
			t.Errorf("RunIOR admitted faulted spec (preset %s)", name)
		}
		if _, ok := fastpath.ReplayPhase(spec, m, pm); ok {
			t.Errorf("ReplayPhase admitted faulted spec (preset %s)", name)
		}
	}
}

func effectiveStripes(spec cluster.Spec) int {
	n := spec.Storage.IONodes
	sc := spec.Storage.FileStripeCount
	if sc <= 0 || sc > n {
		return n
	}
	return sc
}
