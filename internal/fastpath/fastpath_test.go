package fastpath

import (
	"reflect"
	"testing"

	"iophases/internal/cluster"
	"iophases/internal/ior"
	"iophases/internal/units"
)

// iorCases is the parameter corpus: every axis of the Table III surface an
// admissible (np=1, independent) run can exercise, with sizes crossing the
// server-request, stripe-unit and flush-chunk boundaries.
func iorCases() []ior.Params {
	return []ior.Params{
		{NP: 1, BlockSize: 4 * units.MiB, Transfer: 256 * units.KiB, Segments: 2, DoWrite: true, DoRead: true, Fsync: true},
		{NP: 1, BlockSize: 8 * units.MiB, Transfer: units.MiB, Segments: 1, DoWrite: true, Fsync: true},
		{NP: 1, BlockSize: 2 * units.MiB, Transfer: 64 * units.KiB, Segments: 3, DoWrite: true, DoRead: true},
		{NP: 1, BlockSize: 4 * units.MiB, Transfer: 128 * units.KiB, Segments: 2, DoWrite: true, DoRead: true, Fsync: true, RandomOrder: true, Seed: 7},
		{NP: 1, BlockSize: 4 * units.MiB, Transfer: 512 * units.KiB, Segments: 2, DoWrite: true, DoRead: true, Fsync: true, Interleaved: true},
		{NP: 1, BlockSize: 4 * units.MiB, Transfer: 256 * units.KiB, Segments: 1, DoWrite: true, DoRead: true, Fsync: true, FilePerProc: true},
		{NP: 1, BlockSize: 16 * units.MiB, Transfer: 4 * units.MiB, Segments: 1, DoWrite: true, DoRead: true, Fsync: true, ReorderRead: true},
		{NP: 1, BlockSize: 1 * units.MiB, Transfer: 16 * units.KiB, Segments: 1, DoWrite: false, DoRead: true},
		{NP: 1, BlockSize: 3 * units.MiB, Transfer: 96 * units.KiB, Segments: 2, DoWrite: true, DoRead: true, Fsync: true},
	}
}

// TestRunIORMatchesDES cross-validates the analytic result against the full
// DES for every built-in configuration and every corpus case: when the fast
// path answers, the Result must be bit-identical.
func TestRunIORMatchesDES(t *testing.T) {
	for _, spec := range cluster.Presets() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			hits := 0
			for _, p := range iorCases() {
				fast, ok := RunIOR(spec, p)
				if !ok {
					continue
				}
				hits++
				des := ior.Run(spec, p)
				if !reflect.DeepEqual(fast, des) {
					t.Errorf("%s %+v:\n fast %+v\n  des %+v", spec.Name, p, fast, des)
				}
			}
			admissible := fsimStripeCount(spec) == 1
			if admissible && hits == 0 {
				t.Errorf("%s: no fast-path hits on an admissible configuration", spec.Name)
			}
			if !admissible && hits != 0 {
				t.Errorf("%s: %d hits on an inadmissible configuration", spec.Name, hits)
			}
		})
	}
}

func fsimStripeCount(spec cluster.Spec) int {
	n := spec.Storage.IONodes
	sc := spec.Storage.FileStripeCount
	if sc <= 0 || sc > n {
		return n
	}
	return sc
}
