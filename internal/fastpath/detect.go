package fastpath

import (
	"iophases/internal/cluster"
	"iophases/internal/core"
	"iophases/internal/disksim"
	"iophases/internal/fsim"
	"iophases/internal/ior"
)

// admissionVersion tags the static decision rule. Bump it whenever the
// admissibility predicate changes so simcache fingerprints that fold the
// decision never alias across rule revisions.
const admissionVersion = "v1"

// specReason reports why a cluster spec is statically inadmissible, or ""
// when a single-rank workload on it is contention-free. The build-validity
// checks mirror the panics of cluster.Build and the device constructors: a
// spec the DES would refuse to build must bail so the fall-back path
// preserves the panic-on-bad-input behavior.
func specReason(spec cluster.Spec) string {
	if spec.Faults != nil {
		return "faults"
	}
	st := spec.Storage
	switch {
	case spec.ComputeNodes <= 0 || spec.CoresPerNode <= 0,
		st.IONodes <= 0 || st.DisksPerNode <= 0,
		st.Disk.SeqReadBW <= 0 || st.Disk.SeqWriteBW <= 0,
		st.FSStripe <= 0,
		spec.Net.Bandwidth <= 0:
		return "badspec"
	}
	if r := st.RAID; r != nil {
		if r.StripeUnit <= 0 || st.DisksPerNode < 2 ||
			(r.Level == disksim.RAID5 && st.DisksPerNode < 3) {
			return "badspec"
		}
	}
	if c := st.Cache; c != nil {
		if c.Capacity <= 0 || c.MemBW <= 0 || c.Chunk <= 0 {
			return "badspec"
		}
	}
	// Every file must live wholly on one target: with more, extents split
	// across servers and the per-target transfers genuinely overlap (and
	// contend on the client NIC), which only the DES prices.
	if fsim.EffectiveStripeCount(st.FileStripeCount, st.IONodes) != 1 {
		return "stripe"
	}
	return ""
}

// admitIOR reports why an IOR run is statically inadmissible, or "".
func admitIOR(spec cluster.Spec, p ior.Params) string {
	if r := specReason(spec); r != "" {
		return r
	}
	if p.TraceRun {
		return "trace"
	}
	if p.Validate() != nil {
		return "invalid"
	}
	if p.NP != 1 {
		return "np"
	}
	if p.Collective {
		return "collective"
	}
	return ""
}

// admitReplay reports why a phase replay is statically inadmissible, or "".
func admitReplay(spec cluster.Spec, m *core.Model, pm *core.PhaseModel) string {
	if r := specReason(spec); r != "" {
		return r
	}
	if pm.NP != 1 {
		return "np"
	}
	if pm.Collective {
		return "collective"
	}
	return ""
}

// DecisionTag is the pure, mode-independent summary of the static
// admission decision for an IOR run: "v1:ok" when admissible, "v1:<reason>"
// otherwise. simcache folds it into result fingerprints so cache entries
// stay keyed to the decision rule in force, never to the mode a result was
// computed under.
func DecisionTag(spec cluster.Spec, p ior.Params) string {
	if r := admitIOR(spec, p); r != "" {
		return admissionVersion + ":" + r
	}
	return admissionVersion + ":ok"
}
