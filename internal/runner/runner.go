// Package runner glues a cluster, a simulated MPI job, the MPI-IO layer
// and an application program into one characterization run: build the
// cluster fresh, run the program on np ranks, and hand back the PAS2P-style
// trace set, the elapsed virtual time, and (optionally) device-level
// monitoring samples.
package runner

import (
	"iophases/internal/cluster"
	"iophases/internal/disksim"
	"iophases/internal/monitor"
	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/trace"
	"iophases/internal/units"
)

// ProgramFactory builds the per-rank program once the MPI-IO system
// exists; application packages provide these (madbench.Program,
// btio.Program with params bound).
type ProgramFactory func(sys *mpiio.System) func(r *mpi.Rank)

// Options select optional run products.
type Options struct {
	// Trace enables the interposition tracer.
	Trace bool
	// Placement selects the rank-to-node mapping ("" = block).
	Placement cluster.Placement
	// MonitorInterval, when positive, samples all member disks of every
	// I/O node at this virtual-time interval (iostat-style).
	MonitorInterval units.Duration
	// DrainAtEnd drains server write-back caches after the program
	// completes and includes that time in Elapsed (umount semantics).
	DrainAtEnd bool
}

// Result is the product of one run.
type Result struct {
	Cluster *cluster.Cluster
	Set     *trace.Set // nil unless Options.Trace
	Elapsed units.Duration
	Monitor *monitor.Monitor // nil unless monitoring was on
}

// Job is one application in a concurrent multi-job run.
type Job struct {
	Name string
	NP   int
	Prog ProgramFactory
	// StartDelay holds the job back (queued) before its ranks begin.
	StartDelay units.Duration
}

// JobResult is one job's products from a concurrent run.
type JobResult struct {
	Name    string
	Set     *trace.Set
	Start   units.Duration // first activity (== StartDelay)
	End     units.Duration // last rank finished
	Elapsed units.Duration // End − Start
}

// RunConcurrent executes several jobs on ONE cluster simultaneously —
// sharing the interconnect, the I/O nodes and the filesystem — and
// reports each job's span plus the shared cluster (fully run, for
// subsystem-total inspection: FS.Traffic, Fabric.WireStats, disk
// counters). Jobs get disjoint compute-node core allocations in order (a
// space-shared batch system); the contention they exert on each other is
// exactly the storage-level interference the paper's phase view is meant
// to help plan around.
func RunConcurrent(spec cluster.Spec, jobs []Job, traceJobs bool) ([]JobResult, *cluster.Cluster) {
	c := cluster.Build(spec)
	results := make([]JobResult, len(jobs))
	coreBase := 0
	for i, job := range jobs {
		if job.NP <= 0 {
			panic("runner: job without ranks")
		}
		nodes := make([]string, job.NP)
		for r := 0; r < job.NP; r++ {
			core := coreBase + r
			if core >= spec.MaxProcs() {
				panic("runner: jobs exceed cluster capacity")
			}
			nodes[r] = c.ComputeNodes()[core/spec.CoresPerNode]
		}
		coreBase += job.NP
		w := mpi.NewWorld(c.Eng, c.Fabric, nodes)
		if spec.Net.Latency > 0 {
			w.SetLatency(spec.Net.Latency * 5)
		}
		sys := mpiio.NewSystem(c.FS, w)
		if traceJobs {
			sys.Tracer = trace.NewSet(job.Name, spec.Name, job.NP)
		}
		program := job.Prog(sys)
		i := i
		delay := job.StartDelay
		results[i] = JobResult{Name: job.Name, Start: delay, Set: sys.Tracer}
		w.Launch(func(r *mpi.Rank) {
			if delay > 0 {
				r.Compute(delay)
			}
			program(r)
		}, func() {
			results[i].End = c.Eng.Now()
		})
	}
	c.Eng.Run()
	for i := range results {
		results[i].Elapsed = results[i].End - results[i].Start
	}
	return results, c
}

// Run builds spec, runs prog on np ranks and returns the products. Every
// call uses a fresh cluster, so runs never contaminate each other.
func Run(spec cluster.Spec, np int, appName string, prog ProgramFactory, opts Options) Result {
	c := cluster.Build(spec)
	placement := opts.Placement
	if placement == "" {
		placement = cluster.PlaceBlock
	}
	nodes := make([]string, np)
	for i := range nodes {
		nodes[i] = c.Place(i, np, placement)
	}
	w := mpi.NewWorld(c.Eng, c.Fabric, nodes)
	if spec.Net.Latency > 0 {
		w.SetLatency(spec.Net.Latency * 5) // software stack on top of wire latency
	}
	sys := mpiio.NewSystem(c.FS, w)
	if opts.Trace {
		sys.Tracer = trace.NewSet(appName, spec.Name, np)
	}
	var mon *monitor.Monitor
	if opts.MonitorInterval > 0 {
		var devs []disksim.Device
		for i := range c.IONodes() {
			for _, d := range c.MemberDisks(i) {
				devs = append(devs, d)
			}
		}
		mon = monitor.Start(c.Eng, devs, opts.MonitorInterval)
	}
	program := prog(sys)
	remaining := np
	elapsed := w.Run(func(r *mpi.Rank) {
		program(r)
		if opts.DrainAtEnd {
			r.Sync()
			if r.ID() == 0 {
				c.FS.Sync(r.Proc())
			}
			r.Sync()
		}
		remaining--
		if mon != nil && remaining == 0 {
			mon.Stop() // last rank out stops the sampler
		}
	})
	return Result{Cluster: c, Set: sys.Tracer, Elapsed: elapsed, Monitor: mon}
}
