package runner

import (
	"testing"

	"iophases/internal/cluster"
	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/units"
)

// trivialApp writes one block per rank.
func trivialApp(sys *mpiio.System) func(r *mpi.Rank) {
	return func(r *mpi.Rank) {
		f := sys.Open(r, "/out", mpiio.Shared)
		f.WriteAt(r, int64(r.ID())*8*units.MiB, 8*units.MiB)
		f.Close(r)
	}
}

func TestRunProducesTrace(t *testing.T) {
	res := Run(cluster.ConfigA(), 4, "trivial", trivialApp, Options{Trace: true})
	if res.Set == nil {
		t.Fatal("no trace set")
	}
	if res.Set.NP != 4 || res.Set.App != "trivial" || res.Set.Config != "configA" {
		t.Fatalf("set header %+v", res.Set)
	}
	w, _ := res.Set.TotalBytes()
	if w != 4*8*units.MiB {
		t.Fatalf("traced %d bytes", w)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestRunWithoutTrace(t *testing.T) {
	res := Run(cluster.ConfigA(), 2, "trivial", trivialApp, Options{})
	if res.Set != nil {
		t.Fatal("unexpected trace")
	}
}

func TestRunWithMonitor(t *testing.T) {
	res := Run(cluster.ConfigA(), 4, "trivial", trivialApp, Options{
		Trace:           true,
		MonitorInterval: 100 * units.Millisecond,
	})
	if res.Monitor == nil {
		t.Fatal("no monitor")
	}
	if len(res.Monitor.Names()) != 5 {
		t.Fatalf("monitored %d devices, want the 5 RAID members", len(res.Monitor.Names()))
	}
	if len(res.Monitor.Samples()) < 2 {
		t.Fatalf("samples %d", len(res.Monitor.Samples()))
	}
}

func TestDrainAtEndFlushesDevices(t *testing.T) {
	res := Run(cluster.ConfigA(), 2, "trivial", trivialApp, Options{DrainAtEnd: true})
	total := int64(0)
	for i, n := 0, len(res.Cluster.IONodes()); i < n; i++ {
		total += res.Cluster.IODevice(i).Counters().WriteBytes
	}
	if total != 2*8*units.MiB {
		t.Fatalf("devices hold %d bytes after drain", total)
	}
}

func TestRunsAreIsolated(t *testing.T) {
	a := Run(cluster.ConfigA(), 2, "trivial", trivialApp, Options{Trace: true})
	b := Run(cluster.ConfigA(), 2, "trivial", trivialApp, Options{Trace: true})
	if a.Elapsed != b.Elapsed {
		t.Fatalf("repeated runs differ: %v vs %v", a.Elapsed, b.Elapsed)
	}
	if a.Cluster == b.Cluster {
		t.Fatal("clusters shared between runs")
	}
}

func TestScatterPlacementWidensClientNICs(t *testing.T) {
	// Two ranks writing to the striped PVFS configuration: packed on one
	// node they share a single 1GbE NIC; scattered they get one each —
	// the placement lever §IV-A alludes to.
	prog := func(sys *mpiio.System) func(r *mpi.Rank) {
		return func(r *mpi.Rank) {
			f := sys.Open(r, "/p", mpiio.Shared)
			f.WriteAt(r, int64(r.ID())*256*units.MiB, 256*units.MiB)
			f.Close(r)
		}
	}
	// Stripe over all 18 OSS so storage outruns any single client NIC:
	// packed ranks share one InfiniBand port, scattered ranks get one
	// each.
	spec := cluster.Finisterrae()
	spec.Storage.FileStripeCount = 0
	block := Run(spec, 2, "p", prog, Options{Placement: cluster.PlaceBlock})
	scatter := Run(spec, 2, "p", prog, Options{Placement: cluster.PlaceScatter})
	if scatter.Elapsed >= block.Elapsed {
		t.Fatalf("scatter (%v) should beat block (%v) for NIC-bound writers",
			scatter.Elapsed, block.Elapsed)
	}
}
