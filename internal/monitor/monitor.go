// Package monitor samples per-device activity counters at fixed virtual
// time intervals — the simulator's `iostat -x -p 1`. Figure 8 of the paper
// plots exactly this: sectors per second and bandwidth per disk of an I/O
// node while MADBench2's phases execute.
package monitor

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"iophases/internal/des"
	"iophases/internal/disksim"
	"iophases/internal/units"
)

// Sample is one snapshot of every watched device's cumulative counters.
type Sample struct {
	Time     units.Duration
	Counters []disksim.Counters // parallel to the watched device list
}

// Monitor periodically snapshots devices until stopped.
type Monitor struct {
	eng      *des.Engine
	devices  []disksim.Device
	names    []string
	interval units.Duration
	samples  []Sample
	stopped  bool
}

// Start begins sampling the devices every interval on eng. Call Stop when
// the observed workload finishes; otherwise the monitor keeps the
// simulation alive forever.
func Start(eng *des.Engine, devices []disksim.Device, interval units.Duration) *Monitor {
	if interval <= 0 {
		panic("monitor: non-positive interval")
	}
	m := &Monitor{eng: eng, devices: devices, interval: interval}
	for _, d := range devices {
		m.names = append(m.names, d.Name())
	}
	m.snapshot() // t=0 baseline
	m.schedule()
	return m
}

func (m *Monitor) schedule() {
	m.eng.Schedule(m.interval, func() {
		if m.stopped {
			return
		}
		m.snapshot()
		m.schedule()
	})
}

func (m *Monitor) snapshot() {
	s := Sample{Time: m.eng.Now()}
	for _, d := range m.devices {
		s.Counters = append(s.Counters, d.Counters())
	}
	m.samples = append(m.samples, s)
}

// Stop halts sampling after taking a final snapshot.
func (m *Monitor) Stop() {
	if m.stopped {
		return
	}
	m.snapshot()
	m.stopped = true
}

// Names reports the watched device names.
func (m *Monitor) Names() []string { return m.names }

// Samples reports the collected snapshots.
func (m *Monitor) Samples() []Sample { return m.samples }

// Rate is per-interval activity derived from consecutive samples.
type Rate struct {
	Time        units.Duration // interval end
	SectorsRead []float64      // per device, sectors/s
	SectorsWrit []float64
	ReadBW      []units.Bandwidth
	WriteBW     []units.Bandwidth
	Utilization []float64 // busy fraction of the interval, 0..1
}

// WriteCSV emits the derived rates as CSV (one row per interval per
// device), the shape an iostat log post-processor produces — convenient
// for plotting Figure 8 with external tools.
func (m *Monitor) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"time_s", "device", "sectors_read_per_s", "sectors_written_per_s",
		"read_MBps", "write_MBps", "utilization"}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	for _, r := range m.Rates() {
		for d, name := range m.names {
			row := []string{
				f(r.Time.Seconds()), name,
				f(r.SectorsRead[d]), f(r.SectorsWrit[d]),
				f(r.ReadBW[d].MBpsValue()), f(r.WriteBW[d].MBpsValue()),
				f(r.Utilization[d]),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("monitor: csv: %v", err)
	}
	return nil
}

// Rates converts cumulative samples into per-second rates, the form
// Figure 8 plots.
func (m *Monitor) Rates() []Rate {
	var out []Rate
	for i := 1; i < len(m.samples); i++ {
		prev, cur := m.samples[i-1], m.samples[i]
		dt := (cur.Time - prev.Time).Seconds()
		if dt <= 0 {
			continue
		}
		r := Rate{Time: cur.Time}
		for d := range m.devices {
			a, b := prev.Counters[d], cur.Counters[d]
			r.SectorsRead = append(r.SectorsRead, float64(b.SectorsRead()-a.SectorsRead())/dt)
			r.SectorsWrit = append(r.SectorsWrit, float64(b.SectorsWritten()-a.SectorsWritten())/dt)
			r.ReadBW = append(r.ReadBW, units.Bandwidth(float64(b.ReadBytes-a.ReadBytes)/dt))
			r.WriteBW = append(r.WriteBW, units.Bandwidth(float64(b.WriteBytes-a.WriteBytes)/dt))
			util := (b.BusyTime - a.BusyTime).Seconds() / dt
			if util > 1 {
				util = 1
			}
			r.Utilization = append(r.Utilization, util)
		}
		out = append(out, r)
	}
	return out
}
