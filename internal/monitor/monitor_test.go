package monitor

import (
	"strings"

	"testing"

	"iophases/internal/des"
	"iophases/internal/disksim"
	"iophases/internal/units"
)

func TestSamplesAtInterval(t *testing.T) {
	eng := des.NewEngine()
	d := disksim.NewDisk(eng, "d", disksim.SATA7200(units.TiB))
	m := Start(eng, []disksim.Device{d}, units.Second)
	eng.Spawn("w", func(p *des.Proc) {
		for i := int64(0); i < 5; i++ {
			d.Write(p, i*64*units.MiB, 64*units.MiB)
		}
	})
	eng.Schedule(6*units.Second, func() { m.Stop() })
	eng.Run()
	// t=0 baseline, one per second up to ~5s, plus the Stop snapshot.
	if n := len(m.Samples()); n < 6 || n > 9 {
		t.Fatalf("samples = %d", n)
	}
	last := m.Samples()[len(m.Samples())-1]
	if last.Counters[0].WriteBytes != 5*64*units.MiB {
		t.Fatalf("final counters %+v", last.Counters[0])
	}
}

func TestRatesDeriveDeltas(t *testing.T) {
	eng := des.NewEngine()
	d := disksim.NewDisk(eng, "d", disksim.DiskParams{
		SeqReadBW: units.MBps(100), SeqWriteBW: units.MBps(100),
		CapacityB: units.TiB, NearThreshold: units.MiB,
	})
	m := Start(eng, []disksim.Device{d}, units.Second)
	eng.Spawn("w", func(p *des.Proc) {
		// Steady 100 MB/s stream for 4 seconds.
		for i := int64(0); i < 8; i++ {
			d.Write(p, i*50*units.MiB, 50*units.MiB)
		}
	})
	eng.Schedule(4*units.Second, func() { m.Stop() })
	eng.Run()
	rates := m.Rates()
	if len(rates) < 3 {
		t.Fatalf("rates = %d", len(rates))
	}
	mid := rates[1] // a fully busy interval
	if bw := mid.WriteBW[0].MBpsValue(); bw < 95 || bw > 105 {
		t.Fatalf("write rate %.1f MB/s, want ≈100", bw)
	}
	wantSectors := 100 * float64(units.MiB) / 512
	if s := mid.SectorsWrit[0]; s < wantSectors*0.95 || s > wantSectors*1.05 {
		t.Fatalf("sectors/s = %.0f, want ≈%.0f", s, wantSectors)
	}
	if u := mid.Utilization[0]; u < 0.9 || u > 1.0 {
		t.Fatalf("utilization %.2f, want ≈1", u)
	}
}

func TestIdleIntervalsShowZeroRates(t *testing.T) {
	eng := des.NewEngine()
	d := disksim.NewDisk(eng, "d", disksim.SATA7200(units.TiB))
	m := Start(eng, []disksim.Device{d}, units.Second)
	eng.Spawn("w", func(p *des.Proc) {
		d.Write(p, 0, units.MiB)
		p.Sleep(3 * units.Second) // idle gap
		d.Write(p, units.MiB, units.MiB)
	})
	eng.Schedule(4*units.Second, func() { m.Stop() })
	eng.Run()
	rates := m.Rates()
	sawIdle := false
	for _, r := range rates {
		if r.WriteBW[0] == 0 && r.Utilization[0] == 0 {
			sawIdle = true
		}
	}
	if !sawIdle {
		t.Fatal("no idle interval detected")
	}
}

func TestStopIsIdempotentAndEndsSampling(t *testing.T) {
	eng := des.NewEngine()
	d := disksim.NewDisk(eng, "d", disksim.SATA7200(units.TiB))
	m := Start(eng, []disksim.Device{d}, units.Second)
	eng.Schedule(2*units.Second, func() { m.Stop(); m.Stop() })
	eng.Run() // must terminate: sampling chain must not persist
	if len(m.Samples()) == 0 {
		t.Fatal("no samples")
	}
}

func TestWriteCSV(t *testing.T) {
	eng := des.NewEngine()
	d := disksim.NewDisk(eng, "sda", disksim.SATA7200(units.TiB))
	m := Start(eng, []disksim.Device{d}, units.Second)
	eng.Spawn("w", func(p *des.Proc) {
		d.Write(p, 0, 100*units.MiB)
	})
	eng.Schedule(3*units.Second, func() { m.Stop() })
	eng.Run()
	var buf strings.Builder
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("csv lines %d:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "time_s,device,") {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[1], "sda") {
		t.Fatalf("row %q", lines[1])
	}
}

func TestNamesMatchDevices(t *testing.T) {
	eng := des.NewEngine()
	a := disksim.NewDisk(eng, "alpha", disksim.SATA7200(units.TiB))
	b := disksim.NewDisk(eng, "beta", disksim.SATA7200(units.TiB))
	m := Start(eng, []disksim.Device{a, b}, units.Second)
	m.Stop()
	eng.Run()
	names := m.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("names %v", names)
	}
}
