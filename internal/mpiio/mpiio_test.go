package mpiio

import (
	"testing"
	"testing/quick"

	"iophases/internal/cluster"
	"iophases/internal/mpi"
	"iophases/internal/trace"
	"iophases/internal/units"
)

func TestContigMap(t *testing.T) {
	got := Contig{}.Map(100, 50, 10)
	if len(got) != 1 || got[0] != (Extent{Offset: 150, Size: 10}) {
		t.Fatalf("map = %+v", got)
	}
	if (Contig{}).Map(0, 0, 0) != nil {
		t.Fatal("zero size should map to nothing")
	}
}

func TestVectorMapStrided(t *testing.T) {
	// Rank 1 of 4, blocks of 10 bytes every 40 bytes.
	v := Vector{Block: 10, Stride: 40, Phase: 10}
	got := v.Map(0, 0, 25)
	want := []Extent{{10, 10}, {50, 10}, {90, 5}}
	if len(got) != len(want) {
		t.Fatalf("map = %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("map[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestVectorMapCoalescesDegenerateStride(t *testing.T) {
	// Stride == Block is contiguous: one extent.
	v := Vector{Block: 10, Stride: 10}
	got := v.Map(5, 0, 100)
	if len(got) != 1 || got[0] != (Extent{Offset: 5, Size: 100}) {
		t.Fatalf("map = %+v", got)
	}
}

func TestVectorMapTotalBytesQuick(t *testing.T) {
	f := func(blockRaw, strideRaw uint16, off uint16, sizeRaw uint16) bool {
		block := int64(blockRaw%1000) + 1
		stride := block + int64(strideRaw%1000)
		size := int64(sizeRaw) + 1
		v := Vector{Block: block, Stride: stride}
		var total int64
		prevEnd := int64(-1)
		for _, e := range v.Map(0, int64(off), size) {
			if e.Size <= 0 || e.Offset < prevEnd {
				return false // extents must be positive and ordered
			}
			prevEnd = e.Offset + e.Size
			total += e.Size
		}
		return total == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeExtents(t *testing.T) {
	in := []Extent{{30, 10}, {0, 10}, {10, 10}, {25, 10}, {100, 5}}
	got := mergeExtents(in)
	want := []Extent{{0, 20}, {25, 15}, {100, 5}}
	if len(got) != len(want) {
		t.Fatalf("merged = %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestMergeExtentsInterleavedRanksBecomeContiguous(t *testing.T) {
	// 4 ranks × strided pieces covering [0, 160) densely.
	var all []Extent
	for r := int64(0); r < 4; r++ {
		v := Vector{Block: 10, Stride: 40, Phase: r * 10}
		all = append(all, v.Map(0, 0, 40)...)
	}
	got := mergeExtents(all)
	if len(got) != 1 || got[0] != (Extent{0, 160}) {
		t.Fatalf("dense union should be one extent, got %+v", got)
	}
}

func TestSplitExtentsPreservesBytes(t *testing.T) {
	f := func(sizes []uint16, partsRaw uint8) bool {
		if len(sizes) == 0 || len(sizes) > 20 {
			return true
		}
		parts := int(partsRaw%8) + 1
		var extents []Extent
		off := int64(0)
		for _, s := range sizes {
			size := int64(s) + 1
			extents = append(extents, Extent{off, size})
			off += size + 10
		}
		total := totalSize(extents)
		doms := splitExtents(extents, parts)
		if len(doms) > parts {
			return false
		}
		var sum int64
		for _, d := range doms {
			sum += totalSize(d)
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// rig builds a config-A cluster with a traced 4-rank world.
type rig struct {
	c   *cluster.Cluster
	w   *mpi.World
	sys *System
}

func newRig(np int) *rig {
	c := cluster.Build(cluster.ConfigA())
	nodes := make([]string, np)
	for i := range nodes {
		nodes[i] = c.NodeOfRank(i, np)
	}
	w := mpi.NewWorld(c.Eng, c.Fabric, nodes)
	sys := NewSystem(c.FS, w)
	sys.Tracer = trace.NewSet("test", c.Spec.Name, np)
	return &rig{c: c, w: w, sys: sys}
}

func TestIndependentWriteReachesStorage(t *testing.T) {
	r := newRig(1)
	r.w.Run(func(rk *mpi.Rank) {
		f := r.sys.Open(rk, "/data", Shared)
		f.WriteAt(rk, 0, 8*units.MiB)
		f.Sync(rk)
		f.Close(rk)
	})
	ctr := r.c.IODevice(0).Counters()
	if ctr.WriteBytes != 8*units.MiB {
		t.Fatalf("device saw %d bytes", ctr.WriteBytes)
	}
	evs := r.sys.Tracer.DataEvents(0)
	if len(evs) != 1 || evs[0].Op != trace.OpWriteAt || evs[0].Size != 8*units.MiB {
		t.Fatalf("trace %+v", evs)
	}
}

func TestTraceOffsetsInEtypeUnits(t *testing.T) {
	// With etype 40 (BT-IO), offsets in the trace are etype counts —
	// Figure 2 shows offset 265302 with request size 10612080 = 265302*40.
	r := newRig(1)
	r.w.Run(func(rk *mpi.Rank) {
		f := r.sys.Open(rk, "/data", Shared)
		f.SetView(rk, 0, 40, Contig{})
		f.WriteAt(rk, 265302, 265302*40)
		f.Close(rk)
	})
	evs := r.sys.Tracer.DataEvents(0)
	if evs[0].Offset != 265302 || evs[0].Size != 265302*40 {
		t.Fatalf("event %+v", evs[0])
	}
	meta := r.sys.Tracer.FileMetaByID(0)
	if meta == nil || meta.ViewEtype != 40 || !meta.HasView {
		t.Fatalf("meta %+v", meta)
	}
}

func TestTicksAdvancePerOperation(t *testing.T) {
	r := newRig(2)
	r.w.Run(func(rk *mpi.Rank) {
		f := r.sys.Open(rk, "/data", Shared)                 // tick 1
		f.WriteAt(rk, int64(rk.ID())*units.MiB, units.MiB)   // tick 2
		f.WriteAt(rk, int64(2+rk.ID())*units.MiB, units.MiB) // tick 3
		f.Close(rk)                                          // tick 4
	})
	for p := 0; p < 2; p++ {
		evs := r.sys.Tracer.RankTrace(p)
		for i, ev := range evs {
			if ev.Tick != int64(i+1) {
				t.Fatalf("rank %d event %d tick %d", p, i, ev.Tick)
			}
		}
	}
}

func TestUniqueFilesArePerProcess(t *testing.T) {
	r := newRig(4)
	r.w.Run(func(rk *mpi.Rank) {
		f := r.sys.Open(rk, "/out", Unique)
		f.WriteAt(rk, 0, units.MiB) // same offset, different files
		f.Close(rk)
	})
	// All four wrote offset 0 of private files: total 4 MiB on storage.
	if ctr := r.c.IODevice(0).Counters(); ctr.WriteBytes != 4*units.MiB {
		t.Fatalf("device saw %d", ctr.WriteBytes)
	}
	if m := r.sys.Tracer.FileMetaByID(0); m.AccessType != Unique {
		t.Fatalf("meta %+v", m)
	}
}

func TestIndividualPointerAdvances(t *testing.T) {
	r := newRig(1)
	r.w.Run(func(rk *mpi.Rank) {
		f := r.sys.Open(rk, "/seq", Shared)
		f.Seek(rk, 100)
		f.Write(rk, 50)
		if f.Tell(rk) != 150 {
			t.Errorf("pointer %d", f.Tell(rk))
		}
		f.Read(rk, 10)
		if f.Tell(rk) != 160 {
			t.Errorf("pointer %d", f.Tell(rk))
		}
		f.Close(rk)
	})
	evs := r.sys.Tracer.DataEvents(0)
	if evs[0].Offset != 100 || evs[1].Offset != 150 {
		t.Fatalf("pointer offsets %+v", evs)
	}
	if m := r.sys.Tracer.FileMetaByID(0); m.PointerSet != "individual" {
		t.Fatalf("pointer meta %q", m.PointerSet)
	}
}

func TestCollectiveWriteMovesAllData(t *testing.T) {
	r := newRig(4)
	const rs = 4 * units.MiB
	r.w.Run(func(rk *mpi.Rank) {
		f := r.sys.Open(rk, "/coll", Shared)
		f.SetView(rk, 0, 1, Vector{Block: rs / 4, Stride: rs, Phase: int64(rk.ID()) * (rs / 4)})
		f.WriteAtAll(rk, 0, rs)
		f.Sync(rk)
		f.Close(rk)
	})
	if ctr := r.c.IODevice(0).Counters(); ctr.WriteBytes != 4*rs {
		t.Fatalf("device saw %d, want %d", ctr.WriteBytes, 4*rs)
	}
	// All ranks report the same collective duration.
	d0 := r.sys.Tracer.DataEvents(0)[0].Duration
	for p := 1; p < 4; p++ {
		if d := r.sys.Tracer.DataEvents(p)[0].Duration; d != d0 {
			t.Fatalf("rank %d duration %v != rank0 %v", p, d, d0)
		}
	}
	if m := r.sys.Tracer.FileMetaByID(0); !m.Collective {
		t.Fatal("collective flag not recorded")
	}
}

func TestCollectiveBeatsIndependentOnStridedPattern(t *testing.T) {
	// The raison d'être of two-phase I/O: interleaved small blocks.
	const np = 4
	const rs = 8 * units.MiB
	run := func(collective bool) units.Duration {
		r := newRig(np)
		took := r.w.Run(func(rk *mpi.Rank) {
			f := r.sys.Open(rk, "/strided", Shared)
			// 64 KiB pieces interleaved across ranks.
			f.SetView(rk, 0, 1, Vector{
				Block:  64 * units.KiB,
				Stride: np * 64 * units.KiB,
				Phase:  int64(rk.ID()) * 64 * units.KiB,
			})
			if collective {
				f.WriteAtAll(rk, 0, rs)
			} else {
				f.WriteAt(rk, 0, rs)
			}
			f.Sync(rk)
			f.Close(rk)
		})
		return took
	}
	ind, coll := run(false), run(true)
	if coll >= ind {
		t.Fatalf("collective %v should beat independent %v on strided data", coll, ind)
	}
}

func TestCollectiveReadRoundTrip(t *testing.T) {
	r := newRig(4)
	const rs = 2 * units.MiB
	r.w.Run(func(rk *mpi.Rank) {
		f := r.sys.Open(rk, "/rw", Shared)
		f.WriteAtAll(rk, int64(rk.ID())*rs, rs)
		f.ReadAtAll(rk, int64(rk.ID())*rs, rs)
		f.Close(rk)
	})
	ctr := r.c.IODevice(0).Counters()
	if ctr.WriteBytes != 4*rs {
		t.Fatalf("writes %d", ctr.WriteBytes)
	}
	// The read-back may be served from the server's write-back cache
	// (close-in-time re-read), so assert on the traced call surface.
	for p := 0; p < 4; p++ {
		evs := r.sys.Tracer.DataEvents(p)
		if len(evs) != 2 || !evs[1].Op.IsRead() || evs[1].Size != rs {
			t.Fatalf("rank %d events %+v", p, evs)
		}
		if evs[1].Duration <= 0 {
			t.Fatalf("rank %d read cost nothing", p)
		}
	}
}

func TestNonblockingOverlapsComputation(t *testing.T) {
	// iwrite + compute + wait must beat write + compute when the
	// transfer and computation genuinely overlap.
	run := func(nonblocking bool) units.Duration {
		r := newRig(1)
		var took units.Duration
		r.w.Run(func(rk *mpi.Rank) {
			f := r.sys.Open(rk, "/nb", Shared)
			start := rk.Now()
			if nonblocking {
				req := f.IWriteAt(rk, 0, 64*units.MiB)
				rk.Compute(300 * units.Millisecond)
				req.Wait(rk)
			} else {
				f.WriteAt(rk, 0, 64*units.MiB)
				rk.Compute(300 * units.Millisecond)
			}
			took = rk.Now() - start
			f.Close(rk)
		})
		return took
	}
	blocking, overlapped := run(false), run(true)
	if overlapped >= blocking {
		t.Fatalf("no overlap: nonblocking %v vs blocking %v", overlapped, blocking)
	}
}

func TestNonblockingTraceAndMetadata(t *testing.T) {
	r := newRig(2)
	r.w.Run(func(rk *mpi.Rank) {
		f := r.sys.Open(rk, "/nb", Shared)
		req := f.IWriteAt(rk, int64(rk.ID())*units.MiB, units.MiB)
		rk.Compute(units.Millisecond)
		req.Wait(rk)
		if !req.Test() {
			t.Errorf("request not done after Wait")
		}
		f.Close(rk)
	})
	evs := r.sys.Tracer.DataEvents(0)
	if len(evs) != 1 || evs[0].Op != trace.OpIWriteAt || !evs[0].Op.IsNonblocking() {
		t.Fatalf("events %+v", evs)
	}
	if evs[0].Duration <= 0 {
		t.Fatal("no duration recorded")
	}
	if m := r.sys.Tracer.FileMetaByID(0); m.Blocking {
		t.Fatal("blocking flag not cleared")
	}
	if ctr := r.c.IODevice(0).Counters(); ctr.WriteBytes != 2*units.MiB {
		t.Fatalf("device %d", ctr.WriteBytes)
	}
}

func TestWaitBeforeCompletionBlocks(t *testing.T) {
	r := newRig(1)
	r.w.Run(func(rk *mpi.Rank) {
		f := r.sys.Open(rk, "/nb2", Shared)
		req := f.IReadAt(rk, 0, 32*units.MiB)
		start := rk.Now()
		req.Wait(rk) // immediate wait: must block for the transfer
		if rk.Now() == start {
			t.Error("wait returned instantly")
		}
		f.Close(rk)
	})
}

func TestSharedPointerClaimsDisjointRegions(t *testing.T) {
	r := newRig(4)
	r.w.Run(func(rk *mpi.Rank) {
		f := r.sys.Open(rk, "/log", Shared)
		// Stagger arrivals so claim order is deterministic.
		rk.Proc().Sleep(units.Duration(rk.ID()) * units.Millisecond)
		f.WriteShared(rk, units.MiB)
		f.Close(rk)
	})
	// Each rank got its own MiB: offsets 0..3 MiB, no overlap.
	seen := make(map[int64]bool)
	for p := 0; p < 4; p++ {
		evs := r.sys.Tracer.DataEvents(p)
		if len(evs) != 1 || evs[0].Size != units.MiB {
			t.Fatalf("rank %d events %+v", p, evs)
		}
		off := evs[0].Offset
		if off%units.MiB != 0 || off < 0 || off >= 4*units.MiB || seen[off] {
			t.Fatalf("rank %d claimed offset %d", p, off)
		}
		seen[off] = true
	}
	if m := r.sys.Tracer.FileMetaByID(0); m.PointerSet != "shared" {
		t.Fatalf("pointer meta %q", m.PointerSet)
	}
	if ctr := r.c.IODevice(0).Counters(); ctr.WriteBytes != 4*units.MiB {
		t.Fatalf("device saw %d", ctr.WriteBytes)
	}
}

func TestSharedPointerReadsBack(t *testing.T) {
	r := newRig(2)
	r.w.Run(func(rk *mpi.Rank) {
		f := r.sys.Open(rk, "/log", Shared)
		rk.Proc().Sleep(units.Duration(rk.ID()) * units.Millisecond)
		f.WriteShared(rk, 512*units.KiB)
		rk.Barrier()
		f.ReadShared(rk, 512*units.KiB)
		f.Close(rk)
	})
	for p := 0; p < 2; p++ {
		evs := r.sys.Tracer.DataEvents(p)
		if len(evs) != 2 || !evs[1].Op.IsRead() {
			t.Fatalf("rank %d %+v", p, evs)
		}
		// Reads continue after the 1 MiB of writes.
		if evs[1].Offset < 2*512*units.KiB {
			t.Fatalf("read offset %d overlaps writes", evs[1].Offset)
		}
	}
}

func TestEtypeSizeValidation(t *testing.T) {
	r := newRig(1)
	panicked := false
	r.w.Run(func(rk *mpi.Rank) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		f := r.sys.Open(rk, "/x", Shared)
		f.SetView(rk, 0, 40, Contig{})
		f.WriteAt(rk, 0, 41) // not a multiple of etype
	})
	if !panicked {
		t.Fatal("size/etype mismatch accepted")
	}
}

func TestNestedMapTwoLevels(t *testing.T) {
	// 2 blocks of 10 bytes per group, 50 apart; groups 200 apart.
	n := Nested{Block: 10, Count: 2, InnerStride: 50, OuterStride: 200, Phase: 5}
	got := n.Map(0, 0, 45)
	want := []Extent{{5, 10}, {55, 10}, {205, 10}, {255, 10}, {405, 5}}
	if len(got) != len(want) {
		t.Fatalf("map %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("map[%d] = %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestNestedMapTotalBytesQuick(t *testing.T) {
	f := func(blockRaw, countRaw, off uint8, sizeRaw uint16) bool {
		block := int64(blockRaw%50) + 1
		count := int64(countRaw%5) + 1
		inner := block + int64(blockRaw%17)
		outer := inner*(count-1) + block + int64(countRaw%31)
		size := int64(sizeRaw) + 1
		n := Nested{Block: block, Count: count, InnerStride: inner, OuterStride: outer}
		var total int64
		prevEnd := int64(-1 << 62)
		for _, e := range n.Map(0, int64(off), size) {
			if e.Size <= 0 || e.Offset < prevEnd {
				return false
			}
			prevEnd = e.Offset + e.Size
			total += e.Size
		}
		return total == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNestedDegeneratesToVector(t *testing.T) {
	// Count=1 nested equals a plain vector with the outer stride.
	n := Nested{Block: 10, Count: 1, InnerStride: 10, OuterStride: 40, Phase: 0}
	v := Vector{Block: 10, Stride: 40}
	for _, size := range []int64{5, 10, 35, 100} {
		ne, ve := n.Map(7, 3, size), v.Map(7, 3, size)
		if len(ne) != len(ve) {
			t.Fatalf("size %d: %v vs %v", size, ne, ve)
		}
		for i := range ne {
			if ne[i] != ve[i] {
				t.Fatalf("size %d [%d]: %v vs %v", size, i, ne[i], ve[i])
			}
		}
	}
}

func TestNestedViewThroughIndependentIO(t *testing.T) {
	r := newRig(1)
	r.w.Run(func(rk *mpi.Rank) {
		f := r.sys.Open(rk, "/nested", Shared)
		f.SetHint("romio_ds_write", "disable")
		f.SetView(rk, 0, 1, Nested{
			Block: 8 * units.KiB, Count: 4,
			InnerStride: 32 * units.KiB, OuterStride: 256 * units.KiB,
		})
		f.WriteAt(rk, 0, 128*units.KiB) // 16 blocks over 4 groups
		f.Sync(rk)
		f.Close(rk)
	})
	if ctr := r.c.IODevice(0).Counters(); ctr.WriteBytes != 128*units.KiB {
		t.Fatalf("device %d", ctr.WriteBytes)
	}
	m := r.sys.Tracer.FileMetaByID(0)
	if m.ViewDesc == "" || m.ViewDesc[:6] != "nested" {
		t.Fatalf("desc %q", m.ViewDesc)
	}
}
