package mpiio

import (
	"iophases/internal/des"
	"iophases/internal/fsim"
	"iophases/internal/units"
)

// Transient-error retry policy (MPI-IO is where real stacks hide storage
// hiccups from the application: ROMIO's ADIO drivers retry EINTR/EAGAIN).
// Backoff is capped exponential, charged as virtual time — a run with
// injected transient errors finishes with the same data moved, just
// later, and never surfaces a panic.
const (
	retryBackoffBase = 2 * units.Millisecond
	retryBackoffCap  = 256 * units.Millisecond
)

// fsAccess issues one filesystem extent operation with the retry policy.
// The healthy path (no injector attached to the engine) is a direct call,
// identical to the seed; the fault path loops until the operation
// succeeds, sleeping the backoff in virtual time and reporting each retry
// to the injector's counters. Termination is guaranteed because every
// transient-error effect carries a finite OpCount budget (enforced by
// Schedule.Validate), so the injector eventually runs dry.
func (s *System) fsAccess(p *des.Proc, h *fsim.File, node string, write bool, off, size int64) {
	if s.flt == nil {
		if write {
			h.Write(p, node, off, size)
		} else {
			h.Read(p, node, off, size)
		}
		return
	}
	backoff := retryBackoffBase
	for {
		var err error
		if write {
			err = h.Write(p, node, off, size)
		} else {
			err = h.Read(p, node, off, size)
		}
		if err == nil {
			return
		}
		s.flt.NoteRetry(backoff)
		p.Sleep(backoff)
		if backoff < retryBackoffCap {
			backoff *= 2
		}
	}
}
