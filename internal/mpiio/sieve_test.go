package mpiio

import (
	"testing"

	"iophases/internal/mpi"
	"iophases/internal/units"
)

func TestHintDefaults(t *testing.T) {
	r := newRig(1)
	r.w.Run(func(rk *mpi.Rank) {
		f := r.sys.Open(rk, "/h", Shared)
		if f.Hint("romio_ds_read") != "enable" {
			t.Error("ds_read default")
		}
		if f.Hint("romio_ds_write") != "disable" {
			t.Error("ds_write default")
		}
		if f.Hint("ind_rd_buffer_size") != "4194304" {
			t.Errorf("rd buffer %s", f.Hint("ind_rd_buffer_size"))
		}
		f.SetHint("romio_ds_write", "enable")
		f.SetHint("ind_wr_buffer_size", "1048576")
		if f.Hint("romio_ds_write") != "enable" || f.Hint("ind_wr_buffer_size") != "1048576" {
			t.Error("hint updates lost")
		}
		f.SetHint("some_unknown_hint", "whatever") // must be ignored
		f.Close(rk)
	})
}

func TestSievableDecision(t *testing.T) {
	dense := []Extent{{0, 10}, {20, 10}, {40, 10}, {60, 10}}
	if _, _, ok := sievable(dense, 40); !ok {
		t.Fatal("dense extents should sieve")
	}
	lo, hi, _ := sievable(dense, 40)
	if lo != 0 || hi != 70 {
		t.Fatalf("span %d..%d", lo, hi)
	}
	sparse := []Extent{{0, 10}, {1000, 10}, {2000, 10}, {3000, 10}}
	if _, _, ok := sievable(sparse, 40); ok {
		t.Fatal("diluted extents must not sieve")
	}
	few := []Extent{{0, 10}, {20, 10}}
	if _, _, ok := sievable(few, 20); ok {
		t.Fatal("two extents do not need sieving")
	}
}

// TestDataSievingReducesDeviceRequests is the mechanism check: a strided
// read with sieving issues a handful of window reads instead of one
// request per piece.
func TestDataSievingReducesDeviceRequests(t *testing.T) {
	run := func(enable string) (ops int64, elapsed units.Duration) {
		r := newRig(1)
		var took units.Duration
		r.w.Run(func(rk *mpi.Rank) {
			f := r.sys.Open(rk, "/s", Shared)
			// 4 KiB pieces every 8 KiB: the per-request latency of 512
			// separate accesses dwarfs the 2x dilution — the regime
			// data sieving exists for.
			f.SetView(rk, 0, 1, Vector{Block: 4 * units.KiB, Stride: 8 * units.KiB})
			f.SetHint("romio_ds_read", enable)
			start := rk.Now()
			f.ReadAt(rk, 0, 2*units.MiB) // 512 pieces
			took = rk.Now() - start
			f.Close(rk)
		})
		return r.c.IODevice(0).Counters().ReadOps, took
	}
	plainOps, plainTime := run("disable")
	sievedOps, sievedTime := run("enable")
	if sievedOps >= plainOps {
		t.Fatalf("sieving did not reduce requests: %d vs %d", sievedOps, plainOps)
	}
	if sievedTime >= plainTime {
		t.Fatalf("sieving slower: %v vs %v", sievedTime, plainTime)
	}
}

func TestWriteSievingReadModifiesWrites(t *testing.T) {
	r := newRig(1)
	r.w.Run(func(rk *mpi.Rank) {
		f := r.sys.Open(rk, "/w", Shared)
		f.SetView(rk, 0, 1, Vector{Block: 64 * units.KiB, Stride: 128 * units.KiB})
		f.SetHint("romio_ds_write", "enable")
		f.WriteAt(rk, 0, units.MiB)
		f.Sync(rk)
		f.Close(rk)
	})
	ctr := r.c.IODevice(0).Counters()
	if ctr.ReadBytes == 0 {
		t.Fatal("write sieving must read-modify-write")
	}
	// The span is ~2 MiB for 1 MiB of data: written bytes reflect whole
	// windows.
	if ctr.WriteBytes < 15*units.MiB/8 {
		t.Fatalf("window writes %d", ctr.WriteBytes)
	}
}

func TestSievingPreservesTraceSurface(t *testing.T) {
	// The MPI call surface is unchanged: one traced event regardless of
	// the strategy underneath.
	r := newRig(1)
	r.w.Run(func(rk *mpi.Rank) {
		f := r.sys.Open(rk, "/t", Shared)
		f.SetView(rk, 0, 1, Vector{Block: 32 * units.KiB, Stride: 64 * units.KiB})
		f.ReadAt(rk, 0, units.MiB)
		f.Close(rk)
	})
	evs := r.sys.Tracer.DataEvents(0)
	if len(evs) != 1 || evs[0].Size != units.MiB {
		t.Fatalf("trace %+v", evs)
	}
}
