package mpiio

import (
	"testing"

	"iophases/internal/cluster"
	"iophases/internal/faults"
	"iophases/internal/mpi"
	"iophases/internal/obs"
	"iophases/internal/units"
)

// newFaultRig is newRig on a spec carrying a fault schedule.
func newFaultRig(np int, sch *faults.Schedule) *rig {
	spec := cluster.ConfigA()
	spec.Faults = sch
	c := cluster.Build(spec)
	nodes := make([]string, np)
	for i := range nodes {
		nodes[i] = c.NodeOfRank(i, np)
	}
	w := mpi.NewWorld(c.Eng, c.Fabric, nodes)
	return &rig{c: c, w: w, sys: NewSystem(c.FS, w)}
}

// TestTransientErrorsRetryToCompletion is the tentpole's core contract:
// injected server errors surface as added virtual time (retries with
// backoff), never as panics or lost writes, and the injection is
// deterministic for a fixed seed.
func TestTransientErrorsRetryToCompletion(t *testing.T) {
	sch := &faults.Schedule{Name: "t", Seed: 3, Effects: []faults.Effect{
		{Kind: faults.TransientError, Prob: 0.5, OpCount: 20},
	}}
	run := func() (units.Duration, int64, int64, int64) {
		obs.Default().Reset()
		r := newFaultRig(2, sch)
		var end units.Duration
		r.w.Run(func(rk *mpi.Rank) {
			f := r.sys.Open(rk, "/data", Shared)
			for i := 0; i < 8; i++ {
				f.WriteAt(rk, int64(rk.ID()*8+i)*units.MiB, units.MiB)
			}
			f.Sync(rk)
			f.Close(rk)
			if rk.ID() == 0 {
				end = rk.Now()
			}
		})
		reg := obs.Default()
		return end, reg.Counter("faults/transient_errors").Value(),
			reg.Counter("faults/retries").Value(),
			reg.Counter("faults/backoff_us").Value()
	}
	end1, injected1, retries1, backoff1 := run()
	end2, injected2, retries2, backoff2 := run()
	if injected1 == 0 || retries1 == 0 {
		t.Fatalf("no faults injected (injected %d, retries %d)", injected1, retries1)
	}
	if retries1 < injected1 {
		t.Fatalf("retries %d < injected errors %d: some error escaped the retry loop", retries1, injected1)
	}
	// Each retry sleeps at least the 2ms backoff base in virtual time —
	// that sleep is how an injected error surfaces to the simulation.
	if backoff1 < 2000*retries1 {
		t.Fatalf("backoff %dus for %d retries: errors not surfacing as virtual time", backoff1, retries1)
	}
	if end1 != end2 || injected1 != injected2 || retries1 != retries2 || backoff1 != backoff2 {
		t.Fatalf("same seed diverged: (%v,%d,%d,%d) vs (%v,%d,%d,%d)",
			end1, injected1, retries1, backoff1, end2, injected2, retries2, backoff2)
	}

	// A healthy run injects nothing.
	obs.Default().Reset()
	r := newRig(2)
	r.w.Run(func(rk *mpi.Rank) {
		f := r.sys.Open(rk, "/data", Shared)
		for i := 0; i < 8; i++ {
			f.WriteAt(rk, int64(rk.ID()*8+i)*units.MiB, units.MiB)
		}
		f.Sync(rk)
		f.Close(rk)
	})
	if v := obs.Default().Counter("faults/transient_errors").Value(); v != 0 {
		t.Fatalf("healthy run injected %d errors", v)
	}
}

// TestCollectiveSurvivesTransientErrors drives the two-phase collective
// path (aggregator filesystem access goes through the retry loop too).
func TestCollectiveSurvivesTransientErrors(t *testing.T) {
	sch := &faults.Schedule{Name: "c", Seed: 1, Effects: []faults.Effect{
		{Kind: faults.TransientError, Prob: 1, OpCount: 5},
	}}
	obs.Default().Reset()
	r := newFaultRig(4, sch)
	r.w.Run(func(rk *mpi.Rank) {
		f := r.sys.Open(rk, "/coll", Shared)
		f.WriteAtAll(rk, int64(rk.ID())*units.MiB, units.MiB)
		f.ReadAtAll(rk, int64(rk.ID())*units.MiB, units.MiB)
		f.Close(rk)
	})
	if v := obs.Default().Counter("faults/transient_errors").Value(); v != 5 {
		t.Fatalf("injected %d errors, want the full budget of 5", v)
	}
	ctr := r.c.IODevice(0).Counters()
	if ctr.WriteBytes < 4*units.MiB {
		t.Fatalf("device saw only %d write bytes", ctr.WriteBytes)
	}
}
