package mpiio

import (
	"fmt"

	"iophases/internal/des"
	"iophases/internal/mpi"
	"iophases/internal/trace"
	"iophases/internal/units"
)

// Request is the handle of a nonblocking data operation
// (MPI_File_iwrite_at / MPI_File_iread_at). The transfer proceeds on a
// background process; Wait blocks the rank until completion and records
// the traced event (start at issue time, duration to completion — what an
// interposition tracer wrapping the request pair observes).
type Request struct {
	sys    *System
	file   *File
	rank   int
	op     trace.Op
	off    int64
	size   int64
	start  units.Duration
	tick   int64
	done   bool
	waiter *des.Proc
	end    units.Duration
}

// nonblocking launches the transfer on a helper process and returns the
// request.
func (f *File) nonblocking(r *mpi.Rank, op trace.Op, offEtypes, size int64) *Request {
	f.checkSize(r, size)
	req := &Request{
		sys:   f.sys,
		file:  f,
		rank:  r.ID(),
		op:    op,
		off:   offEtypes,
		size:  size,
		start: r.Now(),
		tick:  r.NextTick(),
	}
	f.meta.Blocking = false
	f.sys.syncMeta(f)
	h := f.handles[r.ID()]
	node := r.Node()
	extents := f.views[r.ID()].MapBytes(offEtypes, size)
	eng := f.sys.world.Engine()
	sys := f.sys
	eng.Spawn(fmt.Sprintf("iop:r%d", r.ID()), func(p *des.Proc) {
		for _, e := range extents {
			sys.fsAccess(p, h, node, op.IsWrite(), e.Offset, e.Size)
		}
		req.done = true
		req.end = p.Now()
		if req.waiter != nil {
			eng.Unpark(req.waiter)
			req.waiter = nil
		}
	})
	return req
}

// IWriteAt starts a nonblocking write at an explicit view offset.
func (f *File) IWriteAt(r *mpi.Rank, offEtypes, size int64) *Request {
	return f.nonblocking(r, trace.OpIWriteAt, offEtypes, size)
}

// IReadAt starts a nonblocking read at an explicit view offset.
func (f *File) IReadAt(r *mpi.Rank, offEtypes, size int64) *Request {
	return f.nonblocking(r, trace.OpIReadAt, offEtypes, size)
}

// Wait blocks until the request completes (MPI_Wait; one tick) and records
// the traced operation. Waiting twice panics, as in MPI.
func (q *Request) Wait(r *mpi.Rank) {
	if r.ID() != q.rank {
		panic("mpiio: request waited by a different rank")
	}
	if q.tick < 0 {
		panic("mpiio: request already completed")
	}
	r.NextTick() // MPI_Wait is an MPI event
	if !q.done {
		q.waiter = r.Proc()
		r.Proc().Park("mpi_wait")
	}
	q.sys.record(trace.Event{
		Rank: q.rank, File: q.file.id, Op: q.op, Offset: q.off, Tick: q.tick,
		Size: q.size, Time: q.start, Duration: q.end - q.start,
	})
	q.tick = -1
}

// Test reports whether the request has completed without blocking.
func (q *Request) Test() bool { return q.done }
