package mpiio

import (
	"fmt"
	"strconv"

	"iophases/internal/mpi"
	"iophases/internal/trace"
)

// Data sieving is ROMIO's independent-I/O counterpart to two-phase
// collective buffering: when a strided view maps one MPI call onto many
// small extents, the library accesses the covering byte range in large
// buffer-sized windows instead — reads fetch whole windows, writes do a
// read-modify-write of each window. It trades extra bytes moved for far
// fewer (and contiguous) storage requests, a win whenever the extents are
// dense and the medium charges per request.
//
// Hints follow ROMIO's MPI_Info keys:
//
//	romio_ds_read  = enable | disable   (default enable)
//	romio_ds_write = enable | disable   (default disable — like ROMIO on
//	                                     NFS, where write sieving needs
//	                                     byte-range locks)
//	ind_rd_buffer_size / ind_wr_buffer_size = bytes (default 4 MiB / 512 KiB)

const (
	defaultReadSieveBuf  = 4 << 20
	defaultWriteSieveBuf = 512 << 10
	// sieveMinExtents is the extent count below which sieving cannot
	// help (the plain path issues that few requests anyway).
	sieveMinExtents = 4
	// sieveMaxDilution bounds the wasted traffic: sieve only when the
	// covering span is at most this multiple of the useful bytes.
	sieveMaxDilution = 4
)

// hints holds per-file MPI_Info settings.
type hints struct {
	dsRead   bool
	dsWrite  bool
	rdBuffer int64
	wrBuffer int64
}

func defaultHints() hints {
	return hints{
		dsRead:   true,
		dsWrite:  false,
		rdBuffer: defaultReadSieveBuf,
		wrBuffer: defaultWriteSieveBuf,
	}
}

// SetHint sets an MPI_Info hint on the file (collective in MPI; here it
// simply applies to subsequent operations of every rank). Unknown keys are
// ignored, as MPI requires.
func (f *File) SetHint(key, value string) {
	switch key {
	case "romio_ds_read":
		f.hints.dsRead = value == "enable"
	case "romio_ds_write":
		f.hints.dsWrite = value == "enable"
	case "ind_rd_buffer_size":
		if n, err := strconv.ParseInt(value, 10, 64); err == nil && n > 0 {
			f.hints.rdBuffer = n
		}
	case "ind_wr_buffer_size":
		if n, err := strconv.ParseInt(value, 10, 64); err == nil && n > 0 {
			f.hints.wrBuffer = n
		}
	}
}

// Hint reports a hint's current value (for tests and tools).
func (f *File) Hint(key string) string {
	onoff := func(b bool) string {
		if b {
			return "enable"
		}
		return "disable"
	}
	switch key {
	case "romio_ds_read":
		return onoff(f.hints.dsRead)
	case "romio_ds_write":
		return onoff(f.hints.dsWrite)
	case "ind_rd_buffer_size":
		return fmt.Sprint(f.hints.rdBuffer)
	case "ind_wr_buffer_size":
		return fmt.Sprint(f.hints.wrBuffer)
	}
	return ""
}

// sievable decides whether the extent list qualifies for data sieving and
// returns the covering span.
func sievable(extents []Extent, useful int64) (lo, hi int64, ok bool) {
	if len(extents) < sieveMinExtents {
		return 0, 0, false
	}
	lo = extents[0].Offset
	last := extents[len(extents)-1]
	hi = last.Offset + last.Size
	if hi-lo > sieveMaxDilution*useful {
		return 0, 0, false
	}
	return lo, hi, true
}

// sievedAccess performs the windowed span access. For writes each window
// is read, modified and written back; for reads each window is read once.
func (f *File) sievedAccess(r *mpi.Rank, op trace.Op, lo, hi int64) {
	h := f.handles[r.ID()]
	buf := f.hints.rdBuffer
	if op.IsWrite() {
		buf = f.hints.wrBuffer
	}
	for off := lo; off < hi; off += buf {
		n := buf
		if hi-off < n {
			n = hi - off
		}
		if op.IsWrite() {
			f.sys.fsAccess(r.Proc(), h, r.Node(), false, off, n) // read-modify-
			f.sys.fsAccess(r.Proc(), h, r.Node(), true, off, n)  // -write
		} else {
			f.sys.fsAccess(r.Proc(), h, r.Node(), false, off, n)
		}
	}
}
