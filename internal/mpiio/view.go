// Package mpiio implements a simulated MPI-IO library over the cluster
// substrate: file views (MPI_File_set_view with etype/filetype), explicit
// offset and individual file pointers, blocking independent operations, and
// collective operations with two-phase (aggregator) buffering. It exposes
// the same call surface the paper's tracer interposes, records trace events
// in PAS2P format, and derives its timing entirely from the simulated
// network and storage — so collective I/O genuinely converts strided small
// writes into large contiguous ones, the effect BT-IO's FULL subtype
// depends on.
package mpiio

import (
	"fmt"
	"sort"
)

// Extent is a contiguous physical byte range in a file.
type Extent struct {
	Offset int64
	Size   int64
}

// Filetype describes how a rank's view tiles the physical file, the role of
// the MPI filetype argument.
type Filetype interface {
	// Map translates the view-space byte range [off, off+size) into
	// physical extents relative to the view displacement.
	Map(disp, off, size int64) []Extent
	// Describe returns a human-readable summary for trace metadata.
	Describe() string
}

// Contig is the default filetype: the view is the file itself.
type Contig struct{}

// Map implements Filetype.
func (Contig) Map(disp, off, size int64) []Extent {
	if size <= 0 {
		return nil
	}
	return []Extent{{Offset: disp + off, Size: size}}
}

// Describe implements Filetype.
func (Contig) Describe() string { return "contiguous" }

// Vector is a strided filetype: the rank sees blocks of Block bytes placed
// every Stride bytes in the physical file, starting Phase bytes into the
// tile — the pattern MPI_Type_vector/subarray views produce for
// block-cyclic decompositions like BT-IO's.
type Vector struct {
	Block  int64 // bytes visible per tile
	Stride int64 // physical distance between consecutive tiles
	Phase  int64 // offset of this rank's first block within the stride
}

// Map implements Filetype.
func (v Vector) Map(disp, off, size int64) []Extent {
	if v.Block <= 0 || v.Stride < v.Block {
		panic(fmt.Sprintf("mpiio: bad vector filetype %+v", v))
	}
	if size <= 0 {
		return nil
	}
	var out []Extent
	for size > 0 {
		blk := off / v.Block
		within := off % v.Block
		take := v.Block - within
		if take > size {
			take = size
		}
		phys := disp + v.Phase + blk*v.Stride + within
		if n := len(out); n > 0 && out[n-1].Offset+out[n-1].Size == phys {
			out[n-1].Size += take
		} else {
			out = append(out, Extent{Offset: phys, Size: take})
		}
		off += take
		size -= take
	}
	return out
}

// Describe implements Filetype.
func (v Vector) Describe() string {
	return fmt.Sprintf("vector(block=%d,stride=%d,phase=%d)", v.Block, v.Stride, v.Phase)
}

// Nested is a two-level strided filetype — the shape
// MPI_Type_create_subarray produces for cell decompositions (BT-IO's
// "nested strided datatype"): groups of Count blocks, each Block bytes,
// blocks InnerStride apart within a group, groups OuterStride apart.
//
// View space is the concatenation of all blocks in order. The tracer
// records only the first-level geometry (ViewInfo is single-level), so
// phase offset functions fitted over Nested views describe the first
// block of each access — sufficient for initOffset fitting, as for any
// real nested type.
type Nested struct {
	Block       int64 // bytes per block
	Count       int64 // blocks per group
	InnerStride int64 // physical distance between blocks of a group
	OuterStride int64 // physical distance between group starts
	Phase       int64 // offset of this rank's first block within the tile
}

// Map implements Filetype.
func (n Nested) Map(disp, off, size int64) []Extent {
	if n.Block <= 0 || n.Count <= 0 || n.InnerStride < n.Block ||
		n.OuterStride < n.InnerStride*(n.Count-1)+n.Block {
		panic(fmt.Sprintf("mpiio: bad nested filetype %+v", n))
	}
	if size <= 0 {
		return nil
	}
	var out []Extent
	for size > 0 {
		blk := off / n.Block
		within := off % n.Block
		group := blk / n.Count
		inner := blk % n.Count
		take := n.Block - within
		if take > size {
			take = size
		}
		phys := disp + n.Phase + group*n.OuterStride + inner*n.InnerStride + within
		if k := len(out); k > 0 && out[k-1].Offset+out[k-1].Size == phys {
			out[k-1].Size += take
		} else {
			out = append(out, Extent{Offset: phys, Size: take})
		}
		off += take
		size -= take
	}
	return out
}

// Describe implements Filetype.
func (n Nested) Describe() string {
	return fmt.Sprintf("nested(block=%d,count=%d,inner=%d,outer=%d,phase=%d)",
		n.Block, n.Count, n.InnerStride, n.OuterStride, n.Phase)
}

// View is a rank's active file view.
type View struct {
	Disp     int64 // displacement in bytes
	Etype    int64 // etype extent in bytes (offsets are passed in etype units)
	Filetype Filetype
}

// DefaultView is byte-addressed contiguous access.
func DefaultView() View { return View{Disp: 0, Etype: 1, Filetype: Contig{}} }

// MapBytes translates an etype-unit offset plus byte count into physical
// extents.
func (vw View) MapBytes(offEtypes, size int64) []Extent {
	return vw.Filetype.Map(vw.Disp, offEtypes*vw.Etype, size)
}

// mergeExtents sorts extents by offset and merges adjacent/overlapping
// runs; the two-phase collective uses it to discover the large contiguous
// regions hidden in the union of all ranks' strided pieces.
func mergeExtents(extents []Extent) []Extent {
	if len(extents) <= 1 {
		out := make([]Extent, len(extents))
		copy(out, extents)
		return out
	}
	sorted := make([]Extent, len(extents))
	copy(sorted, extents)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Offset != sorted[j].Offset {
			return sorted[i].Offset < sorted[j].Offset
		}
		return sorted[i].Size > sorted[j].Size
	})
	out := sorted[:1]
	for _, e := range sorted[1:] {
		last := &out[len(out)-1]
		if e.Offset <= last.Offset+last.Size {
			if end := e.Offset + e.Size; end > last.Offset+last.Size {
				last.Size = end - last.Offset
			}
			continue
		}
		out = append(out, e)
	}
	return out
}

// totalSize sums extent sizes.
func totalSize(extents []Extent) int64 {
	var n int64
	for _, e := range extents {
		n += e.Size
	}
	return n
}

// splitExtents partitions a merged extent list into nparts contiguous
// shares of roughly equal byte counts (aggregator file domains).
func splitExtents(extents []Extent, nparts int) [][]Extent {
	total := totalSize(extents)
	if nparts <= 1 || total == 0 {
		return [][]Extent{extents}
	}
	share := (total + int64(nparts) - 1) / int64(nparts)
	out := make([][]Extent, 0, nparts)
	var cur []Extent
	var curBytes int64
	for _, e := range extents {
		for e.Size > 0 {
			room := share - curBytes
			if room <= 0 {
				out = append(out, cur)
				cur, curBytes = nil, 0
				room = share
			}
			take := e.Size
			if take > room {
				take = room
			}
			cur = append(cur, Extent{Offset: e.Offset, Size: take})
			curBytes += take
			e.Offset += take
			e.Size -= take
		}
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}
