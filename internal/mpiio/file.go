package mpiio

import (
	"fmt"

	"iophases/internal/des"
	"iophases/internal/faults"
	"iophases/internal/fsim"
	"iophases/internal/mpi"
	"iophases/internal/trace"
	"iophases/internal/units"
)

// System binds the MPI-IO library to one job and one global filesystem.
// When Tracer is non-nil every MPI-IO call is recorded in PAS2P format —
// the simulator's equivalent of the paper's interposition library.
type System struct {
	fs     *fsim.FS
	world  *mpi.World
	Tracer *trace.Set
	// Account, when non-nil, is attached to every fsim handle this system
	// opens, attributing the job's data traffic to one application on a
	// shared filesystem (co-execution). Set it before any Open.
	Account *fsim.Account

	nextID int
	files  map[string]*File
	aggSet []int // aggregator ranks, one per distinct node, in rank order
	appT0  units.Duration
	flt    *faults.Injector // nil on a healthy cluster; enables fsAccess retries
}

// NewSystem creates the MPI-IO layer for a world over fs.
func NewSystem(fs *fsim.FS, world *mpi.World) *System {
	s := &System{fs: fs, world: world, files: make(map[string]*File),
		flt: faults.For(world.Engine())}
	seen := make(map[string]bool)
	for r := 0; r < world.Size(); r++ {
		node := world.NodeOf(r)
		if !seen[node] {
			seen[node] = true
			s.aggSet = append(s.aggSet, r)
		}
	}
	return s
}

// FS exposes the underlying filesystem.
func (s *System) FS() *fsim.FS { return s.fs }

// World exposes the job.
func (s *System) World() *mpi.World { return s.world }

// MarkStart records the application start time so traced event timestamps
// are app-relative (call before the first MPI-IO operation).
func (s *System) MarkStart(r *mpi.Rank) { s.appT0 = r.Now() }

// record emits a trace event if tracing is on.
func (s *System) record(ev trace.Event) {
	if s.Tracer != nil {
		ev.Time -= s.appT0
		s.Tracer.Record(ev)
	}
}

// AccessType values for Open.
const (
	Shared = "shared" // one file for all processes
	Unique = "unique" // one file per process (IOR -F)
)

// File is an MPI-IO file handle shared by all ranks (the per-rank state —
// views, pointers, underlying handle — is indexed by rank inside).
type File struct {
	sys        *System
	id         int
	name       string
	accessType string
	views      []View
	pointers   []int64 // individual file pointers, in etype units
	handles    []*fsim.File
	sharedPtr  int64 // shared file pointer, etype units
	hints      hints
	meta       trace.FileMeta
	coll       collState
	opened     int
}

// Open opens (creating if needed) a file collectively; every rank must
// call it. accessType selects one shared file or file-per-process.
func (s *System) Open(r *mpi.Rank, name, accessType string) *File {
	if accessType != Shared && accessType != Unique {
		panic(fmt.Sprintf("mpiio: access type %q", accessType))
	}
	start := r.Now()
	tick := r.NextTick()
	f, ok := s.files[name]
	if !ok {
		np := s.world.Size()
		f = &File{
			sys:        s,
			id:         s.nextID,
			name:       name,
			accessType: accessType,
			views:      make([]View, np),
			pointers:   make([]int64, np),
			handles:    make([]*fsim.File, np),
			hints:      defaultHints(),
			meta: trace.FileMeta{
				ID:         s.nextID,
				Name:       name,
				AccessType: accessType,
				PointerSet: "explicit",
				Blocking:   true,
			},
		}
		for i := range f.views {
			f.views[i] = DefaultView()
		}
		s.nextID++
		s.files[name] = f
	}
	phys := name
	if accessType == Unique {
		phys = fmt.Sprintf("%s.%d", name, r.ID())
	}
	f.handles[r.ID()] = s.fs.Open(r.Proc(), r.Node(), phys)
	f.handles[r.ID()].SetAccount(s.Account)
	f.opened++
	r.Sync()
	s.record(trace.Event{
		Rank: r.ID(), File: f.id, Op: trace.OpOpen, Tick: tick,
		Time: start, Duration: r.Now() - start,
	})
	s.syncMeta(f)
	return f
}

// syncMeta publishes current file metadata to the tracer.
func (s *System) syncMeta(f *File) {
	if s.Tracer != nil {
		s.Tracer.AddFile(f.meta)
	}
}

// ID reports the file id (idF).
func (f *File) ID() int { return f.id }

// Name reports the logical file name.
func (f *File) Name() string { return f.name }

// SetView installs the rank's file view (MPI_File_set_view): disp in
// bytes, etype extent in bytes, and the filetype tiling.
func (f *File) SetView(r *mpi.Rank, disp, etype int64, ft Filetype) {
	if etype <= 0 {
		panic("mpiio: etype must be positive")
	}
	start := r.Now()
	tick := r.NextTick()
	f.views[r.ID()] = View{Disp: disp, Etype: etype, Filetype: ft}
	f.pointers[r.ID()] = 0
	f.meta.HasView = true
	f.meta.ViewDisp = disp
	f.meta.ViewEtype = etype
	f.meta.ViewDesc = ft.Describe()
	vi := trace.ViewInfo{Rank: r.ID(), Disp: disp, Etype: etype}
	if v, ok := ft.(Vector); ok {
		vi.Block, vi.Stride, vi.Phase = v.Block, v.Stride, v.Phase
	}
	replaced := false
	for i := range f.meta.Views {
		if f.meta.Views[i].Rank == r.ID() {
			f.meta.Views[i] = vi
			replaced = true
			break
		}
	}
	if !replaced {
		f.meta.Views = append(f.meta.Views, vi)
	}
	f.sys.record(trace.Event{
		Rank: r.ID(), File: f.id, Op: trace.OpSetView, Tick: tick,
		Time: start, Duration: r.Now() - start,
	})
	f.sys.syncMeta(f)
}

// Seek positions the individual file pointer (etype units). Local: no tick.
func (f *File) Seek(r *mpi.Rank, offEtypes int64) {
	f.pointers[r.ID()] = offEtypes
	if f.meta.PointerSet == "explicit" {
		f.meta.PointerSet = "individual"
		f.sys.syncMeta(f)
	}
}

// Tell reports the individual file pointer (etype units).
func (f *File) Tell(r *mpi.Rank) int64 { return f.pointers[r.ID()] }

// checkSize validates a transfer size against the view's etype.
func (f *File) checkSize(r *mpi.Rank, size int64) {
	if size < 0 {
		panic("mpiio: negative size")
	}
	if et := f.views[r.ID()].Etype; size%et != 0 {
		panic(fmt.Sprintf("mpiio: size %d not a multiple of etype %d", size, et))
	}
}

// independent performs a blocking independent data operation: map the view
// range and either issue one filesystem request per physical extent or,
// when the hints allow and the extents are dense, data-sieve the covering
// span (see sieve.go) — ROMIO's two strategies.
func (f *File) independent(r *mpi.Rank, op trace.Op, offEtypes, size int64) {
	f.checkSize(r, size)
	start := r.Now()
	tick := r.NextTick()
	h := f.handles[r.ID()]
	extents := f.views[r.ID()].MapBytes(offEtypes, size)
	sieve := (op.IsWrite() && f.hints.dsWrite) || (op.IsRead() && f.hints.dsRead)
	if lo, hi, ok := sievable(extents, size); sieve && ok {
		f.sievedAccess(r, op, lo, hi)
	} else {
		for _, e := range extents {
			f.sys.fsAccess(r.Proc(), h, r.Node(), op.IsWrite(), e.Offset, e.Size)
		}
	}
	f.sys.record(trace.Event{
		Rank: r.ID(), File: f.id, Op: op, Offset: offEtypes, Tick: tick,
		Size: size, Time: start, Duration: r.Now() - start,
	})
}

// WriteAt writes size bytes at an explicit view offset (etype units).
func (f *File) WriteAt(r *mpi.Rank, offEtypes, size int64) {
	f.independent(r, trace.OpWriteAt, offEtypes, size)
}

// ReadAt reads size bytes at an explicit view offset (etype units).
func (f *File) ReadAt(r *mpi.Rank, offEtypes, size int64) {
	f.independent(r, trace.OpReadAt, offEtypes, size)
}

// Write writes size bytes at the individual file pointer and advances it.
func (f *File) Write(r *mpi.Rank, size int64) {
	off := f.pointers[r.ID()]
	f.independent(r, trace.OpWrite, off, size)
	f.pointers[r.ID()] += size / f.views[r.ID()].Etype
}

// Read reads size bytes at the individual file pointer and advances it.
func (f *File) Read(r *mpi.Rank, size int64) {
	off := f.pointers[r.ID()]
	f.independent(r, trace.OpRead, off, size)
	f.pointers[r.ID()] += size / f.views[r.ID()].Etype
}

// WriteShared writes size bytes at the shared file pointer
// (MPI_File_write_shared): all ranks advance one pointer, so concurrent
// writers receive disjoint, arrival-ordered regions. The pointer lives in
// etype units of the calling rank's view.
func (f *File) WriteShared(r *mpi.Rank, size int64) {
	off := f.bumpShared(r, size)
	f.independent(r, trace.OpWrite, off, size)
}

// ReadShared reads size bytes at the shared file pointer.
func (f *File) ReadShared(r *mpi.Rank, size int64) {
	off := f.bumpShared(r, size)
	f.independent(r, trace.OpRead, off, size)
}

// bumpShared atomically claims [ptr, ptr+size) of the shared pointer and
// records the pointer kind in metadata. The single-threaded engine makes
// the fetch-and-add trivially atomic; the real cost (an RMA or hidden file
// on the target) is charged as one metadata operation.
func (f *File) bumpShared(r *mpi.Rank, size int64) int64 {
	f.sys.fs.ChargeMetaOp(r.Proc(), r.Node())
	et := f.views[r.ID()].Etype
	if size%et != 0 {
		panic(fmt.Sprintf("mpiio: shared size %d not a multiple of etype %d", size, et))
	}
	off := f.sharedPtr
	f.sharedPtr += size / et
	if f.meta.PointerSet != "shared" {
		f.meta.PointerSet = "shared"
		f.sys.syncMeta(f)
	}
	return off
}

// WriteAtAll is the collective write at an explicit view offset.
func (f *File) WriteAtAll(r *mpi.Rank, offEtypes, size int64) {
	f.collective(r, trace.OpWriteAtAll, offEtypes, size)
}

// ReadAtAll is the collective read at an explicit view offset.
func (f *File) ReadAtAll(r *mpi.Rank, offEtypes, size int64) {
	f.collective(r, trace.OpReadAtAll, offEtypes, size)
}

// Sync drains server-side caches to the devices (MPI_File_sync);
// collective.
func (f *File) Sync(r *mpi.Rank) {
	r.Sync()
	if r.ID() == 0 {
		f.sys.fs.Sync(r.Proc())
	}
	r.Sync()
}

// Close closes the file collectively.
func (f *File) Close(r *mpi.Rank) {
	start := r.Now()
	tick := r.NextTick()
	f.handles[r.ID()].Close(r.Proc(), r.Node())
	f.handles[r.ID()] = nil
	r.Sync()
	f.sys.record(trace.Event{
		Rank: r.ID(), File: f.id, Op: trace.OpClose, Tick: tick,
		Time: start, Duration: r.Now() - start,
	})
}

// sharedHandle returns an underlying handle for aggregator access to a
// shared file.
func (f *File) sharedHandle() *fsim.File {
	for _, h := range f.handles {
		if h != nil {
			return h
		}
	}
	panic("mpiio: collective on closed file")
}

// spawnHelper runs fn as a transient process and signals wg when done.
func (s *System) spawnHelper(name string, wg *des.WaitGroup, fn func(p *des.Proc)) {
	wg.Add(1)
	s.world.Engine().Spawn(name, func(p *des.Proc) {
		fn(p)
		wg.Done()
	})
}
