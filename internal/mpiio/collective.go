package mpiio

import (
	"fmt"

	"iophases/internal/des"
	"iophases/internal/mpi"
	"iophases/internal/trace"
	"iophases/internal/units"
)

// collState gathers one round of a collective data operation. SPMD
// semantics guarantee all ranks issue collectives in the same order, so a
// single in-flight round per file suffices.
type collState struct {
	arrivals []collArrival
}

type collArrival struct {
	rank  int
	proc  *des.Proc
	size  int64
	off   int64
	start units.Duration
	tick  int64
}

// collective implements MPI_File_{write,read}_at_all with two-phase I/O:
// the union of all ranks' view extents is merged into contiguous file
// domains, one aggregator per compute node moves its domain with large
// requests, and data shuffles between ranks and aggregators over the
// fabric. Strided little pieces become streaming transfers — the reason
// BT-IO FULL is viable on NFS at all.
func (f *File) collective(r *mpi.Rank, op trace.Op, offEtypes, size int64) {
	f.checkSize(r, size)
	if f.accessType == Unique {
		// File-per-process: the collective degenerates to synchronized
		// independent access to private files.
		start := r.Now()
		tick := r.NextTick()
		r.Sync()
		h := f.handles[r.ID()]
		for _, e := range f.views[r.ID()].MapBytes(offEtypes, size) {
			f.sys.fsAccess(r.Proc(), h, r.Node(), op.IsWrite(), e.Offset, e.Size)
		}
		r.Sync()
		f.sys.record(trace.Event{
			Rank: r.ID(), File: f.id, Op: op, Offset: offEtypes, Tick: tick,
			Size: size, Time: start, Duration: r.Now() - start,
		})
		return
	}

	f.meta.Collective = true
	arrival := collArrival{
		rank:  r.ID(),
		proc:  r.Proc(),
		size:  size,
		off:   offEtypes,
		start: r.Now(),
		tick:  r.NextTick(),
	}
	f.coll.arrivals = append(f.coll.arrivals, arrival)
	if len(f.coll.arrivals) < f.sys.world.Size() {
		r.Proc().Park("collective " + string(op))
	} else {
		f.runTwoPhase(r, op)
	}
	// Every rank (orchestrator included) records its own call on return;
	// all ranks return together at orchestration end.
	f.sys.record(trace.Event{
		Rank: r.ID(), File: f.id, Op: op, Offset: offEtypes, Tick: arrival.tick,
		Size: size, Time: arrival.start, Duration: r.Now() - arrival.start,
	})
	f.sys.syncMeta(f)
}

// runTwoPhase executes the gathered round; called by the last-arriving rank.
func (f *File) runTwoPhase(r *mpi.Rank, op trace.Op) {
	arr := f.coll.arrivals
	f.coll.arrivals = nil
	sys := f.sys
	eng := sys.world.Engine()
	world := sys.world

	// Union of every rank's physical extents, merged into file domains.
	var all []Extent
	for _, a := range arr {
		all = append(all, f.views[a.rank].MapBytes(a.off, a.size)...)
	}
	merged := mergeExtents(all)
	aggs := sys.aggSet
	domains := splitExtents(merged, len(aggs))
	h := f.sharedHandle()
	np := world.Size()

	shuffle := func(toAggregators bool) {
		wg := des.NewWaitGroup(eng)
		for _, a := range arr {
			if a.size == 0 {
				continue
			}
			a := a
			aggNode := world.NodeOf(aggs[a.rank*len(aggs)/np])
			rankNode := world.NodeOf(a.rank)
			sys.spawnHelper("coll-shuffle", wg, func(p *des.Proc) {
				if toAggregators {
					world.Fabric().Send(p, rankNode, aggNode, a.size)
				} else {
					world.Fabric().Send(p, aggNode, rankNode, a.size)
				}
			})
		}
		wg.Wait(r.Proc())
	}
	access := func() {
		wg := des.NewWaitGroup(eng)
		for i, dom := range domains {
			if len(dom) == 0 {
				continue
			}
			dom := dom
			node := world.NodeOf(aggs[i%len(aggs)])
			sys.spawnHelper("coll-agg", wg, func(p *des.Proc) {
				for _, e := range dom {
					sys.fsAccess(p, h, node, op.IsWrite(), e.Offset, e.Size)
				}
			})
		}
		wg.Wait(r.Proc())
	}

	switch {
	case op.IsWrite():
		shuffle(true) // ranks → aggregators
		access()      // aggregators → filesystem
	case op.IsRead():
		access()       // filesystem → aggregators
		shuffle(false) // aggregators → ranks
	default:
		panic(fmt.Sprintf("mpiio: collective %s", op))
	}

	// Release all parked participants at the common completion time.
	for _, a := range arr {
		if a.rank != r.ID() {
			eng.Unpark(a.proc)
		}
	}
}
