// Package iozone re-implements the IOzone filesystem benchmark at the
// I/O-device level, with the parameter surface of Table IV: file size -s,
// request size -y/-r, and the access patterns sequential (-i0 -i1), strided
// (-i5) and random (-i2). The paper runs IOzone directly on each I/O
// node's devices to obtain the peak bandwidth BW_PK of Eq. 3–4 — the
// ideal, network-free device ceiling that SystemUsage (Eq. 5) divides by.
package iozone

import (
	"fmt"
	"math/rand"

	"iophases/internal/cluster"
	"iophases/internal/des"
	"iophases/internal/disksim"
	"iophases/internal/units"
)

// Pattern is an IOzone access pattern.
type Pattern string

// Supported patterns (Table IV).
const (
	Sequential Pattern = "sequential" // -i 0 -i 1
	Strided    Pattern = "strided"    // -i 0 -i 5
	Random     Pattern = "random"     // -i 0 -i 2
)

// Params configure one IOzone run on one device.
type Params struct {
	FileSize    int64   // -s (paper rule: ≥ 2× node RAM to defeat caches)
	RequestSize int64   // -y
	Pattern     Pattern // access mode
	StrideCount int64   // -i5 stride = StrideCount × RequestSize
	Seed        int64   // deterministic offset shuffle for Random
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.FileSize <= 0 || p.RequestSize <= 0 {
		return fmt.Errorf("iozone: s=%d y=%d", p.FileSize, p.RequestSize)
	}
	if p.FileSize%p.RequestSize != 0 {
		return fmt.Errorf("iozone: file size %d not a multiple of request %d", p.FileSize, p.RequestSize)
	}
	switch p.Pattern {
	case Sequential, Strided, Random:
	default:
		return fmt.Errorf("iozone: pattern %q", p.Pattern)
	}
	if p.Pattern == Strided && p.StrideCount < 2 {
		return fmt.Errorf("iozone: strided needs StrideCount >= 2")
	}
	return nil
}

// Result carries the Table V metrics for one run.
type Result struct {
	Params    Params
	WriteTime units.Duration
	ReadTime  units.Duration
	WriteBW   units.Bandwidth
	ReadBW    units.Bandwidth
	IOPSw     float64
	IOPSr     float64
}

// offsets generates the request offsets for the pattern.
func (p Params) offsets() []int64 {
	n := p.FileSize / p.RequestSize
	out := make([]int64, 0, n)
	switch p.Pattern {
	case Sequential:
		for i := int64(0); i < n; i++ {
			out = append(out, i*p.RequestSize)
		}
	case Strided:
		// Visit offset 0, S, 2S… wrapping with a phase shift until
		// every block is touched once (S = StrideCount·RequestSize).
		stride := p.StrideCount * p.RequestSize
		visited := int64(0)
		for phase := int64(0); phase < p.StrideCount && visited < n; phase++ {
			for off := phase * p.RequestSize; off < p.FileSize && visited < n; off += stride {
				out = append(out, off)
				visited++
			}
		}
	case Random:
		for i := int64(0); i < n; i++ {
			out = append(out, i*p.RequestSize)
		}
		rng := rand.New(rand.NewSource(p.Seed + 1))
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	}
	return out
}

// RunOnDevice executes the write pass then the read pass against a device
// on the given engine (the device must be otherwise idle). Caches wrapped
// around the device are measured as-is — matching real IOzone, whose
// writes on an async mount land in the page cache; the paper's FZ ≥ 2·RAM
// rule is what forces the sustained rate to show.
func RunOnDevice(eng *des.Engine, dev disksim.Device, p Params) Result {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	res := Result{Params: p}
	offs := p.offsets()
	eng.Spawn("iozone", func(proc *des.Proc) {
		start := proc.Now()
		for _, off := range offs {
			dev.Write(proc, off, p.RequestSize)
		}
		if c, ok := dev.(*disksim.WriteCache); ok {
			c.Drain(proc) // IOzone's fsync before timing stops
		}
		res.WriteTime = proc.Now() - start
		start = proc.Now()
		for _, off := range offs {
			dev.Read(proc, off, p.RequestSize)
		}
		res.ReadTime = proc.Now() - start
	})
	eng.Run()
	res.WriteBW = units.BandwidthOf(p.FileSize, res.WriteTime)
	res.ReadBW = units.BandwidthOf(p.FileSize, res.ReadTime)
	if s := res.WriteTime.Seconds(); s > 0 {
		res.IOPSw = float64(len(offs)) / s
	}
	if s := res.ReadTime.Seconds(); s > 0 {
		res.IOPSr = float64(len(offs)) / s
	}
	return res
}

// Sweep runs a set of patterns and request sizes on a device and returns
// all results — the exhaustive characterization of the paper's Table IV.
func Sweep(eng *des.Engine, dev disksim.Device, fileSize int64, requestSizes []int64) []Result {
	var out []Result
	for _, rs := range requestSizes {
		for _, pat := range []Pattern{Sequential, Strided, Random} {
			p := Params{FileSize: fileSize, RequestSize: rs, Pattern: pat, StrideCount: 4}
			if fileSize%rs != 0 {
				continue
			}
			out = append(out, RunOnDevice(eng, dev, p))
		}
	}
	return out
}

// PeakOfConfig measures BW_PK for a cluster configuration per Eq. 3–4: run
// IOzone on every I/O node's device, take each node's maximum over
// patterns, and sum across nodes (parallel filesystems) — the ideal case
// "where I/O devices are working in parallel without influence of other
// components". A fresh cluster is built per device so runs do not share
// state.
func PeakOfConfig(spec cluster.Spec, fileSize, requestSize int64) (write, read units.Bandwidth) {
	// Enforce the paper's FZ ≥ 2·RAM rule against the configuration's
	// actual cache so the sustained device rate, not the cache, is
	// measured.
	if c := spec.Storage.Cache; c != nil && fileSize < 4*c.Capacity {
		fileSize = 4 * c.Capacity
	}
	if fileSize%requestSize != 0 {
		fileSize += requestSize - fileSize%requestSize
	}
	nio := spec.Storage.IONodes
	for i := 0; i < nio; i++ {
		var bestW, bestR units.Bandwidth
		for _, pat := range []Pattern{Sequential, Strided} {
			c := cluster.Build(spec)
			p := Params{FileSize: fileSize, RequestSize: requestSize, Pattern: pat, StrideCount: 4}
			r := RunOnDevice(c.Eng, c.IODevice(i), p)
			if r.WriteBW > bestW {
				bestW = r.WriteBW
			}
			if r.ReadBW > bestR {
				bestR = r.ReadBW
			}
		}
		write += bestW
		read += bestR
	}
	return write, read
}
