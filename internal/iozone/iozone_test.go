package iozone

import (
	"testing"

	"iophases/internal/cluster"
	"iophases/internal/des"
	"iophases/internal/disksim"
	"iophases/internal/units"
)

func testDisk(eng *des.Engine) *disksim.Disk {
	return disksim.NewDisk(eng, "d", disksim.DiskParams{
		SeqReadBW: units.MBps(100), SeqWriteBW: units.MBps(80),
		SeekTime: 10 * units.Millisecond, CapacityB: units.TiB,
		NearThreshold: units.MiB,
	})
}

func TestValidate(t *testing.T) {
	ok := Params{FileSize: 64 * units.MiB, RequestSize: units.MiB, Pattern: Sequential}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := ok
	bad.FileSize = 63*units.MiB + 1
	if bad.Validate() == nil {
		t.Fatal("non-multiple file size accepted")
	}
	bad = ok
	bad.Pattern = "bogus"
	if bad.Validate() == nil {
		t.Fatal("bogus pattern accepted")
	}
	bad = ok
	bad.Pattern = Strided
	if bad.Validate() == nil {
		t.Fatal("strided without stride count accepted")
	}
}

func TestOffsetsCoverFileExactlyOnce(t *testing.T) {
	for _, pat := range []Pattern{Sequential, Strided, Random} {
		p := Params{FileSize: 16 * units.MiB, RequestSize: units.MiB, Pattern: pat, StrideCount: 4}
		offs := p.offsets()
		if len(offs) != 16 {
			t.Fatalf("%s: %d offsets", pat, len(offs))
		}
		seen := make(map[int64]bool)
		for _, o := range offs {
			if o%units.MiB != 0 || o < 0 || o >= 16*units.MiB || seen[o] {
				t.Fatalf("%s: bad offset %d", pat, o)
			}
			seen[o] = true
		}
	}
}

func TestSequentialMatchesDiskRates(t *testing.T) {
	eng := des.NewEngine()
	d := testDisk(eng)
	res := RunOnDevice(eng, d, Params{
		FileSize: 800 * units.MiB, RequestSize: 8 * units.MiB, Pattern: Sequential,
	})
	if w := res.WriteBW.MBpsValue(); w < 75 || w > 81 {
		t.Fatalf("write bw %.1f, want ≈80", w)
	}
	if r := res.ReadBW.MBpsValue(); r < 94 || r > 101 {
		t.Fatalf("read bw %.1f, want ≈100", r)
	}
	if res.IOPSw <= 0 || res.IOPSr <= 0 {
		t.Fatalf("iops %v %v", res.IOPSw, res.IOPSr)
	}
}

func TestRandomSlowerThanSequential(t *testing.T) {
	run := func(pat Pattern) Result {
		eng := des.NewEngine()
		return RunOnDevice(eng, testDisk(eng), Params{
			FileSize: 256 * units.MiB, RequestSize: 256 * units.KiB,
			Pattern: pat, StrideCount: 8, Seed: 7,
		})
	}
	seq, rnd := run(Sequential), run(Random)
	if rnd.ReadBW >= seq.ReadBW/4 {
		t.Fatalf("random read %v not ≪ sequential %v", rnd.ReadBW, seq.ReadBW)
	}
}

func TestStridedBetweenSequentialAndRandom(t *testing.T) {
	run := func(pat Pattern) units.Bandwidth {
		eng := des.NewEngine()
		return RunOnDevice(eng, testDisk(eng), Params{
			FileSize: 256 * units.MiB, RequestSize: 256 * units.KiB,
			Pattern: pat, StrideCount: 16, Seed: 3,
		}).ReadBW
	}
	seq, str, rnd := run(Sequential), run(Strided), run(Random)
	// A 16-request stride defeats the track buffer entirely, so strided
	// lands in the same seek-bound regime as random (occasionally random
	// wins by luck when shuffled neighbours fall close); both must sit
	// far below sequential.
	if str > seq/2 || rnd > seq/2 {
		t.Fatalf("ordering violated: seq=%v strided=%v random=%v", seq, str, rnd)
	}
	if diff := float64(str-rnd) / float64(rnd); diff > 0.25 || diff < -0.25 {
		t.Fatalf("strided %v and random %v should be in the same regime", str, rnd)
	}
}

func TestRandomDeterministicBySeed(t *testing.T) {
	run := func(seed int64) units.Bandwidth {
		eng := des.NewEngine()
		return RunOnDevice(eng, testDisk(eng), Params{
			FileSize: 64 * units.MiB, RequestSize: units.MiB,
			Pattern: Random, Seed: seed,
		}).ReadBW
	}
	if run(42) != run(42) {
		t.Fatal("same seed produced different results")
	}
}

func TestCacheDrainIncludedInWriteTime(t *testing.T) {
	eng := des.NewEngine()
	d := testDisk(eng)
	c := disksim.NewWriteCache(eng, "c", d, disksim.CacheParams{
		Capacity: units.GiB, MemBW: units.GBps(4), Chunk: 4 * units.MiB,
	})
	res := RunOnDevice(eng, c, Params{
		FileSize: 512 * units.MiB, RequestSize: 8 * units.MiB, Pattern: Sequential,
	})
	// The whole file fits in cache; without the drain the write pass
	// would report ≈4 GB/s. With the fsync it must report ≈ disk rate.
	if w := res.WriteBW.MBpsValue(); w > 120 {
		t.Fatalf("write bw %.1f: cache leaked into IOzone timing", w)
	}
}

func TestSweepCoversPatternsAndSizes(t *testing.T) {
	eng := des.NewEngine()
	d := testDisk(eng)
	results := Sweep(eng, d, 64*units.MiB, []int64{256 * units.KiB, units.MiB})
	if len(results) != 6 {
		t.Fatalf("sweep produced %d results, want 6", len(results))
	}
	for _, r := range results {
		if r.WriteBW <= 0 || r.ReadBW <= 0 {
			t.Fatalf("empty result %+v", r.Params)
		}
	}
}

func TestPeakOfConfigSumsIONodes(t *testing.T) {
	// Config B has 3 I/O nodes with one ~72 MB/s disk each; Eq. 4 sums
	// them.
	w, r := PeakOfConfig(cluster.ConfigB(), 512*units.MiB, 8*units.MiB)
	if w.MBpsValue() < 180 || w.MBpsValue() > 240 {
		t.Fatalf("configB peak write %.0f, want ≈3×72", w.MBpsValue())
	}
	if r < w {
		t.Fatalf("peak read %v below peak write %v on cacheless JBOD", r, w)
	}
}

func TestPeakOfConfigDefeatsCache(t *testing.T) {
	// Config A's NAS has a 512 MiB cache; the FZ rule must prevent it
	// from inflating the peak beyond the RAID's streaming rate.
	w, _ := PeakOfConfig(cluster.ConfigA(), 64*units.MiB /* deliberately small */, 8*units.MiB)
	if w.MBpsValue() > 350 {
		t.Fatalf("peak write %.0f MB/s: cache defeated the FZ>=2RAM rule", w.MBpsValue())
	}
}
