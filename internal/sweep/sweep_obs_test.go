package sweep

import (
	"bytes"
	"strings"
	"testing"

	"iophases/internal/obs"
)

// Pool telemetry is first-class: it lands on the obs default registry with
// telemetry disabled, so a resident server's /metrics sees pool pressure
// without any flag.
func TestPoolMetricsAlwaysOn(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("test assumes telemetry is disabled")
	}
	reg := obs.Default()
	tasks0 := reg.Counter("sweep/tasks").Value()
	busy0 := reg.Counter("sweep/busy_ns").Value()

	const items, workers = 12, 3
	MapN(workers, make([]int, items), func(i int, _ int) int { return i * i })

	if got := reg.Counter("sweep/tasks").Value() - tasks0; got != items {
		t.Fatalf("sweep/tasks advanced by %d, want %d", got, items)
	}
	if got := reg.Counter("sweep/busy_ns").Value(); got < busy0 {
		t.Fatalf("sweep/busy_ns went backwards: %d -> %d", busy0, got)
	}
	// High-water gauges: other tests in the package share the default
	// registry, so assert the floor this call guarantees, not equality.
	if got := reg.Gauge("sweep/workers_max").Value(); got < workers {
		t.Fatalf("sweep/workers_max %d, want >= %d", got, workers)
	}
	if got := reg.Gauge("sweep/queue_max").Value(); got < items-workers {
		t.Fatalf("sweep/queue_max %d, want >= %d (backlog of %d items on %d workers)",
			got, items-workers, items, workers)
	}
}

// The pool's metrics appear in both exposition formats served off the
// default registry: the -metrics text dump and the Prometheus /metrics page.
func TestPoolMetricsVisibleInExposition(t *testing.T) {
	Map(make([]int, 4), func(i int, _ int) int { return i })

	var text bytes.Buffer
	if err := obs.Default().WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sweep/tasks", "sweep/busy_ns", "sweep/workers_max"} {
		if !strings.Contains(text.String(), name) {
			t.Errorf("WriteText output missing %q", name)
		}
	}

	var prom bytes.Buffer
	if err := obs.Default().WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		"# TYPE sweep_tasks counter",
		"# TYPE sweep_workers_max gauge",
	} {
		if !strings.Contains(prom.String(), line) {
			t.Errorf("WriteProm output missing %q", line)
		}
	}
}
