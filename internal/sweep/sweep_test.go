package sweep

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 1000)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 7, 64, 2000} {
		got := MapN(workers, items, func(i, v int) string {
			return fmt.Sprintf("%d:%d", i, v)
		})
		for i, s := range got {
			if want := fmt.Sprintf("%d:%d", i, i); s != want {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, s, want)
			}
		}
	}
}

func TestMapParallelEqualsSerial(t *testing.T) {
	items := []int{5, 3, 9, 1, 7, 2, 8}
	square := func(i, v int) int { return v * v }
	serial := MapN(1, items, square)
	parallel := MapN(4, items, square)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel %v != serial %v", parallel, serial)
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got := Map(nil, func(i int, v int) int { return v }); len(got) != 0 {
		t.Fatalf("empty: %v", got)
	}
	if got := Map([]int{42}, func(i, v int) int { return v + 1 }); got[0] != 43 {
		t.Fatalf("single: %v", got)
	}
}

func TestMapCallsEachOnce(t *testing.T) {
	counts := make([]atomic.Int64, 100)
	items := make([]int, len(counts))
	ForEach(items, func(i int, _ int) {
		counts[i].Add(1)
	})
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Fatalf("item %d called %d times", i, n)
		}
	}
}

func TestSetConcurrency(t *testing.T) {
	defer SetConcurrency(0)
	if got := SetConcurrency(3); got != 3 {
		t.Fatalf("SetConcurrency(3) = %d", got)
	}
	if got := Concurrency(); got != 3 {
		t.Fatalf("Concurrency() = %d", got)
	}
	if got := SetConcurrency(0); got < 1 {
		t.Fatalf("default concurrency %d", got)
	}
}
