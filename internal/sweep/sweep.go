// Package sweep is the deterministic worker pool behind every what-if
// exploration and experiment fan-out. The simulations it runs are
// embarrassingly parallel — each cluster replay owns a private des.Engine
// and shares no mutable state — so the pool's only job is to spread
// independent simulations over OS threads while keeping results
// order-preserving: Map returns results indexed by input position, never by
// completion order, so a run at -j 8 is byte-identical to -j 1.
//
// Concurrency defaults to GOMAXPROCS and is overridable process-wide
// (SetConcurrency, the CLIs' -j flag) or per call (MapN).
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"iophases/internal/obs"
)

var defaultConcurrency atomic.Int64

// Concurrency reports the pool width used when a call does not pass an
// explicit one: the last SetConcurrency value, or GOMAXPROCS.
func Concurrency() int {
	if n := defaultConcurrency.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetConcurrency fixes the process-wide default pool width. n <= 0 restores
// the GOMAXPROCS default. It returns the effective width.
func SetConcurrency(n int) int {
	if n <= 0 {
		defaultConcurrency.Store(0)
	} else {
		defaultConcurrency.Store(int64(n))
	}
	return Concurrency()
}

// Map applies fn to every item on a pool of Concurrency() workers and
// returns the results in input order. fn must be safe to call concurrently
// with itself; each call receives the item's index. With one worker (or one
// item) it degenerates to a plain serial loop on the calling goroutine, so
// -j 1 has zero scheduling overhead and identical stack traces to the
// pre-pool code.
func Map[T, R any](items []T, fn func(i int, item T) R) []R {
	return MapN(Concurrency(), items, fn)
}

// MapN is Map with an explicit worker count.
//
// Telemetry is first-class: task counts, cumulative busy time, the pool's
// high-water width, and the high-water entry backlog (sweep/queue_max —
// items beyond what the pool width can start immediately) land on the
// always-on obs default registry, so a resident server's /metrics sees pool
// pressure without any telemetry flag. The per-task cost is two clock reads
// and two atomic adds — no allocation. Timeline spans (one per task, per
// worker track) remain gated on an active recorder, since they format
// labels and grow the span ring.
func MapN[T, R any](workers int, items []T, fn func(i int, item T) R) []R {
	out := make([]R, len(items))
	if len(items) == 0 {
		return out
	}
	if workers > len(items) {
		workers = len(items)
	}
	reg := obs.Default()
	cTasks := reg.Counter("sweep/tasks")
	cBusy := reg.Counter("sweep/busy_ns")
	reg.Gauge("sweep/workers_max").SetMax(int64(workers))
	if backlog := len(items) - workers; backlog > 0 {
		reg.Gauge("sweep/queue_max").SetMax(int64(backlog))
	}
	tl := obs.Timeline()
	run := func(tr *obs.Track, i int, item T) R {
		t0 := time.Now()
		s0 := tl.WallNow()
		r := fn(i, item)
		cTasks.Inc()
		cBusy.Add(int64(time.Since(t0)))
		if tr != nil {
			tr.Span(fmt.Sprintf("task %d", i), s0, tl.WallNow())
		}
		return r
	}
	if workers <= 1 {
		var tr *obs.Track
		if tl != nil {
			tr = tl.Track("sweep pool", "serial")
		}
		for i, item := range items {
			out[i] = run(tr, i, item)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			var tr *obs.Track
			if tl != nil {
				tr = tl.Track("sweep pool", fmt.Sprintf("worker %d", w))
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				out[i] = run(tr, i, items[i])
			}
		}(w)
	}
	wg.Wait()
	return out
}

// ForEach applies fn to every item on the default pool, for callers that
// only want side effects (fn writing into its own pre-allocated slot).
func ForEach[T any](items []T, fn func(i int, item T)) {
	MapN(Concurrency(), items, func(i int, item T) struct{} {
		fn(i, item)
		return struct{}{}
	})
}
