// Package sweep is the deterministic worker pool behind every what-if
// exploration and experiment fan-out. The simulations it runs are
// embarrassingly parallel — each cluster replay owns a private des.Engine
// and shares no mutable state — so the pool's only job is to spread
// independent simulations over OS threads while keeping results
// order-preserving: Map returns results indexed by input position, never by
// completion order, so a run at -j 8 is byte-identical to -j 1.
//
// Concurrency defaults to GOMAXPROCS and is overridable process-wide
// (SetConcurrency, the CLIs' -j flag) or per call (MapN).
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"iophases/internal/obs"
)

var defaultConcurrency atomic.Int64

// Concurrency reports the pool width used when a call does not pass an
// explicit one: the last SetConcurrency value, or GOMAXPROCS.
func Concurrency() int {
	if n := defaultConcurrency.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetConcurrency fixes the process-wide default pool width. n <= 0 restores
// the GOMAXPROCS default. It returns the effective width.
func SetConcurrency(n int) int {
	if n <= 0 {
		defaultConcurrency.Store(0)
	} else {
		defaultConcurrency.Store(int64(n))
	}
	return Concurrency()
}

// Map applies fn to every item on a pool of Concurrency() workers and
// returns the results in input order. fn must be safe to call concurrently
// with itself; each call receives the item's index. With one worker (or one
// item) it degenerates to a plain serial loop on the calling goroutine, so
// -j 1 has zero scheduling overhead and identical stack traces to the
// pre-pool code.
func Map[T, R any](items []T, fn func(i int, item T) R) []R {
	return MapN(Concurrency(), items, fn)
}

// MapN is Map with an explicit worker count.
//
// Telemetry: task counts, cumulative busy time and the pool's high-water
// width land on the obs registry, and each worker gets a wall-clock
// timeline track with one span per task — worker utilization is then
// visible as the gaps between spans. Everything is gated on obs state at
// call entry, so a run without -metrics/-timeline pays one nil branch per
// task.
func MapN[T, R any](workers int, items []T, fn func(i int, item T) R) []R {
	out := make([]R, len(items))
	if len(items) == 0 {
		return out
	}
	if workers > len(items) {
		workers = len(items)
	}
	var cTasks, cBusy *obs.Counter
	if h := obs.Hot(); h != nil {
		cTasks = h.Counter("sweep/tasks")
		cBusy = h.Counter("sweep/busy_ns")
		h.Gauge("sweep/workers_max").SetMax(int64(workers))
	}
	tl := obs.Timeline()
	run := func(tr *obs.Track, i int, item T) R {
		if cTasks == nil && tr == nil {
			return fn(i, item)
		}
		t0 := time.Now()
		s0 := tl.WallNow()
		r := fn(i, item)
		cTasks.Inc()
		cBusy.Add(int64(time.Since(t0)))
		tr.Span(fmt.Sprintf("task %d", i), s0, tl.WallNow())
		return r
	}
	if workers <= 1 {
		var tr *obs.Track
		if tl != nil {
			tr = tl.Track("sweep pool", "serial")
		}
		for i, item := range items {
			out[i] = run(tr, i, item)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			var tr *obs.Track
			if tl != nil {
				tr = tl.Track("sweep pool", fmt.Sprintf("worker %d", w))
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				out[i] = run(tr, i, items[i])
			}
		}(w)
	}
	wg.Wait()
	return out
}

// ForEach applies fn to every item on the default pool, for callers that
// only want side effects (fn writing into its own pre-allocated slot).
func ForEach[T any](items []T, fn func(i int, item T)) {
	MapN(Concurrency(), items, func(i int, item T) struct{} {
		fn(i, item)
		return struct{}{}
	})
}
