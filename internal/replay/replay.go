// Package replay implements the phase-faithful replay benchmark the paper
// leaves as future work (§V): "We are designing benchmark to replicate the
// I/O when there are 2 o more operations in a phase to fit the
// characterization better and reduce estimation error."
//
// Where the IOR parameterization of §III-B can only run one operation type
// per pass (mixed phases get the *average* of a write pass and a read
// pass), this replayer executes the phase's exact operation sequence: per
// repetition, every slot in order, at the modeled offsets — including the
// inter-slot skews (MADBench2's phase 3 reads running two bins ahead of
// its writes) and the collective/independent and shared/unique metadata.
// Bandwidth is measured the way the application's BW_MD is measured: the
// maximum per-rank busy time.
package replay

import (
	"sort"

	"fmt"

	"iophases/internal/cluster"
	"iophases/internal/core"
	"iophases/internal/fastpath"
	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/obs"
	"iophases/internal/trace"
	"iophases/internal/units"
)

// Result is a phase replay measurement.
type Result struct {
	Elapsed units.Duration  // max per-rank I/O busy time
	BW      units.Bandwidth // phase weight / Elapsed
}

// Phase replays pm (a phase of model m) on a freshly built configuration
// and reports the characterized bandwidth, under the package-default
// fast-path mode. A model whose phase needs more ranks than the
// configuration has cores is a usage error, reported as an error rather
// than a panic so CLIs can print a diagnostic and exit.
func Phase(spec cluster.Spec, m *core.Model, pm *core.PhaseModel) (Result, error) {
	return PhaseMode(spec, m, pm, fastpath.ModeDefault)
}

// PhaseMode is Phase with an explicit fast-path mode: contention-free
// phases (one rank, one storage target, no faults) can be priced in closed
// form instead of simulated; ModeVerify runs both and panics if the busy
// times differ by even a nanosecond.
func PhaseMode(spec cluster.Spec, m *core.Model, pm *core.PhaseModel, mode fastpath.Mode) (Result, error) {
	if pm.NP > spec.MaxProcs() {
		return Result{}, fmt.Errorf("replay: %d ranks exceed %s capacity %d (use a larger configuration or a smaller model)",
			pm.NP, spec.Name, spec.MaxProcs())
	}
	switch mode.Resolve() {
	case fastpath.ModeOn:
		if elapsed, ok := fastpath.ReplayPhase(spec, m, pm); ok {
			return finishPhase(spec, m, pm, elapsed), nil
		}
	case fastpath.ModeVerify:
		if elapsed, ok := fastpath.ReplayPhase(spec, m, pm); ok {
			des := phaseBusy(spec, m, pm)
			if des != elapsed {
				panic(fmt.Sprintf("fastpath: replay divergence on %s phase %d: fast %v des %v",
					spec.Name, pm.ID, elapsed, des))
			}
			return finishPhase(spec, m, pm, des), nil
		}
	}
	return finishPhase(spec, m, pm, phaseBusy(spec, m, pm)), nil
}

// phaseBusy runs the full DES replay and reports the maximum per-rank I/O
// busy time. The caller has already validated the rank count.
func phaseBusy(spec cluster.Spec, m *core.Model, pm *core.PhaseModel) units.Duration {
	np := pm.NP
	c := cluster.Build(spec)
	nodes := make([]string, np)
	for i := range nodes {
		nodes[i] = c.NodeOfRank(i, np)
	}
	w := mpi.NewWorld(c.Eng, c.Fabric, nodes)
	sys := mpiio.NewSystem(c.FS, w)

	access := mpiio.Shared
	if m.AccessType == "unique" {
		access = mpiio.Unique
	}

	busy := make([]units.Duration, np)
	w.Run(func(r *mpi.Rank) {
		f := sys.Open(r, fmt.Sprintf("/replay.phase%d", pm.ID), access)
		r.Barrier()
		start := r.Now()
		PhaseOps(r, f, pm)
		busy[r.ID()] = r.Now() - start
		f.Close(r)
	})

	var max units.Duration
	for _, d := range busy {
		if d > max {
			max = d
		}
	}
	return max
}

// PhaseOps executes one phase's exact operation sequence on an open file:
// per repetition, every slot in order, at the modeled offsets (family base
// + repetition displacement + slot skew), collective or independent per
// the model. Both the isolated replay above and the multi-application
// co-execution layer drive their ranks through this one loop, so a phase
// costs the same whether it runs alone or contends.
func PhaseOps(r *mpi.Rank, f *mpiio.File, pm *core.PhaseModel) {
	fn := pm.OffsetFn()
	famRep := pm.FamilyRep
	if famRep == 0 {
		famRep = 1
	}
	base := fn.Eval(r.ID(), famRep)
	for rep := 0; rep < pm.Rep; rep++ {
		for _, op := range pm.Ops {
			off := base + int64(rep)*op.Disp + op.Skew
			switch {
			case op.Op.IsWrite() && pm.Collective:
				f.WriteAtAll(r, off, op.Size)
			case op.Op.IsWrite():
				f.WriteAt(r, off, op.Size)
			case pm.Collective:
				f.ReadAtAll(r, off, op.Size)
			default:
				f.ReadAt(r, off, op.Size)
			}
		}
	}
}

// finishPhase assembles the Result for a measured busy time and emits the
// telemetry span. Both the DES and the fast path report through here, so a
// timeline records the same spans whichever priced the phase.
func finishPhase(spec cluster.Spec, m *core.Model, pm *core.PhaseModel, max units.Duration) Result {
	res := Result{Elapsed: max}
	if max > 0 {
		res.BW = units.BandwidthOf(pm.Weight, max)
	}
	if tl := obs.Timeline(); tl != nil {
		// One span per replayed phase on its own track: the replay's
		// virtual clock starts at zero, so the busy window is [0, max].
		tl.Track("replay "+m.App+"@"+spec.Name, fmt.Sprintf("phase %d", pm.ID)).
			Span(fmt.Sprintf("replay phase %d", pm.ID), 0, int64(max),
				obs.Arg{Key: "weight", Value: pm.Weight},
				obs.Arg{Key: "rs", Value: pm.RequestSize()},
				obs.Arg{Key: "np", Value: pm.NP},
				obs.Arg{Key: "bwMBps", Value: res.BW.MBpsValue()})
	}
	return res
}

// Model replays every phase of a model and sums Eq. 1 — the fully
// phase-faithful counterpart of predict.EstimateTime.
func Model(spec cluster.Spec, m *core.Model) (total units.Duration, perPhase []Result, err error) {
	for _, pm := range m.Phases {
		r, err := Phase(spec, m, pm)
		if err != nil {
			return 0, nil, err
		}
		perPhase = append(perPhase, r)
		total += r.Elapsed
	}
	return total, perPhase, nil
}

// TraceSet replays a complete trace on a target configuration: every
// rank's recorded event sequence is re-executed op for op, with the
// original inter-operation time (compute and communication) reproduced as
// busy-work. This is the maximum-fidelity estimator — it needs the whole
// trace, not the compact model, which is exactly the trade-off the
// paper's phase model exists to avoid. It serves as the upper baseline
// when judging how much accuracy the model abstraction gives up.
//
// The returned duration is the I/O busy time (max per-rank sum of call
// durations), comparable to measured phase totals.
func TraceSet(spec cluster.Spec, set *trace.Set) (units.Duration, error) {
	np := set.NP
	if np > spec.MaxProcs() {
		return 0, fmt.Errorf("replay: %d ranks exceed %s capacity %d (use a larger configuration or a smaller trace)",
			np, spec.Name, spec.MaxProcs())
	}
	c := cluster.Build(spec)
	nodes := make([]string, np)
	for i := range nodes {
		nodes[i] = c.NodeOfRank(i, np)
	}
	w := mpi.NewWorld(c.Eng, c.Fabric, nodes)
	sys := mpiio.NewSystem(c.FS, w)

	busy := make([]units.Duration, np)
	w.Run(func(r *mpi.Rank) {
		files := make(map[int]*mpiio.File)
		var cursor units.Duration
		for _, ev := range set.Events[r.ID()] {
			// Reproduce the original think time between calls.
			if gap := ev.Time - cursor; gap > 0 {
				r.Compute(gap)
			}
			f := files[ev.File]
			if f == nil {
				meta := set.FileMetaByID(ev.File)
				access := mpiio.Shared
				name := fmt.Sprintf("/replayset.%d", ev.File)
				if meta != nil {
					if meta.AccessType == "unique" {
						access = mpiio.Unique
					}
					name = meta.Name
				}
				f = sys.Open(r, name, access)
				if meta != nil && meta.HasView {
					v := set.View(ev.File, r.ID())
					if v.Block > 0 {
						f.SetView(r, v.Disp, v.Etype, mpiio.Vector{
							Block: v.Block, Stride: v.Stride, Phase: v.Phase,
						})
					} else if v.Etype > 1 || v.Disp != 0 {
						f.SetView(r, v.Disp, v.Etype, mpiio.Contig{})
					}
				}
				files[ev.File] = f
			}
			start := r.Now()
			switch {
			case !ev.Op.IsData():
				// Open/SetView already handled; Close at the end.
			case ev.Op.IsWrite() && ev.Op.IsCollective():
				f.WriteAtAll(r, ev.Offset, ev.Size)
			case ev.Op.IsWrite():
				f.WriteAt(r, ev.Offset, ev.Size)
			case ev.Op.IsCollective():
				f.ReadAtAll(r, ev.Offset, ev.Size)
			default:
				f.ReadAt(r, ev.Offset, ev.Size)
			}
			if ev.Op.IsData() {
				busy[r.ID()] += r.Now() - start
			}
			cursor = ev.Time + ev.Duration
		}
		// Close in file-id order: Close is collective, so every rank
		// must close in the same order (map iteration would not be
		// deterministic).
		var ids []int
		for id := range files {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			files[id].Close(r)
		}
	})
	var max units.Duration
	for _, d := range busy {
		if d > max {
			max = d
		}
	}
	return max, nil
}
