package replay_test

import (
	"strings"
	"testing"

	"iophases/internal/apps/btio"

	"iophases/internal/apps/madbench"
	"iophases/internal/cluster"
	"iophases/internal/core"
	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/predict"
	"iophases/internal/replay"
	"iophases/internal/runner"
	"iophases/internal/units"
)

func madbenchModel(t testing.TB, spec cluster.Spec, np int, rs int64) *core.Model {
	t.Helper()
	params := madbench.Default()
	params.RS = rs
	res := runner.Run(spec, np, "madbench2", func(sys *mpiio.System) func(*mpi.Rank) {
		return madbench.Program(sys, params)
	}, runner.Options{Trace: true})
	return core.Build(res.Set)
}

// The "%d ranks exceed" panic is now a returned error: a CLI fed a model
// too large for the target prints a diagnostic instead of crashing.
func TestReplayRejectsOversizedModels(t *testing.T) {
	m := madbenchModel(t, cluster.ConfigA(), 8, 4*units.MiB)
	pm := *m.Phases[0]
	pm.NP = 10_000
	if _, err := replay.Phase(cluster.ConfigA(), m, &pm); err == nil ||
		!strings.Contains(err.Error(), "exceed") {
		t.Fatalf("oversized phase: err = %v", err)
	}
	big := *m
	big.Phases = []*core.PhaseModel{&pm}
	if _, _, err := replay.Model(cluster.ConfigA(), &big); err == nil {
		t.Fatal("Model accepted an oversized phase")
	}

	params := madbench.Default()
	params.RS = units.MiB
	res := runner.Run(cluster.ConfigA(), 4, "madbench2", func(sys *mpiio.System) func(*mpi.Rank) {
		return madbench.Program(sys, params)
	}, runner.Options{Trace: true})
	res.Set.NP = 10_000
	if _, err := replay.TraceSet(cluster.ConfigA(), res.Set); err == nil ||
		!strings.Contains(err.Error(), "exceed") {
		t.Fatalf("oversized trace set: err = %v", err)
	}
}

func TestPhaseReplayMovesTheWeight(t *testing.T) {
	m := madbenchModel(t, cluster.ConfigA(), 8, 4*units.MiB)
	for _, pm := range m.Phases {
		r, err := replay.Phase(cluster.ConfigA(), m, pm)
		if err != nil {
			t.Fatal(err)
		}
		if r.BW <= 0 || r.Elapsed <= 0 {
			t.Fatalf("phase %d replay %+v", pm.ID, r)
		}
	}
}

func TestModelReplaySumsPhases(t *testing.T) {
	m := madbenchModel(t, cluster.ConfigB(), 8, 4*units.MiB)
	total, per, err := replay.Model(cluster.ConfigB(), m)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != len(m.Phases) {
		t.Fatalf("per-phase results %d", len(per))
	}
	var sum units.Duration
	for _, r := range per {
		sum += r.Elapsed
	}
	if sum != total {
		t.Fatalf("total %v != sum %v", total, sum)
	}
}

func TestFaithfulReplayTracksMixedPhaseBetterThanIORAverage(t *testing.T) {
	// The §V improvement: on a configuration where the interleaved phase
	// behaves unlike the average of pure passes, the faithful replayer's
	// estimate must be at least as close to the measurement.
	for _, spec := range []cluster.Spec{cluster.ConfigA(), cluster.ConfigB()} {
		m := madbenchModel(t, spec, 16, 8*units.MiB)
		var mixed *core.PhaseModel
		var mixedIdx int
		for i, pm := range m.Phases {
			if len(pm.Ops) > 1 {
				mixed, mixedIdx = pm, i
			}
		}
		if mixed == nil {
			t.Fatal("no mixed phase")
		}
		md := m.Phases[mixedIdx].MeasuredSec

		iorEst, err := predict.EstimateTime(m, spec)
		if err != nil {
			t.Fatal(err)
		}
		faithfulEst, err := predict.EstimateTimeOpts(m, spec,
			predict.EstimateOptions{FaithfulMixed: true})
		if err != nil {
			t.Fatal(err)
		}
		ior := iorEst.Phases[mixedIdx].TimeCH.Seconds()
		faithful := faithfulEst.Phases[mixedIdx].TimeCH.Seconds()

		errIOR := predict.RelativeError(ior, md)
		errFaithful := predict.RelativeError(faithful, md)
		t.Logf("%s mixed phase: MD=%.2fs IOR=%.2fs (%.0f%%) faithful=%.2fs (%.0f%%)",
			spec.Name, md, ior, errIOR, faithful, errFaithful)
		if errFaithful > errIOR+5 {
			t.Errorf("%s: faithful replay worse (%.0f%%) than IOR average (%.0f%%)",
				spec.Name, errFaithful, errIOR)
		}
	}
}

func TestFaithfulFlagOnlyOnMixedPhases(t *testing.T) {
	m := madbenchModel(t, cluster.ConfigA(), 8, 4*units.MiB)
	est, err := predict.EstimateTimeOpts(m, cluster.ConfigA(), predict.EstimateOptions{FaithfulMixed: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, pe := range est.Phases {
		if pe.Faithful != (len(pe.Phase.Ops) > 1) {
			t.Fatalf("phase %d faithful=%v ops=%d", pe.Phase.ID, pe.Faithful, len(pe.Phase.Ops))
		}
	}
}

func TestReplayCollectivePhase(t *testing.T) {
	// A synthetic collective model phase replays without deadlock and
	// with a sensible rate.
	m := madbenchModel(t, cluster.ConfigA(), 4, units.MiB)
	pm := m.Phases[0]
	pm.Collective = true // force the collective path
	r, err := replay.Phase(cluster.ConfigA(), m, pm)
	if err != nil {
		t.Fatal(err)
	}
	if r.BW <= 0 {
		t.Fatalf("collective replay %+v", r)
	}
}

func TestTraceSetReplayApproximatesMeasurement(t *testing.T) {
	// Full-trace replay on the SAME configuration must land close to the
	// original measurement — the upper-fidelity baseline.
	params := madbench.Default()
	params.RS = 8 * units.MiB
	spec := cluster.ConfigA()
	res := runner.Run(spec, 8, "madbench2", func(sys *mpiio.System) func(*mpi.Rank) {
		return madbench.Program(sys, params)
	}, runner.Options{Trace: true})
	m := core.Build(res.Set)
	var measured float64
	for _, pm := range m.Phases {
		measured += pm.MeasuredSec
	}
	replayedD, rerr := replay.TraceSet(spec, res.Set)
	if rerr != nil {
		t.Fatal(rerr)
	}
	replayed := replayedD.Seconds()
	err := predict.RelativeError(replayed, measured)
	t.Logf("measured %.2fs, trace-replayed %.2fs (%.1f%%)", measured, replayed, err)
	if err > 15 {
		t.Fatalf("trace replay off by %.1f%%", err)
	}
}

func TestTraceSetReplayBTIOCollective(t *testing.T) {
	// Collective traces with strided views replay without deadlock.
	params := btio.Default(btio.ClassW)
	res := runner.Run(cluster.ConfigA(), 4, "btio", func(sys *mpiio.System) func(*mpi.Rank) {
		return btio.Program(sys, params)
	}, runner.Options{Trace: true})
	d, err := replay.TraceSet(cluster.ConfigB(), res.Set)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("replay busy time %v", d)
	}
}
