// Package simcache memoizes replay simulations behind a content-addressed
// key. The paper's analysis stage replays application phases with IOR
// (Eq. 1–2), and the same (configuration, IOR parameters) pair recurs
// heavily: every StandardVariants sweep re-replays the baseline, Tables
// IX/X/XII/XIII re-characterize identical phases, and BT-IO's fifty write
// rounds collapse to one distinct replay. Because every simulation is
// deterministic — identical inputs produce bit-identical results — a cache
// hit can return the stored result and skip the whole cluster build and
// event loop.
//
// Keys are canonical fingerprints of (cluster.Spec, ior.Params): a
// deterministic field-by-field encoding (pointers dereferenced, so two
// specs that describe the same hardware through different pointer
// identities fingerprint equally) hashed with SHA-256. Cosmetic fields are
// excluded — Spec.Name and Spec.Description label a configuration without
// changing its physics, and Params.FileName only keys the simulated
// filesystem's metadata map (placement rotates on creation order, never on
// the name) — so renamed-but-identical replays share one entry, while any
// physical difference (disks, network, RAID, request sizes, …) changes the
// encoding and therefore the key. Traced runs (Params.TraceRun) bypass the
// cache: their value is the trace, which is per-run mutable state.
//
// The cache is safe for concurrent use and deduplicates in-flight work:
// when several sweep workers miss on one key simultaneously, a single
// simulation runs and the rest wait for its result.
package simcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"

	"iophases/internal/cluster"
	"iophases/internal/coexec"
	"iophases/internal/fastpath"
	"iophases/internal/ior"
	"iophases/internal/iozone"
	"iophases/internal/obs"
	"iophases/internal/units"
)

// specSkip are cluster.Spec fields with no physical effect on a replay.
var specSkip = map[string]bool{"Name": true, "Description": true}

// iorSkip are ior.Params fields with no physical effect on a replay
// result. TraceRun is skipped because traced runs never enter the cache.
var iorSkip = map[string]bool{"FileName": true, "TraceRun": true}

// Canonical renders the physically relevant content of (spec, p) as a
// deterministic string. The fast-path admission decision is folded in as a
// trailing tag: it is a pure function of (spec, p) — never of the execution
// mode — so entries stay mode-independent (a result cached with the fast
// path off is reused with it on, and vice versa, which is sound because
// verify mode pins the two paths to bit-identical results), yet a revision
// of the admission rule re-keys the cache instead of aliasing entries
// across rule versions. Exported for key-canonicalization tests.
func Canonical(spec cluster.Spec, p ior.Params) string {
	var b strings.Builder
	b.WriteString("ior/")
	encodeValue(&b, reflect.ValueOf(spec), specSkip)
	b.WriteByte('|')
	encodeValue(&b, reflect.ValueOf(p), iorSkip)
	b.WriteString("|fp=")
	b.WriteString(fastpath.DecisionTag(spec, p))
	return b.String()
}

// Fingerprint is the content-addressed cache key: SHA-256 over Canonical.
func Fingerprint(spec cluster.Spec, p ior.Params) string {
	return hashKey(Canonical(spec, p))
}

func hashKey(canon string) string {
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:])
}

// encodeValue writes a canonical encoding of v. skip drops fields by name
// at this struct level only; nested structs encode every field, so any
// future physical knob added anywhere in the spec tree automatically
// extends the fingerprint.
func encodeValue(b *strings.Builder, v reflect.Value, skip map[string]bool) {
	switch v.Kind() {
	case reflect.Pointer:
		if v.IsNil() {
			b.WriteString("nil")
			return
		}
		b.WriteByte('&')
		encodeValue(b, v.Elem(), nil)
	case reflect.Struct:
		b.WriteString(v.Type().Name())
		b.WriteByte('{')
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			if skip[f.Name] {
				continue
			}
			b.WriteString(f.Name)
			b.WriteByte(':')
			encodeValue(b, v.Field(i), nil)
			b.WriteByte(';')
		}
		b.WriteByte('}')
	case reflect.Slice, reflect.Array:
		fmt.Fprintf(b, "[%d:", v.Len())
		for i := 0; i < v.Len(); i++ {
			encodeValue(b, v.Index(i), nil)
			b.WriteByte(',')
		}
		b.WriteByte(']')
	case reflect.String:
		fmt.Fprintf(b, "%q", v.String())
	default:
		fmt.Fprintf(b, "%v", v.Interface())
	}
}

// entry is a singleflight slot: the first goroutine to claim a key runs the
// simulation inside once; concurrent missers block on the same once and
// read the stored result. done flips once the result is stored, so a hit on
// a still-running entry is distinguishable as a singleflight wait — and an
// in-flight entry is never an eviction candidate (evicting it would orphan
// the running simulation and re-run it on the next lookup).
type entry struct {
	once sync.Once
	res  any
	done atomic.Bool
	key  string
	elem *list.Element // position in the recency list, guarded by mu
}

// DefaultCapacity bounds the cache to a generous working set: an entry is
// one IOR Result (or peak pair) plus its key, so even the full experiment
// suite stays well under this; the cap exists so a long-lived server
// sweeping an unbounded parameter space cannot grow without limit.
const DefaultCapacity = 4096

// Cache traffic counters live on the obs default registry — they are part of
// the package's API (Stats, the -v summary) regardless of telemetry flags,
// and registering them there puts them in every -metrics dump for free. The
// cost is unchanged from the bespoke atomics they replaced: one atomic add
// per lookup.
var (
	mu       sync.Mutex
	entries  = map[string]*entry{}
	recency  = list.New() // front = most recently used; values are *entry
	capacity = DefaultCapacity

	cHits      = obs.Default().Counter("simcache/hits")
	cMisses    = obs.Default().Counter("simcache/misses")
	cBypass    = obs.Default().Counter("simcache/bypass")
	cSFWaits   = obs.Default().Counter("simcache/singleflight_waits")
	cEvictions = obs.Default().Counter("simcache/evictions")

	// Occupancy gauges: a dashboard reading /metrics can tell "evictions
	// because the working set exceeds the cap" from "cache barely used"
	// without calling Len/Capacity in-process.
	gSize     = obs.Default().Gauge("simcache/size")
	gCapacity = obs.Default().Gauge("simcache/capacity")
)

func init() { gCapacity.Set(int64(capacity)) }

// SetCapacity changes the entry cap and evicts down to it immediately.
// A non-positive capacity is rejected: an unbounded cache is spelled
// `SetCapacity(math.MaxInt)`, not zero.
func SetCapacity(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("simcache: capacity %d", n))
	}
	mu.Lock()
	capacity = n
	evicted := evictLocked()
	gCapacity.Set(int64(n))
	gSize.Set(int64(len(entries)))
	mu.Unlock()
	cEvictions.Add(evicted)
}

// Capacity reports the current entry cap.
func Capacity() int {
	mu.Lock()
	defer mu.Unlock()
	return capacity
}

// evictLocked drops least-recently-used completed entries until the cache
// fits the cap, reporting how many it removed. In-flight entries (done not
// yet set) are skipped: their simulations are still running and concurrent
// missers hold their pointers. Callers hold mu.
func evictLocked() (n int64) {
	over := len(entries) - capacity
	for el := recency.Back(); el != nil && over > 0; {
		prev := el.Prev()
		e := el.Value.(*entry)
		if e.done.Load() {
			recency.Remove(el)
			delete(entries, e.key)
			over--
			n++
		}
		el = prev
	}
	return n
}

// lookup returns the entry for key, counting it as a hit, a miss, or — when
// the hit entry's simulation is still in flight on another goroutine — a
// singleflight wait. Hits refresh recency; a miss inserts at the front and
// evicts the coldest completed entries beyond the cap.
func lookup(key string) *entry {
	var evicted int64
	mu.Lock()
	e, ok := entries[key]
	if !ok {
		e = &entry{key: key}
		e.elem = recency.PushFront(e)
		entries[key] = e
		evicted = evictLocked()
	} else {
		recency.MoveToFront(e.elem)
	}
	gSize.Set(int64(len(entries)))
	mu.Unlock()
	cEvictions.Add(evicted)
	if !ok {
		cMisses.Inc()
	} else {
		cHits.Inc()
		if !e.done.Load() {
			cSFWaits.Inc()
		}
	}
	return e
}

// RunIOR is a memoized ior.Run under the package-default fast-path mode: a
// cache hit skips both the cluster build and the whole discrete-event
// simulation. Traced runs are never cached.
func RunIOR(spec cluster.Spec, p ior.Params) ior.Result {
	return RunIORMode(spec, p, fastpath.ModeDefault)
}

// RunIORMode is RunIOR with an explicit fast-path mode. The mode selects
// how a missing result is computed — it is not part of the key, which is
// sound because every mode yields the bit-identical Result (ModeVerify
// enforces exactly that by running both paths and panicking on any
// difference).
func RunIORMode(spec cluster.Spec, p ior.Params, mode fastpath.Mode) ior.Result {
	if p.TraceRun {
		cBypass.Inc()
		return ior.Run(spec, p)
	}
	e := lookup(Fingerprint(spec, p))
	e.once.Do(func() {
		e.res = computeIOR(spec, p, mode)
		e.done.Store(true)
	})
	return e.res.(ior.Result)
}

// computeIOR resolves the mode and runs the fast path, the DES, or both.
func computeIOR(spec cluster.Spec, p ior.Params, mode fastpath.Mode) ior.Result {
	switch mode.Resolve() {
	case fastpath.ModeOn:
		if res, ok := fastpath.RunIOR(spec, p); ok {
			return res
		}
		return ior.Run(spec, p)
	case fastpath.ModeVerify:
		fast, ok := fastpath.RunIOR(spec, p)
		des := ior.Run(spec, p)
		if ok && !reflect.DeepEqual(fast, des) {
			panic(fmt.Sprintf("fastpath: divergence on %s %+v:\n fast %+v\n  des %+v",
				spec.Name, p, fast, des))
		}
		return des
	default:
		return ior.Run(spec, p)
	}
}

// coexecModelSkip are core.Model fields with no physical effect on a
// co-execution replay: App and SourceConfig label where a model came
// from, and Files carries trace-time file names the replayer never uses
// (it opens per-app synthetic paths; fsim placement rotates on creation
// order, not names). Every phase field is encoded — offsets, reps, sizes,
// NP, and the measured timing that schedules the phase starts.
var coexecModelSkip = map[string]bool{"App": true, "SourceConfig": true, "Files": true}

// CanonicalCoexec renders the physically relevant content of a
// co-execution spec: the shared cluster, then each application's offset
// and model in order. App order matters (it fixes core allocation and
// launch order), so it is part of the key. Exported for
// key-canonicalization tests.
func CanonicalCoexec(spec coexec.Spec) string {
	var b strings.Builder
	b.WriteString("coexec/")
	encodeValue(&b, reflect.ValueOf(spec.Config), specSkip)
	for _, a := range spec.Apps {
		fmt.Fprintf(&b, "|off=%g;", a.OffsetSec)
		if a.Model != nil {
			encodeValue(&b, reflect.ValueOf(*a.Model), coexecModelSkip)
		} else {
			b.WriteString("nil")
		}
	}
	return b.String()
}

// FingerprintCoexec is the content-addressed key for a co-execution spec.
func FingerprintCoexec(spec coexec.Spec) string {
	return hashKey(CanonicalCoexec(spec))
}

// coexecSlot stores a completed co-execution (result and error together,
// so failed validations are never cached as results).
type coexecSlot struct {
	res *coexec.Result
	err error
}

// RunCoexec is a memoized coexec.Run: offset sweeps revisit the same
// (cluster, apps, offsets) points — every ordering probe at offset 0, the
// co-start baseline of each grid — and a hit skips the whole shared-
// cluster simulation. The returned Result is shared between every caller
// that hits the same key: treat it as immutable. Invalid specs are
// rejected before touching the cache.
func RunCoexec(spec coexec.Spec) (*coexec.Result, error) {
	if err := coexec.Validate(spec); err != nil {
		return nil, err
	}
	e := lookup(FingerprintCoexec(spec))
	e.once.Do(func() {
		var s coexecSlot
		s.res, s.err = coexec.Run(spec)
		e.res = s
		e.done.Store(true)
	})
	s := e.res.(coexecSlot)
	return s.res, s.err
}

// peaks is the cached product of iozone.PeakOfConfig.
type peaks struct {
	write, read units.Bandwidth
}

// PeakBandwidth is a memoized iozone.PeakOfConfig (Eq. 3–4): the device
// peak of a configuration is re-derived by every utilization table and
// usage computation, but only depends on the spec and the sweep sizes.
func PeakBandwidth(spec cluster.Spec, fileSize, requestSize int64) (write, read units.Bandwidth) {
	var b strings.Builder
	b.WriteString("iozone-peak/")
	encodeValue(&b, reflect.ValueOf(spec), specSkip)
	fmt.Fprintf(&b, "|fz=%d;rs=%d", fileSize, requestSize)
	e := lookup(hashKey(b.String()))
	e.once.Do(func() {
		var p peaks
		p.write, p.read = iozone.PeakOfConfig(spec, fileSize, requestSize)
		e.res = p
		e.done.Store(true)
	})
	p := e.res.(peaks)
	return p.write, p.read
}

// Stats reports cache traffic since process start (or the last Reset):
// hits, misses, and traced runs that bypassed the cache.
func Stats() (hit, miss, bypass uint64) {
	return uint64(cHits.Value()), uint64(cMisses.Value()), uint64(cBypass.Value())
}

// SingleflightWaits reports how many hits landed on an entry whose
// simulation was still running on another goroutine — the lookups that
// blocked instead of returning instantly.
func SingleflightWaits() uint64 { return uint64(cSFWaits.Value()) }

// Evictions reports how many completed entries the LRU cap has dropped.
func Evictions() uint64 { return uint64(cEvictions.Value()) }

// Len reports the number of cached simulation results.
func Len() int {
	mu.Lock()
	defer mu.Unlock()
	return len(entries)
}

// Reset drops every cached result and zeroes the counters (tests,
// long-lived servers reclaiming memory).
func Reset() {
	mu.Lock()
	entries = map[string]*entry{}
	recency = list.New()
	gSize.Set(0)
	mu.Unlock()
	cHits.Reset()
	cMisses.Reset()
	cBypass.Reset()
	cSFWaits.Reset()
	cEvictions.Reset()
}
