package simcache

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"iophases/internal/cluster"
	"iophases/internal/disksim"
	"iophases/internal/ior"
	"iophases/internal/netsim"
	"iophases/internal/obs"
	"iophases/internal/units"
)

func testParams() ior.Params {
	return ior.Params{
		NP: 2, BlockSize: 4 * units.MiB, Transfer: units.MiB,
		Segments: 1, DoWrite: true, Fsync: true,
	}
}

// Renaming a configuration does not change its physics, so the fingerprint
// must be identical: a sweep's "baseline" variant (same hardware, new name)
// shares the base configuration's cached replays.
func TestKeyIgnoresCosmeticFields(t *testing.T) {
	a := cluster.ConfigA()
	b := cluster.ConfigA()
	b.Name = "configA+baseline"
	b.Description = "renamed copy"
	if Fingerprint(a, testParams()) != Fingerprint(b, testParams()) {
		t.Fatal("specs differing only in Name/Description fingerprint differently")
	}
	p2 := testParams()
	p2.FileName = "/some/other/file"
	if Fingerprint(a, testParams()) != Fingerprint(a, p2) {
		t.Fatal("params differing only in FileName fingerprint differently")
	}
}

// Two specs that describe different hardware must never collide, even when
// they share a Name — otherwise a cache hit would return the wrong
// configuration's bandwidth.
func TestKeySeparatesPhysicalFields(t *testing.T) {
	base := cluster.ConfigA()
	p := testParams()
	want := Fingerprint(base, p)

	mutations := map[string]func(s *cluster.Spec){
		"net":        func(s *cluster.Spec) { s.Net = netsim.Infiniband20G() },
		"disk":       func(s *cluster.Spec) { s.Storage.Disk = disksim.SAS15K(100 * units.GiB) },
		"ionodes":    func(s *cluster.Spec) { s.Storage.IONodes = 4 },
		"raid-level": func(s *cluster.Spec) { s.Storage.RAID.Level = disksim.RAID0 },
		"raid-nil":   func(s *cluster.Spec) { s.Storage.RAID = nil },
		"cache-nil":  func(s *cluster.Spec) { s.Storage.Cache = nil },
		"stripe":     func(s *cluster.Spec) { s.Storage.FSStripe = 128 * units.KiB },
		"cores":      func(s *cluster.Spec) { s.CoresPerNode = 8 },
	}
	for name, mutate := range mutations {
		s := base
		if s.Storage.RAID != nil { // deep-copy pointers before mutating
			r := *s.Storage.RAID
			s.Storage.RAID = &r
		}
		if s.Storage.Cache != nil {
			c := *s.Storage.Cache
			s.Storage.Cache = &c
		}
		mutate(&s)
		if Fingerprint(s, p) == want {
			t.Errorf("mutation %q does not change the fingerprint", name)
		}
	}

	p2 := p
	p2.Transfer = 2 * units.MiB
	if Fingerprint(base, p2) == want {
		t.Error("params mutation does not change the fingerprint")
	}
	p3 := p
	p3.Collective = true
	if Fingerprint(base, p3) == want {
		t.Error("collective flag does not change the fingerprint")
	}
}

// Pointer identity must not leak into the key: two separately-allocated but
// equal RAID/Cache specs fingerprint equally.
func TestKeyDereferencesPointers(t *testing.T) {
	a := cluster.ConfigA()
	b := cluster.ConfigA() // fresh allocations of RAID, Cache, LocalDisk
	if Canonical(a, testParams()) != Canonical(b, testParams()) {
		t.Fatal("fresh but equal specs canonicalize differently")
	}
}

func TestRunIORCachesAndMatches(t *testing.T) {
	Reset()
	defer Reset()
	spec := cluster.ConfigB()
	p := testParams()

	first := RunIOR(spec, p)
	if h, m, _ := Stats(); h != 0 || m != 1 {
		t.Fatalf("after first run: hits=%d misses=%d", h, m)
	}
	second := RunIOR(spec, p)
	if h, m, _ := Stats(); h != 1 || m != 1 {
		t.Fatalf("after second run: hits=%d misses=%d", h, m)
	}
	if first != second {
		t.Fatalf("cached result differs: %+v vs %+v", first, second)
	}
	// The cached result must equal a fresh simulation bit for bit —
	// determinism is what makes memoization sound.
	fresh := ior.Run(spec, p)
	if first.WriteBW != fresh.WriteBW || first.WriteTime != fresh.WriteTime {
		t.Fatalf("cached %v != fresh %v", first.WriteBW, fresh.WriteBW)
	}
}

func TestRunIORBypassesForTracedRuns(t *testing.T) {
	Reset()
	defer Reset()
	p := testParams()
	p.TraceRun = true
	r1 := RunIOR(cluster.ConfigB(), p)
	r2 := RunIOR(cluster.ConfigB(), p)
	if r1.Trace == nil || r2.Trace == nil || r1.Trace == r2.Trace {
		t.Fatal("traced runs must not share a cached trace")
	}
	if h, m, by := Stats(); h != 0 || m != 0 || by != 2 {
		t.Fatalf("stats %d/%d/%d, want 0/0/2", h, m, by)
	}
}

// Concurrent misses on one key run the simulation once and agree on the
// result (singleflight).
func TestRunIORSingleflight(t *testing.T) {
	Reset()
	defer Reset()
	spec := cluster.ConfigB()
	p := testParams()
	const n = 8
	results := make([]ior.Result, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			defer wg.Done()
			results[i] = RunIOR(spec, p)
		}()
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d saw a different result", i)
		}
	}
	if h, m, _ := Stats(); h+m != n || m < 1 {
		t.Fatalf("stats hits=%d misses=%d, want %d total with ≥1 miss", h, m, n)
	}
	if Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", Len())
	}
}

func TestPeakBandwidthCached(t *testing.T) {
	Reset()
	defer Reset()
	w1, r1 := PeakBandwidth(cluster.ConfigB(), 64*units.MiB, units.MiB)
	w2, r2 := PeakBandwidth(cluster.ConfigB(), 64*units.MiB, units.MiB)
	if w1 != w2 || r1 != r2 {
		t.Fatal("cached peak differs")
	}
	if h, m, _ := Stats(); h != 1 || m != 1 {
		t.Fatalf("stats hits=%d misses=%d", h, m)
	}
	// Different sweep sizes are different content.
	PeakBandwidth(cluster.ConfigB(), 64*units.MiB, 2*units.MiB)
	if _, m, _ := Stats(); m != 2 {
		t.Fatalf("misses=%d, want 2", m)
	}
}

// TestCountersLiveOnObsRegistry pins satellite wiring: the cache's traffic
// counters are registered metrics, so every -metrics dump carries them and
// Stats() is just a view over the registry.
func TestCountersLiveOnObsRegistry(t *testing.T) {
	Reset()
	defer Reset()
	spec := cluster.ConfigB()
	p := testParams()
	RunIOR(spec, p)
	RunIOR(spec, p)
	reg := obs.Default()
	if got := reg.Counter("simcache/misses").Value(); got != 1 {
		t.Fatalf("simcache/misses = %d, want 1", got)
	}
	if got := reg.Counter("simcache/hits").Value(); got != 1 {
		t.Fatalf("simcache/hits = %d, want 1", got)
	}
	h, m, _ := Stats()
	if h != 1 || m != 1 {
		t.Fatalf("Stats() = %d/%d, want 1/1", h, m)
	}
	Reset()
	if reg.Counter("simcache/hits").Value() != 0 {
		t.Fatal("Reset did not zero the registry counters")
	}
}

// TestSingleflightWaitsCounted pins the new wait metric: a hit on an entry
// whose simulation is still in flight counts as a singleflight wait, a hit
// on a finished entry does not.
func TestSingleflightWaitsCounted(t *testing.T) {
	Reset()
	defer Reset()
	spec := cluster.ConfigB()
	p := testParams()
	const n = 8
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			RunIOR(spec, p)
		}()
	}
	wg.Wait()
	h, m, _ := Stats()
	waits := SingleflightWaits()
	if uint64(waits) > h {
		t.Fatalf("%d singleflight waits exceed %d hits", waits, h)
	}
	if h+m != n {
		t.Fatalf("stats %d/%d, want %d lookups", h, m, n)
	}
	// A hit after the entry settled must not count as a wait.
	before := SingleflightWaits()
	RunIOR(spec, p)
	if SingleflightWaits() != before {
		t.Fatal("settled-entry hit counted as a singleflight wait")
	}
}

// sizedParams returns an admissible np=1 parameter set whose BlockSize
// varies with i, so each i is a distinct cache key with a cheap (analytic
// fast path) fill.
func sizedParams(i int) ior.Params {
	return ior.Params{
		NP: 1, BlockSize: int64(i+1) * units.MiB, Transfer: 256 * units.KiB,
		Segments: 1, DoWrite: true, Fsync: true,
	}
}

// The LRU cap drops the coldest completed entry: after overfilling a
// 3-entry cache, the first (never re-touched) key misses again while the
// hot tail still hits.
func TestLRUEvictsColdest(t *testing.T) {
	Reset()
	SetCapacity(3)
	defer func() { SetCapacity(DefaultCapacity); Reset() }()
	spec := cluster.ConfigA()
	for i := 0; i < 4; i++ {
		RunIOR(spec, sizedParams(i))
	}
	if got := Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if got := Evictions(); got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
	_, missBefore, _ := Stats()
	RunIOR(spec, sizedParams(0)) // evicted: must miss and refill
	if _, miss, _ := Stats(); miss != missBefore+1 {
		t.Fatalf("evicted key did not miss (misses %d -> %d)", missBefore, miss)
	}
	hitBefore, _, _ := Stats()
	RunIOR(spec, sizedParams(3)) // recent: must still hit
	if hit, _, _ := Stats(); hit != hitBefore+1 {
		t.Fatalf("recent key did not hit")
	}
}

// A hit refreshes recency: touching the oldest entry makes the other one
// the eviction victim.
func TestLRUTouchOnHit(t *testing.T) {
	Reset()
	SetCapacity(2)
	defer func() { SetCapacity(DefaultCapacity); Reset() }()
	spec := cluster.ConfigA()
	RunIOR(spec, sizedParams(0))
	RunIOR(spec, sizedParams(1))
	RunIOR(spec, sizedParams(0)) // touch: 0 becomes most recent
	RunIOR(spec, sizedParams(2)) // evicts 1, not 0
	hitBefore, _, _ := Stats()
	RunIOR(spec, sizedParams(0))
	if hit, _, _ := Stats(); hit != hitBefore+1 {
		t.Fatal("touched entry was evicted")
	}
	_, missBefore, _ := Stats()
	RunIOR(spec, sizedParams(1))
	if _, miss, _ := Stats(); miss != missBefore+1 {
		t.Fatal("untouched entry survived over the touched one")
	}
}

// SetCapacity evicts down immediately and rejects non-positive caps.
func TestSetCapacityImmediateAndValidated(t *testing.T) {
	Reset()
	SetCapacity(DefaultCapacity)
	defer func() { SetCapacity(DefaultCapacity); Reset() }()
	spec := cluster.ConfigA()
	for i := 0; i < 5; i++ {
		RunIOR(spec, sizedParams(i))
	}
	SetCapacity(2)
	if got := Len(); got != 2 {
		t.Fatalf("Len after shrink = %d, want 2", got)
	}
	if got := Evictions(); got != 3 {
		t.Fatalf("Evictions after shrink = %d, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("SetCapacity(0): no panic")
		}
	}()
	SetCapacity(0)
}

// In-flight entries — claimed but not yet computed — are never eviction
// victims: dropping one would orphan its running simulation.
func TestLRUNeverEvictsInFlight(t *testing.T) {
	Reset()
	SetCapacity(1)
	defer func() { SetCapacity(DefaultCapacity); Reset() }()
	inflight := lookup("inflight-key") // claimed, done never set
	for i := 0; i < 3; i++ {
		RunIOR(cluster.ConfigA(), sizedParams(i)) // each insert overflows the cap
	}
	mu.Lock()
	_, ok := entries["inflight-key"]
	mu.Unlock()
	if !ok {
		t.Fatal("in-flight entry was evicted")
	}
	inflight.res = struct{}{} // settle it so nothing dangles
	inflight.done.Store(true)
}

// Occupancy gauges mirror Len/Capacity on the obs default registry, so a
// dashboard scraping /metrics can tell a saturated cache from an idle one
// without in-process calls. They must track inserts, capacity changes, and
// Reset, and show up in both exposition formats.
func TestOccupancyGaugesTrackCache(t *testing.T) {
	Reset()
	defer func() {
		SetCapacity(DefaultCapacity)
		Reset()
	}()
	reg := obs.Default()
	if got := reg.Gauge("simcache/size").Value(); got != 0 {
		t.Fatalf("size gauge after Reset: %d", got)
	}
	if got := reg.Gauge("simcache/capacity").Value(); got != int64(Capacity()) {
		t.Fatalf("capacity gauge %d != Capacity() %d", got, Capacity())
	}

	RunIOR(cluster.ConfigB(), testParams())
	if got := reg.Gauge("simcache/size").Value(); got != int64(Len()) || got != 1 {
		t.Fatalf("size gauge %d, Len() %d, want 1", got, Len())
	}

	SetCapacity(2)
	if got := reg.Gauge("simcache/capacity").Value(); got != 2 {
		t.Fatalf("capacity gauge after SetCapacity(2): %d", got)
	}

	var text bytes.Buffer
	if err := reg.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []struct {
		out  *bytes.Buffer
		name string
	}{
		{&text, "simcache/size"},
		{&text, "simcache/capacity"},
		{&text, "simcache/evictions"},
		{&prom, "# TYPE simcache_size gauge"},
		{&prom, "# TYPE simcache_evictions counter"},
	} {
		if !strings.Contains(want.out.String(), want.name) {
			t.Errorf("exposition output missing %q", want.name)
		}
	}
}
