package simcache

import (
	"strings"
	"testing"

	"iophases/internal/apps/madbench"
	"iophases/internal/cluster"
	"iophases/internal/coexec"
	"iophases/internal/core"
	"iophases/internal/faults"
	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/runner"
	"iophases/internal/units"
)

func coexecModel(t *testing.T, rs int64) *core.Model {
	t.Helper()
	params := madbench.Default()
	params.RS = rs
	res := runner.Run(cluster.ConfigA(), 4, "madbench2", func(sys *mpiio.System) func(*mpi.Rank) {
		return madbench.Program(sys, params)
	}, runner.Options{Trace: true})
	return core.Build(res.Set)
}

func coexecPair(m *core.Model, off float64) coexec.Spec {
	return coexec.Spec{Config: cluster.ConfigA(), Apps: []coexec.App{
		{Name: "a", Model: m},
		{Name: "b", Model: m, OffsetSec: off},
	}}
}

func TestCoexecKeyIgnoresLabels(t *testing.T) {
	m := coexecModel(t, units.MiB)
	relabeled := *m
	relabeled.App = "renamed"
	relabeled.SourceConfig = "elsewhere"
	a := coexecPair(m, 1)
	b := coexecPair(&relabeled, 1)
	b.Apps[0].Name = "x"
	b.Apps[1].Name = "y"
	if CanonicalCoexec(a) != CanonicalCoexec(b) {
		t.Fatal("cosmetic labels changed the coexec key")
	}
}

func TestCoexecKeySeparatesPhysicalFields(t *testing.T) {
	m := coexecModel(t, units.MiB)
	base := coexecPair(m, 1)

	shifted := coexecPair(m, 2) // a different schedule is a different run
	if FingerprintCoexec(base) == FingerprintCoexec(shifted) {
		t.Fatal("offset change did not re-key")
	}

	resized := *m // a different model is a different run
	resized.Phases = append([]*core.PhaseModel(nil), m.Phases...)
	p0 := *resized.Phases[0]
	p0.Rep++
	resized.Phases[0] = &p0
	if FingerprintCoexec(base) == FingerprintCoexec(coexecPair(&resized, 1)) {
		t.Fatal("phase change did not re-key")
	}

	timed := *m // measured timing schedules the phases, so it is physical here
	timed.Phases = append([]*core.PhaseModel(nil), m.Phases...)
	pt := *timed.Phases[0]
	pt.StartSec += 1
	timed.Phases[0] = &pt
	if FingerprintCoexec(base) == FingerprintCoexec(coexecPair(&timed, 1)) {
		t.Fatal("phase timing change did not re-key")
	}

	degraded := base // a fault schedule changes the physics
	degraded.Config.Faults, _ = faults.Preset("degraded-mix")
	if FingerprintCoexec(base) == FingerprintCoexec(degraded) {
		t.Fatal("fault schedule did not re-key")
	}

	swapped := base // app order fixes core allocation and launch order
	swapped.Apps = []coexec.App{base.Apps[1], base.Apps[0]}
	if !strings.Contains(CanonicalCoexec(base), "off=0") {
		t.Fatal("canonical missing offset encoding")
	}
	if FingerprintCoexec(base) == FingerprintCoexec(swapped) {
		t.Fatal("app reordering did not re-key")
	}
}

func TestRunCoexecCachesAndMatches(t *testing.T) {
	Reset()
	m := coexecModel(t, units.MiB)
	spec := coexecPair(m, 1.5)
	r1, err := RunCoexec(spec)
	if err != nil {
		t.Fatal(err)
	}
	h0, _, _ := Stats()
	r2, err := RunCoexec(spec)
	if err != nil {
		t.Fatal(err)
	}
	h1, _, _ := Stats()
	if h1 != h0+1 {
		t.Fatalf("second run missed the cache: hits %d -> %d", h0, h1)
	}
	if r1 != r2 {
		t.Fatal("cache hit returned a different result pointer")
	}
	direct, err := coexec.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if direct.TotalTimeIO != r1.TotalTimeIO || direct.FSWritten != r1.FSWritten {
		t.Fatalf("cached result diverges from direct run: %+v vs %+v", r1, direct)
	}
}

func TestRunCoexecRejectsInvalidWithoutCaching(t *testing.T) {
	Reset()
	if _, err := RunCoexec(coexec.Spec{Config: cluster.ConfigA()}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if Len() != 0 {
		t.Fatalf("invalid spec polluted the cache: %d entries", Len())
	}
}
