package simcache

import (
	"testing"

	"iophases/internal/cluster"
	"iophases/internal/faults"
)

// A fault schedule is part of a configuration's physical identity: the
// fingerprint must separate healthy from degraded — and scenarios from
// each other — so a degraded replay can never be served a healthy run's
// cached bandwidth (or vice versa).
func TestKeySeparatesFaultSchedules(t *testing.T) {
	p := testParams()
	healthy := cluster.ConfigA()

	degraded := cluster.ConfigA()
	degraded.Faults = &faults.Schedule{Name: "s", Effects: []faults.Effect{
		{Kind: faults.SlowDisk, Factor: 3},
	}}
	if Fingerprint(healthy, p) == Fingerprint(degraded, p) {
		t.Fatal("degraded spec fingerprints like the healthy one")
	}

	worse := cluster.ConfigA()
	worse.Faults = &faults.Schedule{Name: "s", Effects: []faults.Effect{
		{Kind: faults.SlowDisk, Factor: 4},
	}}
	if Fingerprint(degraded, p) == Fingerprint(worse, p) {
		t.Fatal("schedules with different factors share a fingerprint")
	}

	// The schedule name itself is physical here (distinct scenarios), but
	// two identical schedules fingerprint identically regardless of the
	// spec's cosmetic fields.
	renamed := degraded
	renamed.Name = "configA+s"
	renamed.Description = "degraded copy"
	if Fingerprint(degraded, p) != Fingerprint(renamed, p) {
		t.Fatal("cosmetic rename changed a degraded fingerprint")
	}
}

// Degraded runs must miss a cache warmed by healthy runs and vice versa:
// two runs, two misses, no cross-serving.
func TestDegradedNeverHitsHealthyCache(t *testing.T) {
	Reset()
	p := testParams()
	healthy := cluster.ConfigA()
	degraded := cluster.ConfigA()
	degraded.Faults = &faults.Schedule{Name: "slow", Effects: []faults.Effect{
		{Kind: faults.SlowDisk, Factor: 3},
	}}

	h := RunIOR(healthy, p)
	d := RunIOR(degraded, p)
	if _, miss, _ := Stats(); miss < 2 {
		t.Fatalf("misses = %d, want 2 (no cross-serving)", miss)
	}
	if h.WriteBW <= d.WriteBW {
		t.Fatalf("healthy %v not faster than slow-disk %v", h.WriteBW, d.WriteBW)
	}

	// Repeats hit their own entries and reproduce the same numbers.
	h2, d2 := RunIOR(healthy, p), RunIOR(degraded, p)
	if hit, _, _ := Stats(); hit < 2 {
		t.Fatalf("hits = %d, want 2", hit)
	}
	if h2.WriteBW != h.WriteBW || d2.WriteBW != d.WriteBW {
		t.Fatal("cached replay returned different bandwidth")
	}
}
